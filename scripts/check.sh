#!/usr/bin/env bash
# Build and run the full test suite in the default configuration plus the
# Address-, UndefinedBehavior- and ThreadSanitizer configurations, so the
# sanitizer suites actually gate changes instead of rotting. This is the
# command CI (and any PR author) should run before merging:
#
#   scripts/check.sh            # all configs
#   scripts/check.sh --fast     # default config only
#
# Build trees: build/ (default), build-asan/ (ECODB_SANITIZE=address),
# build-ubsan/ (ECODB_SANITIZE=undefined) and build-tsan/
# (ECODB_SANITIZE=thread, morsel-parallel suites only).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

run_config() {
  local dir="$1"
  shift
  echo "=== configure: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build: ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ctest: ${dir} ==="
  (cd "${dir}" && ctest --output-on-failure --timeout 120 -j "${JOBS}")
}

run_config build

# Second leg of the default suite with the SIMD kernels forced onto their
# scalar fallbacks (runtime env override — no rebuild). The kernels
# promise bit-identical results either way; running the whole suite —
# goldens, parity fuzz, energy parity — under ECODB_SIMD=off is what
# makes that promise load-bearing.
echo "=== ctest: build (ECODB_SIMD=off scalar fallback) ==="
(cd build && ECODB_SIMD=off ctest --output-on-failure --timeout 120 -j "${JOBS}")

# Bench binaries have no CTest coverage; a tiny-scale smoke run keeps them
# from silently rotting between BENCH_*.json regenerations.
echo "=== bench smoke: micro_engine --sf=0.001 ==="
./build/bench/micro_engine --sf=0.001 > /dev/null
echo "=== bench smoke: workload_scheduler --sf=0.001 ==="
./build/bench/workload_scheduler --sf=0.001 > /dev/null

# Worker-count parity smoke: the fuzz harness holds the morsel-parallel
# engine bit-exact against the row oracle at 1, 2 and 8 workers (the
# default suite run above covers 3). A worker count of 1 exercises the
# clamp path; 8 oversubscribes the 2-core model.
echo "=== workers parity smoke: 1/2/8 workers x 24 plans ==="
for w in 1 2 8; do
  ECODB_FUZZ_WORKERS="${w}" ECODB_FUZZ_PLANS=24 \
    ./build/batch_parity_fuzz_test --gtest_brief=1
done

if [[ "${FAST}" == "0" ]]; then
  run_config build-asan -DECODB_SANITIZE=address
  # Fault-injection fuzz smoke under ASan: a short random fault-schedule
  # sweep on top of the suite's default run, so the retry/cancel teardown
  # paths get a leak-checked pass with a second seed base.
  echo "=== fault fuzz smoke (asan): 50 fault schedules ==="
  ECODB_GOVFUZZ_SEED=0xFA57 ECODB_GOVFUZZ_PLANS=0 ECODB_GOVFUZZ_FAULT_PLANS=50 \
    ./build-asan/governor_fuzz_test --gtest_filter='GovernorFaultFuzzTest.*'
  # Scheduler fuzz smoke under ASan with a second seed base: admission,
  # QED merge/split, retry and breaker teardown paths get a leak-checked
  # pass beyond the suite's default seeds.
  echo "=== scheduler fuzz smoke (asan): 8 configs ==="
  ECODB_SCHEDFUZZ_SEED=0x5A5A ECODB_SCHEDFUZZ_ITERS=8 \
    ./build-asan/scheduler_fuzz_test
  # Dict-path parity fuzz smoke under ASan with a second seed base: the
  # fuzzer's dict-string predicates, IN-lists and string group-bys drive
  # the code-lane / memo / decode paths, so this leg leak-checks the
  # dictionary hot paths specifically (borrowed dict-entry pointers,
  # lane handoffs, memo teardown).
  echo "=== dict parity fuzz smoke (asan): 24 plans ==="
  ECODB_FUZZ_SEED=0xD1C7 ECODB_FUZZ_PLANS=24 \
    ./build-asan/batch_parity_fuzz_test --gtest_brief=1
  run_config build-ubsan -DECODB_SANITIZE=undefined
  # ThreadSanitizer leg: build once, then run only the suites that spawn
  # morsel workers (the rest of the suite is single-threaded and already
  # covered by the ASan/UBSan legs — a full TSan ctest would double the
  # wall time for no extra interleavings).
  echo "=== configure/build: build-tsan (ECODB_SANITIZE=thread) ==="
  cmake -B build-tsan -S . -DECODB_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  echo "=== tsan: bounded_queue_test ==="
  ./build-tsan/bounded_queue_test
  echo "=== tsan: parallel_exec_test (incl. pipeline-breaker suites) ==="
  ./build-tsan/parallel_exec_test
  # Both fuzz corpora run here: the mixed-plan corpus and the breaker-root
  # corpus (every plan ends in an agg/sort/build breaker), each at 8
  # workers so the breaker coordinator/worker handoffs get oversubscribed
  # interleavings under TSan.
  echo "=== tsan: batch_parity_fuzz_test (8 workers x 24 plans/corpus) ==="
  ECODB_FUZZ_WORKERS=8 ECODB_FUZZ_PLANS=24 \
    ./build-tsan/batch_parity_fuzz_test --gtest_brief=1
fi

echo "=== all checks passed ==="

#!/usr/bin/env bash
# Build and run the full test suite in both the default configuration and
# the AddressSanitizer configuration, so the ASan suite actually gates
# changes instead of rotting. This is the command CI (and any PR author)
# should run before merging:
#
#   scripts/check.sh            # both configs
#   scripts/check.sh --fast     # default config only
#
# Build trees: build/ (default) and build-asan/ (ECODB_SANITIZE=address).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

run_config() {
  local dir="$1"
  shift
  echo "=== configure: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build: ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ctest: ${dir} ==="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_config build

# Bench binaries have no CTest coverage; a tiny-scale smoke run keeps them
# from silently rotting between BENCH_*.json regenerations.
echo "=== bench smoke: micro_engine --sf=0.001 ==="
./build/bench/micro_engine --sf=0.001 > /dev/null

if [[ "${FAST}" == "0" ]]; then
  run_config build-asan -DECODB_SANITIZE=address
fi

echo "=== all checks passed ==="

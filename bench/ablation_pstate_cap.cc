// Ablation: p-state capping vs FSB underclocking (paper Section 3).
// Capping the multiplier drops the top frequency in coarse ~11 % steps and
// removes transition states; underclocking scales all p-states by fine
// percentages. We compare the frequency ladders and the energy/time points
// they make reachable.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.01);
  bench::Header("Ablation: p-state capping vs FSB underclocking",
                "Lang & Patel, CIDR 2009, Section 3 discussion");

  CpuModel cpu(CpuConfig::E8500());
  std::printf("Frequency ladders (GHz):\n");
  TablePrinter ladder({"mechanism", "setting", "top freq GHz",
                       "p-states kept"});
  for (double cap : {9.5, 8.0, 7.0, 6.0}) {
    int kept = 0;
    for (double m : cpu.config().multipliers) {
      if (m <= cap) ++kept;
    }
    ladder.AddRow({"p-state cap", StrFormat("mult<=%.1f", cap),
                   bench::F(cpu.PstateCapFrequencyHz(cap) / 1e9, 2),
                   StrFormat("%d/4", kept)});
  }
  for (double uc : {0.0, 0.05, 0.10, 0.15}) {
    CpuModel c2(CpuConfig::E8500());
    (void)c2.ApplySettings({uc, VoltageDowngrade::kStock});
    ladder.AddRow({"underclock", StrFormat("%.0f%%", uc * 100),
                   bench::F(c2.TopFrequencyHz() / 1e9, 2), "4/4"});
  }
  ladder.Print();

  // Run the workload at the 5 % underclock vs the nearest cap (mult 8 ->
  // -15.8 %): capping overshoots the paper's sweet spot.
  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();
  workload.queries.resize(4);
  ExperimentRunner runner(db.get());
  auto stock = runner.RunWorkload(workload, SystemSettings::Stock(), {});
  auto uc5 = runner.RunWorkload(workload, {0.05, VoltageDowngrade::kMedium},
                                {});
  // Capping mult to 8 at stock FSB == frequency of a 15.8 % underclock.
  auto capped = runner.RunWorkload(workload,
                                   {1.0 - 8.0 / 9.5, VoltageDowngrade::kMedium},
                                   {});
  if (!stock.ok() || !uc5.ok() || !capped.ok()) return 1;

  TablePrinter table({"mechanism", "time ratio", "energy ratio", "EDP ratio"});
  RatioPoint a = RatioVs(uc5.value(), stock.value());
  RatioPoint b = RatioVs(capped.value(), stock.value());
  table.AddRow({"underclock 5% + medium", bench::F(a.time_ratio),
                bench::F(a.energy_ratio), bench::F(a.edp_ratio)});
  table.AddRow({"cap mult=8 (=15.8%) + medium", bench::F(b.time_ratio),
                bench::F(b.energy_ratio), bench::F(b.edp_ratio)});
  table.Print();

  std::printf(
      "\nUnderclocking reaches the EDP-optimal ~5%% point that capping "
      "cannot express —\nthe paper's motivation for the finer-grained "
      "mechanism.\n");
  return 0;
}

// Ablation: how well the energy-aware cost model predicts the PVC
// trade-off curve without executing anything — the capability a DBMS
// needs to "generate graphs as shown in Figure 1" online (Section 1).

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.01);
  bench::Header("Ablation: predicted vs measured PVC curve",
                "Lang & Patel, CIDR 2009, Section 1 (how to generate Fig. 1)");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();
  workload.queries.resize(4);

  PvcController pvc(db.get());
  auto predicted = pvc.PredictCurve(workload, PvcController::PaperGrid());
  auto measured =
      pvc.MeasureCurve(workload, PvcController::PaperGrid(), RunOptions{});
  if (!predicted.ok() || !measured.ok()) {
    std::fprintf(stderr, "sweep failed\n");
    return 1;
  }

  TablePrinter table({"setting", "pred. time ratio", "meas. time ratio",
                      "pred. energy ratio", "meas. energy ratio",
                      "pred. EDP", "meas. EDP"});
  for (size_t i = 0; i < predicted.value().points.size(); ++i) {
    const OperatingPoint& p = predicted.value().points[i];
    const OperatingPoint& m = measured.value().points[i];
    table.AddRow({p.settings.ToString(), bench::F(p.ratio.time_ratio),
                  bench::F(m.ratio.time_ratio),
                  bench::F(p.ratio.energy_ratio),
                  bench::F(m.ratio.energy_ratio),
                  bench::F(p.ratio.edp_ratio), bench::F(m.ratio.edp_ratio)});
  }
  table.Print();

  std::printf(
      "\nThe model predicts RATIOS nearly exactly (they depend on machine "
      "physics, not\ncardinalities), so an optimizer can pick an operating "
      "point without trial runs.\n");
  return 0;
}

// Reproduces Table 1: system wall-power breakdown as components are added
// (PSU+MOBO soft-off, powered on, +CPU(+fan), +1G RAM, +2G RAM, +GPU).

#include "bench_util.h"

using namespace ecodb;

int main() {
  bench::Header("Table 1: System Power Breakdown",
                "Lang & Patel, CIDR 2009, Table 1");

  struct Stage {
    const char* label;
    bool sys_on;
    bool has_cpu;
    int dimms;
    bool has_gpu;
    double paper_w;
  };
  const Stage stages[] = {
      {"PSU+MOBO, system off", false, false, 0, false, 9.2},
      {"PSU+MOBO, system on", true, false, 0, false, 20.1},
      {"+ CPU (incl. fan)", true, true, 0, false, 49.7},
      {"+ 1G RAM", true, true, 1, false, 54.0},
      {"+ 2G RAM", true, true, 2, false, 55.7},
      {"+ GPU", true, true, 2, true, 69.3},
  };

  TablePrinter table({"configuration", "measured W", "paper W", "error"});
  for (const Stage& s : stages) {
    MachineConfig cfg = MachineConfig::PaperTestbed();
    cfg.has_disk = false;   // paper's breakdown excludes disk and OS
    cfg.os_running = false; // (Section 3.2)
    cfg.has_cpu = s.has_cpu;
    cfg.num_dimms = s.dimms;
    cfg.has_gpu = s.has_gpu;
    Machine machine(cfg);
    double w = s.sys_on ? machine.IdleWallPowerW()
                        : machine.StandbyWallPowerW();
    table.AddRow({s.label, bench::F(w, 1), bench::F(s.paper_w, 1),
                  StrFormat("%+.1f%%", (w / s.paper_w - 1.0) * 100.0)});
  }
  table.Print();

  std::printf(
      "\nNotes: wall watts through the PSU efficiency curve (~83%% at 20%% "
      "load, Section 3.2);\nthe DDR3 pair draws ~6 W DC as the paper "
      "reports; GPU is idle (no server workload uses it).\n");
  return 0;
}

// Reproduces Figure 6: QED — per-query energy vs average response time
// for aggregation batch sizes 35, 40, 45, 50 against the sequential
// baseline (2 %-selectivity selections on lineitem, MySQL memory engine,
// stock settings; paper SF 0.5).

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Figure 6: QED Energy vs Average Response Time",
                "Lang & Patel, CIDR 2009, Figure 6 / Section 4 (paper SF 0.5)");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  auto workload = tpch::MakeSelectionWorkload(*db->catalog(), 50, 7).value();

  struct PaperPoint {
    double energy, time;
  };
  // Figure 6 text: n=35: -46 % E / +52 % t; n=40: -51 % / +50 %;
  // n=50 gives the best EDP (headline: -54 % E for +43 % t).
  const PaperPoint paper[4] = {{0.54, 1.52}, {0.49, 1.50}, {-1, -1},
                               {0.46, 1.43}};

  TablePrinter table({"batch", "energy ratio", "paper E", "resp. ratio",
                      "paper RT", "EDP ratio", "1st query x", "results ok"});
  int i = 0;
  for (int n : {35, 40, 45, 50}) {
    QedScheduler qed(db.get(), QedOptions{n, false});
    auto rep = qed.RunComparison(workload);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
      return 1;
    }
    const QedBatchReport& r = rep.value();
    table.AddRow(
        {StrFormat("%d", n), bench::F(r.energy_ratio),
         paper[i].energy > 0 ? bench::F(paper[i].energy, 2) : "-",
         bench::F(r.response_ratio),
         paper[i].time > 0 ? bench::F(paper[i].time, 2) : "-",
         bench::F(r.edp_ratio), StrFormat("%.1f", r.first_query_degradation),
         r.results_match ? "yes" : "NO"});
    ++i;
  }
  table.Print();

  std::printf(
      "\nPaper shape: energy savings grow with batch size with diminishing "
      "returns; the\nrelative response-time penalty FALLS as the batch "
      "grows; the largest batch (50)\nhas the best EDP. The first query in "
      "the batch suffers the largest degradation.\n");
  return 0;
}

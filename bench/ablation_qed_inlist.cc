// Ablation: evaluating QED's merged predicate as a hash-set IN probe
// instead of MySQL's short-circuit OR chain. The OR chain's per-disjunct
// cost is what limits QED's savings in the paper; a hash probe makes the
// merged query almost batch-size-independent.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Ablation: QED merged-predicate evaluation strategy",
                "extends Lang & Patel, CIDR 2009, Section 4");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  auto workload = tpch::MakeSelectionWorkload(*db->catalog(), 50, 7).value();

  TablePrinter table({"batch", "strategy", "energy ratio", "resp. ratio",
                      "EDP ratio"});
  for (int n : {20, 35, 50}) {
    for (bool hashed : {false, true}) {
      QedScheduler qed(db.get(), QedOptions{n, hashed});
      auto rep = qed.RunComparison(workload);
      if (!rep.ok()) {
        std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
        return 1;
      }
      table.AddRow({StrFormat("%d", n), hashed ? "hashed IN" : "OR chain",
                    bench::F(rep.value().energy_ratio),
                    bench::F(rep.value().response_ratio),
                    bench::F(rep.value().edp_ratio)});
    }
  }
  table.Print();

  std::printf(
      "\nThe hashed IN variant deepens QED's energy savings at every batch "
      "size: the\nper-tuple disjunction cost collapses to a single probe, "
      "so batching amortizes\nthe scan almost perfectly. This quantifies "
      "how much of the paper's trade-off is\nan artifact of OR-chain "
      "evaluation in MySQL 5.1.\n");
  return 0;
}

// Ablation: energy proportionality of the simulated server (Section 2's
// Barroso/Hoelzle observation: "modern hardware consumes more than half
// the peak energy even when idle"). Measures wall power at idle vs under
// load, at stock and eco settings.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.01);
  bench::Header("Ablation: energy (non-)proportionality of the testbed",
                "Lang & Patel, CIDR 2009, Section 2 / [2]");

  auto db = bench::MakeDb(EngineProfile::Commercial(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();
  workload.queries.resize(4);

  TablePrinter table({"setting", "idle wall W", "loaded wall W",
                      "idle/peak", "CPU share of DC (loaded)"});
  for (const SystemSettings& s :
       {SystemSettings::Stock(),
        SystemSettings{0.05, VoltageDowngrade::kMedium}}) {
    if (!db->ApplySettings(s).ok()) return 1;
    double idle_w = db->machine()->IdleWallPowerW();
    ExperimentRunner runner(db.get());
    auto m = runner.RunWorkload(workload, s, {});
    if (!m.ok()) return 1;
    double loaded_w = m.value().wall_j / m.value().seconds;
    double cpu_share = m.value().cpu_j / m.value().dc_j;
    table.AddRow({s.ToString(), bench::F(idle_w, 1), bench::F(loaded_w, 1),
                  StrFormat("%.0f%%", idle_w / loaded_w * 100),
                  StrFormat("%.0f%%", cpu_share * 100)});
  }
  table.Print();

  std::printf(
      "\nThe idle machine burns well over half its loaded wall power — the "
      "Section 2\nobservation motivating techniques that trade performance "
      "for energy while\nhardware remains non-proportional. The CPU is "
      "~25%% of system power when running\n(Section 3.2's observation).\n");
  return 0;
}

// Ablation: QED generalized to aggregation queries via shared scans —
// the paper's claim that "generalization of our method to more complex
// workloads (beyond simple select queries) is feasible" (Section 4).
// A batch of Q6-shaped revenue queries with different date windows is
// evaluated in one pass over lineitem.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Ablation: QED shared-scan aggregation (Q6 batches)",
                "extends Lang & Patel, CIDR 2009, Section 4");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  Machine* machine = db->machine();

  // One Q6 per quarter of 1994-1995: non-overlapping windows, equal work.
  auto make_batch = [&](int n) {
    std::vector<PlanNodePtr> plans;
    static const char* kQuarters[] = {
        "1994-01-01", "1994-04-01", "1994-07-01", "1994-10-01",
        "1995-01-01", "1995-04-01", "1995-07-01", "1995-10-01",
        "1996-01-01"};
    for (int i = 0; i < n; ++i) {
      tpch::Q6Params p;
      p.date_lo = kQuarters[i];
      p.date_hi = kQuarters[i + 1];
      plans.push_back(tpch::BuildQ6Plan(*db->catalog(), p).value());
    }
    return plans;
  };

  TablePrinter table({"batch", "seq time (s)", "shared time (s)",
                      "seq CPU J", "shared CPU J", "energy ratio",
                      "avg resp ratio", "results ok"});
  for (int n : {2, 4, 8}) {
    auto plans = make_batch(n);

    // Sequential baseline (response time of query i = completion offset).
    machine->ResetMeters();
    double t0 = machine->NowSeconds();
    std::vector<std::vector<Row>> seq_results;
    double seq_resp_sum = 0;
    for (const PlanNodePtr& p : plans) {
      auto r = db->ExecutePlanQuery(*p);
      if (!r.ok()) return 1;
      seq_results.push_back(r.value().TakeRows());
      seq_resp_sum += machine->NowSeconds() - t0;
    }
    double seq_s = machine->NowSeconds() - t0;
    double seq_j = machine->ledger().cpu_j;

    // Shared scan.
    std::vector<const PlanNode*> members;
    for (const auto& p : plans) members.push_back(p.get());
    auto batch = AnalyzeSharedAggBatch(members);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
      return 1;
    }
    machine->ResetMeters();
    t0 = machine->NowSeconds();
    auto ctx = db->MakeExecContext();
    auto shared = RunSharedScanAggregates(batch.value(), ctx.get());
    if (!shared.ok()) return 1;
    double shared_s = machine->NowSeconds() - t0;
    double shared_j = machine->ledger().cpu_j;

    bool ok = true;
    for (int i = 0; i < n; ++i) {
      const Row& a = shared.value()[static_cast<size_t>(i)][0];
      const Row& b = seq_results[static_cast<size_t>(i)][0];
      for (size_t c = 0; c < a.size(); ++c) {
        if (a[c].Compare(b[c]) != 0) ok = false;
      }
    }

    table.AddRow({StrFormat("%d", n), bench::F(seq_s), bench::F(shared_s),
                  bench::F(seq_j, 2), bench::F(shared_j, 2),
                  bench::F(shared_j / seq_j),
                  bench::F(shared_s / (seq_resp_sum / n)),
                  ok ? "yes" : "NO"});
  }
  table.Print();

  std::printf(
      "\nAggregation batches amortize better than Figure 6's selections: "
      "there is no\nresult-split cost and no per-tuple output, so one scan "
      "serves N queries at\nnear 1/N scan energy plus per-member predicate "
      "work.\n");
  return 0;
}

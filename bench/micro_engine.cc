// Engine micro-benchmarks: host wall-clock performance of the simulator
// itself (not simulated time), comparing row-at-a-time Volcano execution
// against the vectorized RowBatch engine on the same plans.
//
// Emits machine-readable JSON on stdout so successive PRs can track the
// perf trajectory (redirect to BENCH_micro_engine.json). Per benchmark and
// mode: host rows/sec through the pipeline, host seconds per query, and
// the *simulated* seconds and joules per query — which must agree between
// modes (the parity suite enforces < 0.1%).
//
// Usage: micro_engine [--sf=0.02]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ecodb/ecodb.h"

namespace ecodb::bench {
namespace {

struct ModeResult {
  double wall_seconds_per_iter = 0;
  double rows_per_sec = 0;
  uint64_t rows_scanned = 0;
  size_t result_rows = 0;
  double sim_seconds = 0;
  double sim_joules = 0;
};

/// Builds the acceptance pipeline: scan(lineitem) -> filter -> group-by
/// aggregate, the shape whose per-tuple interpretation overhead the batch
/// engine amortizes.
Result<PlanNodePtr> BuildScanFilterAgg(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  auto col = [&](const char* name) {
    int idx = s.FindField(name);
    if (idx < 0) {
      std::fprintf(stderr, "lineitem field not found: %s\n", name);
      std::exit(1);
    }
    return Col(idx, s.field(idx).type, name);
  };
  ExprPtr qty = col("l_quantity");
  ExprPtr price = col("l_extendedprice");
  ExprPtr disc = col("l_discount");
  ExprPtr flag = col("l_returnflag");
  PlanNodePtr filtered = MakeFilter(
      std::move(scan), Cmp(CompareOp::kLt, qty, LitInt(25)));
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.arg = Arith(ArithOp::kMul, price,
                      Arith(ArithOp::kSub, LitDbl(1.0), disc));
  revenue.name = "revenue";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  return MakeAggregate(std::move(filtered), {flag}, {revenue, cnt});
}

ModeResult RunPlan(Database* db, const PlanNode& plan) {
  // Warm once, then time iterations until we have a stable best-of run.
  ModeResult out;
  double best = 1e100;
  const int kMinIters = 3;
  const double kMinTotalSeconds = 0.25;
  double total = 0;
  int iters = 0;
  while (iters < kMinIters || total < kMinTotalSeconds) {
    auto t0 = std::chrono::steady_clock::now();
    auto res = db->ExecutePlanQuery(plan);
    auto t1 = std::chrono::steady_clock::now();
    if (!res.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   res.status().ToString().c_str());
      std::exit(1);
    }
    double wall = std::chrono::duration<double>(t1 - t0).count();
    total += wall;
    ++iters;
    if (wall < best) {
      best = wall;
      out.rows_scanned = res.value().exec_stats.tuples_scanned;
      out.result_rows = res.value().rows.size();
      out.sim_seconds = res.value().seconds;
      out.sim_joules = res.value().wall_joules;
    }
    if (iters > 200) break;
  }
  out.wall_seconds_per_iter = best;
  out.rows_per_sec =
      best > 0 ? static_cast<double>(out.rows_scanned) / best : 0;
  return out;
}

void EmitMode(const char* name, const char* mode, const ModeResult& r,
              bool trailing_comma) {
  std::printf(
      "    {\"name\": \"%s\", \"mode\": \"%s\", "
      "\"wall_seconds_per_iter\": %.6e, \"rows_per_sec\": %.6e, "
      "\"rows_scanned\": %llu, \"result_rows\": %zu, "
      "\"sim_seconds\": %.9e, \"sim_joules_per_query\": %.9e}%s\n",
      name, mode, r.wall_seconds_per_iter, r.rows_per_sec,
      static_cast<unsigned long long>(r.rows_scanned), r.result_rows,
      r.sim_seconds, r.sim_joules, trailing_comma ? "," : "");
}

int Main(int argc, char** argv) {
  double sf = ScaleFactorArg(argc, argv, 0.02);

  DatabaseOptions row_opt;
  row_opt.profile = EngineProfile::MySqlMemory();
  row_opt.exec_mode = ExecMode::kRow;
  Database row_db(row_opt);
  DatabaseOptions batch_opt;
  batch_opt.profile = EngineProfile::MySqlMemory();
  batch_opt.exec_mode = ExecMode::kBatch;
  Database batch_db(batch_opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = sf;
  if (!row_db.LoadTpch(gen).ok() || !batch_db.LoadTpch(gen).ok()) {
    std::fprintf(stderr, "TPC-H load failed\n");
    return 1;
  }

  struct NamedPlan {
    std::string name;
    PlanNodePtr row_plan;
    PlanNodePtr batch_plan;
  };
  std::vector<NamedPlan> plans;
  auto add = [&](const std::string& name,
                 Result<PlanNodePtr> (*builder)(const Catalog&)) {
    auto rp = builder(*row_db.catalog());
    auto bp = builder(*batch_db.catalog());
    if (!rp.ok() || !bp.ok()) {
      std::fprintf(stderr, "plan build failed for %s\n", name.c_str());
      std::exit(1);
    }
    plans.push_back(
        NamedPlan{name, std::move(rp).value(), std::move(bp).value()});
  };
  add("scan_filter_agg", &BuildScanFilterAgg);
  add("scan_lineitem", [](const Catalog& c) {
    return MakeScan(c, "lineitem");
  });
  add("selection_q2pct", [](const Catalog& c) {
    return tpch::BuildSelectionQuery(c, 24);
  });
  add("tpch_q1", [](const Catalog& c) {
    return tpch::BuildQ1Plan(c, "1998-09-02");
  });
  add("tpch_q5", [](const Catalog& c) {
    return tpch::BuildQ5Plan(c, tpch::Q5Params{});
  });
  add("tpch_q6", [](const Catalog& c) {
    return tpch::BuildQ6Plan(c, tpch::Q6Params{});
  });

  std::printf("{\n  \"bench\": \"micro_engine\",\n  \"sf\": %g,\n", sf);
  std::printf("  \"batch_rows\": %zu,\n",
              static_cast<size_t>(RowBatch::kDefaultBatchRows));
  std::printf("  \"benchmarks\": [\n");
  std::vector<std::pair<std::string, double>> speedups;
  for (size_t i = 0; i < plans.size(); ++i) {
    ModeResult row_r = RunPlan(&row_db, *plans[i].row_plan);
    ModeResult batch_r = RunPlan(&batch_db, *plans[i].batch_plan);
    EmitMode(plans[i].name.c_str(), "row", row_r, true);
    EmitMode(plans[i].name.c_str(), "batch", batch_r,
             i + 1 < plans.size());
    speedups.emplace_back(plans[i].name,
                          row_r.wall_seconds_per_iter /
                              batch_r.wall_seconds_per_iter);
  }
  std::printf("  ],\n  \"batch_speedup\": {");
  for (size_t i = 0; i < speedups.size(); ++i) {
    std::printf("%s\"%s\": %.2f", i ? ", " : "", speedups[i].first.c_str(),
                speedups[i].second);
  }
  std::printf("}\n}\n");
  return 0;
}

}  // namespace
}  // namespace ecodb::bench

int main(int argc, char** argv) { return ecodb::bench::Main(argc, argv); }

// Engine micro-benchmarks: host wall-clock performance of the simulator
// itself (not simulated time), comparing row-at-a-time Volcano execution
// against the vectorized RowBatch engine on the same plans.
//
// Emits machine-readable JSON on stdout so successive PRs can track the
// perf trajectory (redirect to BENCH_micro_engine.json). Per benchmark and
// mode: host rows/sec through the pipeline, host seconds per query, and
// the *simulated* seconds and joules per query — which must agree between
// modes (the parity suite enforces < 0.1%).
//
// Usage: micro_engine [--sf=0.02]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ecodb/ecodb.h"

namespace ecodb::bench {
namespace {

struct ModeResult {
  double wall_seconds_per_iter = 0;
  double rows_per_sec = 0;
  uint64_t rows_scanned = 0;
  size_t result_rows = 0;
  double sim_seconds = 0;
  double sim_joules = 0;
};

/// Field lookup that dies loudly on a schema mismatch (these are fixed
/// TPC-H plans; a missing field is a build bug, not a runtime state).
int FieldIndexOrDie(const Schema& s, const char* name) {
  int idx = s.FindField(name);
  if (idx < 0) {
    std::fprintf(stderr, "field not found: %s\n", name);
    std::exit(1);
  }
  return idx;
}

ExprPtr FieldCol(const Schema& s, const char* name) {
  int idx = FieldIndexOrDie(s, name);
  return Col(idx, s.field(idx).type, name);
}

/// Join-heavy microbench: orders (one-year date filter) |x| lineitem on
/// orderkey, then a global aggregate so the timing isolates hash build,
/// batch-at-a-time probe and match emission rather than result
/// materialization. ~14% of probe rows match, the selective-join shape
/// where boxing only matched probe positions pays off.
Result<PlanNodePtr> BuildJoinOrdersLineitem(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr orders, MakeScan(catalog, "orders"));
  ExprPtr odate_col = FieldCol(orders->output_schema, "o_orderdate");
  PlanNodePtr filtered = MakeFilter(
      std::move(orders),
      And({Cmp(CompareOp::kGe, odate_col, LitDate("1994-01-01")),
           Cmp(CompareOp::kLt, odate_col, LitDate("1995-01-01"))}));
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr lineitem, MakeScan(catalog, "lineitem"));
  int ok_build = FieldIndexOrDie(filtered->output_schema, "o_orderkey");
  int ok_probe = FieldIndexOrDie(lineitem->output_schema, "l_orderkey");
  PlanNodePtr joined = MakeHashJoin(std::move(filtered), std::move(lineitem),
                                    {ok_build}, {ok_probe});
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = FieldCol(joined->output_schema, "l_extendedprice");
  sum.name = "revenue";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  return MakeAggregate(std::move(joined), {}, {sum, cnt});
}

/// Sort-dominated bench: scan(lineitem) -> ORDER BY (l_shipdate desc,
/// l_orderkey) with full-width output. Isolates the columnar SortOp
/// (typed input columns, index sort over unboxed keys, lane emission)
/// plus the columnar ResultSet drain; before PR 4 this path boxed every
/// tuple twice (sort materialization + result materialization).
Result<PlanNodePtr> BuildOrderByLineitem(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  std::vector<SortKey> keys;
  keys.push_back(SortKey{FieldCol(s, "l_shipdate"), /*ascending=*/false});
  keys.push_back(SortKey{FieldCol(s, "l_orderkey"), /*ascending=*/true});
  return MakeSort(std::move(scan), std::move(keys));
}

/// Limit-topped aggregate: scan(lineitem) -> group by l_orderkey (many
/// groups) -> SUM/COUNT -> LIMIT 100. Isolates the columnar HashAgg
/// emission + truncating batched LimitOp: before PR 5 the aggregate
/// boxed every group into result Rows and the limit row-pulled them.
Result<PlanNodePtr> BuildLimitOverAgg(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.arg = FieldCol(s, "l_extendedprice");
  revenue.name = "revenue";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  PlanNodePtr agg = MakeAggregate(std::move(scan),
                                  {FieldCol(s, "l_orderkey")},
                                  {revenue, cnt});
  return MakeLimit(std::move(agg), 100);
}

/// String-heavy group-by: scan(lineitem) -> group by (l_shipmode,
/// l_returnflag, l_linestatus) -> SUM/COUNT/MIN(l_shipinstruct).
/// Exercises unboxed string group-key hashing, the string MIN
/// accumulator, columnar string-key emission and the result-string
/// dedup/handoff path.
Result<PlanNodePtr> BuildGroupByStrings(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = FieldCol(s, "l_quantity");
  sum.name = "qty";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  AggSpec mn;
  mn.kind = AggSpec::Kind::kMin;
  mn.arg = FieldCol(s, "l_shipinstruct");
  mn.name = "min_instruct";
  return MakeAggregate(std::move(scan),
                       {FieldCol(s, "l_shipmode"), FieldCol(s, "l_returnflag"),
                        FieldCol(s, "l_linestatus")},
                       {sum, cnt, mn});
}

/// Dict-predicate filter bench: scan(lineitem) -> l_shipmode IN
/// ('AIR','RAIL','SHIP') AND l_returnflag = 'R' -> global SUM/COUNT.
/// Both predicates resolve against dictionary-encoded columns, so the
/// batch engine translates them to int32 code comparisons (SIMD
/// CompareI32LitMask) instead of per-row byte compares.
Result<PlanNodePtr> BuildDictFilterStrings(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  std::vector<Value> modes;
  modes.push_back(Value::Str("AIR"));
  modes.push_back(Value::Str("RAIL"));
  modes.push_back(Value::Str("SHIP"));
  PlanNodePtr filtered = MakeFilter(
      std::move(scan),
      And({InList(FieldCol(s, "l_shipmode"), std::move(modes)),
           Cmp(CompareOp::kEq, FieldCol(s, "l_returnflag"), LitStr("R"))}));
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = FieldCol(s, "l_extendedprice");
  sum.name = "revenue";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  return MakeAggregate(std::move(filtered), {}, {sum, cnt});
}

/// Dict-key join bench: lineitem (1994 shipdates) self-joined to lineitem
/// on (l_orderkey, l_shipmode), then a global aggregate. The string half
/// of the composite key hashes and compares through dictionary codes on
/// both the build and probe sides; matches are bounded by lines-per-order
/// so the join output stays proportional to the probe input.
Result<PlanNodePtr> BuildDictJoinStrings(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr build, MakeScan(catalog, "lineitem"));
  ExprPtr sdate = FieldCol(build->output_schema, "l_shipdate");
  PlanNodePtr filtered = MakeFilter(
      std::move(build),
      And({Cmp(CompareOp::kGe, sdate, LitDate("1994-01-01")),
           Cmp(CompareOp::kLt, sdate, LitDate("1995-01-01"))}));
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr probe, MakeScan(catalog, "lineitem"));
  int bk_ok = FieldIndexOrDie(filtered->output_schema, "l_orderkey");
  int bk_sm = FieldIndexOrDie(filtered->output_schema, "l_shipmode");
  int pk_ok = FieldIndexOrDie(probe->output_schema, "l_orderkey");
  int pk_sm = FieldIndexOrDie(probe->output_schema, "l_shipmode");
  PlanNodePtr joined = MakeHashJoin(std::move(filtered), std::move(probe),
                                    {bk_ok, bk_sm}, {pk_ok, pk_sm});
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = FieldCol(joined->output_schema, "l_quantity");
  sum.name = "qty";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  return MakeAggregate(std::move(joined), {}, {sum, cnt});
}

/// Builds the acceptance pipeline: scan(lineitem) -> filter -> group-by
/// aggregate, the shape whose per-tuple interpretation overhead the batch
/// engine amortizes.
Result<PlanNodePtr> BuildScanFilterAgg(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  ExprPtr qty = FieldCol(s, "l_quantity");
  ExprPtr price = FieldCol(s, "l_extendedprice");
  ExprPtr disc = FieldCol(s, "l_discount");
  ExprPtr flag = FieldCol(s, "l_returnflag");
  PlanNodePtr filtered = MakeFilter(
      std::move(scan), Cmp(CompareOp::kLt, qty, LitInt(25)));
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.arg = Arith(ArithOp::kMul, price,
                      Arith(ArithOp::kSub, LitDbl(1.0), disc));
  revenue.name = "revenue";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  return MakeAggregate(std::move(filtered), {flag}, {revenue, cnt});
}

ModeResult RunPlan(Database* db, const PlanNode& plan) {
  // Warm once, then time iterations until we have a stable best-of run.
  ModeResult out;
  double best = 1e100;
  const int kMinIters = 3;
  const double kMinTotalSeconds = 0.25;
  double total = 0;
  int iters = 0;
  while (iters < kMinIters || total < kMinTotalSeconds) {
    auto t0 = std::chrono::steady_clock::now();
    auto res = db->ExecutePlanQuery(plan);
    auto t1 = std::chrono::steady_clock::now();
    if (!res.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   res.status().ToString().c_str());
      std::exit(1);
    }
    double wall = std::chrono::duration<double>(t1 - t0).count();
    total += wall;
    ++iters;
    if (wall < best) {
      best = wall;
      out.rows_scanned = res.value().exec_stats.tuples_scanned;
      out.result_rows = res.value().num_rows();
      out.sim_seconds = res.value().seconds;
      out.sim_joules = res.value().wall_joules;
    }
    if (iters > 200) break;
  }
  out.wall_seconds_per_iter = best;
  out.rows_per_sec =
      best > 0 ? static_cast<double>(out.rows_scanned) / best : 0;
  return out;
}

/// Times a host-side closure (no simulated execution): best-of wall
/// seconds per iteration. The closure is sampled in inner batches sized
/// so each sample is well above clock resolution/overhead (planner ops
/// run in the microsecond range), and sampling continues until the same
/// 0.25s budget as RunPlan is spent.
template <typename Fn>
double TimeHostOp(Fn&& fn) {
  // Calibrate the inner-batch size: target ~2ms per sample.
  auto sample = [&](int calls) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  int batch = 1;
  double wall = sample(1);
  while (wall < 2e-3 && batch < (1 << 20)) {
    batch *= 2;
    wall = sample(batch);
  }
  double best = wall / batch;
  const int kMinSamples = 3;
  const double kMinTotalSeconds = 0.25;
  double total = wall;
  for (int s = 1; s < kMinSamples || total < kMinTotalSeconds; ++s) {
    wall = sample(batch);
    total += wall;
    if (wall / batch < best) best = wall / batch;
    if (s > 500) break;
  }
  return best;
}

void EmitMode(const char* name, const char* mode, const ModeResult& r,
              bool trailing_comma) {
  std::printf(
      "    {\"name\": \"%s\", \"mode\": \"%s\", "
      "\"wall_seconds_per_iter\": %.6e, \"rows_per_sec\": %.6e, "
      "\"rows_scanned\": %llu, \"result_rows\": %zu, "
      "\"sim_seconds\": %.9e, \"sim_joules_per_query\": %.9e}%s\n",
      name, mode, r.wall_seconds_per_iter, r.rows_per_sec,
      static_cast<unsigned long long>(r.rows_scanned), r.result_rows,
      r.sim_seconds, r.sim_joules, trailing_comma ? "," : "");
}

int Main(int argc, char** argv) {
  double sf = ScaleFactorArg(argc, argv, 0.02);

  DatabaseOptions row_opt;
  row_opt.profile = EngineProfile::MySqlMemory();
  row_opt.exec_mode = ExecMode::kRow;
  Database row_db(row_opt);
  DatabaseOptions batch_opt;
  batch_opt.profile = EngineProfile::MySqlMemory();
  batch_opt.exec_mode = ExecMode::kBatch;
  Database batch_db(batch_opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = sf;
  if (!row_db.LoadTpch(gen).ok() || !batch_db.LoadTpch(gen).ok()) {
    std::fprintf(stderr, "TPC-H load failed\n");
    return 1;
  }

  struct NamedPlan {
    std::string name;
    PlanNodePtr row_plan;
    PlanNodePtr batch_plan;
  };
  std::vector<NamedPlan> plans;
  auto add = [&](const std::string& name,
                 Result<PlanNodePtr> (*builder)(const Catalog&)) {
    auto rp = builder(*row_db.catalog());
    auto bp = builder(*batch_db.catalog());
    if (!rp.ok() || !bp.ok()) {
      std::fprintf(stderr, "plan build failed for %s\n", name.c_str());
      std::exit(1);
    }
    plans.push_back(
        NamedPlan{name, std::move(rp).value(), std::move(bp).value()});
  };
  add("scan_filter_agg", &BuildScanFilterAgg);
  add("scan_lineitem", [](const Catalog& c) {
    return MakeScan(c, "lineitem");
  });
  add("selection_q2pct", [](const Catalog& c) {
    return tpch::BuildSelectionQuery(c, 24);
  });
  add("join_orders_lineitem", &BuildJoinOrdersLineitem);
  add("order_by_lineitem", &BuildOrderByLineitem);
  add("limit_over_agg", &BuildLimitOverAgg);
  add("group_by_strings", &BuildGroupByStrings);
  add("dict_filter_strings", &BuildDictFilterStrings);
  add("dict_join_strings", &BuildDictJoinStrings);
  add("tpch_q1", [](const Catalog& c) {
    return tpch::BuildQ1Plan(c, "1998-09-02");
  });
  add("tpch_q3", [](const Catalog& c) {
    return tpch::BuildQ3Plan(c, tpch::Q3Params{});
  });
  add("tpch_q5", [](const Catalog& c) {
    return tpch::BuildQ5Plan(c, tpch::Q5Params{});
  });
  add("tpch_q6", [](const Catalog& c) {
    return tpch::BuildQ6Plan(c, tpch::Q6Params{});
  });

  std::printf("{\n  \"bench\": \"micro_engine\",\n  \"sf\": %g,\n", sf);
  std::printf("  \"batch_rows\": %zu,\n",
              static_cast<size_t>(RowBatch::kDefaultBatchRows));
  std::printf("  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"benchmarks\": [\n");
  std::vector<std::pair<std::string, double>> speedups;
  std::vector<std::pair<std::string, double>> batch_walls;
  for (size_t i = 0; i < plans.size(); ++i) {
    ModeResult row_r = RunPlan(&row_db, *plans[i].row_plan);
    ModeResult batch_r = RunPlan(&batch_db, *plans[i].batch_plan);
    EmitMode(plans[i].name.c_str(), "row", row_r, true);
    EmitMode(plans[i].name.c_str(), "batch", batch_r,
             i + 1 < plans.size());
    speedups.emplace_back(plans[i].name,
                          row_r.wall_seconds_per_iter /
                              batch_r.wall_seconds_per_iter);
    batch_walls.emplace_back(plans[i].name, batch_r.wall_seconds_per_iter);
  }
  std::printf("  ],\n");

  // Morsel-parallel workers sweep: the same batch plans on the parallel
  // engine at increasing worker counts. Wall time is host time; the
  // simulated metrics are replayed deterministically and must agree with
  // the sequential batch run (the parity suite enforces it). One database
  // is reused across worker counts — exec_workers is a per-query knob.
  //
  // Two speedups are reported per point. "speedup_vs_batch" is host wall
  // time and depends on the machine running this bench (on a single-CPU
  // host it cannot exceed 1 for any implementation — see "host_cpus" in
  // the header). "sim_core_speedup" is the simulator's own concurrency
  // view: after one run with fresh core ledgers, the sum of per-core busy
  // seconds (the work one core would serialize) over the phase makespan
  // (the slowest core). It is deterministic, host-independent, and capped
  // by the simulated machine's core count.
  DatabaseOptions par_opt;
  par_opt.profile = EngineProfile::MySqlMemory();
  par_opt.exec_mode = ExecMode::kBatch;
  Database par_db(par_opt);
  if (!par_db.LoadTpch(gen).ok()) {
    std::fprintf(stderr, "TPC-H load failed (parallel sweep)\n");
    return 1;
  }
  const char* kSweepNames[] = {"scan_filter_agg", "tpch_q1",
                               "tpch_q3",        "tpch_q5",
                               "order_by_lineitem", "group_by_strings"};
  const int kWorkerCounts[] = {1, 2, 4, 8};
  auto batch_wall_of = [&](const std::string& name) {
    for (const auto& bw : batch_walls) {
      if (bw.first == name) return bw.second;
    }
    return 0.0;
  };
  auto build_sweep_plan = [&](const std::string& name) -> Result<PlanNodePtr> {
    if (name == "scan_filter_agg") return BuildScanFilterAgg(*par_db.catalog());
    if (name == "tpch_q1")
      return tpch::BuildQ1Plan(*par_db.catalog(), "1998-09-02");
    if (name == "tpch_q3")
      return tpch::BuildQ3Plan(*par_db.catalog(), tpch::Q3Params{});
    if (name == "tpch_q5")
      return tpch::BuildQ5Plan(*par_db.catalog(), tpch::Q5Params{});
    if (name == "order_by_lineitem")
      return BuildOrderByLineitem(*par_db.catalog());
    return BuildGroupByStrings(*par_db.catalog());
  };
  std::vector<std::pair<std::string, double>> par_speedups;
  std::printf("  \"parallel_benchmarks\": [\n");
  for (size_t ni = 0; ni < std::size(kSweepNames); ++ni) {
    const std::string name = kSweepNames[ni];
    Result<PlanNodePtr> plan = build_sweep_plan(name);
    if (!plan.ok()) {
      std::fprintf(stderr, "parallel sweep plan build failed for %s\n",
                   name.c_str());
      return 1;
    }
    double base_wall = batch_wall_of(name);
    double best_speedup = 0.0;
    for (size_t wi = 0; wi < std::size(kWorkerCounts); ++wi) {
      par_db.set_exec_workers(kWorkerCounts[wi]);
      ModeResult r = RunPlan(&par_db, *plan.value());
      double host_speedup =
          r.wall_seconds_per_iter > 0 ? base_wall / r.wall_seconds_per_iter
                                      : 0.0;
      // Simulated core speedup from one run with fresh core ledgers.
      par_db.machine()->ResetCoreLedgers();
      auto res = par_db.ExecutePlanQuery(*plan.value());
      if (!res.ok()) {
        std::fprintf(stderr, "parallel sweep query failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      double busy_sum = 0.0;
      for (const CoreLedger& c : par_db.machine()->core_ledgers()) {
        busy_sum += c.busy_s;
      }
      ParallelPhaseSummary ph = par_db.machine()->SummarizeCorePhase();
      // Per-phase slices: morsel pools mark a named phase per parallel
      // stage ("stream", "join_build", "agg", "sort"). Same-label slices
      // (one per pool) are merged core-wise before summarizing, so each
      // label reports its own work volume / makespan = core speedup.
      struct PhaseAgg {
        std::string label;
        std::vector<CoreLedger> ledgers;
      };
      std::vector<PhaseAgg> phase_aggs;
      for (const CorePhase& cp : par_db.machine()->core_phases()) {
        PhaseAgg* agg = nullptr;
        for (PhaseAgg& pa : phase_aggs) {
          if (pa.label == cp.label) { agg = &pa; break; }
        }
        if (agg == nullptr) {
          phase_aggs.push_back(PhaseAgg{
              cp.label, std::vector<CoreLedger>(cp.ledgers.size())});
          agg = &phase_aggs.back();
        }
        for (size_t ci = 0;
             ci < cp.ledgers.size() && ci < agg->ledgers.size(); ++ci) {
          agg->ledgers[ci].busy_s += cp.ledgers[ci].busy_s;
          agg->ledgers[ci].cpu_j += cp.ledgers[ci].cpu_j;
          agg->ledgers[ci].mem_j += cp.ledgers[ci].mem_j;
          agg->ledgers[ci].cycles += cp.ledgers[ci].cycles;
          agg->ledgers[ci].mem_lines += cp.ledgers[ci].mem_lines;
        }
      }
      par_db.machine()->ResetCoreLedgers();
      double sim_speedup =
          ph.makespan_s > 0 ? busy_sum / ph.makespan_s : 1.0;
      if (sim_speedup > best_speedup) best_speedup = sim_speedup;
      bool last = ni + 1 == std::size(kSweepNames) &&
                  wi + 1 == std::size(kWorkerCounts);
      std::printf(
          "    {\"name\": \"%s\", \"workers\": %d, "
          "\"wall_seconds_per_iter\": %.6e, \"rows_per_sec\": %.6e, "
          "\"sim_seconds\": %.9e, \"sim_joules_per_query\": %.9e, "
          "\"speedup_vs_batch\": %.2f, \"sim_makespan_s\": %.9e, "
          "\"sim_core_speedup\": %.2f, \"phases\": [",
          name.c_str(), kWorkerCounts[wi], r.wall_seconds_per_iter,
          r.rows_per_sec, r.sim_seconds, r.sim_joules, host_speedup,
          ph.makespan_s, sim_speedup);
      for (size_t pi = 0; pi < phase_aggs.size(); ++pi) {
        ParallelPhaseSummary ps =
            par_db.machine()->SummarizeCoreLedgers(phase_aggs[pi].ledgers);
        double phase_speedup =
            ps.makespan_s > 0 ? ps.busy_sum_s / ps.makespan_s : 1.0;
        std::printf(
            "%s{\"label\": \"%s\", \"busy_sum_s\": %.9e, "
            "\"makespan_s\": %.9e, \"sim_core_speedup\": %.2f}",
            pi ? ", " : "", phase_aggs[pi].label.c_str(), ps.busy_sum_s,
            ps.makespan_s, phase_speedup);
      }
      std::printf("]}%s\n", last ? "" : ",");
    }
    par_db.set_exec_workers(1);
    par_speedups.emplace_back(name, best_speedup);
  }
  std::printf("  ],\n");
  // Best simulated core speedup per plan across the worker counts.
  std::printf("  \"parallel_sim_core_speedup\": {");
  for (size_t i = 0; i < par_speedups.size(); ++i) {
    std::printf("%s\"%s\": %.2f", i ? ", " : "",
                par_speedups[i].first.c_str(), par_speedups[i].second);
  }
  std::printf("},\n");

  // Planner/optimizer host benchmarks, ported from the seed's
  // google-benchmark harness (SQL parse+plan, cost-model estimate,
  // MergeSelections) so regressions there show up in this JSON too. They
  // have no row/batch modes: each times a host-side operation only.
  struct HostBench {
    std::string name;
    double secs = 0;
  };
  std::vector<HostBench> host;
  {
    std::string sql = tpch::Q5Sql(tpch::Q5Params{});
    host.push_back({"sql_parse_plan", TimeHostOp([&] {
                      auto plan = batch_db.PlanSql(sql);
                      if (!plan.ok()) {
                        std::fprintf(stderr, "sql_parse_plan failed: %s\n",
                                     plan.status().ToString().c_str());
                        std::exit(1);
                      }
                    })});
    CostModel model(batch_db.catalog(), &batch_db.profile(),
                    batch_db.options().machine);
    auto q5 = tpch::BuildQ5Plan(*batch_db.catalog(), tpch::Q5Params{});
    if (!q5.ok()) {
      std::fprintf(stderr, "Q5 plan build failed\n");
      return 1;
    }
    host.push_back({"cost_model_estimate", TimeHostOp([&] {
                      auto cost =
                          model.Estimate(*q5.value(), SystemSettings::Stock());
                      if (!cost.ok()) {
                        std::fprintf(stderr,
                                     "cost_model_estimate failed: %s\n",
                                     cost.status().ToString().c_str());
                        std::exit(1);
                      }
                    })});
    auto wl = tpch::MakeSelectionWorkload(*batch_db.catalog(), 50, 7);
    if (!wl.ok()) {
      std::fprintf(stderr, "selection workload build failed\n");
      return 1;
    }
    std::vector<const PlanNode*> members;
    for (const auto& q : wl.value().queries) members.push_back(q.get());
    host.push_back({"merge_selections", TimeHostOp([&] {
                      auto merged = MergeSelections(members);
                      if (!merged.ok()) {
                        std::fprintf(stderr, "merge_selections failed: %s\n",
                                     merged.status().ToString().c_str());
                        std::exit(1);
                      }
                    })});
  }
  std::printf("  \"planner_benchmarks\": [\n");
  for (size_t i = 0; i < host.size(); ++i) {
    std::printf(
        "    {\"name\": \"%s\", \"wall_seconds_per_iter\": %.6e, "
        "\"iters_per_sec\": %.6e}%s\n",
        host[i].name.c_str(), host[i].secs,
        host[i].secs > 0 ? 1.0 / host[i].secs : 0.0,
        i + 1 < host.size() ? "," : "");
  }

  std::printf("  ],\n");

  // Fault-injected retry benchmarks: cold full scans of lineitem on the
  // disk-backed Commercial profile at increasing transient-fault rates.
  // These are *simulated* metrics — each faulted read attempt charges the
  // full disk-read cost plus an energy-accounted idle backoff, so mean
  // joules/query must grow monotonically with the fault rate while the
  // zero-rate row stays bit-identical to a run with no injector at all.
  struct FaultBench {
    double rate = 0;
    int iters = 0;
    double mean_sim_joules = 0;
    double mean_sim_seconds = 0;
    double p99_sim_seconds = 0;
    uint64_t transient_faults = 0;
    uint64_t retries = 0;
    uint64_t persistent_faults = 0;
  };
  std::vector<FaultBench> fault_rows;
  for (double rate : {0.0, 1e-4, 1e-3}) {
    DatabaseOptions opt;
    opt.profile = EngineProfile::Commercial();
    opt.exec_mode = ExecMode::kBatch;
    opt.fault_injection.seed = 0xEC0FA17;
    opt.fault_injection.transient_fault_rate = rate;
    Database db(opt);
    if (!db.LoadTpch(gen).ok()) {
      std::fprintf(stderr, "TPC-H load failed (fault bench)\n");
      return 1;
    }
    auto scan = MakeScan(*db.catalog(), "lineitem");
    if (!scan.ok()) {
      std::fprintf(stderr, "fault bench plan build failed\n");
      return 1;
    }
    FaultBench fb;
    fb.rate = rate;
    fb.iters = 120;
    std::vector<double> lat;
    lat.reserve(fb.iters);
    for (int it = 0; it < fb.iters; ++it) {
      db.ColdRestart();  // evict so every iteration re-reads from disk
      auto res = db.ExecutePlanQuery(*scan.value());
      if (!res.ok()) {
        std::fprintf(stderr, "fault bench query failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      lat.push_back(res.value().seconds);
      fb.mean_sim_joules += res.value().wall_joules;
      fb.mean_sim_seconds += res.value().seconds;
    }
    fb.mean_sim_joules /= fb.iters;
    fb.mean_sim_seconds /= fb.iters;
    std::sort(lat.begin(), lat.end());
    fb.p99_sim_seconds =
        lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
    fb.transient_faults = db.buffer_pool()->stats().transient_faults;
    fb.retries = db.buffer_pool()->stats().retries;
    fb.persistent_faults = db.buffer_pool()->stats().persistent_faults;
    fault_rows.push_back(fb);
  }
  std::printf("  \"fault_retry_benchmarks\": [\n");
  for (size_t i = 0; i < fault_rows.size(); ++i) {
    const FaultBench& f = fault_rows[i];
    std::printf(
        "    {\"name\": \"cold_scan_lineitem\", "
        "\"transient_fault_rate\": %g, \"iters\": %d, "
        "\"sim_joules_per_query\": %.9e, \"sim_seconds_mean\": %.9e, "
        "\"sim_seconds_p99\": %.9e, \"transient_faults\": %llu, "
        "\"retries\": %llu, \"persistent_faults\": %llu}%s\n",
        f.rate, f.iters, f.mean_sim_joules, f.mean_sim_seconds,
        f.p99_sim_seconds,
        static_cast<unsigned long long>(f.transient_faults),
        static_cast<unsigned long long>(f.retries),
        static_cast<unsigned long long>(f.persistent_faults),
        i + 1 < fault_rows.size() ? "," : "");
  }

  std::printf("  ],\n  \"batch_speedup\": {");
  for (size_t i = 0; i < speedups.size(); ++i) {
    std::printf("%s\"%s\": %.2f", i ? ", " : "", speedups[i].first.c_str(),
                speedups[i].second);
  }
  std::printf("}\n}\n");
  return 0;
}

}  // namespace
}  // namespace ecodb::bench

int main(int argc, char** argv) { return ecodb::bench::Main(argc, argv); }

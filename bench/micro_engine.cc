// google-benchmark micro-benchmarks for engine internals (host wall-clock
// performance of the simulator itself, not simulated time).

#include <benchmark/benchmark.h>

#include "ecodb/ecodb.h"

namespace ecodb {
namespace {

std::unique_ptr<Database> g_db;

Database* Db() {
  if (!g_db) {
    DatabaseOptions opt;
    opt.profile = EngineProfile::MySqlMemory();
    g_db = std::make_unique<Database>(opt);
    tpch::DbGenOptions gen;
    gen.scale_factor = 0.01;
    Status st = g_db->LoadTpch(gen);
    if (!st.ok()) std::abort();
  }
  return g_db.get();
}

void BM_SeqScanLineitem(benchmark::State& state) {
  Database* db = Db();
  auto plan = MakeScan(*db->catalog(), "lineitem").value();
  for (auto _ : state) {
    auto ctx = db->MakeExecContext();
    auto rows = ExecutePlan(*plan, ctx.get());
    benchmark::DoNotOptimize(rows.value().size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(db->catalog()->FindTable("lineitem")->num_rows()));
}
BENCHMARK(BM_SeqScanLineitem);

void BM_SelectionQuery(benchmark::State& state) {
  Database* db = Db();
  auto plan = tpch::BuildSelectionQuery(*db->catalog(), 24).value();
  for (auto _ : state) {
    auto r = db->ExecutePlanQuery(*plan);
    benchmark::DoNotOptimize(r.value().rows.size());
  }
}
BENCHMARK(BM_SelectionQuery);

void BM_Q5Join(benchmark::State& state) {
  Database* db = Db();
  auto plan = tpch::BuildQ5Plan(*db->catalog(), tpch::Q5Params{}).value();
  for (auto _ : state) {
    auto r = db->ExecutePlanQuery(*plan);
    benchmark::DoNotOptimize(r.value().rows.size());
  }
}
BENCHMARK(BM_Q5Join);

void BM_SqlParsePlan(benchmark::State& state) {
  Database* db = Db();
  std::string sql = tpch::Q5Sql(tpch::Q5Params{});
  for (auto _ : state) {
    auto plan = db->PlanSql(sql);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_SqlParsePlan);

void BM_CostModelEstimate(benchmark::State& state) {
  Database* db = Db();
  CostModel model(db->catalog(), &db->profile(), db->options().machine);
  auto plan = tpch::BuildQ5Plan(*db->catalog(), tpch::Q5Params{}).value();
  for (auto _ : state) {
    auto cost = model.Estimate(*plan, SystemSettings::Stock());
    benchmark::DoNotOptimize(cost.value().est_seconds);
  }
}
BENCHMARK(BM_CostModelEstimate);

void BM_MachineExecuteCpu(benchmark::State& state) {
  Machine machine(MachineConfig::PaperTestbed());
  for (auto _ : state) {
    machine.ExecuteCpu(1e6, 100);
    benchmark::DoNotOptimize(machine.NowSeconds());
  }
}
BENCHMARK(BM_MachineExecuteCpu);

void BM_MergeSelections(benchmark::State& state) {
  Database* db = Db();
  auto wl = tpch::MakeSelectionWorkload(*db->catalog(), 50, 7).value();
  std::vector<const PlanNode*> members;
  for (const auto& q : wl.queries) members.push_back(q.get());
  for (auto _ : state) {
    auto merged = MergeSelections(members);
    benchmark::DoNotOptimize(merged.ok());
  }
}
BENCHMARK(BM_MergeSelections);

}  // namespace
}  // namespace ecodb

BENCHMARK_MAIN();

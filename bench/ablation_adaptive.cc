// Ablation: mid-flight adaptation (the paper's future-work idea).
// Compares static stock, static eco, and the adaptive controller under a
// deadline between the two.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.01);
  bench::Header("Ablation: mid-flight operating-point adaptation",
                "Lang & Patel, CIDR 2009, Section 1 future-work remark");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  auto workload = tpch::MakeSelectionWorkload(*db->catalog(), 20, 3).value();
  ExperimentRunner runner(db.get());

  auto stock = runner.RunWorkload(workload, SystemSettings::Stock(), {});
  auto eco = runner.RunWorkload(workload,
                                {0.05, VoltageDowngrade::kMedium}, {});
  if (!stock.ok() || !eco.ok()) return 1;

  double deadline = 0.5 * (stock.value().seconds + eco.value().seconds);
  AdaptiveOptions opt;
  opt.deadline_s = deadline;
  AdaptiveController ctl(db.get(), opt);
  auto adaptive = ctl.Run(workload);
  if (!adaptive.ok()) {
    std::fprintf(stderr, "%s\n", adaptive.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"strategy", "time (s)", "CPU J", "met deadline",
                      "switches"});
  table.AddRow({"static stock", bench::F(stock.value().seconds),
                bench::F(stock.value().cpu_j, 1),
                stock.value().seconds <= deadline ? "yes" : "no", "-"});
  table.AddRow({"static eco (5% medium)", bench::F(eco.value().seconds),
                bench::F(eco.value().cpu_j, 1),
                eco.value().seconds <= deadline ? "yes" : "no", "-"});
  table.AddRow({"adaptive", bench::F(adaptive.value().total_s),
                bench::F(adaptive.value().cpu_j, 1),
                adaptive.value().met_deadline ? "yes" : "no",
                StrFormat("%d", adaptive.value().switches)});
  table.Print();

  std::printf(
      "\ndeadline: %.3f s (halfway between static points)\n"
      "The adaptive controller meets a deadline static-eco misses while "
      "spending less\nenergy than static-stock — the payoff of adapting "
      "'midflight'.\n",
      deadline);
  return 0;
}

// Reproduces Section 3.5's warm/cold contrast: the TPC-H Q5 workload on a
// warm database vs immediately after a reboot (cold buffer pool).
// Paper: warm 48.5 s, CPU 1228.7 J, disk 214.7 J; cold ~3x slower (156 s),
// CPU 2146.0 J, disk 1135.4 J (more than half the CPU's energy).

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Section 3.5: Warm vs Cold Runs (disk energy)",
                "Lang & Patel, CIDR 2009, Section 3.5");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::Commercial(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();
  ExperimentRunner runner(db.get());

  auto warm = runner.RunWorkload(workload, SystemSettings::Stock(), {});
  RunOptions cold_opt;
  cold_opt.cold = true;
  auto cold = runner.RunWorkload(workload, SystemSettings::Stock(), cold_opt);
  if (!warm.ok() || !cold.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  const RunMeasurement& w = warm.value();
  const RunMeasurement& c = cold.value();

  TablePrinter table({"state", "time (s)", "CPU J", "disk J", "CPU W avg",
                      "disk W avg", "disk/CPU energy"});
  table.AddRow({"warm", bench::F(w.seconds), bench::F(w.cpu_j, 1),
                bench::F(w.disk_j, 1), bench::F(w.cpu_j / w.seconds, 1),
                bench::F(w.disk_j / w.seconds, 2),
                StrFormat("1/%.1f", w.cpu_j / w.disk_j)});
  table.AddRow({"cold", bench::F(c.seconds), bench::F(c.cpu_j, 1),
                bench::F(c.disk_j, 1), bench::F(c.cpu_j / c.seconds, 1),
                bench::F(c.disk_j / c.seconds, 2),
                StrFormat("1/%.1f", c.cpu_j / c.disk_j)});
  table.Print();

  std::printf(
      "\ncold/warm slowdown: %.2fx (paper ~3.2x)\n"
      "Paper: warm disk ~1/6 of CPU energy (4.4 W avg, idle-dominated); "
      "cold disk more\nthan half the CPU energy (7.3 W avg) while the CPU "
      "idles at ~13.8 W during I/O.\n",
      c.seconds / w.seconds);
  return 0;
}

// Reproduces Figure 3: TPC-H Q5 on MySQL (MEMORY engine, paper SF 0.125)
// — energy/time ratio plane for small and medium downgrades.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Figure 3: TPC-H Query 5 on MySQL (memory engine)",
                "Lang & Patel, CIDR 2009, Figure 3 (paper SF 0.125)");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();

  PvcController pvc(db.get());
  auto curve =
      pvc.MeasureCurve(workload, PvcController::PaperGrid(), RunOptions{});
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }

  const double paper_edp[6] = {-7, -0.4, +9, -16, -8, 0};

  TablePrinter table({"setting", "energy ratio", "time ratio", "EDP delta",
                      "paper EDP delta"});
  int i = 0;
  for (const OperatingPoint& p : curve.value().points) {
    table.AddRow({p.settings.ToString(), bench::F(p.ratio.energy_ratio),
                  bench::F(p.ratio.time_ratio),
                  StrFormat("%+.1f%%", (p.ratio.edp_ratio - 1) * 100),
                  StrFormat("%+.1f%%", paper_edp[i++])});
  }
  table.Print();

  std::printf(
      "\nPaper shape: savings are milder than the commercial DBMS (the "
      "pegged, sustained\nload sees a smaller effective voltage drop); EDP "
      "rises with deeper underclock,\ncrossing break-even around 15%% for "
      "the small downgrade.\n");
  return 0;
}

// Workload-scheduler robustness bench: sweeps open-loop arrival rate x
// injected disk-fault rate over the admission-controlled scheduler
// (core/scheduler.h) on a Commercial-profile machine, and reports the
// latency distribution (p50/p95/p99/mean), simulated joules per
// completed query, and the robustness counters (sheds, retries, breaker
// rejections/opens, degradation-ladder escalations).
//
// Everything reported is *simulated* — a pure function of (seed,
// workload, options) — so the JSON is bit-identical run to run; no host
// wall-clock figures appear in this section. Emits JSON on stdout for
// splicing into BENCH_micro_engine.json under
// "workload_scheduler_benchmarks".
//
// Usage: workload_scheduler [--sf=0.002]

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "ecodb/ecodb.h"

namespace ecodb::bench {
namespace {

constexpr uint64_t kSeed = 0x5ECDBE7CULL;
constexpr int kNumQueries = 48;
constexpr double kSelectionFraction = 0.8;

struct FaultConfig {
  const char* name;
  double transient_rate;
  double persistent_rate;
};

/// Two SLA classes: "interactive" carries a (generous) absolute deadline
/// and a single retry; "batch" is unconstrained with the default retry
/// budget. SpecsFromWorkload assigns them round-robin.
SchedulerOptions MakeOptions() {
  SchedulerOptions opt;
  opt.seed = kSeed;
  opt.worker_slots = 2;
  opt.max_queue_depth = 8;
  opt.keep_rows = false;

  SchedulerClass interactive;
  interactive.name = "interactive";
  interactive.sla.max_seconds = 30.0;
  interactive.retry_budget = 1;
  opt.classes.push_back(interactive);

  SchedulerClass batch;
  batch.name = "batch";
  batch.retry_budget = 2;
  opt.classes.push_back(batch);
  return opt;
}

Result<ScheduleReport> RunCell(double sf, double arrival_qps,
                               const FaultConfig& faults) {
  DatabaseOptions dopt;
  dopt.profile = EngineProfile::Commercial();
  // Memory-constrained pool: scans keep paying disk reads, so the
  // injected per-read fault rates actually bite at bench scale.
  dopt.profile.buffer_pool_pages = 64;
  dopt.fault_injection.seed = kSeed ^ 0xFA17;
  dopt.fault_injection.transient_fault_rate = faults.transient_rate;
  dopt.fault_injection.persistent_fault_rate = faults.persistent_rate;
  // Escalate transient storms to the scheduler immediately: its retry
  // layer (backoff + budget), not the buffer pool's, does the recovery.
  if (faults.transient_rate > 0.0) dopt.fault_injection.max_retries = 0;
  auto db = std::make_unique<Database>(dopt);
  tpch::DbGenOptions gen;
  gen.scale_factor = sf;
  ECODB_RETURN_NOT_OK(db->LoadTpch(gen));
  // Cold pool: scans actually touch the (fault-injected) disk instead of
  // the load-warmed buffer pool.
  db->ColdRestart();

  ECODB_ASSIGN_OR_RETURN(
      tpch::Workload wl,
      tpch::MakeSchedulerMixWorkload(*db->catalog(), kNumQueries, kSeed,
                                     kSelectionFraction));
  auto specs = WorkloadScheduler::SpecsFromWorkload(wl, /*num_classes=*/2);
  WorkloadScheduler sched(db.get(), MakeOptions());
  return sched.Run(specs, ArrivalProcess::OpenLoop(arrival_qps));
}

int Main(int argc, char** argv) {
  // Small default SF: with the 64-page pool, per-query service time is
  // disk-bound and grows with table size; 0.002 keeps the lowest arrival
  // rate genuinely healthy (everything completes) so the sweep spans
  // healthy -> saturated -> overloaded.
  const double sf = ScaleFactorArg(argc, argv, 0.002);

  // Service times are disk-bound (tiny pool, cold start): ~0.1-0.4 sim
  // seconds/query on 2 workers, so ~5 qps is healthy, ~20 qps saturated,
  // ~100 qps deep overload (ladder top, heavy shedding).
  const std::vector<double> arrival_rates = {5.0, 20.0, 100.0};
  const std::vector<FaultConfig> fault_configs = {
      {"clean", 0.0, 0.0},
      {"transient_1e-3", 1e-3, 0.0},
      {"storm", 5e-3, 2e-4},
  };

  std::printf("{\n  \"workload_scheduler_benchmarks\": [\n");
  bool first = true;
  for (double qps : arrival_rates) {
    for (const FaultConfig& faults : fault_configs) {
      auto report = RunCell(sf, qps, faults);
      if (!report.ok()) {
        std::fprintf(stderr, "cell (%g qps, %s) failed: %s\n", qps,
                     faults.name, report.status().ToString().c_str());
        return 1;
      }
      const ScheduleReport& r = report.value();
      std::printf(
          "%s    {\"faults\": \"%s\", \"arrival_qps\": %g, "
          "\"transient_fault_rate\": %g, \"persistent_fault_rate\": %g, "
          "\"queries\": %d, \"completed\": %llu, \"failed\": %llu, "
          "\"shed\": %llu, \"breaker_rejected\": %llu, "
          "\"retries\": %llu, \"merged_batches\": %llu, "
          "\"breaker_opens\": %llu, \"escalations\": %llu, "
          "\"max_level_reached\": %d, \"sheds_below_max_level\": %llu, "
          "\"p50_latency_s\": %.9e, \"p95_latency_s\": %.9e, "
          "\"p99_latency_s\": %.9e, \"mean_latency_s\": %.9e, "
          "\"makespan_seconds\": %.9e, "
          "\"sim_joules_per_completed\": %.9e}",
          first ? "" : ",\n", faults.name, qps, faults.transient_rate,
          faults.persistent_rate, kNumQueries,
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.failed),
          static_cast<unsigned long long>(r.shed_queue_full +
                                          r.shed_projected_wait),
          static_cast<unsigned long long>(r.breaker_rejected),
          static_cast<unsigned long long>(r.retries),
          static_cast<unsigned long long>(r.merged_batches),
          static_cast<unsigned long long>(r.breaker_opens),
          static_cast<unsigned long long>(r.escalations),
          r.max_level_reached,
          static_cast<unsigned long long>(r.sheds_below_max_level),
          r.p50_latency_s, r.p95_latency_s, r.p99_latency_s,
          r.mean_latency_s, r.makespan_seconds, r.wall_j_per_completed);
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace ecodb::bench

int main(int argc, char** argv) { return ecodb::bench::Main(argc, argv); }

// Shared helpers for the figure/table reproduction harnesses.

#ifndef ECODB_BENCH_BENCH_UTIL_H_
#define ECODB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "ecodb/ecodb.h"
#include "ecodb/util/strings.h"

namespace ecodb::bench {

using ecodb::StrFormat;

/// Parses "--sf=<double>" from argv; returns `fallback` if absent.
/// Benches default to a small scale factor so the whole suite runs in
/// seconds; ratios are scale-invariant (absolute simulated times scale
/// linearly with SF and are reported alongside the SF-1.0 equivalents).
inline double ScaleFactorArg(int argc, char** argv, double fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sf=", 5) == 0) {
      double v = std::atof(argv[i] + 5);
      if (v > 0) return v;
    }
  }
  return fallback;
}

inline std::unique_ptr<Database> MakeDb(const EngineProfile& profile,
                                        double sf) {
  DatabaseOptions opt;
  opt.profile = profile;
  auto db = std::make_unique<Database>(opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = sf;
  Status st = db->LoadTpch(gen);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return db;
}

inline std::string Pct(double ratio) {
  return StrFormat("%+.1f%%", (ratio - 1.0) * 100.0);
}

inline std::string F(double v, int digits = 3) {
  return StrFormat("%.*f", digits, v);
}

inline void Header(const char* title, const char* paper_ref) {
  std::printf("=== %s ===\n", title);
  std::printf("Paper reference: %s\n\n", paper_ref);
}

}  // namespace ecodb::bench

#endif  // ECODB_BENCH_BENCH_UTIL_H_

// Reproduces Figure 2: commercial DBMS, TPC-H Q5 — energy/time ratio
// plane for small and medium voltage downgrades at 5/10/15 % underclock,
// with EDP deltas relative to the iso-EDP curve through stock.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Figure 2: TPC-H Query 5 on a Commercial DBMS (ratios)",
                "Lang & Patel, CIDR 2009, Figure 2");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::Commercial(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();

  PvcController pvc(db.get());
  auto curve =
      pvc.MeasureCurve(workload, PvcController::PaperGrid(), RunOptions{});
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }

  // Paper EDP deltas (Section 3.3).
  const double paper_edp[6] = {-30, -22, -15, -47, -38, -23};

  TablePrinter table({"setting", "energy ratio", "time ratio",
                      "EDP delta", "paper EDP delta", "below iso-EDP?"});
  int i = 0;
  for (const OperatingPoint& p : curve.value().points) {
    bool interesting = p.ratio.edp_ratio < 1.0;  // below the curve
    table.AddRow({p.settings.ToString(), bench::F(p.ratio.energy_ratio),
                  bench::F(p.ratio.time_ratio),
                  StrFormat("%+.1f%%", (p.ratio.edp_ratio - 1) * 100),
                  StrFormat("%+.0f%%", paper_edp[i++]),
                  interesting ? "yes" : "no"});
  }
  table.Print();

  std::printf(
      "\nPaper shape: every point sits below the iso-EDP curve; medium "
      "beats small;\nEDP worsens monotonically beyond the 5%% "
      "underclock.\n");
  return 0;
}

// Reproduces Figure 5: hard-disk throughput (a) and energy per KB (b) for
// sequential vs random access at 4/8/16/32 KB read sizes — 1.6 GB read
// from a 4 GB file, as in the paper.

#include "bench_util.h"

using namespace ecodb;

int main() {
  bench::Header("Figure 5: Hard Disk Energy for Access Patterns",
                "Lang & Patel, CIDR 2009, Figure 5 / Section 3.5");

  DiskModel disk(DiskConfig::WdCaviarSe16());
  const uint64_t total = 1600ull << 20;  // 1.6 GB of a 4 GB file

  std::printf("(a) data throughput  /  (b) energy per KB\n");
  TablePrinter table({"read size", "seq MB/s", "rand MB/s", "rand vs 4K",
                      "seq J/KB", "rand J/KB"});
  double rand_base = 0;
  for (uint64_t block : {4096u, 8192u, 16384u, 32768u}) {
    uint64_t n = total / block;
    DiskOpCost seq = disk.ReadCost(total, n, false);
    DiskOpCost rnd = disk.ReadCost(total, n, true);
    double seq_tput = total / seq.total_s / (1 << 20);
    double rnd_tput = total / rnd.total_s / (1 << 20);
    if (block == 4096) rand_base = rnd_tput;
    // Energy per KB includes the drive's idle/spindle power over the
    // transfer duration (what the paper's rail measurements integrate).
    double seq_jkb = (seq.TotalEnergyJ() + seq.total_s * disk.IdlePowerW()) /
                     (total / 1024.0);
    double rnd_jkb = (rnd.TotalEnergyJ() + rnd.total_s * disk.IdlePowerW()) /
                     (total / 1024.0);
    table.AddRow({StrFormat("%lluKB", static_cast<unsigned long long>(block / 1024)),
                  bench::F(seq_tput, 1), bench::F(rnd_tput, 3),
                  StrFormat("%.2fx", rnd_tput / rand_base),
                  StrFormat("%.2e", seq_jkb), StrFormat("%.2e", rnd_jkb)});
  }
  table.Print();

  std::printf(
      "\nPaper shape: sequential throughput and J/KB flat; random "
      "throughput improves\n~1.88x/3.5x/6x at 8/16/32 KB (ours reproduces "
      "those ratios), with J/KB falling\naccordingly. Sequential is more "
      "energy-efficient 'primarily because it is faster'.\n");
  return 0;
}

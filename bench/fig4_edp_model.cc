// Reproduces Figure 4: observed EDP vs the theoretical EDP = V^2/F model
// for the MySQL workload, (a) small and (b) medium voltage settings.

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Figure 4: Observed EDP vs Theoretical EDP = V^2/F",
                "Lang & Patel, CIDR 2009, Figure 4 / Section 3.4");
  std::printf("scale factor: %.3f\n\n", sf);

  auto db = bench::MakeDb(EngineProfile::MySqlMemory(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();

  PvcController pvc(db.get());
  auto curve =
      pvc.MeasureCurve(workload, PvcController::PaperGrid(), RunOptions{});
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }

  for (VoltageDowngrade d :
       {VoltageDowngrade::kSmall, VoltageDowngrade::kMedium}) {
    std::printf("(%s) %s voltage settings\n",
                d == VoltageDowngrade::kSmall ? "a" : "b", ToString(d));
    TablePrinter table({"underclock", "observed EDP ratio",
                        "theoretical V^2/F ratio", "deviation"});
    for (const OperatingPoint& p : curve.value().points) {
      if (p.settings.downgrade != d) continue;
      table.AddRow(
          {StrFormat("%.0f%%", p.settings.underclock * 100),
           bench::F(p.ratio.edp_ratio, 4),
           bench::F(p.theoretical_edp_ratio, 4),
           StrFormat("%+.1f%%",
                     (p.ratio.edp_ratio / p.theoretical_edp_ratio - 1) *
                         100)});
    }
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Paper: \"the observed EDP closely matches the theoretical model\" — "
      "the execution\ntime penalty beyond 5%% underclock overwhelms the "
      "CPU power gains.\n");
  return 0;
}

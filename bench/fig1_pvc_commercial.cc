// Reproduces Figure 1: TPC-H Q5 workload (x10) on the commercial DBMS —
// absolute CPU energy vs response time for the typical setting and the
// 5/10/15 % underclocks with medium voltage downgrade (points A, B, C).

#include "bench_util.h"

using namespace ecodb;

int main(int argc, char** argv) {
  double sf = bench::ScaleFactorArg(argc, argv, 0.02);
  bench::Header("Figure 1: TPC-H Query 5 on a Commercial DBMS",
                "Lang & Patel, CIDR 2009, Figure 1 (SF 1.0; here scaled)");
  std::printf("scale factor: %.3f (paper: 1.0; times scale ~linearly)\n\n",
              sf);

  auto db = bench::MakeDb(EngineProfile::Commercial(), sf);
  auto workload = tpch::MakeQ5Workload(*db->catalog()).value();

  PvcController pvc(db.get());
  auto curve =
      pvc.MeasureCurve(workload, PvcController::MediumGrid(), RunOptions{});
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }

  const RunMeasurement& stock = curve.value().stock.measurement;
  double sf1 = 1.0 / sf;  // scale to SF-1.0 equivalents for comparison

  TablePrinter table({"setting", "resp. time (s)", "SF1-equiv (s)",
                      "CPU energy (J)", "SF1-equiv (J)", "time vs stock",
                      "energy vs stock"});
  table.AddRow({"typical (stock)", bench::F(stock.seconds),
                bench::F(stock.seconds * sf1, 1), bench::F(stock.cpu_j, 1),
                bench::F(stock.cpu_j * sf1, 0), "-", "-"});
  const char* labels[] = {"A: uc=5% medium", "B: uc=10% medium",
                          "C: uc=15% medium"};
  int i = 0;
  for (const OperatingPoint& p : curve.value().points) {
    table.AddRow({labels[i++], bench::F(p.measurement.seconds),
                  bench::F(p.measurement.seconds * sf1, 1),
                  bench::F(p.measurement.cpu_j, 1),
                  bench::F(p.measurement.cpu_j * sf1, 0),
                  bench::Pct(p.ratio.time_ratio),
                  bench::Pct(p.ratio.energy_ratio)});
  }
  table.Print();

  std::printf(
      "\nPaper: stock ~48.5 s / ~1229 J; setting A: -49%% CPU energy for "
      "+3%% time;\nB and C consume MORE energy and take longer than A "
      "(worse EDP beyond 5%%).\n");
  return 0;
}

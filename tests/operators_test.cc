#include <gtest/gtest.h>

#include "ecodb/exec/operators.h"
#include "ecodb/exec/plan.h"
#include "test_util.h"

namespace ecodb {
namespace {

class OperatorsTest : public ::testing::Test {
 protected:
  OperatorsTest()
      : machine_(MachineConfig::PaperTestbed()),
        profile_(EngineProfile::MySqlMemory()),
        pool_(&machine_, 0),
        ctx_(&machine_, &profile_, &catalog_, &pool_) {
    testing::MakeSimpleTable(&catalog_, "t", 100);
    testing::MakeSimpleTable(&catalog_, "u", 10);
  }

  PlanNodePtr Scan(const std::string& name) {
    return MakeScan(catalog_, name).value();
  }

  std::vector<Row> Run(const PlanNode& plan) {
    auto rows = ExecutePlan(plan, &ctx_);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Row>{};
  }

  Machine machine_;
  EngineProfile profile_;
  Catalog catalog_;
  BufferPool pool_;
  ExecContext ctx_;
};

TEST_F(OperatorsTest, SeqScanReturnsAllRowsInOrder) {
  auto rows = Run(*Scan("t"));
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
  EXPECT_EQ(rows[99][0].AsInt(), 99);
  EXPECT_EQ(rows[7][2].AsString(), "s2");
}

TEST_F(OperatorsTest, SeqScanChargesCpuWork) {
  Run(*Scan("t"));
  EXPECT_EQ(ctx_.stats().tuples_scanned, 100u);
  EXPECT_GT(ctx_.stats().cycles_charged, 0);
  EXPECT_GT(machine_.NowSeconds(), 0);
}

TEST_F(OperatorsTest, ScanOfMissingTableFails) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kScan;
  node->table_name = "missing";
  SeqScanOp op(&ctx_, "missing");
  EXPECT_TRUE(op.Open().IsNotFound());
}

TEST_F(OperatorsTest, FilterKeepsMatchingRows) {
  PlanNodePtr scan = Scan("t");
  ExprPtr pred = Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"),
                     LitInt(10));
  auto rows = Run(*MakeFilter(std::move(scan), pred));
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(OperatorsTest, ProjectComputesExpressions) {
  PlanNodePtr scan = Scan("t");
  ExprPtr doubled = Arith(ArithOp::kMul, Col(0, ValueType::kInt64, "k"),
                          LitInt(2));
  auto rows = Run(*MakeProject(std::move(scan), {doubled}, {"k2"}));
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[21][0].AsInt(), 42);
}

TEST_F(OperatorsTest, HashJoinMatchesKeyPairs) {
  // t.k in [0,100), u.k in [0,10): join on k%? -> join t.k = u.k directly.
  PlanNodePtr t = Scan("t");
  PlanNodePtr u = Scan("u");
  auto rows = Run(*MakeHashJoin(std::move(u), std::move(t), {0}, {0}));
  EXPECT_EQ(rows.size(), 10u);  // keys 0..9 match once each
  for (const Row& r : rows) {
    EXPECT_EQ(r[0].AsInt(), r[3].AsInt());  // u.k == t.k
  }
}

TEST_F(OperatorsTest, HashJoinEqualsNestedLoopJoin) {
  // Property: the two join algorithms produce the same multiset on an
  // equi-join (s column has duplicates -> multi-match case covered).
  PlanNodePtr hj = MakeHashJoin(Scan("u"), Scan("t"), {2}, {2});
  auto hash_rows = Run(*hj);

  ExprPtr pred = Eq(Col(2, ValueType::kString, "us"),
                    Col(5, ValueType::kString, "ts"));
  PlanNodePtr nl = MakeNestedLoopJoin(Scan("u"), Scan("t"), pred);
  auto nl_rows = Run(*nl);

  ASSERT_EQ(hash_rows.size(), nl_rows.size());
  auto key = [](const Row& r) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    return s;
  };
  std::vector<std::string> a, b;
  for (const Row& r : hash_rows) a.push_back(key(r));
  for (const Row& r : nl_rows) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(OperatorsTest, MultiKeyHashJoin) {
  PlanNodePtr j = MakeHashJoin(Scan("u"), Scan("t"), {0, 2}, {0, 2});
  auto rows = Run(*j);
  EXPECT_EQ(rows.size(), 10u);  // (k, s) pairs align for k<10
}

TEST_F(OperatorsTest, CrossJoinProducesCartesianProduct) {
  PlanNodePtr j = MakeNestedLoopJoin(Scan("u"), Scan("u"), nullptr);
  auto rows = Run(*j);
  EXPECT_EQ(rows.size(), 100u);
}

TEST_F(OperatorsTest, HashAggComputesAllAggregateKinds) {
  // Group t by s (5 groups of 20), aggregate k.
  PlanNodePtr scan = Scan("t");
  ExprPtr k = Col(0, ValueType::kInt64, "k");
  ExprPtr s = Col(2, ValueType::kString, "s");
  auto mk = [&](AggSpec::Kind kind, const char* name) {
    AggSpec a;
    a.kind = kind;
    a.arg = k;
    a.name = name;
    return a;
  };
  AggSpec count_star;
  count_star.kind = AggSpec::Kind::kCount;
  count_star.arg = nullptr;
  count_star.name = "n";
  auto rows = Run(*MakeAggregate(
      std::move(scan), {s},
      {mk(AggSpec::Kind::kSum, "sum"), mk(AggSpec::Kind::kMin, "min"),
       mk(AggSpec::Kind::kMax, "max"), mk(AggSpec::Kind::kAvg, "avg"),
       count_star}));
  ASSERT_EQ(rows.size(), 5u);
  for (const Row& r : rows) {
    const std::string& group = r[0].AsString();
    int64_t g = group[1] - '0';
    // Members: g, g+5, ..., g+95 -> 20 values.
    EXPECT_EQ(r[5].AsInt(), 20);                       // count(*)
    EXPECT_DOUBLE_EQ(r[1].AsDouble(), 20 * g + 950.0); // sum
    EXPECT_EQ(r[2].AsInt(), g);                        // min
    EXPECT_EQ(r[3].AsInt(), g + 95);                   // max
    EXPECT_DOUBLE_EQ(r[4].AsDouble(), (20 * g + 950.0) / 20.0);  // avg
  }
}

TEST_F(OperatorsTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  PlanNodePtr scan = Scan("t");
  PlanNodePtr filtered =
      MakeFilter(std::move(scan),
                 Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"),
                     LitInt(-1)));
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  auto rows = Run(*MakeAggregate(std::move(filtered), {}, {cnt}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
}

TEST_F(OperatorsTest, SortAscendingAndDescending) {
  PlanNodePtr scan = Scan("u");
  ExprPtr k = Col(0, ValueType::kInt64, "k");
  auto rows = Run(*MakeSort(std::move(scan), {SortKey{k, false}}));
  ASSERT_EQ(rows.size(), 10u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i - 1][0].AsInt(), rows[i][0].AsInt());
  }
}

TEST_F(OperatorsTest, SortIsStableViaTiebreak) {
  PlanNodePtr scan = Scan("t");
  ExprPtr s = Col(2, ValueType::kString, "s");
  auto rows = Run(*MakeSort(std::move(scan), {SortKey{s, true}}));
  ASSERT_EQ(rows.size(), 100u);
  // Within equal s groups, original k order preserved.
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1][2].AsString() == rows[i][2].AsString()) {
      EXPECT_LT(rows[i - 1][0].AsInt(), rows[i][0].AsInt());
    }
  }
}

TEST_F(OperatorsTest, LimitTruncates) {
  auto rows = Run(*MakeLimit(Scan("t"), 7));
  EXPECT_EQ(rows.size(), 7u);
  rows = Run(*MakeLimit(Scan("u"), 100));
  EXPECT_EQ(rows.size(), 10u);
  rows = Run(*MakeLimit(Scan("u"), 0));
  EXPECT_EQ(rows.size(), 0u);
}

TEST_F(OperatorsTest, PlanExplainShowsTree) {
  PlanNodePtr plan = MakeLimit(
      MakeFilter(Scan("t"), Eq(Col(0, ValueType::kInt64, "k"), LitInt(1))),
      5);
  std::string text = plan->Explain();
  EXPECT_NE(text.find("Limit"), std::string::npos);
  EXPECT_NE(text.find("Filter"), std::string::npos);
  EXPECT_NE(text.find("Scan(t)"), std::string::npos);
}

TEST_F(OperatorsTest, ClonePlanIsDeepAndEquivalent) {
  PlanNodePtr plan = MakeFilter(
      Scan("t"), Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"),
                     LitInt(50)));
  PlanNodePtr copy = ClonePlan(*plan);
  auto a = Run(*plan);
  auto b = Run(*copy);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(plan.get(), copy.get());
  EXPECT_NE(plan->children[0].get(), copy->children[0].get());
}

}  // namespace
}  // namespace ecodb

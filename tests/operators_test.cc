#include <gtest/gtest.h>

#include "ecodb/exec/operators.h"
#include "ecodb/exec/plan.h"
#include "test_util.h"

namespace ecodb {
namespace {

class OperatorsTest : public ::testing::Test {
 protected:
  OperatorsTest()
      : machine_(MachineConfig::PaperTestbed()),
        profile_(EngineProfile::MySqlMemory()),
        pool_(&machine_, 0),
        ctx_(&machine_, &profile_, &catalog_, &pool_) {
    testing::MakeSimpleTable(&catalog_, "t", 100);
    testing::MakeSimpleTable(&catalog_, "u", 10);
  }

  PlanNodePtr Scan(const std::string& name) {
    return MakeScan(catalog_, name).value();
  }

  std::vector<Row> Run(const PlanNode& plan) {
    auto rows = ExecutePlan(plan, &ctx_);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Row>{};
  }

  Machine machine_;
  EngineProfile profile_;
  Catalog catalog_;
  BufferPool pool_;
  ExecContext ctx_;
};

TEST_F(OperatorsTest, SeqScanReturnsAllRowsInOrder) {
  auto rows = Run(*Scan("t"));
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
  EXPECT_EQ(rows[99][0].AsInt(), 99);
  EXPECT_EQ(rows[7][2].AsString(), "s2");
}

TEST_F(OperatorsTest, SeqScanChargesCpuWork) {
  Run(*Scan("t"));
  EXPECT_EQ(ctx_.stats().tuples_scanned, 100u);
  EXPECT_GT(ctx_.stats().cycles_charged, 0);
  EXPECT_GT(machine_.NowSeconds(), 0);
}

TEST_F(OperatorsTest, ScanOfMissingTableFails) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kScan;
  node->table_name = "missing";
  SeqScanOp op(&ctx_, "missing");
  EXPECT_TRUE(op.Open().IsNotFound());
}

TEST_F(OperatorsTest, FilterKeepsMatchingRows) {
  PlanNodePtr scan = Scan("t");
  ExprPtr pred = Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"),
                     LitInt(10));
  auto rows = Run(*MakeFilter(std::move(scan), pred));
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(OperatorsTest, ProjectComputesExpressions) {
  PlanNodePtr scan = Scan("t");
  ExprPtr doubled = Arith(ArithOp::kMul, Col(0, ValueType::kInt64, "k"),
                          LitInt(2));
  auto rows = Run(*MakeProject(std::move(scan), {doubled}, {"k2"}));
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[21][0].AsInt(), 42);
}

TEST_F(OperatorsTest, HashJoinMatchesKeyPairs) {
  // t.k in [0,100), u.k in [0,10): join on k%? -> join t.k = u.k directly.
  PlanNodePtr t = Scan("t");
  PlanNodePtr u = Scan("u");
  auto rows = Run(*MakeHashJoin(std::move(u), std::move(t), {0}, {0}));
  EXPECT_EQ(rows.size(), 10u);  // keys 0..9 match once each
  for (const Row& r : rows) {
    EXPECT_EQ(r[0].AsInt(), r[3].AsInt());  // u.k == t.k
  }
}

TEST_F(OperatorsTest, HashJoinEqualsNestedLoopJoin) {
  // Property: the two join algorithms produce the same multiset on an
  // equi-join (s column has duplicates -> multi-match case covered).
  PlanNodePtr hj = MakeHashJoin(Scan("u"), Scan("t"), {2}, {2});
  auto hash_rows = Run(*hj);

  ExprPtr pred = Eq(Col(2, ValueType::kString, "us"),
                    Col(5, ValueType::kString, "ts"));
  PlanNodePtr nl = MakeNestedLoopJoin(Scan("u"), Scan("t"), pred);
  auto nl_rows = Run(*nl);

  ASSERT_EQ(hash_rows.size(), nl_rows.size());
  auto key = [](const Row& r) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    return s;
  };
  std::vector<std::string> a, b;
  for (const Row& r : hash_rows) a.push_back(key(r));
  for (const Row& r : nl_rows) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(OperatorsTest, MultiKeyHashJoin) {
  PlanNodePtr j = MakeHashJoin(Scan("u"), Scan("t"), {0, 2}, {0, 2});
  auto rows = Run(*j);
  EXPECT_EQ(rows.size(), 10u);  // (k, s) pairs align for k<10
}

TEST_F(OperatorsTest, CrossJoinProducesCartesianProduct) {
  PlanNodePtr j = MakeNestedLoopJoin(Scan("u"), Scan("u"), nullptr);
  auto rows = Run(*j);
  EXPECT_EQ(rows.size(), 100u);
}

TEST_F(OperatorsTest, HashJoinRejectsHashCollidingKeys) {
  // Join and group-by hash tables chain rows by HashRowKey alone, so two
  // *different* keys that collide on the full 64-bit hash land in the
  // same chain; correctness then depends on the full-key compare
  // (KeysEqualRow/KeysEqualBatch). Assert the join emits only the true
  // match.
  Row key1, key2;
  if (!testing::MakeCollidingKeyPair(&key1, &key2)) {
    GTEST_SKIP() << "std::hash<int64_t> is not invertible here; cannot "
                    "construct a deterministic collision";
  }
  ASSERT_EQ(HashRowKey(key1, {0, 1}), HashRowKey(key2, {0, 1}));
  ASSERT_NE(RowToString(key1), RowToString(key2));

  Schema schema({Field("x", ValueType::kInt64), Field("y", ValueType::kInt64),
                 Field("tag", ValueType::kInt64)});
  Table* build = catalog_.CreateTable("collide_build", schema).value();
  ASSERT_TRUE(
      build->AppendRow({key1[0], key1[1], Value::Int(100)}).ok());
  ASSERT_TRUE(
      build->AppendRow({key2[0], key2[1], Value::Int(200)}).ok());
  ASSERT_TRUE(catalog_.FinalizeLoad("collide_build").ok());
  Table* probe = catalog_.CreateTable("collide_probe", schema).value();
  ASSERT_TRUE(
      probe->AppendRow({key1[0], key1[1], Value::Int(999)}).ok());
  ASSERT_TRUE(catalog_.FinalizeLoad("collide_probe").ok());

  for (ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
    PlanNodePtr join = MakeHashJoin(Scan("collide_build"),
                                    Scan("collide_probe"), {0, 1}, {0, 1});
    auto rows = ExecutePlan(*join, &ctx_, mode);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows.value().size(), 1u) << ToString(mode);
    EXPECT_EQ(rows.value()[0][2].AsInt(), 100);  // true match only
  }
}

TEST_F(OperatorsTest, HashAggSeparatesHashCollidingGroups) {
  // Same collision, via the aggregation hash table: the two keys must
  // form two groups, not be merged by their shared hash.
  Row key1, key2;
  if (!testing::MakeCollidingKeyPair(&key1, &key2)) {
    GTEST_SKIP() << "std::hash<int64_t> is not invertible here";
  }
  Schema schema({Field("x", ValueType::kInt64), Field("y", ValueType::kInt64)});
  Table* t = catalog_.CreateTable("collide_agg", schema).value();
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_TRUE(t->AppendRow({key1[0], key1[1]}).ok());
  }
  ASSERT_TRUE(t->AppendRow({key2[0], key2[1]}).ok());
  ASSERT_TRUE(catalog_.FinalizeLoad("collide_agg").ok());

  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
    PlanNodePtr agg = MakeAggregate(
        Scan("collide_agg"),
        {Col(0, ValueType::kInt64, "x"), Col(1, ValueType::kInt64, "y")},
        {cnt});
    auto rows = ExecutePlan(*agg, &ctx_, mode);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows.value().size(), 2u) << ToString(mode);
    int64_t total = rows.value()[0][2].AsInt() + rows.value()[1][2].AsInt();
    EXPECT_EQ(total, 4);
    EXPECT_NE(rows.value()[0][2].AsInt(), rows.value()[1][2].AsInt());
  }
}

TEST_F(OperatorsTest, FlatHashIndexChainsDuplicateHashesInInsertionOrder) {
  FlatHashIndex idx;
  idx.Reset(4);
  const size_t h = 0x12345;
  idx.Insert(h, 0);
  idx.Insert(h, 1);
  idx.Insert(h, 2);
  EXPECT_EQ(idx.distinct_hashes(), 1u);
  EXPECT_EQ(idx.size(), 3u);
  uint32_t e = idx.Find(h);
  EXPECT_EQ(e, 0u);
  e = idx.Next(e);
  EXPECT_EQ(e, 1u);
  e = idx.Next(e);
  EXPECT_EQ(e, 2u);
  EXPECT_EQ(idx.Next(e), FlatHashIndex::kInvalid);
  EXPECT_EQ(idx.Find(h + 1), FlatHashIndex::kInvalid);
}

TEST_F(OperatorsTest, FlatHashIndexResolvesSlotCollisionsByLinearProbe) {
  // Hashes congruent modulo the capacity land on the same slot and must
  // be kept apart by the probe sequence (distinct hashes, no chaining).
  FlatHashIndex idx;
  idx.Reset(4);
  const size_t cap = idx.capacity();
  ASSERT_GE(cap, 4u);
  ASSERT_EQ(cap & (cap - 1), 0u) << "capacity must be a power of two";
  const size_t h = 7;
  idx.Insert(h, 0);
  idx.Insert(h + cap, 1);
  idx.Insert(h + 2 * cap, 2);
  EXPECT_EQ(idx.distinct_hashes(), 3u);
  EXPECT_EQ(idx.Find(h), 0u);
  EXPECT_EQ(idx.Find(h + cap), 1u);
  EXPECT_EQ(idx.Find(h + 2 * cap), 2u);
  EXPECT_EQ(idx.Next(idx.Find(h)), FlatHashIndex::kInvalid);
  // An absent hash whose probe path crosses the occupied run still
  // terminates at the first empty slot.
  EXPECT_EQ(idx.Find(h + 3 * cap), FlatHashIndex::kInvalid);
}

TEST_F(OperatorsTest, FlatHashIndexKeepsChainsAcrossResize) {
  // Insert far more distinct hashes than the initial capacity while
  // interleaving duplicates: every grow must preserve both the chains and
  // the probe-reachability of every hash.
  FlatHashIndex idx;
  idx.Reset();
  const size_t kKeys = 1000;
  uint32_t payload = 0;
  for (size_t k = 0; k < kKeys; ++k) {
    size_t h = k * 0x9E3779B97F4A7C15ULL;  // spread hashes
    idx.Insert(h, payload++);
    idx.Insert(h, payload++);  // duplicate: chains through next-links
  }
  EXPECT_EQ(idx.distinct_hashes(), kKeys);
  EXPECT_EQ(idx.size(), 2 * kKeys);
  EXPECT_GT(idx.capacity(), kKeys);  // grew past several doublings
  for (size_t k = 0; k < kKeys; ++k) {
    size_t h = k * 0x9E3779B97F4A7C15ULL;
    uint32_t e = idx.Find(h);
    ASSERT_EQ(e, static_cast<uint32_t>(2 * k));
    e = idx.Next(e);
    ASSERT_EQ(e, static_cast<uint32_t>(2 * k + 1));
    ASSERT_EQ(idx.Next(e), FlatHashIndex::kInvalid);
  }
}

TEST_F(OperatorsTest, HashJoinDuplicateKeyChainsSurviveResizeDuringBuild) {
  // 3000 build rows with only 10 distinct keys: the flat table grows
  // several times during build while every key carries a 300-entry
  // duplicate chain. Each probe row must see all 300 matches, in
  // identical order in both execution modes.
  Schema schema({Field("k", ValueType::kInt64), Field("tag", ValueType::kInt64)});
  Table* build = catalog_.CreateTable("dup_build", schema).value();
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        build->AppendRow({Value::Int(i % 10), Value::Int(i)}).ok());
  }
  ASSERT_TRUE(catalog_.FinalizeLoad("dup_build").ok());
  Table* probe = catalog_.CreateTable("dup_probe", schema).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(probe->AppendRow({Value::Int(i), Value::Int(-i)}).ok());
  }
  ASSERT_TRUE(catalog_.FinalizeLoad("dup_probe").ok());

  std::vector<std::vector<Row>> results;
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
    PlanNodePtr join = MakeHashJoin(Scan("dup_build"), Scan("dup_probe"),
                                    {0}, {0});
    auto rows = ExecutePlan(*join, &ctx_, mode);
    ASSERT_TRUE(rows.ok()) << ToString(mode);
    ASSERT_EQ(rows.value().size(), 3000u) << ToString(mode);
    for (const Row& r : rows.value()) {
      EXPECT_EQ(r[0].AsInt(), r[2].AsInt());  // key equality
    }
    results.push_back(std::move(rows).value());
  }
  // Emission order (probe order x chain insertion order) matches exactly.
  for (size_t i = 0; i < results[0].size(); ++i) {
    ASSERT_EQ(RowToString(results[0][i]), RowToString(results[1][i]))
        << "row " << i;
  }
  // Chains iterate in build insertion order: tags ascend within a key.
  for (size_t i = 1; i < results[0].size(); ++i) {
    if (results[0][i][0].AsInt() == results[0][i - 1][0].AsInt()) {
      EXPECT_GT(results[0][i][1].AsInt(), results[0][i - 1][1].AsInt());
    }
  }
}

TEST_F(OperatorsTest, HashJoinEmptyBuildSide) {
  // An empty build side must leave the flat table empty (never grown) and
  // produce zero rows in both modes while still draining the probe side.
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
    PlanNodePtr empty_build = MakeFilter(
        Scan("u"), Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"),
                       LitInt(-1)));
    PlanNodePtr join =
        MakeHashJoin(std::move(empty_build), Scan("t"), {0}, {0});
    auto rows = ExecutePlan(*join, &ctx_, mode);
    ASSERT_TRUE(rows.ok()) << ToString(mode);
    EXPECT_TRUE(rows.value().empty()) << ToString(mode);
  }
}

TEST_F(OperatorsTest, HashAggGroupsSurviveResizeDuringBuild) {
  // More groups than the flat table's initial capacity: grouped counts
  // must stay exact across the resizes, in both modes.
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  testing::MakeSimpleTable(&catalog_, "many_groups", 400, 200);
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
    PlanNodePtr agg = MakeAggregate(
        Scan("many_groups"), {Col(2, ValueType::kString, "s")}, {cnt});
    auto rows = ExecutePlan(*agg, &ctx_, mode);
    ASSERT_TRUE(rows.ok()) << ToString(mode);
    ASSERT_EQ(rows.value().size(), 200u) << ToString(mode);
    for (const Row& r : rows.value()) EXPECT_EQ(r[1].AsInt(), 2);
  }
}

TEST_F(OperatorsTest, HashAggComputesAllAggregateKinds) {
  // Group t by s (5 groups of 20), aggregate k.
  PlanNodePtr scan = Scan("t");
  ExprPtr k = Col(0, ValueType::kInt64, "k");
  ExprPtr s = Col(2, ValueType::kString, "s");
  auto mk = [&](AggSpec::Kind kind, const char* name) {
    AggSpec a;
    a.kind = kind;
    a.arg = k;
    a.name = name;
    return a;
  };
  AggSpec count_star;
  count_star.kind = AggSpec::Kind::kCount;
  count_star.arg = nullptr;
  count_star.name = "n";
  auto rows = Run(*MakeAggregate(
      std::move(scan), {s},
      {mk(AggSpec::Kind::kSum, "sum"), mk(AggSpec::Kind::kMin, "min"),
       mk(AggSpec::Kind::kMax, "max"), mk(AggSpec::Kind::kAvg, "avg"),
       count_star}));
  ASSERT_EQ(rows.size(), 5u);
  for (const Row& r : rows) {
    const std::string& group = r[0].AsString();
    int64_t g = group[1] - '0';
    // Members: g, g+5, ..., g+95 -> 20 values.
    EXPECT_EQ(r[5].AsInt(), 20);                       // count(*)
    EXPECT_DOUBLE_EQ(r[1].AsDouble(), 20 * g + 950.0); // sum
    EXPECT_EQ(r[2].AsInt(), g);                        // min
    EXPECT_EQ(r[3].AsInt(), g + 95);                   // max
    EXPECT_DOUBLE_EQ(r[4].AsDouble(), (20 * g + 950.0) / 20.0);  // avg
  }
}

TEST_F(OperatorsTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  PlanNodePtr scan = Scan("t");
  PlanNodePtr filtered =
      MakeFilter(std::move(scan),
                 Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"),
                     LitInt(-1)));
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  auto rows = Run(*MakeAggregate(std::move(filtered), {}, {cnt}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
}

TEST_F(OperatorsTest, SortAscendingAndDescending) {
  PlanNodePtr scan = Scan("u");
  ExprPtr k = Col(0, ValueType::kInt64, "k");
  auto rows = Run(*MakeSort(std::move(scan), {SortKey{k, false}}));
  ASSERT_EQ(rows.size(), 10u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i - 1][0].AsInt(), rows[i][0].AsInt());
  }
}

TEST_F(OperatorsTest, SortIsStableViaTiebreak) {
  PlanNodePtr scan = Scan("t");
  ExprPtr s = Col(2, ValueType::kString, "s");
  auto rows = Run(*MakeSort(std::move(scan), {SortKey{s, true}}));
  ASSERT_EQ(rows.size(), 100u);
  // Within equal s groups, original k order preserved.
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1][2].AsString() == rows[i][2].AsString()) {
      EXPECT_LT(rows[i - 1][0].AsInt(), rows[i][0].AsInt());
    }
  }
}

TEST_F(OperatorsTest, LimitTruncates) {
  auto rows = Run(*MakeLimit(Scan("t"), 7));
  EXPECT_EQ(rows.size(), 7u);
  rows = Run(*MakeLimit(Scan("u"), 100));
  EXPECT_EQ(rows.size(), 10u);
  rows = Run(*MakeLimit(Scan("u"), 0));
  EXPECT_EQ(rows.size(), 0u);
}

TEST_F(OperatorsTest, PlanExplainShowsTree) {
  PlanNodePtr plan = MakeLimit(
      MakeFilter(Scan("t"), Eq(Col(0, ValueType::kInt64, "k"), LitInt(1))),
      5);
  std::string text = plan->Explain();
  EXPECT_NE(text.find("Limit"), std::string::npos);
  EXPECT_NE(text.find("Filter"), std::string::npos);
  EXPECT_NE(text.find("Scan(t)"), std::string::npos);
}

TEST(TypedColumnTest, DictDedupStoresOneCopyPerDistinctString) {
  TypedColumn col;
  col.Reset(ValueType::kString);
  col.EnableDictDedup();
  const std::string values[] = {"RAIL", "AIR", "TRUCK"};
  for (int i = 0; i < 3000; ++i) {
    Value v = Value::Str(values[i % 3]);
    col.Append(CellView::Of(v));
  }
  EXPECT_EQ(col.size(), 3000u);
  // 3 distinct payloads -> 3 interned strings, not 3000.
  EXPECT_EQ(col.strings()->size(), 3u);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(*col.View(static_cast<uint32_t>(i)).s, values[i % 3]);
  }
  // Identical content shares one address.
  EXPECT_EQ(col.View(0).s, col.View(3).s);
}

TEST(TypedColumnTest, DictDedupStopsGrowingPastTheCardinalityCap) {
  TypedColumn col;
  col.Reset(ValueType::kString);
  col.EnableDictDedup();
  const size_t n = StringArena::kDedupMaxEntries + 40;
  for (size_t i = 0; i < n; ++i) {
    Value v = Value::Str("v" + std::to_string(i));
    col.Append(CellView::Of(v));
  }
  // High-cardinality data: every string still lands (plain interns once
  // the dictionary stops growing) and round-trips exactly.
  EXPECT_EQ(col.strings()->size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(*col.View(static_cast<uint32_t>(i)).s,
              "v" + std::to_string(i));
  }
  // Values indexed before the cap keep deduping after it: no new copy.
  Value hot = Value::Str("v0");
  col.Append(CellView::Of(hot));
  EXPECT_EQ(col.strings()->size(), n);
  EXPECT_EQ(col.View(static_cast<uint32_t>(n)).s, col.View(0).s);
}

TEST(TypedColumnTest, StableAppendBorrowsPointerAndHandsArenaOff) {
  // Producer batch with an arena-backed string lane.
  RowBatch batch;
  batch.Reset(1);
  auto* lane = batch.StartLane(0, ValueType::kString);
  ASSERT_NE(lane, nullptr);
  const std::string* s0 = batch.arena()->Intern("payload-zero");
  const std::string* s1 = batch.arena()->Intern("payload-one");
  lane->str = {s0, s1};
  batch.set_num_rows(2);
  batch.ExtendIdentitySel(0);

  TypedColumn col;
  col.Reset(ValueType::kString);
  col.RetainStorageOf(batch);
  col.AppendStable(batch.ViewCell(0, 0));
  col.AppendStable(batch.ViewCell(0, 1));
  // Borrowed, not copied: same addresses, nothing interned by the column.
  EXPECT_EQ(col.View(0).s, s0);
  EXPECT_EQ(col.View(1).s, s1);
  EXPECT_TRUE(col.strings()->empty());

  // The handoff keeps the bytes alive after the producer batch resets
  // (its sole-owner arena reuse must see the column's retained handle).
  batch.Reset(1);
  EXPECT_EQ(*col.View(0).s, "payload-zero");
  EXPECT_EQ(*col.View(1).s, "payload-one");

  // GatherInto forwards the retained handles to the emitted batch.
  RowBatch out;
  out.Reset(1);
  const uint32_t idx[] = {1, 0};
  col.GatherInto(&out, 0, idx, 2);
  out.set_num_rows(2);
  out.ExtendIdentitySel(0);
  col.Reset(ValueType::kString);  // column teardown
  EXPECT_EQ(*out.ViewCell(0, 0).s, "payload-one");
  EXPECT_EQ(*out.ViewCell(0, 1).s, "payload-zero");
}

TEST(TypedColumnTest, ResultSetCopiesPoolBackedLanes) {
  // A pool-backed batch (nested-loop-join-style): the lane references
  // storage that dies with the operator, so the ResultSet must copy.
  std::string pool_string = "from-a-close-scoped-pool";
  RowBatch batch;
  batch.Reset(1);
  auto* lane = batch.StartLane(0, ValueType::kString);
  ASSERT_NE(lane, nullptr);
  lane->str = {&pool_string};
  batch.set_num_rows(1);
  batch.ExtendIdentitySel(0);
  batch.MarkStringsPoolBacked();

  ResultSet set(Schema({Field("s", ValueType::kString, 32)}));
  set.AppendBatch(batch);
  pool_string = "clobbered";  // the pool dies / is overwritten
  EXPECT_EQ(*set.At(0, 0).s, "from-a-close-scoped-pool");
}

TEST_F(OperatorsTest, ClonePlanIsDeepAndEquivalent) {
  PlanNodePtr plan = MakeFilter(
      Scan("t"), Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"),
                     LitInt(50)));
  PlanNodePtr copy = ClonePlan(*plan);
  auto a = Run(*plan);
  auto b = Run(*copy);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(plan.get(), copy.get());
  EXPECT_NE(plan->children[0].get(), copy->children[0].get());
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/core/experiment.h"
#include "test_util.h"

namespace ecodb {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTestDb();
    ASSERT_NE(db_, nullptr);
    workload_ = tpch::MakeSelectionWorkload(*db_->catalog(), 5, 3).value();
  }
  std::unique_ptr<Database> db_;
  tpch::Workload workload_;
};

TEST_F(ExperimentTest, MeasuresWorkloadAndPerQueryCompletions) {
  ExperimentRunner runner(db_.get());
  auto m = runner.RunWorkload(workload_, SystemSettings::Stock(), {});
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GT(m.value().seconds, 0);
  EXPECT_GT(m.value().cpu_j, 0);
  EXPECT_DOUBLE_EQ(m.value().edp, m.value().cpu_j * m.value().seconds);
  ASSERT_EQ(m.value().query_completion_s.size(), 5u);
  // Completions are increasing and end at the workload time.
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_GT(m.value().query_completion_s[i],
              m.value().query_completion_s[i - 1]);
  }
  EXPECT_NEAR(m.value().query_completion_s.back(), m.value().seconds, 1e-9);
}

TEST_F(ExperimentTest, RepeatedRunsAreDeterministic) {
  ExperimentRunner runner(db_.get());
  RunOptions opt;
  opt.repeats = 5;
  opt.trim = 1;  // the paper's protocol
  auto multi = runner.RunWorkload(workload_, SystemSettings::Stock(), opt);
  auto single = runner.RunWorkload(workload_, SystemSettings::Stock(), {});
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(multi.value().seconds, single.value().seconds, 1e-9);
  EXPECT_NEAR(multi.value().cpu_j, single.value().cpu_j, 1e-6);
}

TEST_F(ExperimentTest, RestoresPreviousSettings) {
  ExperimentRunner runner(db_.get());
  ASSERT_TRUE(db_->ApplySettings({0.05, VoltageDowngrade::kSmall}).ok());
  ASSERT_TRUE(
      runner.RunWorkload(workload_, {0.15, VoltageDowngrade::kMedium}, {})
          .ok());
  EXPECT_TRUE(db_->settings() ==
              (SystemSettings{0.05, VoltageDowngrade::kSmall}));
}

TEST_F(ExperimentTest, UnstableSettingsPropagateError) {
  ExperimentRunner runner(db_.get());
  auto m = runner.RunWorkload(workload_,
                              {0.05, VoltageDowngrade::kAggressive}, {});
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsUnstableSettings());
}

TEST_F(ExperimentTest, GuiSensorMethodApproximatesExact) {
  ExperimentRunner runner(db_.get());
  RunOptions gui;
  gui.gui_sensor_method = true;
  auto exact = runner.RunWorkload(workload_, SystemSettings::Stock(), {});
  auto sampled = runner.RunWorkload(workload_, SystemSettings::Stock(), gui);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sampled.ok());
  if (sampled.value().cpu_j > 0) {  // needs >= 1 sample (run > 1 s)
    EXPECT_NEAR(sampled.value().cpu_j / exact.value().cpu_j, 1.0, 0.25);
  }
}

TEST_F(ExperimentTest, RatioVsComputesRelativePlots) {
  RunMeasurement stock;
  stock.seconds = 10;
  stock.cpu_j = 100;
  stock.edp = 1000;
  RunMeasurement eco;
  eco.seconds = 10.3;
  eco.cpu_j = 51;
  eco.edp = 51 * 10.3;
  RatioPoint p = RatioVs(eco, stock);
  EXPECT_NEAR(p.time_ratio, 1.03, 1e-9);
  EXPECT_NEAR(p.energy_ratio, 0.51, 1e-9);
  EXPECT_NEAR(p.edp_ratio, 0.5253, 1e-4);
}

TEST_F(ExperimentTest, ColdRunSlowerThanWarmOnDiskEngine) {
  auto db = testing::MakeTestDb(EngineProfile::Commercial(), 0.005);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSelectionWorkload(*db->catalog(), 3, 3).value();
  ExperimentRunner runner(db.get());
  RunOptions cold;
  cold.cold = true;
  auto m_cold = runner.RunWorkload(wl, SystemSettings::Stock(), cold);
  auto m_warm = runner.RunWorkload(wl, SystemSettings::Stock(), {});
  ASSERT_TRUE(m_cold.ok());
  ASSERT_TRUE(m_warm.ok());
  EXPECT_GT(m_cold.value().seconds, 1.5 * m_warm.value().seconds);
  EXPECT_GT(m_cold.value().disk_j, m_warm.value().disk_j);
}

}  // namespace
}  // namespace ecodb

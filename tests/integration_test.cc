// Cross-module integration tests: the paper's end-to-end scenarios, small.

#include <gtest/gtest.h>

#include "test_util.h"

namespace ecodb {
namespace {

TEST(IntegrationTest, Figure1ShapeAtSmallScale) {
  // Commercial engine, Q5 workload: the 5 % medium point must cut CPU
  // energy roughly in half for a small slowdown, and deeper underclocks
  // must cost more energy AND more time than point A (B, C dominated).
  auto db = testing::MakeTestDb(EngineProfile::Commercial(), 0.005);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeQ5Workload(*db->catalog()).value();
  wl.queries.resize(4);
  PvcController pvc(db.get());
  auto curve = pvc.MeasureCurve(wl, PvcController::MediumGrid(), {});
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  const auto& pts = curve.value().points;
  // Point A: -45..-55 % energy at < +6 % time (paper: -49 % at +3 %).
  EXPECT_NEAR(pts[0].ratio.energy_ratio, 0.51, 0.06);
  EXPECT_LT(pts[0].ratio.time_ratio, 1.06);
  // B and C are dominated by A (Figure 1's "worse" points).
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].ratio.energy_ratio, pts[0].ratio.energy_ratio);
    EXPECT_GT(pts[i].ratio.time_ratio, pts[0].ratio.time_ratio);
  }
}

TEST(IntegrationTest, WarmColdContrastMatchesSection35) {
  auto db = testing::MakeTestDb(EngineProfile::Commercial(), 0.005);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeQ5Workload(*db->catalog()).value();
  wl.queries.resize(4);
  ExperimentRunner runner(db.get());
  auto warm = runner.RunWorkload(wl, SystemSettings::Stock(), {});
  RunOptions cold_opt;
  cold_opt.cold = true;
  auto cold = runner.RunWorkload(wl, SystemSettings::Stock(), cold_opt);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  // Cold runs took "about three times longer". At this tiny test scale the
  // fixed seek costs loom larger than at the paper's SF 1.0, so we accept
  // a generous 1.8x..8x band here; the bench harness at its default scale
  // lands near the paper's 3.2x.
  double slowdown = cold.value().seconds / warm.value().seconds;
  EXPECT_GT(slowdown, 1.8);
  EXPECT_LT(slowdown, 8.0);
  // Average CPU power falls when cold (idle during I/O), disk power rises.
  EXPECT_LT(cold.value().cpu_j / cold.value().seconds,
            warm.value().cpu_j / warm.value().seconds);
  EXPECT_GT(cold.value().disk_j / cold.value().seconds,
            warm.value().disk_j / warm.value().seconds);
}

TEST(IntegrationTest, SqlDrivenPvcSweep) {
  // Full path: SQL text -> plan -> PVC sweep -> policy selection.
  auto db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
  ASSERT_NE(db, nullptr);
  tpch::Workload wl;
  wl.name = "sql";
  auto plan = db->PlanSql(tpch::Q6Sql(tpch::Q6Params{}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  wl.queries.push_back(std::move(plan).value());
  PvcController pvc(db.get());
  auto curve = pvc.MeasureCurve(wl, PvcController::PaperGrid(), {});
  ASSERT_TRUE(curve.ok());
  SlaPolicy policy;
  policy.max_time_ratio = 1.08;
  policy.objective = SlaPolicy::Objective::kMinEnergy;
  auto chosen = SelectOperatingPoint(curve.value(), policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_LT(chosen.value().ratio.energy_ratio, 1.0);
  EXPECT_LE(chosen.value().ratio.time_ratio, 1.08);
}

TEST(IntegrationTest, QedThenPvcCompose) {
  // The two techniques compose: batch with QED while underclocked.
  auto db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSelectionWorkload(*db->catalog(), 30, 11).value();
  QedScheduler qed(db.get(), QedOptions{30, false});
  auto stock = qed.RunComparison(wl);
  ASSERT_TRUE(stock.ok());
  ASSERT_TRUE(db->ApplySettings({0.05, VoltageDowngrade::kMedium}).ok());
  auto eco = qed.RunComparison(wl);
  ASSERT_TRUE(eco.ok());
  // Energy of the merged run under PVC is lower than merged at stock.
  EXPECT_LT(eco.value().qed_cpu_j, stock.value().qed_cpu_j);
  EXPECT_TRUE(eco.value().results_match);
}

TEST(IntegrationTest, EnergyAccountingConsistentAcrossLedgerAndQueries) {
  auto db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
  ASSERT_NE(db, nullptr);
  db->machine()->ResetMeters();
  double sum_cpu = 0;
  auto wl = tpch::MakeSelectionWorkload(*db->catalog(), 5, 1).value();
  for (const auto& q : wl.queries) {
    auto r = db->ExecutePlanQuery(*q);
    ASSERT_TRUE(r.ok());
    sum_cpu += r.value().cpu_joules;
  }
  // Per-query joules sum to the ledger total (no unattributed energy).
  EXPECT_NEAR(db->machine()->ledger().cpu_j, sum_cpu, 1e-6 * sum_cpu);
}

TEST(IntegrationTest, GeneratedDataSupportsAllFourExampleQueries) {
  auto db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeMixedWorkload(*db->catalog());
  ASSERT_TRUE(wl.ok());
  for (const auto& q : wl.value().queries) {
    auto r = db->ExecutePlanQuery(*q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().rows().empty());
  }
}

}  // namespace
}  // namespace ecodb

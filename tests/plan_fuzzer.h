// Random physical-plan generator shared by the differential fuzz
// harnesses (row-vs-batch parity, governor/fault robustness).
//
// Generates random plans over the dbgen TPC-H tables — scans, typed
// predicates (compare / BETWEEN / IN-list / AND-OR-NOT chains,
// column-vs-column and column-vs-sampled-literal, dictionary-string
// equality/ordered/IN shapes with present AND absent literals),
// projections with arithmetic (including NULL-producing division), FK
// hash-join chains, string-keyed joins, nested-loop joins, group-by
// aggregation (biased toward string keys: low-cardinality dict columns
// drive the per-code group memo, free-text comments the abandoned-dict
// fallback), sort and limit. Every plan is a deterministic function of
// its seed and the catalog contents, so a failing seed reproduces
// exactly.

#ifndef ECODB_TESTS_PLAN_FUZZER_H_
#define ECODB_TESTS_PLAN_FUZZER_H_

#include <algorithm>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "ecodb/ecodb.h"

namespace ecodb {
namespace testing {

/// A plan under construction: the node plus, per output field, where its
/// values come from (for sampling realistic literals). Fields produced by
/// expressions have no source.
struct SubPlan {
  PlanNodePtr node;
  std::vector<std::optional<std::pair<const Table*, int>>> sources;
};

class PlanFuzzer {
 public:
  PlanFuzzer(uint64_t seed, const Catalog& catalog)
      : rng_(seed), catalog_(catalog) {}

  PlanNodePtr Generate() {
    SubPlan sp = GenerateBase();
    ApplyUnaries(&sp);
    return std::move(sp.node);
  }

  /// A plan guaranteed to end in a pipeline breaker — aggregation root,
  /// sort root, or both — over a base that is itself join-heavy half the
  /// time (so the parallel partitioned hash build, the partial-agg merge
  /// and the sorted-run merge all get dense coverage at any worker
  /// count). Same determinism contract as Generate().
  PlanNodePtr GenerateBreakerRoot() {
    SubPlan sp = Coin(0.5) ? GenerateBase()
                           : (Coin(0.5) ? GenerateJoin(Coin(0.4) ? 2 : 1)
                                        : GenerateStringKeyJoin());
    MaybeFilter(&sp, 0.4);
    if (Coin(0.3)) ApplyPassthroughProject(&sp);
    switch (Roll(3)) {
      case 0:
        ApplyAggregate(&sp);
        break;
      case 1:
        ApplySort(&sp);
        break;
      default:  // agg-root under a sort root: both breakers stacked
        ApplyAggregate(&sp);
        ApplySort(&sp);
        break;
    }
    if (Coin(0.3)) {
      sp.node = MakeLimit(std::move(sp.node), RandomLimitValue());
    }
    return std::move(sp.node);
  }

 private:
  size_t Roll(size_t n) { return n == 0 ? 0 : rng_() % n; }
  bool Coin(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }

  const Table* TableOf(const std::string& name) {
    const TableEntry* e = catalog_.FindEntry(name);
    return e == nullptr ? nullptr : e->table.get();
  }

  SubPlan ScanOf(const std::string& name) {
    SubPlan sp;
    sp.node = MakeScan(catalog_, name).value();
    const Table* t = TableOf(name);
    for (int c = 0; c < sp.node->output_schema.num_fields(); ++c) {
      sp.sources.emplace_back(std::make_pair(t, c));
    }
    return sp;
  }

  ExprPtr ColOf(const SubPlan& sp, int idx) {
    const Field& f = sp.node->output_schema.field(idx);
    return Col(idx, f.type, f.name);
  }

  /// A literal sampled from the column backing field `idx` (realistic
  /// selectivity), or nullopt when the field has no table source.
  std::optional<Value> SampleLiteral(const SubPlan& sp, int idx) {
    const auto& src = sp.sources[static_cast<size_t>(idx)];
    if (!src.has_value()) return std::nullopt;
    const Table* t = src->first;
    if (t->num_rows() == 0) return std::nullopt;
    return t->GetValue(Roll(t->num_rows()), src->second);
  }

  bool IsNumericType(ValueType t) {
    return t == ValueType::kInt64 || t == ValueType::kDouble ||
           t == ValueType::kDate || t == ValueType::kBool;
  }

  std::vector<int> FieldsOfClass(const SubPlan& sp, bool numeric) {
    std::vector<int> out;
    for (int c = 0; c < sp.node->output_schema.num_fields(); ++c) {
      if (IsNumericType(sp.node->output_schema.field(c).type) == numeric) {
        out.push_back(c);
      }
    }
    return out;
  }

  /// A string literal for dictionary-predicate shapes: usually sampled
  /// from the backing column (present in its dictionary), sometimes
  /// perturbed so it is absent (exercising the boundary translation:
  /// Eq => const-false, Ne => const-true, ordered ops => lower-bound
  /// code compares) — both directions of the sort order.
  std::optional<Value> SampleStringLiteral(const SubPlan& sp, int idx) {
    auto lit = SampleLiteral(sp, idx);
    if (!lit.has_value() || lit->type() != ValueType::kString) {
      return std::nullopt;
    }
    if (Coin(0.3)) {
      std::string s = lit->AsString();
      if (Coin(0.5)) {
        s += "~";  // sorts just after the sampled entry
      } else if (!s.empty()) {
        s.pop_back();  // a (usually absent) proper prefix, sorts before
      }
      return Value::Str(std::move(s));
    }
    return lit;
  }

  CompareOp RandomCompareOp() {
    static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                     CompareOp::kLt, CompareOp::kLe,
                                     CompareOp::kGt, CompareOp::kGe};
    return kOps[Roll(6)];
  }

  /// One atomic predicate over the sub-plan's schema, or null when no
  /// sampleable field exists.
  ExprPtr AtomicPredicate(const SubPlan& sp) {
    const int n = sp.node->output_schema.num_fields();
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int idx = static_cast<int>(Roll(static_cast<size_t>(n)));
      const ValueType t = sp.node->output_schema.field(idx).type;
      switch (Roll(7)) {
        case 0:
        case 1: {  // column <op> sampled literal
          auto lit = SampleLiteral(sp, idx);
          if (!lit.has_value()) continue;
          return Cmp(RandomCompareOp(), ColOf(sp, idx), Lit(*lit));
        }
        case 2: {  // column BETWEEN two sampled literals
          auto lo = SampleLiteral(sp, idx);
          auto hi = SampleLiteral(sp, idx);
          if (!lo.has_value() || !hi.has_value()) continue;
          if (lo->Compare(*hi) > 0) std::swap(*lo, *hi);
          return Between(ColOf(sp, idx), Lit(*lo), Lit(*hi));
        }
        case 3: {  // column IN (sampled list), linear or hashed
          auto first = SampleLiteral(sp, idx);
          if (!first.has_value()) continue;
          std::vector<Value> vals{*first};
          const size_t extra = 1 + Roll(4);
          for (size_t i = 0; i < extra; ++i) {
            auto v = SampleLiteral(sp, idx);
            if (v.has_value()) vals.push_back(*v);
          }
          return InList(ColOf(sp, idx), std::move(vals),
                        /*hashed=*/Coin(0.5));
        }
        case 4:
        case 5: {  // dictionary-string predicate over a string column:
                   // equality/ordered compares and IN-lists, with
                   // present and absent literals (SampleStringLiteral).
                   // Low-cardinality columns (flags, modes, priorities)
                   // hit the code-compare paths; free-text comments the
                   // abandoned-dict byte fallback.
          std::vector<int> strs = FieldsOfClass(sp, /*numeric=*/false);
          if (strs.empty()) continue;
          const int sidx = strs[Roll(strs.size())];
          auto lit = SampleStringLiteral(sp, sidx);
          if (!lit.has_value()) continue;
          if (Coin(0.6)) {
            const CompareOp op =
                Coin(0.6) ? (Coin(0.5) ? CompareOp::kEq : CompareOp::kNe)
                          : RandomCompareOp();
            return Cmp(op, ColOf(sp, sidx), Lit(*lit));
          }
          std::vector<Value> vals{*lit};
          const size_t extra = 1 + Roll(4);
          for (size_t i = 0; i < extra; ++i) {
            auto v = SampleStringLiteral(sp, sidx);
            if (v.has_value()) vals.push_back(*v);
          }
          return InList(ColOf(sp, sidx), std::move(vals),
                        /*hashed=*/Coin(0.5));
        }
        default: {  // column <op> column of the same type
          std::vector<int> same;
          for (int c = 0; c < n; ++c) {
            if (c != idx && sp.node->output_schema.field(c).type == t) {
              same.push_back(c);
            }
          }
          if (same.empty()) continue;
          return Cmp(RandomCompareOp(), ColOf(sp, idx),
                     ColOf(sp, same[Roll(same.size())]));
        }
      }
    }
    return nullptr;
  }

  ExprPtr RandomPredicate(const SubPlan& sp) {
    ExprPtr first = AtomicPredicate(sp);
    if (first == nullptr) return nullptr;
    if (Coin(0.25)) first = Not(first);
    if (!Coin(0.4)) return first;
    std::vector<ExprPtr> operands{first};
    const size_t extra = 1 + Roll(2);
    for (size_t i = 0; i < extra; ++i) {
      ExprPtr p = AtomicPredicate(sp);
      if (p != nullptr) operands.push_back(std::move(p));
    }
    if (operands.size() == 1) return operands[0];
    return Coin(0.5) ? And(std::move(operands)) : Or(std::move(operands));
  }

  /// Random arithmetic over numeric fields; division is included on
  /// purpose (divide-by-zero yields NULL, exercising null lanes and the
  /// boxed fallbacks). Returns null when the schema has no numeric field.
  ExprPtr RandomArith(const SubPlan& sp, int depth = 0) {
    std::vector<int> numeric = FieldsOfClass(sp, /*numeric=*/true);
    if (numeric.empty()) return nullptr;
    static const ArithOp kOps[] = {ArithOp::kAdd, ArithOp::kSub,
                                   ArithOp::kMul, ArithOp::kDiv};
    const ArithOp op = kOps[Roll(4)];
    ExprPtr left = ColOf(sp, numeric[Roll(numeric.size())]);
    ExprPtr right;
    if (depth < 1 && Coin(0.35)) {
      right = RandomArith(sp, depth + 1);
    }
    if (right == nullptr) {
      if (Coin(0.5)) {
        right = ColOf(sp, numeric[Roll(numeric.size())]);
      } else {
        right = Coin(0.5) ? LitDbl((static_cast<double>(Roll(200)) - 100.0) /
                                   7.0)
                          : LitInt(static_cast<int64_t>(Roll(50)));
      }
    }
    return Arith(op, std::move(left), std::move(right));
  }

  void MaybeFilter(SubPlan* sp, double p) {
    if (!Coin(p)) return;
    ExprPtr pred = RandomPredicate(*sp);
    if (pred == nullptr) return;
    sp->node = MakeFilter(std::move(sp->node), std::move(pred));
  }

  /// FK pairs (parent key, child key) that keep join output linear in the
  /// child's cardinality, mirroring the TPC-H constellation.
  struct FkEdge {
    const char* parent;
    const char* parent_key;
    const char* child;
    const char* child_key;
  };

  SubPlan GenerateJoin(int n_joins) {
    static const FkEdge kEdges[] = {
        {"orders", "o_orderkey", "lineitem", "l_orderkey"},
        {"customer", "c_custkey", "orders", "o_custkey"},
        {"nation", "n_nationkey", "customer", "c_nationkey"},
        {"nation", "n_nationkey", "supplier", "s_nationkey"},
        {"region", "r_regionkey", "nation", "n_regionkey"},
    };
    const FkEdge& e = kEdges[Roll(5)];
    SubPlan build = ScanOf(e.parent);
    MaybeFilter(&build, 0.5);
    SubPlan probe = ScanOf(e.child);
    MaybeFilter(&probe, 0.4);
    int bk = build.node->output_schema.FindField(e.parent_key);
    int pk = probe.node->output_schema.FindField(e.child_key);
    SubPlan joined;
    joined.sources = build.sources;
    joined.sources.insert(joined.sources.end(), probe.sources.begin(),
                          probe.sources.end());
    joined.node = MakeHashJoin(std::move(build.node), std::move(probe.node),
                               {bk}, {pk});
    if (n_joins < 2) return joined;
    // Second hop up the constellation: join the combined row back to the
    // parent of the current parent, when one exists.
    static const FkEdge kSecond[] = {
        {"customer", "c_custkey", "orders", "o_custkey"},
        {"nation", "n_nationkey", "customer", "c_nationkey"},
        {"region", "r_regionkey", "nation", "n_regionkey"},
    };
    for (const FkEdge& s : kSecond) {
      int ck = joined.node->output_schema.FindField(s.child_key);
      if (ck < 0) continue;
      SubPlan parent = ScanOf(s.parent);
      MaybeFilter(&parent, 0.5);
      int bk2 = parent.node->output_schema.FindField(s.parent_key);
      SubPlan two;
      two.sources = parent.sources;
      two.sources.insert(two.sources.end(), joined.sources.begin(),
                         joined.sources.end());
      two.node = MakeHashJoin(std::move(parent.node), std::move(joined.node),
                              {bk2}, {ck});
      return two;
    }
    return joined;
  }

  /// A projection that passes every field of `sp` through by column
  /// reference — in batch mode this re-emits typed lanes over the child's
  /// lanes, stacking another producer between a join and its consumer.
  void ApplyPassthroughProject(SubPlan* sp) {
    const int n = sp->node->output_schema.num_fields();
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (int c = 0; c < n; ++c) {
      exprs.push_back(ColOf(*sp, c));
      names.push_back(sp->node->output_schema.field(c).name);
    }
    sp->node = MakeProject(std::move(sp->node), std::move(exprs),
                           std::move(names));
  }

  /// String-keyed hash join whose probe child is itself a join (and,
  /// half the time, a typed projection over that join): the probe-side
  /// string key and payload reach the outer join through string-ref
  /// lanes whose backing batch is replaced mid-call — the arena-retention
  /// path that replaced the demote-to-boxed fallback. n_name / r_name
  /// are unique, so output stays linear in the probe cardinality.
  SubPlan GenerateStringKeyJoin() {
    const bool via_region = Coin(0.4);
    SubPlan inner_build = ScanOf(via_region ? "region" : "nation");
    MaybeFilter(&inner_build, 0.4);
    static const char* kNationChildren[] = {"customer", "supplier"};
    SubPlan inner_probe =
        ScanOf(via_region ? "nation" : kNationChildren[Roll(2)]);
    MaybeFilter(&inner_probe, 0.4);
    const char* parent_key = via_region ? "r_regionkey" : "n_nationkey";
    const char* child_key = via_region ? "n_regionkey"
                                       : (inner_probe.node->output_schema
                                                  .FindField("c_nationkey") >= 0
                                              ? "c_nationkey"
                                              : "s_nationkey");
    int ibk = inner_build.node->output_schema.FindField(parent_key);
    int ipk = inner_probe.node->output_schema.FindField(child_key);
    SubPlan probe;
    probe.sources = inner_build.sources;
    probe.sources.insert(probe.sources.end(), inner_probe.sources.begin(),
                         inner_probe.sources.end());
    probe.node = MakeHashJoin(std::move(inner_build.node),
                              std::move(inner_probe.node), {ibk}, {ipk});
    if (Coin(0.5)) ApplyPassthroughProject(&probe);
    MaybeFilter(&probe, 0.3);

    const char* str_key = via_region ? "r_name" : "n_name";
    SubPlan build = ScanOf(via_region ? "region" : "nation");
    MaybeFilter(&build, 0.4);
    int bk = build.node->output_schema.FindField(str_key);
    int pk = probe.node->output_schema.FindField(str_key);
    SubPlan joined;
    joined.sources = build.sources;
    joined.sources.insert(joined.sources.end(), probe.sources.begin(),
                          probe.sources.end());
    joined.node = MakeHashJoin(std::move(build.node), std::move(probe.node),
                               {bk}, {pk});
    return joined;
  }

  SubPlan GenerateNestedLoop() {
    SubPlan outer = ScanOf("nation");
    SubPlan inner = ScanOf("region");
    SubPlan joined;
    joined.sources = outer.sources;
    joined.sources.insert(joined.sources.end(), inner.sources.begin(),
                          inner.sources.end());
    ExprPtr pred = nullptr;
    if (Coin(0.7)) {
      int nk = joined.sources.size() > 2
                   ? outer.node->output_schema.FindField("n_regionkey")
                   : -1;
      int rk_local = inner.node->output_schema.FindField("r_regionkey");
      int rk = outer.node->output_schema.num_fields() + rk_local;
      if (nk >= 0 && rk_local >= 0) {
        pred = Eq(Col(nk, ValueType::kInt64, "n_regionkey"),
                  Col(rk, ValueType::kInt64, "r_regionkey"));
      }
    }
    joined.node = MakeNestedLoopJoin(std::move(outer.node),
                                     std::move(inner.node), std::move(pred));
    return joined;
  }

  SubPlan GenerateBase() {
    const size_t shape = Roll(100);
    if (shape < 40) {  // single table
      static const char* kTables[] = {"lineitem", "orders",   "customer",
                                      "supplier", "nation",   "region"};
      return ScanOf(kTables[Roll(6)]);
    }
    if (shape < 65) return GenerateJoin(1);
    if (shape < 78) return GenerateJoin(2);
    if (shape < 92) return GenerateStringKeyJoin();
    return GenerateNestedLoop();
  }

  void ApplyProject(SubPlan* sp) {
    const int n = sp->node->output_schema.num_fields();
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    std::vector<std::optional<std::pair<const Table*, int>>> sources;
    const size_t keep = 1 + Roll(static_cast<size_t>(std::min(n, 6)));
    for (size_t i = 0; i < keep; ++i) {
      const int idx = static_cast<int>(Roll(static_cast<size_t>(n)));
      exprs.push_back(ColOf(*sp, idx));
      names.push_back("p" + std::to_string(i));
      sources.push_back(sp->sources[static_cast<size_t>(idx)]);
    }
    const size_t arith = Roll(3);
    for (size_t i = 0; i < arith; ++i) {
      ExprPtr e = RandomArith(*sp);
      if (e == nullptr) break;
      exprs.push_back(std::move(e));
      names.push_back("a" + std::to_string(i));
      sources.push_back(std::nullopt);
    }
    sp->node = MakeProject(std::move(sp->node), std::move(exprs),
                           std::move(names));
    sp->sources = std::move(sources);
  }

  void ApplyAggregate(SubPlan* sp) {
    const int n = sp->node->output_schema.num_fields();
    std::vector<ExprPtr> group_by;
    const size_t n_keys = Roll(3);  // 0 => global aggregate
    for (size_t i = 0; i < n_keys; ++i) {
      group_by.push_back(ColOf(*sp, static_cast<int>(Roll(n))));
    }
    // Bias toward string group-by keys: the single-string-key shape
    // drives the dictionary-code group memo (low-cardinality columns)
    // and its generic fallback (abandoned-dict comments); the
    // two-key variant keeps the multi-key path honest.
    std::vector<int> strs = FieldsOfClass(*sp, /*numeric=*/false);
    if (!strs.empty() && Coin(0.35)) {
      group_by.clear();
      group_by.push_back(ColOf(*sp, strs[Roll(strs.size())]));
      if (Coin(0.3)) {
        group_by.push_back(ColOf(*sp, static_cast<int>(Roll(n))));
      }
    }
    std::vector<AggSpec> aggs;
    static const AggSpec::Kind kKinds[] = {
        AggSpec::Kind::kSum, AggSpec::Kind::kCount, AggSpec::Kind::kAvg,
        AggSpec::Kind::kMin, AggSpec::Kind::kMax};
    const size_t n_aggs = 1 + Roll(3);
    for (size_t i = 0; i < n_aggs; ++i) {
      AggSpec a;
      a.kind = kKinds[Roll(5)];
      a.name = "agg" + std::to_string(i);
      if (a.kind == AggSpec::Kind::kCount && Coin(0.5)) {
        a.arg = nullptr;  // COUNT(*)
      } else {
        std::vector<int> numeric = FieldsOfClass(*sp, /*numeric=*/true);
        if (!numeric.empty() && Coin(0.6)) {
          a.arg = ColOf(*sp, numeric[Roll(numeric.size())]);
        } else {
          a.arg = RandomArith(*sp);
          if (a.arg == nullptr) {
            a.kind = AggSpec::Kind::kCount;  // no numeric fields at all
          }
        }
      }
      aggs.push_back(std::move(a));
    }
    sp->node = MakeAggregate(std::move(sp->node), std::move(group_by),
                             std::move(aggs));
    sp->sources.assign(
        static_cast<size_t>(sp->node->output_schema.num_fields()),
        std::nullopt);
  }

  void ApplySort(SubPlan* sp) {
    const int n = sp->node->output_schema.num_fields();
    std::vector<SortKey> keys;
    // Bias the leading key toward a string column when one exists: the
    // columnar sort's string arenas and unboxed string compares are the
    // freshest surface.
    std::vector<int> strs = FieldsOfClass(*sp, /*numeric=*/false);
    const size_t n_keys = 1 + Roll(2);
    for (size_t i = 0; i < n_keys; ++i) {
      int f = static_cast<int>(Roll(static_cast<size_t>(n)));
      if (i == 0 && !strs.empty() && Coin(0.5)) f = strs[Roll(strs.size())];
      keys.push_back(SortKey{ColOf(*sp, f), Coin(0.5)});
    }
    sp->node = MakeSort(std::move(sp->node), std::move(keys));
  }

  /// Limits spanning every truncation regime: 0, a handful (smaller than
  /// most child cardinalities), around the group-count scale of the
  /// aggregate shapes, mid-scale, and far above any child cardinality
  /// (the no-truncation case).
  int64_t RandomLimitValue() {
    switch (Roll(5)) {
      case 0:
        return 0;
      case 1:
        return static_cast<int64_t>(1 + Roll(5));
      case 2:
        return static_cast<int64_t>(Roll(60));
      case 3:
        return static_cast<int64_t>(Roll(400));
      default:
        return static_cast<int64_t>(100000 + Roll(100000));
    }
  }

  void ApplyUnaries(SubPlan* sp) {
    MaybeFilter(sp, 0.55);
    if (Coin(0.35)) ApplyProject(sp);
    bool breaker = false;  // sort/aggregate tail => batched-LimitOp path
    if (Coin(0.45)) {
      ApplyAggregate(sp);
      breaker = true;
    }
    if (Coin(0.4)) {
      ApplySort(sp);
      breaker = true;
    }
    // LIMIT over aggregate / sort exercises the truncating batched
    // LimitOp (capped pulls from materialized emission); LIMIT straight
    // over joins/scans/filters gates the row-pull fallback.
    if (Coin(breaker ? 0.4 : 0.3)) {
      sp->node = MakeLimit(std::move(sp->node), RandomLimitValue());
    }
  }

  std::mt19937_64 rng_;
  const Catalog& catalog_;
};

}  // namespace testing
}  // namespace ecodb

#endif  // ECODB_TESTS_PLAN_FUZZER_H_

// Golden-result tests for TPC-H Q1 / Q3 / Q5 / Q6.
//
// The batch-vs-row parity suite proves the two execution modes agree
// with each other — but it cannot notice both modes drifting together.
// These tests pin the exact result rows (every column, via RowToString)
// at a fixed dbgen scale factor and seed, so a kernel rewrite that
// changes answers while preserving parity fails loudly. Both execution
// modes are checked against the same goldens.
//
// The expected rows were produced by this engine at sf=0.002,
// seed=19940101 and are stable by construction: dbgen is deterministic,
// aggregation groups emit in first-occurrence order, sorts are stable,
// and join chains iterate in insertion order — none of which depends on
// the platform's std::hash.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ecodb/ecodb.h"
#include "test_util.h"

namespace ecodb {
namespace {

constexpr double kGoldenSf = 0.002;
constexpr uint64_t kGoldenSeed = 19940101;

const char* const kQ1Expected[] = {
    "(A, F, 101338, 152240481.95, 144599812.7273, 150356754.7171, 25.265, "
    "37955.7422, 0.0499, 4011)",
    "(A, O, 10250, 15025861.41, 14249433.449, 14817322.0412, 26.0152, "
    "38136.7041, 0.052, 394)",
    "(N, F, 102368, 152087002.1, 144567266.8252, 150283764.2239, 25.4774, "
    "37851.4191, 0.0494, 4018)",
    "(N, O, 9414, 14020703.37, 13302575.8416, 13839400.1365, 26.2228, "
    "39054.884, 0.0516, 359)",
    "(R, F, 70805, 106522627.45, 101127201.991, 105212840.7395, 25.6169, "
    "38539.3008, 0.0505, 2764)",
    "(R, O, 6956, 10340655.83, 9863667.1947, 10249375.3973, 25.8587, "
    "38441.0997, 0.0471, 269)",
};

const char* const kQ3Expected[] = {
    "(1530, 1995-03-07, 0, 323344.4835)",
    "(2598, 1995-01-25, 0, 285399.0179)",
    "(2213, 1995-01-17, 0, 175412.3168)",
    "(2935, 1995-03-06, 0, 171206.991)",
    "(241, 1995-02-22, 0, 170960.071)",
    "(1368, 1995-02-16, 0, 157910.6809)",
    "(699, 1995-03-07, 0, 130545.8002)",
    "(2299, 1995-02-22, 0, 114485.9624)",
    "(9, 1994-12-21, 0, 109430.2846)",
    "(901, 1994-12-02, 0, 90782.2902)",
};

const char* const kQ5Expected[] = {
    "(JAPAN, 485087.7315)",
    "(CHINA, 231257.5606)",
};

const char* const kQ6Expected[] = {
    "(245657.4596)",
};

// String-returning ORDER BY: region |x| nation (string payloads cross a
// join), projected to (n_name, r_name), sorted descending on n_name,
// LIMIT 10 — in batch mode the LimitOp pulls capped batches from the
// columnar sort and truncates with the selection vector, so this golden
// pins string-ref lifetime across that truncation path. Nation and
// region contents are fixed by the TPC-H spec, so these rows are stable
// at any scale factor. Pins sort order and string payload bytes end to
// end — drift here is invisible to the parity suite, which only compares
// the modes to each other.
const char* const kStringOrderByExpected[] = {
    "(VIETNAM, ASIA)",        "(UNITED STATES, AMERICA)",
    "(UNITED KINGDOM, EUROPE)", "(SAUDI ARABIA, MIDDLE EAST)",
    "(RUSSIA, EUROPE)",       "(ROMANIA, EUROPE)",
    "(PERU, AMERICA)",        "(MOZAMBIQUE, AFRICA)",
    "(MOROCCO, AFRICA)",      "(KENYA, AFRICA)",
};

// LIMIT directly over a string-bearing join (no sort between): in batch
// mode the LimitOp row-pulls the streaming projection, moving boxed rows
// whose string payloads must arrive intact — the lifetime edge the PR 5
// LimitOp rework could have disturbed. Nation/region contents are fixed
// by the TPC-H spec; the join is probe-driven, so output follows nation
// insertion order.
const char* const kLimitOverJoinStringsExpected[] = {
    "(AFRICA, ALGERIA)",      "(AMERICA, ARGENTINA)",
    "(AMERICA, BRAZIL)",      "(AMERICA, CANADA)",
    "(MIDDLE EAST, EGYPT)",   "(AFRICA, ETHIOPIA)",
    "(EUROPE, FRANCE)",
};

Result<PlanNodePtr> BuildLimitOverJoinStringsPlan(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr region, MakeScan(catalog, "region"));
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr nation, MakeScan(catalog, "nation"));
  const int rk = region->output_schema.FindField("r_regionkey");
  const int nk = nation->output_schema.FindField("n_regionkey");
  PlanNodePtr joined =
      MakeHashJoin(std::move(region), std::move(nation), {rk}, {nk});
  const int r_name = joined->output_schema.FindField("r_name");
  const int n_name = joined->output_schema.FindField("n_name");
  std::vector<ExprPtr> exprs{Col(r_name, ValueType::kString, "r_name"),
                             Col(n_name, ValueType::kString, "n_name")};
  PlanNodePtr projected = MakeProject(std::move(joined), std::move(exprs),
                                      {"r_name", "n_name"});
  return MakeLimit(std::move(projected), 7);
}

Result<PlanNodePtr> BuildStringOrderByPlan(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr region, MakeScan(catalog, "region"));
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr nation, MakeScan(catalog, "nation"));
  const int rk = region->output_schema.FindField("r_regionkey");
  const int nk = nation->output_schema.FindField("n_regionkey");
  PlanNodePtr joined =
      MakeHashJoin(std::move(region), std::move(nation), {rk}, {nk});
  const int n_name = joined->output_schema.FindField("n_name");
  const int r_name = joined->output_schema.FindField("r_name");
  std::vector<ExprPtr> exprs{Col(n_name, ValueType::kString, "n_name"),
                             Col(r_name, ValueType::kString, "r_name")};
  PlanNodePtr projected = MakeProject(std::move(joined), std::move(exprs),
                                      {"n_name", "r_name"});
  std::vector<SortKey> keys;
  keys.push_back(
      SortKey{Col(0, ValueType::kString, "n_name"), /*ascending=*/false});
  PlanNodePtr sorted = MakeSort(std::move(projected), std::move(keys));
  return MakeLimit(std::move(sorted), 10);
}

class TpchGoldenTest : public ::testing::TestWithParam<ExecMode> {
 protected:
  static std::unique_ptr<Database> MakeDb(ExecMode mode) {
    DatabaseOptions opt;
    opt.profile = EngineProfile::MySqlMemory();
    opt.exec_mode = mode;
    auto db = std::make_unique<Database>(opt);
    tpch::DbGenOptions gen;
    gen.scale_factor = kGoldenSf;
    gen.seed = kGoldenSeed;
    EXPECT_TRUE(db->LoadTpch(gen).ok());
    return db;
  }

  template <size_t N>
  void ExpectGolden(Database* db, const Result<PlanNodePtr>& plan,
                    const char* const (&expected)[N]) {
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto res = db->ExecutePlanQuery(*plan.value());
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    const std::vector<Row>& rows = res.value().rows();
    ASSERT_EQ(rows.size(), N);
    for (size_t i = 0; i < N; ++i) {
      EXPECT_EQ(RowToString(rows[i]), expected[i]) << "row " << i;
    }
  }
};

TEST_P(TpchGoldenTest, Q1) {
  auto db = MakeDb(GetParam());
  ExpectGolden(db.get(), tpch::BuildQ1Plan(*db->catalog(), "1998-09-02"),
               kQ1Expected);
}

TEST_P(TpchGoldenTest, Q3) {
  auto db = MakeDb(GetParam());
  ExpectGolden(db.get(), tpch::BuildQ3Plan(*db->catalog(), tpch::Q3Params{}),
               kQ3Expected);
}

TEST_P(TpchGoldenTest, Q5) {
  auto db = MakeDb(GetParam());
  ExpectGolden(db.get(), tpch::BuildQ5Plan(*db->catalog(), tpch::Q5Params{}),
               kQ5Expected);
}

TEST_P(TpchGoldenTest, StringOrderBy) {
  auto db = MakeDb(GetParam());
  ExpectGolden(db.get(), BuildStringOrderByPlan(*db->catalog()),
               kStringOrderByExpected);
}

TEST_P(TpchGoldenTest, LimitOverJoinStrings) {
  auto db = MakeDb(GetParam());
  ExpectGolden(db.get(), BuildLimitOverJoinStringsPlan(*db->catalog()),
               kLimitOverJoinStringsExpected);
}

TEST_P(TpchGoldenTest, Q6) {
  auto db = MakeDb(GetParam());
  ExpectGolden(db.get(), tpch::BuildQ6Plan(*db->catalog(), tpch::Q6Params{}),
               kQ6Expected);
}

INSTANTIATE_TEST_SUITE_P(Modes, TpchGoldenTest,
                         ::testing::Values(ExecMode::kRow, ExecMode::kBatch),
                         [](const ::testing::TestParamInfo<ExecMode>& info) {
                           return info.param == ExecMode::kRow ? "row"
                                                               : "batch";
                         });

}  // namespace
}  // namespace ecodb

// Malformed input is a clean Status, never an assert: ValidatePlan over
// hand-built plan trees, and the SQL front-end on degenerate text.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "ecodb/ecodb.h"
#include "test_util.h"

namespace ecodb {
namespace {

class PlanValidationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = testing::MakeTestDb().release(); }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  PlanNodePtr Scan(const char* table) {
    auto r = MakeScan(*db_->catalog(), table);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  static Database* db_;
};

Database* PlanValidationTest::db_ = nullptr;

TEST_F(PlanValidationTest, ValidPlanPasses) {
  PlanNodePtr plan = Scan("nation");
  EXPECT_TRUE(ValidatePlan(*plan).ok());
  auto res = db_->ExecutePlanQuery(*plan);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().num_rows(), 25u);
}

TEST_F(PlanValidationTest, ZeroColumnProjectionIsInvalidArgument) {
  PlanNodePtr plan = MakeProject(Scan("nation"), {}, {});
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  auto res = db_->ExecutePlanQuery(*plan);
  EXPECT_TRUE(res.status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, NullFilterPredicateIsInvalidArgument) {
  PlanNodePtr plan = MakeFilter(Scan("nation"), nullptr);
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(db_->ExecutePlanQuery(*plan).status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, OutOfRangeColumnIsInvalidArgument) {
  // n_nationkey reinterpreted over a narrower schema: column index 99
  // does not exist in nation's 4 fields.
  PlanNodePtr plan =
      MakeFilter(Scan("nation"), Eq(Col(99, ValueType::kInt64, "bogus"),
                                    LitInt(0)));
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(db_->ExecutePlanQuery(*plan).status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, JoinKeyArityMismatchIsInvalidArgument) {
  PlanNodePtr plan =
      MakeHashJoin(Scan("region"), Scan("nation"), {0, 1}, {2});
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(db_->ExecutePlanQuery(*plan).status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, JoinKeyOutOfRangeIsInvalidArgument) {
  PlanNodePtr plan = MakeHashJoin(Scan("region"), Scan("nation"), {7}, {0});
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(db_->ExecutePlanQuery(*plan).status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, NegativeLimitIsInvalidArgument) {
  PlanNodePtr plan = MakeLimit(Scan("nation"), -3);
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(db_->ExecutePlanQuery(*plan).status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, EmptyAggregateIsInvalidArgument) {
  PlanNodePtr plan = MakeAggregate(Scan("nation"), {}, {});
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(db_->ExecutePlanQuery(*plan).status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, NullAggregateArgOutsideCountIsInvalidArgument) {
  std::vector<AggSpec> aggs;
  AggSpec a;
  a.kind = AggSpec::Kind::kSum;
  a.arg = nullptr;  // SUM with no argument — only COUNT(*) may omit it
  a.name = "bad_sum";
  aggs.push_back(std::move(a));
  PlanNodePtr plan = MakeAggregate(Scan("nation"), {}, std::move(aggs));
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(db_->ExecutePlanQuery(*plan).status().IsInvalidArgument());
}

TEST_F(PlanValidationTest, ErrorsSurfaceFromNestedNodes) {
  // The malformed node sits under two healthy unaries; validation recurses.
  PlanNodePtr bad = MakeFilter(Scan("nation"), nullptr);
  PlanNodePtr plan = MakeLimit(std::move(bad), 5);
  Status st = ValidatePlan(*plan);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(PlanValidationTest, DatabaseStaysUsableAfterRejectedPlan) {
  PlanNodePtr bad = MakeLimit(Scan("nation"), -1);
  EXPECT_FALSE(db_->ExecutePlanQuery(*bad).ok());
  auto res = db_->ExecuteSql("SELECT COUNT(*) AS n FROM region");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().rows()[0][0].AsInt(), 5);
}

TEST_F(PlanValidationTest, DegenerateSqlIsParseErrorNotAbort) {
  for (const char* sql : {"", "   ", "\n\t", ";", "SELECT", "SELECT FROM",
                          "FROM lineitem", "SELECT * FROM"}) {
    auto res = db_->ExecuteSql(sql);
    ASSERT_FALSE(res.ok()) << "sql: \"" << sql << '"';
    EXPECT_TRUE(res.status().IsParseError() ||
                res.status().IsInvalidArgument())
        << "sql: \"" << sql << "\" -> " << res.status().ToString();
  }
}

TEST_F(PlanValidationTest, BadDateLiteralIsParseError) {
  auto res = db_->ExecuteSql(
      "SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate < "
      "DATE '1995-13-99'");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsParseError()) << res.status().ToString();
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/core/qed.h"
#include "test_util.h"

namespace ecodb {
namespace {

class QedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
    ASSERT_NE(db_, nullptr);
    workload_ = tpch::MakeSelectionWorkload(*db_->catalog(), 50, 7).value();
  }
  std::unique_ptr<Database> db_;
  tpch::Workload workload_;
};

TEST_F(QedTest, TradesResponseTimeForEnergy) {
  // Figure 6's core effect: QED lowers per-query energy (~half) while
  // raising average response time (~1.4-1.5x).
  QedScheduler qed(db_.get(), QedOptions{35, false});
  auto rep = qed.RunComparison(workload_);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep.value().results_match);
  EXPECT_LT(rep.value().energy_ratio, 0.65);
  EXPECT_GT(rep.value().energy_ratio, 0.35);
  EXPECT_GT(rep.value().response_ratio, 1.25);
  EXPECT_LT(rep.value().response_ratio, 1.65);
  EXPECT_LT(rep.value().edp_ratio, 1.0);  // QED wins on EDP
}

TEST_F(QedTest, EnergySavingsGrowWithBatchSizeWithDiminishingReturns) {
  std::vector<double> energies;
  std::vector<double> responses;
  for (int n : {35, 40, 45, 50}) {
    QedScheduler qed(db_.get(), QedOptions{n, false});
    auto rep = qed.RunComparison(workload_);
    ASSERT_TRUE(rep.ok());
    energies.push_back(rep.value().energy_ratio);
    responses.push_back(rep.value().response_ratio);
  }
  // Energy ratio falls with batch size ...
  for (size_t i = 1; i < energies.size(); ++i) {
    EXPECT_LT(energies[i], energies[i - 1]);
  }
  // ... with diminishing decrements (paper Section 4) ...
  EXPECT_LT(energies[2] - energies[3], energies[0] - energies[1] + 1e-6);
  // ... and the relative response-time penalty *falls* as N grows (the
  // largest batch has the best EDP, paper's closing Figure 6 observation).
  for (size_t i = 1; i < responses.size(); ++i) {
    EXPECT_LT(responses[i], responses[i - 1]);
  }
}

TEST_F(QedTest, FirstQuerySuffersMostLastQueryLeast) {
  // "the response time degradation is most severe for the first query in
  // the batch, and least for the last" (Section 4).
  QedScheduler qed(db_.get(), QedOptions{40, false});
  auto rep = qed.RunComparison(workload_);
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep.value().first_query_degradation,
            rep.value().last_query_degradation);
  EXPECT_GT(rep.value().first_query_degradation, 10.0);
}

TEST_F(QedTest, FirstQueryDegradationGrowsWithBatchSize) {
  double prev = 0;
  for (int n : {10, 25, 50}) {
    QedScheduler qed(db_.get(), QedOptions{n, false});
    auto rep = qed.RunComparison(workload_);
    ASSERT_TRUE(rep.ok());
    EXPECT_GT(rep.value().first_query_degradation, prev);
    prev = rep.value().first_query_degradation;
  }
}

TEST_F(QedTest, QueueApiFlushesAtThreshold) {
  QedScheduler qed(db_.get(), QedOptions{3, false});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        qed.Submit(tpch::BuildSelectionQuery(*db_->catalog(), 10 + i).value())
            .ok());
  }
  EXPECT_TRUE(qed.ShouldFlush());
  auto flush = qed.Flush();
  ASSERT_TRUE(flush.ok()) << flush.status().ToString();
  EXPECT_EQ(flush.value().per_query_rows.size(), 3u);
  EXPECT_GT(flush.value().total_s, 0);
  EXPECT_GT(flush.value().cpu_j, 0);
  EXPECT_EQ(qed.pending(), 0);
  EXPECT_FALSE(qed.ShouldFlush());
  // Per-query results match direct execution.
  auto direct = db_->ExecutePlanQuery(
      *tpch::BuildSelectionQuery(*db_->catalog(), 11).value());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(flush.value().per_query_rows[1].size(),
            direct.value().rows().size());
}

TEST_F(QedTest, FlushOnEmptyQueueFails) {
  QedScheduler qed(db_.get(), QedOptions{5, false});
  EXPECT_FALSE(qed.Flush().ok());
}

TEST_F(QedTest, OversizedBatchRejected) {
  QedScheduler qed(db_.get(), QedOptions{60, false});
  EXPECT_FALSE(qed.RunComparison(workload_).ok());
}

TEST_F(QedTest, HashedInListImprovesOnOrChain) {
  // Ablation: evaluating the merged predicate as a hash probe beats the
  // MySQL-style OR chain on both time and energy.
  QedScheduler or_chain(db_.get(), QedOptions{40, false});
  QedScheduler hashed(db_.get(), QedOptions{40, true});
  auto a = or_chain.RunComparison(workload_);
  auto b = hashed.RunComparison(workload_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.value().results_match);
  EXPECT_LT(b.value().qed_total_s, a.value().qed_total_s);
  EXPECT_LT(b.value().qed_cpu_j, a.value().qed_cpu_j);
}

TEST(QedModelTest, AnalyticalModelBasics) {
  QedAnalyticalModel m;
  m.single_query_s = 1.0;
  m.merged_base_s = 2.0;
  m.merged_slope_s = 0.6;
  EXPECT_DOUBLE_EQ(m.MergedTime(35), 23.0);
  EXPECT_DOUBLE_EQ(m.SeqAvgResponse(35), 18.0);
  EXPECT_NEAR(m.ResponseRatio(35), 1.278, 1e-3);
  // First query degrades T_m/t_q, last T_m/(N t_q).
  EXPECT_DOUBLE_EQ(m.QueryDegradation(1, 35), 23.0);
  EXPECT_NEAR(m.QueryDegradation(35, 35), 0.657, 1e-3);
}

TEST(QedModelTest, FitRecoversParameters) {
  QedAnalyticalModel truth;
  truth.single_query_s = 0.5;
  truth.merged_base_s = 1.2;
  truth.merged_slope_s = 0.31;
  auto fit = QedAnalyticalModel::Fit(0.5, 20, truth.MergedTime(20), 45,
                                     truth.MergedTime(45));
  EXPECT_NEAR(fit.merged_base_s, truth.merged_base_s, 1e-9);
  EXPECT_NEAR(fit.merged_slope_s, truth.merged_slope_s, 1e-9);
}

TEST_F(QedTest, AnalyticalModelPredictsSimulatedResponseRatios) {
  // Fit the model from two batch sizes, predict a third within ~12 %.
  auto run = [&](int n) {
    QedScheduler qed(db_.get(), QedOptions{n, false});
    return qed.RunComparison(workload_).value();
  };
  QedBatchReport r1 = run(20);
  QedBatchReport r2 = run(50);
  double t_q = r1.seq_response_s.front();
  auto model = QedAnalyticalModel::Fit(t_q, 20, r1.qed_total_s, 50,
                                       r2.qed_total_s);
  QedBatchReport r3 = run(35);
  EXPECT_NEAR(model.ResponseRatio(35) / r3.response_ratio, 1.0, 0.12);
}

}  // namespace
}  // namespace ecodb

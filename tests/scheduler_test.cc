// WorkloadScheduler robustness contracts:
//  * circuit breaker state machine (unit level),
//  * shed-never-wrong: every completed query's rows match a solo run,
//    even when completion took transient-fault retries or QED merging,
//  * conservation: submitted = admitted + sheds + rejections, and
//    admitted = completed + failed,
//  * determinism: identical seeds give bit-identical reports,
//  * ladder-before-shedding: no shed while degradation rungs remain,
//  * retry layer: transient storms at low rates complete every admitted
//    query.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ecodb/core/scheduler.h"
#include "ecodb/ecodb.h"
#include "test_util.h"

namespace ecodb {
namespace {

// --- CircuitBreaker unit tests (pure state machine, no database) ---

CircuitBreakerOptions BreakerOpts(int threshold, double open_s,
                                  int probes) {
  CircuitBreakerOptions o;
  o.failure_threshold = threshold;
  o.open_seconds = open_s;
  o.half_open_probes = probes;
  return o;
}

TEST(CircuitBreakerTest, OpensAfterConsecutivePersistentFailures) {
  CircuitBreaker b(BreakerOpts(3, 1.0, 1));
  EXPECT_EQ(b.state(0.0), CircuitBreaker::State::kClosed);
  b.RecordPersistentFailure(0.0);
  b.RecordPersistentFailure(0.1);
  EXPECT_EQ(b.state(0.1), CircuitBreaker::State::kClosed);
  b.RecordPersistentFailure(0.2);
  EXPECT_EQ(b.state(0.2), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.AllowAdmission(0.2));
  EXPECT_EQ(b.opens(), 1u);
  EXPECT_DOUBLE_EQ(b.open_until_seconds(), 1.2);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker b(BreakerOpts(2, 1.0, 1));
  b.RecordPersistentFailure(0.0);
  b.RecordSuccess(0.1);  // streak broken
  b.RecordPersistentFailure(0.2);
  EXPECT_EQ(b.state(0.3), CircuitBreaker::State::kClosed);
  b.RecordPersistentFailure(0.3);
  EXPECT_EQ(b.state(0.3), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenProbesCloseOrReopen) {
  CircuitBreaker b(BreakerOpts(1, 1.0, 2));
  b.RecordPersistentFailure(0.0);
  EXPECT_EQ(b.state(0.5), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.state(1.5), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(b.AllowAdmission(1.5));  // probes are admitted

  // First probe succeeds: still half-open (needs 2).
  b.RecordSuccess(1.5);
  EXPECT_EQ(b.state(1.6), CircuitBreaker::State::kHalfOpen);
  b.RecordSuccess(1.6);
  EXPECT_EQ(b.state(1.7), CircuitBreaker::State::kClosed);

  // Trip again; this time the probe fails -> immediate re-open.
  b.RecordPersistentFailure(2.0);
  EXPECT_EQ(b.state(3.5), CircuitBreaker::State::kHalfOpen);
  b.RecordPersistentFailure(3.5);
  EXPECT_EQ(b.state(3.6), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 3u);
  EXPECT_DOUBLE_EQ(b.open_until_seconds(), 4.5);
}

TEST(CircuitBreakerTest, FailureWhileOpenExtendsTheWindow) {
  CircuitBreaker b(BreakerOpts(1, 1.0, 1));
  b.RecordPersistentFailure(0.0);  // open until 1.0
  b.RecordPersistentFailure(0.8);  // straggler extends to 1.8
  EXPECT_EQ(b.state(1.5), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.state(1.9), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(b.opens(), 1u);  // an extension is not a new open
}

// --- Integration fixtures ---

std::unique_ptr<Database> MakeSchedDb(double transient, double persistent,
                                      uint64_t fault_seed = 0xFA17) {
  DatabaseOptions opt;
  opt.profile = EngineProfile::Commercial();
  // Tiny pool: the SF-0.002 tables would otherwise fit in Commercial's
  // 1 GiB pool after the first scan and injected fault rates would
  // almost never fire (faults are per *disk read*).
  opt.profile.buffer_pool_pages = 64;
  opt.fault_injection.seed = fault_seed;
  opt.fault_injection.transient_fault_rate = transient;
  opt.fault_injection.persistent_fault_rate = persistent;
  // Force every transient fault to escalate to kHardwareFault so the
  // *scheduler's* retry layer (not the buffer pool's inner loop) does
  // the recovering.
  if (transient > 0.0) opt.fault_injection.max_retries = 0;
  auto db = std::make_unique<Database>(opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = testing::kTestSf;
  if (!db->LoadTpch(gen).ok()) return nullptr;
  // Cold pool: without this, scans are served from the load-warmed
  // buffer pool and the injected disk-fault rates never fire.
  db->ColdRestart();
  return db;
}

SchedulerOptions BaseOptions() {
  SchedulerOptions opt;
  opt.seed = 0x5EED1;
  opt.worker_slots = 2;
  opt.max_queue_depth = 8;
  return opt;
}

bool RowsEqual(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].Compare(b[i][j]) != 0) return false;
    }
  }
  return true;
}

void CheckConservation(const ScheduleReport& r, size_t num_specs) {
  EXPECT_EQ(r.submitted, num_specs);
  EXPECT_EQ(r.submitted, r.admitted + r.shed_queue_full +
                             r.shed_projected_wait + r.breaker_rejected);
  EXPECT_EQ(r.admitted, r.completed + r.failed);
  EXPECT_EQ(r.outcomes.size(), num_specs);
}

// --- Shed-never-wrong: completed rows match fault-free solo runs ---

TEST(SchedulerTest, CompletedRowsMatchSoloRunsUnderFaultsAndMerging) {
  // Scheduler DB with transient faults; solo DB fault-free. Identical
  // content (same dbgen), so completed rows must agree exactly.
  auto sched_db = MakeSchedDb(/*transient=*/1e-3, /*persistent=*/0.0);
  auto solo_db = MakeSchedDb(0.0, 0.0);
  ASSERT_NE(sched_db, nullptr);
  ASSERT_NE(solo_db, nullptr);

  const int kN = 24;
  auto wl = tpch::MakeSchedulerMixWorkload(*sched_db->catalog(), kN, 0x77,
                                           /*selection_fraction=*/0.8);
  auto solo_wl = tpch::MakeSchedulerMixWorkload(*solo_db->catalog(), kN,
                                                0x77, 0.8);
  ASSERT_TRUE(wl.ok() && solo_wl.ok());

  SchedulerOptions opt = BaseOptions();
  // High enough arrival rate that merging happens; generous class with
  // no deadline so nothing is governor-killed.
  WorkloadScheduler sched(sched_db.get(), opt);
  auto report = sched.Run(
      WorkloadScheduler::SpecsFromWorkload(wl.value()),
      ArrivalProcess::OpenLoop(/*qps=*/200.0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ScheduleReport& r = report.value();
  CheckConservation(r, kN);
  EXPECT_GT(r.completed, 0u);

  for (int i = 0; i < kN; ++i) {
    const QueryOutcome& out = r.outcomes[static_cast<size_t>(i)];
    if (!out.status.ok()) {
      // Only sheds are acceptable non-completions here: transient
      // faults must be healed by the retry layer.
      EXPECT_TRUE(out.status.IsUnavailable()) << out.status.ToString();
      continue;
    }
    auto solo = solo_db->ExecutePlanQuery(
        *solo_wl.value().queries[static_cast<size_t>(i)]);
    ASSERT_TRUE(solo.ok()) << solo.status().ToString();
    EXPECT_TRUE(RowsEqual(out.rows, solo.value().rows()))
        << "query " << i << " (merged=" << out.merged
        << ", attempts=" << out.attempts << ")";
  }
}

// --- Retry layer: low transient rate completes every admitted query ---

TEST(SchedulerTest, TransientFaultsAreRetriedToCompletion) {
  auto db = MakeSchedDb(/*transient=*/1e-3, /*persistent=*/0.0);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSchedulerMixWorkload(*db->catalog(), 20, 0x31, 0.5);
  ASSERT_TRUE(wl.ok());

  SchedulerOptions opt = BaseOptions();
  opt.max_queue_depth = 64;  // roomy: nothing shed, isolate the retries
  WorkloadScheduler sched(db.get(), opt);
  auto report = sched.Run(WorkloadScheduler::SpecsFromWorkload(wl.value()),
                          ArrivalProcess::OpenLoop(50.0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ScheduleReport& r = report.value();
  CheckConservation(r, 20);
  EXPECT_GT(r.retries, 0u);  // the fault rate really fired
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.completed, r.admitted);
  for (const QueryOutcome& out : r.outcomes) {
    if (out.status.ok()) {
      EXPECT_GE(out.attempts, 1);
    }
  }
}

// --- Determinism: same seed, bit-identical report ---

TEST(SchedulerTest, RunsAreBitIdenticalForTheSameSeed) {
  ScheduleReport reports[2];
  for (int run = 0; run < 2; ++run) {
    auto db = MakeSchedDb(/*transient=*/5e-3, /*persistent=*/1e-4);
    ASSERT_NE(db, nullptr);
    auto wl = tpch::MakeSchedulerMixWorkload(*db->catalog(), 30, 0x99, 0.7);
    ASSERT_TRUE(wl.ok());
    SchedulerOptions opt = BaseOptions();
    WorkloadScheduler sched(db.get(), opt);
    auto report =
        sched.Run(WorkloadScheduler::SpecsFromWorkload(wl.value()),
                  ArrivalProcess::OpenLoop(150.0));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    reports[run] = std::move(report.value());
  }
  const ScheduleReport& a = reports[0];
  const ScheduleReport& b = reports[1];
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.merged_batches, b.merged_batches);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);  // bit-identical
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.total_wall_j, b.total_wall_j);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].status.code(), b.outcomes[i].status.code()) << i;
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts) << i;
    EXPECT_EQ(a.outcomes[i].latency_seconds, b.outcomes[i].latency_seconds)
        << i;
  }
}

// --- Ladder before shedding ---

TEST(SchedulerTest, OverloadClimbsTheLadderBeforeShedding) {
  auto db = MakeSchedDb(0.0, 0.0);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSchedulerMixWorkload(*db->catalog(), 60, 0x42, 0.9);
  ASSERT_TRUE(wl.ok());

  SchedulerOptions opt = BaseOptions();
  opt.worker_slots = 1;
  opt.max_queue_depth = 4;  // tiny: overload immediately
  WorkloadScheduler sched(db.get(), opt);
  auto report = sched.Run(WorkloadScheduler::SpecsFromWorkload(wl.value()),
                          ArrivalProcess::OpenLoop(2000.0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ScheduleReport& r = report.value();
  CheckConservation(r, 60);

  // The flood must have pushed the ladder to its top and triggered QED
  // merging on the way.
  EXPECT_EQ(r.max_level_reached, opt.degradation.MaxLevel());
  EXPECT_GT(r.escalations, 0u);
  EXPECT_GT(r.merged_batches, 0u);
  // Sheds happened (the flood exceeds capacity) but never while rungs
  // remained.
  EXPECT_GT(r.shed_queue_full + r.shed_projected_wait, 0u);
  EXPECT_EQ(r.sheds_below_max_level, 0u);
  // Operating point restored after the run.
  EXPECT_TRUE(db->settings() == SystemSettings{});
}

// --- Breaker integration: persistent outage opens, rejects, recovers ---

TEST(SchedulerTest, PersistentFaultsOpenBreakerAndRejectArrivals) {
  // High persistent rate: early queries fail persistently, open the
  // breaker, and subsequent arrivals are rejected with kUnavailable.
  auto db = MakeSchedDb(/*transient=*/0.0, /*persistent=*/0.6);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSchedulerMixWorkload(*db->catalog(), 30, 0x13, 1.0);
  ASSERT_TRUE(wl.ok());

  SchedulerOptions opt = BaseOptions();
  opt.breaker.failure_threshold = 2;
  opt.breaker.open_seconds = 0.5;
  opt.classes.push_back(SchedulerClass{});
  opt.classes[0].retry_budget = 0;  // persistent faults fail immediately
  WorkloadScheduler sched(db.get(), opt);
  auto report = sched.Run(WorkloadScheduler::SpecsFromWorkload(wl.value()),
                          ArrivalProcess::OpenLoop(100.0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ScheduleReport& r = report.value();
  CheckConservation(r, 30);
  EXPECT_GT(r.failed, 0u);
  EXPECT_GT(r.breaker_opens, 0u);
  EXPECT_GT(r.breaker_rejected, 0u);
  for (const QueryOutcome& out : r.outcomes) {
    if (out.attempts == 0) {
      EXPECT_TRUE(out.status.IsUnavailable()) << out.status.ToString();
    }
  }
}

// --- Closed loop terminates and respects the client bound ---

TEST(SchedulerTest, ClosedLoopRunsEveryQueryWithBoundedConcurrency) {
  auto db = MakeSchedDb(0.0, 0.0);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSchedulerMixWorkload(*db->catalog(), 15, 0x21, 0.6);
  ASSERT_TRUE(wl.ok());

  SchedulerOptions opt = BaseOptions();
  WorkloadScheduler sched(db.get(), opt);
  auto report =
      sched.Run(WorkloadScheduler::SpecsFromWorkload(wl.value()),
                ArrivalProcess::ClosedLoop(/*clients=*/3,
                                           /*think_s=*/0.01));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ScheduleReport& r = report.value();
  CheckConservation(r, 15);
  // 3 clients against 2 workers and queue depth 8: nothing ever sheds.
  EXPECT_EQ(r.completed, 15u);
  EXPECT_EQ(r.shed_queue_full + r.shed_projected_wait, 0u);
}

// --- SLA classes: tight deadlines are enforced per class ---

TEST(SchedulerTest, ClassDeadlinesGovernAdmittedQueries) {
  auto db = MakeSchedDb(0.0, 0.0);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSchedulerMixWorkload(*db->catalog(), 12, 0x55, 0.0);
  ASSERT_TRUE(wl.ok());  // all heavies: slow enough to miss a deadline

  SchedulerOptions opt = BaseOptions();
  SchedulerClass strict;
  strict.name = "strict";
  strict.sla.max_seconds = 1e-4;  // far below any heavy's service time
  strict.retry_budget = 0;
  opt.classes.push_back(strict);
  WorkloadScheduler sched(db.get(), opt);
  auto report = sched.Run(WorkloadScheduler::SpecsFromWorkload(wl.value()),
                          ArrivalProcess::OpenLoop(50.0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ScheduleReport& r = report.value();
  CheckConservation(r, 12);
  EXPECT_EQ(r.completed, 0u);
  for (const QueryOutcome& out : r.outcomes) {
    if (out.attempts > 0) {
      EXPECT_TRUE(out.status.IsDeadlineExceeded()) << out.status.ToString();
    }
  }
}

TEST(SchedulerTest, ValidatesOptionsAndSpecs) {
  auto db = MakeSchedDb(0.0, 0.0);
  ASSERT_NE(db, nullptr);
  auto wl = tpch::MakeSchedulerMixWorkload(*db->catalog(), 3, 0x1, 0.5);
  ASSERT_TRUE(wl.ok());
  auto specs = WorkloadScheduler::SpecsFromWorkload(wl.value());

  SchedulerOptions bad = BaseOptions();
  bad.worker_slots = 0;
  EXPECT_FALSE(WorkloadScheduler(db.get(), bad)
                   .Run(specs, ArrivalProcess::OpenLoop(10.0))
                   .ok());

  SchedulerOptions opt = BaseOptions();
  EXPECT_FALSE(WorkloadScheduler(db.get(), opt)
                   .Run(specs, ArrivalProcess::OpenLoop(0.0))
                   .ok());

  std::vector<QuerySpec> bad_specs = specs;
  bad_specs[0].class_id = 7;  // out of range
  EXPECT_FALSE(WorkloadScheduler(db.get(), opt)
                   .Run(bad_specs, ArrivalProcess::OpenLoop(10.0))
                   .ok());
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/optimizer/cost_model.h"
#include "ecodb/tpch/queries.h"
#include "test_util.h"

namespace ecodb {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
    ASSERT_NE(db_, nullptr);
    model_ = std::make_unique<CostModel>(db_->catalog(), &db_->profile(),
                                         db_->options().machine);
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<CostModel> model_;
};

TEST_F(CostModelTest, TableStatsCountNdvAndRange) {
  const TableStats* li = model_->GetTableStats("lineitem");
  ASSERT_NE(li, nullptr);
  EXPECT_EQ(li->rows, db_->catalog()->FindTable("lineitem")->num_rows());
  int qty = db_->catalog()->FindTable("lineitem")->schema().FindField(
      "l_quantity");
  const ColumnStats& cs = li->columns[static_cast<size_t>(qty)];
  EXPECT_NEAR(cs.ndv, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(cs.min, 1.0);
  EXPECT_DOUBLE_EQ(cs.max, 50.0);
}

TEST_F(CostModelTest, EqualityOnQuantityEstimatesTwoPercent) {
  auto plan = tpch::BuildSelectionQuery(*db_->catalog(), 24);
  ASSERT_TRUE(plan.ok());
  auto cost = model_->Estimate(*plan.value(), SystemSettings::Stock());
  ASSERT_TRUE(cost.ok());
  double rows = db_->catalog()->FindTable("lineitem")->num_rows();
  EXPECT_NEAR(cost.value().est_rows / (0.02 * rows), 1.0, 0.15);
}

TEST_F(CostModelTest, TimePredictionTracksMeasurement) {
  auto plan = tpch::BuildSelectionQuery(*db_->catalog(), 24);
  ASSERT_TRUE(plan.ok());
  auto cost = model_->Estimate(*plan.value(), SystemSettings::Stock());
  ASSERT_TRUE(cost.ok());
  auto measured = db_->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(measured.ok());
  EXPECT_NEAR(cost.value().est_seconds / measured.value().seconds, 1.0, 0.35);
  EXPECT_NEAR(cost.value().est_cpu_joules / measured.value().cpu_joules, 1.0,
              0.35);
}

TEST_F(CostModelTest, Q5PredictionWithinFactorTwo) {
  // Join cardinalities are heuristic; we require the prediction to stay
  // within a factor of ~2.5 of the measurement (good enough to rank).
  auto plan = tpch::BuildQ5Plan(*db_->catalog(), tpch::Q5Params{});
  ASSERT_TRUE(plan.ok());
  auto cost = model_->Estimate(*plan.value(), SystemSettings::Stock());
  ASSERT_TRUE(cost.ok());
  auto measured = db_->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(measured.ok());
  double ratio = cost.value().est_seconds / measured.value().seconds;
  EXPECT_GT(ratio, 1.0 / 2.5) << cost.value().est_seconds << " vs "
                              << measured.value().seconds;
  EXPECT_LT(ratio, 2.5);
}

TEST_F(CostModelTest, PredictsEnergySavingsUnderDowngrade) {
  // The energy-aware optimizer hook: predicted joules must fall when a
  // voltage downgrade is applied, with roughly the V^2 scaling.
  auto plan = tpch::BuildSelectionQuery(*db_->catalog(), 10);
  ASSERT_TRUE(plan.ok());
  auto stock = model_->Estimate(*plan.value(), SystemSettings::Stock());
  auto eco = model_->Estimate(*plan.value(),
                              {0.05, VoltageDowngrade::kMedium});
  ASSERT_TRUE(stock.ok());
  ASSERT_TRUE(eco.ok());
  EXPECT_LT(eco.value().est_cpu_joules, stock.value().est_cpu_joules);
  EXPECT_GT(eco.value().est_seconds, stock.value().est_seconds);
}

TEST_F(CostModelTest, RankingAcrossOperatingPointsMatchesSimulation) {
  // What the policy layer needs: predicted EDP ordering across settings
  // must match the simulated ordering.
  auto plan = tpch::BuildSelectionQuery(*db_->catalog(), 7);
  ASSERT_TRUE(plan.ok());
  std::vector<SystemSettings> grid = {
      SystemSettings::Stock(),
      {0.05, VoltageDowngrade::kSmall},
      {0.05, VoltageDowngrade::kMedium},
      {0.15, VoltageDowngrade::kSmall},
  };
  std::vector<double> predicted, measured;
  for (const SystemSettings& s : grid) {
    auto cost = model_->Estimate(*plan.value(), s);
    ASSERT_TRUE(cost.ok());
    predicted.push_back(cost.value().est_edp);
    ASSERT_TRUE(db_->ApplySettings(s).ok());
    auto m = db_->ExecutePlanQuery(*plan.value());
    ASSERT_TRUE(m.ok());
    measured.push_back(m.value().cpu_joules * m.value().seconds);
  }
  ASSERT_TRUE(db_->ApplySettings(SystemSettings::Stock()).ok());
  // Compare orderings pairwise.
  for (size_t i = 0; i < grid.size(); ++i) {
    for (size_t j = i + 1; j < grid.size(); ++j) {
      EXPECT_EQ(predicted[i] < predicted[j], measured[i] < measured[j])
          << grid[i].ToString() << " vs " << grid[j].ToString();
    }
  }
}

TEST_F(CostModelTest, SelectivityHeuristics) {
  auto plan = tpch::BuildSelectionQuery(*db_->catalog(), 24);
  ASSERT_TRUE(plan.ok());
  const PlanNode& filter = *plan.value()->children[0];
  const TableStats* stats = model_->GetTableStats("lineitem");
  double sel = model_->EstimateSelectivity(*filter.predicate, filter, stats);
  EXPECT_NEAR(sel, 0.02, 0.005);

  // Range selectivity interpolates min/max.
  int qty = filter.output_schema.FindField("l_quantity");
  ExprPtr half = Cmp(CompareOp::kLt,
                     Col(qty, ValueType::kInt64, "l_quantity"), LitInt(25));
  EXPECT_NEAR(model_->EstimateSelectivity(*half, filter, stats), 0.49, 0.05);

  // OR of two disjoint equalities doubles the estimate.
  ExprPtr two = Or({Eq(Col(qty, ValueType::kInt64, "q"), LitInt(1)),
                    Eq(Col(qty, ValueType::kInt64, "q"), LitInt(2))});
  EXPECT_NEAR(model_->EstimateSelectivity(*two, filter, stats), 0.04, 0.01);
}

TEST_F(CostModelTest, UnknownTableFails) {
  PlanNode scan;
  scan.kind = PlanKind::kScan;
  scan.table_name = "nope";
  auto cost = model_->Estimate(scan, SystemSettings::Stock());
  EXPECT_FALSE(cost.ok());
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/sim/psu.h"

namespace ecodb {
namespace {

TEST(PsuModelTest, EfficiencyAtTwentyPercentLoadMatchesPaper) {
  // "we estimate that the power efficiency of the PSU is around 83%,
  // given the near 20% load" (Section 3.2).
  PsuModel psu(PsuConfig::CorsairVx450());
  EXPECT_NEAR(psu.Efficiency(0.20 * 450.0), 0.83, 0.005);
}

TEST(PsuModelTest, EfficiencyInterpolatesBetweenCurvePoints) {
  PsuModel psu(PsuConfig::CorsairVx450());
  // Halfway between the 20 % (0.83) and 50 % (0.85) points.
  EXPECT_NEAR(psu.Efficiency(0.35 * 450.0), 0.84, 1e-9);
}

class PsuBoundsTest : public ::testing::TestWithParam<double> {};

TEST_P(PsuBoundsTest, EfficiencyStaysInPhysicalRange) {
  PsuModel psu(PsuConfig::CorsairVx450());
  double eff = psu.Efficiency(GetParam());
  EXPECT_GT(eff, 0.5);
  EXPECT_LT(eff, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Loads, PsuBoundsTest,
                         ::testing::Values(0.0, 5.0, 20.0, 55.0, 90.0, 200.0,
                                           450.0, 1000.0));

TEST(PsuModelTest, WallPowerExceedsDcPower) {
  PsuModel psu(PsuConfig::CorsairVx450());
  for (double dc : {10.0, 50.0, 100.0, 400.0}) {
    EXPECT_GT(psu.WallPowerW(dc), dc);
  }
  EXPECT_EQ(psu.WallPowerW(0.0), 0.0);
}

TEST(PsuModelTest, WallPowerMonotoneInDcLoad) {
  PsuModel psu(PsuConfig::CorsairVx450());
  double prev = 0;
  for (double dc = 1; dc <= 450; dc += 1) {
    double wall = psu.WallPowerW(dc);
    EXPECT_GT(wall, prev);
    prev = wall;
  }
}

TEST(PsuModelTest, StandbyMatchesTable1Row1) {
  PsuModel psu(PsuConfig::CorsairVx450());
  EXPECT_NEAR(psu.StandbyWallPowerW(), 9.2, 0.05);
}

}  // namespace
}  // namespace ecodb

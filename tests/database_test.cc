#include <gtest/gtest.h>

#include "ecodb/core/database.h"
#include "ecodb/tpch/queries.h"
#include "test_util.h"

namespace ecodb {
namespace {

TEST(DatabaseTest, ExecutePlanMeasuresTimeAndEnergy) {
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  auto plan = tpch::BuildSelectionQuery(*db->catalog(), 24);
  ASSERT_TRUE(plan.ok());
  auto r = db->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().seconds, 0);
  EXPECT_GT(r.value().cpu_joules, 0);
  EXPECT_GT(r.value().wall_joules, r.value().cpu_joules);
  EXPECT_GT(r.value().exec_stats.tuples_scanned, 0u);
  // ~2 % of lineitem.
  double rows = db->catalog()->FindTable("lineitem")->num_rows();
  EXPECT_NEAR(r.value().rows().size() / (0.02 * rows), 1.0, 0.4);
}

TEST(DatabaseTest, MemoryEngineDoesNoDiskIo) {
  auto db = testing::MakeTestDb(EngineProfile::MySqlMemory());
  ASSERT_NE(db, nullptr);
  auto plan = tpch::BuildSelectionQuery(*db->catalog(), 24);
  auto r = db->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(db->buffer_pool()->stats().misses, 0u);
}

TEST(DatabaseTest, CommercialEngineChargesIoWhenCold) {
  auto db = testing::MakeTestDb(EngineProfile::Commercial());
  ASSERT_NE(db, nullptr);
  db->ColdRestart();
  auto plan = tpch::BuildSelectionQuery(*db->catalog(), 24);
  auto cold = db->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(db->buffer_pool()->stats().misses, 0u);
  // Second run is warm: faster.
  auto warm = db->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm.value().seconds, cold.value().seconds);
}

TEST(DatabaseTest, WarmUpPreloadsAllTables) {
  auto db = testing::MakeTestDb(EngineProfile::Commercial());
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->WarmUp().ok());
  uint64_t miss_after_warm = db->buffer_pool()->stats().misses;
  auto plan = tpch::BuildQ5Plan(*db->catalog(), tpch::Q5Params{});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(db->ExecutePlanQuery(*plan.value()).ok());
  EXPECT_EQ(db->buffer_pool()->stats().misses, miss_after_warm);
}

TEST(DatabaseTest, SettingsApplyAndSlowDownQueries) {
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  auto plan = tpch::BuildSelectionQuery(*db->catalog(), 24);
  auto stock = db->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(stock.ok());
  ASSERT_TRUE(db->ApplySettings({0.15, VoltageDowngrade::kMedium}).ok());
  EXPECT_EQ(db->settings().underclock, 0.15);
  auto eco = db->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(eco.ok());
  EXPECT_GT(eco.value().seconds, stock.value().seconds);
  EXPECT_LT(eco.value().cpu_joules, stock.value().cpu_joules);
}

TEST(DatabaseTest, RejectsUnstableSettings) {
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  EXPECT_TRUE(db->ApplySettings({0.05, VoltageDowngrade::kAggressive})
                  .IsUnstableSettings());
}

TEST(DatabaseTest, ExecuteSqlEndToEnd) {
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  auto r = db->ExecuteSql("SELECT COUNT(*) AS n FROM lineitem");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(r.value().rows()[0][0].AsInt()),
            db->catalog()->FindTable("lineitem")->num_rows());
}

TEST(DatabaseTest, PlanSqlReturnsExplainablePlan) {
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  auto plan = db->PlanSql(tpch::Q5Sql(tpch::Q5Params{}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = plan.value()->Explain();
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
}

TEST(ExecContextTest, ZeroSortComparesChargeIsFree) {
  // Regression guard for the n == 0 early-return: a no-op charge must
  // leave both the counter and the pending-cycle account untouched.
  Machine machine(MachineConfig::PaperTestbed());
  EngineProfile profile = EngineProfile::MySqlMemory();
  Catalog catalog;
  ExecContext ctx(&machine, &profile, &catalog, nullptr);
  ctx.ChargeSortCompares(0);
  ctx.Flush();
  EXPECT_EQ(ctx.stats().sort_compares, 0u);
  EXPECT_EQ(ctx.stats().cycles_charged, 0.0);
}

TEST(ExecContextTest, SpillRequestCountIsCeilDivOfPages) {
  // Regression: the spill request count used to be spilled/page + 1, so
  // an exact page multiple charged one phantom request per pass. The
  // machine's fault countdown counts requests, which makes the count
  // observable: spilling exactly 2 pages issues 2 write-back + 2
  // read-back requests, so a countdown of 5 survives (the buggy 3 + 3
  // tripped it) and the 5th request afterwards faults.
  Machine machine(MachineConfig::PaperTestbed());
  EngineProfile profile = EngineProfile::Commercial();
  ASSERT_TRUE(profile.disk_backed);
  profile.spill_fraction = 1.0;
  Catalog catalog;
  ExecContext ctx(&machine, &profile, &catalog, nullptr);
  machine.InjectDiskFaultAfterRequests(5);
  Status st = ctx.ChargeSpill(2 * kPageSizeBytes);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(ctx.stats().spill_bytes, 2ull * kPageSizeBytes);
  EXPECT_TRUE(machine.DiskRead(kPageSizeBytes, 1, false)
                  .IsHardwareFault());
}

TEST(DatabaseTest, DiskFaultSurfacesAsHardwareFault) {
  auto db = testing::MakeTestDb(EngineProfile::Commercial());
  ASSERT_NE(db, nullptr);
  db->ColdRestart();
  db->machine()->InjectDiskFaultAfterRequests(3);
  auto plan = tpch::BuildSelectionQuery(*db->catalog(), 24);
  auto r = db->ExecutePlanQuery(*plan.value());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsHardwareFault());
  db->machine()->ClearFaults();
  EXPECT_TRUE(db->ExecutePlanQuery(*plan.value()).ok());
}

}  // namespace
}  // namespace ecodb

// Morsel-driven parallel execution parity suite.
//
// The parallel engine's contract: at ANY worker count, results and
// integer logical-work counters are bit-exact against single-threaded
// execution, charged cycles agree to fp re-association (1e-9 relative),
// and simulated energy stays within the 0.1% row-vs-batch acceptance
// bound. Same seed + same worker count must be bit-identical run to run
// (static morsel schedule, ordered replay). Per-core ledgers are the
// additive concurrency view and never perturb the shared parity ledger.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "ecodb/ecodb.h"
#include "ecodb/exec/morsel.h"
#include "test_util.h"

namespace ecodb {
namespace {

constexpr double kChargeRelTol = 1e-9;
constexpr double kEnergyRelTol = 1e-3;

void ExpectNearRel(double a, double b, double tol, const char* what) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  EXPECT_LE(std::fabs(a - b) / scale, tol) << what << ": " << a << " vs " << b;
}

void ExpectCountersEqual(const QueryExecStats& seq,
                         const QueryExecStats& par) {
  EXPECT_EQ(seq.tuples_scanned, par.tuples_scanned);
  EXPECT_EQ(seq.tuples_output, par.tuples_output);
  EXPECT_EQ(seq.comparisons, par.comparisons);
  EXPECT_EQ(seq.arith_ops, par.arith_ops);
  EXPECT_EQ(seq.hash_builds, par.hash_builds);
  EXPECT_EQ(seq.hash_probes, par.hash_probes);
  EXPECT_EQ(seq.agg_updates, par.agg_updates);
  EXPECT_EQ(seq.sort_compares, par.sort_compares);
  EXPECT_EQ(seq.spill_bytes, par.spill_bytes);
  EXPECT_EQ(seq.peak_memory_bytes, par.peak_memory_bytes);
  ExpectNearRel(seq.cycles_charged, par.cycles_charged, kChargeRelTol,
                "cycles_charged");
  ExpectNearRel(seq.mem_lines_charged, par.mem_lines_charged, kChargeRelTol,
                "mem_lines_charged");
}

void ExpectRowsEqual(const std::vector<Row>& a, const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(RowToString(a[i]), RowToString(b[i])) << "row " << i;
  }
}

// --- Plan-level parity over hand-built tables ---

struct RunResult {
  std::vector<Row> rows;
  QueryExecStats stats;
  double cpu_j = 0;
  double wall_j = 0;
  double seconds = 0;
  std::vector<CoreLedger> cores;
};

class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest() {
    // Several morsels' worth of rows (kMorselRows == 8192) so the
    // schedule actually fans out, plus a build-side-sized table.
    testing::MakeSimpleTable(&catalog_, "big", 40000, 7);
    testing::MakeSimpleTable(&catalog_, "small", 37, 5);
  }

  PlanNodePtr Scan(const std::string& name) {
    return MakeScan(catalog_, name).value();
  }
  ExprPtr K() { return Col(0, ValueType::kInt64, "k"); }
  ExprPtr V() { return Col(1, ValueType::kDouble, "v"); }
  ExprPtr S() { return Col(2, ValueType::kString, "s"); }

  AggSpec Agg(AggSpec::Kind kind, ExprPtr arg, const std::string& name) {
    AggSpec a;
    a.kind = kind;
    a.arg = std::move(arg);
    a.name = name;
    return a;
  }

  /// Runs `plan` on a fresh machine with `workers` morsel workers and
  /// returns everything the simulation reports about it.
  RunResult Run(const PlanNode& plan, int workers) {
    Machine machine(MachineConfig::PaperTestbed());
    EngineProfile profile = EngineProfile::MySqlMemory();
    BufferPool pool(&machine, 0);
    ExecContext ctx(&machine, &profile, &catalog_, &pool);
    ctx.set_exec_workers(workers);
    double t0 = machine.NowSeconds();
    auto rows = ExecutePlan(plan, &ctx, ExecMode::kBatch);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    ctx.Flush();
    RunResult r;
    if (rows.ok()) r.rows = std::move(rows).value();
    r.stats = ctx.stats();
    r.cpu_j = machine.ledger().cpu_j;
    r.wall_j = machine.ledger().wall_j;
    r.seconds = machine.NowSeconds() - t0;
    r.cores = machine.core_ledgers();
    return r;
  }

  /// Parity across worker counts: rows identical, counters bit-exact,
  /// cycles to fp-association, energy within the 0.1% bound.
  void ExpectParallelParity(const PlanNode& plan) {
    RunResult seq = Run(plan, 1);
    for (int workers : {2, 3, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      RunResult par = Run(plan, workers);
      ExpectRowsEqual(seq.rows, par.rows);
      ExpectCountersEqual(seq.stats, par.stats);
      ExpectNearRel(seq.cpu_j, par.cpu_j, kEnergyRelTol, "cpu_j");
      ExpectNearRel(seq.wall_j, par.wall_j, kEnergyRelTol, "wall_j");
      ExpectNearRel(seq.seconds, par.seconds, kEnergyRelTol, "seconds");
    }
  }

  Catalog catalog_;
};

TEST_F(ParallelExecTest, ScanOnly) { ExpectParallelParity(*Scan("big")); }

TEST_F(ParallelExecTest, FilterAtRoot) {
  ExpectParallelParity(
      *MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(11000))));
}

TEST_F(ParallelExecTest, FilterEmptyResult) {
  ExpectParallelParity(
      *MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(-1))));
}

TEST_F(ParallelExecTest, ProjectOverFilter) {
  ExpectParallelParity(*MakeProject(
      MakeFilter(Scan("big"), Cmp(CompareOp::kGe, K(), LitInt(100))),
      {Arith(ArithOp::kMul, K(), LitInt(3)),
       Arith(ArithOp::kAdd, V(), LitDbl(0.5)), S()},
      {"k3", "v5", "s"}));
}

TEST_F(ParallelExecTest, AggregateOverSpine) {
  ExpectParallelParity(*MakeAggregate(
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(33000))), {S()},
      {Agg(AggSpec::Kind::kSum, V(), "sum_v"),
       Agg(AggSpec::Kind::kMax, K(), "max_k")}));
}

TEST_F(ParallelExecTest, HashJoinProbeSpine) {
  // small (build) x big (probe): the probe side is the morsel spine, the
  // build is executed once by the coordinator and shared.
  ExpectParallelParity(*MakeHashJoin(Scan("small"), Scan("big"), {0}, {0}));
}

TEST_F(ParallelExecTest, HashJoinMultiMatchProbeSpine) {
  // Duplicate string keys: many matches per probe row, so worker-side
  // output batches fill mid-chain and morsel-end partial batches differ
  // from the single-threaded grouping — counters must not care.
  ExpectParallelParity(*MakeHashJoin(Scan("small"), Scan("big"), {2}, {2}));
}

TEST_F(ParallelExecTest, NestedJoinSpineTwoBuilds) {
  // join(small2, join(small, big)): one spine, two coordinator builds,
  // probed concurrently by every worker.
  PlanNodePtr inner = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  ExpectParallelParity(
      *MakeHashJoin(Scan("small"), std::move(inner), {0}, {0}));
}

TEST_F(ParallelExecTest, ParallelBuildSide) {
  // big (build) x small (probe): the *build* subtree is the heavy spine;
  // it parallelizes as a nested morsel stream feeding the coordinator's
  // sequential insert loop.
  ExpectParallelParity(*MakeHashJoin(
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(2500))),
      Scan("small"), {0}, {0}));
}

TEST_F(ParallelExecTest, SortOverJoinSpine) {
  ExpectParallelParity(*MakeSort(
      MakeHashJoin(Scan("small"), Scan("big"), {0}, {0}),
      {SortKey{Col(4, ValueType::kDouble, "v"), false}}));
}

TEST_F(ParallelExecTest, LimitOverStreamingSpineStaysSequential) {
  // A streaming child of Limit may stop early — never wrapped. Parity
  // must hold trivially (both sides run the sequential tree).
  ExpectParallelParity(*MakeLimit(
      MakeFilter(Scan("big"), Cmp(CompareOp::kGe, K(), LitInt(5))), 100));
}

TEST_F(ParallelExecTest, LimitOverAggregateWrapsBelow) {
  // Materialized child of Limit: the aggregate's input is a full-drain
  // slot and parallelizes even though the limit truncates the output.
  ExpectParallelParity(*MakeLimit(
      MakeAggregate(Scan("big"), {S()},
                    {Agg(AggSpec::Kind::kCount, nullptr, "n")}),
      3));
}

TEST_F(ParallelExecTest, NestedLoopInnerSpine) {
  // The NLJ inner side is materialized at Open (full-drain slot); its
  // filter-over-big spine parallelizes under the sequential NLJ.
  ExpectParallelParity(*MakeNestedLoopJoin(
      Scan("small"),
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(40))),
      Cmp(CompareOp::kEq, Col(0, ValueType::kInt64, "k"),
          Col(3, ValueType::kInt64, "k2"))));
}

TEST_F(ParallelExecTest, SameWorkerCountBitIdentical) {
  // Static morsel schedule + ordered replay: two runs at the same worker
  // count are bit-identical in every double the simulation reports.
  PlanNodePtr plan = MakeAggregate(
      MakeHashJoin(Scan("small"), Scan("big"), {0}, {0}), {Col(2, ValueType::kString, "s")},
      {Agg(AggSpec::Kind::kSum, Col(4, ValueType::kDouble, "v"), "sum_v")});
  RunResult a = Run(*plan, 3);
  RunResult b = Run(*plan, 3);
  ExpectRowsEqual(a.rows, b.rows);
  EXPECT_EQ(a.stats.cycles_charged, b.stats.cycles_charged);
  EXPECT_EQ(a.stats.mem_lines_charged, b.stats.mem_lines_charged);
  EXPECT_EQ(a.cpu_j, b.cpu_j);
  EXPECT_EQ(a.wall_j, b.wall_j);
  EXPECT_EQ(a.seconds, b.seconds);
}

TEST_F(ParallelExecTest, CoreLedgersSeeWorkerWork) {
  PlanNodePtr plan =
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(11000)));
  RunResult par = Run(*plan, 2);
  // PaperTestbed models 2 cores; the static schedule gives both workers
  // morsels, so both core ledgers accrue cycles. The shared parity
  // ledger got the same work via replay (checked by the parity tests).
  ASSERT_EQ(par.cores.size(), 2u);
  EXPECT_GT(par.cores[0].cycles, 0.0);
  EXPECT_GT(par.cores[1].cycles, 0.0);
  EXPECT_GT(par.cores[0].busy_s, 0.0);
  // Workers recorded; the coordinator replayed: the concurrency view and
  // the parity account agree on total spine cycles (the filter spine is
  // the whole plan here, minus the coordinator-side output charges).
  EXPECT_LE(par.cores[0].cycles + par.cores[1].cycles,
            par.stats.cycles_charged * (1.0 + 1e-9));
  // Sequential runs never touch the core ledgers.
  RunResult seq = Run(*plan, 1);
  EXPECT_EQ(seq.cores[0].cycles, 0.0);
  EXPECT_EQ(seq.cores[1].cycles, 0.0);
}

// --- Parallel pipeline breakers ---

TEST_F(ParallelExecTest, ParallelBuildDuplicateChainOrder) {
  // big as the BUILD side on a duplicate string key: the partitioned
  // parallel build must stitch per-batch fragments so every duplicate
  // chain comes out insertion-order-equivalent to the sequential build —
  // probe matches emit in build-row order, and the probe-side chain
  // walks charge identical compare counts.
  ExpectParallelParity(*MakeHashJoin(Scan("big"), Scan("small"), {2}, {2}));
}

TEST_F(ParallelExecTest, ParallelBuildUnderFilterSpine) {
  // Filtered build spine: per-batch fragments arrive with gaps (selection
  // vectors), and the trailing grace-hash spill charge must equal the
  // sequential build's.
  ExpectParallelParity(*MakeHashJoin(
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(2500))),
      Scan("small"), {0}, {0}));
}

TEST_F(ParallelExecTest, ParallelAggSumCountMinMax) {
  // Every accumulator kind through the worker-partial / coordinator-merge
  // split: SUM/AVG ride the shipped-double path, MIN/MAX the shipped
  // operand path, COUNT(*) ships nothing.
  ExpectParallelParity(*MakeAggregate(
      Scan("big"), {S()},
      {Agg(AggSpec::Kind::kSum, V(), "sum_v"),
       Agg(AggSpec::Kind::kAvg, V(), "avg_v"),
       Agg(AggSpec::Kind::kCount, nullptr, "n"),
       Agg(AggSpec::Kind::kMin, K(), "min_k"),
       Agg(AggSpec::Kind::kMax, S(), "max_s")}));
}

TEST_F(ParallelExecTest, ParallelGlobalAggregate) {
  // No group keys: one global group, every worker ships ordinal 0, and
  // the vacuous key-compare walk must still count like sequential.
  ExpectParallelParity(*MakeAggregate(
      Scan("big"), {},
      {Agg(AggSpec::Kind::kSum, V(), "sum_v"),
       Agg(AggSpec::Kind::kCount, nullptr, "n")}));
}

TEST_F(ParallelExecTest, ParallelAggEmptyInput) {
  // Empty partitions everywhere: grouped agg yields zero rows, global
  // agg a synthetic zero-count row — identically to sequential.
  ExpectParallelParity(*MakeAggregate(
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(-1))), {S()},
      {Agg(AggSpec::Kind::kSum, V(), "sum_v")}));
  ExpectParallelParity(*MakeAggregate(
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(-1))), {},
      {Agg(AggSpec::Kind::kCount, nullptr, "n")}));
}

TEST_F(ParallelExecTest, ParallelSortAtRoot) {
  // Sort directly over the spine: per-worker index sorts merged by the
  // coordinator, with the canonical (rank-replay) compare count. A
  // duplicate-heavy string key plus descending double exercises the
  // cross-run tiebreak.
  ExpectParallelParity(
      *MakeSort(Scan("big"), {SortKey{S(), true}, SortKey{V(), false}}));
}

TEST_F(ParallelExecTest, ParallelSortEmptyInput) {
  ExpectParallelParity(*MakeSort(
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(-1))),
      {SortKey{K(), true}}));
}

TEST_F(ParallelExecTest, ParallelSortOverParallelBuildJoin) {
  // All three breakers' machinery in one plan: parallel build (big as
  // build side), morsel probe spine, sort root over the join.
  ExpectParallelParity(*MakeSort(
      MakeHashJoin(MakeFilter(Scan("big"),
                              Cmp(CompareOp::kLt, K(), LitInt(20000))),
                   Scan("big"), {0}, {0}),
      {SortKey{Col(4, ValueType::kDouble, "v"), false}}));
}

TEST_F(ParallelExecTest, BreakerMergeDeterminism) {
  // Same worker count, same seed => bit-identical doubles, with breaker
  // phases (parallel build + partial agg + sort) in the plan.
  PlanNodePtr plan = MakeSort(
      MakeAggregate(MakeHashJoin(Scan("big"), Scan("small"), {2}, {2}), {S()},
                    {Agg(AggSpec::Kind::kSum, V(), "sum_v")}),
      {SortKey{Col(1, ValueType::kDouble, "sum_v"), false}});
  RunResult a = Run(*plan, 8);
  RunResult b = Run(*plan, 8);
  ExpectRowsEqual(a.rows, b.rows);
  EXPECT_EQ(a.stats.cycles_charged, b.stats.cycles_charged);
  EXPECT_EQ(a.stats.mem_lines_charged, b.stats.mem_lines_charged);
  EXPECT_EQ(a.cpu_j, b.cpu_j);
  EXPECT_EQ(a.wall_j, b.wall_j);
  EXPECT_EQ(a.seconds, b.seconds);
}

TEST_F(ParallelExecTest, BreakerWorkLandsOnWorkerCores) {
  // The fix this PR pins: breaker accumulate work (partial agg here) is
  // attributed to the worker's core (w % num_cores), not bulk-charged to
  // core 0 by the coordinator. With 2 workers on the 2-core testbed both
  // ledgers must accrue, and the pool's phase mark must label agg work.
  PlanNodePtr plan = MakeAggregate(
      Scan("big"), {S()}, {Agg(AggSpec::Kind::kSum, V(), "sum_v")});
  Machine machine(MachineConfig::PaperTestbed());
  EngineProfile profile = EngineProfile::MySqlMemory();
  BufferPool pool(&machine, 0);
  ExecContext ctx(&machine, &profile, &catalog_, &pool);
  ctx.set_exec_workers(2);
  auto rows = ExecutePlan(*plan, &ctx, ExecMode::kBatch);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  const std::vector<CoreLedger>& cores = machine.core_ledgers();
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_GT(cores[0].cycles, 0.0);
  EXPECT_GT(cores[1].cycles, 0.0);
  bool saw_agg_phase = false;
  for (const CorePhase& p : machine.core_phases()) {
    if (p.label == "agg") saw_agg_phase = true;
  }
  EXPECT_TRUE(saw_agg_phase);
}

TEST_F(ParallelExecTest, EligibilityRules) {
  PlanNodePtr scan = Scan("big");
  EXPECT_TRUE(MorselEligibleSpine(*scan));
  PlanNodePtr filter =
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(10)));
  EXPECT_TRUE(MorselEligibleSpine(*filter));
  PlanNodePtr join = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  EXPECT_TRUE(MorselEligibleSpine(*join));
  PlanNodePtr agg = MakeAggregate(
      Scan("big"), {S()}, {Agg(AggSpec::Kind::kCount, nullptr, "n")});
  EXPECT_FALSE(MorselEligibleSpine(*agg));
  // Build-side spines don't make the *join* a spine: eligibility follows
  // the probe child.
  PlanNodePtr sort_probe = MakeHashJoin(
      Scan("small"), MakeSort(Scan("big"), {SortKey{K(), true}}), {0}, {0});
  EXPECT_FALSE(MorselEligibleSpine(*sort_probe));
}

// --- Database-level parity over TPC-H benchmark queries ---

TEST(ParallelTpchTest, BenchmarkQueryParityAcrossWorkerCounts) {
  auto seq_db = testing::MakeTestDb();
  ASSERT_NE(seq_db, nullptr);
  auto seq_queries = tpch::BuildAllBenchmarkQueries(*seq_db->catalog());
  ASSERT_TRUE(seq_queries.ok());

  for (int workers : {2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    auto par_db = testing::MakeTestDb();
    ASSERT_NE(par_db, nullptr);
    par_db->set_exec_workers(workers);
    auto par_queries = tpch::BuildAllBenchmarkQueries(*par_db->catalog());
    ASSERT_TRUE(par_queries.ok());
    ASSERT_EQ(seq_queries.value().size(), par_queries.value().size());

    for (size_t i = 0; i < seq_queries.value().size(); ++i) {
      const auto& name = seq_queries.value()[i].name;
      SCOPED_TRACE(name);
      auto seq = seq_db->ExecutePlanQuery(*seq_queries.value()[i].plan);
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      auto par = par_db->ExecutePlanQuery(*par_queries.value()[i].plan);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      ExpectRowsEqual(seq.value().rows(), par.value().rows());
      ExpectCountersEqual(seq.value().exec_stats, par.value().exec_stats);
      ExpectNearRel(seq.value().cpu_joules, par.value().cpu_joules,
                    kEnergyRelTol, "cpu_joules");
      ExpectNearRel(seq.value().wall_joules, par.value().wall_joules,
                    kEnergyRelTol, "wall_joules");
      ExpectNearRel(seq.value().seconds, par.value().seconds, kEnergyRelTol,
                    "seconds");
    }
  }
}

TEST(ParallelTpchTest, GovernedQueryClampsToSequential) {
  // A governor forces workers to 1; a governed parallel-configured run
  // must be bit-identical to a governed sequential run.
  auto a = testing::MakeTestDb();
  auto b = testing::MakeTestDb();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  QueryLimits limits;
  limits.deadline_seconds = 1e9;  // attached but never trips
  a->set_query_limits(limits);
  b->set_query_limits(limits);
  b->set_exec_workers(8);
  auto qa = tpch::BuildQ1Plan(*a->catalog(), "1998-09-02");
  auto qb = tpch::BuildQ1Plan(*b->catalog(), "1998-09-02");
  ASSERT_TRUE(qa.ok() && qb.ok());
  auto ra = a->ExecutePlanQuery(*qa.value());
  auto rb = b->ExecutePlanQuery(*qb.value());
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value().exec_stats.cycles_charged,
            rb.value().exec_stats.cycles_charged);
  EXPECT_EQ(ra.value().cpu_joules, rb.value().cpu_joules);
  ExpectRowsEqual(ra.value().rows(), rb.value().rows());
}

TEST(ParallelTpchTest, RowModeClampsToSequential) {
  DatabaseOptions opt;
  opt.profile = EngineProfile::MySqlMemory();
  opt.exec_mode = ExecMode::kRow;
  opt.exec_workers = 8;
  Database db(opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = testing::kTestSf;
  ASSERT_TRUE(db.LoadTpch(gen).ok());
  auto q = tpch::BuildQ6Plan(*db.catalog(), {});
  ASSERT_TRUE(q.ok());
  auto r = db.ExecutePlanQuery(*q.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().num_rows(), 0u);
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/core/adaptive.h"
#include "ecodb/core/experiment.h"
#include "test_util.h"

namespace ecodb {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
    ASSERT_NE(db_, nullptr);
    workload_ = tpch::MakeSelectionWorkload(*db_->catalog(), 10, 5).value();
    ExperimentRunner runner(db_.get());
    stock_ =
        runner.RunWorkload(workload_, SystemSettings::Stock(), {}).value();
    eco_ = runner
               .RunWorkload(workload_, {0.05, VoltageDowngrade::kMedium}, {})
               .value();
  }
  std::unique_ptr<Database> db_;
  tpch::Workload workload_;
  RunMeasurement stock_, eco_;
};

TEST_F(AdaptiveTest, StaysEcoWithGenerousDeadline) {
  AdaptiveOptions opt;
  opt.deadline_s = eco_.seconds * 2.0;
  AdaptiveController ctl(db_.get(), opt);
  auto rep = ctl.Run(workload_);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep.value().met_deadline);
  EXPECT_EQ(rep.value().switches, 0);
  // Energy close to the pure-eco run.
  EXPECT_NEAR(rep.value().cpu_j / eco_.cpu_j, 1.0, 0.05);
}

TEST_F(AdaptiveTest, EscalatesUnderTightDeadline) {
  // Deadline between eco and stock times: the controller must switch to
  // the fast point to make it.
  AdaptiveOptions opt;
  opt.deadline_s = 0.5 * (stock_.seconds + eco_.seconds);
  AdaptiveController ctl(db_.get(), opt);
  auto rep = ctl.Run(workload_);
  ASSERT_TRUE(rep.ok());
  EXPECT_GE(rep.value().switches, 1);
  EXPECT_TRUE(rep.value().met_deadline)
      << rep.value().total_s << " vs deadline " << opt.deadline_s;
  // Uses less energy than running stock throughout (some eco queries).
  EXPECT_LT(rep.value().cpu_j, stock_.cpu_j);
}

TEST_F(AdaptiveTest, ImpossibleDeadlineReported) {
  AdaptiveOptions opt;
  opt.deadline_s = stock_.seconds * 0.5;
  AdaptiveController ctl(db_.get(), opt);
  auto rep = ctl.Run(workload_);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep.value().met_deadline);
}

TEST_F(AdaptiveTest, RestoresSettingsAndRecordsPerQueryState) {
  AdaptiveOptions opt;
  opt.deadline_s = eco_.seconds * 1.5;
  AdaptiveController ctl(db_.get(), opt);
  ASSERT_TRUE(db_->ApplySettings(SystemSettings::Stock()).ok());
  auto rep = ctl.Run(workload_);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(db_->settings() == SystemSettings::Stock());
  EXPECT_EQ(rep.value().per_query_settings.size(), workload_.queries.size());
  EXPECT_EQ(rep.value().query_completion_s.size(), workload_.queries.size());
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/core/pvc.h"
#include "test_util.h"

namespace ecodb {
namespace {

class PvcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.005);
    ASSERT_NE(db_, nullptr);
    workload_ = tpch::MakeQ5Workload(*db_->catalog()).value();
    // Keep the sweep fast: two Q5 instances are enough for ratios.
    workload_.queries.resize(2);
  }
  std::unique_ptr<Database> db_;
  tpch::Workload workload_;
};

TEST_F(PvcTest, PaperGridHasSixPoints) {
  auto grid = PvcController::PaperGrid();
  EXPECT_EQ(grid.size(), 6u);
  EXPECT_EQ(PvcController::MediumGrid().size(), 3u);
}

TEST_F(PvcTest, CurveRatiosAreRelativeToStock) {
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCurve(workload_, PvcController::MediumGrid(), {});
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  EXPECT_DOUBLE_EQ(curve.value().stock.ratio.time_ratio, 1.0);
  ASSERT_EQ(curve.value().points.size(), 3u);
  for (const OperatingPoint& p : curve.value().points) {
    EXPECT_GT(p.ratio.time_ratio, 1.0);   // underclock slows queries
    EXPECT_LT(p.ratio.energy_ratio, 1.0); // downgrade saves energy
  }
}

TEST_F(PvcTest, FivePercentMediumSavesEnergyWithSmallSlowdown) {
  // The paper's MySQL headline (Section 1): ~20 % energy savings for ~6 %
  // response time penalty at the 5 % underclock + medium downgrade.
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCurve(
      workload_, {{0.05, VoltageDowngrade::kMedium}}, {});
  ASSERT_TRUE(curve.ok());
  const OperatingPoint& p = curve.value().points[0];
  EXPECT_NEAR(p.ratio.energy_ratio, 0.80, 0.05);
  EXPECT_NEAR(p.ratio.time_ratio, 1.05, 0.03);
}

TEST_F(PvcTest, EdpWorsensBeyondFivePercent) {
  // "underclocking beyond 5% actually worsens the EDP!" (Section 3.3)
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCurve(workload_, PvcController::MediumGrid(), {});
  ASSERT_TRUE(curve.ok());
  const auto& pts = curve.value().points;
  EXPECT_LT(pts[0].ratio.edp_ratio, pts[1].ratio.edp_ratio);
  EXPECT_LT(pts[1].ratio.edp_ratio, pts[2].ratio.edp_ratio);
}

TEST_F(PvcTest, ObservedEdpTracksTheoreticalV2OverF) {
  // Figure 4: for the CPU-bound MySQL workload, observed EDP ratios track
  // V^2/F. We require agreement within 6 % at every grid point.
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCurve(workload_, PvcController::PaperGrid(), {});
  ASSERT_TRUE(curve.ok());
  for (const OperatingPoint& p : curve.value().points) {
    EXPECT_NEAR(p.ratio.edp_ratio / p.theoretical_edp_ratio, 1.0, 0.06)
        << p.settings.ToString();
  }
}

TEST_F(PvcTest, MediumBeatsSmallOnEdp) {
  // Figure 2/3: the medium downgrade gives lower EDP than small at the
  // same underclock.
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCurve(workload_, PvcController::PaperGrid(), {});
  ASSERT_TRUE(curve.ok());
  const auto& pts = curve.value().points;  // small x3 then medium x3
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(pts[static_cast<size_t>(i + 3)].ratio.edp_ratio,
              pts[static_cast<size_t>(i)].ratio.edp_ratio);
  }
}

TEST_F(PvcTest, PredictedCurveMatchesMeasuredDirections) {
  PvcController pvc(db_.get());
  auto predicted = pvc.PredictCurve(workload_, PvcController::MediumGrid());
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  for (const OperatingPoint& p : predicted.value().points) {
    EXPECT_GT(p.ratio.time_ratio, 1.0);
    EXPECT_LT(p.ratio.energy_ratio, 1.0);
  }
  // Predicted EDP ordering matches measured ordering.
  auto measured = pvc.MeasureCurve(workload_, PvcController::MediumGrid(), {});
  ASSERT_TRUE(measured.ok());
  for (size_t i = 1; i < predicted.value().points.size(); ++i) {
    bool pred_less = predicted.value().points[i - 1].ratio.edp_ratio <
                     predicted.value().points[i].ratio.edp_ratio;
    bool meas_less = measured.value().points[i - 1].ratio.edp_ratio <
                     measured.value().points[i].ratio.edp_ratio;
    EXPECT_EQ(pred_less, meas_less);
  }
}

TEST_F(PvcTest, ResultsIdenticalAcrossOperatingPoints) {
  // PVC must not change query answers, only their cost.
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCurve(workload_, PvcController::PaperGrid(), {});
  ASSERT_TRUE(curve.ok());
  uint64_t rows = curve.value().stock.measurement.rows_returned;
  for (const OperatingPoint& p : curve.value().points) {
    EXPECT_EQ(p.measurement.rows_returned, rows);
  }
}

TEST_F(PvcTest, PerCoreGridPairsSymmetricAndEcoCoreAssignments) {
  auto grid = PvcController::PerCoreGrid(2);
  ASSERT_EQ(grid.size(), 6u);  // 3 medium points x {symmetric, asymmetric}
  for (size_t i = 0; i < grid.size(); ++i) {
    ASSERT_EQ(grid[i].size(), 2u);
    if (i % 2 == 0) {
      EXPECT_TRUE(grid[i][0] == grid[i][1]);  // slow-and-wide
    } else {
      EXPECT_TRUE(grid[i][0] == SystemSettings::Stock());  // one eco core
      EXPECT_FALSE(grid[i][1] == SystemSettings::Stock());
    }
  }
}

TEST_F(PvcTest, CorePhaseCurveTradesMakespanForCoreEnergy) {
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCorePhaseCurve(
      workload_, PvcController::PerCoreGrid(db_->machine()->num_cores()));
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  const CoreTradeoffCurve& c = curve.value();
  ASSERT_EQ(c.points.size(), 6u);
  EXPECT_GT(c.stock.summary.makespan_s, 0.0);
  EXPECT_GT(c.stock.summary.core_cpu_j, 0.0);
  for (size_t i = 0; i < c.points.size(); ++i) {
    const CoreOperatingPoint& p = c.points[i];
    // A medium voltage downgrade prices the same cycles at lower V^2, so
    // core energy drops whenever any core is downgraded.
    EXPECT_LT(p.summary.core_cpu_j, c.stock.summary.core_cpu_j);
    if (i % 2 == 0) {
      // Slow-and-wide stretches the whole phase.
      EXPECT_GT(p.makespan_ratio, 1.0);
    } else {
      // Slowing only the lighter core cannot stretch the phase more than
      // slowing every core at the same point does.
      EXPECT_LE(p.makespan_ratio, c.points[i - 1].makespan_ratio + 1e-12);
    }
    EXPECT_GT(p.dc_energy_ratio, 0.0);
    EXPECT_GT(p.edp_ratio, 0.0);
  }
  // The knob is a what-if sweep: it must leave the database untouched —
  // worker count restored, core ledgers drained, settings still stock.
  EXPECT_EQ(db_->exec_workers(), 1);
  EXPECT_EQ(db_->machine()->core_ledgers()[0].cycles, 0.0);
  EXPECT_TRUE(db_->machine()->settings() == SystemSettings::Stock());
}

TEST_F(PvcTest, CorePhaseCurveIsDeterministic) {
  // Two captures of the same workload accrue identical raw per-core work
  // (the morsel engine's parity contract), so the priced summaries match
  // bit for bit.
  PvcController pvc(db_.get());
  auto grid = PvcController::PerCoreGrid(db_->machine()->num_cores());
  auto a = pvc.MeasureCorePhaseCurve(workload_, grid);
  auto b = pvc.MeasureCorePhaseCurve(workload_, grid);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().stock.summary.makespan_s,
            b.value().stock.summary.makespan_s);
  for (size_t i = 0; i < a.value().points.size(); ++i) {
    EXPECT_EQ(a.value().points[i].summary.wall_j,
              b.value().points[i].summary.wall_j);
    EXPECT_EQ(a.value().points[i].edp_ratio, b.value().points[i].edp_ratio);
  }
}

TEST_F(PvcTest, CorePhaseCurveRejectsBadAssignments) {
  PvcController pvc(db_.get());
  // Wrong arity.
  auto short_arity = pvc.MeasureCorePhaseCurve(
      workload_, {std::vector<SystemSettings>{SystemSettings::Stock()}});
  EXPECT_TRUE(short_arity.status().IsInvalidArgument());
  // Unstable per-core point.
  std::vector<SystemSettings> unstable(
      static_cast<size_t>(db_->machine()->num_cores()),
      SystemSettings{0.05, VoltageDowngrade::kAggressive});
  auto bad = pvc.MeasureCorePhaseCurve(workload_, {unstable});
  EXPECT_TRUE(bad.status().IsUnstableSettings());
}

TEST_F(PvcTest, UnstableGridPointFailsTheSweep) {
  PvcController pvc(db_.get());
  auto curve = pvc.MeasureCurve(
      workload_, {{0.05, VoltageDowngrade::kAggressive}}, {});
  EXPECT_FALSE(curve.ok());
}

}  // namespace
}  // namespace ecodb

#include "ecodb/util/bounded_queue.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ecodb {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(4);
  std::atomic<bool> cancel{false};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.Push(i, cancel));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.Pop(), i);
  }
}

TEST(BoundedQueueTest, MoveOnlyItems) {
  BoundedQueue<std::unique_ptr<std::string>> q(2);
  std::atomic<bool> cancel{false};
  EXPECT_TRUE(q.Push(std::make_unique<std::string>("a"), cancel));
  EXPECT_TRUE(q.Push(std::make_unique<std::string>("b"), cancel));
  EXPECT_EQ(*q.Pop(), "a");
  EXPECT_EQ(*q.Pop(), "b");
}

TEST(BoundedQueueTest, PushBlocksOnFullUntilPop) {
  BoundedQueue<int> q(1);
  std::atomic<bool> cancel{false};
  ASSERT_TRUE(q.Push(0, cancel));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(1, cancel));
    second_pushed.store(true);
  });
  // The producer is blocked until the consumer makes room. (We can't
  // assert "still blocked" without a race; we assert the handoff
  // completes and order is preserved.)
  EXPECT_EQ(q.Pop(), 0);
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedQueueTest, CancelUnblocksProducer) {
  BoundedQueue<int> q(1);
  std::atomic<bool> cancel{false};
  ASSERT_TRUE(q.Push(0, cancel));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(q.Push(1, cancel)); });
  cancel.store(true);
  q.WakeProducer();
  producer.join();
  EXPECT_FALSE(push_result.load());  // cancelled push drops the item
  EXPECT_EQ(q.Pop(), 0);             // the earlier item is still there
}

TEST(BoundedQueueTest, ProducerConsumerStress) {
  constexpr int kItems = 10000;
  BoundedQueue<int> q(8);
  std::atomic<bool> cancel{false};
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.Push(i, cancel));
    }
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(q.Pop(), i);
  }
  producer.join();
}

}  // namespace
}  // namespace ecodb

// Property test: FlatHashIndex against a std::unordered_multimap oracle.
//
// The flat open-addressing index is the backbone of both hash operators
// (join build sides, aggregation groups), and the parity contract leans
// on one behavioral detail hard: duplicate-key chains iterate in exact
// insertion order, across any number of slot-array resizes. This test
// drives random insert / probe / resize sequences — with hash
// distributions skewed to force duplicate chains, slot collisions
// (distinct hashes landing on the same slot modulo capacity) and
// mid-sequence growth — and checks every observable against the oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ecodb/exec/hash_table.h"

namespace ecodb {
namespace {

/// Insertion-order oracle: hash -> payload indexes in insertion order.
class Oracle {
 public:
  void Insert(size_t hash, uint32_t idx) {
    chains_[hash].push_back(idx);
    ++size_;
  }
  const std::vector<uint32_t>* Find(size_t hash) const {
    auto it = chains_.find(hash);
    return it == chains_.end() ? nullptr : &it->second;
  }
  size_t distinct_hashes() const { return chains_.size(); }
  size_t size() const { return size_; }
  const std::unordered_map<size_t, std::vector<uint32_t>>& chains() const {
    return chains_;
  }

 private:
  std::unordered_map<size_t, std::vector<uint32_t>> chains_;
  size_t size_ = 0;
};

/// Walks the index chain for `hash` and compares it to the oracle chain.
void ExpectChainMatches(const FlatHashIndex& index, const Oracle& oracle,
                        size_t hash) {
  const std::vector<uint32_t>* expected = oracle.Find(hash);
  uint32_t idx = index.Find(hash);
  if (expected == nullptr) {
    EXPECT_EQ(idx, FlatHashIndex::kInvalid) << "hash " << hash;
    return;
  }
  for (size_t i = 0; i < expected->size(); ++i) {
    ASSERT_NE(idx, FlatHashIndex::kInvalid)
        << "chain for hash " << hash << " ended early at position " << i;
    EXPECT_EQ(idx, (*expected)[i])
        << "chain for hash " << hash << " out of insertion order at " << i;
    idx = index.Next(idx);
  }
  EXPECT_EQ(idx, FlatHashIndex::kInvalid)
      << "chain for hash " << hash << " longer than the oracle's";
}

/// One randomized scenario: `n` inserts with hashes drawn by `next_hash`,
/// interleaved probes, then a full sweep over every present hash plus
/// absent ones.
template <typename NextHash>
void RunScenario(uint64_t seed, size_t n, size_t reserve,
                 NextHash&& next_hash) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " n " + std::to_string(n) +
               " reserve " + std::to_string(reserve));
  std::mt19937_64 rng(seed);
  FlatHashIndex index;
  index.Reset(reserve);
  Oracle oracle;
  std::vector<size_t> inserted_hashes;
  for (uint32_t i = 0; i < n; ++i) {
    size_t h = next_hash(rng);
    index.Insert(h, i);
    oracle.Insert(h, i);
    inserted_hashes.push_back(h);
    // Interleaved probe of a random previously-inserted hash: chains must
    // be correct at every intermediate size, including mid-resize.
    if (i % 7 == 3) {
      ExpectChainMatches(index, oracle,
                         inserted_hashes[rng() % inserted_hashes.size()]);
    }
    ASSERT_EQ(index.size(), oracle.size());
    ASSERT_EQ(index.distinct_hashes(), oracle.distinct_hashes());
  }
  // Capacity invariants: power of two, load below the grow trigger.
  const size_t cap = index.capacity();
  EXPECT_NE(cap, 0u);
  EXPECT_EQ(cap & (cap - 1), 0u) << "capacity not a power of two: " << cap;
  EXPECT_LE(index.distinct_hashes() * 10, cap * 7 + 10)
      << "load factor above the grow threshold";
  // Full sweep: every chain, in insertion order.
  for (const auto& [hash, chain] : oracle.chains()) {
    (void)chain;
    ExpectChainMatches(index, oracle, hash);
  }
  // Absent hashes must come back empty (and not loop forever).
  std::unordered_set<size_t> present(inserted_hashes.begin(),
                                     inserted_hashes.end());
  for (int i = 0; i < 64; ++i) {
    size_t h = rng();
    if (present.count(h)) continue;
    EXPECT_EQ(index.Find(h), FlatHashIndex::kInvalid);
  }
}

TEST(FlatHashIndexPropertyTest, UniformHashes) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunScenario(seed, 3000, 0, [](std::mt19937_64& rng) { return rng(); });
  }
}

TEST(FlatHashIndexPropertyTest, HeavyDuplicateChains) {
  // ~40 distinct hashes over 2000 inserts: long chains spanning resizes.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunScenario(seed, 2000, 0, [](std::mt19937_64& rng) {
      return static_cast<size_t>(rng() % 40) * 0x9E3779B97F4A7C15ULL;
    });
  }
}

TEST(FlatHashIndexPropertyTest, SlotCollidingHashes) {
  // Distinct hashes that are congruent modulo every capacity the table
  // will reach (same low bits, different high bits): pure linear-probe
  // collisions rather than duplicate chains.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunScenario(seed, 1500, 0, [](std::mt19937_64& rng) {
      return (static_cast<size_t>(rng() % 500) << 20) | 0x5u;
    });
  }
}

TEST(FlatHashIndexPropertyTest, MixedDuplicatesAndCollisions) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunScenario(seed, 2500, 0, [](std::mt19937_64& rng) -> size_t {
      switch (rng() % 3) {
        case 0:  // duplicate-prone
          return static_cast<size_t>((rng() % 25) * 1315423911ULL);
        case 1:  // slot-colliding
          return (static_cast<size_t>(rng() % 200) << 24) | 0x13u;
        default:  // uniform
          return static_cast<size_t>(rng());
      }
    });
  }
}

TEST(FlatHashIndexPropertyTest, PresizedReserveNeverRehashes) {
  // Reset(expected_keys) must pre-size so that `expected_keys` distinct
  // hashes never trigger a grow: capacity is stable across the build.
  std::mt19937_64 rng(77);
  FlatHashIndex index;
  index.Reset(1000);
  const size_t cap0 = index.capacity();
  Oracle oracle;
  for (uint32_t i = 0; i < 1000; ++i) {
    size_t h = rng();
    index.Insert(h, i);
    oracle.Insert(h, i);
  }
  EXPECT_EQ(index.capacity(), cap0) << "pre-sized table rehashed anyway";
  for (const auto& [hash, chain] : oracle.chains()) {
    (void)chain;
    ExpectChainMatches(index, oracle, hash);
  }
}

TEST(FlatHashIndexPropertyTest, ResetClearsEverything) {
  FlatHashIndex index;
  for (uint32_t i = 0; i < 100; ++i) index.Insert(i * 31, i);
  EXPECT_EQ(index.size(), 100u);
  index.Reset();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.distinct_hashes(), 0u);
  EXPECT_EQ(index.Find(31), FlatHashIndex::kInvalid);
  // Reuse after Reset behaves like a fresh table.
  Oracle oracle;
  std::mt19937_64 rng(5);
  for (uint32_t i = 0; i < 500; ++i) {
    size_t h = rng() % 97;
    index.Insert(h, i);
    oracle.Insert(h, i);
  }
  for (const auto& [hash, chain] : oracle.chains()) {
    (void)chain;
    ExpectChainMatches(index, oracle, hash);
  }
}

}  // namespace
}  // namespace ecodb

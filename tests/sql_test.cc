#include <gtest/gtest.h>

#include "ecodb/sql/binder.h"
#include "ecodb/sql/lexer.h"
#include "ecodb/sql/parser.h"
#include "ecodb/sql/planner.h"
#include "ecodb/tpch/queries.h"
#include "test_util.h"

namespace ecodb {
namespace {

using sql::Lex;
using sql::ParseSelect;
using sql::PlanQuery;

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT a, 1.5 FROM t WHERE s = 'it''s' AND x >= 2");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  EXPECT_TRUE(ts[0].IsKeyword("SELECT"));
  EXPECT_EQ(ts[1].text, "a");
  EXPECT_TRUE(ts[2].IsSymbol(","));
  EXPECT_EQ(ts[3].kind, sql::TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(ts[3].dbl_value, 1.5);
  // ... s = 'it's' ...
  bool found_string = false;
  for (const auto& t : ts) {
    if (t.kind == sql::TokenKind::kString) {
      EXPECT_EQ(t.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(LexerTest, ErrorsOnBadInput) {
  EXPECT_TRUE(Lex("SELECT 'unterminated").status().IsParseError());
  EXPECT_TRUE(Lex("SELECT @").status().IsParseError());
}

TEST(ParserTest, SimpleSelectStructure) {
  auto stmt = ParseSelect(
      "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity = 24");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value().items.size(), 2u);
  EXPECT_EQ(stmt.value().from_tables.size(), 1u);
  ASSERT_NE(stmt.value().where, nullptr);
  EXPECT_EQ(stmt.value().where->kind, sql::AstKind::kCompare);
}

TEST(ParserTest, FullClauseSet) {
  auto stmt = ParseSelect(
      "SELECT a, SUM(b) AS total FROM t1, t2 WHERE a = c AND b > 1 "
      "GROUP BY a ORDER BY total DESC, a ASC LIMIT 10;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& s = stmt.value();
  EXPECT_EQ(s.items[1].alias, "total");
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
  EXPECT_EQ(s.limit, 10);
}

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  auto stmt = ParseSelect(
      "SELECT a FROM t1 JOIN t2 ON x = y WHERE b = 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value().from_tables.size(), 2u);
  // WHERE and ON combined under AND.
  ASSERT_NE(stmt.value().where, nullptr);
  EXPECT_EQ(stmt.value().where->kind, sql::AstKind::kLogical);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  const auto& e = *stmt.value().items[0].expr;
  ASSERT_EQ(e.kind, sql::AstKind::kArith);
  EXPECT_EQ(e.arith_op, ArithOp::kAdd);
  EXPECT_EQ(e.args[1]->arith_op, ArithOp::kMul);
}

TEST(ParserTest, BetweenInNotAndDates) {
  auto stmt = ParseSelect(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) "
      "AND NOT c = 4 AND d >= DATE '1994-01-01'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

class ParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParseErrorTest, RejectsMalformedSql) {
  auto stmt = ParseSelect(GetParam());
  EXPECT_FALSE(stmt.ok()) << "accepted: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadSql, ParseErrorTest,
    ::testing::Values("SELECT", "SELECT a", "SELECT a FROM",
                      "SELECT a FROM t WHERE", "SELECT FROM t",
                      "SELECT a FROM t GROUP a", "SELECT a FROM t LIMIT x",
                      "SELECT a FROM t ORDER a", "FROM t SELECT a",
                      "SELECT a FROM t WHERE a IN ()",
                      "SELECT a FROM t trailing garbage ("));

class SqlEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTestDb();
    ASSERT_NE(db_, nullptr);
  }

  // Runs SQL and a hand-built plan; compares result multisets.
  void ExpectSameResults(const std::string& sql, const PlanNode& hand) {
    auto sql_result = db_->ExecuteSql(sql);
    ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
    auto hand_result = db_->ExecutePlanQuery(hand);
    ASSERT_TRUE(hand_result.ok()) << hand_result.status().ToString();
    auto key = [](const Row& r) {
      std::string s;
      for (const Value& v : r) s += v.ToString() + "|";
      return s;
    };
    std::vector<std::string> a, b;
    for (const Row& r : sql_result.value().rows()) a.push_back(key(r));
    for (const Row& r : hand_result.value().rows()) b.push_back(key(r));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "SQL: " << sql;
    EXPECT_FALSE(a.empty()) << "vacuous comparison for " << sql;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlEquivalenceTest, Q5MatchesHandPlan) {
  tpch::Q5Params p;
  auto hand = tpch::BuildQ5Plan(*db_->catalog(), p);
  ASSERT_TRUE(hand.ok());
  ExpectSameResults(tpch::Q5Sql(p), *hand.value());
}

TEST_F(SqlEquivalenceTest, Q1MatchesHandPlan) {
  auto hand = tpch::BuildQ1Plan(*db_->catalog(), "1998-09-02");
  ASSERT_TRUE(hand.ok());
  ExpectSameResults(tpch::Q1Sql("1998-09-02"), *hand.value());
}

TEST_F(SqlEquivalenceTest, Q6MatchesHandPlan) {
  tpch::Q6Params p;
  auto hand = tpch::BuildQ6Plan(*db_->catalog(), p);
  ASSERT_TRUE(hand.ok());
  ExpectSameResults(tpch::Q6Sql(p), *hand.value());
}

TEST_F(SqlEquivalenceTest, SelectionMatchesHandPlan) {
  auto hand = tpch::BuildSelectionQuery(*db_->catalog(), 24);
  ASSERT_TRUE(hand.ok());
  ExpectSameResults(tpch::SelectionSql(24), *hand.value());
}

TEST_F(SqlEquivalenceTest, SelectStarAndLimit) {
  auto r = db_->ExecuteSql("SELECT * FROM region ORDER BY r_name LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows().size(), 3u);
  EXPECT_EQ(r.value().rows()[0][1].AsString(), "AFRICA");
  EXPECT_EQ(r.value().rows()[1][1].AsString(), "AMERICA");
}

TEST_F(SqlEquivalenceTest, InListQuery) {
  auto r = db_->ExecuteSql(
      "SELECT n_name FROM nation WHERE n_regionkey IN (2) ORDER BY n_name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows().size(), 5u);  // 5 ASIA nations
  EXPECT_EQ(r.value().rows()[0][0].AsString(), "CHINA");
}

TEST_F(SqlEquivalenceTest, CountStarAndAliases) {
  auto r = db_->ExecuteSql("SELECT COUNT(*) AS n FROM nation");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows().size(), 1u);
  EXPECT_EQ(r.value().rows()[0][0].AsInt(), 25);
  EXPECT_EQ(r.value().schema.field(0).name, "n");
}

TEST_F(SqlEquivalenceTest, UnknownTableAndColumnErrors) {
  EXPECT_FALSE(db_->ExecuteSql("SELECT x FROM nosuch").ok());
  EXPECT_FALSE(db_->ExecuteSql("SELECT nocol FROM nation").ok());
  EXPECT_FALSE(
      db_->ExecuteSql("SELECT n_name, SUM(nocol) FROM nation GROUP BY n_name")
          .ok());
}

TEST_F(SqlEquivalenceTest, AggregateMixedWithNonGroupColumnRejected) {
  EXPECT_FALSE(
      db_->ExecuteSql("SELECT n_name, COUNT(*) FROM nation").ok());
}

TEST_F(SqlEquivalenceTest, QualifiedColumnNames) {
  auto r = db_->ExecuteSql(
      "SELECT nation.n_name FROM nation WHERE nation.n_nationkey = 8");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows().size(), 1u);
  EXPECT_EQ(r.value().rows()[0][0].AsString(), "INDIA");
}

}  // namespace
}  // namespace ecodb

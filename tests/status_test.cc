// Status code round-trip coverage: every StatusCode has a factory, a
// canonical name, a working name->code inverse, and a ToString rendering
// that names the code — enumerated from kAllStatusCodes so enum growth
// without matching plumbing fails here instead of silently rendering
// "Unknown".

#include <gtest/gtest.h>

#include <string>

#include "ecodb/util/status.h"

namespace ecodb {
namespace {

Status MakeStatus(StatusCode code, std::string_view msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(msg);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(msg);
    case StatusCode::kInternal:
      return Status::Internal(msg);
    case StatusCode::kUnstableSettings:
      return Status::UnstableSettings(msg);
    case StatusCode::kHardwareFault:
      return Status::HardwareFault(msg);
    case StatusCode::kParseError:
      return Status::ParseError(msg);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case StatusCode::kCancelled:
      return Status::Cancelled(msg);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(msg);
    case StatusCode::kUnavailable:
      return Status::Unavailable(msg);
  }
  return Status::Internal("unreachable");
}

TEST(StatusTest, EveryCodeRoundTripsThroughNameAndFactory) {
  for (StatusCode code : kAllStatusCodes) {
    const char* name = StatusCodeName(code);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "Unknown") << static_cast<int>(code);

    StatusCode parsed = StatusCode::kInternal;
    ASSERT_TRUE(StatusCodeFromName(name, &parsed)) << name;
    EXPECT_EQ(parsed, code) << name;

    Status st = MakeStatus(code, "msg");
    EXPECT_EQ(st.code(), code) << name;
    EXPECT_EQ(st.ok(), code == StatusCode::kOk) << name;
  }
}

TEST(StatusTest, ToStringNamesTheCodeAndCarriesTheMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  for (StatusCode code : kAllStatusCodes) {
    if (code == StatusCode::kOk) continue;
    Status st = MakeStatus(code, "details here");
    const std::string s = st.ToString();
    EXPECT_NE(s.find(StatusCodeName(code)), std::string::npos) << s;
    EXPECT_NE(s.find("details here"), std::string::npos) << s;
    EXPECT_EQ(st.message(), "details here");
  }
}

TEST(StatusTest, FromNameRejectsUnknownNamesWithoutTouchingOut) {
  StatusCode out = StatusCode::kHardwareFault;
  EXPECT_FALSE(StatusCodeFromName("NoSuchCode", &out));
  EXPECT_EQ(out, StatusCode::kHardwareFault);
  EXPECT_FALSE(StatusCodeFromName("", &out));
  EXPECT_EQ(out, StatusCode::kHardwareFault);
}

TEST(StatusTest, GovernorPredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::DeadlineExceeded("d").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("c").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("r").IsResourceExhausted());
  EXPECT_FALSE(Status::Cancelled("c").IsDeadlineExceeded());
  EXPECT_FALSE(Status::DeadlineExceeded("d").IsResourceExhausted());
  EXPECT_FALSE(Status::ResourceExhausted("r").IsCancelled());
  EXPECT_FALSE(Status::OK().IsCancelled());
}

TEST(StatusTest, UnavailableIsDistinctFromResourceExhausted) {
  // Shed/rejected queries (kUnavailable: try again later, the system is
  // protecting itself) must be distinguishable from per-query budget
  // kills (kResourceExhausted: this query asked for too much).
  Status shed = Status::Unavailable("queue full");
  EXPECT_TRUE(shed.IsUnavailable());
  EXPECT_FALSE(shed.IsResourceExhausted());
  EXPECT_FALSE(Status::ResourceExhausted("budget").IsUnavailable());
  EXPECT_FALSE(Status::OK().IsUnavailable());
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/sim/disk.h"
#include "ecodb/util/units.h"

namespace ecodb {
namespace {

TEST(DiskModelTest, SequentialThroughputIsFlatAcrossReadSizes) {
  // Figure 5(a): sequential throughput is constant regardless of read size.
  DiskModel disk(DiskConfig::WdCaviarSe16());
  const uint64_t total = 100 << 20;
  double tput_4k = 0;
  for (uint64_t block : {4096u, 8192u, 16384u, 32768u}) {
    DiskOpCost c = disk.ReadCost(total, total / block, false);
    double tput = total / c.total_s;
    if (block == 4096) tput_4k = tput;
    EXPECT_NEAR(tput / tput_4k, 1.0, 0.02);
  }
}

TEST(DiskModelTest, RandomThroughputRatiosMatchFigure5) {
  // Figure 5: going 4K->8K/16K/32K improves random throughput by about
  // 1.88x / 3.5x / 6x.
  DiskModel disk(DiskConfig::WdCaviarSe16());
  const uint64_t total = 1600ull << 20;  // the paper reads 1.6 GB
  auto tput = [&](uint64_t block) {
    DiskOpCost c = disk.ReadCost(total, total / block, true);
    return total / c.total_s;
  };
  double base = tput(4096);
  EXPECT_NEAR(tput(8192) / base, 1.88, 0.10);
  EXPECT_NEAR(tput(16384) / base, 3.5, 0.15);
  EXPECT_NEAR(tput(32768) / base, 6.0, 0.25);
}

TEST(DiskModelTest, SequentialEnergyPerKbIsFlat) {
  // Figure 5(b): energy per KB flat for sequential access.
  DiskModel disk(DiskConfig::WdCaviarSe16());
  const uint64_t total = 100 << 20;
  double base = -1;
  for (uint64_t block : {4096u, 8192u, 16384u, 32768u}) {
    DiskOpCost c = disk.ReadCost(total, total / block, false);
    double j_per_kb =
        (c.TotalEnergyJ() + c.total_s * disk.IdlePowerW()) / (total / 1024.0);
    if (base < 0) base = j_per_kb;
    EXPECT_NEAR(j_per_kb / base, 1.0, 0.03);
  }
}

TEST(DiskModelTest, RandomEnergyPerKbFallsWithBlockSize) {
  DiskModel disk(DiskConfig::WdCaviarSe16());
  const uint64_t total = 100 << 20;
  double prev = 1e18;
  for (uint64_t block : {4096u, 8192u, 16384u, 32768u}) {
    DiskOpCost c = disk.ReadCost(total, total / block, true);
    double j_per_kb =
        (c.TotalEnergyJ() + c.total_s * disk.IdlePowerW()) / (total / 1024.0);
    EXPECT_LT(j_per_kb, prev);
    prev = j_per_kb;
  }
}

TEST(DiskModelTest, SequentialIsMoreEnergyEfficientThanRandom) {
  // "Sequential access is more energy efficient per KB than random access,
  // primarily because it is faster!" (Section 3.5)
  DiskModel disk(DiskConfig::WdCaviarSe16());
  const uint64_t total = 16 << 20;
  DiskOpCost seq = disk.ReadCost(total, total / 4096, false);
  DiskOpCost rnd = disk.ReadCost(total, total / 4096, true);
  EXPECT_LT(seq.total_s, rnd.total_s);
  double seq_j = seq.TotalEnergyJ() + seq.total_s * disk.IdlePowerW();
  double rnd_j = rnd.TotalEnergyJ() + rnd.total_s * disk.IdlePowerW();
  EXPECT_LT(seq_j, rnd_j);
}

class DiskAdditivityTest
    : public ::testing::TestWithParam<std::pair<uint64_t, bool>> {};

TEST_P(DiskAdditivityTest, CostIsAdditiveAcrossBatches) {
  auto [block, random] = GetParam();
  DiskModel disk(DiskConfig::WdCaviarSe16());
  DiskOpCost one = disk.ReadCost(block * 10, 10, random);
  DiskOpCost a = disk.ReadCost(block * 4, 4, random);
  DiskOpCost b = disk.ReadCost(block * 6, 6, random);
  EXPECT_NEAR(one.total_s, a.total_s + b.total_s, 1e-12);
  EXPECT_NEAR(one.TotalEnergyJ(), a.TotalEnergyJ() + b.TotalEnergyJ(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, DiskAdditivityTest,
    ::testing::Values(std::make_pair(4096ull, true),
                      std::make_pair(8192ull, true),
                      std::make_pair(4096ull, false),
                      std::make_pair(32768ull, false)));

TEST(DiskModelTest, ZeroReadCostsNothing) {
  DiskModel disk(DiskConfig::WdCaviarSe16());
  DiskOpCost c = disk.ReadCost(0, 0, true);
  EXPECT_EQ(c.total_s, 0);
  EXPECT_EQ(c.TotalEnergyJ(), 0);
}

TEST(DiskModelTest, EnergySplitAcrossRails) {
  // Positioning charges the 12 V (actuator) rail; transfer charges 5 V.
  DiskModel disk(DiskConfig::WdCaviarSe16());
  DiskOpCost rnd = disk.ReadCost(4096 * 100, 100, true);
  EXPECT_GT(rnd.energy_12v_j, 0);
  EXPECT_GT(rnd.energy_5v_j, 0);
  EXPECT_GT(rnd.energy_12v_j, rnd.energy_5v_j);  // seek-dominated
  DiskOpCost seq = disk.ReadCost(64 << 20, 100, false);
  EXPECT_GT(seq.energy_5v_j, seq.energy_12v_j);  // transfer-dominated
}

}  // namespace
}  // namespace ecodb

// util/backoff.h: deterministic delay schedules, saturation, jitter, and
// the retry-budget ("Exhausted") contract shared by the buffer pool's
// transient-fault loop and the workload scheduler's retry layer.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ecodb/util/backoff.h"

namespace ecodb {
namespace {

TEST(BackoffTest, GeometricDelaysWithoutJitter) {
  BackoffPolicy p;
  p.max_retries = 4;
  p.initial_delay_seconds = 1e-3;
  p.multiplier = 2.0;
  Backoff b(p);
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 1e-3);
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 2e-3);
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 4e-3);
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 8e-3);
  EXPECT_EQ(b.attempts(), 4);
}

TEST(BackoffTest, DelaySaturatesAtCap) {
  BackoffPolicy p;
  p.max_retries = 10;
  p.initial_delay_seconds = 1e-3;
  p.multiplier = 10.0;
  p.max_delay_seconds = 5e-2;
  Backoff b(p);
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 1e-3);
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 1e-2);
  // 1e-1 would exceed the cap.
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 5e-2);
  EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), 5e-2);
}

TEST(BackoffTest, ExhaustedAfterBudgetAndResettable) {
  BackoffPolicy p;
  p.max_retries = 2;
  Backoff b(p);
  EXPECT_FALSE(b.Exhausted());
  b.NextDelaySeconds();
  EXPECT_FALSE(b.Exhausted());
  b.NextDelaySeconds();
  EXPECT_TRUE(b.Exhausted());
  b.Reset();
  EXPECT_FALSE(b.Exhausted());
  EXPECT_EQ(b.attempts(), 0);
}

TEST(BackoffTest, ZeroRetriesIsExhaustedImmediately) {
  BackoffPolicy p;
  p.max_retries = 0;
  Backoff b(p);
  EXPECT_TRUE(b.Exhausted());
  int calls = 0;
  EXPECT_FALSE(b.StepOrExhaust([&](double) { ++calls; }));
  EXPECT_EQ(calls, 0);
}

TEST(BackoffTest, StepOrExhaustChargesExactDelaysThenStops) {
  BackoffPolicy p;
  p.max_retries = 3;
  p.initial_delay_seconds = 1e-3;
  p.multiplier = 2.0;
  Backoff b(p);
  std::vector<double> charged;
  while (b.StepOrExhaust([&](double s) { charged.push_back(s); })) {
  }
  ASSERT_EQ(charged.size(), 3u);
  EXPECT_DOUBLE_EQ(charged[0], 1e-3);
  EXPECT_DOUBLE_EQ(charged[1], 2e-3);
  EXPECT_DOUBLE_EQ(charged[2], 4e-3);
  EXPECT_TRUE(b.Exhausted());
}

TEST(BackoffTest, JitterIsDeterministicBoundedAndStreamDecorrelated) {
  BackoffPolicy p;
  p.max_retries = 6;
  p.initial_delay_seconds = 1e-3;
  p.multiplier = 2.0;
  p.jitter_fraction = 0.5;
  p.jitter_seed = 0xFEED;

  Backoff a1(p, /*stream=*/7), a2(p, /*stream=*/7), other(p, /*stream=*/8);
  bool streams_differ = false;
  double base = p.initial_delay_seconds;
  for (int k = 0; k < 6; ++k) {
    const double d1 = a1.NextDelaySeconds();
    const double d2 = a2.NextDelaySeconds();
    const double d3 = other.NextDelaySeconds();
    EXPECT_DOUBLE_EQ(d1, d2) << k;  // pure function of (seed, stream, k)
    // Jitter only shrinks, bounded by the fraction.
    EXPECT_LE(d1, base);
    EXPECT_GT(d1, base * (1.0 - p.jitter_fraction) - 1e-15);
    if (d1 != d3) streams_differ = true;
    base *= p.multiplier;
  }
  EXPECT_TRUE(streams_differ);
}

// The exact sequence the PR 6 buffer-pool loop produced — extracting the
// loop into Backoff must not change any fault-injected run bit-for-bit.
TEST(BackoffTest, ReproducesBufferPoolRetrySchedule) {
  const int max_retries = 4;
  const double initial = 1e-3, mult = 2.0;
  BackoffPolicy p;
  p.max_retries = max_retries;
  p.initial_delay_seconds = initial;
  p.multiplier = mult;
  Backoff b(p);
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    // Old loop: after failed attempt k, idle initial * mult^k.
    double expected = initial * std::pow(mult, attempt);
    ASSERT_FALSE(b.Exhausted());
    EXPECT_DOUBLE_EQ(b.NextDelaySeconds(), expected) << attempt;
  }
  EXPECT_TRUE(b.Exhausted());  // attempt max_retries escalates instead
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/storage/catalog.h"
#include "ecodb/storage/heap_file.h"
#include "ecodb/storage/schema.h"
#include "ecodb/storage/table.h"
#include "ecodb/storage/value.h"
#include "ecodb/util/strings.h"

namespace ecodb {
namespace {

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Dbl(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
  EXPECT_EQ(Value::Date(100).AsDate(), 100);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, NumericCoercionInCompare) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Dbl(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Dbl(2.5)), 0);
  EXPECT_GT(Value::Dbl(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, StringsCompareLexicographically) {
  EXPECT_LT(Value::Str("ASIA").Compare(Value::Str("EUROPE")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Dbl(2.0).Hash());
  EXPECT_EQ(Value::Str("q").Hash(), Value::Str("q").Hash());
}

TEST(ValueTest, IsTruthySemantics) {
  EXPECT_FALSE(Value::Null().IsTruthy());
  EXPECT_FALSE(Value::Bool(false).IsTruthy());
  EXPECT_TRUE(Value::Int(-1).IsTruthy());
  EXPECT_FALSE(Value::Dbl(0.0).IsTruthy());
  EXPECT_TRUE(Value::Str("x").IsTruthy());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Date(ParseDateToDays("1994-01-01")).ToString(),
            "1994-01-01");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(SchemaTest, FindFieldIsCaseInsensitive) {
  Schema s({Field("L_QUANTITY", ValueType::kInt64),
            Field("l_price", ValueType::kDouble)});
  EXPECT_EQ(s.FindField("l_quantity"), 0);
  EXPECT_EQ(s.FindField("L_PRICE"), 1);
  EXPECT_EQ(s.FindField("missing"), -1);
}

TEST(SchemaTest, ConcatAndRowWidth) {
  Schema a({Field("x", ValueType::kInt64)});
  Schema b({Field("y", ValueType::kString, 20)});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_fields(), 2);
  EXPECT_EQ(c.RowWidth(), 28);
}

TEST(TableTest, AppendAndGetRoundTrip) {
  Table t("t", Schema({Field("k", ValueType::kInt64),
                       Field("s", ValueType::kString, 8),
                       Field("d", ValueType::kDate)}));
  ASSERT_TRUE(
      t.AppendRow({Value::Int(1), Value::Str("a"), Value::Date(10)}).ok());
  ASSERT_TRUE(
      t.AppendRow({Value::Int(2), Value::Str("b"), Value::Date(20)}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  Row row;
  t.GetRow(1, &row);
  EXPECT_EQ(row[0].AsInt(), 2);
  EXPECT_EQ(row[1].AsString(), "b");
  EXPECT_EQ(row[2].AsDate(), 20);
  EXPECT_EQ(t.GetValue(0, 1).AsString(), "a");
}

TEST(TableTest, RejectsWrongArityAndNulls) {
  Table t("t", Schema({Field("k", ValueType::kInt64)}));
  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::Int(2)}).IsInvalidArgument());
  EXPECT_TRUE(t.AppendRow({Value::Null()}).IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(HeapFileTest, PageLayoutMath) {
  HeapFile f(3, 1000, 100);  // 8192/100 = 81 rows/page
  EXPECT_EQ(f.rows_per_page(), 81u);
  EXPECT_EQ(f.num_pages(), (1000 + 80) / 81);
  EXPECT_EQ(f.PageOfRow(0).page_no, 0u);
  EXPECT_EQ(f.PageOfRow(80).page_no, 0u);
  EXPECT_EQ(f.PageOfRow(81).page_no, 1u);
  EXPECT_EQ(f.PageOfRow(80).file_id, 3u);
}

TEST(HeapFileTest, WideRowsStillGetOnePage) {
  HeapFile f(1, 10, 100000);  // row wider than a page
  EXPECT_EQ(f.rows_per_page(), 1u);
  EXPECT_EQ(f.num_pages(), 10u);
}

TEST(CatalogTest, CreateFindFinalize) {
  Catalog c;
  auto r = c.CreateTable("T1", Schema({Field("k", ValueType::kInt64)}));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value()->AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(c.FinalizeLoad("t1").ok());
  EXPECT_NE(c.FindTable("t1"), nullptr);
  EXPECT_NE(c.FindTable("T1"), nullptr);
  EXPECT_EQ(c.FindTable("nope"), nullptr);
  EXPECT_EQ(c.FindEntry("t1")->file.num_rows(), 1u);
  EXPECT_TRUE(c.CreateTable("t1", Schema(std::vector<Field>{})).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(c.FinalizeLoad("missing").IsNotFound());
  EXPECT_EQ(c.TableNames().size(), 1u);
}

TEST(CatalogTest, DistinctFileIds) {
  Catalog c;
  (void)c.CreateTable("a", Schema({Field("x", ValueType::kInt64)}));
  (void)c.CreateTable("b", Schema({Field("x", ValueType::kInt64)}));
  EXPECT_NE(c.FindEntry("a")->file.file_id(), c.FindEntry("b")->file.file_id());
}

}  // namespace
}  // namespace ecodb

// Shared test fixtures.

#ifndef ECODB_TESTS_TEST_UTIL_H_
#define ECODB_TESTS_TEST_UTIL_H_

#include <memory>

#include "ecodb/ecodb.h"

namespace ecodb::testing {

/// Tiny TPC-H database (fast to generate; ~6k lineitem rows).
inline constexpr double kTestSf = 0.002;

inline std::unique_ptr<Database> MakeTestDb(
    EngineProfile profile = EngineProfile::MySqlMemory(),
    double sf = kTestSf) {
  DatabaseOptions opt;
  opt.profile = std::move(profile);
  auto db = std::make_unique<Database>(opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = sf;
  Status st = db->LoadTpch(gen);
  if (!st.ok()) return nullptr;
  return db;
}

/// A small standalone table: t(k INT, v DOUBLE, s STRING) with rows
/// (i, i*1.5, "s<i%mod>") for i in [0, n).
inline Table* MakeSimpleTable(Catalog* catalog, const std::string& name,
                              int n, int mod = 5) {
  Schema schema({Field("k", ValueType::kInt64), Field("v", ValueType::kDouble),
                 Field("s", ValueType::kString, 8)});
  auto result = catalog->CreateTable(name, schema);
  if (!result.ok()) return nullptr;
  Table* t = result.value();
  for (int i = 0; i < n; ++i) {
    Status st = t->AppendRow({Value::Int(i), Value::Dbl(i * 1.5),
                              Value::Str("s" + std::to_string(i % mod))});
    if (!st.ok()) return nullptr;
  }
  (void)catalog->FinalizeLoad(name);
  return t;
}

}  // namespace ecodb::testing

#endif  // ECODB_TESTS_TEST_UTIL_H_

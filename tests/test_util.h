// Shared test fixtures.

#ifndef ECODB_TESTS_TEST_UTIL_H_
#define ECODB_TESTS_TEST_UTIL_H_

#include <memory>

#include "ecodb/ecodb.h"

namespace ecodb::testing {

/// Tiny TPC-H database (fast to generate; ~6k lineitem rows).
inline constexpr double kTestSf = 0.002;

inline std::unique_ptr<Database> MakeTestDb(
    EngineProfile profile = EngineProfile::MySqlMemory(),
    double sf = kTestSf) {
  DatabaseOptions opt;
  opt.profile = std::move(profile);
  auto db = std::make_unique<Database>(opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = sf;
  Status st = db->LoadTpch(gen);
  if (!st.ok()) return nullptr;
  return db;
}

/// A small standalone table: t(k INT, v DOUBLE, s STRING) with rows
/// (i, i*1.5, "s<i%mod>") for i in [0, n).
inline Table* MakeSimpleTable(Catalog* catalog, const std::string& name,
                              int n, int mod = 5) {
  Schema schema({Field("k", ValueType::kInt64), Field("v", ValueType::kDouble),
                 Field("s", ValueType::kString, 8)});
  auto result = catalog->CreateTable(name, schema);
  if (!result.ok()) return nullptr;
  Table* t = result.value();
  for (int i = 0; i < n; ++i) {
    Status st = t->AppendRow({Value::Int(i), Value::Dbl(i * 1.5),
                              Value::Str("s" + std::to_string(i % mod))});
    if (!st.ok()) return nullptr;
  }
  (void)catalog->FinalizeLoad(name);
  return t;
}

/// Constructs two *different* two-column int64 keys with an identical
/// full 64-bit HashRowKey, by inverting the hash combine for the second
/// column. Returns false when std::hash<int64_t> is not invertible here
/// (callers should GTEST_SKIP). Used by the hash-collision regression
/// tests for join and group-by tables.
inline bool MakeCollidingKeyPair(Row* key1, Row* key2) {
  const int64_t a1 = 1, b1 = 2, a2 = 3;
  const size_t target = HashCombineKey(
      HashCombineKey(kRowKeyHashSeed, Value::Int(a1).Hash()),
      Value::Int(b1).Hash());
  const size_t h1 = HashCombineKey(kRowKeyHashSeed, Value::Int(a2).Hash());
  // Solve HashCombineKey(h1, hb) == target for the second column's hash.
  const size_t needed_hash =
      (target ^ h1) - 0x9E3779B9 - (h1 << 6) - (h1 >> 2);
  const int64_t b2 = static_cast<int64_t>(needed_hash);
  if (Value::Int(b2).Hash() != needed_hash) return false;
  *key1 = Row{Value::Int(a1), Value::Int(b1)};
  *key2 = Row{Value::Int(a2), Value::Int(b2)};
  return true;
}

}  // namespace ecodb::testing

#endif  // ECODB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "ecodb/tpch/dbgen.h"
#include "ecodb/tpch/queries.h"
#include "ecodb/tpch/workloads.h"
#include "ecodb/util/strings.h"
#include "test_util.h"

namespace ecodb {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::DbGenOptions opt;
    opt.scale_factor = 0.002;
    opt.include_part_tables = true;
    ASSERT_TRUE(tpch::Generate(opt, &catalog_).ok());
  }
  Catalog catalog_;
};

TEST_F(TpchTest, RowCountsScaleWithSf) {
  EXPECT_EQ(catalog_.FindTable("region")->num_rows(), 5u);
  EXPECT_EQ(catalog_.FindTable("nation")->num_rows(), 25u);
  EXPECT_EQ(catalog_.FindTable("customer")->num_rows(),
            tpch::CustomerCount(0.002));
  EXPECT_EQ(catalog_.FindTable("orders")->num_rows(),
            tpch::OrderCount(0.002));
  EXPECT_EQ(catalog_.FindTable("supplier")->num_rows(),
            tpch::SupplierCount(0.002));
  // ~4 lineitems per order on average (uniform 1..7).
  double ratio =
      static_cast<double>(catalog_.FindTable("lineitem")->num_rows()) /
      static_cast<double>(catalog_.FindTable("orders")->num_rows());
  EXPECT_NEAR(ratio, 4.0, 0.3);
  EXPECT_EQ(catalog_.FindTable("partsupp")->num_rows(),
            4 * catalog_.FindTable("part")->num_rows());
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  Catalog other;
  tpch::DbGenOptions opt;
  opt.scale_factor = 0.002;
  opt.include_part_tables = true;
  ASSERT_TRUE(tpch::Generate(opt, &other).ok());
  const Table* a = catalog_.FindTable("lineitem");
  const Table* b = other.FindTable("lineitem");
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t r = 0; r < a->num_rows(); r += 97) {
    for (int c = 0; c < a->num_columns(); ++c) {
      EXPECT_EQ(a->GetValue(r, c).Compare(b->GetValue(r, c)), 0);
    }
  }
}

TEST_F(TpchTest, QuantityGivesTwoPercentSelectivity) {
  // QED's premise: each l_quantity value selects ~2 % of lineitem
  // (uniform over 50 integers, Section 4).
  const Table* li = catalog_.FindTable("lineitem");
  int qty_col = li->schema().FindField("l_quantity");
  ASSERT_GE(qty_col, 0);
  std::vector<int> counts(51, 0);
  for (size_t r = 0; r < li->num_rows(); ++r) {
    int64_t q = li->column(qty_col).GetInt(r);
    ASSERT_GE(q, 1);
    ASSERT_LE(q, 50);
    ++counts[static_cast<size_t>(q)];
  }
  double expected = static_cast<double>(li->num_rows()) / 50.0;
  for (int v = 1; v <= 50; ++v) {
    EXPECT_NEAR(counts[static_cast<size_t>(v)] / expected, 1.0, 0.45)
        << "l_quantity=" << v;
  }
}

TEST_F(TpchTest, OrderDatesSpanPaperRange) {
  const Table* orders = catalog_.FindTable("orders");
  int date_col = orders->schema().FindField("o_orderdate");
  int32_t lo = ParseDateToDays(tpch::kOrderDateLo);
  int32_t hi = ParseDateToDays(tpch::kOrderDateHi);
  for (size_t r = 0; r < orders->num_rows(); ++r) {
    int64_t d = orders->column(date_col).GetInt(r);
    EXPECT_GE(d, lo);
    EXPECT_LT(d, hi);
  }
}

TEST_F(TpchTest, ForeignKeysResolve) {
  const Table* nation = catalog_.FindTable("nation");
  for (size_t r = 0; r < nation->num_rows(); ++r) {
    int64_t rk = nation->column(2).GetInt(r);
    EXPECT_GE(rk, 0);
    EXPECT_LE(rk, 4);
  }
  const Table* li = catalog_.FindTable("lineitem");
  uint64_t max_supp = catalog_.FindTable("supplier")->num_rows();
  uint64_t max_order = catalog_.FindTable("orders")->num_rows();
  for (size_t r = 0; r < li->num_rows(); r += 53) {
    EXPECT_LE(li->column(0).GetInt(r), static_cast<int64_t>(max_order));
    EXPECT_GE(li->column(2).GetInt(r), 1);
    EXPECT_LE(li->column(2).GetInt(r), static_cast<int64_t>(max_supp));
  }
}

TEST_F(TpchTest, ShipdateFollowsOrderdate) {
  // l_shipdate = o_orderdate + [1,121] by construction; spot check the
  // semantic constraint shipdate > orderdate through a join.
  const Table* li = catalog_.FindTable("lineitem");
  const Table* orders = catalog_.FindTable("orders");
  std::vector<int64_t> order_date(orders->num_rows() + 1);
  for (size_t r = 0; r < orders->num_rows(); ++r) {
    order_date[static_cast<size_t>(orders->column(0).GetInt(r))] =
        orders->column(4).GetInt(r);
  }
  for (size_t r = 0; r < li->num_rows(); r += 31) {
    int64_t ok = li->column(0).GetInt(r);
    EXPECT_GT(li->column(10).GetInt(r),
              order_date[static_cast<size_t>(ok)]);
  }
}

TEST_F(TpchTest, RejectsDoubleGeneration) {
  tpch::DbGenOptions opt;
  opt.scale_factor = 0.002;
  EXPECT_FALSE(tpch::Generate(opt, &catalog_).ok());
}

TEST_F(TpchTest, RejectsNonPositiveScale) {
  Catalog c;
  tpch::DbGenOptions opt;
  opt.scale_factor = 0;
  EXPECT_TRUE(tpch::Generate(opt, &c).IsInvalidArgument());
}

TEST_F(TpchTest, Q5WorkloadHasTenNonOverlappingQueries) {
  auto wl = tpch::MakeQ5Workload(catalog_);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl.value().queries.size(), 10u);  // 2 regions x 5 years
}

TEST_F(TpchTest, SelectionWorkloadValuesAreDistinct) {
  auto wl = tpch::MakeSelectionWorkload(catalog_, 50, 7);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl.value().queries.size(), 50u);
  std::vector<int64_t> vals = wl.value().selection_values;
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(std::adjacent_find(vals.begin(), vals.end()), vals.end());
  EXPECT_EQ(vals.front(), 1);
  EXPECT_EQ(vals.back(), 50);
  EXPECT_FALSE(tpch::MakeSelectionWorkload(catalog_, 51, 7).ok());
  EXPECT_FALSE(tpch::MakeSelectionWorkload(catalog_, 0, 7).ok());
}

class Q5ResultTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Q5ResultTest, GroupsAreNationsOfTheRegion) {
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  tpch::Q5Params p;
  p.region = GetParam();
  auto plan = tpch::BuildQ5Plan(*db->catalog(), p);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto r = db->ExecutePlanQuery(*plan.value());
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().rows().size(), 5u);  // at most 5 nations per region
  // Revenue sorted descending.
  for (size_t i = 1; i < r.value().rows().size(); ++i) {
    EXPECT_GE(r.value().rows()[i - 1][1].AsDouble(),
              r.value().rows()[i][1].AsDouble());
  }
}

INSTANTIATE_TEST_SUITE_P(Regions, Q5ResultTest,
                         ::testing::Values("ASIA", "AMERICA", "EUROPE",
                                           "AFRICA", "MIDDLE EAST"));

TEST_F(TpchTest, MixedWorkloadBuilds) {
  auto wl = tpch::MakeMixedWorkload(catalog_);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  EXPECT_EQ(wl.value().queries.size(), 4u);
}

}  // namespace
}  // namespace ecodb

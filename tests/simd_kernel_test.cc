// Scalar-vs-vector bit-parity for every kernel in exec/simd.{h,cc}.
//
// The engine's correctness argument for the SIMD paths is NOT "close
// enough": the dispatchers promise bit-identical results to the scalar
// reference loops for every input — NaN, signed zero, unaligned bases,
// non-multiple-of-vector-width tails — so that ECODB_SIMD=off (or a
// non-AVX host) can never change a query answer or a parity counter.
// This suite drives both implementations directly through the detail::
// handles over adversarial lengths, offsets and payloads and compares
// raw bytes (memcmp semantics via exact integer / bit-pattern checks).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "ecodb/exec/simd.h"

namespace ecodb {
namespace simd {
namespace {

// Lengths straddling every vector-width boundary (4-wide i64/f64, 8-wide
// i32, 16-wide u8) plus empty and one-element edge cases.
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                           15, 16, 17, 31, 32, 33, 63, 64, 65, 257};

// Offsets into an over-allocated buffer: misaligned bases exercise the
// unaligned loads the kernels promise to handle.
const size_t kOffsets[] = {0, 1, 3};

const CmpOp kAllOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
const ArithKind kAllArith[] = {ArithKind::kAdd, ArithKind::kSub,
                               ArithKind::kMul, ArithKind::kDiv};

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

TEST(SimdKernelTest, CompareI64BitParity) {
  std::mt19937_64 rng(1);
  for (size_t off : kOffsets) {
    for (size_t n : kLengths) {
      std::vector<int64_t> a(off + n);
      for (auto& v : a) v = static_cast<int64_t>(rng() % 7) - 3;
      a.insert(a.end(), {std::numeric_limits<int64_t>::min(),
                         std::numeric_limits<int64_t>::max()});
      const int64_t lit = static_cast<int64_t>(rng() % 7) - 3;
      std::vector<uint8_t> ms(n, 0xAA), mv(n, 0x55);
      for (CmpOp op : kAllOps) {
        detail::CompareI64LitMaskScalar(a.data() + off, n, op, lit, ms.data());
        detail::CompareI64LitMaskVector(a.data() + off, n, op, lit, mv.data());
        ASSERT_EQ(0, std::memcmp(ms.data(), mv.data(), n))
            << "op=" << static_cast<int>(op) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdKernelTest, CompareI32BitParity) {
  std::mt19937_64 rng(2);
  for (size_t off : kOffsets) {
    for (size_t n : kLengths) {
      std::vector<int32_t> a(off + n);
      // Dictionary codes are small non-negative ints; include the -1
      // "absent" sentinel the IN-list translation uses.
      for (auto& v : a) v = static_cast<int32_t>(rng() % 9) - 1;
      const int32_t lit = static_cast<int32_t>(rng() % 9) - 1;
      std::vector<uint8_t> ms(n, 0xAA), mv(n, 0x55);
      for (CmpOp op : kAllOps) {
        detail::CompareI32LitMaskScalar(a.data() + off, n, op, lit, ms.data());
        detail::CompareI32LitMaskVector(a.data() + off, n, op, lit, mv.data());
        ASSERT_EQ(0, std::memcmp(ms.data(), mv.data(), n))
            << "op=" << static_cast<int>(op) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdKernelTest, CompareF64BitParityIncludingNaN) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  const double specials[] = {kNaN, kInf, -kInf, 0.0, -0.0, 1.5, -1.5};
  std::mt19937_64 rng(3);
  for (size_t off : kOffsets) {
    for (size_t n : kLengths) {
      std::vector<double> a(off + n);
      for (auto& v : a) v = specials[rng() % 7];
      for (double lit : {0.0, 1.5, kNaN}) {
        std::vector<uint8_t> ms(n, 0xAA), mv(n, 0x55);
        for (CmpOp op : kAllOps) {
          detail::CompareF64LitMaskScalar(a.data() + off, n, op, lit,
                                          ms.data());
          detail::CompareF64LitMaskVector(a.data() + off, n, op, lit,
                                          mv.data());
          ASSERT_EQ(0, std::memcmp(ms.data(), mv.data(), n))
              << "op=" << static_cast<int>(op) << " n=" << n << " off=" << off
              << " lit=" << lit;
        }
      }
    }
  }
}

// The engine's three-way compare treats NaN as equal to everything:
// kEq/kLe/kGe accept, kNe/kLt/kGt reject. Pin the dispatcher (whichever
// path is active) to that semantic, not just to scalar/vector agreement.
TEST(SimdKernelTest, NaNComparesAsEqual) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double a[3] = {kNaN, 1.0, kNaN};
  uint8_t m[3];
  CompareF64LitMask(a, 3, CmpOp::kEq, 5.0, m);
  EXPECT_EQ(1, m[0]);  // NaN "equals" anything under three-way compare
  EXPECT_EQ(0, m[1]);
  CompareF64LitMask(a, 3, CmpOp::kLe, 5.0, m);
  EXPECT_EQ(1, m[0]);
  CompareF64LitMask(a, 3, CmpOp::kGe, 5.0, m);
  EXPECT_EQ(1, m[0]);
  CompareF64LitMask(a, 3, CmpOp::kNe, 5.0, m);
  EXPECT_EQ(0, m[0]);
  CompareF64LitMask(a, 3, CmpOp::kLt, 5.0, m);
  EXPECT_EQ(0, m[0]);
  CompareF64LitMask(a, 3, CmpOp::kGt, 5.0, m);
  EXPECT_EQ(0, m[0]);
}

TEST(SimdKernelTest, ArithF64BitParity) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  const double pool[] = {0.0, -0.0, 1.0, -2.5, 1e300, 1e-300, kNaN, kInf};
  std::mt19937_64 rng(4);
  for (size_t off : kOffsets) {
    for (size_t n : kLengths) {
      std::vector<double> a(off + n), b(off + n);
      for (auto& v : a) v = pool[rng() % 8];
      for (auto& v : b) v = pool[rng() % 8];
      std::vector<double> os(n, -7.0), ov(n, 7.0);
      for (ArithKind k : kAllArith) {
        detail::ArithF64ColColScalar(k, a.data() + off, b.data() + off, n,
                                     os.data());
        detail::ArithF64ColColVector(k, a.data() + off, b.data() + off, n,
                                     ov.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(BitsOf(os[i]), BitsOf(ov[i]))
              << "colcol k=" << static_cast<int>(k) << " i=" << i;
        }
        detail::ArithF64ColScalarScalar(k, a.data() + off, 3.25, n, os.data());
        detail::ArithF64ColScalarVector(k, a.data() + off, 3.25, n, ov.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(BitsOf(os[i]), BitsOf(ov[i]))
              << "colscalar k=" << static_cast<int>(k) << " i=" << i;
        }
        detail::ArithF64ScalarColScalar(k, 3.25, b.data() + off, n, os.data());
        detail::ArithF64ScalarColVector(k, 3.25, b.data() + off, n, ov.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(BitsOf(os[i]), BitsOf(ov[i]))
              << "scalarcol k=" << static_cast<int>(k) << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, ConvertI64ToF64BitParity) {
  std::mt19937_64 rng(5);
  for (size_t off : kOffsets) {
    for (size_t n : kLengths) {
      std::vector<int64_t> in(off + n);
      for (auto& v : in) {
        // Mix small values with magnitudes beyond 2^53, where the
        // conversion rounds — both implementations must round alike.
        v = static_cast<int64_t>(rng());
        if (rng() % 2) v >>= 40;
      }
      std::vector<double> os(n, -1.0), ov(n, 1.0);
      detail::ConvertI64ToF64Scalar(in.data() + off, n, os.data());
      detail::ConvertI64ToF64Vector(in.data() + off, n, ov.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(BitsOf(os[i]), BitsOf(ov[i])) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, OrMasksBitParity) {
  std::mt19937_64 rng(6);
  for (size_t off : kOffsets) {
    for (size_t n : kLengths) {
      std::vector<uint8_t> a(off + n), b(off + n);
      // Null masks are nominally 0/1 but the combine must be exact for
      // any byte value a demoted path might leave behind.
      for (auto& v : a) v = static_cast<uint8_t>(rng());
      for (auto& v : b) v = static_cast<uint8_t>(rng());
      std::vector<uint8_t> os(n, 0xAA), ov(n, 0x55);
      detail::OrMasksScalar(a.data() + off, b.data() + off, n, os.data());
      detail::OrMasksVector(a.data() + off, b.data() + off, n, ov.data());
      ASSERT_EQ(0, std::memcmp(os.data(), ov.data(), n))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdKernelTest, HashCombineBatchBitParity) {
  std::mt19937_64 rng(7);
  for (size_t off : kOffsets) {
    for (size_t n : kLengths) {
      std::vector<size_t> h0(off + n), vh(off + n);
      for (auto& v : h0) v = static_cast<size_t>(rng());
      for (auto& v : vh) v = static_cast<size_t>(rng());
      std::vector<size_t> hs(h0.begin() + static_cast<long>(off), h0.end());
      std::vector<size_t> hv = hs;
      detail::HashCombineBatchScalar(hs.data(), vh.data() + off, n);
      detail::HashCombineBatchVector(hv.data(), vh.data() + off, n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hs[i], hv[i]) << "n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

// The public dispatchers must agree with the scalar reference regardless
// of which path Enabled() picked in this process (covers both the SIMD-on
// default build and the ECODB_SIMD=off / ECODB_SIMD_DISABLED legs).
TEST(SimdKernelTest, DispatchersMatchScalarReference) {
  std::mt19937_64 rng(8);
  const size_t n = 77;
  std::vector<int64_t> ai(n);
  for (auto& v : ai) v = static_cast<int64_t>(rng() % 11) - 5;
  std::vector<uint8_t> got(n), want(n);
  CompareI64LitMask(ai.data(), n, CmpOp::kLt, 0, got.data());
  detail::CompareI64LitMaskScalar(ai.data(), n, CmpOp::kLt, 0, want.data());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(), n));

  std::vector<size_t> h(n), href(n), vh(n);
  for (size_t i = 0; i < n; ++i) {
    h[i] = href[i] = static_cast<size_t>(rng());
    vh[i] = static_cast<size_t>(rng());
  }
  HashCombineBatch(h.data(), vh.data(), n);
  detail::HashCombineBatchScalar(href.data(), vh.data(), n);
  EXPECT_EQ(href, h);
}

}  // namespace
}  // namespace simd
}  // namespace ecodb

// Differential row-vs-batch fuzz harness.
//
// Generates hundreds of random physical plans over the dbgen TPC-H tables
// — scans, typed predicates (compare / BETWEEN / IN-list / AND-OR-NOT
// chains, column-vs-column and column-vs-sampled-literal), projections
// with arithmetic (including NULL-producing division), FK hash-join
// chains, nested-loop joins, group-by aggregation, sort and limit — and
// executes every plan in BOTH ExecModes AND on the morsel-parallel batch
// engine (ECODB_FUZZ_WORKERS workers, default 3) — limit-over-aggregate and
// limit-over-sort take the truncating batched LimitOp, limit-over-join /
// scan the row-pull fallback, with limits below, at and far above the
// child cardinality, including 0 — asserting:
//
//   * identical result rows, in order;
//   * bit-exact integer logical-work counters (the parity contract every
//     kernel rewrite must preserve);
//   * simulated time and energy within 0.1%.
//
// Each plan is derived from its own seed; on failure the seed is in every
// assertion message (SCOPED_TRACE), so a run reproduces with
// ECODB_FUZZ_SEED=<seed> (and ECODB_FUZZ_PLANS=1). ECODB_FUZZ_PLANS
// scales the number of plans (default 224).
//
// This is the acceptance gate named in docs/architecture.md: new
// operators and kernel fast paths land only if this harness stays green.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "ecodb/ecodb.h"
#include "plan_fuzzer.h"
#include "test_util.h"

namespace ecodb {
namespace {

constexpr double kChargeRelTol = 1e-9;
constexpr double kEnergyRelTol = 1e-3;

void ExpectNearRel(double a, double b, double tol, const char* what) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  EXPECT_LE(std::fabs(a - b) / scale, tol) << what << ": " << a << " vs "
                                           << b;
}

class BatchParityFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions row_opt;
    row_opt.profile = EngineProfile::MySqlMemory();
    row_opt.exec_mode = ExecMode::kRow;
    row_db_ = new Database(row_opt);
    DatabaseOptions batch_opt;
    batch_opt.profile = EngineProfile::MySqlMemory();
    batch_opt.exec_mode = ExecMode::kBatch;
    batch_db_ = new Database(batch_opt);
    // Third axis: the morsel-parallel batch engine. ECODB_FUZZ_WORKERS
    // overrides the worker count (default 3 — an odd count exercises
    // uneven static schedules).
    int workers = 3;
    if (const char* s = std::getenv("ECODB_FUZZ_WORKERS")) {
      workers = std::atoi(s);
    }
    DatabaseOptions par_opt;
    par_opt.profile = EngineProfile::MySqlMemory();
    par_opt.exec_mode = ExecMode::kBatch;
    par_opt.exec_workers = workers;
    parallel_db_ = new Database(par_opt);
    tpch::DbGenOptions gen;
    gen.scale_factor = testing::kTestSf;
    ASSERT_TRUE(row_db_->LoadTpch(gen).ok());
    ASSERT_TRUE(batch_db_->LoadTpch(gen).ok());
    ASSERT_TRUE(parallel_db_->LoadTpch(gen).ok());
  }
  static void TearDownTestSuite() {
    delete row_db_;
    delete batch_db_;
    delete parallel_db_;
    row_db_ = nullptr;
    batch_db_ = nullptr;
    parallel_db_ = nullptr;
  }

  void CheckPlanParity(uint64_t seed, bool breaker_root = false) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
                 " (rerun with ECODB_FUZZ_SEED=" + std::to_string(seed) +
                 " ECODB_FUZZ_PLANS=1)");
    testing::PlanFuzzer fuzzer(seed, *row_db_->catalog());
    PlanNodePtr plan =
        breaker_root ? fuzzer.GenerateBreakerRoot() : fuzzer.Generate();
    ASSERT_NE(plan, nullptr);
    SCOPED_TRACE("plan:\n" + plan->Explain());

    auto row_res = row_db_->ExecutePlanQuery(*plan);
    auto batch_res = batch_db_->ExecutePlanQuery(*plan);
    auto par_res = parallel_db_->ExecutePlanQuery(*plan);
    ASSERT_TRUE(row_res.ok()) << row_res.status().ToString();
    ASSERT_TRUE(batch_res.ok()) << batch_res.status().ToString();
    ASSERT_TRUE(par_res.ok()) << par_res.status().ToString();

    const QueryResult& r = row_res.value();
    // Both the batch engine and the morsel-parallel batch engine are held
    // to the same contract against the row-mode oracle.
    struct Contender {
      const char* label;
      const QueryResult* res;
    };
    const Contender contenders[] = {{"batch", &batch_res.value()},
                                    {"parallel", &par_res.value()}};
    for (const Contender& c : contenders) {
      SCOPED_TRACE(c.label);
      const QueryResult& b = *c.res;
      ASSERT_EQ(r.rows().size(), b.rows().size());
      for (size_t i = 0; i < r.rows().size(); ++i) {
        ASSERT_EQ(RowToString(r.rows()[i]), RowToString(b.rows()[i]))
            << "row " << i;
      }
      EXPECT_EQ(r.exec_stats.tuples_scanned, b.exec_stats.tuples_scanned);
      EXPECT_EQ(r.exec_stats.tuples_output, b.exec_stats.tuples_output);
      EXPECT_EQ(r.exec_stats.comparisons, b.exec_stats.comparisons);
      EXPECT_EQ(r.exec_stats.arith_ops, b.exec_stats.arith_ops);
      EXPECT_EQ(r.exec_stats.hash_builds, b.exec_stats.hash_builds);
      EXPECT_EQ(r.exec_stats.hash_probes, b.exec_stats.hash_probes);
      EXPECT_EQ(r.exec_stats.agg_updates, b.exec_stats.agg_updates);
      EXPECT_EQ(r.exec_stats.sort_compares, b.exec_stats.sort_compares);
      EXPECT_EQ(r.exec_stats.spill_bytes, b.exec_stats.spill_bytes);
      ExpectNearRel(r.exec_stats.cycles_charged, b.exec_stats.cycles_charged,
                    kChargeRelTol, "cycles_charged");
      ExpectNearRel(r.exec_stats.mem_lines_charged,
                    b.exec_stats.mem_lines_charged, kChargeRelTol,
                    "mem_lines_charged");
      ExpectNearRel(r.seconds, b.seconds, kEnergyRelTol, "seconds");
      ExpectNearRel(r.cpu_joules, b.cpu_joules, kEnergyRelTol, "cpu_joules");
      ExpectNearRel(r.disk_joules, b.disk_joules, kEnergyRelTol,
                    "disk_joules");
      ExpectNearRel(r.wall_joules, b.wall_joules, kEnergyRelTol,
                    "wall_joules");
    }
  }

  static Database* row_db_;
  static Database* batch_db_;
  static Database* parallel_db_;
};

Database* BatchParityFuzzTest::row_db_ = nullptr;
Database* BatchParityFuzzTest::batch_db_ = nullptr;
Database* BatchParityFuzzTest::parallel_db_ = nullptr;

TEST_F(BatchParityFuzzTest, HundredsOfRandomPlansMatch) {
  uint64_t base_seed = 0xEC0DB0;
  size_t n_plans = 224;
  if (const char* s = std::getenv("ECODB_FUZZ_SEED")) {
    base_seed = std::strtoull(s, nullptr, 0);
  }
  if (const char* s = std::getenv("ECODB_FUZZ_PLANS")) {
    n_plans = std::strtoull(s, nullptr, 0);
  }
  for (size_t i = 0; i < n_plans; ++i) {
    CheckPlanParity(base_seed + i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Every plan ends in a pipeline breaker (aggregation root, sort root, or
// both, half the time over multi-join bases), pinning the parallel
// breakers' canonical charge accounting — partitioned hash build,
// partial-agg merge, sorted-run merge — against the row oracle at
// whatever ECODB_FUZZ_WORKERS is set to (check.sh sweeps 2, 3 and 8).
TEST_F(BatchParityFuzzTest, BreakerRootPlansMatch) {
  uint64_t base_seed = 0xB4EA4E4;
  size_t n_plans = 96;
  if (const char* s = std::getenv("ECODB_FUZZ_SEED")) {
    base_seed = std::strtoull(s, nullptr, 0);
  }
  if (const char* s = std::getenv("ECODB_FUZZ_PLANS")) {
    n_plans = std::strtoull(s, nullptr, 0);
  }
  for (size_t i = 0; i < n_plans; ++i) {
    CheckPlanParity(base_seed + i, /*breaker_root=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace ecodb

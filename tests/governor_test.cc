// Query governor: deadlines, budgets, cooperative cancellation, and the
// fault-injected retry path.
//
// The charged-cycle cancellation trigger trips inside the flush-quantum
// loop, whose boundaries live at fixed charged-cycle positions in both
// execution modes — so a query killed mid-stream freezes cycles_charged
// at a bit-exact value whether the work arrived per-row or per-batch.
// One cancellation case per operator family (scan, join, aggregate,
// sort, limit) proves Close() is safe on a partially-consumed stack
// (the ASan configuration turns any leak into a failure).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>

#include "ecodb/ecodb.h"
#include "test_util.h"

namespace ecodb {
namespace {

// Large enough that every family's plan charges several flush quanta
// (the trigger only fires at quantum boundaries).
constexpr double kGovSf = 0.01;

struct GovernedRun {
  Status status;
  QueryExecStats stats;
  EnergyLedger ledger_delta;
};

class GovernorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = testing::MakeTestDb(EngineProfile::MySqlMemory(), kGovSf).release();
    ASSERT_NE(db_, nullptr);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static PlanNodePtr Plan(const std::string& sql) {
    auto r = db_->PlanSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  /// Executes `plan` under `limits` in the given mode on a fresh context,
  /// returning the status, the (possibly partial) exec stats and the
  /// machine-ledger delta of the run.
  static GovernedRun Run(const PlanNode& plan, const QueryLimits& limits,
                         ExecMode mode) {
    auto ctx = db_->MakeExecContext();
    std::unique_ptr<QueryGovernor> gov;
    if (!limits.None()) {
      gov = std::make_unique<QueryGovernor>(limits,
                                            db_->machine()->NowSeconds());
      ctx->set_governor(gov.get());
    }
    EnergyLedger before = db_->machine()->ledger();
    auto res = ExecutePlanColumnar(plan, ctx.get(), mode);
    ctx->Flush();
    EnergyLedger after = db_->machine()->ledger();
    GovernedRun out;
    out.status = res.status();
    out.stats = ctx->stats();
    out.ledger_delta.cpu_j = after.cpu_j - before.cpu_j;
    out.ledger_delta.wall_j = after.wall_j - before.wall_j;
    out.ledger_delta.busy_s = after.busy_s - before.busy_s;
    out.ledger_delta.io_s = after.io_s - before.io_s;
    out.ledger_delta.idle_s = after.idle_s - before.idle_s;
    return out;
  }

  static void ExpectLedgerSane(const GovernedRun& r) {
    for (double v : {r.ledger_delta.cpu_j, r.ledger_delta.wall_j,
                     r.ledger_delta.busy_s, r.ledger_delta.io_s,
                     r.ledger_delta.idle_s}) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
    }
    EXPECT_GE(r.ledger_delta.wall_j, r.ledger_delta.cpu_j);
  }

  /// The per-family contract: cancelling at half the query's charged
  /// cycles yields kCancelled in both modes with *bit-exact* partial
  /// cycles_charged (frozen at the same quantum boundary), a sane
  /// ledger, and a Database that executes the next query normally.
  void CheckCancelMidStream(const std::string& sql) {
    SCOPED_TRACE(sql);
    PlanNodePtr plan = Plan(sql);
    ASSERT_NE(plan, nullptr);

    GovernedRun full = Run(*plan, QueryLimits{}, ExecMode::kRow);
    ASSERT_TRUE(full.status.ok()) << full.status.ToString();
    const double total = full.stats.cycles_charged;
    ASSERT_GT(total, 4.0e7) << "plan too small to cross flush quanta";

    QueryLimits limits;
    limits.cancel_at_charged_cycles = total / 2;
    GovernedRun row = Run(*plan, limits, ExecMode::kRow);
    GovernedRun batch = Run(*plan, limits, ExecMode::kBatch);

    EXPECT_TRUE(row.status.IsCancelled()) << row.status.ToString();
    EXPECT_TRUE(batch.status.IsCancelled()) << batch.status.ToString();
    // Frozen at the same quantum boundary in charged-cycle space.
    EXPECT_EQ(row.stats.cycles_charged, batch.stats.cycles_charged);
    EXPECT_GE(row.stats.cycles_charged, limits.cancel_at_charged_cycles);
    EXPECT_LT(row.stats.cycles_charged, total);
    ExpectLedgerSane(row);
    ExpectLedgerSane(batch);

    // The kill leaves no residue: the same Database answers the next
    // query (both a fresh governed success and an ungoverned run).
    auto ok = db_->ExecuteSql("SELECT COUNT(*) AS n FROM region");
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(ok.value().rows()[0][0].AsInt(), 5);
  }

  static Database* db_;
};

Database* GovernorTest::db_ = nullptr;

TEST_F(GovernorTest, CancelMidScan) {
  CheckCancelMidStream("SELECT l_orderkey, l_extendedprice FROM lineitem");
}

TEST_F(GovernorTest, CancelMidJoin) {
  CheckCancelMidStream(
      "SELECT o_orderkey, l_extendedprice FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey");
}

TEST_F(GovernorTest, CancelMidAggregate) {
  CheckCancelMidStream(
      "SELECT l_orderkey, SUM(l_extendedprice) AS s, COUNT(*) AS n "
      "FROM lineitem GROUP BY l_orderkey");
}

TEST_F(GovernorTest, CancelMidSort) {
  CheckCancelMidStream(
      "SELECT * FROM lineitem ORDER BY l_extendedprice, l_orderkey");
}

TEST_F(GovernorTest, CancelMidLimitedPipeline) {
  CheckCancelMidStream(
      "SELECT o_orderkey, l_extendedprice FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey LIMIT 1000000");
}

TEST_F(GovernorTest, DeadlineExceededMidQuery) {
  PlanNodePtr plan = Plan("SELECT * FROM lineitem ORDER BY l_extendedprice");
  GovernedRun full = Run(*plan, QueryLimits{}, ExecMode::kRow);
  ASSERT_TRUE(full.status.ok());
  const double dur = full.ledger_delta.busy_s + full.ledger_delta.io_s +
                     full.ledger_delta.idle_s;
  ASSERT_GT(dur, 0.0);

  QueryLimits limits;
  limits.deadline_seconds = dur / 2;
  GovernedRun row = Run(*plan, limits, ExecMode::kRow);
  GovernedRun batch = Run(*plan, limits, ExecMode::kBatch);
  EXPECT_TRUE(row.status.IsDeadlineExceeded()) << row.status.ToString();
  EXPECT_TRUE(batch.status.IsDeadlineExceeded()) << batch.status.ToString();
  ExpectLedgerSane(row);
  ExpectLedgerSane(batch);
  // The killed run charged less simulated time than the full one.
  const double row_dur = row.ledger_delta.busy_s + row.ledger_delta.io_s +
                         row.ledger_delta.idle_s;
  EXPECT_LT(row_dur, dur);
}

TEST_F(GovernorTest, MemoryBudgetExceededInBothModes) {
  // Sort of the full lineitem table peaks in the megabytes; a 256 KiB
  // budget must kill it in both modes with the same status.
  PlanNodePtr plan = Plan("SELECT * FROM lineitem ORDER BY l_extendedprice");
  QueryLimits limits;
  limits.memory_budget_bytes = 256 * 1024;
  GovernedRun row = Run(*plan, limits, ExecMode::kRow);
  GovernedRun batch = Run(*plan, limits, ExecMode::kBatch);
  EXPECT_TRUE(row.status.IsResourceExhausted()) << row.status.ToString();
  EXPECT_TRUE(batch.status.IsResourceExhausted()) << batch.status.ToString();
  ExpectLedgerSane(row);
  ExpectLedgerSane(batch);
  // A budget above the query's peak does not fire.
  QueryLimits roomy;
  roomy.memory_budget_bytes = 1ull << 30;
  EXPECT_TRUE(Run(*plan, roomy, ExecMode::kBatch).status.ok());
}

TEST_F(GovernorTest, ExternalCancelFlagStopsTheQuery) {
  PlanNodePtr plan = Plan("SELECT COUNT(*) AS n FROM lineitem");
  QueryLimits limits;
  limits.cancel_flag = std::make_shared<std::atomic<bool>>(true);
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
    GovernedRun r = Run(*plan, limits, mode);
    EXPECT_TRUE(r.status.IsCancelled()) << r.status.ToString();
  }
  // Un-set flag: the same limits object no longer cancels.
  limits.cancel_flag->store(false);
  EXPECT_TRUE(Run(*plan, limits, ExecMode::kBatch).status.ok());
}

TEST_F(GovernorTest, PeakMemoryIsReportedAndModeConsistent) {
  PlanNodePtr plan = Plan(
      "SELECT l_orderkey, SUM(l_extendedprice) AS s FROM lineitem "
      "GROUP BY l_orderkey");
  GovernedRun row = Run(*plan, QueryLimits{}, ExecMode::kRow);
  GovernedRun batch = Run(*plan, QueryLimits{}, ExecMode::kBatch);
  ASSERT_TRUE(row.status.ok());
  ASSERT_TRUE(batch.status.ok());
  EXPECT_GT(row.stats.peak_memory_bytes, 0u);
  // Logical-byte accounting is mode-identical by construction.
  EXPECT_EQ(row.stats.peak_memory_bytes, batch.stats.peak_memory_bytes);
}

TEST_F(GovernorTest, DatabaseLevelLimitsApplyAndLift) {
  QueryLimits limits;
  limits.memory_budget_bytes = 64 * 1024;
  db_->set_query_limits(limits);
  auto killed =
      db_->ExecuteSql("SELECT * FROM lineitem ORDER BY l_extendedprice");
  EXPECT_TRUE(killed.status().IsResourceExhausted())
      << killed.status().ToString();
  db_->set_query_limits(QueryLimits{});
  auto ok = db_->ExecuteSql("SELECT COUNT(*) AS n FROM lineitem");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(ok.value().rows()[0][0].AsInt(), 0);
}

// --- Fault injection ---

std::unique_ptr<Database> MakeFaultyDb(double transient, double persistent,
                                       uint64_t seed = 0xFA17) {
  DatabaseOptions opt;
  opt.profile = EngineProfile::Commercial();
  opt.fault_injection.seed = seed;
  opt.fault_injection.transient_fault_rate = transient;
  opt.fault_injection.persistent_fault_rate = persistent;
  auto db = std::make_unique<Database>(opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = testing::kTestSf;
  if (!db->LoadTpch(gen).ok()) return nullptr;
  return db;
}

TEST(FaultInjectionTest, PersistentFaultPropagatesCleanly) {
  auto db = MakeFaultyDb(/*transient=*/0.0, /*persistent=*/1.0);
  ASSERT_NE(db, nullptr);
  auto res = db->ExecuteSql("SELECT COUNT(*) AS n FROM lineitem");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsHardwareFault()) << res.status().ToString();
  EXPECT_GE(db->buffer_pool()->stats().persistent_faults, 1u);
  EXPECT_EQ(db->buffer_pool()->stats().retries, 0u);
}

TEST(FaultInjectionTest, TransientFaultsExhaustRetryBudget) {
  auto db = MakeFaultyDb(/*transient=*/1.0, /*persistent=*/0.0);
  ASSERT_NE(db, nullptr);
  const EnergyLedger before = db->machine()->ledger();
  auto res = db->ExecuteSql("SELECT COUNT(*) AS n FROM lineitem");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsHardwareFault()) << res.status().ToString();
  const BufferPoolStats& st = db->buffer_pool()->stats();
  const int max_retries = db->options().fault_injection.max_retries;
  EXPECT_EQ(st.retries, static_cast<uint64_t>(max_retries));
  EXPECT_EQ(st.transient_faults, static_cast<uint64_t>(max_retries) + 1);
  // The faulted attempts and backoff waits charged real simulated time
  // and energy (reads run to completion before the fault is detected;
  // backoff idles the machine).
  const EnergyLedger& after = db->machine()->ledger();
  EXPECT_GT(after.io_s, before.io_s);
  EXPECT_GT(after.idle_s, before.idle_s);
  EXPECT_GT(after.wall_j, before.wall_j);
}

TEST(FaultInjectionTest, TransientRetriesSucceedAndChargeEnergy) {
  // Moderate transient rate: reads retry and eventually succeed; the
  // same query costs measurably more energy than on a fault-free pool,
  // monotonically in the fault rate.
  const char* kSql = "SELECT COUNT(*) AS n FROM lineitem";
  double prev_joules = -1.0;
  uint64_t prev_retries = 0;
  for (double rate : {0.0, 0.05, 0.2}) {
    SCOPED_TRACE(rate);
    auto db = MakeFaultyDb(rate, /*persistent=*/0.0);
    ASSERT_NE(db, nullptr);
    db->ColdRestart();
    auto res = db->ExecuteSql(kSql);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    const uint64_t retries =
        db->fault_injector() ? db->buffer_pool()->stats().retries : 0;
    EXPECT_GT(res.value().wall_joules, prev_joules);
    EXPECT_GE(retries, prev_retries);
    prev_joules = res.value().wall_joules;
    prev_retries = retries;
  }
}

TEST(FaultInjectionTest, DisabledInjectorLeavesReadPathUntouched) {
  auto plain = testing::MakeTestDb(EngineProfile::Commercial());
  auto zero = MakeFaultyDb(/*transient=*/0.0, /*persistent=*/0.0);
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(zero, nullptr);
  EXPECT_EQ(zero->fault_injector(), nullptr);  // rates of zero => disabled
  plain->ColdRestart();
  zero->ColdRestart();
  auto a = plain->ExecuteSql("SELECT COUNT(*) AS n FROM lineitem");
  auto b = zero->ExecuteSql("SELECT COUNT(*) AS n FROM lineitem");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().wall_joules, b.value().wall_joules);
  EXPECT_EQ(a.value().seconds, b.value().seconds);
}

TEST(FaultInjectionTest, SameSeedSameSchedule) {
  FaultInjectorConfig cfg;
  cfg.seed = 123;
  cfg.transient_fault_rate = 0.1;
  cfg.persistent_fault_rate = 0.01;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextReadOutcome(), b.NextReadOutcome()) << i;
  }
  EXPECT_EQ(a.decisions(), 1000u);
  a.Reset();
  b.Reset();
  EXPECT_EQ(a.decisions(), 0u);
  EXPECT_EQ(a.NextReadOutcome(), b.NextReadOutcome());
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/exec/expr.h"

namespace ecodb {
namespace {

Row TestRow() {
  return {Value::Int(10), Value::Dbl(2.5), Value::Str("ASIA"),
          Value::Date(100)};
}

TEST(ExprTest, ColumnAndLiteral) {
  Row row = TestRow();
  EXPECT_EQ(Col(0, ValueType::kInt64, "k")->Eval(row, nullptr).AsInt(), 10);
  EXPECT_EQ(LitStr("x")->Eval(row, nullptr).AsString(), "x");
}

struct CmpCase {
  CompareOp op;
  int64_t lhs;
  int64_t rhs;
  bool expect;
};

class CompareOpTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(CompareOpTest, EvaluatesCorrectly) {
  const CmpCase& c = GetParam();
  ExprPtr e = Cmp(c.op, LitInt(c.lhs), LitInt(c.rhs));
  EXPECT_EQ(e->Eval({}, nullptr).AsBool(), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, CompareOpTest,
    ::testing::Values(CmpCase{CompareOp::kEq, 3, 3, true},
                      CmpCase{CompareOp::kEq, 3, 4, false},
                      CmpCase{CompareOp::kNe, 3, 4, true},
                      CmpCase{CompareOp::kNe, 3, 3, false},
                      CmpCase{CompareOp::kLt, 3, 4, true},
                      CmpCase{CompareOp::kLt, 4, 3, false},
                      CmpCase{CompareOp::kLt, 3, 3, false},
                      CmpCase{CompareOp::kLe, 3, 3, true},
                      CmpCase{CompareOp::kGt, 4, 3, true},
                      CmpCase{CompareOp::kGt, 3, 3, false},
                      CmpCase{CompareOp::kGe, 3, 3, true},
                      CmpCase{CompareOp::kGe, 2, 3, false}));

TEST(ExprTest, ArithmeticIntAndDouble) {
  EXPECT_EQ(Arith(ArithOp::kAdd, LitInt(2), LitInt(3))->Eval({}, nullptr).AsInt(), 5);
  EXPECT_EQ(Arith(ArithOp::kMul, LitInt(2), LitInt(3))->Eval({}, nullptr).AsInt(), 6);
  EXPECT_DOUBLE_EQ(
      Arith(ArithOp::kMul, LitDbl(1.5), LitInt(4))->Eval({}, nullptr).AsDouble(),
      6.0);
  EXPECT_DOUBLE_EQ(
      Arith(ArithOp::kSub, LitDbl(1.0), LitDbl(0.25))->Eval({}, nullptr).AsDouble(),
      0.75);
  // Division by zero yields NULL, not a crash.
  EXPECT_TRUE(
      Arith(ArithOp::kDiv, LitInt(1), LitInt(0))->Eval({}, nullptr).is_null());
}

TEST(ExprTest, Q5RevenueExpression) {
  // l_extendedprice * (1 - l_discount), the paper workload's aggregate arg.
  Row row{Value::Dbl(1000.0), Value::Dbl(0.1)};
  ExprPtr rev = Arith(ArithOp::kMul, Col(0, ValueType::kDouble, "p"),
                      Arith(ArithOp::kSub, LitDbl(1.0),
                            Col(1, ValueType::kDouble, "d")));
  EXPECT_DOUBLE_EQ(rev->Eval(row, nullptr).AsDouble(), 900.0);
}

TEST(ExprTest, AndOrNotSemantics) {
  ExprPtr t = Lit(Value::Bool(true));
  ExprPtr f = Lit(Value::Bool(false));
  EXPECT_FALSE(And({t, f, t})->Eval({}, nullptr).AsBool());
  EXPECT_TRUE(And({t, t})->Eval({}, nullptr).AsBool());
  EXPECT_TRUE(Or({f, f, t})->Eval({}, nullptr).AsBool());
  EXPECT_FALSE(Or({f, f})->Eval({}, nullptr).AsBool());
  EXPECT_TRUE(Not(f)->Eval({}, nullptr).AsBool());
}

TEST(ExprTest, OrShortCircuitCountsLazily) {
  // The comparison count must reflect early termination — the property
  // QED's merged-OR cost model rests on.
  Row row{Value::Int(7)};
  ExprPtr col = Col(0, ValueType::kInt64, "q");
  std::vector<ExprPtr> disjuncts;
  for (int v = 1; v <= 10; ++v) disjuncts.push_back(Eq(col, LitInt(v)));
  ExprPtr ten_or = Or(disjuncts);

  EvalCounters c;
  EXPECT_TRUE(ten_or->Eval(row, &c).AsBool());
  EXPECT_EQ(c.comparisons, 7u);  // stops at the matching 7th disjunct

  Row miss{Value::Int(99)};
  c = EvalCounters();
  EXPECT_FALSE(ten_or->Eval(miss, &c).AsBool());
  EXPECT_EQ(c.comparisons, 10u);  // full scan on a non-match
}

TEST(ExprTest, AndShortCircuits) {
  Row row{Value::Int(7)};
  ExprPtr col = Col(0, ValueType::kInt64, "q");
  EvalCounters c;
  ExprPtr e = And({Eq(col, LitInt(1)), Eq(col, LitInt(7))});
  EXPECT_FALSE(e->Eval(row, &c).AsBool());
  EXPECT_EQ(c.comparisons, 1u);
}

TEST(ExprTest, BetweenInclusive) {
  ExprPtr col = Col(0, ValueType::kInt64, "q");
  ExprPtr e = Between(col, LitInt(5), LitInt(10));
  EXPECT_TRUE(e->Eval({Value::Int(5)}, nullptr).AsBool());
  EXPECT_TRUE(e->Eval({Value::Int(10)}, nullptr).AsBool());
  EXPECT_FALSE(e->Eval({Value::Int(4)}, nullptr).AsBool());
  EXPECT_FALSE(e->Eval({Value::Int(11)}, nullptr).AsBool());
}

class InListEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(InListEquivalenceTest, HashedAndLinearAgree) {
  // Property: the two IN evaluation strategies are semantically identical
  // (they differ only in charged cost).
  int n = GetParam();
  std::vector<Value> values;
  for (int i = 0; i < n; ++i) values.push_back(Value::Int(i * 3));
  ExprPtr col = Col(0, ValueType::kInt64, "q");
  ExprPtr linear = InList(col, values, /*hashed=*/false);
  ExprPtr hashed = InList(col, values, /*hashed=*/true);
  for (int64_t probe = -2; probe < 3 * n + 2; ++probe) {
    Row row{Value::Int(probe)};
    EXPECT_EQ(linear->Eval(row, nullptr).AsBool(),
              hashed->Eval(row, nullptr).AsBool())
        << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, InListEquivalenceTest,
                         ::testing::Values(1, 2, 5, 16, 50));

TEST(ExprTest, HashedInListChargesOneComparison) {
  std::vector<Value> values;
  for (int i = 0; i < 50; ++i) values.push_back(Value::Int(i));
  ExprPtr col = Col(0, ValueType::kInt64, "q");
  ExprPtr hashed = InList(col, values, true);
  EvalCounters c;
  hashed->Eval({Value::Int(49)}, &c);
  EXPECT_EQ(c.comparisons, 1u);
  ExprPtr linear = InList(col, values, false);
  c = EvalCounters();
  linear->Eval({Value::Int(49)}, &c);
  EXPECT_EQ(c.comparisons, 50u);
}

// EvalBatch must reproduce the scalar path's lazy operation counts
// exactly — AND/OR short-circuit and IN-list early exit are what give the
// QED merged-disjunction cost curve (Figure 6) its shape.
TEST(ExprTest, EvalBatchMatchesScalarCountsAndValues) {
  RowBatch batch;
  batch.Reset(2);
  for (int i = 0; i < 200; ++i) {
    batch.AppendRow({Value::Int(i % 23), Value::Str("s" + std::to_string(i % 7))});
  }
  ExprPtr k = Col(0, ValueType::kInt64, "k");
  ExprPtr s = Col(1, ValueType::kString, "s");
  std::vector<Value> in_vals;
  for (int i = 0; i < 5; ++i) in_vals.push_back(Value::Str("s" + std::to_string(i)));
  std::vector<ExprPtr> exprs = {
      Cmp(CompareOp::kLt, k, LitInt(11)),
      Arith(ArithOp::kMul, k, LitInt(3)),
      And({Cmp(CompareOp::kGe, k, LitInt(5)), Eq(s, LitStr("s2"))}),
      Or({Eq(s, LitStr("s0")), Eq(s, LitStr("s4")),
          Cmp(CompareOp::kGt, k, LitInt(20))}),
      Between(k, LitInt(3), LitInt(17)),
      InList(s, in_vals, /*hashed=*/false),
      InList(s, in_vals, /*hashed=*/true),
      Not(Eq(s, LitStr("s1"))),
  };
  for (const ExprPtr& e : exprs) {
    SCOPED_TRACE(e->ToString());
    EvalCounters scalar_c;
    std::vector<Value> scalar_vals(batch.num_rows());
    Row row;
    for (uint32_t r : batch.sel()) {
      batch.MaterializeRow(r, &row);
      scalar_vals[r] = e->Eval(row, &scalar_c);
    }
    EvalCounters batch_c;
    std::vector<Value> batch_vals;
    e->EvalBatch(batch, batch.sel(), &batch_vals, &batch_c);
    EXPECT_EQ(scalar_c.comparisons, batch_c.comparisons);
    EXPECT_EQ(scalar_c.arith_ops, batch_c.arith_ops);
    ASSERT_EQ(batch_vals.size(), batch.num_rows());
    for (uint32_t r : batch.sel()) {
      EXPECT_EQ(scalar_vals[r].ToString(), batch_vals[r].ToString())
          << "row " << r;
    }
  }
}

TEST(ExprTest, EvalBatchRespectsSelectionSubset) {
  RowBatch batch;
  batch.Reset(1);
  for (int i = 0; i < 10; ++i) batch.AppendRow({Value::Int(i)});
  // Evaluate over the even rows only; counts scale with the subset.
  std::vector<uint32_t> subset = {0, 2, 4, 6, 8};
  ExprPtr e = Cmp(CompareOp::kLt, Col(0, ValueType::kInt64, "k"), LitInt(5));
  EvalCounters c;
  std::vector<Value> vals;
  e->EvalBatch(batch, subset, &vals, &c);
  EXPECT_EQ(c.comparisons, subset.size());
  EXPECT_TRUE(vals[4].AsBool());
  EXPECT_FALSE(vals[6].AsBool());
}

TEST(ExprTest, NullComparisonsAreFalse) {
  ExprPtr e = Eq(Lit(Value::Null()), LitInt(1));
  EXPECT_FALSE(e->Eval({}, nullptr).AsBool());
}

TEST(ExprTest, ToStringIsReadable) {
  ExprPtr e = And({Eq(Col(0, ValueType::kString, "r_name"), LitStr("ASIA")),
                   Cmp(CompareOp::kLt, Col(1, ValueType::kInt64, "q"),
                       LitInt(24))});
  EXPECT_EQ(e->ToString(), "((r_name = 'ASIA') AND (q < 24))");
}

TEST(ExprTest, CollectColumnsFindsAllReferences) {
  ExprPtr e = And({Eq(Col(3, ValueType::kInt64, "a"), LitInt(1)),
                   Between(Col(7, ValueType::kInt64, "b"), LitInt(0),
                           Col(2, ValueType::kInt64, "c"))});
  std::vector<int> cols;
  e->CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  EXPECT_EQ(cols, (std::vector<int>{2, 3, 7}));
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/sim/machine.h"

namespace ecodb {
namespace {

TEST(MachineTest, ExecuteCpuAdvancesClockByCyclesOverFrequency) {
  Machine m(MachineConfig::PaperTestbed());
  double f = m.cpu_model().TopFrequencyHz();
  m.ExecuteCpu(f, 0);  // one second of pure compute
  EXPECT_NEAR(m.NowSeconds(), 1.0, 1e-9);
  EXPECT_NEAR(m.ledger().busy_s, 1.0, 1e-9);
}

TEST(MachineTest, UnderclockSlowsCompute) {
  Machine m(MachineConfig::PaperTestbed());
  double cycles = m.cpu_model().TopFrequencyHz();
  double t_stock = m.PredictExecuteSeconds(cycles, 0);
  ASSERT_TRUE(m.ApplySettings({0.10, VoltageDowngrade::kStock}).ok());
  double t_uc = m.PredictExecuteSeconds(cycles, 0);
  EXPECT_NEAR(t_uc / t_stock, 1.0 / 0.9, 1e-9);
}

TEST(MachineTest, MemoryStallsDoNotScaleFullyWithFsb) {
  // DRAM core latency is fixed in nanoseconds, so a memory-heavy burst
  // slows down less than 1/f under underclocking (the Figure 1 mechanism).
  Machine m(MachineConfig::PaperTestbed());
  double t_stock = m.PredictExecuteSeconds(1e6, 1e6);
  ASSERT_TRUE(m.ApplySettings({0.10, VoltageDowngrade::kStock}).ok());
  double t_uc = m.PredictExecuteSeconds(1e6, 1e6);
  EXPECT_GT(t_uc, t_stock);
  EXPECT_LT(t_uc / t_stock, 1.0 / 0.9);
}

TEST(MachineTest, StallHeavyBurstDrawsLessCpuPower) {
  Machine m(MachineConfig::PaperTestbed());
  double p_compute = m.PredictExecutePowerW(1e9, 0);
  double p_stalled = m.PredictExecutePowerW(1e6, 1e6);
  EXPECT_LT(p_stalled, p_compute);
}

TEST(MachineTest, EnergyLedgerAccumulatesAllComponents) {
  Machine m(MachineConfig::PaperTestbed());
  m.ExecuteCpu(1e9, 1e4);
  ASSERT_TRUE(m.DiskRead(1 << 20, 10, false).ok());
  m.Idle(0.5);
  const EnergyLedger& l = m.ledger();
  EXPECT_GT(l.cpu_j, 0);
  EXPECT_GT(l.mem_j, 0);
  EXPECT_GT(l.DiskJ(), 0);
  EXPECT_GT(l.mobo_j, 0);
  EXPECT_GT(l.gpu_j, 0);
  EXPECT_GT(l.fan_j, 0);
  // Wall energy exceeds DC energy (PSU losses), which exceeds any part.
  EXPECT_GT(l.wall_j, l.dc_j);
  EXPECT_GT(l.dc_j, l.cpu_j);
  EXPECT_NEAR(l.ElapsedS(), m.NowSeconds(), 1e-9);
}

TEST(MachineTest, DcEnergyIsSumOfComponents) {
  Machine m(MachineConfig::PaperTestbed());
  m.ExecuteCpu(5e8, 1e3);
  m.Idle(0.1);
  const EnergyLedger& l = m.ledger();
  double sum = l.cpu_j + l.fan_j + l.mem_j + l.disk_5v_j + l.disk_12v_j +
               l.mobo_j + l.gpu_j;
  EXPECT_NEAR(l.dc_j, sum, 1e-6 * sum);
}

TEST(MachineTest, CpuIdlesDuringDiskIo) {
  // Section 3.5: during the cold run "the CPU may remain idle for extended
  // periods" -> low CPU watts while blocked on I/O.
  Machine m(MachineConfig::PaperTestbed());
  ASSERT_TRUE(m.DiskRead(100 << 20, 1000, true).ok());
  double io_s = m.ledger().io_s;
  ASSERT_GT(io_s, 1.0);
  double cpu_w = m.ledger().cpu_j / io_s;
  EXPECT_LT(cpu_w, 8.0);  // EIST idle, not busy (~26 W)
}

TEST(MachineTest, ResetMetersZeroesLedgerButNotClock) {
  Machine m(MachineConfig::PaperTestbed());
  m.Idle(1.0);
  double now = m.NowSeconds();
  m.ResetMeters();
  EXPECT_EQ(m.ledger().cpu_j, 0);
  EXPECT_EQ(m.NowSeconds(), now);
}

TEST(MachineTest, RejectsUnstableSettings) {
  Machine m(MachineConfig::PaperTestbed());
  Status st = m.ApplySettings({0.05, VoltageDowngrade::kAggressive});
  EXPECT_TRUE(st.IsUnstableSettings());
  // Settings unchanged after rejection.
  EXPECT_TRUE(m.settings() == SystemSettings::Stock());
}

TEST(MachineTest, DiskFaultInjection) {
  Machine m(MachineConfig::PaperTestbed());
  m.InjectDiskFaultAfterRequests(5);
  EXPECT_TRUE(m.DiskRead(4096, 3, false).ok());
  Status st = m.DiskRead(4096, 10, false);
  EXPECT_TRUE(st.IsHardwareFault());
  // Faults persist until cleared.
  EXPECT_TRUE(m.DiskRead(4096, 1, false).IsHardwareFault());
  m.ClearFaults();
  EXPECT_TRUE(m.DiskRead(4096, 1, false).ok());
}

TEST(MachineTest, DiskReadWithoutDiskFails) {
  MachineConfig cfg = MachineConfig::PaperTestbed();
  cfg.has_disk = false;
  Machine m(cfg);
  EXPECT_TRUE(m.DiskRead(4096, 1, false).IsInvalidArgument());
}

TEST(MachineTest, IdleWallPowerAboveIdleDcPower) {
  Machine m(MachineConfig::PaperTestbed());
  EXPECT_GT(m.IdleWallPowerW(), m.IdleDcPowerW());
  EXPECT_GT(m.IdleDcPowerW(), 0);
}

TEST(MachineTest, VoltageDowngradeCutsBusyPowerRoughlyQuadratically) {
  Machine m(MachineConfig::PaperTestbed());
  m.SetLoadClass(LoadClass::kSustained);
  double p0 = m.BusyCpuPowerW();
  ASSERT_TRUE(m.ApplySettings({0.0, VoltageDowngrade::kMedium}).ok());
  double p1 = m.BusyCpuPowerW();
  double v_ratio = 0.98 / 1.10;
  EXPECT_NEAR(p1 / p0, v_ratio * v_ratio, 0.01);
}

TEST(MachineTest, CoreLedgersAreIsolatedFromSharedAccount) {
  Machine m(MachineConfig::PaperTestbed());
  ASSERT_EQ(m.num_cores(), 2);
  double t0 = m.NowSeconds();
  EnergyLedger before = m.ledger();
  m.AccrueCoreWork(0, 5e9, 1e6, LoadClass::kSustained);
  m.AccrueCoreWork(1, 2.5e9, 5e5, LoadClass::kSustained);
  // The concurrency view fills; the shared clock and parity ledger do not
  // move (the coordinator's replay is what charges those).
  EXPECT_EQ(m.NowSeconds(), t0);
  EXPECT_EQ(m.ledger().cpu_j, before.cpu_j);
  const auto& cores = m.core_ledgers();
  EXPECT_GT(cores[0].busy_s, cores[1].busy_s);
  EXPECT_GT(cores[0].cpu_j, 0.0);
  EXPECT_GT(cores[1].mem_j, 0.0);
  EXPECT_EQ(cores[0].cycles, 5e9);
  m.ResetCoreLedgers();
  EXPECT_EQ(m.core_ledgers()[0].cycles, 0.0);
}

TEST(MachineTest, PerCoreSettingsShapeOnlyThatCore) {
  Machine m(MachineConfig::PaperTestbed());
  ASSERT_TRUE(m.ApplyCoreSettings(1, {0.15, VoltageDowngrade::kMedium}).ok());
  // Core 0 keeps stock speed; core 1 runs slower and at lower voltage.
  EXPECT_GT(m.core_model(0).TopFrequencyHz(),
            m.core_model(1).TopFrequencyHz());
  m.AccrueCoreWork(0, 1e9, 0, LoadClass::kSustained);
  m.AccrueCoreWork(1, 1e9, 0, LoadClass::kSustained);
  const auto& cores = m.core_ledgers();
  EXPECT_LT(cores[0].busy_s, cores[1].busy_s);  // same work, slower core
  EXPECT_GT(cores[0].cpu_j / cores[0].busy_s,
            cores[1].cpu_j / cores[1].busy_s);  // but lower power draw
  // Out-of-range and unstable per-core settings are rejected.
  EXPECT_TRUE(
      m.ApplyCoreSettings(7, SystemSettings::Stock()).IsInvalidArgument());
  EXPECT_TRUE(m.ApplyCoreSettings(0, {0.0, VoltageDowngrade::kAggressive})
                  .IsUnstableSettings());
}

TEST(MachineTest, CorePhaseSummaryRaceToIdleVsSlowAndWide) {
  // The paper's single-core tradeoff, lifted to cores: finish fast at
  // stock and idle-fill, or stretch both cores at a lower operating
  // point. The summary must show the slow-and-wide phase taking longer
  // but spending less total energy on this sustained workload.
  const double cycles = 2e10, lines = 4e6;
  Machine fast(MachineConfig::PaperTestbed());
  fast.AccrueCoreWork(0, cycles, lines, LoadClass::kSustained);
  fast.AccrueCoreWork(1, cycles / 2, lines / 2, LoadClass::kSustained);
  ParallelPhaseSummary f = fast.SummarizeCorePhase();

  Machine slow(MachineConfig::PaperTestbed());
  ASSERT_TRUE(slow.ApplySettings({0.15, VoltageDowngrade::kMedium}).ok());
  slow.AccrueCoreWork(0, cycles, lines, LoadClass::kSustained);
  slow.AccrueCoreWork(1, cycles / 2, lines / 2, LoadClass::kSustained);
  ParallelPhaseSummary s = slow.SummarizeCorePhase();

  EXPECT_GT(f.makespan_s, 0.0);
  EXPECT_GT(s.makespan_s, f.makespan_s);
  EXPECT_LT(s.core_cpu_j, f.core_cpu_j);
  // The uneven schedule leaves the lighter core idling to the makespan.
  EXPECT_GT(f.idle_fill_j, 0.0);
  EXPECT_GT(f.background_j, 0.0);
  EXPECT_NEAR(f.dc_j,
              f.core_cpu_j + f.core_mem_j + f.idle_fill_j + f.background_j,
              1e-9);
  EXPECT_GT(f.wall_j, f.dc_j);  // PSU losses
  // Accrual is deterministic: same work, same summary, bit for bit.
  Machine again(MachineConfig::PaperTestbed());
  again.AccrueCoreWork(0, cycles, lines, LoadClass::kSustained);
  again.AccrueCoreWork(1, cycles / 2, lines / 2, LoadClass::kSustained);
  ParallelPhaseSummary g = again.SummarizeCorePhase();
  EXPECT_EQ(f.makespan_s, g.makespan_s);
  EXPECT_EQ(f.wall_j, g.wall_j);
}

TEST(MachineTest, ContentionInflatesMemoryBoundBursts) {
  // Demanding far more bandwidth than the bus sustains must inflate the
  // stall time (queueing), not silently exceed the physical bandwidth.
  Machine m(MachineConfig::PaperTestbed());
  double lines = 1e7;
  auto b = m.PredictExecuteBreakdown(1e3, lines);
  double bytes = lines * 64.0;
  double min_time = bytes / m.memory_model().BandwidthBps();
  EXPECT_GT(b.stall_s, min_time);
}

}  // namespace
}  // namespace ecodb

// Seeded scheduler fuzz: random (arrival rate x fault rate x class mix
// x loop kind) configurations of the workload scheduler must always
// terminate with a clean report — every query reaches a terminal
// outcome, the conservation identities hold, statuses come only from
// the scheduler's taxonomy, and re-running the same seed reproduces the
// report bit-for-bit (including latency tails and energy).
//
// Knobs (env):
//   ECODB_SCHEDFUZZ_ITERS  fuzz configurations       (default 12)
//   ECODB_SCHEDFUZZ_SEED   base seed                 (default 0x5C4ED)
//   ECODB_SCHEDFUZZ_SF     TPC-H scale factor        (default 0.002)

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ecodb/core/scheduler.h"
#include "ecodb/ecodb.h"
#include "ecodb/util/rng.h"
#include "test_util.h"

namespace ecodb {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  if (const char* s = std::getenv(name)) return std::strtoull(s, nullptr, 0);
  return def;
}

double EnvDouble(const char* name, double def) {
  if (const char* s = std::getenv(name)) return std::strtod(s, nullptr);
  return def;
}

struct FuzzConfig {
  uint64_t seed = 0;
  double arrival_qps = 0;
  bool closed_loop = false;
  int num_clients = 0;
  double transient_rate = 0;
  double persistent_rate = 0;
  int num_queries = 0;
  double selection_fraction = 0;
  int num_classes = 1;
  int worker_slots = 1;
  size_t queue_depth = 4;
};

FuzzConfig DrawConfig(Rng* rng, uint64_t seed) {
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.arrival_qps = rng->UniformDouble(10.0, 2000.0);
  cfg.closed_loop = rng->Bernoulli(0.3);
  cfg.num_clients = static_cast<int>(rng->UniformInt(1, 6));
  const int fault_kind = static_cast<int>(rng->NextBelow(4));
  cfg.transient_rate = fault_kind == 1 || fault_kind == 3
                           ? rng->UniformDouble(1e-4, 2e-2)
                           : 0.0;
  cfg.persistent_rate =
      fault_kind >= 2 ? rng->UniformDouble(1e-4, 5e-3) : 0.0;
  cfg.num_queries = static_cast<int>(rng->UniformInt(8, 32));
  cfg.selection_fraction = rng->UniformDouble(0.0, 1.0);
  cfg.num_classes = static_cast<int>(rng->UniformInt(1, 3));
  cfg.worker_slots = static_cast<int>(rng->UniformInt(1, 4));
  cfg.queue_depth = static_cast<size_t>(rng->UniformInt(2, 12));
  return cfg;
}

SchedulerOptions OptionsFor(const FuzzConfig& cfg) {
  SchedulerOptions opt;
  opt.seed = cfg.seed;
  opt.worker_slots = cfg.worker_slots;
  opt.max_queue_depth = cfg.queue_depth;
  opt.keep_rows = false;
  for (int c = 0; c < cfg.num_classes; ++c) {
    SchedulerClass cls;
    cls.name = "class" + std::to_string(c);
    // Class 1 gets a deadline (loose enough that light loads pass, tight
    // enough that overload trips it); class 2 a memory budget.
    if (c == 1) cls.sla.max_seconds = 5.0;
    if (c == 2) cls.memory_budget_bytes = 512 * 1024;
    cls.retry_budget = c;  // 0, 1, 2: exercise the no-retry path too
    opt.classes.push_back(cls);
  }
  return opt;
}

/// Statuses the scheduler is allowed to leave behind.
bool IsCleanTerminalStatus(const Status& st) {
  return st.ok() || st.IsUnavailable() || st.IsHardwareFault() ||
         st.IsDeadlineExceeded() || st.IsResourceExhausted();
}

struct RunDigest {
  uint64_t completed, failed, sheds, rejected, retries, merged, opens;
  double p50, p99, wall_j;
  std::vector<int> codes;
  std::vector<double> latencies;

  bool operator==(const RunDigest& o) const {
    return completed == o.completed && failed == o.failed &&
           sheds == o.sheds && rejected == o.rejected &&
           retries == o.retries && merged == o.merged && opens == o.opens &&
           p50 == o.p50 && p99 == o.p99 && wall_j == o.wall_j &&
           codes == o.codes && latencies == o.latencies;
  }
};

RunDigest Digest(const ScheduleReport& r) {
  RunDigest d{r.completed,
              r.failed,
              r.shed_queue_full + r.shed_projected_wait,
              r.breaker_rejected,
              r.retries,
              r.merged_batches,
              r.breaker_opens,
              r.p50_latency_s,
              r.p99_latency_s,
              r.total_wall_j,
              {},
              {}};
  for (const QueryOutcome& out : r.outcomes) {
    d.codes.push_back(static_cast<int>(out.status.code()));
    d.latencies.push_back(out.latency_seconds);
  }
  return d;
}

Result<ScheduleReport> RunOnce(const FuzzConfig& cfg, double sf) {
  DatabaseOptions dopt;
  dopt.profile = EngineProfile::Commercial();
  dopt.profile.buffer_pool_pages = 64;  // thrash: faults fire per disk read
  dopt.fault_injection.seed = cfg.seed ^ 0xFA17;
  dopt.fault_injection.transient_fault_rate = cfg.transient_rate;
  dopt.fault_injection.persistent_fault_rate = cfg.persistent_rate;
  dopt.fault_injection.max_retries = 1;  // escalate fast: scheduler retries
  auto db = std::make_unique<Database>(dopt);
  tpch::DbGenOptions gen;
  gen.scale_factor = sf;
  ECODB_RETURN_NOT_OK(db->LoadTpch(gen));
  db->ColdRestart();  // injected fault rates only fire on real disk reads

  ECODB_ASSIGN_OR_RETURN(
      tpch::Workload wl,
      tpch::MakeSchedulerMixWorkload(*db->catalog(), cfg.num_queries,
                                     cfg.seed, cfg.selection_fraction));
  auto specs =
      WorkloadScheduler::SpecsFromWorkload(wl, cfg.num_classes);
  WorkloadScheduler sched(db.get(), OptionsFor(cfg));
  ArrivalProcess arrivals =
      cfg.closed_loop
          ? ArrivalProcess::ClosedLoop(cfg.num_clients, /*think_s=*/0.005)
          : ArrivalProcess::OpenLoop(cfg.arrival_qps);
  return sched.Run(specs, arrivals);
}

TEST(SchedulerFuzzTest, RandomConfigsTerminateCleanlyAndReproduce) {
  const uint64_t iters = EnvU64("ECODB_SCHEDFUZZ_ITERS", 12);
  const uint64_t base = EnvU64("ECODB_SCHEDFUZZ_SEED", 0x5C4ED);
  const double sf = EnvDouble("ECODB_SCHEDFUZZ_SF", testing::kTestSf);

  Rng meta(base);
  for (uint64_t it = 0; it < iters; ++it) {
    const FuzzConfig cfg = DrawConfig(&meta, base + it * 7919);
    SCOPED_TRACE("iter " + std::to_string(it) + " seed " +
                 std::to_string(cfg.seed) +
                 (cfg.closed_loop ? " closed" : " open"));

    auto first = RunOnce(cfg, sf);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    const ScheduleReport& r = first.value();

    // Every query terminal, conservation holds.
    ASSERT_EQ(r.outcomes.size(), static_cast<size_t>(cfg.num_queries));
    EXPECT_EQ(r.submitted, static_cast<uint64_t>(cfg.num_queries));
    EXPECT_EQ(r.submitted, r.admitted + r.shed_queue_full +
                               r.shed_projected_wait + r.breaker_rejected);
    EXPECT_EQ(r.admitted, r.completed + r.failed);
    EXPECT_EQ(r.sheds_below_max_level, 0u);

    for (size_t i = 0; i < r.outcomes.size(); ++i) {
      const QueryOutcome& out = r.outcomes[i];
      EXPECT_TRUE(IsCleanTerminalStatus(out.status))
          << i << ": " << out.status.ToString();
      if (out.status.ok()) {
        EXPECT_GE(out.attempts, 1) << i;
        EXPECT_GE(out.latency_seconds, 0.0) << i;
      }
      if (out.status.IsUnavailable()) {
        EXPECT_EQ(out.attempts, 0) << i;
      }
    }

    // Same seed, bit-identical replay (fresh database and all).
    auto second = RunOnce(cfg, sf);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_TRUE(Digest(r) == Digest(second.value())) << "nondeterministic";
  }
}

}  // namespace
}  // namespace ecodb

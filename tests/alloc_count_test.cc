// Heap-allocation regression test for the vectorized hot path.
//
// The scratch-buffer work (ExprScratch, operator-owned probe/match
// vectors, typed lanes with retained capacity) exists so that steady-state
// batch execution allocates O(operators), not O(batches x expression
// nodes). This test pins that property the only way that can't regress
// silently: it counts global operator-new calls during query execution at
// two data sizes ~8x apart and asserts the difference stays far below one
// allocation per batch-node. Structures that legitimately grow with data
// (hash-table slots, result rows, first-batch capacity) are covered by
// the generous-but-sublinear slack.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "ecodb/ecodb.h"
#include "test_util.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ecodb {
namespace {

/// scan(lineitem) -> filter -> group-by aggregate with an arithmetic SUM:
/// the ROADMAP's hot pipeline, touching the filter fast path, typed
/// double subtrees, group-key views and the agg hash table.
Result<PlanNodePtr> BuildScanFilterAgg(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  auto col = [&](const char* name) {
    int idx = s.FindField(name);
    EXPECT_GE(idx, 0) << name;
    return Col(idx, s.field(idx).type, name);
  };
  ExprPtr qty = col("l_quantity");
  ExprPtr price = col("l_extendedprice");
  ExprPtr disc = col("l_discount");
  ExprPtr flag = col("l_returnflag");
  PlanNodePtr filtered =
      MakeFilter(std::move(scan), Cmp(CompareOp::kLt, qty, LitInt(25)));
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.arg =
      Arith(ArithOp::kMul, price, Arith(ArithOp::kSub, LitDbl(1.0), disc));
  revenue.name = "revenue";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  return MakeAggregate(std::move(filtered), {flag}, {revenue, cnt});
}

uint64_t CountQueryAllocations(Database* db, const PlanNode& plan) {
  // Warm once (first-touch capacity growth, buffer-pool state), then
  // measure a steady-state execution.
  EXPECT_TRUE(db->ExecutePlanQuery(plan).ok());
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  auto res = db->ExecutePlanQuery(plan);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_TRUE(res.ok());
  return after - before;
}

/// scan(lineitem) -> project(l_orderkey, revenue): a result-heavy plan
/// (every input row reaches the ResultSet) over numeric columns, pinning
/// the columnar result-append path: AppendBatch must not allocate per
/// batch or per row beyond geometric column growth — no boxed Row (one
/// heap vector per tuple) is ever built.
Result<PlanNodePtr> BuildProjectAll(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  auto col = [&](const char* name) {
    int idx = s.FindField(name);
    EXPECT_GE(idx, 0) << name;
    return Col(idx, s.field(idx).type, name);
  };
  std::vector<ExprPtr> exprs;
  exprs.push_back(col("l_orderkey"));
  exprs.push_back(Arith(ArithOp::kMul, col("l_extendedprice"),
                        Arith(ArithOp::kSub, LitDbl(1.0), col("l_discount"))));
  return MakeProject(std::move(scan), std::move(exprs),
                     {"l_orderkey", "revenue"});
}

/// Shared small-vs-large scaffold: runs `builder`'s plan at two data
/// sizes ~8x apart and asserts the allocation count is flat up to
/// geometric column growth — no per-batch, per-row or per-string
/// allocation in steady state (and nowhere near the one-Row-per-tuple
/// of the boxed drain).
void ExpectSublinearAllocs(const char* what,
                           Result<PlanNodePtr> (*builder)(const Catalog&)) {
  auto small_db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.002);
  auto large_db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.016);
  ASSERT_NE(small_db, nullptr);
  ASSERT_NE(large_db, nullptr);

  auto small_plan = builder(*small_db->catalog());
  auto large_plan = builder(*large_db->catalog());
  ASSERT_TRUE(small_plan.ok());
  ASSERT_TRUE(large_plan.ok());

  const uint64_t small_allocs =
      CountQueryAllocations(small_db.get(), *small_plan.value());
  const uint64_t large_allocs =
      CountQueryAllocations(large_db.get(), *large_plan.value());

  const uint64_t small_rows =
      small_db->catalog()->FindEntry("lineitem")->table->num_rows();
  const uint64_t large_rows =
      large_db->catalog()->FindEntry("lineitem")->table->num_rows();
  const uint64_t extra_batches =
      (large_rows - small_rows) / RowBatch::kDefaultBatchRows;
  ASSERT_GE(extra_batches, 40u) << "test tables too close in size";

  std::printf("%s allocations: small=%llu large=%llu (+%llu batches)\n",
              what, static_cast<unsigned long long>(small_allocs),
              static_cast<unsigned long long>(large_allocs),
              static_cast<unsigned long long>(extra_batches));

  EXPECT_LE(large_allocs, small_allocs + extra_batches / 2)
      << "small=" << small_allocs << " large=" << large_allocs
      << " extra_batches=" << extra_batches;
  EXPECT_LE(large_allocs, 600u) << "large=" << large_allocs;
}

TEST(AllocCountTest, ResultSetAppendAllocatesOnlyForColumnGrowth) {
  ExpectSublinearAllocs("result-append", &BuildProjectAll);
}

/// scan(lineitem) -> project(l_orderkey, l_shipinstruct, l_shipmode):
/// a result-heavy plan whose string columns reach the ResultSet through
/// the arena-handoff / table-borrow path. Before PR 5 every string was
/// copied into the result's arena (one heap string + deque growth per
/// row); now the result stores pointers into table storage, so ~8x the
/// rows may only add geometric pointer-array growth.
Result<PlanNodePtr> BuildProjectStrings(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  auto col = [&](const char* name) {
    int idx = s.FindField(name);
    EXPECT_GE(idx, 0) << name;
    return Col(idx, s.field(idx).type, name);
  };
  std::vector<ExprPtr> exprs;
  exprs.push_back(col("l_orderkey"));
  exprs.push_back(col("l_shipinstruct"));
  exprs.push_back(col("l_shipmode"));
  return MakeProject(std::move(scan), std::move(exprs),
                     {"l_orderkey", "l_shipinstruct", "l_shipmode"});
}

/// scan(lineitem) -> group by (l_shipmode, l_returnflag) -> SUM/COUNT:
/// low-cardinality string group keys. Pins the columnar HashAgg emission
/// (typed result columns, no boxed result Rows) plus the ResultSet
/// adopting the aggregate's emitted lanes by arena handoff.
Result<PlanNodePtr> BuildGroupByStrings(const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr scan, MakeScan(catalog, "lineitem"));
  const Schema& s = scan->output_schema;
  auto col = [&](const char* name) {
    int idx = s.FindField(name);
    EXPECT_GE(idx, 0) << name;
    return Col(idx, s.field(idx).type, name);
  };
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = col("l_quantity");
  sum.name = "qty";
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  return MakeAggregate(std::move(scan),
                       {col("l_shipmode"), col("l_returnflag")}, {sum, cnt});
}

TEST(AllocCountTest, ResultSetStringHandoffAllocatesOnlyForColumnGrowth) {
  ExpectSublinearAllocs("string-handoff", &BuildProjectStrings);
}

TEST(AllocCountTest, HashAggTypedEmissionAllocatesOnlyForColumnGrowth) {
  ExpectSublinearAllocs("agg-emission", &BuildGroupByStrings);
}

TEST(AllocCountTest, ScanFilterAggAllocationsScaleWithOperatorsNotBatches) {
  auto small_db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.002);
  auto large_db = testing::MakeTestDb(EngineProfile::MySqlMemory(), 0.016);
  ASSERT_NE(small_db, nullptr);
  ASSERT_NE(large_db, nullptr);

  auto small_plan = BuildScanFilterAgg(*small_db->catalog());
  auto large_plan = BuildScanFilterAgg(*large_db->catalog());
  ASSERT_TRUE(small_plan.ok());
  ASSERT_TRUE(large_plan.ok());

  const uint64_t small_allocs =
      CountQueryAllocations(small_db.get(), *small_plan.value());
  const uint64_t large_allocs =
      CountQueryAllocations(large_db.get(), *large_plan.value());

  const uint64_t small_rows =
      small_db->catalog()->FindEntry("lineitem")->table->num_rows();
  const uint64_t large_rows =
      large_db->catalog()->FindEntry("lineitem")->table->num_rows();
  const uint64_t extra_batches =
      (large_rows - small_rows) / RowBatch::kDefaultBatchRows;
  ASSERT_GE(extra_batches, 40u) << "test tables too close in size";

  RecordProperty("small_allocs", static_cast<int>(small_allocs));
  RecordProperty("large_allocs", static_cast<int>(large_allocs));
  std::printf("steady-state allocations: small=%llu large=%llu (+%llu batches)\n",
              static_cast<unsigned long long>(small_allocs),
              static_cast<unsigned long long>(large_allocs),
              static_cast<unsigned long long>(extra_batches));

  // O(operators): ~8x the data (and ~8x the batches) must not add even
  // one allocation per extra batch. Before the scratch-buffer work this
  // pipeline allocated ~8 vectors per batch (EvalDoubleSubtree
  // temporaries, operand storage, pending sets), i.e. hundreds more.
  EXPECT_LE(large_allocs, small_allocs + extra_batches / 2)
      << "small=" << small_allocs << " large=" << large_allocs
      << " extra_batches=" << extra_batches;

  // Absolute sanity: a steady-state execution of a 4-operator pipeline
  // should sit in the low hundreds of allocations total (plan
  // instantiation, per-query operator state, a handful of result rows).
  EXPECT_LE(large_allocs, 600u) << "large=" << large_allocs;
}

}  // namespace
}  // namespace ecodb

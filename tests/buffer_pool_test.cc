#include <gtest/gtest.h>

#include "ecodb/storage/buffer_pool.h"

namespace ecodb {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : machine_(MachineConfig::PaperTestbed()) {}
  Machine machine_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(&machine_, 16);
  PageId p{1, 0};
  ASSERT_TRUE(pool.FetchPage(p, AccessHint::kSequential).ok());
  EXPECT_EQ(pool.stats().misses, 1u);
  ASSERT_TRUE(pool.FetchPage(p, AccessHint::kSequential).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_TRUE(pool.Contains(p));
}

TEST_F(BufferPoolTest, MissChargesSimulatedDiskTime) {
  BufferPool pool(&machine_, 16);
  double t0 = machine_.NowSeconds();
  ASSERT_TRUE(pool.FetchPage({1, 0}, AccessHint::kRandom).ok());
  double t_random = machine_.NowSeconds() - t0;
  EXPECT_GT(t_random, 0.01);  // ~12.5 ms positioning
  t0 = machine_.NowSeconds();
  ASSERT_TRUE(pool.FetchPage({1, 1}, AccessHint::kSequential).ok());
  double t_seq = machine_.NowSeconds() - t0;
  EXPECT_LT(t_seq, t_random / 10);
  // A hit charges no time at all.
  t0 = machine_.NowSeconds();
  ASSERT_TRUE(pool.FetchPage({1, 1}, AccessHint::kSequential).ok());
  EXPECT_EQ(machine_.NowSeconds(), t0);
}

TEST_F(BufferPoolTest, LruEvictionOrder) {
  BufferPool pool(&machine_, 3);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.FetchPage({1, i}, AccessHint::kSequential).ok());
  }
  // Touch page 0 so page 1 becomes LRU.
  ASSERT_TRUE(pool.FetchPage({1, 0}, AccessHint::kSequential).ok());
  ASSERT_TRUE(pool.FetchPage({1, 3}, AccessHint::kSequential).ok());
  EXPECT_TRUE(pool.Contains({1, 0}));
  EXPECT_FALSE(pool.Contains({1, 1}));  // evicted
  EXPECT_TRUE(pool.Contains({1, 2}));
  EXPECT_TRUE(pool.Contains({1, 3}));
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST_F(BufferPoolTest, CapacityNeverExceeded) {
  BufferPool pool(&machine_, 8);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.FetchPage({1, i}, AccessHint::kSequential).ok());
    EXPECT_LE(pool.resident_pages(), 8u);
  }
}

TEST_F(BufferPoolTest, ZeroCapacityMeansUnbounded) {
  BufferPool pool(&machine_, 0);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(pool.FetchPage({1, i}, AccessHint::kSequential).ok());
  }
  EXPECT_EQ(pool.resident_pages(), 500u);
  EXPECT_EQ(pool.stats().evictions, 0u);
}

TEST_F(BufferPoolTest, EvictAllModelsColdRestart) {
  BufferPool pool(&machine_, 16);
  ASSERT_TRUE(pool.FetchPage({1, 0}, AccessHint::kSequential).ok());
  pool.EvictAll();
  EXPECT_FALSE(pool.Contains({1, 0}));
  EXPECT_EQ(pool.resident_pages(), 0u);
  ASSERT_TRUE(pool.FetchPage({1, 0}, AccessHint::kSequential).ok());
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, FetchRangeBatchesMisses) {
  BufferPool pool(&machine_, 64);
  ASSERT_TRUE(pool.FetchPage({1, 3}, AccessHint::kSequential).ok());
  double t0 = machine_.NowSeconds();
  ASSERT_TRUE(pool.FetchRange(1, 0, 10, AccessHint::kSequential).ok());
  double dt = machine_.NowSeconds() - t0;
  // 9 misses, 1 hit; one positioning for the whole run (readahead).
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(pool.Contains({1, i}));
  DiskModel disk(DiskConfig::WdCaviarSe16());
  DiskOpCost expect = disk.ReadCost(9 * kPageSizeBytes, 9, false);
  EXPECT_NEAR(dt, expect.total_s, 1e-9);
}

TEST_F(BufferPoolTest, RandomVsSequentialMissCounters) {
  BufferPool pool(&machine_, 16);
  ASSERT_TRUE(pool.FetchPage({1, 0}, AccessHint::kRandom).ok());
  ASSERT_TRUE(pool.FetchPage({1, 1}, AccessHint::kSequential).ok());
  EXPECT_EQ(pool.stats().random_misses, 1u);
  EXPECT_EQ(pool.stats().sequential_misses, 1u);
  EXPECT_DOUBLE_EQ(pool.stats().HitRate(), 0.0);
}

TEST_F(BufferPoolTest, DiskFaultPropagates) {
  BufferPool pool(&machine_, 16);
  machine_.InjectDiskFaultAfterRequests(0);
  Status st = pool.FetchPage({1, 0}, AccessHint::kSequential);
  EXPECT_TRUE(st.IsHardwareFault());
  EXPECT_FALSE(pool.Contains({1, 0}));  // failed page not admitted
}

}  // namespace
}  // namespace ecodb

// Differential robustness fuzz: random plans under random governor
// limits (charged-cycle cancellation, simulated-time deadlines, tiny
// memory budgets) and random disk-fault schedules must always yield a
// clean Status — never a crash, never a leak (the ASan configuration
// enforces that), never a mode-dependent verdict: for every seed the
// row-mode and batch-mode runs must report the SAME status, and a
// re-run of the same seed must reproduce it.
//
// Knobs (env):
//   ECODB_GOVFUZZ_PLANS        governed seeds          (default 480)
//   ECODB_GOVFUZZ_FAULT_PLANS  fault-schedule seeds    (default 120)
//   ECODB_GOVFUZZ_SEED         base seed               (default 0x90BE12)

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>

#include "ecodb/ecodb.h"
#include "plan_fuzzer.h"
#include "test_util.h"

namespace ecodb {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  if (const char* s = std::getenv(name)) return std::strtoull(s, nullptr, 0);
  return def;
}

Status RunGoverned(Database* db, const PlanNode& plan,
                   const QueryLimits& limits, ExecMode mode) {
  auto ctx = db->MakeExecContext();
  std::unique_ptr<QueryGovernor> gov;
  if (!limits.None()) {
    gov = std::make_unique<QueryGovernor>(limits,
                                          db->machine()->NowSeconds());
    ctx->set_governor(gov.get());
  }
  auto res = ExecutePlanColumnar(plan, ctx.get(), mode);
  ctx->Flush();
  return res.status();
}

bool IsCleanGovernedStatus(const Status& st) {
  return st.ok() || st.IsCancelled() || st.IsDeadlineExceeded() ||
         st.IsResourceExhausted();
}

class GovernorFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions opt;
    opt.profile = EngineProfile::MySqlMemory();
    db_ = new Database(opt);
    tpch::DbGenOptions gen;
    gen.scale_factor = testing::kTestSf;
    ASSERT_TRUE(db_->LoadTpch(gen).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* GovernorFuzzTest::db_ = nullptr;

TEST_F(GovernorFuzzTest, GovernedPlansAlwaysYieldACleanModeAgnosticStatus) {
  const uint64_t base = EnvU64("ECODB_GOVFUZZ_SEED", 0x90BE12);
  const uint64_t n = EnvU64("ECODB_GOVFUZZ_PLANS", 480);
  uint64_t n_cancelled = 0, n_deadline = 0, n_exhausted = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("govfuzz seed " + std::to_string(seed) +
                 " (rerun with ECODB_GOVFUZZ_SEED=" + std::to_string(seed) +
                 " ECODB_GOVFUZZ_PLANS=1)");
    testing::PlanFuzzer fuzzer(seed, *db_->catalog());
    PlanNodePtr plan = fuzzer.Generate();
    ASSERT_NE(plan, nullptr);

    // Axis and trigger values are a deterministic function of the seed.
    std::mt19937_64 rng(~seed);
    QueryLimits limits;
    switch (i % 4) {
      case 0:
        break;  // ungoverned baseline: must succeed
      case 1:
        limits.cancel_at_charged_cycles = std::uniform_real_distribution<>(
            1e6, 8e7)(rng);
        break;
      case 2: {
        // Deadline at a fraction of the plan's own duration, measured
        // first: the fraction stays clear of 1.0, where the 0.1%
        // cross-mode time tolerance could make the verdict mode-
        // dependent. Fractions > 1 (no trip) are covered by the margin
        // added for sub-quantum plans, which never trip at all.
        const double frac = std::uniform_real_distribution<>(0.1, 0.9)(rng);
        EnergyLedger before = db_->machine()->ledger();
        Status full = RunGoverned(db_, *plan, QueryLimits{}, ExecMode::kRow);
        ASSERT_TRUE(full.ok()) << full.ToString();
        EnergyLedger after = db_->machine()->ledger();
        const double dur = after.ElapsedS() - before.ElapsedS();
        limits.deadline_seconds = std::max(dur * frac, 1e-12);
        break;
      }
      default:
        limits.memory_budget_bytes =
            std::uniform_int_distribution<uint64_t>(1024, 4u << 20)(rng);
        break;
    }

    Status row = RunGoverned(db_, *plan, limits, ExecMode::kRow);
    Status batch = RunGoverned(db_, *plan, limits, ExecMode::kBatch);
    EXPECT_TRUE(IsCleanGovernedStatus(row)) << row.ToString();
    EXPECT_TRUE(IsCleanGovernedStatus(batch)) << batch.ToString();
    ASSERT_EQ(row.code(), batch.code())
        << "row: " << row.ToString() << " batch: " << batch.ToString();
    if (i % 4 == 0) {
      ASSERT_TRUE(row.ok()) << row.ToString();
    }
    // Determinism: the same seed reproduces the same verdict.
    Status again = RunGoverned(db_, *plan, limits, ExecMode::kBatch);
    ASSERT_EQ(batch.code(), again.code())
        << "batch: " << batch.ToString() << " again: " << again.ToString();
    n_cancelled += row.IsCancelled();
    n_deadline += row.IsDeadlineExceeded();
    n_exhausted += row.IsResourceExhausted();
    if (::testing::Test::HasFatalFailure()) return;
  }
  if (n >= 100) {
    // The harness only proves anything if the governor actually fires.
    EXPECT_GT(n_cancelled, 0u);
    EXPECT_GT(n_deadline, 0u);
    EXPECT_GT(n_exhausted, 0u);
  }
}

std::unique_ptr<Database> MakeFaultyDb(ExecMode mode, uint64_t seed) {
  DatabaseOptions opt;
  opt.profile = EngineProfile::Commercial();
  opt.exec_mode = mode;
  opt.fault_injection.seed = seed;
  opt.fault_injection.transient_fault_rate = 0.004;
  opt.fault_injection.persistent_fault_rate = 0.0004;
  auto db = std::make_unique<Database>(opt);
  tpch::DbGenOptions gen;
  gen.scale_factor = testing::kTestSf;
  if (!db->LoadTpch(gen).ok()) return nullptr;
  return db;
}

TEST(GovernorFaultFuzzTest, FaultSchedulesAreModeAgnosticAndDeterministic) {
  const uint64_t base = EnvU64("ECODB_GOVFUZZ_SEED", 0x90BE12);
  const uint64_t n = EnvU64("ECODB_GOVFUZZ_FAULT_PLANS", 120);
  auto row_db = MakeFaultyDb(ExecMode::kRow, base);
  auto batch_db = MakeFaultyDb(ExecMode::kBatch, base);
  ASSERT_NE(row_db, nullptr);
  ASSERT_NE(batch_db, nullptr);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t seed = base + i;
    SCOPED_TRACE("faultfuzz seed " + std::to_string(seed));
    testing::PlanFuzzer fuzzer(seed, *row_db->catalog());
    PlanNodePtr plan = fuzzer.Generate();
    ASSERT_NE(plan, nullptr);
    row_db->ColdRestart();
    batch_db->ColdRestart();
    auto row = row_db->ExecutePlanQuery(*plan);
    auto batch = batch_db->ExecutePlanQuery(*plan);
    EXPECT_TRUE(row.ok() || row.status().IsHardwareFault())
        << row.status().ToString();
    ASSERT_EQ(row.status().code(), batch.status().code())
        << "row: " << row.status().ToString()
        << " batch: " << batch.status().ToString();
    // Both modes issue the identical page-read sequence, so the two
    // injectors must stay in lockstep query after query — the strongest
    // form of per-seed determinism.
    ASSERT_EQ(row_db->fault_injector()->decisions(),
              batch_db->fault_injector()->decisions());
    if (row.ok()) {
      ASSERT_EQ(row.value().num_rows(), batch.value().num_rows());
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(GovernorFaultFuzzTest, SameSeedSameVerdictOnFreshDatabases) {
  const uint64_t base = EnvU64("ECODB_GOVFUZZ_SEED", 0x90BE12);
  std::string first, second;
  for (int round = 0; round < 2; ++round) {
    auto db = MakeFaultyDb(ExecMode::kBatch, base + 7);
    ASSERT_NE(db, nullptr);
    std::string verdicts;
    for (uint64_t i = 0; i < 10; ++i) {
      testing::PlanFuzzer fuzzer(base + i, *db->catalog());
      PlanNodePtr plan = fuzzer.Generate();
      db->ColdRestart();
      auto res = db->ExecutePlanQuery(*plan);
      verdicts += StatusCodeName(res.status().code());
      verdicts += ';';
    }
    (round == 0 ? first : second) = verdicts;
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ecodb

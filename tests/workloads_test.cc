// tpch/workloads.h: generator bounds, determinism, plan validity, and
// the merge-key contract the workload scheduler's QED batching relies
// on.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "ecodb/ecodb.h"
#include "test_util.h"

namespace ecodb {
namespace {

class WorkloadsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = testing::MakeTestDb().release();
    ASSERT_NE(db_, nullptr);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* WorkloadsTest::db_ = nullptr;

TEST_F(WorkloadsTest, SelectionWorkloadBoundsChecked) {
  EXPECT_FALSE(tpch::MakeSelectionWorkload(*db_->catalog(), 0, 1).ok());
  EXPECT_FALSE(tpch::MakeSelectionWorkload(*db_->catalog(), -3, 1).ok());
  EXPECT_FALSE(tpch::MakeSelectionWorkload(*db_->catalog(), 51, 1).ok());
  EXPECT_TRUE(tpch::MakeSelectionWorkload(*db_->catalog(), 50, 1).ok());
}

TEST_F(WorkloadsTest, SelectionWorkloadDistinctValuesAndDeterminism) {
  auto w1 = tpch::MakeSelectionWorkload(*db_->catalog(), 20, 0xABC);
  auto w2 = tpch::MakeSelectionWorkload(*db_->catalog(), 20, 0xABC);
  auto w3 = tpch::MakeSelectionWorkload(*db_->catalog(), 20, 0xDEF);
  ASSERT_TRUE(w1.ok() && w2.ok() && w3.ok());
  ASSERT_EQ(w1.value().queries.size(), 20u);
  ASSERT_EQ(w1.value().selection_values.size(), 20u);
  ASSERT_EQ(w1.value().merge_keys.size(), 20u);

  std::set<int64_t> seen;
  for (size_t i = 0; i < 20; ++i) {
    const int64_t v = w1.value().selection_values[i];
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
    EXPECT_TRUE(seen.insert(v).second) << "duplicate value " << v;
    // Selections are QED-mergeable: merge key == predicate literal.
    EXPECT_EQ(w1.value().merge_keys[i], v);
  }
  EXPECT_EQ(w1.value().selection_values, w2.value().selection_values);
  EXPECT_NE(w1.value().selection_values, w3.value().selection_values);
}

TEST_F(WorkloadsTest, AllGeneratorsProduceValidPlans) {
  auto q5 = tpch::MakeQ5Workload(*db_->catalog());
  ASSERT_TRUE(q5.ok()) << q5.status().ToString();
  EXPECT_EQ(q5.value().queries.size(), 10u);

  auto mixed = tpch::MakeMixedWorkload(*db_->catalog());
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_EQ(mixed.value().queries.size(), 4u);

  auto sel = tpch::MakeSelectionWorkload(*db_->catalog(), 10, 7);
  ASSERT_TRUE(sel.ok());

  auto mix = tpch::MakeSchedulerMixWorkload(*db_->catalog(), 30, 7);
  ASSERT_TRUE(mix.ok()) << mix.status().ToString();

  for (const auto* w : {&q5.value(), &mixed.value(), &sel.value(),
                        &mix.value()}) {
    for (const auto& plan : w->queries) {
      Status st = ValidatePlan(*plan);
      EXPECT_TRUE(st.ok()) << w->name << ": " << st.ToString();
    }
  }
}

TEST_F(WorkloadsTest, SchedulerMixHonorsFractionAndTagsMergeables) {
  auto mix = tpch::MakeSchedulerMixWorkload(*db_->catalog(), 100, 0x5EED,
                                            /*selection_fraction=*/0.7);
  ASSERT_TRUE(mix.ok());
  const tpch::Workload& w = mix.value();
  ASSERT_EQ(w.queries.size(), 100u);
  ASSERT_EQ(w.merge_keys.size(), 100u);
  ASSERT_EQ(w.selection_values.size(), 100u);

  int mergeable = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (w.merge_keys[i] >= 0) {
      ++mergeable;
      EXPECT_GE(w.merge_keys[i], 1);
      EXPECT_LE(w.merge_keys[i], 50);
      EXPECT_EQ(w.merge_keys[i], w.selection_values[i]);
    } else {
      EXPECT_EQ(w.merge_keys[i], tpch::kNotMergeable);
    }
  }
  // Bernoulli(0.7) over 100 draws: generous 3-sigma-ish band.
  EXPECT_GE(mergeable, 50);
  EXPECT_LE(mergeable, 90);

  // Same seed, same stream.
  auto again = tpch::MakeSchedulerMixWorkload(*db_->catalog(), 100, 0x5EED);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().merge_keys, w.merge_keys);
  EXPECT_EQ(again.value().selection_values, w.selection_values);
}

TEST_F(WorkloadsTest, SchedulerMixRejectsBadArguments) {
  EXPECT_FALSE(tpch::MakeSchedulerMixWorkload(*db_->catalog(), 0, 1).ok());
  EXPECT_FALSE(
      tpch::MakeSchedulerMixWorkload(*db_->catalog(), 10, 1, -0.1).ok());
  EXPECT_FALSE(
      tpch::MakeSchedulerMixWorkload(*db_->catalog(), 10, 1, 1.5).ok());
}

// The merged-selection contract: mergeable entries really can be merged
// and split back, as long as keys are distinct.
TEST_F(WorkloadsTest, MergeableEntriesSatisfyMergeContract) {
  auto sel = tpch::MakeSelectionWorkload(*db_->catalog(), 5, 0x11);
  ASSERT_TRUE(sel.ok());
  std::vector<const PlanNode*> members;
  for (const auto& q : sel.value().queries) members.push_back(q.get());
  auto merged = MergeSelections(members);
  EXPECT_TRUE(merged.ok()) << merged.status().ToString();
}

}  // namespace
}  // namespace ecodb

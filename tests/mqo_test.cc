#include <gtest/gtest.h>

#include "ecodb/optimizer/mqo.h"
#include "ecodb/tpch/queries.h"
#include "ecodb/tpch/workloads.h"
#include "test_util.h"

namespace ecodb {
namespace {

class MqoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTestDb();
    ASSERT_NE(db_, nullptr);
  }

  std::vector<PlanNodePtr> MakeBatch(std::vector<int64_t> values) {
    std::vector<PlanNodePtr> out;
    for (int64_t v : values) {
      out.push_back(tpch::BuildSelectionQuery(*db_->catalog(), v).value());
    }
    return out;
  }

  static std::vector<const PlanNode*> Ptrs(
      const std::vector<PlanNodePtr>& batch) {
    std::vector<const PlanNode*> out;
    for (const auto& p : batch) out.push_back(p.get());
    return out;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(MqoTest, MergesEqualitySelectionsIntoDisjunction) {
  auto batch = MakeBatch({3, 17, 42});
  auto merged = MergeSelections(Ptrs(batch));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().member_predicates.size(), 3u);
  EXPECT_EQ(merged.value().split_values.size(), 3u);
  EXPECT_GE(merged.value().split_column, 0);
  // The merged filter is an OR over the members.
  const PlanNode& filter = *merged.value().plan->children[0];
  ASSERT_EQ(filter.kind, PlanKind::kFilter);
  EXPECT_EQ(filter.predicate->kind(), ExprKind::kLogical);
}

TEST_F(MqoTest, HashedVariantUsesInList) {
  auto batch = MakeBatch({3, 17, 42});
  auto merged = MergeSelections(Ptrs(batch), /*hashed_in_list=*/true);
  ASSERT_TRUE(merged.ok());
  const PlanNode& filter = *merged.value().plan->children[0];
  EXPECT_EQ(filter.predicate->kind(), ExprKind::kInList);
}

TEST_F(MqoTest, RejectsEmptyAndMalformedBatches) {
  EXPECT_FALSE(MergeSelections({}).ok());
  // A join query is not mergeable.
  auto q5 = tpch::BuildQ5Plan(*db_->catalog(), tpch::Q5Params{});
  ASSERT_TRUE(q5.ok());
  std::vector<const PlanNode*> bad{q5.value().get()};
  EXPECT_FALSE(MergeSelections(bad).ok());
}

TEST_F(MqoTest, RejectsMixedColumns) {
  // Build one plan filtering a different column by hand.
  auto a = tpch::BuildSelectionQuery(*db_->catalog(), 5).value();
  auto scan = MakeScan(*db_->catalog(), "lineitem").value();
  int ln = scan->output_schema.FindField("l_linenumber");
  ExprPtr pred = Eq(Col(ln, ValueType::kInt64, "l_linenumber"), LitInt(1));
  auto filter = MakeFilter(std::move(scan), pred);
  int ok = filter->output_schema.FindField("l_orderkey");
  auto b = MakeProject(std::move(filter),
                       {Col(ok, ValueType::kInt64, "l_orderkey")},
                       {"l_orderkey"});
  std::vector<const PlanNode*> mixed{a.get(), b.get()};
  EXPECT_FALSE(MergeSelections(mixed).ok());
}

class SplitCorrectnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitCorrectnessTest, SplitResultsEqualSequentialResults) {
  // Property (any batch size): running the batch sequentially and running
  // the merged query + split produce identical per-query results — QED
  // must not change answers (Section 4).
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  int n = GetParam();
  auto wl = tpch::MakeSelectionWorkload(*db->catalog(), n, 99).value();

  std::vector<const PlanNode*> members;
  for (const auto& q : wl.queries) members.push_back(q.get());
  auto merged = MergeSelections(members);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  auto ctx = db->MakeExecContext();
  auto merged_rows = ExecutePlan(*merged.value().plan, ctx.get());
  ASSERT_TRUE(merged_rows.ok());
  auto split =
      SplitMergedResult(merged.value(), merged_rows.value(), ctx.get());
  ASSERT_EQ(split.size(), static_cast<size_t>(n));

  size_t total = 0;
  for (int i = 0; i < n; ++i) {
    auto seq = db->ExecutePlanQuery(*wl.queries[static_cast<size_t>(i)]);
    ASSERT_TRUE(seq.ok());
    const auto& expect = seq.value().rows();
    const auto& got = split[static_cast<size_t>(i)];
    ASSERT_EQ(got.size(), expect.size()) << "query " << i;
    for (size_t r = 0; r < got.size(); ++r) {
      for (size_t c = 0; c < got[r].size(); ++c) {
        EXPECT_EQ(got[r][c].Compare(expect[r][c]), 0);
      }
    }
    total += got.size();
  }
  EXPECT_EQ(total, merged_rows.value().size());  // no row lost or duplicated
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, SplitCorrectnessTest,
                         ::testing::Values(1, 2, 5, 20, 35, 50));

class SharedAggTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedAggTest, SharedScanEqualsSequentialAggregation) {
  // Property: a shared-scan batch of Q6-shaped aggregates produces the
  // same answers as running each query alone (the QED generalization).
  auto db = testing::MakeTestDb();
  ASSERT_NE(db, nullptr);
  int n = GetParam();
  std::vector<PlanNodePtr> plans;
  for (int i = 0; i < n; ++i) {
    tpch::Q6Params p;
    p.quantity = 10 + 5 * i;  // different predicates per member
    p.discount = 0.02 + 0.01 * i;
    plans.push_back(tpch::BuildQ6Plan(*db->catalog(), p).value());
  }
  std::vector<const PlanNode*> members;
  for (const auto& p : plans) members.push_back(p.get());
  auto batch = AnalyzeSharedAggBatch(members);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  auto ctx = db->MakeExecContext();
  auto shared = RunSharedScanAggregates(batch.value(), ctx.get());
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  ASSERT_EQ(shared.value().size(), static_cast<size_t>(n));

  for (int i = 0; i < n; ++i) {
    auto seq = db->ExecutePlanQuery(*plans[static_cast<size_t>(i)]);
    ASSERT_TRUE(seq.ok());
    const auto& got = shared.value()[static_cast<size_t>(i)];
    ASSERT_EQ(got.size(), seq.value().rows().size());
    for (size_t c = 0; c < got[0].size(); ++c) {
      EXPECT_EQ(got[0][c].Compare(seq.value().rows()[0][c]), 0) << "query " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, SharedAggTest,
                         ::testing::Values(1, 2, 4, 7));

TEST_F(MqoTest, SharedAggSavesEnergyVersusSequential) {
  std::vector<PlanNodePtr> plans;
  for (int i = 0; i < 5; ++i) {
    tpch::Q6Params p;
    p.quantity = 10 + 5 * i;
    plans.push_back(tpch::BuildQ6Plan(*db_->catalog(), p).value());
  }
  Machine* machine = db_->machine();
  machine->ResetMeters();
  for (const auto& p : plans) ASSERT_TRUE(db_->ExecutePlanQuery(*p).ok());
  double seq_j = machine->ledger().cpu_j;

  std::vector<const PlanNode*> members;
  for (const auto& p : plans) members.push_back(p.get());
  auto batch = AnalyzeSharedAggBatch(members);
  ASSERT_TRUE(batch.ok());
  machine->ResetMeters();
  auto ctx = db_->MakeExecContext();
  ASSERT_TRUE(RunSharedScanAggregates(batch.value(), ctx.get()).ok());
  double shared_j = machine->ledger().cpu_j;
  EXPECT_LT(shared_j, 0.6 * seq_j);  // one scan instead of five
}

TEST_F(MqoTest, SharedAggRejectsGroupByAndJoins) {
  auto q1 = tpch::BuildQ1Plan(*db_->catalog(), "1998-09-02").value();
  // Q1 root is a Sort over a grouped aggregate -> rejected.
  std::vector<const PlanNode*> bad{q1.get()};
  EXPECT_FALSE(AnalyzeSharedAggBatch(bad).ok());
  // Mixed tables rejected: Q6 (lineitem) + a fabricated orders aggregate.
  auto q6 = tpch::BuildQ6Plan(*db_->catalog(), tpch::Q6Params{}).value();
  auto orders_scan = MakeScan(*db_->catalog(), "orders").value();
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  auto orders_agg = MakeAggregate(std::move(orders_scan), {}, {cnt});
  std::vector<const PlanNode*> mixed{q6.get(), orders_agg.get()};
  EXPECT_FALSE(AnalyzeSharedAggBatch(mixed).ok());
}

TEST_F(MqoTest, SplitChargesApplicationCost) {
  auto batch = MakeBatch({1, 2, 3, 4, 5});
  auto merged = MergeSelections(Ptrs(batch));
  ASSERT_TRUE(merged.ok());
  auto ctx = db_->MakeExecContext();
  auto rows = ExecutePlan(*merged.value().plan, ctx.get());
  ASSERT_TRUE(rows.ok());
  double t0 = db_->machine()->NowSeconds();
  SplitMergedResult(merged.value(), rows.value(), ctx.get());
  EXPECT_GT(db_->machine()->NowSeconds(), t0);  // split is not free
}

}  // namespace
}  // namespace ecodb

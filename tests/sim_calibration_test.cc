// Pins the calibration against the paper's published numbers. If one of
// these fails after a constant change, a reproduced table/figure has
// drifted.

#include <gtest/gtest.h>

#include "ecodb/sim/calibration.h"
#include "ecodb/sim/machine.h"

namespace ecodb {
namespace {

// Paper Table 1, wall watts.
struct Table1Row {
  bool has_cpu;
  int dimms;
  bool has_gpu;
  double paper_w;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, WallPowerWithinTwoPercent) {
  const Table1Row& row = GetParam();
  MachineConfig cfg = MachineConfig::PaperTestbed();
  cfg.has_disk = false;   // the paper's breakdown is measured without disk
  cfg.os_running = false; // ... and without an OS (Section 3.2)
  cfg.has_cpu = row.has_cpu;
  cfg.num_dimms = row.dimms;
  cfg.has_gpu = row.has_gpu;
  Machine m(cfg);
  EXPECT_NEAR(m.IdleWallPowerW() / row.paper_w, 1.0, 0.02)
      << "measured " << m.IdleWallPowerW() << " W vs paper " << row.paper_w;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1Test,
    ::testing::Values(Table1Row{false, 0, false, 20.1},   // PSU+MOBO on
                      Table1Row{true, 0, false, 49.7},    // +CPU (and fan)
                      Table1Row{true, 1, false, 54.0},    // +1G RAM
                      Table1Row{true, 2, false, 55.7},    // +2G RAM
                      Table1Row{true, 2, true, 69.3}));   // +GPU

TEST(CalibrationTest, StandbyWallMatchesTable1Row1) {
  Machine m(MachineConfig::PaperTestbed());
  EXPECT_NEAR(m.StandbyWallPowerW(), 9.2, 0.1);
}

TEST(CalibrationTest, DiskIdlePowerMatchesWarmRunAverage) {
  // Warm run: 214.7 J / 48.5 s = 4.43 W, nearly all idle spinning.
  DiskModel disk(DiskConfig::WdCaviarSe16());
  EXPECT_NEAR(disk.IdlePowerW(), 4.25, 0.2);
}

TEST(CalibrationTest, MemoryTwoDimmsDrawAboutSixWatts) {
  // Section 3.2: "DDR3 main memory draws about 6W for 2 DIMMs".
  MemoryModel mem(MemoryConfig::Ddr3_1066(), 2);
  EXPECT_NEAR(mem.BackgroundPowerW(), 5.4, 1.0);
}

TEST(CalibrationTest, SustainedBusyPowerPlausibleForE8500) {
  Machine m(MachineConfig::PaperTestbed());
  m.SetLoadClass(LoadClass::kSustained);
  double p = m.BusyCpuPowerW();
  EXPECT_GT(p, 20.0);
  EXPECT_LT(p, 40.0);  // package, one core busy, below the 65 W TDP
}

TEST(CalibrationTest, MediumDowngradeBurstyPowerRatioGivesMinus49Pct) {
  // Figure 1's headline: -49 % CPU energy at +3 % time means the busy
  // power ratio must be ~0.50/1.03 at the 5 % underclock point.
  Machine m(MachineConfig::PaperTestbed());
  m.SetLoadClass(LoadClass::kBursty);
  double p_stock = m.PredictExecutePowerW(1e9, 2e5);
  ASSERT_TRUE(m.ApplySettings({0.05, VoltageDowngrade::kMedium}).ok());
  double p_a = m.PredictExecutePowerW(1e9, 2e5);
  EXPECT_NEAR(p_a / p_stock, 0.49, 0.06);
}

TEST(CalibrationTest, MySqlTheoreticalEdpMatchesFigure4Scale) {
  // Sustained voltages: V^2/F ratios at medium should span roughly
  // 0.84..0.93 across the 5..15 % underclocks (Figure 4(b) trend).
  CpuModel cpu(CpuConfig::E8500());
  double stock = cpu.TheoreticalEdpFactor(LoadClass::kSustained);
  ASSERT_TRUE(cpu.ApplySettings({0.05, VoltageDowngrade::kMedium}).ok());
  EXPECT_NEAR(cpu.TheoreticalEdpFactor(LoadClass::kSustained) / stock, 0.836,
              0.02);
  ASSERT_TRUE(cpu.ApplySettings({0.15, VoltageDowngrade::kMedium}).ok());
  EXPECT_NEAR(cpu.TheoreticalEdpFactor(LoadClass::kSustained) / stock, 0.934,
              0.02);
}

TEST(CalibrationTest, RandomDiskParametersImplyPaperRatios) {
  // The implied positioning/transfer constants behind Figure 5's ratios.
  EXPECT_NEAR(calib::kDiskRandomPosS, 12.5e-3, 1e-4);
  EXPECT_NEAR(calib::kDiskRandomPosS * calib::kDiskRandRateBps / 1024.0,
              78.1, 1.0);  // positioning ~= 78 KB worth of transfer
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/sim/calibration.h"
#include "ecodb/sim/cpu.h"

namespace ecodb {
namespace {

TEST(CpuModelTest, StockFrequencyIsE8500) {
  CpuModel cpu(CpuConfig::E8500());
  EXPECT_NEAR(cpu.TopFrequencyHz(), 9.5 * 333.333e6, 1e6);
  EXPECT_NEAR(cpu.IdleFrequencyHz(), 6.0 * 333.333e6, 1e6);
  EXPECT_EQ(cpu.num_pstates(), 4);
}

TEST(CpuModelTest, UnderclockScalesAllPStates) {
  // The paper's key distinction: underclocking scales every p-state while
  // retaining all of them (Section 3).
  CpuModel cpu(CpuConfig::E8500());
  std::vector<double> stock;
  for (int i = 0; i < cpu.num_pstates(); ++i) stock.push_back(cpu.FrequencyHz(i));
  ASSERT_TRUE(cpu.ApplySettings({0.10, VoltageDowngrade::kStock}).ok());
  for (int i = 0; i < cpu.num_pstates(); ++i) {
    EXPECT_NEAR(cpu.FrequencyHz(i), stock[static_cast<size_t>(i)] * 0.9, 1.0);
  }
}

TEST(CpuModelTest, PstateCapIsCoarserThanUnderclock) {
  // Paper example: capping the multiplier at 7 drops 3 GHz to 2.3 GHz —
  // a 23 % step, vs the 5 % steps underclocking provides.
  CpuModel cpu(CpuConfig::E8500());
  double capped = cpu.PstateCapFrequencyHz(7.0);
  EXPECT_NEAR(capped, 7.0 * 333.333e6, 1e6);
  ASSERT_TRUE(cpu.ApplySettings({0.05, VoltageDowngrade::kStock}).ok());
  EXPECT_GT(cpu.TopFrequencyHz(), capped);
}

TEST(CpuModelTest, PowerFollowsCV2F) {
  CpuModel cpu(CpuConfig::E8500());
  double p_stock = cpu.BusyPowerW(LoadClass::kSustained);
  ASSERT_TRUE(cpu.ApplySettings({0.10, VoltageDowngrade::kStock}).ok());
  double p_uc = cpu.BusyPowerW(LoadClass::kSustained);
  // Same voltage, 10 % lower F: dynamic part drops 10 %, uncore constant.
  double v = cpu.LoadVoltage(LoadClass::kSustained);
  double uncore = cpu.config().uncore_k * v * v;
  EXPECT_NEAR((p_uc - uncore) / (p_stock - uncore), 0.9, 1e-6);
}

TEST(CpuModelTest, DowngradeReducesVoltageAndPower) {
  CpuModel cpu(CpuConfig::E8500());
  double p_stock = cpu.BusyPowerW(LoadClass::kBursty);
  ASSERT_TRUE(cpu.ApplySettings({0.0, VoltageDowngrade::kMedium}).ok());
  EXPECT_LT(cpu.LoadVoltage(LoadClass::kBursty), 1.2625);
  EXPECT_LT(cpu.BusyPowerW(LoadClass::kBursty), p_stock);
}

TEST(CpuModelTest, StallAndIdlePowerOrdering) {
  CpuModel cpu(CpuConfig::E8500());
  EXPECT_LT(cpu.IdlePowerW(), cpu.StallPowerW(LoadClass::kSustained));
  EXPECT_LT(cpu.StallPowerW(LoadClass::kSustained),
            cpu.BusyPowerW(LoadClass::kSustained));
}

TEST(CpuModelTest, TheoreticalEdpRisesWithUnderclockAtFixedVoltage) {
  // Section 3.4: with V fixed, EDP ~ V^2/F rises as F falls — why
  // underclocking beyond 5 % worsens EDP.
  CpuModel cpu(CpuConfig::E8500());
  double prev = 0;
  for (double uc : {0.0, 0.05, 0.10, 0.15}) {
    ASSERT_TRUE(cpu.ApplySettings({uc, VoltageDowngrade::kMedium}).ok());
    double edp = cpu.TheoreticalEdpFactor(LoadClass::kSustained);
    EXPECT_GT(edp, prev);
    prev = edp;
  }
}

TEST(CpuModelTest, MediumDowngradeLowersTheoreticalEdp) {
  CpuModel cpu(CpuConfig::E8500());
  ASSERT_TRUE(cpu.ApplySettings({0.05, VoltageDowngrade::kStock}).ok());
  double stock_v = cpu.TheoreticalEdpFactor(LoadClass::kSustained);
  ASSERT_TRUE(cpu.ApplySettings({0.05, VoltageDowngrade::kMedium}).ok());
  EXPECT_LT(cpu.TheoreticalEdpFactor(LoadClass::kSustained), stock_v);
}

TEST(CpuModelTest, RejectsOutOfRangeUnderclock) {
  CpuModel cpu(CpuConfig::E8500());
  EXPECT_TRUE(cpu.ApplySettings({-0.01, VoltageDowngrade::kStock})
                  .IsInvalidArgument());
  EXPECT_TRUE(cpu.ApplySettings({0.5, VoltageDowngrade::kStock})
                  .IsInvalidArgument());
}

struct StabilityCase {
  double underclock;
  VoltageDowngrade downgrade;
  bool stable;
};

class StabilityTest : public ::testing::TestWithParam<StabilityCase> {};

TEST_P(StabilityTest, MatchesPcProbeExpectation) {
  // Paper Section 3.3: small and medium downgrades ran with no PC Probe II
  // warnings at all tested underclocks; our aggressive level must trip.
  const StabilityCase& c = GetParam();
  Status st = CpuModel::CheckStability(CpuConfig::E8500(),
                                       {c.underclock, c.downgrade});
  EXPECT_EQ(st.ok(), c.stable) << st.ToString();
  if (!st.ok()) EXPECT_TRUE(st.IsUnstableSettings());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StabilityTest,
    ::testing::Values(
        StabilityCase{0.00, VoltageDowngrade::kStock, true},
        StabilityCase{0.05, VoltageDowngrade::kStock, true},
        StabilityCase{0.15, VoltageDowngrade::kStock, true},
        StabilityCase{0.00, VoltageDowngrade::kSmall, true},
        StabilityCase{0.05, VoltageDowngrade::kSmall, true},
        StabilityCase{0.10, VoltageDowngrade::kSmall, true},
        StabilityCase{0.15, VoltageDowngrade::kSmall, true},
        StabilityCase{0.00, VoltageDowngrade::kMedium, true},
        StabilityCase{0.05, VoltageDowngrade::kMedium, true},
        StabilityCase{0.10, VoltageDowngrade::kMedium, true},
        StabilityCase{0.15, VoltageDowngrade::kMedium, true},
        StabilityCase{0.00, VoltageDowngrade::kAggressive, false},
        StabilityCase{0.05, VoltageDowngrade::kAggressive, false},
        StabilityCase{0.15, VoltageDowngrade::kAggressive, false}));

TEST(CpuModelTest, PstateCapComposesWithUnderclock) {
  // Regression: the cap frequency used to be computed against the STOCK
  // FSB, so an underclocked machine reported a cap above what multiplier
  // x effective-FSB can actually realize. The cap lives in multiplier
  // space and must follow FsbHz() like every other frequency accessor.
  CpuModel cpu(CpuConfig::E8500());
  ASSERT_TRUE(cpu.ApplySettings({0.10, VoltageDowngrade::kStock}).ok());
  EXPECT_NEAR(cpu.PstateCapFrequencyHz(7.0), 7.0 * 333.333e6 * 0.9, 1e6);
  // And the capped frequency is a realizable operating point: it never
  // exceeds the machine's own (underclocked) top frequency scaled to the
  // capped multiplier.
  EXPECT_LE(cpu.PstateCapFrequencyHz(9.5), cpu.TopFrequencyHz() + 1.0);
}

TEST(CpuModelTest, StabilityChecksOnlyVisitedOperatingPoints) {
  // Regression: CheckStability used to validate every mid p-state at the
  // IDLE voltage — operating points the EIST model never visits (mid
  // p-states run at load voltage; idle drops to the LOWEST p-state).
  // This config has a mid p-state (12 x 333 MHz = 4 GHz, vmin 0.87 V)
  // that fails at the 0.80 V idle voltage, while both real operating
  // points pass: idle = 6 x 333 MHz = 2 GHz (vmin 0.71 <= 0.80) and top
  // = 16 x 333 MHz = 5.33 GHz (vmin 0.98 <= 1.10 V load). The old check
  // falsely rejected it.
  CpuConfig config = CpuConfig::E8500();
  config.multipliers = {6.0, 12.0, 16.0};
  config.idle_voltage[0] = 0.80;
  EXPECT_TRUE(CpuModel::CheckStability(config,
                                       {0.0, VoltageDowngrade::kStock})
                  .ok());
  // Genuinely unstable idle points are still caught: drop the idle
  // voltage below the lowest p-state's vmin.
  config.idle_voltage[0] = 0.70;
  Status st =
      CpuModel::CheckStability(config, {0.0, VoltageDowngrade::kStock});
  EXPECT_TRUE(st.IsUnstableSettings()) << st.ToString();
}

TEST(SettingsTest, ToStringAndEquality) {
  SystemSettings a{0.05, VoltageDowngrade::kMedium};
  EXPECT_EQ(a.ToString(), "uc=5% medium");
  EXPECT_TRUE(a == (SystemSettings{0.05, VoltageDowngrade::kMedium}));
  EXPECT_FALSE(a == SystemSettings::Stock());
}

}  // namespace
}  // namespace ecodb

// Batch-vs-row execution parity suite.
//
// The vectorized engine must be *indistinguishable* from the Volcano row
// engine in everything the simulation reports: identical result rows (in
// order), identical integer logical-work counters (tuples, comparisons,
// arith ops, hash builds/probes, agg updates, sort compares — these drive
// the paper's Figure 6 cost shapes), and simulated cycles/DRAM/energy
// equal up to floating-point re-association (way inside the 0.1%
// acceptance bound). Every operator and every TPC-H benchmark query is
// exercised, on both the memory-resident and the disk-backed profile.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ecodb/ecodb.h"
#include "test_util.h"

namespace ecodb {
namespace {

// Two tolerance classes. Charged cycles/lines differ between modes only
// by fp re-association (n * x vs x + ... + x): held to 1e-9 relative.
// Machine-level time/energy additionally sees the simulator integrate
// power over differently-grouped Flush steps, which perturbs totals a few
// parts in 1e5 — the acceptance bound for energy parity is 0.1%.
constexpr double kChargeRelTol = 1e-9;
constexpr double kEnergyRelTol = 1e-3;

void ExpectNearRel(double a, double b, double tol, const char* what) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  EXPECT_LE(std::fabs(a - b) / scale, tol) << what << ": " << a << " vs "
                                           << b;
}

void ExpectStatsParity(const QueryExecStats& row, const QueryExecStats& batch) {
  EXPECT_EQ(row.tuples_scanned, batch.tuples_scanned);
  EXPECT_EQ(row.tuples_output, batch.tuples_output);
  EXPECT_EQ(row.comparisons, batch.comparisons);
  EXPECT_EQ(row.arith_ops, batch.arith_ops);
  EXPECT_EQ(row.hash_builds, batch.hash_builds);
  EXPECT_EQ(row.hash_probes, batch.hash_probes);
  EXPECT_EQ(row.agg_updates, batch.agg_updates);
  EXPECT_EQ(row.sort_compares, batch.sort_compares);
  EXPECT_EQ(row.spill_bytes, batch.spill_bytes);
  ExpectNearRel(row.cycles_charged, batch.cycles_charged, kChargeRelTol,
                "cycles_charged");
  ExpectNearRel(row.mem_lines_charged, batch.mem_lines_charged, kChargeRelTol,
                "mem_lines_charged");
}

void ExpectRowsEqual(const std::vector<Row>& a, const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(RowToString(a[i]), RowToString(b[i])) << "row " << i;
  }
}

// --- Operator-level parity over simple tables ---

class BatchParityTest : public ::testing::Test {
 protected:
  BatchParityTest()
      : machine_(MachineConfig::PaperTestbed()),
        profile_(EngineProfile::MySqlMemory()),
        pool_(&machine_, 0) {
    // > kDefaultBatchRows rows so pipelines cross batch boundaries.
    testing::MakeSimpleTable(&catalog_, "big", 2500, 7);
    testing::MakeSimpleTable(&catalog_, "small", 37, 5);
  }

  PlanNodePtr Scan(const std::string& name) {
    return MakeScan(catalog_, name).value();
  }

  ExprPtr K() { return Col(0, ValueType::kInt64, "k"); }
  ExprPtr V() { return Col(1, ValueType::kDouble, "v"); }
  ExprPtr S() { return Col(2, ValueType::kString, "s"); }

  void ExpectParity(const PlanNode& plan) {
    ExecContext row_ctx(&machine_, &profile_, &catalog_, &pool_);
    auto row_rows = ExecutePlan(plan, &row_ctx, ExecMode::kRow);
    ASSERT_TRUE(row_rows.ok()) << row_rows.status().ToString();

    ExecContext batch_ctx(&machine_, &profile_, &catalog_, &pool_);
    auto batch_rows = ExecutePlan(plan, &batch_ctx, ExecMode::kBatch);
    ASSERT_TRUE(batch_rows.ok()) << batch_rows.status().ToString();

    ExpectRowsEqual(row_rows.value(), batch_rows.value());
    ExpectStatsParity(row_ctx.stats(), batch_ctx.stats());
  }

  Machine machine_;
  EngineProfile profile_;
  Catalog catalog_;
  BufferPool pool_;
};

TEST_F(BatchParityTest, SeqScan) { ExpectParity(*Scan("big")); }

TEST_F(BatchParityTest, FilterCompare) {
  ExpectParity(*MakeFilter(Scan("big"),
                           Cmp(CompareOp::kLt, K(), LitInt(1100))));
}

TEST_F(BatchParityTest, FilterAndOrShortCircuit) {
  // Mixed AND/OR chain: the lazy comparison counts depend on per-row
  // short-circuiting, the exact semantics Figure 6 relies on.
  ExprPtr pred = Or({
      Cmp(CompareOp::kLt, K(), LitInt(100)),
      And({Cmp(CompareOp::kGe, K(), LitInt(1200)),
           Cmp(CompareOp::kLt, K(), LitInt(1300))}),
      Eq(S(), LitStr("s3")),
  });
  ExpectParity(*MakeFilter(Scan("big"), pred));
}

TEST_F(BatchParityTest, FilterBetween) {
  ExpectParity(*MakeFilter(Scan("big"),
                           Between(V(), LitDbl(100.5), LitDbl(2000.25))));
}

TEST_F(BatchParityTest, FilterInListLinear) {
  std::vector<Value> vals;
  for (int i = 0; i < 6; ++i) vals.push_back(Value::Str("s" + std::to_string(i)));
  ExpectParity(*MakeFilter(Scan("big"), InList(S(), vals, /*hashed=*/false)));
}

TEST_F(BatchParityTest, FilterInListHashed) {
  std::vector<Value> vals;
  for (int i = 0; i < 6; ++i) vals.push_back(Value::Str("s" + std::to_string(i)));
  ExpectParity(*MakeFilter(Scan("big"), InList(S(), vals, /*hashed=*/true)));
}

TEST_F(BatchParityTest, FilterNot) {
  ExpectParity(*MakeFilter(Scan("big"), Not(Eq(S(), LitStr("s1")))));
}

TEST_F(BatchParityTest, ProjectArith) {
  ExpectParity(*MakeProject(
      Scan("big"),
      {Arith(ArithOp::kMul, K(), LitInt(3)),
       Arith(ArithOp::kAdd, V(), Arith(ArithOp::kDiv, V(), LitDbl(2.0))), S()},
      {"k3", "v15", "s"}));
}

TEST_F(BatchParityTest, HashJoin) {
  // small x big on k: single-match per probe row for k < 37.
  ExpectParity(*MakeHashJoin(Scan("small"), Scan("big"), {0}, {0}));
}

TEST_F(BatchParityTest, HashJoinMultiMatch) {
  // Join on the (duplicated) string column: many matches per probe row,
  // so batches fill mid-bucket-chain and the resume path is exercised.
  ExpectParity(*MakeHashJoin(Scan("small"), Scan("big"), {2}, {2}));
}

TEST_F(BatchParityTest, HashJoinBuildResizeHeavy) {
  // Build side (2500 rows) far exceeds the flat table's initial slot
  // capacity, forcing several rehashes during build, with duplicate
  // string keys chained through the resizes.
  ExpectParity(*MakeHashJoin(Scan("big"), Scan("small"), {2}, {2}));
}

TEST_F(BatchParityTest, HashJoinMultiKeyTypedProbe) {
  // Multi-column (int64, string) key hashed straight off lazily-bound
  // scan batches: the typed batch hasher must agree bit-for-bit with the
  // row-mode boxed HashRowKey.
  ExpectParity(*MakeHashJoin(Scan("small"), Scan("big"), {0, 2}, {0, 2}));
}

TEST_F(BatchParityTest, HashJoinFilteredProbe) {
  // Probe batches arrive with a narrowed selection: the up-front batch
  // hashing walks sparse positions of a lazily-bound batch.
  ExpectParity(*MakeHashJoin(
      Scan("small"),
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(700))),
      {0}, {0}));
}

TEST_F(BatchParityTest, HashJoinEmptyBuildSide) {
  ExpectParity(*MakeHashJoin(
      MakeFilter(Scan("small"), Cmp(CompareOp::kLt, K(), LitInt(-1))),
      Scan("big"), {0}, {0}));
}

TEST_F(BatchParityTest, HashJoinNullProducingBuildSide) {
  // Build side is a projection whose arithmetic divides by zero at k == 5,
  // injecting NULL cells into the typed build pool: the null masks must
  // round-trip through gather emission bit-exactly in both modes.
  PlanNodePtr build = MakeProject(
      Scan("small"),
      {K(), Arith(ArithOp::kDiv, V(), Arith(ArithOp::kSub, K(), LitInt(5))),
       S()},
      {"k", "vdiv", "s"});
  ExpectParity(*MakeHashJoin(std::move(build), Scan("big"), {0}, {0}));
}

TEST_F(BatchParityTest, HashJoinBuildSideIsJoinOutput) {
  // The inner join's typed-lane output feeds the outer build consumption
  // (views over lanes, strings copied into the pool).
  PlanNodePtr inner = MakeHashJoin(Scan("small"), Scan("small"), {0}, {0});
  ExpectParity(*MakeHashJoin(std::move(inner), Scan("big"), {0}, {0}));
}

TEST_F(BatchParityTest, HashJoinProbeSideIsJoinOutput) {
  // The inner join's lanes are the probe side of the outer join: numeric
  // lanes gather lane-to-lane, string-ref lanes gather zero-copy (the
  // output batch retains the probe batch's arenas, so the pointers
  // survive the probe batch's replacement), and the batch key hasher
  // reads lanes directly.
  PlanNodePtr inner = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  ExpectParity(*MakeHashJoin(Scan("small"), std::move(inner), {2}, {2}));
}

TEST_F(BatchParityTest, FilterAndProjectOverJoinLanes) {
  // Filter compares typed-lane columns of a join output (view-based
  // generic path), then a projection passes lanes through and computes a
  // double lane on top of them.
  PlanNodePtr join = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  PlanNodePtr filtered = MakeFilter(
      std::move(join),
      Cmp(CompareOp::kGe, Col(4, ValueType::kDouble, "bv"),
          Col(1, ValueType::kDouble, "sv")));
  ExpectParity(*MakeProject(
      std::move(filtered),
      {Col(3, ValueType::kInt64, "bk"), Col(5, ValueType::kString, "bs"),
       Arith(ArithOp::kMul, Col(4, ValueType::kDouble, "bv"), LitDbl(0.5))},
      {"bk", "bs", "half"}));
}

TEST_F(BatchParityTest, AggregateOverJoinLanes) {
  // Group keys and SUM/MIN/MAX arguments read the join's typed lanes
  // (string lane group keys hash unboxed; the SUM argument runs through
  // the raw-double path).
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = Arith(ArithOp::kMul, Col(4, ValueType::kDouble, "bv"),
                  LitDbl(2.0));
  sum.name = "sum";
  AggSpec mn;
  mn.kind = AggSpec::Kind::kMin;
  mn.arg = Col(3, ValueType::kInt64, "bk");
  mn.name = "min";
  PlanNodePtr join = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  ExpectParity(*MakeAggregate(std::move(join),
                              {Col(5, ValueType::kString, "bs")}, {sum, mn}));
}

TEST_F(BatchParityTest, NestedLoopJoinPredicate) {
  ExprPtr pred = Eq(Col(2, ValueType::kString, "ss"),
                    Col(5, ValueType::kString, "bs"));
  ExpectParity(*MakeNestedLoopJoin(Scan("small"), Scan("big"), pred));
}

TEST_F(BatchParityTest, CrossJoin) {
  ExpectParity(*MakeNestedLoopJoin(Scan("small"), Scan("small"), nullptr));
}

TEST_F(BatchParityTest, HashAggGroups) {
  auto agg = [&](AggSpec::Kind kind, const char* name) {
    AggSpec a;
    a.kind = kind;
    a.arg = K();
    a.name = name;
    return a;
  };
  AggSpec count_star;
  count_star.kind = AggSpec::Kind::kCount;
  count_star.arg = nullptr;
  count_star.name = "n";
  ExpectParity(*MakeAggregate(
      Scan("big"), {S()},
      {agg(AggSpec::Kind::kSum, "sum"), agg(AggSpec::Kind::kMin, "min"),
       agg(AggSpec::Kind::kMax, "max"), agg(AggSpec::Kind::kAvg, "avg"),
       count_star}));
}

TEST_F(BatchParityTest, GlobalAggregate) {
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = V();
  sum.name = "sum_v";
  ExpectParity(*MakeAggregate(Scan("big"), {}, {sum}));
}

TEST_F(BatchParityTest, GlobalAggregateEmptyInput) {
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  PlanNodePtr filtered =
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(-1)));
  ExpectParity(*MakeAggregate(std::move(filtered), {}, {cnt}));
}

TEST_F(BatchParityTest, SortMultiKey) {
  ExpectParity(*MakeSort(Scan("big"),
                         {SortKey{S(), true}, SortKey{K(), false}}));
}

TEST_F(BatchParityTest, SortOverJoinLanes) {
  // Columnar sort consumes the join's typed lanes (string bytes into the
  // sort columns' arenas) and emits sorted lanes; row mode decorates
  // boxed Rows. Results and every counter must agree.
  PlanNodePtr join = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  ExpectParity(*MakeSort(std::move(join),
                         {SortKey{S(), false}, SortKey{V(), true}}));
}

TEST_F(BatchParityTest, SortNullProducingKey) {
  // A sort key whose arithmetic divides by zero at k == 5: NULL keys ride
  // the key column's null mask in batch mode and must order exactly like
  // boxed Value::Null (less than everything) in row mode.
  ExprPtr key =
      Arith(ArithOp::kDiv, V(), Arith(ArithOp::kSub, K(), LitInt(5)));
  ExpectParity(*MakeSort(Scan("small"), {SortKey{key, true}}));
}

TEST_F(BatchParityTest, LimitOverSortOverJoinLanes) {
  // LimitOp pulls row-at-a-time even in batch mode, so the batch-consumed
  // columnar sort serves Next() by boxing from its typed columns.
  PlanNodePtr join = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  ExpectParity(
      *MakeLimit(MakeSort(std::move(join), {SortKey{S(), true}}), 9));
}

TEST_F(BatchParityTest, LimitOverScan) {
  // Limit drives its child row-at-a-time in batch mode, so even the
  // early-termination tuple counts match exactly.
  ExpectParity(*MakeLimit(Scan("big"), 7));
  ExpectParity(*MakeLimit(Scan("big"), 0));
  ExpectParity(*MakeLimit(Scan("small"), 1000000));
}

TEST_F(BatchParityTest, LimitOverSort) {
  ExpectParity(*MakeLimit(MakeSort(Scan("big"), {SortKey{K(), false}}), 10));
}

TEST_F(BatchParityTest, LimitOverAggregate) {
  // The truncating batched LimitOp path: the aggregate's materialized
  // emission is pulled in capped batches. Limits below, at, and far
  // above the group count (7 distinct strings), plus 0.
  auto plan = [&](int64_t limit) {
    AggSpec sum;
    sum.kind = AggSpec::Kind::kSum;
    sum.arg = V();
    sum.name = "sum";
    AggSpec cnt;
    cnt.kind = AggSpec::Kind::kCount;
    cnt.arg = nullptr;
    cnt.name = "n";
    return MakeLimit(MakeAggregate(Scan("big"), {S()}, {sum, cnt}), limit);
  };
  ExpectParity(*plan(3));
  ExpectParity(*plan(7));
  ExpectParity(*plan(0));
  ExpectParity(*plan(1000000));
}

TEST_F(BatchParityTest, LimitOverAggregateManyGroups) {
  // More groups than one batch (2500 int64 keys), limit mid-emission:
  // the capped gather crosses a batch boundary before truncating.
  AggSpec mx;
  mx.kind = AggSpec::Kind::kMax;
  mx.arg = S();
  mx.name = "max_s";
  ExpectParity(*MakeLimit(MakeAggregate(Scan("big"), {K()}, {mx}), 1500));
}

TEST_F(BatchParityTest, LimitOverLimitOverSort) {
  // Stacked limits over a materialized child: both LimitOps report
  // materialized emission and forward capped pulls.
  ExpectParity(*MakeLimit(
      MakeLimit(MakeSort(Scan("big"), {SortKey{S(), true}}), 100), 12));
}

TEST_F(BatchParityTest, RowPullsAfterBatchPullOnMaterializedStacks) {
  // A batch-mode parent can fall back to row pulls mid-stream (the
  // pre-PR-5 LimitOp always did; the current one still does over
  // streaming children). Aggregate, sort and limit emission must serve
  // Next() after NextBatch() from one cursor over immutable state — no
  // moved-from rows, no skipped or repeated positions.
  auto check = [&](const PlanNodePtr& plan) {
    ExecContext row_ctx(&machine_, &profile_, &catalog_, &pool_);
    auto expect = ExecutePlan(*plan, &row_ctx, ExecMode::kRow);
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();

    ExecContext ctx(&machine_, &profile_, &catalog_, &pool_);
    ctx.set_exec_mode(ExecMode::kBatch);
    auto op = InstantiatePlan(*plan, &ctx);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    ASSERT_TRUE(op.value()->Open().ok());
    std::vector<Row> got;
    RowBatch batch;
    bool has = false;
    ASSERT_TRUE(op.value()->NextBatch(&batch, &has).ok());
    if (has) {
      for (uint32_t r : batch.sel()) {
        Row row;
        batch.MaterializeRow(r, &row);
        got.push_back(std::move(row));
      }
    }
    Row row;
    for (;;) {
      ASSERT_TRUE(op.value()->Next(&row, &has).ok());
      if (!has) break;
      got.push_back(row);
    }
    op.value()->Close();
    ExpectRowsEqual(expect.value(), got);
  };

  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = V();
  sum.name = "sum";
  // > 1024 groups, so row pulls continue past the first emitted batch.
  check(MakeAggregate(Scan("big"), {K()}, {sum}));
  // Sort with string payloads: Next() boxes from the typed columns the
  // batch pull gathered from.
  check(MakeSort(Scan("big"), {SortKey{S(), false}, SortKey{K(), true}}));
  // Limit over sort: produced_ is shared between the batch and row paths.
  check(MakeLimit(MakeSort(Scan("big"), {SortKey{K(), false}}), 1500));
  // Limit over aggregate over a join: lanes all the way up.
  AggSpec cnt;
  cnt.kind = AggSpec::Kind::kCount;
  cnt.arg = nullptr;
  cnt.name = "n";
  PlanNodePtr join = MakeHashJoin(Scan("small"), Scan("big"), {0}, {0});
  check(MakeLimit(
      MakeAggregate(std::move(join), {Col(5, ValueType::kString, "bs")},
                    {cnt}),
      2));
}

TEST_F(BatchParityTest, ScanFilterAggPipeline) {
  AggSpec sum;
  sum.kind = AggSpec::Kind::kSum;
  sum.arg = Arith(ArithOp::kMul, V(), LitDbl(0.5));
  sum.name = "rev";
  ExpectParity(*MakeAggregate(
      MakeFilter(Scan("big"), Cmp(CompareOp::kLt, K(), LitInt(2000))), {S()},
      {sum}));
}

// --- TPC-H query parity, both engine profiles, full energy accounting ---

class TpchBatchParityTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  static EngineProfile ProfileFor(const std::string& name) {
    return name == "commercial" ? EngineProfile::Commercial()
                                : EngineProfile::MySqlMemory();
  }

  static std::unique_ptr<Database> MakeDb(ExecMode mode,
                                          const std::string& profile) {
    DatabaseOptions opt;
    opt.profile = ProfileFor(profile);
    opt.exec_mode = mode;
    auto db = std::make_unique<Database>(opt);
    tpch::DbGenOptions gen;
    gen.scale_factor = testing::kTestSf;
    EXPECT_TRUE(db->LoadTpch(gen).ok());
    return db;
  }
};

TEST_P(TpchBatchParityTest, AllBenchmarkQueriesMatch) {
  const std::string profile = GetParam();
  auto row_db = MakeDb(ExecMode::kRow, profile);
  auto batch_db = MakeDb(ExecMode::kBatch, profile);

  auto row_queries = tpch::BuildAllBenchmarkQueries(*row_db->catalog());
  auto batch_queries = tpch::BuildAllBenchmarkQueries(*batch_db->catalog());
  ASSERT_TRUE(row_queries.ok());
  ASSERT_TRUE(batch_queries.ok());
  ASSERT_EQ(row_queries.value().size(), batch_queries.value().size());

  for (size_t i = 0; i < row_queries.value().size(); ++i) {
    SCOPED_TRACE(row_queries.value()[i].name);
    auto row_res = row_db->ExecutePlanQuery(*row_queries.value()[i].plan);
    auto batch_res =
        batch_db->ExecutePlanQuery(*batch_queries.value()[i].plan);
    ASSERT_TRUE(row_res.ok()) << row_res.status().ToString();
    ASSERT_TRUE(batch_res.ok()) << batch_res.status().ToString();

    ExpectRowsEqual(row_res.value().rows(), batch_res.value().rows());
    ExpectStatsParity(row_res.value().exec_stats,
                      batch_res.value().exec_stats);
    // Simulated time and energy: the paper-facing outputs.
    ExpectNearRel(row_res.value().seconds, batch_res.value().seconds,
                  kEnergyRelTol, "seconds");
    ExpectNearRel(row_res.value().cpu_joules, batch_res.value().cpu_joules,
                  kEnergyRelTol, "cpu_joules");
    ExpectNearRel(row_res.value().disk_joules, batch_res.value().disk_joules,
                  kEnergyRelTol, "disk_joules");
    ExpectNearRel(row_res.value().wall_joules, batch_res.value().wall_joules,
                  kEnergyRelTol, "wall_joules");
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, TpchBatchParityTest,
                         ::testing::Values("mysql_memory", "commercial"));

}  // namespace
}  // namespace ecodb

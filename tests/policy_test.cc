#include <gtest/gtest.h>

#include "ecodb/core/policy.h"

namespace ecodb {
namespace {

// Builds a synthetic trade-off curve resembling Figure 1: stock fast and
// hungry; A (5 % medium) slightly slower, much cheaper; B and C slower and
// more energy-hungry than A.
TradeoffCurve PaperLikeCurve() {
  TradeoffCurve curve;
  auto mk = [](double uc, VoltageDowngrade d, double seconds, double joules) {
    OperatingPoint p;
    p.settings = {uc, d};
    p.measurement.seconds = seconds;
    p.measurement.cpu_j = joules;
    p.measurement.edp = seconds * joules;
    return p;
  };
  curve.stock = mk(0.0, VoltageDowngrade::kStock, 48.5, 1228.7);
  curve.stock.ratio = RatioPoint{};
  for (auto [uc, s, j] : {std::tuple{0.05, 50.0, 627.0},
                          std::tuple{0.10, 53.7, 658.0},
                          std::tuple{0.15, 62.5, 722.0}}) {
    OperatingPoint p = mk(uc, VoltageDowngrade::kMedium, s, j);
    p.ratio = RatioVs(p.measurement, curve.stock.measurement);
    curve.points.push_back(p);
  }
  return curve;
}

TEST(PolicyTest, MinEnergyUnconstrainedPicksPointA) {
  TradeoffCurve curve = PaperLikeCurve();
  SlaPolicy policy;
  policy.objective = SlaPolicy::Objective::kMinEnergy;
  auto chosen = SelectOperatingPoint(curve, policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value().settings.underclock, 0.05);
}

TEST(PolicyTest, TimeBoundForcesStock) {
  // "A data center operating near peak may have no choice but to aim for
  // the fastest query response time."
  TradeoffCurve curve = PaperLikeCurve();
  SlaPolicy policy;
  policy.objective = SlaPolicy::Objective::kMinEnergy;
  policy.max_time_ratio = 1.01;  // tighter than point A's +3 %
  auto chosen = SelectOperatingPoint(curve, policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_TRUE(chosen.value().settings == SystemSettings::Stock());
}

TEST(PolicyTest, ModestSlackEnablesEnergySaving) {
  TradeoffCurve curve = PaperLikeCurve();
  SlaPolicy policy;
  policy.objective = SlaPolicy::Objective::kMinEnergy;
  policy.max_time_ratio = 1.05;
  auto chosen = SelectOperatingPoint(curve, policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value().settings.underclock, 0.05);
  EXPECT_LT(chosen.value().measurement.cpu_j,
            curve.stock.measurement.cpu_j * 0.55);
}

TEST(PolicyTest, AbsoluteSecondsBound) {
  TradeoffCurve curve = PaperLikeCurve();
  SlaPolicy policy;
  policy.objective = SlaPolicy::Objective::kMinEnergy;
  policy.max_seconds = 51.0;  // admits stock and A only
  auto chosen = SelectOperatingPoint(curve, policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value().settings.underclock, 0.05);
}

TEST(PolicyTest, MinTimeObjective) {
  TradeoffCurve curve = PaperLikeCurve();
  SlaPolicy policy;
  policy.objective = SlaPolicy::Objective::kMinTime;
  auto chosen = SelectOperatingPoint(curve, policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_TRUE(chosen.value().settings == SystemSettings::Stock());
}

TEST(PolicyTest, MinEdpObjective) {
  TradeoffCurve curve = PaperLikeCurve();
  SlaPolicy policy;
  policy.objective = SlaPolicy::Objective::kMinEdp;
  auto chosen = SelectOperatingPoint(curve, policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value().settings.underclock, 0.05);  // A has least EDP
}

TEST(PolicyTest, InfeasibleBoundReturnsNotFound) {
  TradeoffCurve curve = PaperLikeCurve();
  SlaPolicy policy;
  policy.max_seconds = 1.0;
  EXPECT_TRUE(SelectOperatingPoint(curve, policy).status().IsNotFound());
}

TEST(PolicyTest, FrontierIsParetoAndSorted) {
  TradeoffCurve curve = PaperLikeCurve();
  auto frontier = EnergyTimeFrontier(curve);
  ASSERT_GE(frontier.size(), 2u);
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].time_ratio, frontier[i - 1].time_ratio);
    EXPECT_LT(frontier[i].energy_ratio, frontier[i - 1].energy_ratio);
  }
  // B and C are dominated by A -> frontier is stock + A only.
  EXPECT_EQ(frontier.size(), 2u);
}

}  // namespace
}  // namespace ecodb

#include <gtest/gtest.h>

#include "ecodb/util/result.h"
#include "ecodb/util/rng.h"
#include "ecodb/util/stats.h"
#include "ecodb/util/status.h"
#include "ecodb/util/strings.h"
#include "ecodb/util/table_printer.h"
#include "ecodb/util/units.h"

namespace ecodb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, SpecializedPredicates) {
  EXPECT_TRUE(Status::UnstableSettings("x").IsUnstableSettings());
  EXPECT_TRUE(Status::HardwareFault("x").IsHardwareFault());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
}

Status Fails() { return Status::Internal("boom"); }
Status UsesMacro() {
  ECODB_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(UsesMacro().code(), StatusCode::kInternal);
}

Result<int> MakeInt(bool ok) {
  if (ok) return 42;
  return Status::NotFound("no int");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = MakeInt(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = MakeInt(false);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.value_or(7), 7);
}

Result<int> UsesAssign(bool ok) {
  ECODB_ASSIGN_OR_RETURN(int v, MakeInt(ok));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(UsesAssign(true).value(), 43);
  EXPECT_FALSE(UsesAssign(false).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

class RngBoundsTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(RngBoundsTest, UniformIntStaysInRange) {
  Rng rng(GetParam());
  int64_t lo = -17, hi = 23;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST_P(RngBoundsTest, UniformDoubleInUnitInterval) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundsTest,
                         ::testing::Values(1, 7, 42, 8500, 99991));

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) ++seen[static_cast<size_t>(rng.UniformInt(0, 9))];
  for (int count : seen) EXPECT_GT(count, 300);  // ~500 expected
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_NEAR(StdDev(xs), 1.4142, 1e-3);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, TrimmedMeanIsPaperProtocol) {
  // Five runs, drop best and worst, average the middle three (Sec. 3.1).
  std::vector<double> runs{10.0, 50.0, 11.0, 12.0, 1.0};
  EXPECT_DOUBLE_EQ(TrimmedMean(runs, 1), 11.0);
}

TEST(StatsTest, TrimmedMeanDegeneratesToMean) {
  std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(TrimmedMean(xs, 1), 1.5);  // trimming would empty it
}

TEST(StatsTest, MedianEvenOdd) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
}

TEST(StatsTest, PercentileNearestRank) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7}, 50), 7.0);
  std::vector<double> xs{5, 1, 4, 2, 3};  // unsorted input is fine
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);  // lower median
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  // Nearest-rank on 10 values: p95 -> ceil(9.5) = rank 10, p99 the same.
  std::vector<double> ten{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(ten, 90), 9.0);
  EXPECT_DOUBLE_EQ(Percentile(ten, 95), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(ten, 99), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(ten, 10), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(ten, 11), 2.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  RunningStats rs;
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), Mean(xs));
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), 2);
  EXPECT_DOUBLE_EQ(rs.max(), 9);
}

TEST(StringsTest, FormatAndSplitAndTrim) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrSplit("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(StrTrim("  hi \n"), "hi");
  EXPECT_TRUE(EqualsIgnoreCase("LineItem", "LINEITEM"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

class DateRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DateRoundTripTest, ParseFormatRoundTrips) {
  int32_t days = ParseDateToDays(GetParam());
  ASSERT_NE(days, INT32_MIN);
  EXPECT_EQ(DaysToDateString(days), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Dates, DateRoundTripTest,
                         ::testing::Values("1992-01-01", "1994-06-08",
                                           "1995-03-15", "1998-08-02",
                                           "1996-02-29", "1970-01-01",
                                           "2026-06-08"));

TEST(StringsTest, DateArithmeticMatchesCalendar) {
  EXPECT_EQ(ParseDateToDays("1970-01-02"), 1);
  EXPECT_EQ(ParseDateToDays("1995-01-01") - ParseDateToDays("1994-01-01"),
            365);
  EXPECT_EQ(ParseDateToDays("1997-01-01") - ParseDateToDays("1996-01-01"),
            366);  // leap year
  EXPECT_EQ(ParseDateToDays("bogus"), INT32_MIN);
  EXPECT_EQ(ParseDateToDays("1994-13-01"), INT32_MIN);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"x", "1"});
  tp.AddRow({"longer", "22"});
  std::string out = tp.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(tp.num_rows(), 2u);
}

TEST(UnitsTest, EdpDefinition) {
  EXPECT_DOUBLE_EQ(Edp(10.0, 2.0), 20.0);  // joules x seconds
}

}  // namespace
}  // namespace ecodb

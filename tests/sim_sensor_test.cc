#include <gtest/gtest.h>

#include "ecodb/sim/sensor.h"

namespace ecodb {
namespace {

TEST(EpuSensorTest, SamplesAtOneHz) {
  EpuSensor epu(1.0);
  epu.Reset(0.0);
  epu.AddInterval(0.0, 5.0, 20.0);
  EXPECT_EQ(epu.num_samples(), 5u);
  EXPECT_DOUBLE_EQ(epu.MeanSampledWatts(), 20.0);
}

TEST(EpuSensorTest, ExactIntegralIsGroundTruth) {
  EpuSensor epu(1.0);
  epu.Reset(0.0);
  epu.AddInterval(0.0, 2.0, 30.0);
  epu.AddInterval(2.0, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(epu.ExactJoules(), 80.0);
}

TEST(EpuSensorTest, GuiMethodMatchesExactForConstantPower) {
  // The paper's method (mean sampled watts x duration) is exact when power
  // is constant.
  EpuSensor epu(1.0);
  epu.Reset(0.0);
  epu.AddInterval(0.0, 10.0, 25.0);
  EXPECT_NEAR(epu.GuiJoules(10.0), epu.ExactJoules(), 1e-9);
}

TEST(EpuSensorTest, GuiMethodQuantizationErrorIsBounded) {
  // Alternating power phases: the 1 Hz sampling has quantization error,
  // but over many seconds it must stay within a modest band of the exact
  // integral (this bounds the measurement-method substitution).
  EpuSensor epu(1.0);
  epu.Reset(0.0);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    double w = (i % 2 == 0) ? 30.0 : 10.0;
    epu.AddInterval(t, 0.7, w);  // phases not aligned with sampling
    t += 0.7;
  }
  double exact = epu.ExactJoules();
  double gui = epu.GuiJoules(t);
  EXPECT_NEAR(gui / exact, 1.0, 0.10);
}

TEST(EpuSensorTest, ResetClearsState) {
  EpuSensor epu(1.0);
  epu.Reset(0.0);
  epu.AddInterval(0.0, 3.0, 50.0);
  epu.Reset(3.0);
  EXPECT_EQ(epu.num_samples(), 0u);
  EXPECT_EQ(epu.ExactJoules(), 0.0);
  // Next sample boundary realigned to reset time.
  epu.AddInterval(3.0, 1.5, 12.0);
  EXPECT_EQ(epu.num_samples(), 1u);
}

TEST(EpuSensorTest, SubSecondIntervalsAccumulateIntoSamples) {
  EpuSensor epu(1.0);
  epu.Reset(0.0);
  for (int i = 0; i < 10; ++i) {
    epu.AddInterval(i * 0.25, 0.25, static_cast<double>(i));
  }
  // 2.5 seconds -> 2 samples, taken at t=1 (during i=3) and t=2 (i=7).
  ASSERT_EQ(epu.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(epu.samples()[0], 3.0);
  EXPECT_DOUBLE_EQ(epu.samples()[1], 7.0);
}

}  // namespace
}  // namespace ecodb

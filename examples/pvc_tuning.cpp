// PVC tuning: sweep operating points for a workload, print the trade-off
// curve and let an SLA policy choose the point — the paper's Figure 1
// decision process as a library workflow.
//
//   ./build/examples/pvc_tuning

#include <cstdio>

#include "ecodb/ecodb.h"
#include "ecodb/util/strings.h"

using namespace ecodb;

int main() {
  DatabaseOptions options;
  options.profile = EngineProfile::Commercial();
  Database db(options);
  tpch::DbGenOptions gen;
  gen.scale_factor = 0.01;
  if (!db.LoadTpch(gen).ok()) return 1;

  auto workload = tpch::MakeQ5Workload(*db.catalog());
  if (!workload.ok()) return 1;

  PvcController pvc(&db);
  auto curve = pvc.MeasureCurve(workload.value(), PvcController::PaperGrid(),
                                RunOptions{});
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"setting", "time ratio", "energy ratio", "EDP ratio"});
  table.AddRow({"stock", "1.000", "1.000", "1.000"});
  for (const OperatingPoint& p : curve.value().points) {
    table.AddRow({p.settings.ToString(),
                  StrFormat("%.3f", p.ratio.time_ratio),
                  StrFormat("%.3f", p.ratio.energy_ratio),
                  StrFormat("%.3f", p.ratio.edp_ratio)});
  }
  table.Print();

  // The administrator's protocol: accept up to 8 % slowdown, minimize
  // energy; at peak load, minimize time.
  for (auto [label, policy] : {
           std::pair<const char*, SlaPolicy>{
               "off-peak (<= +8% time, min energy)",
               {SlaPolicy::Objective::kMinEnergy, 1.08, 1e18}},
           std::pair<const char*, SlaPolicy>{
               "peak (fastest)",
               {SlaPolicy::Objective::kMinTime, 1e18, 1e18}},
       }) {
    auto chosen = SelectOperatingPoint(curve.value(), policy);
    if (chosen.ok()) {
      std::printf("%-38s -> %s (energy x%.2f, time x%.2f)\n", label,
                  chosen.value().settings.ToString().c_str(),
                  chosen.value().ratio.energy_ratio,
                  chosen.value().ratio.time_ratio);
    }
  }

  // The SLA frontier: what energy each time budget buys (the paper's
  // "work backward to create viable parameters for an SLA").
  std::printf("\nSLA frontier (time budget -> energy):\n");
  for (const RatioPoint& p : EnergyTimeFrontier(curve.value())) {
    std::printf("  accept %+5.1f%% time  ->  %+6.1f%% energy\n",
                (p.time_ratio - 1) * 100, (p.energy_ratio - 1) * 100);
  }
  return 0;
}

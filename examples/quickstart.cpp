// Quickstart: load TPC-H, run a SQL query, read its time AND energy.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "ecodb/ecodb.h"

using namespace ecodb;

int main() {
  // 1. Create a database. The profile chooses the engine behaviour
  //    (commercial disk-backed vs MySQL memory engine) and the machine
  //    model is the paper's instrumented testbed.
  DatabaseOptions options;
  options.profile = EngineProfile::MySqlMemory();
  Database db(options);

  // 2. Load TPC-H data.
  tpch::DbGenOptions gen;
  gen.scale_factor = 0.01;
  if (Status st = db.LoadTpch(gen); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Loaded TPC-H SF %.2f: %llu lineitem rows\n", gen.scale_factor,
              static_cast<unsigned long long>(
                  db.catalog()->FindTable("lineitem")->num_rows()));

  // 3. Run a query; every result carries simulated response time and the
  //    energy the machine spent on it (CPU / disk / wall).
  std::string sql = tpch::Q5Sql(tpch::Q5Params{});
  std::printf("\nSQL> %s\n\n", sql.c_str());
  auto result = db.ExecuteSql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : result.value().rows()) {
    std::printf("  %s\n", RowToString(row).c_str());
  }
  std::printf(
      "\nresponse time: %.4f s | CPU energy: %.3f J | wall energy: %.3f J\n",
      result.value().seconds, result.value().cpu_joules,
      result.value().wall_joules);

  // 4. Trade energy for performance: apply the paper's "setting A"
  //    (5 % underclock + medium voltage downgrade) and rerun.
  SystemSettings eco{0.05, VoltageDowngrade::kMedium};
  if (Status st = db.ApplySettings(eco); !st.ok()) {
    std::fprintf(stderr, "settings rejected: %s\n", st.ToString().c_str());
    return 1;
  }
  auto eco_result = db.ExecuteSql(sql);
  std::printf(
      "under %s: time %+.1f%%, CPU energy %+.1f%% (the PVC trade)\n",
      eco.ToString().c_str(),
      (eco_result.value().seconds / result.value().seconds - 1) * 100,
      (eco_result.value().cpu_joules / result.value().cpu_joules - 1) * 100);
  return 0;
}

// QED batching: the admission-control queue workflow. Selection queries
// arrive; the scheduler delays them until the batch threshold, merges them
// into one disjunctive query, runs it, and splits the results — trading
// average response time for per-query energy (paper Section 4).
//
//   ./build/examples/qed_batching

#include <cstdio>

#include "ecodb/ecodb.h"
#include "ecodb/util/strings.h"

using namespace ecodb;

int main() {
  DatabaseOptions options;
  options.profile = EngineProfile::MySqlMemory();
  Database db(options);
  tpch::DbGenOptions gen;
  gen.scale_factor = 0.01;
  if (!db.LoadTpch(gen).ok()) return 1;

  // The queue workflow: submit 12 arriving queries, flush at threshold 6.
  QedScheduler scheduler(&db, QedOptions{6, false});
  int flushed_batches = 0;
  for (int i = 0; i < 12; ++i) {
    int64_t quantity = 1 + (i * 7) % 50;  // distinct predicate values
    auto plan = tpch::BuildSelectionQuery(*db.catalog(), quantity);
    if (!plan.ok()) return 1;
    (void)scheduler.Submit(std::move(plan).value());
    std::printf("submitted SELECT ... WHERE l_quantity = %lld (queue=%d)\n",
                static_cast<long long>(quantity), scheduler.pending());
    if (scheduler.ShouldFlush()) {
      auto flush = scheduler.Flush();
      if (!flush.ok()) return 1;
      ++flushed_batches;
      std::printf(
          "  -> flushed batch %d: %zu result sets, %.4f s, %.3f J CPU\n",
          flushed_batches, flush.value().per_query_rows.size(),
          flush.value().total_s, flush.value().cpu_j);
    }
  }

  // The measured trade-off at several batch sizes (Figure 6 view).
  auto workload = tpch::MakeSelectionWorkload(*db.catalog(), 50, 7);
  if (!workload.ok()) return 1;
  std::printf("\nenergy/response trade-off vs sequential execution:\n");
  TablePrinter table(
      {"batch", "energy ratio", "avg response ratio", "EDP ratio"});
  for (int n : {10, 25, 50}) {
    QedScheduler qed(&db, QedOptions{n, false});
    auto report = qed.RunComparison(workload.value());
    if (!report.ok()) return 1;
    table.AddRow({StrFormat("%d", n),
                  StrFormat("%.3f", report.value().energy_ratio),
                  StrFormat("%.3f", report.value().response_ratio),
                  StrFormat("%.3f", report.value().edp_ratio)});
  }
  table.Print();

  // The analytical model's view of per-query degradation.
  QedScheduler qed(&db, QedOptions{50, false});
  auto rep = qed.RunComparison(workload.value());
  if (!rep.ok()) return 1;
  double t_q = rep.value().seq_response_s.front();
  auto model = QedAnalyticalModel::Fit(t_q, 25, rep.value().qed_total_s / 2,
                                       50, rep.value().qed_total_s);
  std::printf(
      "\nanalytical model: first query degrades %.1fx, median %.1fx, last "
      "%.2fx\n(degradation is most severe for the first query in the "
      "batch — Section 4)\n",
      model.QueryDegradation(1, 50), model.QueryDegradation(25, 50),
      model.QueryDegradation(50, 50));
  return 0;
}

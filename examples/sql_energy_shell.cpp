// SQL energy shell: runs a scripted set of SQL statements, printing each
// result with its simulated time/energy bill and the EXPLAIN plan —
// a demo of the SQL front end and the energy-aware cost model's
// predict-then-measure loop.
//
//   ./build/examples/sql_energy_shell

#include <cstdio>

#include "ecodb/ecodb.h"

using namespace ecodb;

int main() {
  DatabaseOptions options;
  options.profile = EngineProfile::MySqlMemory();
  Database db(options);
  tpch::DbGenOptions gen;
  gen.scale_factor = 0.01;
  if (!db.LoadTpch(gen).ok()) return 1;

  CostModel model(db.catalog(), &db.profile(), db.options().machine);

  const char* statements[] = {
      "SELECT r_name, r_regionkey FROM region ORDER BY r_name",
      "SELECT COUNT(*) AS customers FROM customer",
      "SELECT n_name, COUNT(*) AS suppliers FROM supplier, nation "
      "WHERE s_nationkey = n_nationkey GROUP BY n_name "
      "ORDER BY suppliers DESC LIMIT 5",
      "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < "
      "DATE '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 "
      "AND l_quantity < 24",
      "SELECT l_quantity, COUNT(*) AS n FROM lineitem "
      "WHERE l_quantity IN (1, 2, 3) GROUP BY l_quantity ORDER BY "
      "l_quantity",
  };

  for (const char* sql : statements) {
    std::printf("SQL> %s\n", sql);
    auto plan = db.PlanSql(sql);
    if (!plan.ok()) {
      std::printf("  ERROR: %s\n\n", plan.status().ToString().c_str());
      continue;
    }
    auto predicted = model.Estimate(*plan.value(), db.settings());
    auto result = db.ExecutePlanQuery(*plan.value());
    if (!result.ok()) {
      std::printf("  ERROR: %s\n\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", plan.value()->Explain(1).c_str());
    size_t shown = 0;
    for (const Row& row : result.value().rows()) {
      if (shown++ == 8) {
        std::printf("  ... (%zu rows total)\n", result.value().rows().size());
        break;
      }
      std::printf("  %s\n", RowToString(row).c_str());
    }
    std::printf("  -- %zu rows, %.5f s, %.4f J CPU", result.value().rows().size(),
                result.value().seconds, result.value().cpu_joules);
    if (predicted.ok()) {
      std::printf(" (predicted %.5f s, %.4f J)",
                  predicted.value().est_seconds,
                  predicted.value().est_cpu_joules);
    }
    std::printf("\n\n");
  }
  return 0;
}

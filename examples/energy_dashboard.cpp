// Energy dashboard: per-component power/energy visibility — what the
// paper measured with the Yokogawa wall meter, the EPU sensor and the
// instrumented disk rails, as one library call.
//
//   ./build/examples/energy_dashboard

#include <cstdio>

#include "ecodb/ecodb.h"

using namespace ecodb;

int main() {
  DatabaseOptions options;
  options.profile = EngineProfile::Commercial();
  Database db(options);
  tpch::DbGenOptions gen;
  gen.scale_factor = 0.01;
  if (!db.LoadTpch(gen).ok()) return 1;

  Machine* machine = db.machine();
  std::printf("machine at idle: %.1f W DC, %.1f W wall (PSU eff %.0f%%)\n",
              machine->IdleDcPowerW(), machine->IdleWallPowerW(),
              machine->IdleDcPowerW() / machine->IdleWallPowerW() * 100);

  // Run the Q5 workload cold, then break down where the energy went.
  auto workload = tpch::MakeQ5Workload(*db.catalog());
  if (!workload.ok()) return 1;
  db.ColdRestart();
  machine->ResetMeters();
  for (const PlanNodePtr& q : workload.value().queries) {
    if (!db.ExecutePlanQuery(*q).ok()) return 1;
  }
  const EnergyLedger& ledger = machine->ledger();

  std::printf("\ncold Q5 workload: %.3f s (busy %.3f s, I/O-blocked %.3f s)\n",
              ledger.ElapsedS(), ledger.busy_s, ledger.io_s);
  TablePrinter table({"component", "energy (J)", "share of DC", "avg W"});
  auto row = [&](const char* name, double j) {
    table.AddRow({name, StrFormat("%.2f", j),
                  StrFormat("%.1f%%", j / ledger.dc_j * 100),
                  StrFormat("%.2f", j / ledger.ElapsedS())});
  };
  row("CPU package", ledger.cpu_j);
  row("CPU fan", ledger.fan_j);
  row("DRAM", ledger.mem_j);
  row("disk 5V rail", ledger.disk_5v_j);
  row("disk 12V rail", ledger.disk_12v_j);
  row("motherboard", ledger.mobo_j);
  row("GPU (idle)", ledger.gpu_j);
  table.AddSeparator();
  table.AddRow({"DC total", StrFormat("%.2f", ledger.dc_j), "100%",
                StrFormat("%.2f", ledger.dc_j / ledger.ElapsedS())});
  table.AddRow({"wall (incl. PSU loss)", StrFormat("%.2f", ledger.wall_j),
                StrFormat("%.1f%%", ledger.wall_j / ledger.dc_j * 100),
                StrFormat("%.2f", ledger.wall_j / ledger.ElapsedS())});
  table.Print();

  // The EPU sensor view: the paper sampled the GUI at 1 Hz and multiplied
  // mean watts by duration; compare against exact integration.
  EpuSensor& epu = machine->epu();
  std::printf(
      "\nEPU sensor: %zu one-second samples, mean %.2f W\n"
      "GUI-method CPU energy: %.2f J | exact integration: %.2f J "
      "(method error %+.2f%%)\n",
      epu.num_samples(), epu.MeanSampledWatts(),
      epu.GuiJoules(ledger.ElapsedS()), epu.ExactJoules(),
      (epu.GuiJoules(ledger.ElapsedS()) / epu.ExactJoules() - 1) * 100);

  std::printf(
      "\nbuffer pool: %llu hits, %llu misses (%llu sequential, %llu "
      "random)\n",
      static_cast<unsigned long long>(db.buffer_pool()->stats().hits),
      static_cast<unsigned long long>(db.buffer_pool()->stats().misses),
      static_cast<unsigned long long>(
          db.buffer_pool()->stats().sequential_misses),
      static_cast<unsigned long long>(
          db.buffer_pool()->stats().random_misses));
  return 0;
}

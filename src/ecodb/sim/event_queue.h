// SimEventQueue: deterministic future-event schedule on the simulated
// clock.
//
// The workload scheduler juggles three kinds of timed events — query
// arrivals, retry wake-ups after backoff, circuit-breaker probe timers —
// against one shared machine clock that only moves when work is charged
// or the machine idles. This queue arbitrates that clock: events are
// ordered by due time with FIFO sequence numbers breaking ties, so two
// events due at the same simulated instant always pop in insertion
// order, and a run is a pure function of its seed. When nothing is
// runnable, the event loop advances the clock to `next_due_seconds()`
// with an energy-accounted Machine::Idle instead of time-warping.

#ifndef ECODB_SIM_EVENT_QUEUE_H_
#define ECODB_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

namespace ecodb {

template <typename T>
class SimEventQueue {
 public:
  /// Schedules `payload` at absolute simulated time `due_seconds`.
  void Push(double due_seconds, T payload) {
    heap_.push(Entry{due_seconds, next_seq_++, std::move(payload)});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Due time of the earliest pending event. Requires !empty().
  double next_due_seconds() const {
    assert(!heap_.empty());
    return heap_.top().due_s;
  }

  /// Pops the earliest event (ties: insertion order). Requires !empty().
  T Pop() {
    assert(!heap_.empty());
    // std::priority_queue::top is const; the payload is moved out via a
    // const_cast, which is safe because pop() immediately removes it.
    Entry& top = const_cast<Entry&>(heap_.top());
    T payload = std::move(top.payload);
    heap_.pop();
    return payload;
  }

 private:
  struct Entry {
    double due_s;
    uint64_t seq;
    T payload;
    /// std::priority_queue is a max-heap; invert so the earliest (and,
    /// among equals, the first-inserted) entry surfaces at top().
    bool operator<(const Entry& o) const {
      if (due_s != o.due_s) return due_s > o.due_s;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_SIM_EVENT_QUEUE_H_

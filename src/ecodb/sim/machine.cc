#include "ecodb/sim/machine.h"

#include <algorithm>
#include <cmath>

#include "ecodb/sim/calibration.h"
#include "ecodb/util/strings.h"

namespace ecodb {

MachineConfig MachineConfig::PaperTestbed() {
  MachineConfig c;
  c.cpu = CpuConfig::E8500();
  c.mem = MemoryConfig::Ddr3_1066();
  c.disk = DiskConfig::WdCaviarSe16();
  c.psu = PsuConfig::CorsairVx450();
  c.mobo_on_dc_w = calib::kMoboOnDcW;
  c.cpu_activation_dc_w = calib::kCpuActivationDcW;
  c.gpu_idle_dc_w = calib::kGpuIdleDcW;
  return c;
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      cpu_(config.cpu),
      mem_(config.mem, config.num_dimms),
      disk_(config.disk),
      psu_(config.psu),
      epu_(calib::kEpuSamplePeriodS) {
  mem_.SetFsbHz(cpu_.FsbHz());
  epu_.Reset(clock_.Now());
  int n = config.num_cores > 0 ? config.num_cores : 1;
  cores_.assign(static_cast<size_t>(n), CpuModel(config.cpu));
  core_ledgers_.assign(static_cast<size_t>(n), CoreLedger());
}

Status Machine::ApplySettings(const SystemSettings& settings) {
  ECODB_RETURN_NOT_OK(cpu_.ApplySettings(settings));
  mem_.SetFsbHz(cpu_.FsbHz());
  // Machine-wide settings reset every per-core knob; stability was already
  // validated against the shared CpuConfig above.
  for (CpuModel& core : cores_) {
    Status s = core.ApplySettings(settings);
    (void)s;
  }
  return Status::OK();
}

Status Machine::ApplyCoreSettings(int core, const SystemSettings& settings) {
  if (core < 0 || core >= num_cores()) {
    return Status::InvalidArgument(
        StrFormat("core %d out of range [0, %d)", core, num_cores()));
  }
  return cores_[static_cast<size_t>(core)].ApplySettings(settings);
}

double Machine::CpuIdlePowerW() const {
  return config_.os_running ? cpu_.IdlePowerW() : cpu_.FirmwarePowerW();
}

void Machine::Accrue(double dt_s, double cpu_w, double disk_extra_5v_w,
                     double disk_extra_12v_w, double mem_access_j) {
  if (dt_s < 0) dt_s = 0;
  double t0 = clock_.Now();

  double fan_w = config_.has_cpu ? config_.cpu.fan_w : 0.0;
  double mem_w = mem_.BackgroundPowerW();
  double disk_5v_w =
      config_.has_disk ? disk_.config().idle_5v_w + disk_extra_5v_w : 0.0;
  double disk_12v_w =
      config_.has_disk ? disk_.config().spin_12v_w + disk_extra_12v_w : 0.0;
  double mobo_w = config_.mobo_on_dc_w +
                  (config_.has_cpu ? config_.cpu_activation_dc_w : 0.0);
  double gpu_w = config_.has_gpu ? config_.gpu_idle_dc_w : 0.0;
  double cpu_pkg_w = config_.has_cpu ? cpu_w : 0.0;

  double mem_access_w = dt_s > 0 ? mem_access_j / dt_s : 0.0;
  double dc_w = cpu_pkg_w + fan_w + mem_w + mem_access_w + disk_5v_w +
                disk_12v_w + mobo_w + gpu_w;

  ledger_.cpu_j += cpu_pkg_w * dt_s;
  ledger_.fan_j += fan_w * dt_s;
  ledger_.mem_j += mem_w * dt_s + mem_access_j;
  ledger_.disk_5v_j += disk_5v_w * dt_s;
  ledger_.disk_12v_j += disk_12v_w * dt_s;
  ledger_.mobo_j += mobo_w * dt_s;
  ledger_.gpu_j += gpu_w * dt_s;
  ledger_.dc_j += dc_w * dt_s;
  ledger_.wall_j += psu_.WallPowerW(dc_w) * dt_s;

  epu_.AddInterval(t0, dt_s, cpu_pkg_w);
  clock_.Advance(dt_s);
}

Machine::ExecBreakdown Machine::PredictExecuteBreakdown(
    double cycles, double mem_lines) const {
  return PredictExecuteBreakdownFor(cpu_, cycles, mem_lines);
}

Machine::ExecBreakdown Machine::PredictExecuteBreakdownFor(
    const CpuModel& core, double cycles, double mem_lines) const {
  ExecBreakdown b;
  b.compute_s = cycles / core.TopFrequencyHz();
  double t_core = mem_lines * mem_.config().core_latency_s;
  double bytes = mem_lines * mem_.config().line_bytes;
  double t_tx_base = bytes / mem_.BandwidthBps();

  // Bus contention: utilization depends on total time, which depends on
  // contention; solve the fixed point T = t_cpu + t_core + t_tx / (1-rho)
  // with rho = bytes / (T * bandwidth). Monotone contraction; a handful of
  // iterations converge to < 0.01 %.
  double total = b.compute_s + t_core + t_tx_base;
  if (bytes > 0 && total > 0) {
    for (int i = 0; i < 12; ++i) {
      double rho = bytes / (total * mem_.BandwidthBps());
      double next =
          b.compute_s + t_core + t_tx_base * mem_.ContentionFactor(rho);
      total = 0.5 * (total + next);  // damped for stability
    }
  }
  b.stall_s = total - b.compute_s;
  return b;
}

double Machine::PredictExecutePowerW(double cycles, double mem_lines) const {
  ExecBreakdown b = PredictExecuteBreakdown(cycles, mem_lines);
  double total = b.TotalS();
  if (total <= 0) return cpu_.BusyPowerW(load_class_);
  return (b.compute_s * cpu_.BusyPowerW(load_class_) +
          b.stall_s * cpu_.StallPowerW(load_class_)) /
         total;
}

void Machine::ExecuteCpu(double cycles, double mem_lines, LoadClass cls) {
  ExecBreakdown b = PredictExecuteBreakdown(cycles, mem_lines);
  double dt = b.TotalS();
  double mem_j = mem_.AccessEnergyJ(mem_lines);
  ledger_.busy_s += dt;
  double cpu_w = dt > 0 ? (b.compute_s * cpu_.BusyPowerW(cls) +
                           b.stall_s * cpu_.StallPowerW(cls)) /
                              dt
                        : 0.0;
  Accrue(dt, cpu_w, 0.0, 0.0, mem_j);
}

void Machine::AccrueCoreWork(int core, double cycles, double mem_lines,
                             LoadClass cls) {
  if (core < 0 || core >= num_cores()) return;
  if (cycles <= 0 && mem_lines <= 0) return;
  const CpuModel& model = cores_[static_cast<size_t>(core)];
  ExecBreakdown b = PredictExecuteBreakdownFor(model, cycles, mem_lines);
  double dt = b.TotalS();
  CoreLedger& cl = core_ledgers_[static_cast<size_t>(core)];
  cl.busy_s += dt;
  cl.cpu_j += b.compute_s * model.BusyPowerW(cls) +
              b.stall_s * model.StallPowerW(cls);
  cl.mem_j += mem_.AccessEnergyJ(mem_lines);
  cl.cycles += cycles;
  cl.mem_lines += mem_lines;
}

void Machine::ResetCoreLedgers() {
  core_ledgers_.assign(cores_.size(), CoreLedger());
  core_phases_.clear();
  phase_base_.assign(cores_.size(), CoreLedger());
}

ParallelPhaseSummary Machine::SummarizeCorePhase() const {
  return SummarizeCoreLedgers(core_ledgers_);
}

ParallelPhaseSummary Machine::SummarizeCoreLedgers(
    const std::vector<CoreLedger>& ledgers) const {
  ParallelPhaseSummary s;
  for (const CoreLedger& cl : ledgers) {
    s.makespan_s = std::max(s.makespan_s, cl.busy_s);
    s.busy_sum_s += cl.busy_s;
    s.core_cpu_j += cl.cpu_j;
    s.core_mem_j += cl.mem_j;
  }
  for (size_t i = 0; i < cores_.size() && i < ledgers.size(); ++i) {
    double idle = s.makespan_s - ledgers[i].busy_s;
    double idle_w = config_.os_running ? cores_[i].IdlePowerW()
                                       : cores_[i].FirmwarePowerW();
    s.idle_fill_j += idle_w * idle;
  }
  // Everything but the CPU package draws its idle power for the whole
  // phase; IdleDcPowerW already includes one package's idle draw, so
  // subtract it out.
  s.background_j = (IdleDcPowerW() - CpuIdlePowerW()) * s.makespan_s;
  s.dc_j = s.core_cpu_j + s.core_mem_j + s.idle_fill_j + s.background_j;
  if (s.makespan_s > 0) {
    s.wall_j = psu_.WallPowerW(s.dc_j / s.makespan_s) * s.makespan_s;
  }
  return s;
}

void Machine::MarkCorePhase(const std::string& label) {
  if (phase_base_.size() != core_ledgers_.size()) {
    phase_base_.assign(core_ledgers_.size(), CoreLedger());
  }
  std::vector<CoreLedger> delta(core_ledgers_.size());
  bool any = false;
  for (size_t i = 0; i < core_ledgers_.size(); ++i) {
    const CoreLedger& cur = core_ledgers_[i];
    const CoreLedger& base = phase_base_[i];
    delta[i].busy_s = cur.busy_s - base.busy_s;
    delta[i].cpu_j = cur.cpu_j - base.cpu_j;
    delta[i].mem_j = cur.mem_j - base.mem_j;
    delta[i].cycles = cur.cycles - base.cycles;
    delta[i].mem_lines = cur.mem_lines - base.mem_lines;
    if (delta[i].cycles > 0 || delta[i].mem_lines > 0) any = true;
  }
  phase_base_ = core_ledgers_;
  if (!any) return;
  core_phases_.push_back(CorePhase{label, std::move(delta)});
}

Status Machine::DiskRead(uint64_t bytes, uint64_t n_requests, bool random) {
  if (!config_.has_disk) {
    return Status::InvalidArgument("machine has no disk installed");
  }
  if (fault_armed_) {
    if (disk_fault_countdown_ <= n_requests) {
      disk_faulted_ = true;
    } else {
      disk_fault_countdown_ -= n_requests;
    }
    if (disk_faulted_) {
      return Status::HardwareFault(
          StrFormat("injected disk fault after read of %llu bytes",
                    static_cast<unsigned long long>(bytes)));
    }
  }
  DiskOpCost cost = disk_.ReadCost(bytes, n_requests, random);
  ledger_.io_s += cost.total_s;
  // While blocked on I/O the CPU drops to its idle p-state (EIST) or
  // busy-waits in firmware if no OS is loaded.
  double avg_5v_extra =
      cost.total_s > 0 ? cost.energy_5v_j / cost.total_s : 0.0;
  double avg_12v_extra =
      cost.total_s > 0 ? cost.energy_12v_j / cost.total_s : 0.0;
  Accrue(cost.total_s, CpuIdlePowerW(), avg_5v_extra, avg_12v_extra, 0.0);
  return Status::OK();
}

void Machine::Idle(double seconds) {
  ledger_.idle_s += seconds;
  Accrue(seconds, CpuIdlePowerW(), 0.0, 0.0, 0.0);
}

void Machine::InjectDiskFaultAfterRequests(uint64_t n) {
  fault_armed_ = true;
  disk_faulted_ = false;
  disk_fault_countdown_ = n;
}

void Machine::ClearFaults() {
  fault_armed_ = false;
  disk_faulted_ = false;
  disk_fault_countdown_ = 0;
}

void Machine::ResetMeters() {
  ledger_ = EnergyLedger();
  epu_.Reset(clock_.Now());
}

double Machine::IdleDcPowerW() const {
  double w = config_.mobo_on_dc_w;
  if (config_.has_cpu) {
    w += config_.cpu_activation_dc_w + CpuIdlePowerW() + config_.cpu.fan_w;
  }
  w += mem_.BackgroundPowerW();
  if (config_.has_gpu) w += config_.gpu_idle_dc_w;
  if (config_.has_disk) w += disk_.IdlePowerW();
  return w;
}

double Machine::IdleWallPowerW() const {
  return psu_.WallPowerW(IdleDcPowerW());
}

}  // namespace ecodb

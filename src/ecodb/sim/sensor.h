// Power sensors.
//
// EpuSensor reproduces the paper's CPU-power measurement *method*
// (Section 3.1): the ASUS EPU hardware sensor is only exposed through a
// GUI that refreshes about once per second, so the authors sampled it at
// 1 Hz and computed joules as (average sampled watts) x (workload
// duration). We model exactly that — including its quantization error,
// which tests bound against the exact integral the simulator also keeps.

#ifndef ECODB_SIM_SENSOR_H_
#define ECODB_SIM_SENSOR_H_

#include <cstddef>
#include <vector>

namespace ecodb {

class EpuSensor {
 public:
  explicit EpuSensor(double period_s);

  /// Clears samples and aligns the next sample tick to `now_s`.
  void Reset(double now_s);

  /// Records that CPU power was `cpu_w` over [start_s, start_s + dt_s).
  /// Samples are taken at every period boundary inside the interval.
  void AddInterval(double start_s, double dt_s, double cpu_w);

  size_t num_samples() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

  /// Average of the 1 Hz GUI samples (0 if none were taken yet).
  double MeanSampledWatts() const;

  /// The paper's joule estimate: mean sampled watts x duration.
  double GuiJoules(double duration_s) const {
    return MeanSampledWatts() * duration_s;
  }

  /// Ground truth: exact integral of CPU power since Reset().
  double ExactJoules() const { return exact_j_; }

 private:
  double period_s_;
  double next_sample_s_ = 0.0;
  double exact_j_ = 0.0;
  std::vector<double> samples_;
};

}  // namespace ecodb

#endif  // ECODB_SIM_SENSOR_H_

// FaultInjector: deterministic seeded disk-fault schedule.
//
// The injector hands out one Outcome per simulated disk read request
// (BufferPool consults it from both its FetchPage and FetchRange miss
// paths). Decisions are a pure function of (seed, decision counter): a
// counter-based SplitMix64 stream, so the same seed over the same read
// sequence always yields the same fault schedule — which is what makes
// the fault axis of the differential fuzz harness reproducible, and,
// because both execution modes issue identical page-fetch sequences,
// mode-deterministic.
//
// Threshold sampling (fault iff u < rate over a shared u stream) has a
// useful monotonicity property: the fault set at a higher rate is a
// superset of the fault set at a lower rate until the first divergence,
// so per-seed energy cost grows monotonically with the configured rate.

#ifndef ECODB_SIM_FAULT_INJECTION_H_
#define ECODB_SIM_FAULT_INJECTION_H_

#include <cstdint>

namespace ecodb {

struct FaultInjectorConfig {
  uint64_t seed = 0;

  /// Probability that one disk read request fails transiently (succeeds
  /// when retried, costing backoff wait time + a re-read). 0 disables.
  double transient_fault_rate = 0.0;

  /// Probability that one disk read request fails persistently — every
  /// retry fails too, and the read escalates to kHardwareFault.
  double persistent_fault_rate = 0.0;

  /// Bounded exponential backoff for transient faults: after attempt k
  /// fails, the machine idles initial_backoff_seconds * multiplier^k
  /// (energy-accounted wall time) before re-reading. After max_retries
  /// failed retries the read escalates to kHardwareFault.
  int max_retries = 4;
  double initial_backoff_seconds = 1e-3;
  double backoff_multiplier = 2.0;

  bool enabled() const {
    return transient_fault_rate > 0.0 || persistent_fault_rate > 0.0;
  }
};

class FaultInjector {
 public:
  enum class Outcome {
    kOk,
    kTransient,   ///< retry may succeed
    kPersistent,  ///< all retries fail
  };

  explicit FaultInjector(const FaultInjectorConfig& config);

  /// Outcome for the next disk read request. Advances the decision
  /// counter (each retry of a faulted read draws a fresh decision).
  Outcome NextReadOutcome();

  const FaultInjectorConfig& config() const { return config_; }
  uint64_t decisions() const { return counter_; }

  /// Rewinds the decision stream to the start (same seed).
  void Reset() { counter_ = 0; }

 private:
  FaultInjectorConfig config_;
  uint64_t counter_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_SIM_FAULT_INJECTION_H_

#include "ecodb/sim/disk.h"

#include "ecodb/sim/calibration.h"

namespace ecodb {

DiskConfig DiskConfig::WdCaviarSe16() {
  DiskConfig c;
  c.seq_rate_bps = calib::kDiskSeqRateBps;
  c.rand_rate_bps = calib::kDiskRandRateBps;
  c.random_pos_s = calib::kDiskRandomPosS;
  c.seq_pos_s = calib::kDiskSeqPosS;
  c.idle_5v_w = calib::kDisk5vIdleW;
  c.active_5v_extra_w = calib::kDisk5vActiveExtraW;
  c.spin_12v_w = calib::kDisk12vSpinW;
  c.seek_12v_extra_w = calib::kDisk12vSeekExtraW;
  return c;
}

DiskOpCost DiskModel::ReadCost(uint64_t bytes, uint64_t n_requests,
                               bool random) const {
  DiskOpCost cost;
  if (bytes == 0 && n_requests == 0) return cost;
  double pos_each = random ? config_.random_pos_s : config_.seq_pos_s;
  double rate = random ? config_.rand_rate_bps : config_.seq_rate_bps;
  cost.position_s = static_cast<double>(n_requests) * pos_each;
  cost.transfer_s = static_cast<double>(bytes) / rate;
  cost.total_s = cost.position_s + cost.transfer_s;
  // Activity premiums over idle; base idle power is integrated by the
  // Machine over all simulated time while the disk is installed. The
  // actuator (12 V) premium applies only to real seeks — sequential
  // command overhead moves no arm.
  cost.energy_5v_j = cost.transfer_s * config_.active_5v_extra_w;
  cost.energy_12v_j = random ? cost.position_s * config_.seek_12v_extra_w : 0.0;
  return cost;
}

}  // namespace ecodb

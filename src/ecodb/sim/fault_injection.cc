#include "ecodb/sim/fault_injection.h"

namespace ecodb {

namespace {

// SplitMix64 finalizer: a high-quality 64-bit mix, used here as a
// counter-based generator so decision k depends only on (seed, k).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config) {}

FaultInjector::Outcome FaultInjector::NextReadOutcome() {
  if (!config_.enabled()) return Outcome::kOk;
  const uint64_t draw = Mix64(config_.seed ^ Mix64(counter_));
  ++counter_;
  const double u = ToUnit(draw);
  // Threshold order matters for the per-seed monotonicity property:
  // raising either rate only adds fault events to the schedule (until
  // retry draws shift the stream).
  if (u < config_.persistent_fault_rate) return Outcome::kPersistent;
  if (u < config_.persistent_fault_rate + config_.transient_fault_rate) {
    return Outcome::kTransient;
  }
  return Outcome::kOk;
}

}  // namespace ecodb

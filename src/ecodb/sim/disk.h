// Hard-disk model with separately metered 5 V and 12 V rails.
//
// The paper measured the WD Caviar's two supply lines while running TPC-H
// (Section 3.5) and micro-benchmarked random vs sequential reads at
// 4/8/16/32 KB (Figure 5). The model: each request costs a positioning
// time (large for random, tiny for sequential) plus transfer at a
// pattern-dependent media rate; the 12 V rail powers the always-spinning
// spindle plus the actuator during positioning; the 5 V rail powers the
// electronics, with a premium while transferring.

#ifndef ECODB_SIM_DISK_H_
#define ECODB_SIM_DISK_H_

#include <cstdint>

namespace ecodb {

struct DiskConfig {
  double seq_rate_bps;       ///< streaming transfer rate
  double rand_rate_bps;      ///< effective rate of short random transfers
  double random_pos_s;       ///< avg seek + rotational latency
  double seq_pos_s;          ///< per-request overhead when sequential
  double idle_5v_w;          ///< electronics, idle
  double active_5v_extra_w;  ///< electronics premium while transferring
  double spin_12v_w;         ///< spindle (always, while powered)
  double seek_12v_extra_w;   ///< actuator premium while positioning

  static DiskConfig WdCaviarSe16();
};

/// Time/energy breakdown of one I/O batch.
struct DiskOpCost {
  double total_s = 0.0;
  double position_s = 0.0;  ///< portion spent positioning (seek+rotate)
  double transfer_s = 0.0;  ///< portion spent moving bytes
  double energy_5v_j = 0.0;
  double energy_12v_j = 0.0;
  double TotalEnergyJ() const { return energy_5v_j + energy_12v_j; }
};

class DiskModel {
 public:
  explicit DiskModel(const DiskConfig& config) : config_(config) {}

  /// Cost of `n_requests` reads totaling `bytes`, random or sequential.
  /// Energy covers only the activity premium over idle; idle/spindle power
  /// is integrated continuously by the Machine while the disk is powered.
  DiskOpCost ReadCost(uint64_t bytes, uint64_t n_requests, bool random) const;

  /// Idle power (5 V electronics + 12 V spindle).
  double IdlePowerW() const {
    return config_.idle_5v_w + config_.spin_12v_w;
  }

  const DiskConfig& config() const { return config_; }

 private:
  DiskConfig config_;
};

}  // namespace ecodb

#endif  // ECODB_SIM_DISK_H_

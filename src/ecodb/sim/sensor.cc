#include "ecodb/sim/sensor.h"

namespace ecodb {

EpuSensor::EpuSensor(double period_s) : period_s_(period_s) {}

void EpuSensor::Reset(double now_s) {
  samples_.clear();
  exact_j_ = 0.0;
  next_sample_s_ = now_s + period_s_;
}

void EpuSensor::AddInterval(double start_s, double dt_s, double cpu_w) {
  exact_j_ += cpu_w * dt_s;
  double end_s = start_s + dt_s;
  while (next_sample_s_ <= end_s) {
    samples_.push_back(cpu_w);
    next_sample_s_ += period_s_;
  }
}

double EpuSensor::MeanSampledWatts() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double w : samples_) sum += w;
  return sum / static_cast<double>(samples_.size());
}

}  // namespace ecodb

#include "ecodb/sim/psu.h"

#include <algorithm>
#include <cassert>

#include "ecodb/sim/calibration.h"

namespace ecodb {

PsuConfig PsuConfig::CorsairVx450() {
  PsuConfig c;
  c.rated_w = calib::kPsuRatedW;
  c.curve_load.assign(calib::kPsuCurveLoad,
                      calib::kPsuCurveLoad + calib::kPsuCurvePoints);
  c.curve_eff.assign(calib::kPsuCurveEff,
                     calib::kPsuCurveEff + calib::kPsuCurvePoints);
  c.standby_dc_w = calib::kStandbyDcW;
  c.standby_efficiency = calib::kStandbyEfficiency;
  return c;
}

double PsuModel::Efficiency(double dc_w) const {
  assert(!config_.curve_load.empty());
  double load = std::clamp(dc_w / config_.rated_w, 0.0, 1.0);
  const auto& xs = config_.curve_load;
  const auto& ys = config_.curve_eff;
  if (load <= xs.front()) return ys.front();
  for (size_t i = 1; i < xs.size(); ++i) {
    if (load <= xs[i]) {
      double t = (load - xs[i - 1]) / (xs[i] - xs[i - 1]);
      return ys[i - 1] + t * (ys[i] - ys[i - 1]);
    }
  }
  return ys.back();
}

double PsuModel::WallPowerW(double dc_w) const {
  if (dc_w <= 0.0) return 0.0;
  return dc_w / Efficiency(dc_w);
}

double PsuModel::StandbyWallPowerW() const {
  return config_.standby_dc_w / config_.standby_efficiency;
}

}  // namespace ecodb

// DDR3 main-memory model.
//
// Memory hangs off the Northbridge, so its bus frequency is a multiple of
// the FSB: PVC underclocking slows memory too (paper Section 3). Latency
// has a DRAM-core component fixed in nanoseconds plus a bus-transfer
// component that scales with the (underclocked) bus; under high demand a
// queueing term models bus contention. This split is what makes the
// commercial workload's response time rise only ~3 % at a 5 % underclock
// yet go convex at 10-15 % (Figures 1/2).

#ifndef ECODB_SIM_MEMORY_H_
#define ECODB_SIM_MEMORY_H_

namespace ecodb {

struct MemoryConfig {
  double mem_multiplier;       ///< bus freq = mem_multiplier * FSB
  double bytes_per_transfer;   ///< bus width (DDR: 8 B per edge-pair)
  double core_latency_s;       ///< fixed DRAM-core portion of an access
  double line_bytes;           ///< access granularity (cache line)
  double access_energy_j;      ///< energy per line transferred
  double dimm_background_w;    ///< refresh/standby per first DIMM
  double second_dimm_background_w;
  double controller_w;         ///< memory-controller activation (once)

  static MemoryConfig Ddr3_1066();
};

class MemoryModel {
 public:
  MemoryModel(const MemoryConfig& config, int num_dimms);

  /// Called by the machine when the FSB changes.
  void SetFsbHz(double fsb_hz) { fsb_hz_ = fsb_hz; }

  /// Effective memory bus frequency.
  double BusHz() const { return fsb_hz_ * config_.mem_multiplier; }

  /// Peak bandwidth at the current bus frequency, bytes/second.
  double BandwidthBps() const {
    return BusHz() * config_.bytes_per_transfer;
  }

  /// Un-contended time to service one line: core latency + transfer.
  double BaseAccessTimeS() const;

  /// M/M/1-style contention factor applied to the *transfer* portion of an
  /// access when the bus utilization is rho (clamped below 1).
  double ContentionFactor(double rho) const;

  /// Energy for n line accesses.
  double AccessEnergyJ(double n_lines) const {
    return n_lines * config_.access_energy_j;
  }

  /// Standby power of the installed DIMMs + controller.
  double BackgroundPowerW() const;

  const MemoryConfig& config() const { return config_; }
  int num_dimms() const { return num_dimms_; }

 private:
  MemoryConfig config_;
  int num_dimms_;
  double fsb_hz_;
};

}  // namespace ecodb

#endif  // ECODB_SIM_MEMORY_H_

// The simulated test machine: composition of CPU, memory, disk, GPU,
// motherboard and PSU, with full energy accounting.
//
// The query engine charges abstract work units (CPU cycles, memory line
// accesses, disk requests); the machine converts them to simulated time
// using the current PVC settings and integrates per-component energy,
// total DC energy, and wall energy (through the PSU efficiency curve).
// This is the stand-in for the paper's instrumented ASUS P5Q3 testbed.

#ifndef ECODB_SIM_MACHINE_H_
#define ECODB_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ecodb/sim/clock.h"
#include "ecodb/sim/cpu.h"
#include "ecodb/sim/disk.h"
#include "ecodb/sim/memory.h"
#include "ecodb/sim/psu.h"
#include "ecodb/sim/sensor.h"
#include "ecodb/sim/settings.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// Hardware inventory + calibration for one simulated machine. The
/// has_*/num_* fields exist so the Table 1 build-up experiment can
/// instantiate partial machines.
struct MachineConfig {
  CpuConfig cpu;
  MemoryConfig mem;
  DiskConfig disk;
  PsuConfig psu;
  double mobo_on_dc_w;
  double cpu_activation_dc_w;  ///< board circuitry enabled by CPU install
  double gpu_idle_dc_w;

  bool has_cpu = true;
  /// Physical cores on the package (the E8500 is a dual-core part). Each
  /// core carries its own CpuModel so PVC settings become a per-core knob;
  /// the memory bus and the package-level accounting follow the
  /// machine-wide settings.
  int num_cores = 2;
  int num_dimms = 2;
  bool has_gpu = true;
  bool has_disk = true;
  /// False models the Table 1 stages before an OS is present: the CPU has
  /// no EIST governor and busy-idles in firmware at the top p-state.
  bool os_running = true;

  /// The paper's full system under test (Section 3.1).
  static MachineConfig PaperTestbed();
};

/// Per-component energy + time breakdown since the last ResetMeters().
struct EnergyLedger {
  double cpu_j = 0.0;      ///< CPU package (what the EPU sensor sees)
  double fan_j = 0.0;
  double mem_j = 0.0;      ///< DIMM background + access energy
  double disk_5v_j = 0.0;  ///< electronics rail
  double disk_12v_j = 0.0; ///< spindle + actuator rail
  double mobo_j = 0.0;
  double gpu_j = 0.0;
  double dc_j = 0.0;       ///< sum of all component DC energy
  double wall_j = 0.0;     ///< AC energy through the PSU curve

  double busy_s = 0.0;     ///< time with the CPU executing
  double io_s = 0.0;       ///< time blocked on disk
  double idle_s = 0.0;     ///< explicit idle time

  double DiskJ() const { return disk_5v_j + disk_12v_j; }
  double ElapsedS() const { return busy_s + io_s + idle_s; }
};

/// Per-core work/energy accrual since the last ResetCoreLedgers(). This is
/// the *concurrency view* of a parallel phase: each worker's charge stream
/// lands on its core without advancing the shared clock or the shared
/// EnergyLedger (those stay the sequential-equivalent parity account, fed
/// by the coordinator's deterministic replay of the same charges).
struct CoreLedger {
  double busy_s = 0.0;      ///< time this core spent executing
  double cpu_j = 0.0;       ///< core package energy while busy
  double mem_j = 0.0;       ///< DRAM access energy for this core's lines
  double cycles = 0.0;      ///< raw cycles accrued
  double mem_lines = 0.0;   ///< raw cache lines accrued
};

/// Roll-up of the per-core ledgers into phase-level time/energy: the
/// makespan is the slowest core's busy time (workers run concurrently);
/// cores that finish early sit in their idle p-state for the remainder;
/// the rest of the system (board, DIMM background, disk idle, GPU, fan)
/// draws its idle power for the whole makespan. Wall energy applies the
/// PSU curve to the phase-average DC power. This is what turns the
/// paper's single-core voltage/frequency tradeoff into the race-to-idle
/// vs. slow-and-wide comparison.
struct ParallelPhaseSummary {
  double makespan_s = 0.0;
  double busy_sum_s = 0.0;     ///< sum of per-core busy time (work volume);
                               ///< busy_sum_s / makespan_s = core speedup
  double core_cpu_j = 0.0;     ///< sum of busy-core package energy
  double core_mem_j = 0.0;     ///< sum of per-core DRAM access energy
  double idle_fill_j = 0.0;    ///< early-finishing cores idling to makespan
  double background_j = 0.0;   ///< non-CPU system power over the makespan
  double dc_j = 0.0;
  double wall_j = 0.0;
};

/// A named slice of the per-core ledgers: the deltas accrued between two
/// MarkCorePhase calls. Morsel pools mark a phase per parallel stage
/// ("stream", "join_build", "agg", "sort"), so benches can report where
/// the core speedup comes from — the streaming spine vs. the breaker
/// build phases.
struct CorePhase {
  std::string label;
  std::vector<CoreLedger> ledgers;  ///< per-core deltas for this phase
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  /// Applies PVC settings (validated for stability) to CPU and memory bus,
  /// and to every core (machine-wide reset of the per-core knobs).
  Status ApplySettings(const SystemSettings& settings);
  const SystemSettings& settings() const { return cpu_.settings(); }

  // --- Per-core P-state control ---

  /// Applies PVC settings to one core only (validated for stability).
  /// The memory bus and the shared-ledger charge path keep following the
  /// machine-wide settings; per-core settings shape the concurrency view
  /// (AccrueCoreWork / SummarizeCorePhase).
  Status ApplyCoreSettings(int core, const SystemSettings& settings);
  int num_cores() const { return static_cast<int>(cores_.size()); }
  const CpuModel& core_model(int core) const {
    return cores_[static_cast<size_t>(core)];
  }

  /// Sets how the current workload loads the CPU (see LoadClass).
  void SetLoadClass(LoadClass cls) { load_class_ = cls; }
  LoadClass load_class() const { return load_class_; }

  // --- Work charging (advance simulated time + integrate energy) ---

  /// One burst of computation: `cycles` CPU cycles plus `mem_lines` cache
  /// lines fetched from DRAM. Duration accounts for frequency, the fixed
  /// DRAM-core latency, and bus contention at the (underclocked) memory
  /// bus — the mechanism behind the convex slowdown at 10-15 % underclock.
  /// The two-argument form charges at the machine-wide load class; the
  /// three-argument form lets each ExecContext carry its own (per-query
  /// profiles must not stomp a shared machine global).
  void ExecuteCpu(double cycles, double mem_lines) {
    ExecuteCpu(cycles, mem_lines, load_class_);
  }
  void ExecuteCpu(double cycles, double mem_lines, LoadClass cls);

  /// Accrues one worker's charge stream onto `core`'s ledger: the burst's
  /// duration/power are evaluated against that core's own CpuModel (its
  /// private P-state), but neither the shared clock nor the shared
  /// EnergyLedger move — parallel workers overlap in time, and the
  /// deterministic fold of their charges into the parity account happens
  /// through the coordinator's replay into ExecuteCpu.
  void AccrueCoreWork(int core, double cycles, double mem_lines,
                      LoadClass cls);
  const std::vector<CoreLedger>& core_ledgers() const { return core_ledgers_; }
  void ResetCoreLedgers();
  /// Rolls the per-core ledgers up into phase time/energy (see
  /// ParallelPhaseSummary).
  ParallelPhaseSummary SummarizeCorePhase() const;
  /// Rolls an arbitrary per-core ledger vector up the same way (used for
  /// the per-phase slices in core_phases()).
  ParallelPhaseSummary SummarizeCoreLedgers(
      const std::vector<CoreLedger>& ledgers) const;

  /// Snapshots the per-core ledger deltas accrued since the previous mark
  /// (or since ResetCoreLedgers) as a named phase. All-zero deltas are
  /// dropped — a pool that accrued nothing leaves no phase behind.
  void MarkCorePhase(const std::string& label);
  const std::vector<CorePhase>& core_phases() const { return core_phases_; }

  /// One batch of disk reads; the CPU sits in its EIST idle state while
  /// blocked (this is why the paper's cold run averages only ~13.8 W CPU).
  Status DiskRead(uint64_t bytes, uint64_t n_requests, bool random);

  /// Explicit idle (system on, nothing running).
  void Idle(double seconds);

  // --- Failure injection (tests) ---

  /// After `n` more disk requests, every DiskRead fails with
  /// kHardwareFault until ClearFaults() is called.
  void InjectDiskFaultAfterRequests(uint64_t n);
  void ClearFaults();

  // --- Measurement ---

  double NowSeconds() const { return clock_.Now(); }
  const EnergyLedger& ledger() const { return ledger_; }
  EpuSensor& epu() { return epu_; }

  /// Zeroes the ledger and the EPU sensor (clock keeps running, as the
  /// real machine's clock would).
  void ResetMeters();

  // --- Static power queries (no time advance; Table 1 support) ---

  /// Total DC power with the machine on and idle.
  double IdleDcPowerW() const;
  /// Wall power with the machine on and idle.
  double IdleWallPowerW() const;
  /// Wall power with the machine soft-off (PSU standby).
  double StandbyWallPowerW() const { return psu_.StandbyWallPowerW(); }

  /// Instantaneous CPU package power if busy right now.
  double BusyCpuPowerW() const { return cpu_model().BusyPowerW(load_class_); }

  const CpuModel& cpu_model() const { return cpu_; }
  const MemoryModel& memory_model() const { return mem_; }
  const DiskModel& disk_model() const { return disk_; }
  const PsuModel& psu_model() const { return psu_; }
  const MachineConfig& config() const { return config_; }

  /// Compute/stall breakdown of one ExecuteCpu burst.
  struct ExecBreakdown {
    double compute_s = 0;  ///< cycles / frequency
    double stall_s = 0;    ///< DRAM latency + bus contention
    double TotalS() const { return compute_s + stall_s; }
  };

  /// Duration breakdown that ExecuteCpu(cycles, mem_lines) would take
  /// under the current settings, without executing it (used by the
  /// energy-aware cost model to predict run times).
  ExecBreakdown PredictExecuteBreakdown(double cycles,
                                        double mem_lines) const;
  /// Same prediction evaluated against an arbitrary core's CpuModel (the
  /// shared memory model still supplies latency/bandwidth/contention —
  /// the bus follows the machine-wide settings).
  ExecBreakdown PredictExecuteBreakdownFor(const CpuModel& core,
                                           double cycles,
                                           double mem_lines) const;
  double PredictExecuteSeconds(double cycles, double mem_lines) const {
    return PredictExecuteBreakdown(cycles, mem_lines).TotalS();
  }
  /// Average CPU package power over such a burst.
  double PredictExecutePowerW(double cycles, double mem_lines) const;

 private:
  /// Integrates dt seconds at the given CPU power and disk activity
  /// premiums into the ledger, PSU and sensors.
  void Accrue(double dt_s, double cpu_w, double disk_extra_5v_w,
              double disk_extra_12v_w, double mem_access_j);

  double CpuIdlePowerW() const;

  MachineConfig config_;
  SimClock clock_;
  CpuModel cpu_;
  MemoryModel mem_;
  DiskModel disk_;
  PsuModel psu_;
  EpuSensor epu_;
  EnergyLedger ledger_;
  LoadClass load_class_ = LoadClass::kSustained;
  std::vector<CpuModel> cores_;         ///< per-core P-state models
  std::vector<CoreLedger> core_ledgers_;
  std::vector<CorePhase> core_phases_;   ///< named ledger slices (marks)
  std::vector<CoreLedger> phase_base_;   ///< ledger snapshot at last mark

  uint64_t disk_fault_countdown_ = 0;
  bool disk_faulted_ = false;
  bool fault_armed_ = false;
};

}  // namespace ecodb

#endif  // ECODB_SIM_MACHINE_H_

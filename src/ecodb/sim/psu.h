// Power-supply model: DC -> wall conversion with a load-dependent
// efficiency curve (Corsair VX450W, "80plus"; the paper estimates ~83 %
// efficiency at its system's ~20 % load and notes Table 1 contains the
// resulting PSU losses).

#ifndef ECODB_SIM_PSU_H_
#define ECODB_SIM_PSU_H_

#include <vector>

namespace ecodb {

struct PsuConfig {
  double rated_w;
  std::vector<double> curve_load;  ///< ascending load fractions
  std::vector<double> curve_eff;   ///< efficiency at each load point
  double standby_dc_w;             ///< DC draw with system soft-off
  double standby_efficiency;

  static PsuConfig CorsairVx450();
};

class PsuModel {
 public:
  explicit PsuModel(const PsuConfig& config) : config_(config) {}

  /// Conversion efficiency at the given DC load (piecewise linear).
  double Efficiency(double dc_w) const;

  /// Wall (AC) power required to deliver dc_w to the components.
  double WallPowerW(double dc_w) const;

  /// Wall power with the system soft-off (Table 1 row 1).
  double StandbyWallPowerW() const;

  const PsuConfig& config() const { return config_; }

 private:
  PsuConfig config_;
};

}  // namespace ecodb

#endif  // ECODB_SIM_PSU_H_

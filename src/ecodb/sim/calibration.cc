#include "ecodb/sim/calibration.h"

#include "ecodb/sim/settings.h"
#include "ecodb/util/strings.h"

namespace ecodb {

const char* ToString(VoltageDowngrade d) {
  switch (d) {
    case VoltageDowngrade::kStock:
      return "stock";
    case VoltageDowngrade::kSmall:
      return "small";
    case VoltageDowngrade::kMedium:
      return "medium";
    case VoltageDowngrade::kAggressive:
      return "aggressive";
  }
  return "?";
}

const char* ToString(LoadClass c) {
  switch (c) {
    case LoadClass::kBursty:
      return "bursty";
    case LoadClass::kSustained:
      return "sustained";
  }
  return "?";
}

std::string SystemSettings::ToString() const {
  return StrFormat("uc=%.0f%% %s", underclock * 100.0,
                   ecodb::ToString(downgrade));
}

}  // namespace ecodb

#include "ecodb/sim/cpu.h"

#include <algorithm>
#include <cmath>

#include "ecodb/sim/calibration.h"
#include "ecodb/util/strings.h"

namespace ecodb {

CpuConfig CpuConfig::E8500() {
  CpuConfig c;
  c.stock_fsb_hz = calib::kStockFsbHz;
  c.multipliers.assign(calib::kMultipliers,
                       calib::kMultipliers + calib::kNumPStates);
  for (int d = 0; d < 4; ++d) {
    for (int l = 0; l < 2; ++l) c.load_voltage[d][l] = calib::kLoadVoltage[d][l];
    c.idle_voltage[d] = calib::kIdleVoltage[d];
  }
  c.dynamic_k = calib::kCpuDynamicK;
  c.uncore_k = calib::kCpuUncoreK;
  c.stall_activity = calib::kStallActivityFactor;
  c.idle_activity = calib::kIdleActivityFactor;
  c.firmware_activity = calib::kFirmwareActivityFactor;
  c.fan_w = calib::kCpuFanW;
  c.vmin_base = calib::kStabilityVminBase;
  c.vmin_per_ghz = calib::kStabilityVminPerGHz;
  return c;
}

CpuModel::CpuModel(const CpuConfig& config) : config_(config) {}

Status CpuModel::ApplySettings(const SystemSettings& settings) {
  if (settings.underclock < 0.0 || settings.underclock >= 0.5) {
    return Status::InvalidArgument(
        StrFormat("underclock fraction %.3f out of [0, 0.5)",
                  settings.underclock));
  }
  ECODB_RETURN_NOT_OK(CheckStability(config_, settings));
  settings_ = settings;
  return Status::OK();
}

double CpuModel::FsbHz() const {
  return config_.stock_fsb_hz * (1.0 - settings_.underclock);
}

double CpuModel::FrequencyHz(int pstate) const {
  return config_.multipliers[static_cast<size_t>(pstate)] * FsbHz();
}

double CpuModel::TopFrequencyHz() const {
  return FrequencyHz(num_pstates() - 1);
}

double CpuModel::IdleFrequencyHz() const { return FrequencyHz(0); }

double CpuModel::LoadVoltage(LoadClass cls) const {
  return config_.load_voltage[static_cast<int>(settings_.downgrade)]
                             [static_cast<int>(cls)];
}

double CpuModel::IdleVoltage() const {
  return config_.idle_voltage[static_cast<int>(settings_.downgrade)];
}

double CpuModel::BusyPowerW(LoadClass cls) const {
  double v = LoadVoltage(cls);
  double f = TopFrequencyHz();
  return config_.dynamic_k * v * v * f + config_.uncore_k * v * v;
}

double CpuModel::StallPowerW(LoadClass cls) const {
  double v = LoadVoltage(cls);
  double f = TopFrequencyHz();
  return config_.dynamic_k * config_.stall_activity * v * v * f +
         config_.uncore_k * v * v;
}

double CpuModel::IdlePowerW() const {
  double v = IdleVoltage();
  double f = IdleFrequencyHz();
  return config_.dynamic_k * config_.idle_activity * v * v * f +
         config_.uncore_k * v * v;
}

double CpuModel::FirmwarePowerW() const {
  // Firmware halts at the top p-state (no EIST governor yet).
  double v = LoadVoltage(LoadClass::kBursty);
  double f = TopFrequencyHz();
  return config_.dynamic_k * config_.firmware_activity * v * v * f +
         config_.uncore_k * v * v;
}

double CpuModel::TheoreticalEdpFactor(LoadClass cls) const {
  double v = LoadVoltage(cls);
  return v * v / TopFrequencyHz();
}

double CpuModel::PstateCapFrequencyHz(double max_multiplier) const {
  // The cap lives in multiplier space; the frequency it realizes follows
  // the *effective* FSB, so capping composes with an active underclock the
  // same way every other frequency accessor does.
  double mult = config_.multipliers.front();
  for (double m : config_.multipliers) {
    if (m <= max_multiplier) mult = std::max(mult, m);
  }
  return mult * FsbHz();
}

Status CpuModel::CheckStability(const CpuConfig& config,
                                const SystemSettings& settings) {
  int d = static_cast<int>(settings.downgrade);
  double fsb = config.stock_fsb_hz * (1.0 - settings.underclock);
  // Every *visited* operating point must satisfy V >= V_min(F). The model
  // only ever runs two points: the deepest idle state at the idle voltage
  // (EIST idle) and the top p-state at the load voltage (busy/stalled
  // work). Mid p-states are never paired with the idle voltage, so
  // checking them there — as PC Probe II naively sweeping the table
  // would — spuriously rejects combinations that are stable everywhere
  // the machine actually operates.
  struct OperatingPoint {
    size_t pstate;
    double voltage;
  };
  const OperatingPoint points[] = {
      {0, config.idle_voltage[d]},
      {config.multipliers.size() - 1,
       std::min(config.load_voltage[d][0], config.load_voltage[d][1])},
  };
  for (const OperatingPoint& p : points) {
    double f_ghz = config.multipliers[p.pstate] * fsb / 1e9;
    double vmin = config.vmin_base + config.vmin_per_ghz * f_ghz;
    if (p.voltage < vmin) {
      return Status::UnstableSettings(StrFormat(
          "p-state %zu at %.2f GHz needs >= %.3f V but has %.3f V "
          "(downgrade=%s, underclock=%.0f%%)",
          p.pstate, f_ghz, vmin, p.voltage, ecodb::ToString(settings.downgrade),
          settings.underclock * 100));
    }
  }
  return Status::OK();
}

}  // namespace ecodb

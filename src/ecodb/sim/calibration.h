// Calibration constants for the simulated test machine.
//
// The paper's system under test (Section 3.1): ASUS P5Q3 Deluxe, Intel
// Core2 Duo E8500 (9.5 x 333 MHz = 3.16 GHz), 2x1 GB DDR3, GeForce 8400GS,
// WD Caviar SE16 320 GB, Corsair VX450W PSU, measured with a Yokogawa
// WT210 wall meter and the motherboard's EPU CPU-power sensor.
//
// Every constant below is annotated with the paper number it was
// calibrated against. Changing one of these intentionally de-calibrates a
// reproduced figure; the calibration tests in tests/sim_calibration_test.cc
// pin the derived quantities.

#ifndef ECODB_SIM_CALIBRATION_H_
#define ECODB_SIM_CALIBRATION_H_

namespace ecodb::calib {

// ---------------------------------------------------------------------------
// CPU (Intel Core2 Duo E8500)
// ---------------------------------------------------------------------------

/// Stock front-side bus, Hz. E8500: 333 MHz quad-pumped; multiplier 9.5
/// gives the rated 3.16 GHz (paper Section 3: "a CPU on a 333MHz FSB").
inline constexpr double kStockFsbHz = 333.333e6;

/// Available p-state multipliers (paper's example uses 6..9; the E8500's
/// top multiplier is 9.5). Index 0 is the deepest idle state.
inline constexpr double kMultipliers[] = {6.0, 7.0, 8.0, 9.5};
inline constexpr int kNumPStates = 4;

/// Effective core voltage at the top p-state, indexed by
/// [VoltageDowngrade][LoadClass] (see sim/settings.h for why voltage is
/// load-class dependent). Calibrated so that:
///   - bursty/medium at 5 % underclock yields the commercial DBMS's
///     −49 % CPU energy at +3..5 % time (Figure 1 / Section 1), and
///   - sustained voltages reproduce MySQL's Figure 3 EDP deltas
///     (small: −7/−0.4/+9 %, medium: −16/−8/0 %) through pure V^2/F
///     physics (Figure 4).
inline constexpr double kLoadVoltage[4][2] = {
    // bursty,  sustained
    {1.2625, 1.1000},  // stock
    {1.0125, 1.0350},  // small downgrade
    {0.8800, 0.9800},  // medium downgrade
    {0.7000, 0.7500},  // aggressive (unstable; for failure injection)
};

/// Core voltage in the deepest idle p-state, per downgrade level.
inline constexpr double kIdleVoltage[4] = {0.850, 0.820, 0.790, 0.700};

/// Dynamic-power constant K in P_dyn = K * V^2 * F * activity (paper
/// Section 3.4: "circuit power can be modeled as C V^2 F"). Calibrated so
/// the commercial TPC-H workload averages ~25.3 W package power
/// (1228.7 J / 48.5 s, Section 3.5) given its compute/stall mix.
inline constexpr double kCpuDynamicK = 6.6e-9;

/// Activity factor of a core stalled on DRAM relative to full compute
/// (clock gating during stalls). This is why memory-/result-bound phases
/// (e.g. QED's merged query delivering 70 % of the table) draw visibly
/// less CPU power than scan-bound phases — the effect implied by the
/// paper's Figure 6 energy-vs-time ratios.
inline constexpr double kStallActivityFactor = 0.37;

/// Uncore/leakage power U in P_uncore = U * V^2 (watts per volt^2).
inline constexpr double kCpuUncoreK = 5.0;

/// Activity factor of a halted (EIST idle) core relative to a busy one.
inline constexpr double kIdleActivityFactor = 0.30;

/// Activity factor when only firmware is running (no OS; Table 1 stages
/// where the board is on but nothing is installed beyond the CPU).
inline constexpr double kFirmwareActivityFactor = 0.10;

/// Stock CPU fan, watts (Table 1 counts "CPU includes fan").
inline constexpr double kCpuFanW = 2.4;

/// Minimum stable voltage model: V_min(F) = a + b * F_GHz. The paper's
/// "small"/"medium" settings ran without PC Probe II warnings; our
/// kAggressive level violates this line and is rejected.
inline constexpr double kStabilityVminBase = 0.55;
inline constexpr double kStabilityVminPerGHz = 0.08;

// ---------------------------------------------------------------------------
// Memory (DDR3 on the Northbridge; frequency is a multiple of the FSB,
// so underclocking slows memory too — paper Section 3)
// ---------------------------------------------------------------------------

/// Memory bus frequency = kMemMultiplier * FSB (DDR3-1066 on a 333 FSB).
inline constexpr double kMemMultiplier = 3.2;

/// Peak bandwidth: 8 bytes per transfer at the (DDR) bus rate.
inline constexpr double kMemBytesPerTransfer = 8.0;

/// DRAM core latency component, seconds. This part is set by absolute
/// nanosecond timings (tRCD/tRP/CAS) and does NOT scale with the bus —
/// the mechanism that keeps the commercial workload's response time at
/// only +3 % for a 5 % underclock while deeper underclocks go convex.
inline constexpr double kDramCoreLatencyS = 55e-9;

/// Cache line (memory access granularity), bytes.
inline constexpr double kCacheLineBytes = 64.0;

/// Energy per 64 B DRAM line transferred, joules.
inline constexpr double kDramAccessEnergyJ = 15e-9;

/// Background (refresh + standby) power per DIMM and the one-time memory
/// controller activation cost. Calibrated against Table 1: +4.3 W wall
/// for the first 1 GB DIMM, +1.7 W for the second.
inline constexpr double kDimmBackgroundW = 1.9;
inline constexpr double kMemControllerW = 2.0;
inline constexpr double kSecondDimmBackgroundW = 1.5;

// ---------------------------------------------------------------------------
// Disk (WD Caviar SE16 320 GB SATA; 5 V electronics rail + 12 V spindle
// rail, measured separately in the paper's Section 3.5)
// ---------------------------------------------------------------------------

/// Streaming (sequential) transfer rate. Figure 5(a): sequential
/// throughput is flat across read sizes.
inline constexpr double kDiskSeqRateBps = 80.0e6;

/// Effective media rate during short random transfers (no streaming
/// pipeline). Together with kDiskRandomPosS this reproduces Figure 5's
/// random-throughput ratios 1.88x / 3.5x / 6x at 8/16/32 KB vs 4 KB.
inline constexpr double kDiskRandRateBps = 6.4e6;

/// Average positioning time (seek + rotational latency) per random read.
inline constexpr double kDiskRandomPosS = 12.5e-3;

/// Positioning overhead charged per sequential request (command overhead;
/// tiny — Figure 5(a) shows sequential throughput flat even at 4 KB
/// requests, so per-request cost must be << transfer time).
inline constexpr double kDiskSeqPosS = 1.0e-6;

/// 5 V rail (controller/electronics): idle and extra-when-transferring.
/// Calibrated with the 12 V numbers against Section 3.5: warm run disk
/// energy 214.7 J over 48.5 s (≈4.4 W, idle-dominated) and cold run
/// 1135.4 J over 156 s (≈7.3 W, seek-heavy).
inline constexpr double kDisk5vIdleW = 1.25;
inline constexpr double kDisk5vActiveExtraW = 0.60;

/// 12 V rail (spindle always spinning; seeks add actuator power).
inline constexpr double kDisk12vSpinW = 3.00;
inline constexpr double kDisk12vSeekExtraW = 5.00;

// ---------------------------------------------------------------------------
// Motherboard / GPU (Table 1 build-up)
// ---------------------------------------------------------------------------

/// DC draw of PSU+motherboard with the system soft-off; the paper's wall
/// reading is 9.2 W at ~50 % standby conversion efficiency.
inline constexpr double kStandbyDcW = 4.6;
inline constexpr double kStandbyEfficiency = 0.50;

/// Motherboard DC draw once powered on (Table 1 row 2: 20.1 W wall).
inline constexpr double kMoboOnDcW = 13.2;

/// Extra board circuitry activated when a CPU is installed (the paper
/// notes installing the CPU "activates other components"; Table 1 row 3).
inline constexpr double kCpuActivationDcW = 10.5;

/// GeForce 8400GS idle DC draw (Table 1 row 6: 69.3 W wall).
inline constexpr double kGpuIdleDcW = 11.8;

// ---------------------------------------------------------------------------
// PSU (Corsair VX450W, "80plus" labeled; paper estimates ~83 % at the
// ~20 % load its system exhibits)
// ---------------------------------------------------------------------------

inline constexpr double kPsuRatedW = 450.0;

/// Piecewise-linear efficiency curve: (load fraction, efficiency).
inline constexpr int kPsuCurvePoints = 7;
inline constexpr double kPsuCurveLoad[kPsuCurvePoints] = {
    0.00, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00};
inline constexpr double kPsuCurveEff[kPsuCurvePoints] = {
    0.55, 0.62, 0.70, 0.77, 0.83, 0.85, 0.82};

// ---------------------------------------------------------------------------
// Sensors
// ---------------------------------------------------------------------------

/// EPU / 6-Engine GUI refresh period (paper Section 3.1: "about 1 second").
inline constexpr double kEpuSamplePeriodS = 1.0;

}  // namespace ecodb::calib

#endif  // ECODB_SIM_CALIBRATION_H_

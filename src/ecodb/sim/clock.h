// Virtual time for the machine simulation.

#ifndef ECODB_SIM_CLOCK_H_
#define ECODB_SIM_CLOCK_H_

#include <cassert>

namespace ecodb {

/// Monotone simulated clock measured in double seconds. All workload
/// "response times" reported by ecoDB are simulated seconds from this
/// clock; wall-clock execution speed of the host is irrelevant.
class SimClock {
 public:
  double Now() const { return now_s_; }

  /// Advances time by dt seconds (dt >= 0).
  void Advance(double dt_s) {
    assert(dt_s >= 0.0);
    now_s_ += dt_s;
  }

  /// Restarts the clock at zero (used between experiment runs).
  void Reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace ecodb

#endif  // ECODB_SIM_CLOCK_H_

// CPU model: p-states, underclocking, voltage downgrades, CV^2F power.
//
// Implements the paper's Section 3 machinery:
//  * p-states are (multiplier, voltage) pairs; frequency = multiplier x FSB;
//  * PVC underclocks the FSB, scaling *all* p-states down (unlike p-state
//    capping, which removes top states — see PstateCapFrequency for the
//    comparison the paper draws);
//  * power follows P = K V^2 F (+ uncore V^2 leakage), the model the paper
//    validates in Section 3.4 / Figure 4;
//  * a stability monitor plays the role of ASUS PC Probe II, rejecting
//    voltage/frequency combinations below the stable-voltage line.

#ifndef ECODB_SIM_CPU_H_
#define ECODB_SIM_CPU_H_

#include <vector>

#include "ecodb/sim/settings.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// Configuration of the simulated processor. Defaults model the paper's
/// E8500; tests construct variants.
struct CpuConfig {
  double stock_fsb_hz;
  std::vector<double> multipliers;  ///< ascending; last = top p-state
  /// Effective top-p-state voltage per [downgrade][load class].
  double load_voltage[4][2];
  double idle_voltage[4];
  double dynamic_k;              ///< P_dyn = dynamic_k * V^2 * F * activity
  double uncore_k;               ///< P_uncore = uncore_k * V^2
  double stall_activity;         ///< activity while stalled on DRAM
  double idle_activity;          ///< activity factor of EIST-idle state
  double firmware_activity;      ///< activity with no OS loaded
  double fan_w;                  ///< constant fan draw
  double vmin_base;              ///< stability: V_min = base + per_ghz*F_GHz
  double vmin_per_ghz;

  /// The paper's testbed CPU.
  static CpuConfig E8500();
};

/// Stateless-ish CPU model; the only mutable state is the applied
/// SystemSettings. All power/time queries are pure functions of settings.
class CpuModel {
 public:
  explicit CpuModel(const CpuConfig& config);

  /// Validates stability (PC Probe II role) and applies the settings.
  /// Returns kUnstableSettings if any p-state would run below V_min.
  Status ApplySettings(const SystemSettings& settings);

  const SystemSettings& settings() const { return settings_; }
  const CpuConfig& config() const { return config_; }

  /// Effective FSB under the current underclock.
  double FsbHz() const;

  /// Frequency of p-state i (0 = deepest idle ... top).
  double FrequencyHz(int pstate) const;
  double TopFrequencyHz() const;
  double IdleFrequencyHz() const;
  int num_pstates() const { return static_cast<int>(config_.multipliers.size()); }

  /// Effective voltage at the top p-state for the given load class under
  /// the current downgrade.
  double LoadVoltage(LoadClass cls) const;
  double IdleVoltage() const;

  /// Package power with one core busy at the top p-state.
  double BusyPowerW(LoadClass cls) const;
  /// Package power while stalled on DRAM at the top p-state.
  double StallPowerW(LoadClass cls) const;
  /// Package power in the EIST idle state (OS running).
  double IdlePowerW() const;
  /// Package power with only firmware running (Table 1 build-up stages).
  double FirmwarePowerW() const;

  /// The paper's theoretical EDP factor V^2/F (Section 3.4, Figure 4),
  /// evaluated at the top p-state for the given load class.
  double TheoreticalEdpFactor(LoadClass cls) const;

  /// Frequency that p-state *capping* to `max_multiplier` would produce
  /// at the current effective FSB — the coarse alternative the paper
  /// contrasts with underclocking (Section 3: capping at 7 drops 3 GHz to
  /// 2.3 GHz at stock FSB). The cap selects a multiplier; the realized
  /// frequency follows FsbHz(), so it composes with an underclock.
  double PstateCapFrequencyHz(double max_multiplier) const;

  /// Static stability check (usable without constructing a model).
  /// Validates the operating points the model actually visits — deepest
  /// idle state at idle voltage, top p-state at load voltage — not every
  /// (mid p-state, idle voltage) pairing.
  static Status CheckStability(const CpuConfig& config,
                               const SystemSettings& settings);

 private:
  CpuConfig config_;
  SystemSettings settings_;
};

}  // namespace ecodb

#endif  // ECODB_SIM_CPU_H_

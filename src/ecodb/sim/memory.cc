#include "ecodb/sim/memory.h"

#include <algorithm>

#include "ecodb/sim/calibration.h"

namespace ecodb {

MemoryConfig MemoryConfig::Ddr3_1066() {
  MemoryConfig c;
  c.mem_multiplier = calib::kMemMultiplier;
  c.bytes_per_transfer = calib::kMemBytesPerTransfer;
  c.core_latency_s = calib::kDramCoreLatencyS;
  c.line_bytes = calib::kCacheLineBytes;
  c.access_energy_j = calib::kDramAccessEnergyJ;
  c.dimm_background_w = calib::kDimmBackgroundW;
  c.second_dimm_background_w = calib::kSecondDimmBackgroundW;
  c.controller_w = calib::kMemControllerW;
  return c;
}

MemoryModel::MemoryModel(const MemoryConfig& config, int num_dimms)
    : config_(config),
      num_dimms_(num_dimms),
      fsb_hz_(calib::kStockFsbHz) {}

double MemoryModel::BaseAccessTimeS() const {
  return config_.core_latency_s + config_.line_bytes / BandwidthBps();
}

double MemoryModel::ContentionFactor(double rho) const {
  // Cap utilization; past ~0.97 the open-loop M/M/1 form explodes and the
  // simulation would report absurd times rather than "saturated".
  rho = std::clamp(rho, 0.0, 0.97);
  return 1.0 / (1.0 - rho);
}

double MemoryModel::BackgroundPowerW() const {
  if (num_dimms_ <= 0) return 0.0;
  double w = config_.controller_w + config_.dimm_background_w;
  if (num_dimms_ > 1) {
    w += (num_dimms_ - 1) * config_.second_dimm_background_w;
  }
  return w;
}

}  // namespace ecodb

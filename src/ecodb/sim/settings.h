// System-level power/performance settings: the knobs the paper's PVC
// technique turns (Section 3): FSB underclocking percentage and CPU
// voltage downgrade level, as exposed by the ASUS 6-Engine utility on the
// paper's testbed.

#ifndef ECODB_SIM_SETTINGS_H_
#define ECODB_SIM_SETTINGS_H_

#include <string>

namespace ecodb {

/// CPU voltage downgrade presets (paper Section 3.3: the ASUS "small" and
/// "medium" voltage downgrades; kAggressive is a deliberately unstable
/// level used for failure-injection testing — PC Probe II would warn).
enum class VoltageDowngrade {
  kStock = 0,
  kSmall = 1,
  kMedium = 2,
  kAggressive = 3,
};

/// How the workload loads the CPU. The paper's two systems behave
/// differently under the same downgrade (−49 % CPU energy on the
/// commercial DBMS vs −20 % on MySQL): a bursty, I/O-interleaved load sees
/// the full set-point voltage while a pegged, sustained load runs at a
/// drooped (load-line) voltage, compressing the effective downgrade. We
/// model effective voltage per load class; see sim/calibration.h.
enum class LoadClass {
  kBursty = 0,     ///< commercial DBMS profile: I/O-interleaved load
  kSustained = 1,  ///< MySQL memory-engine profile: pegged CPU
};

/// One PVC operating point.
struct SystemSettings {
  /// FSB underclock as a fraction: 0.05 == the paper's "5 %" setting.
  /// Must lie in [0, 0.5).
  double underclock = 0.0;

  /// Voltage downgrade preset.
  VoltageDowngrade downgrade = VoltageDowngrade::kStock;

  bool operator==(const SystemSettings& o) const {
    return underclock == o.underclock && downgrade == o.downgrade;
  }

  /// The paper's "stock setting": no underclock, no downgrade.
  static SystemSettings Stock() { return SystemSettings{}; }

  /// Human-readable label, e.g. "uc=5% medium".
  std::string ToString() const;
};

const char* ToString(VoltageDowngrade d);
const char* ToString(LoadClass c);

}  // namespace ecodb

#endif  // ECODB_SIM_SETTINGS_H_

// Volcano-style physical operators.
//
// Each operator pulls rows from its children and reports its logical work
// to the ExecContext, which converts it into simulated CPU cycles, DRAM
// traffic and disk I/O. Open/Next/Close life cycle; Next sets *has_row =
// false at end of stream.

#ifndef ECODB_EXEC_OPERATORS_H_
#define ECODB_EXEC_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ecodb/exec/exec_context.h"
#include "ecodb/exec/expr.h"
#include "ecodb/exec/hash_table.h"
#include "ecodb/exec/result_set.h"
#include "ecodb/exec/row_batch.h"
#include "ecodb/exec/typed_column.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/storage/schema.h"
#include "ecodb/util/status.h"

namespace ecodb {

// Morsel-parallel breaker drivers (exec/morsel.cc). They rebuild the
// private consume state of HashAggOp / SortOp from worker-shipped
// fragments with the exact single-threaded charge sequence, so the
// operators friend them instead of exposing their internals.
class MorselAggDriver;
class MorselSortDriver;

class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  virtual Status Next(Row* out, bool* has_row) = 0;

  /// Vectorized pull: fills `out` (Reset by the callee) with up to
  /// RowBatch::kDefaultBatchRows tuples and sets *has_rows = false at end
  /// of stream. A returned batch always has at least one selected row.
  /// Pipeline breakers consult ExecContext::exec_mode() at Open to decide
  /// how to consume their children; the mode a tree is *driven* in is
  /// decided by the root caller (ExecuteOperator). The base implementation
  /// adapts row-at-a-time Next.
  virtual Status NextBatch(RowBatch* out, bool* has_rows);

  /// Bounded vectorized pull: like NextBatch, but emits at most
  /// `max_rows` selected rows. Only meaningful on operators whose
  /// emission is materialized (see MaterializedEmission) — they MUST
  /// override it to gather exactly the requested slice (the base
  /// implementation asserts it is never reached on one, then forwards
  /// to NextBatch ignoring the bound).
  virtual Status NextBatchCapped(RowBatch* out, bool* has_rows,
                                 size_t max_rows);

  /// True when this operator emits from operator-local materialized state
  /// — Next/NextBatch perform no child pulls and no ExecContext charges.
  /// A parent (LimitOp) may then pull batches and stop early without
  /// perturbing any counter the simulation sees: all the work below
  /// happened at Open, identically in both execution modes. Pipeline
  /// breakers (sort, aggregation) return true; LimitOp forwards its
  /// child's answer (its own emission adds no charges).
  virtual bool MaterializedEmission() const { return false; }

  virtual void Close() = 0;
  virtual const Schema& schema() const = 0;
  virtual std::string name() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Aggregate function specification for HashAggOp.
struct AggSpec {
  enum class Kind { kSum, kCount, kAvg, kMin, kMax };
  Kind kind = Kind::kSum;
  ExprPtr arg;  ///< null for COUNT(*)
  std::string name;

  ValueType ResultType() const;
};

/// Sort key: expression over the input row + direction.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Full-table scan. Charges per-tuple CPU cost and (for disk-backed
/// profiles) page I/O, mixing in a random fetch every
/// cold_random_page_period pages.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(ExecContext* ctx, const std::string& table_name);
  /// Range-restricted scan over rows [begin_row, end_row): the morsel
  /// unit. Morsel boundaries are multiples of the batch size, so the
  /// batches (and per-batch charges) a restricted scan emits are exactly
  /// the full scan's batches for that range.
  SeqScanOp(ExecContext* ctx, const std::string& table_name,
            uint64_t begin_row, uint64_t end_row);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "SeqScan(" + table_name_ + ")"; }

 private:
  ExecContext* ctx_;
  std::string table_name_;
  Schema schema_;
  const Table* table_ = nullptr;
  const HeapFile* file_ = nullptr;
  size_t next_row_ = 0;
  uint64_t begin_row_ = 0;
  uint64_t end_row_ = ~0ull;  ///< exclusive; clamped to the table at Open
  uint64_t pages_fetched_ = 0;
  int row_width_ = 0;
};

class FilterOp : public Operator {
 public:
  FilterOp(ExecContext* ctx, OperatorPtr child, ExprPtr predicate);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  void Close() override;
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }

  uint64_t rows_in() const { return rows_in_; }
  uint64_t rows_out() const { return rows_out_; }

 private:
  ExecContext* ctx_;
  OperatorPtr child_;
  ExprPtr predicate_;
  ExprScratch scratch_;  ///< reusable temporaries for FilterBatch
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(ExecContext* ctx, OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Project"; }

 private:
  /// Evaluates exprs_[i] into column `i` of `out`, preferring typed
  /// output: a ColumnExpr over an unboxed input column becomes a typed
  /// lane gather, a double arithmetic subtree is computed straight into a
  /// double lane, and everything else falls back to boxed EvalBatch.
  void EvalExprInto(size_t i, RowBatch* out);

  ExecContext* ctx_;
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  RowBatch input_batch_;  ///< batch-mode scratch
  ExprScratch scratch_;
};

/// In-memory hash join (equi-join). children: build (left) and probe
/// (right); output schema = build fields ++ probe fields. For disk-backed
/// profiles a grace-hash spill of build+probe bytes is charged per the
/// profile's spill_fraction.
///
/// The build side lives in a FlatHashIndex over a contiguous column-major
/// payload pool of TypedColumns; duplicate keys chain in insertion
/// order, preserving multimap semantics. Both execution modes probe the
/// same table: batch mode hashes all selected probe keys of a batch up
/// front (typed, unboxed for lazily-bound scan batches and lane columns),
/// accumulates the matched (build entry, probe row) pairs of a batch, and
/// emits them with a *columnar gather* — raw values from the typed build
/// pool and the probe batch straight into typed output lanes, with
/// strings carried by pointer from stable storage (build pool / table)
/// instead of copied per match. Row mode hashes the materialized probe
/// row — identical hashes, identical chain walks, identical
/// bucket-compare and key-equality counts.
/// The build side of a hash join, immutable once built: the flat index
/// over a typed column-major payload pool, plus the build child's schema
/// and accounting totals. Extracted from HashJoinOp so morsel workers can
/// probe ONE shared build table concurrently — FlatHashIndex::Find/Next
/// and TypedColumn::View/GatherInto are const — while the coordinator
/// built it sequentially with the exact single-threaded charge sequence.
struct JoinBuildState {
  FlatHashIndex index;
  std::vector<TypedColumn> cols;  ///< typed column-major build pool
  uint32_t num_rows = 0;
  uint64_t bytes = 0;
  Schema schema;  ///< the build child's output schema

  /// Tears the pool down (releases tracked bytes); the owner calls this
  /// once probing is over, matching the single-threaded Close.
  void Clear() {
    index.Reset();
    cols.clear();
    num_rows = 0;
  }
};

using JoinBuildStatePtr = std::shared_ptr<JoinBuildState>;

class HashJoinOp : public Operator {
 public:
  HashJoinOp(ExecContext* ctx, OperatorPtr build, OperatorPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys);
  /// Probe-only join over a prebuilt shared build side (morsel workers).
  /// Open skips the build phase (no build charges, no build spill) and
  /// Close leaves the shared state alive — the coordinator owns its
  /// teardown.
  HashJoinOp(ExecContext* ctx, JoinBuildStatePtr build, OperatorPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys);

  /// Deferred build: Open invokes `build_thunk` at the exact position the
  /// normal ctor's build phase runs (so its charges land where a
  /// single-threaded build's would) and takes ownership of the returned
  /// state — Close tears it down like an owned build. The morsel layer
  /// uses this to run a *parallel partitioned* build for joins that sit
  /// outside any parallel spine (e.g. under a limit).
  using BuildThunk = std::function<Result<JoinBuildStatePtr>(ExecContext*)>;
  HashJoinOp(ExecContext* ctx, BuildThunk build_thunk, OperatorPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys);

  /// Runs `build_child` to completion on `ctx` and returns the shared
  /// build state, with the exact charge sequence of a normal Open's build
  /// phase: child Open, per-batch build charges + ordered inserts, child
  /// Close, grace-hash spill charge.
  static Result<JoinBuildStatePtr> ExecuteBuild(
      ExecContext* ctx, Operator* build_child,
      const std::vector<int>& build_keys);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashJoin"; }

 private:
  /// Key-equality of build entry `idx` against a materialized probe row /
  /// a probe row living in a batch. Both count one comparison per key
  /// column compared (short-circuit), so the modes stay in lockstep.
  bool KeysEqualRow(uint32_t idx, const Row& probe_row);
  bool KeysEqualBatch(uint32_t idx, const RowBatch& probe_batch,
                      uint32_t probe_row);
  /// Gathers the accumulated match pairs into `out` and clears them.
  /// Must run before the probe batch they reference is replaced.
  void FlushMatches(RowBatch* out);

  ExecContext* ctx_;
  OperatorPtr build_child_, probe_child_;  ///< build_child_ null if prebuilt
  std::vector<int> build_keys_, probe_keys_;
  Schema schema_;

  JoinBuildStatePtr build_;  ///< owned (normal) or shared-const (prebuilt)
  BuildThunk build_thunk_;   ///< deferred owned build; runs at Open
  bool prebuilt_ = false;
  uint32_t match_ = FlatHashIndex::kInvalid;  ///< chain cursor (both modes)
  Row probe_row_;
  bool probe_valid_ = false;
  uint64_t probe_rows_ = 0;

  // Batch-mode probe state: current probe batch, its up-front key hashes
  // (parallel to the selection vector), the position of the in-progress
  // probe row within the selection, and end-of-stream.
  RowBatch probe_batch_;
  std::vector<size_t> probe_hashes_;
  size_t probe_sel_pos_ = 0;
  bool probe_batch_valid_ = false;
  bool probe_eos_ = false;

  // Gather-emission scratch: matched build entries and probe rows of the
  // output batch under construction (flushed per probe batch).
  std::vector<uint32_t> match_build_;
  std::vector<uint32_t> match_probe_;
};

/// Nested-loop join with an arbitrary predicate over the concatenated row
/// (inner side materialized at Open).
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(ExecContext* ctx, OperatorPtr outer, OperatorPtr inner,
                   ExprPtr predicate /* may be null for cross join */);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "NestedLoopJoin"; }

 private:
  /// Materializes the inner side into inner_rows_ (both modes), checking
  /// the governor per pull and charging the pool to the memory tracker.
  Status ConsumeInnerSide();

  ExecContext* ctx_;
  OperatorPtr outer_, inner_;
  ExprPtr predicate_;
  ExprScratch scratch_;
  Schema schema_;
  std::vector<Row> inner_rows_;
  uint64_t inner_pool_bytes_ = 0;  ///< tracked logical bytes of inner_rows_
  /// True when inner_rows_ holds string cells: emitted batches then carry
  /// pointers into this pool (valid until Close, not arena-retained) and
  /// are marked pool-backed so cross-Close borrowers copy instead.
  bool inner_strings_pool_ = false;
  Row outer_row_;
  bool outer_valid_ = false;
  size_t inner_pos_ = 0;

  // Batch-mode outer state.
  RowBatch outer_batch_;
  size_t outer_sel_pos_ = 0;
  bool outer_batch_valid_ = false;
  bool outer_eos_ = false;
};

/// Hash group-by aggregation. With no group-by expressions produces a
/// single global-aggregate row (even for empty input, SQL semantics).
///
/// Emission is columnar in both modes: Open materializes the group pool
/// into one TypedColumn per output field — group keys gathered unboxed
/// from the stored key Rows, SUM/AVG/COUNT accumulators finalized
/// straight into double/int64 lanes — and then drops the pool. NextBatch
/// gathers typed lanes out of those columns (strings by pointer into the
/// columns' arenas, retained by each emitted batch); Next boxes from the
/// same columns, so mixed Next/NextBatch pulls read one immutable store
/// through one cursor.
class HashAggOp : public Operator {
 public:
  HashAggOp(ExecContext* ctx, OperatorPtr child,
            std::vector<ExprPtr> group_by, std::vector<AggSpec> aggs);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  Status NextBatchCapped(RowBatch* out, bool* has_rows,
                         size_t max_rows) override;
  bool MaterializedEmission() const override { return true; }
  void Close() override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashAgg"; }

 private:
  /// Rebuilds groups_/group_index_ from worker partitions with the
  /// canonical (as-if-sequential) charge stream; owns no state of its own
  /// here — see exec/morsel.cc.
  friend class MorselAggDriver;
  struct Accumulator {
    double sum = 0.0;
    uint64_t count = 0;
    Value min, max;
  };
  struct Group {
    Row key;
    std::vector<Accumulator> accs;
  };

  /// How one aggregate's argument is consumed in batch mode: COUNT(*)
  /// needs no argument; a CanEvalDoubleSubtree-approved SUM/AVG/COUNT
  /// argument is computed once per batch into a raw double array (or one
  /// scalar) with no boxing anywhere; everything else resolves to a
  /// BatchOperand and accumulates through unboxed CellViews.
  struct BatchAggArg {
    enum class Mode { kCountStar, kTypedDouble, kOperand };
    Mode mode = Mode::kCountStar;
    BatchOperand operand;
    std::vector<double> doubles;  ///< operator-owned, reused per batch
    double scalar = 0;
    bool is_scalar = false;
  };

  void UpdateGroup(Group* g, const Row& row);
  /// Accumulates row `r` of a batch from the prepared per-agg arguments.
  void UpdateGroupFromBatch(Group* g, const std::vector<BatchAggArg>& args,
                            uint32_t r);
  /// Finds or creates the group for a key presented via `key_at(i)` (an
  /// unboxed CellView of the i-th key component); `make_key()` builds the
  /// stored Row only when a new group is created. One implementation (and
  /// one flat hash table) serves both execution modes so bucket-compare
  /// counting stays in lockstep (the parity invariant). The returned
  /// pointer is valid only until the next call (the contiguous group pool
  /// may reallocate).
  template <typename KeyAt, typename MakeKey>
  Group* FindOrCreateGroup(size_t hash, size_t n_keys, KeyAt&& key_at,
                           MakeKey&& make_key, uint64_t* new_groups);
  Status ConsumeChildRowMode();
  Status ConsumeChildBatchMode();
  /// Materializes the group pool into result_cols_ (column-at-a-time,
  /// hoisted per-column dispatch) and sets n_results_.
  void MaterializeResults();

  ExecContext* ctx_;
  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  ExprScratch scratch_;
  FlatHashIndex group_index_;
  std::vector<Group> groups_;  ///< contiguous pool, insertion order
  uint64_t group_pool_bytes_ = 0;  ///< tracked logical bytes of groups_

  // Dictionary-key memo (batch consume only), used when EVERY group key
  // resolves to the codes of a dict-encoded string column: maps the
  // composite code (mixed-radix over the keys' dictionary sizes) to its
  // group's pool index plus the bucket-compare count the generic chain
  // walk would charge for that key tuple. Chain positions are fixed once
  // inserted (FlatHashIndex chains append at the tail), so a memo hit
  // can skip hashing and the walk entirely while replaying the exact
  // counter delta — the parity invariant holds bit-for-bit. The memo is
  // bounded by kDictMemoMaxEntries (dictionaries themselves cap at
  // Column::kDictMaxEntries each).
  std::vector<const Column*> dict_memo_dicts_;
  std::vector<uint32_t> dict_memo_group_;
  std::vector<uint32_t> dict_memo_cmps_;

  // Columnar result store: one TypedColumn per output field, shared by
  // both emission paths; emit_idx_ is NextBatch's gather-index scratch.
  std::vector<TypedColumn> result_cols_;
  std::vector<uint32_t> emit_idx_;
  size_t n_results_ = 0;
  size_t result_pos_ = 0;
};

/// Sort (pipeline breaker). Row mode keeps the classic path: materialize
/// boxed Rows, decorate with evaluated key Rows, std::sort, emit Rows.
/// Batch mode is columnar end to end: the input is materialized into
/// TypedColumns (strings into refcounted arenas, no Value boxing), sort
/// keys are evaluated vectorized into their own TypedColumns, an *index*
/// vector is sorted comparing unboxed CellViews, and output batches
/// gather typed lanes in sorted order (strings by pointer into the
/// operator's arenas, retained by each emitted batch). Key-evaluation
/// counts and the std::sort comparison sequence are identical across
/// modes — same rows in the same initial order under the same total
/// order — so all parity counters stay bit-exact.
class SortOp : public Operator {
 public:
  SortOp(ExecContext* ctx, OperatorPtr child, std::vector<SortKey> keys);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  Status NextBatchCapped(RowBatch* out, bool* has_rows,
                         size_t max_rows) override;
  bool MaterializedEmission() const override { return true; }
  void Close() override;
  /// A driver-filled sort (morsel-parallel path) has no child; its
  /// schema is stashed in schema_ by the driver.
  const Schema& schema() const override {
    return child_ != nullptr ? child_->schema() : schema_;
  }
  std::string name() const override { return "Sort"; }

 private:
  /// Fills cols_/order_/n_rows_ from worker-sorted runs with the
  /// canonical (as-if-sequential) charge stream — see exec/morsel.cc.
  friend class MorselSortDriver;

  Status ConsumeChildRowMode();
  Status ConsumeChildBatchMode();

  ExecContext* ctx_;
  OperatorPtr child_;  ///< null when a MorselSortDriver fills the state
  std::vector<SortKey> keys_;
  Schema schema_;  ///< only used when child_ == nullptr
  ExprScratch scratch_;

  // Row-mode storage: materialized rows, rearranged into sorted order.
  std::vector<Row> rows_;
  uint64_t row_pool_bytes_ = 0;  ///< tracked logical bytes of rows_

  // Batch-mode storage: the input as typed columns, the evaluated sort
  // keys as typed columns, and the sorted permutation of [0, n_rows_).
  bool columnar_ = false;
  std::vector<TypedColumn> cols_;
  std::vector<TypedColumn> key_cols_;
  std::vector<uint32_t> order_;
  size_t n_rows_ = 0;

  // Per-key dictionary-code mirror (batch consume): when every batch
  // resolves sort key k to dictionary codes of one column, the
  // comparator compares int32 codes instead of string bytes — legal
  // because the dictionary is sorted, so codes are order-preserving.
  // One sort compare is still charged per comparator call, so the
  // parity counters are untouched. Any batch that breaks the pattern
  // clears the flag and the comparator falls back to key_cols_.
  std::vector<std::vector<int32_t>> key_code_vals_;
  std::vector<const Column*> key_dicts_;
  std::vector<char> key_code_ok_;

  size_t pos_ = 0;
};

class LimitOp : public Operator {
 public:
  LimitOp(ExecContext* ctx, OperatorPtr child, int64_t limit);

  Status Open() override;
  Status Next(Row* out, bool* has_row) override;
  /// Batched when the child's emission is materialized (sort,
  /// aggregation, limit thereover): pulls capped batches and truncates
  /// the final one with the selection vector — parity-safe because all
  /// the work below such a child happened at its Open, identically in
  /// both modes, and its emission charges nothing. Streaming children
  /// (scan/filter/join/project) are still pulled row-at-a-time so a
  /// limited pipeline never reads (or charges) ahead of the limit.
  Status NextBatch(RowBatch* out, bool* has_rows) override;
  Status NextBatchCapped(RowBatch* out, bool* has_rows,
                         size_t max_rows) override;
  bool MaterializedEmission() const override {
    return child_->MaterializedEmission();
  }
  void Close() override;
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Limit"; }

 private:
  ExecContext* ctx_;
  OperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

/// Drains an operator tree: Open, Next/NextBatch..., Close, charging
/// per-row output cost, and returns the result *columnar*. Batch mode
/// appends each RowBatch to the ResultSet column-at-a-time (typed lanes
/// and lazy scan columns never box a Value); row mode boxes each Row
/// through the same typed columns, so both modes produce an identical
/// ResultSet and identical logical-work counters.
Result<ResultSet> ExecuteOperatorColumnar(Operator* op, ExecContext* ctx,
                                          ExecMode mode = ExecMode::kBatch);

/// Row-oriented convenience wrapper over ExecuteOperatorColumnar (tests
/// and callers that want std::vector<Row>).
Result<std::vector<Row>> ExecuteOperator(Operator* op, ExecContext* ctx,
                                         ExecMode mode = ExecMode::kBatch);

}  // namespace ecodb

#endif  // ECODB_EXEC_OPERATORS_H_

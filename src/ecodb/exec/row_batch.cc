#include "ecodb/exec/row_batch.h"

namespace ecodb {

CellView RowBatch::LazyView(int col, uint32_t r) const {
  const Column& src = lazy_source_->column(col);
  const size_t row = lazy_start_ + r;
  switch (src.type()) {
    case ValueType::kInt64:
    case ValueType::kDate:
    case ValueType::kBool:
      return CellView::Int64(src.GetInt(row), src.type());
    case ValueType::kDouble:
      return CellView::Double(src.GetDouble(row));
    case ValueType::kString:
      return CellView::String(&src.GetString(row));
    case ValueType::kNull:
      break;  // tables are NOT NULL by construction
  }
  return CellView::Null();
}

void RowBatch::DemoteLaneDense(int i) {
  const size_t c = static_cast<size_t>(i);
  TypedLane& l = lanes_[c];
  if (l.kind == LaneKind::kNone) return;
  const size_t n = l.LaneSize();
  std::vector<Value>& dst = cols_[c];
  dst.clear();
  dst.reserve(n);
  for (uint32_t r = 0; r < n; ++r) dst.push_back(BoxCellView(l.ViewAt(r)));
  l.Clear();
  filled_[c] = 1;
}

void RowBatch::AppendCellDense(int i, ValueType declared, const CellView& v,
                               bool stable_str) {
  const bool null = v.is_null();
  TypedLane* l = nullptr;
  if (null || v.type == declared) l = StartLaneAppend(i, declared);
  if (l == nullptr) {
    // Tag mismatch, unrepresentable type, or the column is already boxed.
    if (lane_active(i)) DemoteLaneDense(i);
    cols_[static_cast<size_t>(i)].push_back(BoxCellView(v));
    return;
  }
  if (null && !l->has_nulls) {
    l->has_nulls = true;
    l->nulls.assign(l->LaneSize(), 0);
  }
  switch (l->kind) {
    case LaneKind::kInt64:
      l->i64.push_back(null ? 0 : v.i);
      break;
    case LaneKind::kDouble:
      l->f64.push_back(null ? 0.0 : v.d);
      break;
    case LaneKind::kStringRef:
      l->str.push_back(null ? nullptr
                            : (stable_str ? v.s : arena()->Intern(*v.s)));
      break;
    case LaneKind::kStringCode:
      // StartLaneAppend never hands out a code lane (kind mismatch with
      // LaneKindFor(kString) demotes it first); unreachable.
      break;
    case LaneKind::kNone:
      break;
  }
  if (l->has_nulls) l->nulls.push_back(null ? 1 : 0);
}

void RowBatch::MaterializeRow(uint32_t r, Row* out) const {
  out->clear();
  out->reserve(cols_.size());
  if (lazy_source_ != nullptr) {
    // Whole-row access: box straight from the table, bypassing the
    // per-column caches (full-width consumers touch every column once).
    lazy_source_->GetRow(lazy_start_ + r, out);
    return;
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (!filled_[c] && lanes_[c].kind != LaneKind::kNone) {
      out->push_back(BoxCellView(lanes_[c].ViewAt(r)));
    } else {
      out->push_back(cols_[c][r]);
    }
  }
}

void RowBatch::EnsureCol(int i) const {
  const size_t c = static_cast<size_t>(i);
  if (filled_[c]) return;
  if (lanes_[c].kind != LaneKind::kNone) {
    // Box only the live positions of the lane.
    const TypedLane& l = lanes_[c];
    std::vector<Value>& dst = cols_[c];
    dst.clear();
    dst.resize(num_rows_);
    for (uint32_t r : sel_) dst[r] = BoxCellView(l.ViewAt(r));
    filled_[c] = 1;
    return;
  }
  if (lazy_source_ == nullptr) return;  // owned boxed column
  std::vector<Value>& dst = cols_[c];
  const Column& src = lazy_source_->column(i);
  dst.clear();
  if (sel_.size() == num_rows_) {
    src.GetValueRange(lazy_start_, num_rows_, &dst);
  } else {
    // Sparse selection: box only the live positions.
    dst.resize(num_rows_);
    for (uint32_t r : sel_) dst[r] = src.GetValue(lazy_start_ + r);
  }
  filled_[c] = 1;
}

}  // namespace ecodb

// Morsel-driven parallel execution over batch pipelines.
//
// A "spine" is the streaming prefix of a batch pipeline — a scan leaf
// under any stack of filters, projections and hash-join *probes*. The
// morsel layer splits the spine's base table into fixed-size row ranges
// (morsels), runs a fresh clone of the spine over each morsel on a pool
// of worker threads, and re-emits the resulting batches to the parent
// operator in global morsel order. The pipeline breakers that *consume*
// spines (hash-join build, aggregation, sort) additionally run their
// build/accumulate phases in the workers, with the coordinator merging
// per-worker partitions deterministically (see "Parallel pipeline
// breakers" in docs/architecture.md).
//
// Parity contract (the whole point): results and logical-work counters
// are bit-exact against single-threaded execution at ANY worker count,
// and simulated energy stays within the row-vs-batch tolerance.
// Three mechanisms deliver that:
//
//  1. Morsel boundaries are multiples of the batch size, so a worker's
//     scan emits exactly the batches the full scan would emit for its
//     range, and concatenating worker outputs in morsel order reproduces
//     the single-threaded row stream.
//  2. Workers charge into *recording* ExecContexts (see
//     ExecContext::BeginRecording): no machine contact, just an ordered
//     ChargeLog per delivered item. The coordinator replays each log
//     segment through its own context in global morsel order,
//     reproducing the single-threaded charge arrival order — the
//     deterministic fold of parallel work into the shared energy ledger.
//  3. Pipeline breakers use *canonical charge accounting*: a worker's
//     recorded log holds only the spine charges (which replay verbatim),
//     while the breaker's own charges — hash builds, group probes,
//     bucket-compare walks, accumulator updates, sort compares — are
//     re-issued by the coordinator itself while it merges the worker
//     partitions in global morsel order, "as if sequential". The
//     coordinator's merge reproduces the exact single-threaded data
//     structures (insertion-order duplicate chains, group pool order,
//     fp-association of accumulator sums, sort permutation), so the
//     re-issued charges are not an approximation: the coordinator's
//     charge stream is bit-identical to the single-threaded one. The
//     work workers really did (partial grouping, local index sorts,
//     partition hashing) is charged into scratch logs that feed ONLY
//     worker stats — the per-core concurrency view — never the parity
//     ledger.
//
// Worker wall-clock totals additionally feed Machine::AccrueCoreWork —
// the per-core concurrency view used by per-core P-state experiments —
// without ever touching the shared parity ledger. Each pool marks a
// named machine phase ("stream", "join_build", "agg", "sort") when it
// accrues, so benches can report per-phase core speedups.

#ifndef ECODB_EXEC_MORSEL_H_
#define ECODB_EXEC_MORSEL_H_

#include <cstdint>

#include "ecodb/exec/plan.h"

namespace ecodb {

/// Rows per morsel. A multiple of RowBatch::kDefaultBatchRows so that
/// batch boundaries inside a morsel coincide with the single-threaded
/// scan's batch boundaries. 8 batches (8192 rows) keeps per-morsel
/// overhead amortized while carving bench-scale tables into enough
/// morsels that a 2-core packing of the per-morsel work comes out
/// near-balanced (16-batch morsels left tpch_q1's lineitem at 8 morsels
/// — a 5/8 vs 3/8 split whose makespan caps the core speedup at 1.84).
inline constexpr uint64_t kMorselRows = 8 * RowBatch::kDefaultBatchRows;

/// True when `node` is a parallelizable spine: a kScan leaf under any
/// stack of kFilter / kProject nodes and kHashJoin probe sides.
bool MorselEligibleSpine(const PlanNode& node);

/// Like InstantiatePlan, but parallelizes every eligible full-drain
/// spine with ctx->exec_workers() workers: streaming spines are wrapped
/// in a MorselStreamOp, and pipeline breakers directly over an eligible
/// spine (aggregate, sort, hash-join build) run their build/accumulate
/// phase in the worker pool with a coordinator-side deterministic
/// merge. Slots that may stop early (a streaming child of kLimit) are
/// never parallelized. With exec_workers() == 1 this is exactly
/// InstantiatePlan. Batch mode only — the morsel operators have no
/// row-at-a-time pull.
Result<OperatorPtr> InstantiateParallelPlan(const PlanNode& node,
                                            ExecContext* ctx);

}  // namespace ecodb

#endif  // ECODB_EXEC_MORSEL_H_

// Morsel-driven parallel execution over streaming plan spines.
//
// A "spine" is the streaming prefix of a batch pipeline — a scan leaf
// under any stack of filters, projections and hash-join *probes*. The
// morsel layer splits the spine's base table into fixed-size row ranges
// (morsels), runs a fresh clone of the spine over each morsel on a pool
// of worker threads, and re-emits the resulting batches to the parent
// operator in global morsel order.
//
// Parity contract (the whole point): results and logical-work counters
// are bit-exact against single-threaded execution at ANY worker count,
// and simulated energy stays within the row-vs-batch tolerance.
// Three mechanisms deliver that:
//
//  1. Morsel boundaries are multiples of the batch size, so a worker's
//     scan emits exactly the batches the full scan would emit for its
//     range, and concatenating worker outputs in morsel order reproduces
//     the single-threaded row stream.
//  2. Workers charge into *recording* ExecContexts (see
//     ExecContext::BeginRecording): no machine contact, just an ordered
//     ChargeLog per delivered batch. The coordinator replays each log
//     segment through its own context immediately before handing the
//     batch upward, reproducing the single-threaded charge arrival
//     order — the deterministic fold of parallel work into the shared
//     energy ledger.
//  3. Shared mutable state never crosses threads: hash-join build sides
//     are built once by the coordinator (exact single-threaded charge
//     sequence, via HashJoinOp::ExecuteBuild) and probed concurrently
//     through const-only paths; everything downstream of the morsel
//     stream (aggregation, sort, limit, output) runs on the coordinator.
//
// Worker wall-clock totals additionally feed Machine::AccrueCoreWork —
// the per-core concurrency view used by per-core P-state experiments —
// without ever touching the shared parity ledger.

#ifndef ECODB_EXEC_MORSEL_H_
#define ECODB_EXEC_MORSEL_H_

#include <cstdint>

#include "ecodb/exec/plan.h"

namespace ecodb {

/// Rows per morsel. A multiple of RowBatch::kDefaultBatchRows so that
/// batch boundaries inside a morsel coincide with the single-threaded
/// scan's batch boundaries.
inline constexpr uint64_t kMorselRows = 16 * RowBatch::kDefaultBatchRows;

/// True when `node` is a parallelizable spine: a kScan leaf under any
/// stack of kFilter / kProject nodes and kHashJoin probe sides.
bool MorselEligibleSpine(const PlanNode& node);

/// Like InstantiatePlan, but wraps every eligible spine that sits in a
/// guaranteed-full-drain slot in a MorselStreamOp running
/// ctx->exec_workers() workers. Slots that may stop early (a streaming
/// child of kLimit) are never wrapped; pipeline-breaker inputs
/// (aggregate/sort children, join build sides, nested-loop inner sides)
/// always drain fully and are. With exec_workers() == 1 this is
/// exactly InstantiatePlan. Batch mode only — the morsel stream has no
/// row-at-a-time pull.
Result<OperatorPtr> InstantiateParallelPlan(const PlanNode& node,
                                            ExecContext* ctx);

}  // namespace ecodb

#endif  // ECODB_EXEC_MORSEL_H_

#include "ecodb/exec/expr.h"

#include <algorithm>
#include <cassert>

#include "ecodb/exec/simd.h"
#include "ecodb/util/strings.h"

namespace ecodb {

namespace {

/// True when `sel` is a contiguous ascending run [front, back] — the
/// common case for scan batches before any filter narrows them. Dense
/// runs feed the SIMD kernels directly from the columnar arrays; sparse
/// selections stay on the scalar per-row loops (a gather would cost more
/// than it saves at typical post-filter densities).
inline bool SelIsDenseRun(const std::vector<uint32_t>& sel) {
  return !sel.empty() &&
         sel.back() - sel.front() + 1 == static_cast<uint32_t>(sel.size());
}

inline simd::CmpOp ToSimdOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return simd::CmpOp::kEq;
    case CompareOp::kNe:
      return simd::CmpOp::kNe;
    case CompareOp::kLt:
      return simd::CmpOp::kLt;
    case CompareOp::kLe:
      return simd::CmpOp::kLe;
    case CompareOp::kGt:
      return simd::CmpOp::kGt;
    case CompareOp::kGe:
      return simd::CmpOp::kGe;
  }
  return simd::CmpOp::kEq;
}

/// Reusable byte-mask / conversion scratch for the SIMD compare paths.
/// thread_local (not ExprScratch) so the kernels can run from any operator
/// without plumbing; grows to batch size once per worker thread, keeping
/// steady-state execution allocation-free.
inline uint8_t* MaskScratch(size_t n) {
  static thread_local std::vector<uint8_t> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

inline double* F64Scratch(size_t n) {
  static thread_local std::vector<double> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

}  // namespace

const char* ToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ToString(LogicalOp op) {
  return op == LogicalOp::kAnd ? "AND" : "OR";
}

const char* ToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

// --- Base EvalBatch (generic fallback) ---

void Expr::EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                     std::vector<Value>* out, EvalCounters* c,
                     ExprScratch*) const {
  out->resize(batch.num_rows());
  Row row;
  for (uint32_t r : sel) {
    batch.MaterializeRow(r, &row);
    (*out)[r] = Eval(row, c);
  }
}

void Expr::FilterBatch(const RowBatch& batch, std::vector<uint32_t>* sel,
                       EvalCounters* c, ExprScratch* scratch) const {
  ScratchVec<Value> vals(scratch);
  EvalBatch(batch, *sel, vals.get(), c, scratch);
  size_t w = 0;
  for (uint32_t r : *sel) {
    if ((*vals)[r].IsTruthy()) (*sel)[w++] = r;
  }
  sel->resize(w);
}

// --- ColumnExpr ---

ColumnExpr::ColumnExpr(int index, ValueType type, std::string name)
    : index_(index), type_(type), name_(std::move(name)) {}

Value ColumnExpr::Eval(const Row& row, EvalCounters*) const {
  assert(static_cast<size_t>(index_) < row.size());
  return row[static_cast<size_t>(index_)];
}

void ColumnExpr::EvalBatch(const RowBatch& batch,
                           const std::vector<uint32_t>& sel,
                           std::vector<Value>* out, EvalCounters*,
                           ExprScratch*) const {
  assert(index_ < batch.num_cols());
  const std::vector<Value>& src = batch.col(index_);
  out->resize(batch.num_rows());
  for (uint32_t r : sel) (*out)[r] = src[r];
}

void ColumnExpr::CollectColumns(std::vector<int>* out) const {
  out->push_back(index_);
}

// --- LiteralExpr ---

void LiteralExpr::EvalBatch(const RowBatch& batch,
                            const std::vector<uint32_t>& sel,
                            std::vector<Value>* out, EvalCounters*,
                            ExprScratch*) const {
  out->resize(batch.num_rows());
  for (uint32_t r : sel) (*out)[r] = value_;
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == ValueType::kString) {
    return "'" + value_.ToString() + "'";
  }
  return value_.ToString();
}

// --- CompareExpr ---

void BatchOperand::Resolve(const Expr& e, const RowBatch& batch,
                           const std::vector<uint32_t>& sel, EvalCounters* c,
                           ExprScratch* scratch) {
  ReleaseStorage();
  vec_ = nullptr;
  scalar_ = nullptr;
  batch_ = nullptr;
  col_ = -1;
  if (e.kind() == ExprKind::kColumn) {
    // Deferred column binding: view_at reads the cell in place (typed
    // lane / lazy table array / boxed), so resolving a column never boxes.
    batch_ = &batch;
    col_ = static_cast<const ColumnExpr&>(e).index();
    return;
  }
  if (e.kind() == ExprKind::kLiteral) {
    scalar_ = &static_cast<const LiteralExpr&>(e).value();
    return;
  }
  std::vector<Value>* storage;
  if (scratch != nullptr) {
    borrowed_ = scratch->Acquire<Value>();
    scratch_ = scratch;
    storage = borrowed_;
  } else {
    local_.clear();
    storage = &local_;
  }
  e.EvalBatch(batch, sel, storage, c, scratch);
  vec_ = storage;
}

namespace {

inline bool CompareOpHolds(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

inline Value ApplyCompare(CompareOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Bool(false);
  return Value::Bool(CompareOpHolds(op, l.Compare(r)));
}

inline bool IsIntBacked(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDate ||
         t == ValueType::kBool;
}

}  // namespace

/// Whether an arithmetic subtree can be evaluated entirely through typed
/// double arrays: numeric columns that are still unboxed in the batch
/// (lazy table columns or null-free typed lanes), non-null numeric
/// literals, and +/-/* combinations thereof (division is excluded because
/// divide-by-zero yields NULL). Pure predicate — charges nothing.
bool CanEvalDoubleSubtree(const Expr& e, const RowBatch& batch) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      const int idx = static_cast<const ColumnExpr&>(e).index();
      if (batch.lane_active(idx)) {
        // Lanes with nulls stay on the boxed path: the scalar evaluator
        // propagates NULL, which raw doubles cannot represent.
        const RowBatch::TypedLane& lane = batch.lane(idx);
        return !lane.has_nulls &&
               (lane.kind == RowBatch::LaneKind::kInt64 ||
                lane.kind == RowBatch::LaneKind::kDouble);
      }
      const Table* table = batch.lazy_source();
      if (table == nullptr) return false;
      if (batch.col_materialized(idx)) return false;
      const ValueType ct = table->column(idx).type();
      return IsIntBacked(ct) || ct == ValueType::kDouble;
    }
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      return !v.is_null() &&
             (IsIntBacked(v.type()) || v.type() == ValueType::kDouble);
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      // Division is excluded because divide-by-zero yields NULL; int-typed
      // nodes are excluded because the scalar path computes them in int64
      // (with int64 wrapping), which double arithmetic would not replicate.
      if (a.op() == ArithOp::kDiv || a.type() != ValueType::kDouble) {
        return false;
      }
      return CanEvalDoubleSubtree(*a.left(), batch) &&
             CanEvalDoubleSubtree(*a.right(), batch);
    }
    default:
      return false;
  }
}

/// Evaluates a CanEvalDoubleSubtree-approved subtree into raw doubles —
/// no Values anywhere. Results are either one scalar (*is_scalar) or
/// `vec` indexed by physical row. Operation counting matches the scalar
/// evaluator exactly: one arith op per arith node per selected row,
/// nothing for columns and literals.
void EvalDoubleSubtree(const Expr& e, const RowBatch& batch,
                       const std::vector<uint32_t>& sel,
                       std::vector<double>* vec, double* scalar,
                       bool* is_scalar, EvalCounters* c,
                       ExprScratch* scratch) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      const int idx = static_cast<const ColumnExpr&>(e).index();
      *is_scalar = false;
      vec->resize(batch.num_rows());
      const bool dense = SelIsDenseRun(sel);
      const size_t first = dense ? sel.front() : 0;
      if (batch.lane_active(idx)) {
        const RowBatch::TypedLane& lane = batch.lane(idx);
        if (lane.kind == RowBatch::LaneKind::kDouble) {
          if (dense) {
            std::copy(lane.f64.begin() + static_cast<ptrdiff_t>(first),
                      lane.f64.begin() + static_cast<ptrdiff_t>(first + sel.size()),
                      vec->begin() + static_cast<ptrdiff_t>(first));
          } else {
            for (uint32_t r : sel) (*vec)[r] = lane.f64[r];
          }
        } else if (dense) {
          simd::ConvertI64ToF64(lane.i64.data() + first, sel.size(),
                                vec->data() + first);
        } else {
          for (uint32_t r : sel) {
            (*vec)[r] = static_cast<double>(lane.i64[r]);
          }
        }
        return;
      }
      const Column& col = batch.lazy_source()->column(idx);
      const size_t base = batch.lazy_start();
      if (col.type() == ValueType::kDouble) {
        if (dense) {
          const double* src = col.doubles_data() + base + first;
          std::copy(src, src + sel.size(),
                    vec->begin() + static_cast<ptrdiff_t>(first));
        } else {
          for (uint32_t r : sel) (*vec)[r] = col.GetDouble(base + r);
        }
      } else if (dense) {
        simd::ConvertI64ToF64(col.ints_data() + base + first, sel.size(),
                              vec->data() + first);
      } else {
        for (uint32_t r : sel) {
          (*vec)[r] = static_cast<double>(col.GetInt(base + r));
        }
      }
      return;
    }
    case ExprKind::kLiteral: {
      *is_scalar = true;
      *scalar = static_cast<const LiteralExpr&>(e).value().AsDouble();
      return;
    }
    case ExprKind::kArith:
    default: {
      const auto& a = static_cast<const ArithExpr&>(e);
      // Child temporaries come from (and return to) the operator's pool
      // at scope exit, so a tree of depth d holds at most 2d pooled
      // vectors and steady-state evaluation allocates nothing.
      ScratchVec<double> lv(scratch), rv(scratch);
      double ls = 0, rs = 0;
      bool lsc = false, rsc = false;
      EvalDoubleSubtree(*a.left(), batch, sel, lv.get(), &ls, &lsc, c,
                        scratch);
      EvalDoubleSubtree(*a.right(), batch, sel, rv.get(), &rs, &rsc, c,
                        scratch);
      if (c != nullptr) c->arith_ops += sel.size();
      auto apply = [&](double x, double y) {
        switch (a.op()) {
          case ArithOp::kAdd:
            return x + y;
          case ArithOp::kSub:
            return x - y;
          case ArithOp::kMul:
            return x * y;
          case ArithOp::kDiv:
            break;  // excluded by CanEvalDoubleSubtree
        }
        return 0.0;
      };
      if (lsc && rsc) {
        *is_scalar = true;
        *scalar = apply(ls, rs);
        return;
      }
      *is_scalar = false;
      vec->resize(batch.num_rows());
      if (SelIsDenseRun(sel)) {
        // One IEEE op per element, SIMD over the dense run — bit-exact
        // against the scalar apply loop on any ISA.
        const size_t first = sel.front();
        const size_t n = sel.size();
        simd::ArithKind k = simd::ArithKind::kAdd;
        switch (a.op()) {
          case ArithOp::kAdd:
            k = simd::ArithKind::kAdd;
            break;
          case ArithOp::kSub:
            k = simd::ArithKind::kSub;
            break;
          case ArithOp::kMul:
            k = simd::ArithKind::kMul;
            break;
          case ArithOp::kDiv:
            break;  // excluded by CanEvalDoubleSubtree
        }
        double* out = vec->data() + first;
        if (lsc) {
          simd::ArithF64ScalarCol(k, ls, rv->data() + first, n, out);
        } else if (rsc) {
          simd::ArithF64ColScalar(k, lv->data() + first, rs, n, out);
        } else {
          simd::ArithF64ColCol(k, lv->data() + first, rv->data() + first, n,
                               out);
        }
        return;
      }
      for (uint32_t r : sel) {
        (*vec)[r] = apply(lsc ? ls : (*lv)[r], rsc ? rs : (*rv)[r]);
      }
      return;
    }
  }
}

namespace {

/// Typed fast path for `column <op> literal` over a lazily-bound scan
/// batch: compares the table's columnar arrays directly, skipping the
/// Value boxing of the whole column. Comparison semantics match
/// Value::Compare (numeric coercion; table columns are NOT NULL by
/// construction; a NULL literal compares to false) and exactly one
/// comparison per selected row is charged. Calls emit(row, pass) for each
/// selected row; returns false (charging nothing) when the shape doesn't
/// apply and the caller must take the generic path.
template <typename Emit>
bool ForEachColumnLiteralCompare(CompareOp op, const Expr& left,
                                 const Expr& right, const RowBatch& batch,
                                 const std::vector<uint32_t>& sel,
                                 EvalCounters* c, Emit&& emit) {
  if (left.kind() != ExprKind::kColumn ||
      right.kind() != ExprKind::kLiteral) {
    return false;
  }
  const Table* table = batch.lazy_source();
  if (table == nullptr) return false;
  const int idx = static_cast<const ColumnExpr&>(left).index();
  if (batch.col_materialized(idx)) return false;  // boxed already: use it
  const Value& lit = static_cast<const LiteralExpr&>(right).value();
  const Column& col = table->column(idx);
  const size_t base = batch.lazy_start();
  const ValueType ct = col.type();
  const bool col_int = IsIntBacked(ct);
  const bool col_numeric = col_int || ct == ValueType::kDouble;
  const bool lit_int = IsIntBacked(lit.type());
  const bool lit_numeric = lit_int || lit.type() == ValueType::kDouble;

  enum class Path { kNullLit, kInt, kDouble, kString };
  Path path;
  if (lit.is_null()) {
    path = Path::kNullLit;
  } else if (col_int && lit_int) {
    path = Path::kInt;
  } else if (col_numeric && lit_numeric) {
    path = Path::kDouble;
  } else if (ct == ValueType::kString && lit.type() == ValueType::kString) {
    path = Path::kString;
  } else {
    return false;  // mismatched non-numeric types: rare; generic path
  }

  if (c != nullptr) c->comparisons += sel.size();
  // Dense selections run the compare as one SIMD kernel over the raw
  // columnar array into a byte mask, then emit from the mask; sparse
  // selections keep the scalar per-row loop. Results and charged counts
  // are identical either way (the kernels' scalar fallback is the same
  // three-way-compare predicate).
  const bool dense = SelIsDenseRun(sel);
  const size_t n = sel.size();
  const size_t first = dense ? sel.front() : 0;
  switch (path) {
    case Path::kNullLit:  // scalar path: NULL operand compares to false
      for (uint32_t r : sel) emit(r, false);
      break;
    case Path::kInt: {
      const int64_t b = lit.AsInt();
      if (dense) {
        uint8_t* mask = MaskScratch(n);
        simd::CompareI64LitMask(col.ints_data() + base + first, n,
                                ToSimdOp(op), b, mask);
        for (size_t i = 0; i < n; ++i) emit(sel[i], mask[i] != 0);
      } else {
        for (uint32_t r : sel) {
          const int64_t a = col.GetInt(base + r);
          emit(r, CompareOpHolds(op, a < b ? -1 : (a > b ? 1 : 0)));
        }
      }
      break;
    }
    case Path::kDouble: {
      const double b = lit.AsDouble();
      if (dense) {
        uint8_t* mask = MaskScratch(n);
        if (ct == ValueType::kDouble) {
          simd::CompareF64LitMask(col.doubles_data() + base + first, n,
                                  ToSimdOp(op), b, mask);
        } else {
          double* conv = F64Scratch(n);
          simd::ConvertI64ToF64(col.ints_data() + base + first, n, conv);
          simd::CompareF64LitMask(conv, n, ToSimdOp(op), b, mask);
        }
        for (size_t i = 0; i < n; ++i) emit(sel[i], mask[i] != 0);
      } else if (ct == ValueType::kDouble) {
        for (uint32_t r : sel) {
          const double a = col.GetDouble(base + r);
          emit(r, CompareOpHolds(op, a < b ? -1 : (a > b ? 1 : 0)));
        }
      } else {
        for (uint32_t r : sel) {
          const double a = static_cast<double>(col.GetInt(base + r));
          emit(r, CompareOpHolds(op, a < b ? -1 : (a > b ? 1 : 0)));
        }
      }
      break;
    }
    case Path::kString: {
      const std::string& b = lit.AsString();
      if (col.dict_encoded()) {
        // Dictionary path: one boundary search over the sorted dict
        // translates the byte compare into an int32 code compare. When
        // the literal is absent from the dictionary the predicate
        // collapses further: equality is constant-false, inequality
        // constant-true, and the orderings reduce to one boundary test
        // (codes below `lb` decode to strings < b, codes at/above to
        // strings > b).
        bool exact = false;
        const int32_t lb = col.DictLowerBound(b, &exact);
        enum class CodeMode { kConstFalse, kConstTrue, kCmp };
        CodeMode mode = CodeMode::kCmp;
        CompareOp cop = op;
        if (!exact) {
          switch (op) {
            case CompareOp::kEq:
              mode = CodeMode::kConstFalse;
              break;
            case CompareOp::kNe:
              mode = CodeMode::kConstTrue;
              break;
            case CompareOp::kLt:
            case CompareOp::kLe:
              cop = CompareOp::kLt;
              break;
            case CompareOp::kGt:
            case CompareOp::kGe:
              cop = CompareOp::kGe;
              break;
          }
        }
        if (mode == CodeMode::kConstFalse) {
          for (uint32_t r : sel) emit(r, false);
        } else if (mode == CodeMode::kConstTrue) {
          for (uint32_t r : sel) emit(r, true);
        } else if (dense) {
          uint8_t* mask = MaskScratch(n);
          simd::CompareI32LitMask(col.codes_data() + base + first, n,
                                  ToSimdOp(cop), lb, mask);
          for (size_t i = 0; i < n; ++i) emit(sel[i], mask[i] != 0);
        } else {
          for (uint32_t r : sel) {
            const int32_t a = col.DictCode(base + r);
            emit(r, CompareOpHolds(cop, a < lb ? -1 : (a > lb ? 1 : 0)));
          }
        }
      } else {
        for (uint32_t r : sel) {
          const int cmp = col.GetString(base + r).compare(b);
          emit(r, CompareOpHolds(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)));
        }
      }
      break;
    }
  }
  return true;
}

}  // namespace

CompareExpr::CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
    : op_(op), left_(std::move(left)), right_(std::move(right)) {}

Value CompareExpr::Eval(const Row& row, EvalCounters* c) const {
  Value l = left_->Eval(row, c);
  Value r = right_->Eval(row, c);
  if (c != nullptr) ++c->comparisons;
  return ApplyCompare(op_, l, r);
}

void CompareExpr::EvalBatch(const RowBatch& batch,
                            const std::vector<uint32_t>& sel,
                            std::vector<Value>* out, EvalCounters* c,
                            ExprScratch* scratch) const {
  out->resize(batch.num_rows());
  if (ForEachColumnLiteralCompare(
          op_, *left_, *right_, batch, sel, c,
          [&](uint32_t r, bool pass) { (*out)[r] = Value::Bool(pass); })) {
    return;
  }
  BatchOperand lhs, rhs;
  lhs.Resolve(*left_, batch, sel, c, scratch);
  rhs.Resolve(*right_, batch, sel, c, scratch);
  // One comparison per evaluated row, exactly like the scalar path (which
  // counts before its null check).
  if (c != nullptr) c->comparisons += sel.size();
  for (uint32_t r : sel) {
    const CellView l = lhs.view_at(r);
    const CellView rv = rhs.view_at(r);
    (*out)[r] = Value::Bool(!l.is_null() && !rv.is_null() &&
                            CompareOpHolds(op_, CompareCellViews(l, rv)));
  }
}

void CompareExpr::FilterBatch(const RowBatch& batch,
                              std::vector<uint32_t>* sel, EvalCounters* c,
                              ExprScratch* scratch) const {
  {
    std::vector<uint32_t>& s = *sel;
    size_t w = 0;
    if (ForEachColumnLiteralCompare(
            op_, *left_, *right_, batch, s, c,
            [&](uint32_t r, bool pass) { if (pass) s[w++] = r; })) {
      s.resize(w);
      return;
    }
  }
  BatchOperand lhs, rhs;
  lhs.Resolve(*left_, batch, *sel, c, scratch);
  rhs.Resolve(*right_, batch, *sel, c, scratch);
  if (c != nullptr) c->comparisons += sel->size();
  std::vector<uint32_t>& s = *sel;
  size_t w = 0;
  for (uint32_t r : s) {
    const CellView l = lhs.view_at(r);
    const CellView rv = rhs.view_at(r);
    if (l.is_null() || rv.is_null()) continue;
    if (CompareOpHolds(op_, CompareCellViews(l, rv))) s[w++] = r;
  }
  s.resize(w);
}

std::string CompareExpr::ToString() const {
  return StrFormat("(%s %s %s)", left_->ToString().c_str(),
                   ecodb::ToString(op_), right_->ToString().c_str());
}

void CompareExpr::CollectColumns(std::vector<int>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

// --- LogicalExpr ---

LogicalExpr::LogicalExpr(LogicalOp op, std::vector<ExprPtr> operands)
    : op_(op), operands_(std::move(operands)) {
  assert(!operands_.empty());
}

Value LogicalExpr::Eval(const Row& row, EvalCounters* c) const {
  if (op_ == LogicalOp::kAnd) {
    for (const ExprPtr& e : operands_) {
      if (!e->Eval(row, c).IsTruthy()) return Value::Bool(false);
    }
    return Value::Bool(true);
  }
  // OR: short-circuits at the first truthy disjunct, like MySQL's
  // left-to-right predicate chain — the QED merged query's cost driver.
  for (const ExprPtr& e : operands_) {
    if (e->Eval(row, c).IsTruthy()) return Value::Bool(true);
  }
  return Value::Bool(false);
}

void LogicalExpr::EvalBatch(const RowBatch& batch,
                            const std::vector<uint32_t>& sel,
                            std::vector<Value>* out, EvalCounters* c,
                            ExprScratch* scratch) const {
  // Short-circuit vectorized: each operand is evaluated only over the rows
  // still undecided after the previous operands, in operand order — the
  // same per-row laziness (and therefore the same operation counts) as the
  // scalar path, just with the operand loop hoisted outside the row loop.
  out->resize(batch.num_rows());
  ScratchVec<uint32_t> active(scratch), next(scratch);
  active->assign(sel.begin(), sel.end());
  ScratchVec<Value> vals(scratch);
  const bool is_and = (op_ == LogicalOp::kAnd);
  for (const ExprPtr& e : operands_) {
    if (active->empty()) break;
    e->EvalBatch(batch, *active, vals.get(), c, scratch);
    next->clear();
    for (uint32_t r : *active) {
      bool truthy = (*vals)[r].IsTruthy();
      if (is_and) {
        if (truthy) {
          next->push_back(r);  // still undecided
        } else {
          (*out)[r] = Value::Bool(false);
        }
      } else {
        if (truthy) {
          (*out)[r] = Value::Bool(true);
        } else {
          next->push_back(r);  // still undecided
        }
      }
    }
    active->swap(*next);
  }
  // Rows that survived every operand: AND -> true, OR -> false.
  for (uint32_t r : *active) (*out)[r] = Value::Bool(is_and);
}

void LogicalExpr::FilterBatch(const RowBatch& batch,
                              std::vector<uint32_t>* sel, EvalCounters* c,
                              ExprScratch* scratch) const {
  if (op_ == LogicalOp::kAnd) {
    // A conjunction narrows through each operand in order over the
    // survivors of the previous ones — identical laziness and counts to
    // the scalar short-circuit, with no boolean vector in between.
    for (const ExprPtr& e : operands_) {
      if (sel->empty()) return;
      e->FilterBatch(batch, sel, c, scratch);
    }
    return;
  }
  Expr::FilterBatch(batch, sel, c, scratch);  // OR: evaluate-and-compact
}

std::string LogicalExpr::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < operands_.size(); ++i) {
    if (i) {
      out += " ";
      out += ecodb::ToString(op_);
      out += " ";
    }
    out += operands_[i]->ToString();
  }
  out += ")";
  return out;
}

void LogicalExpr::CollectColumns(std::vector<int>* out) const {
  for (const ExprPtr& e : operands_) e->CollectColumns(out);
}

// --- NotExpr ---

Value NotExpr::Eval(const Row& row, EvalCounters* c) const {
  return Value::Bool(!operand_->Eval(row, c).IsTruthy());
}

void NotExpr::EvalBatch(const RowBatch& batch,
                        const std::vector<uint32_t>& sel,
                        std::vector<Value>* out, EvalCounters* c,
                        ExprScratch* scratch) const {
  ScratchVec<Value> vals(scratch);
  operand_->EvalBatch(batch, sel, vals.get(), c, scratch);
  out->resize(batch.num_rows());
  for (uint32_t r : sel) (*out)[r] = Value::Bool(!(*vals)[r].IsTruthy());
}

std::string NotExpr::ToString() const {
  return "NOT " + operand_->ToString();
}

void NotExpr::CollectColumns(std::vector<int>* out) const {
  operand_->CollectColumns(out);
}

// --- ArithExpr ---

namespace {

ValueType ArithResultType(const ExprPtr& l, const ExprPtr& r) {
  if (l->type() == ValueType::kDouble || r->type() == ValueType::kDouble) {
    return ValueType::kDouble;
  }
  return ValueType::kInt64;
}

}  // namespace

ArithExpr::ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
    : op_(op),
      left_(std::move(left)),
      right_(std::move(right)),
      type_(ArithResultType(left_, right_)) {}

Value ArithExpr::Eval(const Row& row, EvalCounters* c) const {
  Value l = left_->Eval(row, c);
  Value r = right_->Eval(row, c);
  if (c != nullptr) ++c->arith_ops;
  if (l.is_null() || r.is_null()) return Value::Null();
  if (type_ == ValueType::kInt64) {
    int64_t a = l.AsInt();
    int64_t b = r.AsInt();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      case ArithOp::kDiv:
        return b == 0 ? Value::Null() : Value::Int(a / b);
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Dbl(a + b);
    case ArithOp::kSub:
      return Value::Dbl(a - b);
    case ArithOp::kMul:
      return Value::Dbl(a * b);
    case ArithOp::kDiv:
      return b == 0.0 ? Value::Null() : Value::Dbl(a / b);
  }
  return Value::Null();
}

void ArithExpr::EvalBatch(const RowBatch& batch,
                          const std::vector<uint32_t>& sel,
                          std::vector<Value>* out, EvalCounters* c,
                          ExprScratch* scratch) const {
  if (type_ == ValueType::kDouble && CanEvalDoubleSubtree(*this, batch)) {
    ScratchVec<double> vals(scratch);
    double scalar = 0;
    bool is_scalar = false;
    EvalDoubleSubtree(*this, batch, sel, vals.get(), &scalar, &is_scalar, c,
                      scratch);
    out->resize(batch.num_rows());
    for (uint32_t r : sel) {
      (*out)[r] = Value::Dbl(is_scalar ? scalar : (*vals)[r]);
    }
    return;
  }
  BatchOperand lhs, rhs;
  lhs.Resolve(*left_, batch, sel, c, scratch);
  rhs.Resolve(*right_, batch, sel, c, scratch);
  if (c != nullptr) c->arith_ops += sel.size();
  out->resize(batch.num_rows());
  if (type_ == ValueType::kInt64) {
    for (uint32_t r : sel) {
      const CellView l = lhs.view_at(r);
      const CellView rv = rhs.view_at(r);
      if (l.is_null() || rv.is_null()) {
        (*out)[r] = Value::Null();
        continue;
      }
      int64_t a = l.i;
      int64_t b = rv.i;
      switch (op_) {
        case ArithOp::kAdd:
          (*out)[r] = Value::Int(a + b);
          break;
        case ArithOp::kSub:
          (*out)[r] = Value::Int(a - b);
          break;
        case ArithOp::kMul:
          (*out)[r] = Value::Int(a * b);
          break;
        case ArithOp::kDiv:
          (*out)[r] = b == 0 ? Value::Null() : Value::Int(a / b);
          break;
      }
    }
    return;
  }
  for (uint32_t r : sel) {
    const CellView l = lhs.view_at(r);
    const CellView rv = rhs.view_at(r);
    if (l.is_null() || rv.is_null()) {
      (*out)[r] = Value::Null();
      continue;
    }
    double a = l.AsDouble();
    double b = rv.AsDouble();
    switch (op_) {
      case ArithOp::kAdd:
        (*out)[r] = Value::Dbl(a + b);
        break;
      case ArithOp::kSub:
        (*out)[r] = Value::Dbl(a - b);
        break;
      case ArithOp::kMul:
        (*out)[r] = Value::Dbl(a * b);
        break;
      case ArithOp::kDiv:
        (*out)[r] = b == 0.0 ? Value::Null() : Value::Dbl(a / b);
        break;
    }
  }
}

std::string ArithExpr::ToString() const {
  return StrFormat("(%s %s %s)", left_->ToString().c_str(),
                   ecodb::ToString(op_), right_->ToString().c_str());
}

void ArithExpr::CollectColumns(std::vector<int>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

// --- BetweenExpr ---

BetweenExpr::BetweenExpr(ExprPtr operand, ExprPtr lo, ExprPtr hi)
    : operand_(std::move(operand)), lo_(std::move(lo)), hi_(std::move(hi)) {}

Value BetweenExpr::Eval(const Row& row, EvalCounters* c) const {
  Value v = operand_->Eval(row, c);
  if (v.is_null()) return Value::Bool(false);
  Value lo = lo_->Eval(row, c);
  if (c != nullptr) ++c->comparisons;
  if (!lo.is_null() && v.Compare(lo) < 0) return Value::Bool(false);
  Value hi = hi_->Eval(row, c);
  if (c != nullptr) ++c->comparisons;
  return Value::Bool(!hi.is_null() && v.Compare(hi) <= 0);
}

void BetweenExpr::EvalBatch(const RowBatch& batch,
                            const std::vector<uint32_t>& sel,
                            std::vector<Value>* out, EvalCounters* c,
                            ExprScratch* scratch) const {
  // Mirrors the scalar laziness: rows with a NULL operand are decided
  // without touching the bounds; `hi` is only evaluated (and its
  // comparison counted) for rows that pass the `lo` check.
  out->resize(batch.num_rows());
  BatchOperand vals;
  vals.Resolve(*operand_, batch, sel, c, scratch);
  ScratchVec<uint32_t> pending(scratch);
  pending->reserve(sel.size());
  for (uint32_t r : sel) {
    if (vals.view_at(r).is_null()) {
      (*out)[r] = Value::Bool(false);
    } else {
      pending->push_back(r);
    }
  }
  if (pending->empty()) return;

  BatchOperand lo_vals;
  lo_vals.Resolve(*lo_, batch, *pending, c, scratch);
  if (c != nullptr) c->comparisons += pending->size();
  ScratchVec<uint32_t> passed_lo(scratch);
  passed_lo->reserve(pending->size());
  for (uint32_t r : *pending) {
    const CellView lo_v = lo_vals.view_at(r);
    if (!lo_v.is_null() && CompareCellViews(vals.view_at(r), lo_v) < 0) {
      (*out)[r] = Value::Bool(false);
    } else {
      passed_lo->push_back(r);
    }
  }
  if (passed_lo->empty()) return;

  BatchOperand hi_vals;
  hi_vals.Resolve(*hi_, batch, *passed_lo, c, scratch);
  if (c != nullptr) c->comparisons += passed_lo->size();
  for (uint32_t r : *passed_lo) {
    const CellView hi_v = hi_vals.view_at(r);
    (*out)[r] = Value::Bool(
        !hi_v.is_null() && CompareCellViews(vals.view_at(r), hi_v) <= 0);
  }
}

std::string BetweenExpr::ToString() const {
  return StrFormat("(%s BETWEEN %s AND %s)", operand_->ToString().c_str(),
                   lo_->ToString().c_str(), hi_->ToString().c_str());
}

void BetweenExpr::CollectColumns(std::vector<int>* out) const {
  operand_->CollectColumns(out);
  lo_->CollectColumns(out);
  hi_->CollectColumns(out);
}

// --- InListExpr ---

InListExpr::InListExpr(ExprPtr operand, std::vector<Value> values,
                       bool hashed)
    : operand_(std::move(operand)),
      values_(std::move(values)),
      hashed_(hashed) {
  if (hashed_) {
    set_.reserve(values_.size() * 2);
    for (const Value& v : values_) set_.insert(v);
  }
}

Value InListExpr::Eval(const Row& row, EvalCounters* c) const {
  Value v = operand_->Eval(row, c);
  if (v.is_null()) return Value::Bool(false);
  if (hashed_) {
    if (c != nullptr) ++c->comparisons;  // one probe
    return Value::Bool(set_.find(v) != set_.end());
  }
  for (const Value& candidate : values_) {
    if (c != nullptr) ++c->comparisons;
    if (v.Compare(candidate) == 0) return Value::Bool(true);
  }
  return Value::Bool(false);
}

void InListExpr::EvalBatch(const RowBatch& batch,
                           const std::vector<uint32_t>& sel,
                           std::vector<Value>* out, EvalCounters* c,
                           ExprScratch* scratch) const {
  out->resize(batch.num_rows());
  BatchOperand vals;
  vals.Resolve(*operand_, batch, sel, c, scratch);
  if (hashed_) {
    // The set lookup needs owning Values, so this path uses at() (which
    // boxes a column operand once per batch).
    for (uint32_t r : sel) {
      if (vals.at(r).is_null()) {
        (*out)[r] = Value::Bool(false);
        continue;
      }
      if (c != nullptr) ++c->comparisons;  // one probe
      (*out)[r] = Value::Bool(set_.find(vals.at(r)) != set_.end());
    }
    return;
  }
  // Dictionary fast path: a plain string-column operand backed by int32
  // codes (lazy dict-encoded storage, or an active code lane). Each
  // candidate translates to its dict code once per batch — a candidate
  // absent from the dictionary (or non-string, or NULL) gets the -1
  // sentinel, which no row code ever equals, exactly as the byte compare
  // never matches it. The loop structure, order and charged comparison
  // counts are identical to the byte path below.
  if (operand_->kind() == ExprKind::kColumn) {
    const int idx = static_cast<const ColumnExpr&>(*operand_).index();
    const int32_t* codes = nullptr;
    size_t code_base = 0;
    const Column* dict = nullptr;
    if (batch.lane_active(idx)) {
      const RowBatch::TypedLane& lane = batch.lane(idx);
      if (lane.kind == RowBatch::LaneKind::kStringCode && !lane.has_nulls) {
        codes = lane.codes.data();
        dict = lane.dict;
      }
    } else if (!batch.col_materialized(idx) &&
               batch.lazy_source() != nullptr) {
      const Column& col = batch.lazy_source()->column(idx);
      if (col.type() == ValueType::kString && col.dict_encoded()) {
        codes = col.codes_data();
        code_base = batch.lazy_start();
        dict = &col;
      }
    }
    if (codes != nullptr) {
      // No nulls on this path (tables are NOT NULL; null-carrying lanes
      // were excluded), so every selected row enters the candidate loop —
      // matching the generic path's null pre-pass, which would pass them
      // all through.
      ScratchVec<uint32_t> rem(scratch), nxt(scratch);
      rem->assign(sel.begin(), sel.end());
      for (const Value& candidate : values_) {
        if (rem->empty()) break;
        if (c != nullptr) c->comparisons += rem->size();
        const int32_t cand_code =
            candidate.type() == ValueType::kString
                ? dict->FindDictCode(candidate.AsString())
                : -1;
        nxt->clear();
        for (uint32_t r : *rem) {
          if (codes[code_base + r] == cand_code) {
            (*out)[r] = Value::Bool(true);
          } else {
            nxt->push_back(r);
          }
        }
        rem->swap(*nxt);
      }
      for (uint32_t r : *rem) (*out)[r] = Value::Bool(false);
      return;
    }
  }
  // Linear scan with per-row early exit, candidate loop hoisted outside
  // the row loop: row `r` is compared against candidates until its first
  // hit, so the total comparison count equals the scalar path's.
  ScratchVec<uint32_t> remaining(scratch);
  remaining->reserve(sel.size());
  for (uint32_t r : sel) {
    if (vals.view_at(r).is_null()) {
      (*out)[r] = Value::Bool(false);
    } else {
      remaining->push_back(r);
    }
  }
  ScratchVec<uint32_t> next(scratch);
  for (const Value& candidate : values_) {
    if (remaining->empty()) break;
    if (c != nullptr) c->comparisons += remaining->size();
    const CellView cand = CellView::Of(candidate);
    next->clear();
    for (uint32_t r : *remaining) {
      if (CompareCellViews(vals.view_at(r), cand) == 0) {
        (*out)[r] = Value::Bool(true);
      } else {
        next->push_back(r);
      }
    }
    remaining->swap(*next);
  }
  for (uint32_t r : *remaining) (*out)[r] = Value::Bool(false);
}

std::string InListExpr::ToString() const {
  std::string out = operand_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

void InListExpr::CollectColumns(std::vector<int>* out) const {
  operand_->CollectColumns(out);
}

// --- Construction helpers ---

ExprPtr Col(int index, ValueType type, std::string name) {
  return std::make_shared<ColumnExpr>(index, type, std::move(name));
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDbl(double v) { return Lit(Value::Dbl(v)); }
ExprPtr LitStr(std::string v) { return Lit(Value::Str(std::move(v))); }

ExprPtr LitDate(std::string_view iso) {
  int32_t days = ParseDateToDays(iso);
  assert(days != INT32_MIN && "bad literal date");
  return Lit(Value::Date(days));
}

ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(op, std::move(l), std::move(r));
}

ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kEq, std::move(l), std::move(r));
}

ExprPtr And(std::vector<ExprPtr> operands) {
  if (operands.size() == 1) return operands[0];
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(operands));
}

ExprPtr Or(std::vector<ExprPtr> operands) {
  if (operands.size() == 1) return operands[0];
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(operands));
}

ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }

ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(op, std::move(l), std::move(r));
}

ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi) {
  return std::make_shared<BetweenExpr>(std::move(e), std::move(lo),
                                       std::move(hi));
}

ExprPtr InList(ExprPtr e, std::vector<Value> values, bool hashed) {
  return std::make_shared<InListExpr>(std::move(e), std::move(values),
                                      hashed);
}

}  // namespace ecodb

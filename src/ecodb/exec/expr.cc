#include "ecodb/exec/expr.h"

#include <cassert>

#include "ecodb/util/strings.h"

namespace ecodb {

const char* ToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ToString(LogicalOp op) {
  return op == LogicalOp::kAnd ? "AND" : "OR";
}

const char* ToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

// --- ColumnExpr ---

ColumnExpr::ColumnExpr(int index, ValueType type, std::string name)
    : index_(index), type_(type), name_(std::move(name)) {}

Value ColumnExpr::Eval(const Row& row, EvalCounters*) const {
  assert(static_cast<size_t>(index_) < row.size());
  return row[static_cast<size_t>(index_)];
}

void ColumnExpr::CollectColumns(std::vector<int>* out) const {
  out->push_back(index_);
}

// --- LiteralExpr ---

std::string LiteralExpr::ToString() const {
  if (value_.type() == ValueType::kString) {
    return "'" + value_.ToString() + "'";
  }
  return value_.ToString();
}

// --- CompareExpr ---

CompareExpr::CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
    : op_(op), left_(std::move(left)), right_(std::move(right)) {}

Value CompareExpr::Eval(const Row& row, EvalCounters* c) const {
  Value l = left_->Eval(row, c);
  Value r = right_->Eval(row, c);
  if (c != nullptr) ++c->comparisons;
  if (l.is_null() || r.is_null()) return Value::Bool(false);
  int cmp = l.Compare(r);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(cmp == 0);
    case CompareOp::kNe:
      return Value::Bool(cmp != 0);
    case CompareOp::kLt:
      return Value::Bool(cmp < 0);
    case CompareOp::kLe:
      return Value::Bool(cmp <= 0);
    case CompareOp::kGt:
      return Value::Bool(cmp > 0);
    case CompareOp::kGe:
      return Value::Bool(cmp >= 0);
  }
  return Value::Bool(false);
}

std::string CompareExpr::ToString() const {
  return StrFormat("(%s %s %s)", left_->ToString().c_str(),
                   ecodb::ToString(op_), right_->ToString().c_str());
}

void CompareExpr::CollectColumns(std::vector<int>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

// --- LogicalExpr ---

LogicalExpr::LogicalExpr(LogicalOp op, std::vector<ExprPtr> operands)
    : op_(op), operands_(std::move(operands)) {
  assert(!operands_.empty());
}

Value LogicalExpr::Eval(const Row& row, EvalCounters* c) const {
  if (op_ == LogicalOp::kAnd) {
    for (const ExprPtr& e : operands_) {
      if (!e->Eval(row, c).IsTruthy()) return Value::Bool(false);
    }
    return Value::Bool(true);
  }
  // OR: short-circuits at the first truthy disjunct, like MySQL's
  // left-to-right predicate chain — the QED merged query's cost driver.
  for (const ExprPtr& e : operands_) {
    if (e->Eval(row, c).IsTruthy()) return Value::Bool(true);
  }
  return Value::Bool(false);
}

std::string LogicalExpr::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < operands_.size(); ++i) {
    if (i) {
      out += " ";
      out += ecodb::ToString(op_);
      out += " ";
    }
    out += operands_[i]->ToString();
  }
  out += ")";
  return out;
}

void LogicalExpr::CollectColumns(std::vector<int>* out) const {
  for (const ExprPtr& e : operands_) e->CollectColumns(out);
}

// --- NotExpr ---

Value NotExpr::Eval(const Row& row, EvalCounters* c) const {
  return Value::Bool(!operand_->Eval(row, c).IsTruthy());
}

std::string NotExpr::ToString() const {
  return "NOT " + operand_->ToString();
}

void NotExpr::CollectColumns(std::vector<int>* out) const {
  operand_->CollectColumns(out);
}

// --- ArithExpr ---

namespace {

ValueType ArithResultType(const ExprPtr& l, const ExprPtr& r) {
  if (l->type() == ValueType::kDouble || r->type() == ValueType::kDouble) {
    return ValueType::kDouble;
  }
  return ValueType::kInt64;
}

}  // namespace

ArithExpr::ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
    : op_(op),
      left_(std::move(left)),
      right_(std::move(right)),
      type_(ArithResultType(left_, right_)) {}

Value ArithExpr::Eval(const Row& row, EvalCounters* c) const {
  Value l = left_->Eval(row, c);
  Value r = right_->Eval(row, c);
  if (c != nullptr) ++c->arith_ops;
  if (l.is_null() || r.is_null()) return Value::Null();
  if (type_ == ValueType::kInt64) {
    int64_t a = l.AsInt();
    int64_t b = r.AsInt();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      case ArithOp::kDiv:
        return b == 0 ? Value::Null() : Value::Int(a / b);
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Dbl(a + b);
    case ArithOp::kSub:
      return Value::Dbl(a - b);
    case ArithOp::kMul:
      return Value::Dbl(a * b);
    case ArithOp::kDiv:
      return b == 0.0 ? Value::Null() : Value::Dbl(a / b);
  }
  return Value::Null();
}

std::string ArithExpr::ToString() const {
  return StrFormat("(%s %s %s)", left_->ToString().c_str(),
                   ecodb::ToString(op_), right_->ToString().c_str());
}

void ArithExpr::CollectColumns(std::vector<int>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

// --- BetweenExpr ---

BetweenExpr::BetweenExpr(ExprPtr operand, ExprPtr lo, ExprPtr hi)
    : operand_(std::move(operand)), lo_(std::move(lo)), hi_(std::move(hi)) {}

Value BetweenExpr::Eval(const Row& row, EvalCounters* c) const {
  Value v = operand_->Eval(row, c);
  if (v.is_null()) return Value::Bool(false);
  Value lo = lo_->Eval(row, c);
  if (c != nullptr) ++c->comparisons;
  if (!lo.is_null() && v.Compare(lo) < 0) return Value::Bool(false);
  Value hi = hi_->Eval(row, c);
  if (c != nullptr) ++c->comparisons;
  return Value::Bool(!hi.is_null() && v.Compare(hi) <= 0);
}

std::string BetweenExpr::ToString() const {
  return StrFormat("(%s BETWEEN %s AND %s)", operand_->ToString().c_str(),
                   lo_->ToString().c_str(), hi_->ToString().c_str());
}

void BetweenExpr::CollectColumns(std::vector<int>* out) const {
  operand_->CollectColumns(out);
  lo_->CollectColumns(out);
  hi_->CollectColumns(out);
}

// --- InListExpr ---

InListExpr::InListExpr(ExprPtr operand, std::vector<Value> values,
                       bool hashed)
    : operand_(std::move(operand)),
      values_(std::move(values)),
      hashed_(hashed) {
  if (hashed_) {
    set_.reserve(values_.size() * 2);
    for (const Value& v : values_) set_.insert(v);
  }
}

Value InListExpr::Eval(const Row& row, EvalCounters* c) const {
  Value v = operand_->Eval(row, c);
  if (v.is_null()) return Value::Bool(false);
  if (hashed_) {
    if (c != nullptr) ++c->comparisons;  // one probe
    return Value::Bool(set_.find(v) != set_.end());
  }
  for (const Value& candidate : values_) {
    if (c != nullptr) ++c->comparisons;
    if (v.Compare(candidate) == 0) return Value::Bool(true);
  }
  return Value::Bool(false);
}

std::string InListExpr::ToString() const {
  std::string out = operand_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

void InListExpr::CollectColumns(std::vector<int>* out) const {
  operand_->CollectColumns(out);
}

// --- Construction helpers ---

ExprPtr Col(int index, ValueType type, std::string name) {
  return std::make_shared<ColumnExpr>(index, type, std::move(name));
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDbl(double v) { return Lit(Value::Dbl(v)); }
ExprPtr LitStr(std::string v) { return Lit(Value::Str(std::move(v))); }

ExprPtr LitDate(std::string_view iso) {
  int32_t days = ParseDateToDays(iso);
  assert(days != INT32_MIN && "bad literal date");
  return Lit(Value::Date(days));
}

ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(op, std::move(l), std::move(r));
}

ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kEq, std::move(l), std::move(r));
}

ExprPtr And(std::vector<ExprPtr> operands) {
  if (operands.size() == 1) return operands[0];
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(operands));
}

ExprPtr Or(std::vector<ExprPtr> operands) {
  if (operands.size() == 1) return operands[0];
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(operands));
}

ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }

ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(op, std::move(l), std::move(r));
}

ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi) {
  return std::make_shared<BetweenExpr>(std::move(e), std::move(lo),
                                       std::move(hi));
}

ExprPtr InList(ExprPtr e, std::vector<Value> values, bool hashed) {
  return std::make_shared<InListExpr>(std::move(e), std::move(values),
                                      hashed);
}

}  // namespace ecodb

// Flat open-addressing hash structures shared by HashJoinOp and HashAggOp.
//
// The seed engine kept join/aggregation state in node-based std
// containers (std::unordered_multimap<size_t, Row>), whose probe path is
// dominated by pointer-chasing and whose build path by per-node heap
// allocation. FlatHashIndex replaces them with a single contiguous slot
// array (linear probing, power-of-two capacity) that maps a 64-bit key
// hash to a *chain* of payload indexes in a contiguous pool owned by the
// operator — build rows for joins, groups for aggregation. Duplicate keys
// (multimap semantics) are chained in insertion order through head/tail
// pointers in the slot plus next-links parallel to the payload pool, so a
// probe touches one slot line and then walks a dense index array instead
// of heap nodes.
//
// Accounting-parity contract: the index itself never touches ExecContext.
// Callers count one bucket-compare per chain entry examined and one
// key-equality comparison per column compared, exactly as the node-based
// containers did — and because row and batch execution now share this one
// table implementation (same insertion order, same chain order, same
// candidate sets), the logical-work counters stay bit-exact across
// ExecModes.

#ifndef ECODB_EXEC_HASH_TABLE_H_
#define ECODB_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "ecodb/exec/row_batch.h"
#include "ecodb/storage/value.h"
#include "ecodb/util/memory_tracker.h"

namespace ecodb {

/// Index structure only: hash -> chain of payload indexes. Payloads live
/// in a contiguous array owned by the caller and are referenced by their
/// position; payload index N must be inserted before index N+1 (the
/// next-link array grows with the pool). No deletion (query-lifetime
/// tables), so there are no tombstones.
///
/// Chains append at the tail and entries never move, so a payload's
/// 1-based position in its chain is fixed for the table's lifetime. The
/// parallel pipeline breakers' canonical charge accounting
/// (exec/morsel.cc) leans on exactly this: the coordinator can memoize a
/// group's chain rank once and re-issue the sequential engine's compare
/// counts on every later lookup, and stitched duplicate chains stay
/// insertion-order-equivalent to a single-threaded build.
class FlatHashIndex {
 public:
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  /// Clears the index. `expected_keys` pre-sizes the slot array so a
  /// build of known cardinality never rehashes.
  void Reset(size_t expected_keys = 0);

  /// Inserts payload index `idx` under `hash`. Equal hashes chain in
  /// insertion order. `idx` values must be inserted in increasing order
  /// starting at 0 (one per payload appended to the caller's pool).
  void Insert(size_t hash, uint32_t idx);

  /// Head payload index of the chain for `hash`, or kInvalid.
  uint32_t Find(size_t hash) const;

  /// Next payload index in the same-hash chain, or kInvalid.
  uint32_t Next(uint32_t idx) const { return next_[idx]; }

  /// Number of distinct hashes (occupied slots).
  size_t distinct_hashes() const { return count_; }
  /// Number of payload entries inserted.
  size_t size() const { return next_.size(); }
  /// Current slot-array capacity (a power of two, or 0 before first use).
  size_t capacity() const { return slots_.size(); }

  /// Optional accounting: slot + next-link array footprints are charged
  /// to the tracker as they grow and released on Reset. Host bytes here
  /// (not logical cell bytes): both execution modes build identical
  /// tables, so the charge is still mode-deterministic.
  void set_memory_tracker(MemoryTracker* tracker) {
    tracker_ = tracker;
    UpdateTracked();
  }

 private:
  struct Slot {
    size_t hash = 0;
    uint32_t head = kInvalid;
    uint32_t tail = kInvalid;
  };

  /// Rehashes into at least `min_slots` slots (rounded up to a power of
  /// two). Chains are untouched: only the slot positions move.
  void Grow(size_t min_slots);

  /// Re-derives the tracked footprint from the current array sizes and
  /// charges/releases the delta.
  void UpdateTracked();

  std::vector<Slot> slots_;
  std::vector<uint32_t> next_;
  size_t count_ = 0;
  MemoryTracker* tracker_ = nullptr;
  uint64_t tracked_bytes_ = 0;
};

/// Hashes the key columns of every *selected* row of `batch` into
/// `hashes` (parallel to batch.sel(): hashes[i] is the key hash of row
/// sel()[i]). Exactly equal to HashRowKey over the materialized row —
/// same seed, same combine, same Value::Hash — but computed column-at-a-
/// time, reading lazily-bound scan batches straight from the table's
/// typed arrays (int64/date/bool, double, string) so key extraction does
/// not box a Value.
void HashKeyColumnsBatch(const RowBatch& batch,
                         const std::vector<int>& key_cols,
                         std::vector<size_t>* hashes);

}  // namespace ecodb

#endif  // ECODB_EXEC_HASH_TABLE_H_

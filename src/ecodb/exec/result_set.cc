#include "ecodb/exec/result_set.h"

#include <cassert>

namespace ecodb {

void ResultSet::Reset(const Schema& schema) {
  cols_.resize(static_cast<size_t>(schema.num_fields()));
  for (int c = 0; c < schema.num_fields(); ++c) {
    TypedColumn& col = cols_[static_cast<size_t>(c)];
    col.Reset(schema.field(c).type);
    // Copied result strings (boxed producers, row mode, pool-backed
    // lanes) dedup through the arena dictionary: low-cardinality columns
    // (flags, modes, names) store one copy per distinct value.
    if (schema.field(c).type == ValueType::kString) col.EnableDictDedup();
  }
  num_rows_ = 0;
  row_view_.clear();
  row_view_built_ = false;
}

void ResultSet::AppendBatch(const RowBatch& batch) {
  assert(batch.num_cols() == num_cols() && "batch/schema arity mismatch");
  const std::vector<uint32_t>& sel = batch.sel();
  if (sel.empty()) return;
  const int n_cols = num_cols();
  const Table* table = batch.lazy_source();
  // Pool-backed string lanes (nested-loop-join inner rows) die at that
  // operator's Close; everything else a lane can point at is table
  // storage or a refcounted arena the batch holds — safe to borrow once
  // the column retains those arenas.
  const bool stable_lanes = !batch.strings_pool_backed();
  for (int c = 0; c < n_cols; ++c) {
    TypedColumn& dst = cols_[static_cast<size_t>(c)];
    // Lazy scan columns: read the table's typed arrays directly when the
    // declared types agree (they do unless an upstream demote happened),
    // hoisting the per-cell tag dispatch out of the row loop. An active
    // lane takes precedence over the lazy binding, mirroring ViewCell.
    if (table != nullptr && !batch.col_materialized(c) &&
        !batch.lane_active(c)) {
      const Column& src = table->column(c);
      const size_t base = batch.lazy_start();
      if (src.type() == dst.type() && !dst.boxed()) {
        switch (RowBatch::LaneKindFor(src.type())) {
          case RowBatch::LaneKind::kInt64:
            for (uint32_t r : sel) dst.AppendNonNullInt64(src.GetInt(base + r));
            continue;
          case RowBatch::LaneKind::kDouble:
            for (uint32_t r : sel) {
              dst.AppendNonNullDouble(src.GetDouble(base + r));
            }
            continue;
          case RowBatch::LaneKind::kStringRef:
            // Arena handoff's sibling: borrow table storage outright —
            // the bytes outlive every query against this Database
            // (GetString decodes dict-encoded columns to their stable
            // dictionary entries).
            for (uint32_t r : sel) {
              dst.AppendNonNullStringPtr(&src.GetString(base + r));
            }
            continue;
          case RowBatch::LaneKind::kStringCode:
          case RowBatch::LaneKind::kNone:
            break;  // LaneKindFor never yields these
        }
      }
    }
    // Typed lanes with no nulls: same hoisted loops.
    if (batch.lane_active(c)) {
      const RowBatch::TypedLane& l = batch.lane(c);
      if (!l.has_nulls && l.type == dst.type() && !dst.boxed()) {
        switch (l.kind) {
          case RowBatch::LaneKind::kInt64:
            for (uint32_t r : sel) dst.AppendNonNullInt64(l.i64[r]);
            continue;
          case RowBatch::LaneKind::kDouble:
            for (uint32_t r : sel) dst.AppendNonNullDouble(l.f64[r]);
            continue;
          case RowBatch::LaneKind::kStringRef:
            if (stable_lanes) {
              // Arena handoff: keep the producer's arenas alive and take
              // the pointers instead of copying the bytes.
              dst.RetainStorageOf(batch);
              for (uint32_t r : sel) dst.AppendNonNullStringPtr(l.str[r]);
            } else {
              for (uint32_t r : sel) dst.AppendNonNullString(*l.str[r]);
            }
            continue;
          case RowBatch::LaneKind::kStringCode:
            // Dictionary-code lane: decode to table-owned dictionary
            // entries — stable for the Database's lifetime, so borrow
            // them like any other table storage (no retention needed).
            for (uint32_t r : sel) {
              dst.AppendNonNullStringPtr(&l.dict->DictString(l.codes[r]));
            }
            continue;
          case RowBatch::LaneKind::kNone:
            break;
        }
      }
      // Null-carrying string lanes borrow per-cell through the generic
      // loop below; retain up front so AppendStable is legal.
      if (stable_lanes && l.kind == RowBatch::LaneKind::kStringRef &&
          !dst.boxed()) {
        dst.RetainStorageOf(batch);
        for (uint32_t r : sel) dst.AppendStable(batch.ViewCell(c, r));
        continue;
      }
    }
    for (uint32_t r : sel) dst.Append(batch.ViewCell(c, r));
  }
  num_rows_ += sel.size();
  row_view_built_ = false;
}

void ResultSet::AppendRow(const Row& row) {
  assert(row.size() == cols_.size() && "row/schema arity mismatch");
  for (size_t c = 0; c < row.size(); ++c) {
    cols_[c].Append(CellView::Of(row[c]));
  }
  ++num_rows_;
  row_view_built_ = false;
}

Row ResultSet::RowAt(size_t row) const {
  Row out;
  out.reserve(cols_.size());
  for (int c = 0; c < num_cols(); ++c) out.push_back(ValueAt(row, c));
  return out;
}

const std::vector<Row>& ResultSet::rows() const {
  if (!row_view_built_) {
    row_view_.clear();
    row_view_.reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) row_view_.push_back(RowAt(r));
    row_view_built_ = true;
  }
  return row_view_;
}

std::vector<Row> ResultSet::TakeRows() {
  rows();  // ensure built
  row_view_built_ = false;
  return std::move(row_view_);
}

}  // namespace ecodb

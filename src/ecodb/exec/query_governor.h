// QueryGovernor: per-query deadline, budget, and cancellation limits.
//
// A governor is constructed by Database::ExecutePlanQuery when any limit
// is set, attached to the query's ExecContext, and consulted cooperatively
// at two kinds of points:
//
//   1. Flush-quantum boundaries inside ExecContext::MaybeFlush. These are
//      the only points where the charged-cycle cancellation trigger and
//      the CPU-time deadline can trip, because quantum boundaries land at
//      identical charged-cycle positions in both execution modes — so a
//      governor trip freezes cycles_charged (bit-exact) and the machine
//      ledger (to flush rounding) at the same logical point in kRow and
//      kBatch.
//   2. Operator check points (scan page fetches, breaker consume loops,
//      the result drain loop) via ExecContext::CheckGovernor. These
//      observe the external cancel flag, the logical memory budget, and
//      a deadline advanced by simulated I/O time.
//
// A trip latches: the first non-OK status wins, and a tripped ExecContext
// suppresses all further flushes (pending work is discarded, never
// charged), keeping the energy integration consistent and cross-mode
// deterministic. Checks run in a fixed order — cancel, then budget, then
// deadline — so a query violating several limits at once reports the
// same code in both modes.

#ifndef ECODB_EXEC_QUERY_GOVERNOR_H_
#define ECODB_EXEC_QUERY_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "ecodb/storage/value.h"
#include "ecodb/util/memory_tracker.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// Per-query resource limits. Default-constructed limits disable the
/// governor entirely (None() is true, queries run exactly as before).
struct QueryLimits {
  /// Simulated-seconds deadline, relative to the machine clock at query
  /// start. <= 0 means no deadline.
  double deadline_seconds = 0.0;

  /// Logical-byte budget for query scratch + result memory (see
  /// MemoryTracker for the accounting unit). 0 means unlimited.
  uint64_t memory_budget_bytes = 0;

  /// Cancel once stats.cycles_charged reaches this many inflated cycles.
  /// Trips only at flush-quantum boundaries, which makes the trip point
  /// bit-exact across execution modes; primarily a deterministic testing
  /// hook for "cancel mid-stream at a reproducible point". <= 0 disables.
  double cancel_at_charged_cycles = 0.0;

  /// Cooperative external cancellation: set to true from anywhere (e.g. a
  /// driver thread) and the query terminates with kCancelled at its next
  /// check point. Null disables.
  std::shared_ptr<std::atomic<bool>> cancel_flag;

  bool None() const {
    return deadline_seconds <= 0.0 && memory_budget_bytes == 0 &&
           cancel_at_charged_cycles <= 0.0 && cancel_flag == nullptr;
  }
};

class QueryGovernor {
 public:
  /// `query_start_seconds` is the machine clock at query admission; a
  /// relative deadline is converted to an absolute simulated time here.
  QueryGovernor(const QueryLimits& limits, double query_start_seconds);

  bool tripped() const { return !trip_.ok(); }
  const Status& trip_status() const { return trip_; }

  /// Latches the first non-OK status; later trips are ignored.
  void Trip(const Status& status) {
    if (trip_.ok() && !status.ok()) trip_ = status;
  }

  bool CancelRequested() const {
    return limits_.cancel_flag != nullptr &&
           limits_.cancel_flag->load(std::memory_order_relaxed);
  }
  bool CyclesTriggerHit(double cycles_charged) const {
    return limits_.cancel_at_charged_cycles > 0.0 &&
           cycles_charged >= limits_.cancel_at_charged_cycles;
  }
  bool BudgetExceeded(uint64_t current_bytes) const {
    return limits_.memory_budget_bytes > 0 &&
           current_bytes > limits_.memory_budget_bytes;
  }
  bool DeadlinePassed(double now_seconds) const {
    return deadline_abs_seconds_ > 0.0 && now_seconds >= deadline_abs_seconds_;
  }

  const QueryLimits& limits() const { return limits_; }
  double deadline_abs_seconds() const { return deadline_abs_seconds_; }

 private:
  QueryLimits limits_;
  double deadline_abs_seconds_ = 0.0;  ///< absolute; <= 0 disables
  Status trip_ = Status::OK();
};

/// Logical size of one cell, the unit MemoryTracker counts in: 1 byte for
/// NULL, 8 for any numeric/date/bool, 8 + payload length for a string.
/// Mode-independent by construction (both execution modes see the same
/// cells), which is what makes memory-budget trips deterministic across
/// kRow and kBatch.
inline uint64_t LogicalCellBytes(const CellView& v) {
  switch (v.type) {
    case ValueType::kNull:
      return 1;
    case ValueType::kString:
      return 8 + (v.s != nullptr ? v.s->size() : 0);
    default:
      return 8;
  }
}

inline uint64_t LogicalValueBytes(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kString:
      return 8 + v.AsString().size();
    default:
      return 8;
  }
}

inline uint64_t LogicalRowBytes(const Row& row) {
  uint64_t bytes = 0;
  for (const Value& v : row) bytes += LogicalValueBytes(v);
  return bytes;
}

}  // namespace ecodb

#endif  // ECODB_EXEC_QUERY_GOVERNOR_H_

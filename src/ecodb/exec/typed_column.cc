#include "ecodb/exec/typed_column.h"

#include <utility>

#include "ecodb/exec/query_governor.h"

namespace ecodb {

TypedColumn::TypedColumn(TypedColumn&& o) noexcept { *this = std::move(o); }

TypedColumn& TypedColumn::operator=(TypedColumn&& o) noexcept {
  if (this == &o) return *this;
  // Drop our own state first (releases tracked bytes, detaches our arena).
  if (str_ != nullptr) str_->DetachMemoryTracker();
  TrackReleaseAll();
  type_ = o.type_;
  boxed_ = o.boxed_;
  has_nulls_ = o.has_nulls_;
  dict_dedup_ = o.dict_dedup_;
  size_ = o.size_;
  i64_ = std::move(o.i64_);
  f64_ = std::move(o.f64_);
  strp_ = std::move(o.strp_);
  str_ = std::move(o.str_);
  retained_ = std::move(o.retained_);
  nulls_ = std::move(o.nulls_);
  vals_ = std::move(o.vals_);
  tracker_ = o.tracker_;
  tracked_bytes_ = o.tracked_bytes_;
  // The source must not release the bytes we now own.
  o.tracker_ = nullptr;
  o.tracked_bytes_ = 0;
  o.size_ = 0;
  o.boxed_ = false;
  o.has_nulls_ = false;
  return *this;
}

TypedColumn::~TypedColumn() {
  // The arena may be retained by emitted batches that outlive the query's
  // ExecContext (and thus the tracker) — sever its tracker link before it
  // escapes our control.
  if (str_ != nullptr) str_->DetachMemoryTracker();
  TrackReleaseAll();
}

void TypedColumn::Reset(ValueType declared_type) {
  TrackReleaseAll();
  type_ = declared_type;
  // Types with no typed representation stay boxed from the start.
  boxed_ = RowBatch::LaneKindFor(declared_type) == RowBatch::LaneKind::kNone;
  has_nulls_ = false;
  dict_dedup_ = false;
  size_ = 0;
  i64_.clear();
  f64_.clear();
  strp_.clear();
  if (RowBatch::LaneKindFor(declared_type) == RowBatch::LaneKind::kStringRef) {
    // A fresh arena unless this column is the sole owner of the old one
    // (emitted batches may still reference the previous query's strings).
    if (str_ == nullptr || str_.use_count() > 1) {
      if (str_ != nullptr) str_->DetachMemoryTracker();
      str_ = std::make_shared<StringArena>();
    } else {
      str_->Clear();
    }
    if (tracker_ != nullptr) str_->set_memory_tracker(tracker_);
  } else {
    if (str_ != nullptr) str_->DetachMemoryTracker();
    str_.reset();
  }
  retained_.clear();
  nulls_.clear();
  vals_.clear();
}

void TypedColumn::Demote() {
  vals_.clear();
  vals_.reserve(size_);
  for (uint32_t i = 0; i < size_; ++i) vals_.push_back(GetValue(i));
  i64_.clear();
  f64_.clear();
  strp_.clear();
  if (str_ != nullptr) str_->DetachMemoryTracker();
  str_.reset();
  retained_.clear();
  nulls_.clear();
  boxed_ = true;
  // Re-derive the charge from the boxed cells: the arena just released
  // its payload bytes, and borrowed-payload charges no longer apply.
  TrackReleaseAll();
  if (tracker_ != nullptr) {
    for (const Value& v : vals_) TrackCharge(LogicalValueBytes(v));
  }
}

void TypedColumn::GatherInto(RowBatch* out, int out_col,
                             const uint32_t* indices, size_t n) const {
  if (!boxed_) {
    RowBatch::TypedLane* lane = out->StartLaneAppend(out_col, type_);
    if (lane != nullptr) {
      switch (RowBatch::LaneKindFor(type_)) {
        case RowBatch::LaneKind::kInt64:
          for (size_t i = 0; i < n; ++i) lane->i64.push_back(i64_[indices[i]]);
          break;
        case RowBatch::LaneKind::kDouble:
          for (size_t i = 0; i < n; ++i) lane->f64.push_back(f64_[indices[i]]);
          break;
        case RowBatch::LaneKind::kStringRef:
          // The emitted pointers target this column's own arena, borrowed
          // arenas, or table storage; hand `out` every refcounted handle.
          out->RetainArena(str_);
          for (const StringArenaPtr& a : retained_) out->RetainArena(a);
          for (size_t i = 0; i < n; ++i) {
            lane->str.push_back(strp_[indices[i]]);
          }
          break;
        case RowBatch::LaneKind::kStringCode:
        case RowBatch::LaneKind::kNone:
          break;  // LaneKindFor never yields these
      }
      if (has_nulls_ && !lane->has_nulls) {
        lane->has_nulls = true;
        lane->nulls.assign(lane->LaneSize() - n, 0);
      }
      if (lane->has_nulls) {
        if (has_nulls_) {
          for (size_t i = 0; i < n; ++i) {
            lane->nulls.push_back(nulls_[indices[i]]);
          }
        } else {
          lane->nulls.resize(lane->LaneSize(), 0);
        }
      }
      return;
    }
  }
  // Boxed source, or the output column is already boxed.
  if (out->lane_active(out_col)) out->DemoteLaneDense(out_col);
  std::vector<Value>& dst = out->col(out_col);
  for (size_t i = 0; i < n; ++i) dst.push_back(GetValue(indices[i]));
}

void TypedColumn::AppendImpl(const CellView& v, bool stable_str) {
  if (!boxed_ && v.type != type_ && v.type != ValueType::kNull) {
    // Exact-tag mismatch with the declared type: typed storage could not
    // reproduce the boxed cell bit-for-bit, so fall back to Values.
    Demote();
  }
  if (boxed_) {
    vals_.push_back(BoxCellView(v));
    ++size_;
    TrackCharge(LogicalValueBytes(vals_.back()));
    return;
  }
  const bool null = v.type == ValueType::kNull;
  if (null) has_nulls_ = true;
  nulls_.push_back(null ? 1 : 0);
  switch (RowBatch::LaneKindFor(type_)) {
    case RowBatch::LaneKind::kInt64:
      i64_.push_back(null ? 0 : v.i);
      TrackCharge(null ? 1 : 8);
      break;
    case RowBatch::LaneKind::kDouble:
      f64_.push_back(null ? 0.0 : v.d);
      TrackCharge(null ? 1 : 8);
      break;
    case RowBatch::LaneKind::kStringRef:
      if (null) {
        strp_.push_back(nullptr);
        TrackCharge(1);
      } else if (stable_str) {
        strp_.push_back(v.s);
        TrackCharge(8 + v.s->size());  // borrowed payload, not in our arena
      } else {
        strp_.push_back(dict_dedup_ ? str_->InternDedup(*v.s)
                                    : str_->Intern(*v.s));
        TrackCharge(8);  // payload charged by the arena's tracker
      }
      break;
    case RowBatch::LaneKind::kStringCode:
    case RowBatch::LaneKind::kNone:
      break;  // LaneKindFor never yields these
  }
  ++size_;
}

}  // namespace ecodb

#include "ecodb/exec/typed_column.h"

namespace ecodb {

void TypedColumn::Reset(ValueType declared_type) {
  type_ = declared_type;
  // Types with no typed representation stay boxed from the start.
  boxed_ = RowBatch::LaneKindFor(declared_type) == RowBatch::LaneKind::kNone;
  has_nulls_ = false;
  dict_dedup_ = false;
  size_ = 0;
  i64_.clear();
  f64_.clear();
  strp_.clear();
  if (RowBatch::LaneKindFor(declared_type) == RowBatch::LaneKind::kStringRef) {
    // A fresh arena unless this column is the sole owner of the old one
    // (emitted batches may still reference the previous query's strings).
    if (str_ == nullptr || str_.use_count() > 1) {
      str_ = std::make_shared<StringArena>();
    } else {
      str_->Clear();
    }
  } else {
    str_.reset();
  }
  retained_.clear();
  nulls_.clear();
  vals_.clear();
}

void TypedColumn::Demote() {
  vals_.clear();
  vals_.reserve(size_);
  for (uint32_t i = 0; i < size_; ++i) vals_.push_back(GetValue(i));
  i64_.clear();
  f64_.clear();
  strp_.clear();
  str_.reset();
  retained_.clear();
  nulls_.clear();
  boxed_ = true;
}

void TypedColumn::GatherInto(RowBatch* out, int out_col,
                             const uint32_t* indices, size_t n) const {
  if (!boxed_) {
    RowBatch::TypedLane* lane = out->StartLaneAppend(out_col, type_);
    if (lane != nullptr) {
      switch (RowBatch::LaneKindFor(type_)) {
        case RowBatch::LaneKind::kInt64:
          for (size_t i = 0; i < n; ++i) lane->i64.push_back(i64_[indices[i]]);
          break;
        case RowBatch::LaneKind::kDouble:
          for (size_t i = 0; i < n; ++i) lane->f64.push_back(f64_[indices[i]]);
          break;
        case RowBatch::LaneKind::kStringRef:
          // The emitted pointers target this column's own arena, borrowed
          // arenas, or table storage; hand `out` every refcounted handle.
          out->RetainArena(str_);
          for (const StringArenaPtr& a : retained_) out->RetainArena(a);
          for (size_t i = 0; i < n; ++i) {
            lane->str.push_back(strp_[indices[i]]);
          }
          break;
        case RowBatch::LaneKind::kNone:
          break;
      }
      if (has_nulls_ && !lane->has_nulls) {
        lane->has_nulls = true;
        lane->nulls.assign(lane->LaneSize() - n, 0);
      }
      if (lane->has_nulls) {
        if (has_nulls_) {
          for (size_t i = 0; i < n; ++i) {
            lane->nulls.push_back(nulls_[indices[i]]);
          }
        } else {
          lane->nulls.resize(lane->LaneSize(), 0);
        }
      }
      return;
    }
  }
  // Boxed source, or the output column is already boxed.
  if (out->lane_active(out_col)) out->DemoteLaneDense(out_col);
  std::vector<Value>& dst = out->col(out_col);
  for (size_t i = 0; i < n; ++i) dst.push_back(GetValue(indices[i]));
}

void TypedColumn::AppendImpl(const CellView& v, bool stable_str) {
  if (!boxed_ && v.type != type_ && v.type != ValueType::kNull) {
    // Exact-tag mismatch with the declared type: typed storage could not
    // reproduce the boxed cell bit-for-bit, so fall back to Values.
    Demote();
  }
  if (boxed_) {
    vals_.push_back(BoxCellView(v));
    ++size_;
    return;
  }
  const bool null = v.type == ValueType::kNull;
  if (null) has_nulls_ = true;
  nulls_.push_back(null ? 1 : 0);
  switch (RowBatch::LaneKindFor(type_)) {
    case RowBatch::LaneKind::kInt64:
      i64_.push_back(null ? 0 : v.i);
      break;
    case RowBatch::LaneKind::kDouble:
      f64_.push_back(null ? 0.0 : v.d);
      break;
    case RowBatch::LaneKind::kStringRef:
      if (null) {
        strp_.push_back(nullptr);
      } else if (stable_str) {
        strp_.push_back(v.s);
      } else {
        strp_.push_back(dict_dedup_ ? str_->InternDedup(*v.s)
                                    : str_->Intern(*v.s));
      }
      break;
    case RowBatch::LaneKind::kNone:
      break;
  }
  ++size_;
}

}  // namespace ecodb

#include "ecodb/exec/exec_context.h"

namespace ecodb {

const char* ToString(ExecMode m) {
  return m == ExecMode::kRow ? "row" : "batch";
}

ExecContext::ExecContext(Machine* machine, const EngineProfile* profile,
                         Catalog* catalog, BufferPool* buffer_pool)
    : machine_(machine),
      profile_(profile),
      catalog_(catalog),
      buffer_pool_(buffer_pool) {
  double uc = machine_->settings().underclock;
  cycle_inflation_ = 1.0 + profile_->underclock_cpi_penalty * uc * uc * uc;
  machine_->SetLoadClass(profile_->load_class);
}

void ExecContext::ChargeScanTuples(uint64_t n, uint64_t total_bytes) {
  if (n == 0) return;
  stats_.tuples_scanned += n;
  pending_cycles_ += profile_->scan_tuple_cycles * static_cast<double>(n) +
                     profile_->scan_byte_cycles *
                         static_cast<double>(total_bytes);
  pending_lines_ += (static_cast<double>(total_bytes) / 64.0) *
                    profile_->scan_line_factor;
  MaybeFlush();
}

void ExecContext::ChargeHashBuilds(uint64_t n, int key_bytes) {
  if (n == 0) return;
  stats_.hash_builds += n;
  pending_cycles_ +=
      static_cast<double>(n) * (profile_->hash_build_cycles +
                                profile_->scan_byte_cycles * key_bytes);
  pending_lines_ += profile_->hash_op_lines * static_cast<double>(n);
  MaybeFlush();
}

void ExecContext::ChargeHashProbes(uint64_t n, int key_bytes) {
  if (n == 0) return;
  stats_.hash_probes += n;
  pending_cycles_ +=
      static_cast<double>(n) * (profile_->hash_probe_cycles +
                                profile_->scan_byte_cycles * key_bytes);
  pending_lines_ += profile_->hash_op_lines * static_cast<double>(n);
  MaybeFlush();
}

void ExecContext::ChargeAggUpdates(uint64_t n, int n_aggregates) {
  if (n == 0) return;
  stats_.agg_updates += n;
  pending_cycles_ +=
      static_cast<double>(n) * profile_->agg_update_cycles * n_aggregates;
  MaybeFlush();
}

void ExecContext::ChargeSortCompares(uint64_t n) {
  stats_.sort_compares += n;
  pending_cycles_ += profile_->sort_compare_cycles * static_cast<double>(n);
  MaybeFlush();
}

void ExecContext::ChargeOutputTuples(uint64_t n, int bytes_per_tuple) {
  if (n == 0) return;
  stats_.tuples_output += n;
  pending_cycles_ +=
      static_cast<double>(n) * (profile_->output_tuple_cycles +
                                profile_->output_byte_cycles * bytes_per_tuple);
  pending_lines_ += profile_->output_tuple_lines * static_cast<double>(n);
  MaybeFlush();
}

void ExecContext::ChargeEvalOps() {
  // Hot drain point (joins call it once per emitted row in row mode):
  // skip the stats/cycle updates when nothing accumulated.
  if (eval_.comparisons == 0 && eval_.arith_ops == 0) return;
  stats_.comparisons += eval_.comparisons;
  stats_.arith_ops += eval_.arith_ops;
  pending_cycles_ +=
      profile_->compare_cycles * static_cast<double>(eval_.comparisons) +
      profile_->arith_cycles * static_cast<double>(eval_.arith_ops);
  eval_ = EvalCounters();
  MaybeFlush();
}

void ExecContext::ChargeCycles(double cycles, double mem_lines) {
  pending_cycles_ += cycles;
  pending_lines_ += mem_lines;
  MaybeFlush();
}

Status ExecContext::ChargeSpill(uint64_t bytes) {
  if (!profile_->disk_backed || profile_->spill_fraction <= 0.0 || bytes == 0) {
    return Status::OK();
  }
  uint64_t spilled =
      static_cast<uint64_t>(static_cast<double>(bytes) * profile_->spill_fraction);
  if (spilled == 0) return Status::OK();
  stats_.spill_bytes += spilled;
  Flush();
  // Write partitions out, read them back: 2x the spilled volume, streamed.
  uint64_t requests = spilled / kPageSizeBytes + 1;
  ECODB_RETURN_NOT_OK(machine_->DiskRead(spilled, requests, false));
  ECODB_RETURN_NOT_OK(machine_->DiskRead(spilled, requests, false));
  return Status::OK();
}

Status ExecContext::FetchScanPages(uint32_t file_id, uint64_t first_page,
                                   uint64_t count,
                                   uint64_t scan_page_ordinal) {
  if (!profile_->disk_backed || buffer_pool_ == nullptr) return Status::OK();
  Flush();  // keep machine time ordered: CPU work before the I/O wait
  int period = profile_->cold_random_page_period;
  if (period > 0 && count == 1 &&
      scan_page_ordinal % static_cast<uint64_t>(period) ==
          static_cast<uint64_t>(period - 1)) {
    return buffer_pool_->FetchPage(PageId{file_id, first_page},
                                   AccessHint::kRandom);
  }
  return buffer_pool_->FetchRange(file_id, first_page, count,
                                  AccessHint::kSequential);
}

void ExecContext::MaybeFlush() {
  // Drain in *exact* threshold-sized cycle quanta (with a proportional
  // share of the pending memory lines) instead of dumping whatever has
  // accumulated. Flush boundaries therefore live at fixed positions in
  // charged-cycle space — structural points (operator close, I/O) plus
  // every kFlushCycleThreshold cycles — regardless of whether the work
  // arrived row-at-a-time or in bulk batch charges. The machine's
  // bus-contention model is nonlinear in the per-flush (cycles, lines)
  // mix, so granularity-dependent boundaries would make simulated time
  // and energy drift between execution modes on short queries.
  while (pending_cycles_ >= kFlushCycleThreshold) {
    const double frac = kFlushCycleThreshold / pending_cycles_;
    const double lines = pending_lines_ * frac;
    double cycles = kFlushCycleThreshold * cycle_inflation_;
    stats_.cycles_charged += cycles;
    stats_.mem_lines_charged += lines;
    machine_->ExecuteCpu(cycles, lines);
    pending_cycles_ -= kFlushCycleThreshold;
    pending_lines_ -= lines;
  }
}

void ExecContext::Flush() {
  MaybeFlush();
  if (pending_cycles_ <= 0 && pending_lines_ <= 0) return;
  double cycles = pending_cycles_ * cycle_inflation_;
  stats_.cycles_charged += cycles;
  stats_.mem_lines_charged += pending_lines_;
  machine_->ExecuteCpu(cycles, pending_lines_);
  pending_cycles_ = 0;
  pending_lines_ = 0;
}

void ExecContext::ResetStats() {
  stats_ = QueryExecStats();
  eval_ = EvalCounters();
}

}  // namespace ecodb

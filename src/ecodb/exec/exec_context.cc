#include "ecodb/exec/exec_context.h"

namespace ecodb {

const char* ToString(ExecMode m) {
  return m == ExecMode::kRow ? "row" : "batch";
}

ExecContext::ExecContext(Machine* machine, const EngineProfile* profile,
                         Catalog* catalog, BufferPool* buffer_pool)
    : machine_(machine),
      profile_(profile),
      catalog_(catalog),
      buffer_pool_(buffer_pool) {
  double uc = machine_->settings().underclock;
  cycle_inflation_ = 1.0 + profile_->underclock_cpi_penalty * uc * uc * uc;
  // Per-context, not machine-global: two contexts with different profiles
  // (or per-core worker contexts) must not stomp each other's load class.
  load_class_ = profile_->load_class;
  tracker_.BindPeakMirror(&stats_.peak_memory_bytes);
}

void ExecContext::RefreshSettings() {
  Flush();
  double uc = machine_->settings().underclock;
  cycle_inflation_ = 1.0 + profile_->underclock_cpi_penalty * uc * uc * uc;
}

Status ExecContext::CheckGovernor() {
  if (governor_ == nullptr) return Status::OK();
  if (governor_->tripped()) return governor_->trip_status();
  if (governor_->CancelRequested()) {
    governor_->Trip(Status::Cancelled("query cancelled by caller"));
  } else if (governor_->BudgetExceeded(tracker_.current_bytes())) {
    governor_->Trip(
        Status::ResourceExhausted("query memory budget exceeded"));
  } else if (governor_->DeadlinePassed(machine_->NowSeconds())) {
    governor_->Trip(
        Status::DeadlineExceeded("query deadline exceeded (simulated time)"));
  }
  return governor_->trip_status();
}

void ExecContext::ChargeScanTuples(uint64_t n, uint64_t total_bytes) {
  if (n == 0) return;
  stats_.tuples_scanned += n;
  pending_cycles_ += profile_->scan_tuple_cycles * static_cast<double>(n) +
                     profile_->scan_byte_cycles *
                         static_cast<double>(total_bytes);
  pending_lines_ += (static_cast<double>(total_bytes) / 64.0) *
                    profile_->scan_line_factor;
  Record({ChargeRecord::Kind::kScanTuples, n, total_bytes, 0.0, 0.0});
  MaybeFlush();
}

void ExecContext::ChargeHashBuilds(uint64_t n, int key_bytes) {
  if (n == 0) return;
  stats_.hash_builds += n;
  pending_cycles_ +=
      static_cast<double>(n) * (profile_->hash_build_cycles +
                                profile_->scan_byte_cycles * key_bytes);
  pending_lines_ += profile_->hash_op_lines * static_cast<double>(n);
  Record({ChargeRecord::Kind::kHashBuilds, n,
          static_cast<uint64_t>(key_bytes), 0.0, 0.0});
  MaybeFlush();
}

void ExecContext::ChargeHashProbes(uint64_t n, int key_bytes) {
  if (n == 0) return;
  stats_.hash_probes += n;
  pending_cycles_ +=
      static_cast<double>(n) * (profile_->hash_probe_cycles +
                                profile_->scan_byte_cycles * key_bytes);
  pending_lines_ += profile_->hash_op_lines * static_cast<double>(n);
  Record({ChargeRecord::Kind::kHashProbes, n,
          static_cast<uint64_t>(key_bytes), 0.0, 0.0});
  MaybeFlush();
}

void ExecContext::ChargeAggUpdates(uint64_t n, int n_aggregates) {
  if (n == 0) return;
  stats_.agg_updates += n;
  pending_cycles_ +=
      static_cast<double>(n) * profile_->agg_update_cycles * n_aggregates;
  Record({ChargeRecord::Kind::kAggUpdates, n,
          static_cast<uint64_t>(n_aggregates), 0.0, 0.0});
  MaybeFlush();
}

void ExecContext::ChargeSortCompares(uint64_t n) {
  if (n == 0) return;
  stats_.sort_compares += n;
  pending_cycles_ += profile_->sort_compare_cycles * static_cast<double>(n);
  Record({ChargeRecord::Kind::kSortCompares, n, 0, 0.0, 0.0});
  MaybeFlush();
}

void ExecContext::ChargeOutputTuples(uint64_t n, int bytes_per_tuple) {
  if (n == 0) return;
  stats_.tuples_output += n;
  pending_cycles_ +=
      static_cast<double>(n) * (profile_->output_tuple_cycles +
                                profile_->output_byte_cycles * bytes_per_tuple);
  pending_lines_ += profile_->output_tuple_lines * static_cast<double>(n);
  Record({ChargeRecord::Kind::kOutputTuples, n,
          static_cast<uint64_t>(bytes_per_tuple), 0.0, 0.0});
  MaybeFlush();
}

void ExecContext::ChargeEvalOps() {
  // Hot drain point (joins call it once per emitted row in row mode):
  // skip the stats/cycle updates when nothing accumulated.
  if (eval_.comparisons == 0 && eval_.arith_ops == 0) return;
  stats_.comparisons += eval_.comparisons;
  stats_.arith_ops += eval_.arith_ops;
  pending_cycles_ +=
      profile_->compare_cycles * static_cast<double>(eval_.comparisons) +
      profile_->arith_cycles * static_cast<double>(eval_.arith_ops);
  Record({ChargeRecord::Kind::kEvalOps, eval_.comparisons, eval_.arith_ops,
          0.0, 0.0});
  eval_ = EvalCounters();
  MaybeFlush();
}

void ExecContext::ChargeCycles(double cycles, double mem_lines) {
  pending_cycles_ += cycles;
  pending_lines_ += mem_lines;
  Record({ChargeRecord::Kind::kCycles, 0, 0, cycles, mem_lines});
  MaybeFlush();
}

Status ExecContext::ChargeSpill(uint64_t bytes) {
  // A tripped query charges no further I/O: spill volume depends on
  // mode-specific in-flight state after a trip, and the ledger must
  // freeze at the same point in both modes.
  if (governor_ != nullptr && governor_->tripped()) {
    return governor_->trip_status();
  }
  if (!profile_->disk_backed || profile_->spill_fraction <= 0.0 || bytes == 0) {
    return Status::OK();
  }
  uint64_t spilled =
      static_cast<uint64_t>(static_cast<double>(bytes) * profile_->spill_fraction);
  if (spilled == 0) return Status::OK();
  stats_.spill_bytes += spilled;
  Flush();
  // Write partitions out, read them back: 2x the spilled volume, streamed.
  // Ceil-div: an exact page multiple is exactly that many requests.
  uint64_t requests = (spilled + kPageSizeBytes - 1) / kPageSizeBytes;
  ECODB_RETURN_NOT_OK(machine_->DiskRead(spilled, requests, false));
  ECODB_RETURN_NOT_OK(machine_->DiskRead(spilled, requests, false));
  return Status::OK();
}

Status ExecContext::FetchScanPages(uint32_t file_id, uint64_t first_page,
                                   uint64_t count,
                                   uint64_t scan_page_ordinal) {
  // Page boundaries are identical pull positions in both execution modes
  // (scans fetch one page at a time in either), so this check keeps
  // governed kills — including deadline trips advanced by I/O time —
  // mode-aligned, and stops a tripped query from issuing further I/O.
  ECODB_RETURN_NOT_OK(CheckGovernor());
  if (!profile_->disk_backed || buffer_pool_ == nullptr) return Status::OK();
  Flush();  // keep machine time ordered: CPU work before the I/O wait
  int period = profile_->cold_random_page_period;
  if (period > 0 && count == 1 &&
      scan_page_ordinal % static_cast<uint64_t>(period) ==
          static_cast<uint64_t>(period - 1)) {
    return buffer_pool_->FetchPage(PageId{file_id, first_page},
                                   AccessHint::kRandom);
  }
  return buffer_pool_->FetchRange(file_id, first_page, count,
                                  AccessHint::kSequential);
}

void ExecContext::MaybeFlush() {
  // Drain in *exact* threshold-sized cycle quanta (with a proportional
  // share of the pending memory lines) instead of dumping whatever has
  // accumulated. Flush boundaries therefore live at fixed positions in
  // charged-cycle space — structural points (operator close, I/O) plus
  // every kFlushCycleThreshold cycles — regardless of whether the work
  // arrived row-at-a-time or in bulk batch charges. The machine's
  // bus-contention model is nonlinear in the per-flush (cycles, lines)
  // mix, so granularity-dependent boundaries would make simulated time
  // and energy drift between execution modes on short queries.
  //
  // Governor interplay: once tripped, the query charges nothing further —
  // pending work is discarded, freezing cycles_charged and the machine
  // ledger at the last quantum boundary. Because quanta live at fixed
  // charged-cycle positions in both execution modes, a charged-cycle
  // cancellation (and a CPU-time deadline) trips at a bit-exact
  // cycles_charged value whether the work arrived per-row or per-batch.
  if (governor_ != nullptr && governor_->tripped()) {
    pending_cycles_ = 0;
    pending_lines_ = 0;
    return;
  }
  // Recording contexts never touch the machine; pending work simply
  // accumulates until Flush folds it into the worker's stats. The quantum
  // schedule is reproduced when the coordinator replays the log.
  if (recording_ != nullptr) return;
  while (pending_cycles_ >= kFlushCycleThreshold) {
    const double frac = kFlushCycleThreshold / pending_cycles_;
    const double lines = pending_lines_ * frac;
    double cycles = kFlushCycleThreshold * cycle_inflation_;
    stats_.cycles_charged += cycles;
    stats_.mem_lines_charged += lines;
    machine_->ExecuteCpu(cycles, lines, load_class_);
    pending_cycles_ -= kFlushCycleThreshold;
    pending_lines_ -= lines;
    if (governor_ != nullptr) {
      if (governor_->CyclesTriggerHit(stats_.cycles_charged)) {
        governor_->Trip(
            Status::Cancelled("query cancelled at charged-cycle trigger"));
      } else if (governor_->DeadlinePassed(machine_->NowSeconds())) {
        governor_->Trip(Status::DeadlineExceeded(
            "query deadline exceeded (simulated time)"));
      }
      if (governor_->tripped()) {
        pending_cycles_ = 0;
        pending_lines_ = 0;
        return;
      }
    }
  }
}

void ExecContext::Flush() {
  MaybeFlush();  // discards everything when the governor has tripped
  if (pending_cycles_ <= 0 && pending_lines_ <= 0) return;
  double cycles = pending_cycles_ * cycle_inflation_;
  stats_.cycles_charged += cycles;
  stats_.mem_lines_charged += pending_lines_;
  if (recording_ == nullptr) {
    machine_->ExecuteCpu(cycles, pending_lines_, load_class_);
  }
  pending_cycles_ = 0;
  pending_lines_ = 0;
}

void ExecContext::ReplayChargeLog(const ChargeLog& log) {
  for (const ChargeRecord& rec : log) {
    switch (rec.kind) {
      case ChargeRecord::Kind::kScanTuples:
        ChargeScanTuples(rec.a, rec.b);
        break;
      case ChargeRecord::Kind::kHashBuilds:
        ChargeHashBuilds(rec.a, static_cast<int>(rec.b));
        break;
      case ChargeRecord::Kind::kHashProbes:
        ChargeHashProbes(rec.a, static_cast<int>(rec.b));
        break;
      case ChargeRecord::Kind::kAggUpdates:
        ChargeAggUpdates(rec.a, static_cast<int>(rec.b));
        break;
      case ChargeRecord::Kind::kSortCompares:
        ChargeSortCompares(rec.a);
        break;
      case ChargeRecord::Kind::kOutputTuples:
        ChargeOutputTuples(rec.a, static_cast<int>(rec.b));
        break;
      case ChargeRecord::Kind::kEvalOps:
        // Re-create the drain point: add the worker's counters to this
        // context's accumulator and drain, exactly as the single-threaded
        // operator's ChargeEvalOps call would have at this position.
        eval_.comparisons += rec.a;
        eval_.arith_ops += rec.b;
        ChargeEvalOps();
        break;
      case ChargeRecord::Kind::kCycles:
        ChargeCycles(rec.x, rec.y);
        break;
    }
  }
}

void ExecContext::ResetStats() {
  stats_ = QueryExecStats();
  eval_ = EvalCounters();
  tracker_.ResetPeak();  // re-mirrors the peak into the fresh stats
}

}  // namespace ecodb

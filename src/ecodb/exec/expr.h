// Expression trees, evaluated tuple-at-a-time against bound column
// indexes. Evaluation counts comparisons/arithmetic *lazily* (AND/OR
// short-circuit, IN lists stop at the first hit): the cost of a merged
// QED disjunction therefore grows with the number of disjuncts actually
// inspected, which is what produces the paper's Figure 6 trade-off shape.

#ifndef ECODB_EXEC_EXPR_H_
#define ECODB_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ecodb/exec/exec_context.h"
#include "ecodb/exec/expr_scratch.h"
#include "ecodb/exec/row_batch.h"
#include "ecodb/storage/value.h"

namespace ecodb {

enum class ExprKind {
  kColumn,
  kLiteral,
  kCompare,
  kLogical,
  kNot,
  kArith,
  kBetween,
  kInList,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* ToString(CompareOp op);
const char* ToString(LogicalOp op);
const char* ToString(ArithOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  virtual ~Expr() = default;

  virtual Value Eval(const Row& row, EvalCounters* c) const = 0;

  /// Vectorized evaluation over the rows listed in `sel` (a subset of
  /// `batch.sel()`). `out` is resized to batch.num_rows(); only positions
  /// in `sel` are written. Implementations MUST charge `c` exactly as a
  /// row-at-a-time Eval loop over `sel` would — including AND/OR
  /// short-circuit and IN-list early-exit laziness — so that batch and row
  /// execution report identical logical work (the Figure 6 cost shape).
  /// `scratch` (may be null) is the driving operator's reusable temporary
  /// pool; implementations draw every per-batch temporary from it so a
  /// steady-state pipeline allocates O(operators), not O(batches x nodes).
  /// The base implementation materializes each selected row and calls
  /// Eval; subclasses override with tight columnar loops.
  virtual void EvalBatch(const RowBatch& batch,
                         const std::vector<uint32_t>& sel,
                         std::vector<Value>* out, EvalCounters* c,
                         ExprScratch* scratch) const;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c) const {
    EvalBatch(batch, sel, out, c, nullptr);
  }

  /// Predicate form of EvalBatch: narrows `sel` in place to the rows where
  /// this expression is truthy, charging `c` exactly as EvalBatch over the
  /// same selection would. The base implementation evaluates and compacts;
  /// CompareExpr and AND-chains override to skip materializing the boolean
  /// vector entirely (the hot shape under FilterOp).
  virtual void FilterBatch(const RowBatch& batch, std::vector<uint32_t>* sel,
                           EvalCounters* c, ExprScratch* scratch) const;
  void FilterBatch(const RowBatch& batch, std::vector<uint32_t>* sel,
                   EvalCounters* c) const {
    FilterBatch(batch, sel, c, nullptr);
  }

  virtual ExprKind kind() const = 0;
  virtual ValueType type() const = 0;
  virtual std::string ToString() const = 0;

  /// All column indexes referenced by this subtree, appended to `out`.
  virtual void CollectColumns(std::vector<int>* out) const = 0;
};

// --- Node accessors (for the planner / MQO, which inspect trees) ---

class ColumnExpr : public Expr {
 public:
  ColumnExpr(int index, ValueType type, std::string name);
  Value Eval(const Row& row, EvalCounters* c) const override;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  ExprKind kind() const override { return ExprKind::kColumn; }
  ValueType type() const override { return type_; }
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<int>* out) const override;

  int index() const { return index_; }
  const std::string& name() const { return name_; }

 private:
  int index_;
  ValueType type_;
  std::string name_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Value Eval(const Row&, EvalCounters*) const override { return value_; }
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  ExprKind kind() const override { return ExprKind::kLiteral; }
  ValueType type() const override { return value_.type(); }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>*) const override {}

  const Value& value() const { return value_; }

 private:
  Value value_;
};

class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right);
  Value Eval(const Row& row, EvalCounters* c) const override;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  void FilterBatch(const RowBatch& batch, std::vector<uint32_t>* sel,
                   EvalCounters* c, ExprScratch* scratch) const override;
  using Expr::FilterBatch;
  ExprKind kind() const override { return ExprKind::kCompare; }
  ValueType type() const override { return ValueType::kBool; }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override;

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

/// N-ary AND/OR with short-circuit evaluation in operand order.
class LogicalExpr : public Expr {
 public:
  LogicalExpr(LogicalOp op, std::vector<ExprPtr> operands);
  Value Eval(const Row& row, EvalCounters* c) const override;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  void FilterBatch(const RowBatch& batch, std::vector<uint32_t>* sel,
                   EvalCounters* c, ExprScratch* scratch) const override;
  using Expr::FilterBatch;
  ExprKind kind() const override { return ExprKind::kLogical; }
  ValueType type() const override { return ValueType::kBool; }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override;

  LogicalOp op() const { return op_; }
  const std::vector<ExprPtr>& operands() const { return operands_; }

 private:
  LogicalOp op_;
  std::vector<ExprPtr> operands_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Value Eval(const Row& row, EvalCounters* c) const override;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  ExprKind kind() const override { return ExprKind::kNot; }
  ValueType type() const override { return ValueType::kBool; }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override;

  const ExprPtr& operand() const { return operand_; }

 private:
  ExprPtr operand_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right);
  Value Eval(const Row& row, EvalCounters* c) const override;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  ExprKind kind() const override { return ExprKind::kArith; }
  ValueType type() const override { return type_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override;

  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  ArithOp op_;
  ExprPtr left_, right_;
  ValueType type_;
};

/// expr BETWEEN lo AND hi (inclusive).
class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr operand, ExprPtr lo, ExprPtr hi);
  Value Eval(const Row& row, EvalCounters* c) const override;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  ExprKind kind() const override { return ExprKind::kBetween; }
  ValueType type() const override { return ValueType::kBool; }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override;

  const ExprPtr& operand() const { return operand_; }
  const ExprPtr& lo() const { return lo_; }
  const ExprPtr& hi() const { return hi_; }

 private:
  ExprPtr operand_, lo_, hi_;
};

/// expr IN (v1, v2, ...). Two evaluation strategies:
///  * linear scan with short-circuit (what MySQL's OR chain does; default —
///    this is the cost model QED's paper numbers embody), and
///  * a hash set (one probe regardless of list size; the
///    ablation_qed_inlist bench contrasts the two).
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr operand, std::vector<Value> values, bool hashed);
  Value Eval(const Row& row, EvalCounters* c) const override;
  void EvalBatch(const RowBatch& batch, const std::vector<uint32_t>& sel,
                 std::vector<Value>* out, EvalCounters* c,
                 ExprScratch* scratch) const override;
  using Expr::EvalBatch;
  ExprKind kind() const override { return ExprKind::kInList; }
  ValueType type() const override { return ValueType::kBool; }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override;

  const ExprPtr& operand() const { return operand_; }
  const std::vector<Value>& values() const { return values_; }
  bool hashed() const { return hashed_; }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  ExprPtr operand_;
  std::vector<Value> values_;
  bool hashed_;
  std::unordered_set<Value, ValueHash> set_;
};

/// True when `e` (a ColumnExpr / LiteralExpr / +,-,* ArithExpr tree) can
/// be evaluated entirely through raw double arrays against `batch`:
/// numeric columns that are still unboxed (lazy table columns or
/// null-free typed lanes) and non-null numeric literals. Division and
/// int64-typed arithmetic are excluded (NULL results / int wrapping
/// cannot be represented in doubles). Pure predicate — charges nothing.
bool CanEvalDoubleSubtree(const Expr& e, const RowBatch& batch);

/// Evaluates a CanEvalDoubleSubtree-approved subtree into raw doubles —
/// no Values anywhere. Results are either one scalar (*is_scalar) or
/// `vec` indexed by physical row. Operation counting matches the scalar
/// evaluator exactly: one arith op per arith node per selected row,
/// nothing for columns and literals. Internal per-node temporaries come
/// from `scratch` when provided.
void EvalDoubleSubtree(const Expr& e, const RowBatch& batch,
                       const std::vector<uint32_t>& sel,
                       std::vector<double>* vec, double* scalar,
                       bool* is_scalar, EvalCounters* c,
                       ExprScratch* scratch);

/// Batch operand accessor that avoids materializing a Value vector for the
/// two dominant leaf shapes: a ColumnExpr resolves to the batch column
/// *without* boxing it (view_at reads typed lanes and lazy table arrays in
/// place) and a LiteralExpr to a single shared Value; anything else
/// evaluates into scratch/local storage via EvalBatch. Counting parity
/// holds because column and literal references charge nothing in the
/// scalar path either. The referenced batch/expression must outlive the
/// operand. Kernels should prefer view_at (never allocates); at() boxes
/// the whole column on first touch of a column operand and exists for the
/// few consumers that need owning Values (hashed IN-list set lookup).
class BatchOperand {
 public:
  BatchOperand() = default;
  ~BatchOperand() { ReleaseStorage(); }
  BatchOperand(const BatchOperand&) = delete;
  BatchOperand& operator=(const BatchOperand&) = delete;
  BatchOperand(BatchOperand&& o) noexcept { *this = std::move(o); }
  BatchOperand& operator=(BatchOperand&& o) noexcept {
    ReleaseStorage();
    scalar_ = o.scalar_;
    batch_ = o.batch_;
    col_ = o.col_;
    borrowed_ = o.borrowed_;
    scratch_ = o.scratch_;
    local_ = std::move(o.local_);
    // A fallback-storage operand points vec_ at its own local_; re-point
    // it at *this* object's local_ or it would dangle into the
    // moved-from shell.
    vec_ = o.vec_ == &o.local_ ? &local_ : o.vec_;
    o.vec_ = nullptr;
    o.borrowed_ = nullptr;
    o.scratch_ = nullptr;
    return *this;
  }

  /// Unboxed view of the operand for row `r` (no allocation, ever).
  CellView view_at(uint32_t r) const {
    if (col_ >= 0) return batch_->ViewCell(col_, r);
    return CellView::Of(vec_ != nullptr ? (*vec_)[r] : *scalar_);
  }

  /// Column-reference binding (index >= 0 and the source batch), exposed
  /// so consumers can reach unboxed storage — dictionary code lanes and
  /// dict-encoded lazy columns — behind a plain column operand. -1 /
  /// nullptr for scalar and materialized operands.
  int column_index() const { return col_; }
  const RowBatch* source_batch() const { return batch_; }

  /// Boxed access; a column operand materializes its column on first use.
  const Value& at(uint32_t r) const {
    if (vec_ == nullptr && col_ >= 0) vec_ = &batch_->col(col_);
    return vec_ != nullptr ? (*vec_)[r] : *scalar_;
  }

  void Resolve(const Expr& e, const RowBatch& batch,
               const std::vector<uint32_t>& sel, EvalCounters* c,
               ExprScratch* scratch = nullptr);

 private:
  void ReleaseStorage() {
    if (scratch_ != nullptr && borrowed_ != nullptr) {
      scratch_->Release(borrowed_);
    }
    borrowed_ = nullptr;
    scratch_ = nullptr;
  }

  mutable const std::vector<Value>* vec_ = nullptr;  ///< per-row values, or
  const Value* scalar_ = nullptr;  ///< one value for every row, or
  const RowBatch* batch_ = nullptr;  ///< an unboxed column reference
  int col_ = -1;
  std::vector<Value>* borrowed_ = nullptr;  ///< scratch-pooled storage
  ExprScratch* scratch_ = nullptr;
  std::vector<Value> local_;  ///< fallback storage when no scratch given
};

// --- Construction helpers ---

ExprPtr Col(int index, ValueType type, std::string name);
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDbl(double v);
ExprPtr LitStr(std::string v);
ExprPtr LitDate(std::string_view iso);
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr And(std::vector<ExprPtr> operands);
ExprPtr Or(std::vector<ExprPtr> operands);
ExprPtr Not(ExprPtr e);
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi);
ExprPtr InList(ExprPtr e, std::vector<Value> values, bool hashed = false);

}  // namespace ecodb

#endif  // ECODB_EXEC_EXPR_H_

// Physical plan trees: a declarative description of an operator pipeline
// that can be (a) instantiated into Volcano operators for execution,
// (b) costed by the energy-aware cost model without executing, and
// (c) rewritten by the multi-query optimizer (QED).

#ifndef ECODB_EXEC_PLAN_H_
#define ECODB_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "ecodb/exec/operators.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/util/result.h"

namespace ecodb {

enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kHashJoin,
  kNestedLoopJoin,
  kAggregate,
  kSort,
  kLimit,
};

const char* ToString(PlanKind k);

struct PlanNode {
  PlanKind kind;
  Schema output_schema;
  std::vector<std::unique_ptr<PlanNode>> children;

  // kScan
  std::string table_name;

  // kFilter (predicate over child schema); kNestedLoopJoin (predicate over
  // concatenated schema, may be null)
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kHashJoin: children[0] = build, children[1] = probe
  std::vector<int> build_keys;
  std::vector<int> probe_keys;

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<AggSpec> aggs;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;

  /// Optimizer annotation: estimated output cardinality (rows); negative
  /// when not yet estimated.
  double est_rows = -1.0;

  /// Pretty tree rendering (EXPLAIN).
  std::string Explain(int indent = 0) const;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

// --- Builders (compute output schemas) ---

Result<PlanNodePtr> MakeScan(const Catalog& catalog,
                             const std::string& table_name);
PlanNodePtr MakeFilter(PlanNodePtr child, ExprPtr predicate);
PlanNodePtr MakeProject(PlanNodePtr child, std::vector<ExprPtr> exprs,
                        std::vector<std::string> names);
PlanNodePtr MakeHashJoin(PlanNodePtr build, PlanNodePtr probe,
                         std::vector<int> build_keys,
                         std::vector<int> probe_keys);
PlanNodePtr MakeNestedLoopJoin(PlanNodePtr outer, PlanNodePtr inner,
                               ExprPtr predicate);
PlanNodePtr MakeAggregate(PlanNodePtr child, std::vector<ExprPtr> group_by,
                          std::vector<AggSpec> aggs);
PlanNodePtr MakeSort(PlanNodePtr child, std::vector<SortKey> keys);
PlanNodePtr MakeLimit(PlanNodePtr child, int64_t limit);

/// Deep copy (plans are templates reused across runs; QED rewrites copies).
PlanNodePtr ClonePlan(const PlanNode& node);

/// Structural validation of a (possibly hand-built) plan tree: child
/// counts per node kind, non-null predicates/expressions, non-empty
/// projections, join-key arity and range, expression column indexes in
/// range of the child schema, non-negative limits. Returns
/// InvalidArgument naming the offending node. ExecutePlanColumnar runs
/// this before instantiating operators, so a malformed plan is a clean
/// error instead of an assert deep inside an operator.
Status ValidatePlan(const PlanNode& node);

/// Builds the operator tree for a plan.
Result<OperatorPtr> InstantiatePlan(const PlanNode& node, ExecContext* ctx);

/// Convenience: instantiate + execute + drain into a columnar ResultSet.
/// Defaults to vectorized batch execution; ExecMode::kRow preserves the
/// classic Volcano pull (identical results and logical-work accounting,
/// more host overhead — and an identical ResultSet, since row mode boxes
/// through the same columnar surface).
Result<ResultSet> ExecutePlanColumnar(const PlanNode& node, ExecContext* ctx,
                                      ExecMode mode = ExecMode::kBatch);

/// Row-oriented wrapper over ExecutePlanColumnar.
Result<std::vector<Row>> ExecutePlan(const PlanNode& node, ExecContext* ctx,
                                     ExecMode mode = ExecMode::kBatch);

}  // namespace ecodb

#endif  // ECODB_EXEC_PLAN_H_

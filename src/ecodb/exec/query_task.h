// QueryTask: one query's execution as an incrementally drivable state
// machine — the unit the workload scheduler interleaves.
//
// ExecuteOperatorColumnar runs a plan to completion in one call; a
// concurrent scheduler needs to run *many* plans against one simulated
// machine, advancing each a little at a time so their simulated service
// intervals overlap on the shared clock. QueryTask unbundles that drain
// loop: each Step() performs exactly one unit of work — instantiate+Open
// on the first call (pipeline breakers do their materialization there,
// so a sort/agg/build-heavy query's first step is its big one), then one
// batch pull (row mode: up to one batch's worth of row pulls) appended
// to the accumulating ResultSet. Every step boundary is a governor
// checkpoint: the task's own QueryGovernor (deadline anchored at
// *admission*, so queue wait and cross-query interference count against
// it) is consulted before each pull, exactly as the monolithic drain
// does.
//
// The task owns its ExecContext, governor, operator tree and result;
// failure at any step closes the operator stack and releases tracked
// result memory, leaving the shared Database reusable — the same
// contract Database::ExecutePlanQuery documents for monolithic
// execution. A finished (done or failed) task is inert: further Step()
// calls return the terminal state.

#ifndef ECODB_EXEC_QUERY_TASK_H_
#define ECODB_EXEC_QUERY_TASK_H_

#include <memory>
#include <utility>

#include "ecodb/exec/exec_context.h"
#include "ecodb/exec/plan.h"
#include "ecodb/exec/query_governor.h"
#include "ecodb/exec/result_set.h"

namespace ecodb {

class QueryTask {
 public:
  enum class State {
    kCreated,  ///< no Step() yet
    kRunning,  ///< opened, result partially drained
    kDone,     ///< drained; TakeResult() is valid
    kFailed,   ///< status() holds the error; everything torn down
  };

  /// `plan` is borrowed and must outlive the task. The context is owned;
  /// its exec mode is set from `mode` at the first step.
  QueryTask(const PlanNode* plan, std::unique_ptr<ExecContext> ctx,
            ExecMode mode)
      : plan_(plan), ctx_(std::move(ctx)), mode_(mode) {}
  ~QueryTask();

  QueryTask(const QueryTask&) = delete;
  QueryTask& operator=(const QueryTask&) = delete;

  /// Attaches per-query limits, anchoring a relative deadline at
  /// `start_seconds` (the scheduler passes admission time). Must be
  /// called before the first Step(); no-op for None() limits.
  void Govern(const QueryLimits& limits, double start_seconds);

  /// Runs the next unit of work and returns the state afterwards.
  State Step();

  State state() const { return state_; }
  /// OK while running/done; the terminal error once kFailed.
  const Status& status() const { return status_; }

  /// Moves the completed result out. Requires state() == kDone.
  ResultSet TakeResult() { return std::move(set_); }
  const Schema& output_schema() const { return plan_->output_schema; }

  ExecContext* ctx() { return ctx_.get(); }
  const QueryExecStats& stats() const { return ctx_->stats(); }

 private:
  State Fail(const Status& status);

  const PlanNode* plan_;
  std::unique_ptr<ExecContext> ctx_;
  ExecMode mode_;
  std::unique_ptr<QueryGovernor> governor_;  ///< null = ungoverned

  State state_ = State::kCreated;
  Status status_ = Status::OK();
  OperatorPtr op_;
  ResultSet set_;
  RowBatch batch_;
  int width_ = 0;
  uint64_t result_bytes_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_EXEC_QUERY_TASK_H_

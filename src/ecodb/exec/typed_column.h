// TypedColumn: one column of a contiguous column-major pool — the hash
// join's build side, SortOp's materialized input, HashAgg's result
// columns and the ResultSet's storage all use it. Cells are stored
// *typed* (raw int64 / double / string pointers plus a byte null mask)
// while every appended cell's exact type tag matches the declared schema
// type; the first mismatching cell demotes the column to boxed Values so
// that round-tripping a cell through the pool is always bit-exact.
//
// String cells are one `const std::string*` per row. The pointee is
// either (a) bytes this column interned into its own refcounted arena
// (`Append`, the copy path — optionally deduplicated through the arena's
// low-cardinality dictionary), or (b) *borrowed* storage — table columns
// or other arenas the column retained via RetainStorageOf(batch) before
// calling `AppendStable` (the zero-copy handoff path). Gather-style
// emission hands the same pointers to output batches, which retain the
// column's own arena plus everything it borrowed.

#ifndef ECODB_EXEC_TYPED_COLUMN_H_
#define ECODB_EXEC_TYPED_COLUMN_H_

#include <cstdint>
#include <vector>

#include "ecodb/exec/row_batch.h"
#include "ecodb/storage/string_arena.h"
#include "ecodb/storage/value.h"
#include "ecodb/util/memory_tracker.h"

namespace ecodb {

class TypedColumn {
 public:
  TypedColumn() = default;
  // Move-only once accounting entered the picture: a copy would double-
  // release its tracked bytes. Nothing in-tree copies columns.
  TypedColumn(TypedColumn&& o) noexcept;
  TypedColumn& operator=(TypedColumn&& o) noexcept;
  TypedColumn(const TypedColumn&) = delete;
  TypedColumn& operator=(const TypedColumn&) = delete;
  ~TypedColumn();

  void Reset(ValueType declared_type);

  /// Optional logical-byte accounting (operator scratch pools only —
  /// never ResultSet columns, which outlive the query's ExecContext).
  /// Every appended cell charges its LogicalCellBytes: 8 per cell slot
  /// plus string payload, the latter through the arena's own tracker for
  /// copied strings and directly for borrowed ones, so the total is the
  /// same on either path. Call after Reset (the tracker survives Reset).
  void set_memory_tracker(MemoryTracker* tracker) {
    tracker_ = tracker;
    if (str_ != nullptr) str_->set_memory_tracker(tracker);
  }

  /// Appends a cell, copying string payloads into this column's arena
  /// (through the dedup dictionary when EnableDictDedup was called).
  void Append(const CellView& v) { AppendImpl(v, /*stable_str=*/false); }

  /// Appends a cell whose string payload (if any) is guaranteed by the
  /// caller to stay alive and at the same address for this column's
  /// lifetime: table storage, or an arena the caller retained into this
  /// column via RetainStorageOf. Stores the pointer, copies nothing.
  void AppendStable(const CellView& v) { AppendImpl(v, /*stable_str=*/true); }

  /// Unboxed view of entry `idx` (string views point into the arena /
  /// borrowed storage).
  CellView View(uint32_t idx) const {
    if (boxed_) return CellView::Of(vals_[idx]);
    if (has_nulls_ && nulls_[idx]) return CellView::Null();
    switch (RowBatch::LaneKindFor(type_)) {
      case RowBatch::LaneKind::kInt64:
        return CellView::Int64(i64_[idx], type_);
      case RowBatch::LaneKind::kDouble:
        return CellView::Double(f64_[idx]);
      case RowBatch::LaneKind::kStringRef:
        return CellView::String(strp_[idx]);
      case RowBatch::LaneKind::kStringCode:
      case RowBatch::LaneKind::kNone:
        break;  // LaneKindFor never yields these
    }
    return CellView::Null();
  }
  Value GetValue(uint32_t idx) const { return BoxCellView(View(idx)); }

  /// Typed non-null appends for dense bulk gathers, hoisting the per-cell
  /// tag dispatch out of the row loop. Legal only while the column is
  /// unboxed and the value matches the declared type's storage class
  /// (callers check boxed() and type() once per run).
  void AppendNonNullInt64(int64_t v) {
    nulls_.push_back(0);
    i64_.push_back(v);
    ++size_;
    TrackCharge(8);
  }
  void AppendNonNullDouble(double v) {
    nulls_.push_back(0);
    f64_.push_back(v);
    ++size_;
    TrackCharge(8);
  }
  /// Copy form: interns the bytes into this column's arena.
  void AppendNonNullString(const std::string& v) {
    nulls_.push_back(0);
    strp_.push_back(dict_dedup_ ? str_->InternDedup(v) : str_->Intern(v));
    ++size_;
    TrackCharge(8);  // payload charged by the arena's tracker
  }
  /// Borrow form: stores the pointer; the caller guarantees stability
  /// (table storage, or arenas retained via RetainStorageOf).
  void AppendNonNullStringPtr(const std::string* v) {
    nulls_.push_back(0);
    strp_.push_back(v);
    ++size_;
    TrackCharge(8 + v->size());  // borrowed payload never hits our arena
  }

  /// Retains every arena that keeps `batch`'s string pointers valid, so
  /// AppendStable may borrow them. A no-op for batches with no arenas
  /// (lazy scan batches — their strings live in table storage). Callers
  /// must NOT borrow from a pool-backed batch
  /// (RowBatch::strings_pool_backed()); those bytes die at an operator
  /// Close no retention can see.
  void RetainStorageOf(const RowBatch& batch) {
    RetainArena(batch.own_arena_handle());
    for (const StringArenaPtr& a : batch.retained_arenas()) RetainArena(a);
  }

  /// Retains every arena keeping `col`'s string pointers valid (its own
  /// interned payload plus everything it borrowed), so AppendStable may
  /// carry `col`'s cells into this column by pointer. Used when the
  /// morsel coordinator absorbs a worker-built fragment column into the
  /// operator's global column without re-copying string bytes.
  void RetainStorageOfColumn(const TypedColumn& col) {
    RetainArena(col.strings());
    for (const StringArenaPtr& a : col.retained_arenas()) RetainArena(a);
  }

  /// Deduplicate copied strings through the arena's low-cardinality
  /// dictionary (ResultSet columns; pointless for pools whose strings are
  /// distinct by construction).
  void EnableDictDedup() { dict_dedup_ = true; }

  /// Gathers entries `indices[0..n)` into column `out_col` of `out`,
  /// append-style: typed lanes when possible (strings by pointer; `out`
  /// retains this column's own arena plus everything it borrowed, so the
  /// pointers survive even the owning operator's teardown; null masks
  /// backfilled against whatever the lane already holds), boxed Values
  /// otherwise. The shared emission path of hash-join match flushing,
  /// columnar sort output and columnar aggregate emission.
  void GatherInto(RowBatch* out, int out_col, const uint32_t* indices,
                  size_t n) const;

  ValueType type() const { return type_; }
  uint32_t size() const { return size_; }
  bool boxed() const { return boxed_; }
  bool has_nulls() const { return has_nulls_; }
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  /// Refcounted handle to this column's own interned-string payload;
  /// borrowed arenas are in retained_arenas().
  const StringArenaPtr& strings() const { return str_; }
  const std::vector<StringArenaPtr>& retained_arenas() const {
    return retained_;
  }
  bool IsNullAt(uint32_t idx) const { return has_nulls_ && nulls_[idx]; }

 private:
  void AppendImpl(const CellView& v, bool stable_str);
  // Linear-scan dedup: in-tree producers expose a handful of
  // query-lifetime arenas (a join pool's, a sort column's own), so the
  // retained list stays O(1) per column. A producer minting a fresh
  // arena per batch would make this quadratic over the consume loop —
  // switch to a hash set if one ever appears.
  void RetainArena(const StringArenaPtr& a) {
    if (a == nullptr || a->empty()) return;
    for (const StringArenaPtr& r : retained_) {
      if (r == a) return;
    }
    retained_.push_back(a);
  }
  void Demote();

  void TrackCharge(uint64_t bytes) {
    if (tracker_ != nullptr) {
      tracker_->Charge(bytes);
      tracked_bytes_ += bytes;
    }
  }
  /// Releases this column's own tracked bytes (not the arena's — the
  /// arena releases its payload charges itself on Clear/Detach).
  void TrackReleaseAll() {
    if (tracker_ != nullptr) {
      tracker_->Release(tracked_bytes_);
    }
    tracked_bytes_ = 0;
  }

  ValueType type_ = ValueType::kNull;
  bool boxed_ = false;
  bool has_nulls_ = false;
  bool dict_dedup_ = false;
  uint32_t size_ = 0;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<const std::string*> strp_;  ///< one pointer per row
  StringArenaPtr str_;                    ///< owned (interned) bytes
  std::vector<StringArenaPtr> retained_;  ///< borrowed bytes kept alive
  std::vector<uint8_t> nulls_;
  std::vector<Value> vals_;  ///< boxed fallback
  MemoryTracker* tracker_ = nullptr;
  uint64_t tracked_bytes_ = 0;  ///< column-side charges (excludes arena's)
};

}  // namespace ecodb

#endif  // ECODB_EXEC_TYPED_COLUMN_H_

// TypedColumn: one column of a contiguous column-major pool — the hash
// join's build side, SortOp's materialized input, and the ResultSet's
// storage all use it. Cells are stored *typed* (raw int64 / double /
// arena-owned string entries plus a byte null mask) while every appended
// cell's exact type tag matches the declared schema type; the first
// mismatching cell demotes the column to boxed Values so that
// round-tripping a cell through the pool is always bit-exact. Typed
// columns let gather-style emission read raw values (strings by pointer
// into the refcounted arena) instead of copying boxed Values per cell.

#ifndef ECODB_EXEC_TYPED_COLUMN_H_
#define ECODB_EXEC_TYPED_COLUMN_H_

#include <cstdint>
#include <vector>

#include "ecodb/exec/row_batch.h"
#include "ecodb/storage/string_arena.h"
#include "ecodb/storage/value.h"

namespace ecodb {

class TypedColumn {
 public:
  void Reset(ValueType declared_type);
  void Append(const CellView& v);
  /// Unboxed view of entry `idx` (string views point into the arena).
  CellView View(uint32_t idx) const {
    if (boxed_) return CellView::Of(vals_[idx]);
    if (has_nulls_ && nulls_[idx]) return CellView::Null();
    switch (RowBatch::LaneKindFor(type_)) {
      case RowBatch::LaneKind::kInt64:
        return CellView::Int64(i64_[idx], type_);
      case RowBatch::LaneKind::kDouble:
        return CellView::Double(f64_[idx]);
      case RowBatch::LaneKind::kStringRef:
        return CellView::String(&str_->at(idx));
      case RowBatch::LaneKind::kNone:
        break;
    }
    return CellView::Null();
  }
  Value GetValue(uint32_t idx) const { return BoxCellView(View(idx)); }

  /// Typed non-null appends for dense bulk gathers, hoisting the per-cell
  /// tag dispatch out of the row loop. Legal only while the column is
  /// unboxed and the value matches the declared type's storage class
  /// (callers check boxed() and type() once per run).
  void AppendNonNullInt64(int64_t v) {
    nulls_.push_back(0);
    i64_.push_back(v);
    ++size_;
  }
  void AppendNonNullDouble(double v) {
    nulls_.push_back(0);
    f64_.push_back(v);
    ++size_;
  }
  void AppendNonNullString(const std::string& v) {
    nulls_.push_back(0);
    str_->Intern(v);
    ++size_;
  }

  /// Gathers entries `indices[0..n)` into column `out_col` of `out`,
  /// append-style: typed lanes when possible (strings by pointer into
  /// this column's arena, which `out` retains; null masks backfilled
  /// against whatever the lane already holds), boxed Values otherwise.
  /// The shared emission path of hash-join match flushing and columnar
  /// sort output.
  void GatherInto(RowBatch* out, int out_col, const uint32_t* indices,
                  size_t n) const;

  ValueType type() const { return type_; }
  uint32_t size() const { return size_; }
  bool boxed() const { return boxed_; }
  bool has_nulls() const { return has_nulls_; }
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::string& str_at(uint32_t idx) const { return str_->at(idx); }
  /// Refcounted handle to the string payload; batches that gather string
  /// pointers out of this column retain it (RowBatch::RetainArena) so the
  /// bytes outlive the owning operator.
  const StringArenaPtr& strings() const { return str_; }
  bool IsNullAt(uint32_t idx) const { return has_nulls_ && nulls_[idx]; }

 private:
  void Demote();

  ValueType type_ = ValueType::kNull;
  bool boxed_ = false;
  bool has_nulls_ = false;
  uint32_t size_ = 0;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  StringArenaPtr str_;  ///< one entry per row for string columns
  std::vector<uint8_t> nulls_;
  std::vector<Value> vals_;  ///< boxed fallback
};

}  // namespace ecodb

#endif  // ECODB_EXEC_TYPED_COLUMN_H_

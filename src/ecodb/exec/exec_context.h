// ExecContext: the bridge between logical operator work and the simulated
// machine. Operators report logical operations (tuples scanned, predicates
// evaluated, hash probes, ...); the context converts them to CPU cycles
// and DRAM traffic using the EngineProfile and charges the Machine in
// batches.

#ifndef ECODB_EXEC_EXEC_CONTEXT_H_
#define ECODB_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

#include "ecodb/core/engine_profile.h"
#include "ecodb/exec/charge_log.h"
#include "ecodb/exec/query_governor.h"
#include "ecodb/sim/machine.h"
#include "ecodb/storage/buffer_pool.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/util/memory_tracker.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// How an operator tree is driven: classic row-at-a-time Volcano pulls, or
/// vectorized RowBatch pulls. Both modes charge identical logical work to
/// the simulated machine (the parity suite asserts it); batch mode merely
/// amortizes host-side bookkeeping over ~1k tuples.
enum class ExecMode { kRow, kBatch };

const char* ToString(ExecMode m);

/// Logical-operation counters accumulated during expression evaluation.
/// Comparisons are counted lazily (short-circuit AND/OR), which is what
/// gives QED's merged disjunctions their paper-shaped cost curve.
struct EvalCounters {
  uint64_t comparisons = 0;
  uint64_t arith_ops = 0;
};

/// Aggregate execution statistics for one query/batch (diagnostics).
struct QueryExecStats {
  uint64_t tuples_scanned = 0;
  uint64_t tuples_output = 0;
  uint64_t comparisons = 0;
  uint64_t arith_ops = 0;
  uint64_t hash_builds = 0;
  uint64_t hash_probes = 0;
  uint64_t agg_updates = 0;
  uint64_t sort_compares = 0;
  double cycles_charged = 0;
  double mem_lines_charged = 0;
  uint64_t spill_bytes = 0;
  /// High-water mark of the query's tracked logical scratch bytes (see
  /// MemoryTracker); mirrored live from the context's tracker.
  uint64_t peak_memory_bytes = 0;
  /// String-dedup dictionary effectiveness on the result surface
  /// (StringArena::InternDedup hits/misses). Diagnostics ONLY: batch mode
  /// borrows stable pointers where row mode copies, so these counters are
  /// mode-dependent and intentionally excluded from the parity suite's
  /// comparisons.
  uint64_t dict_dedup_hits = 0;
  uint64_t dict_dedup_misses = 0;
};

class ExecContext {
 public:
  ExecContext(Machine* machine, const EngineProfile* profile,
              Catalog* catalog, BufferPool* buffer_pool);

  Machine* machine() { return machine_; }
  const EngineProfile& profile() const { return *profile_; }
  Catalog* catalog() { return catalog_; }
  BufferPool* buffer_pool() { return buffer_pool_; }

  /// Expression evaluation counters (flushed into cycles by operators).
  EvalCounters* eval_counters() { return &eval_; }

  /// Execution mode the current operator tree is driven in. Pipeline
  /// breakers (sort, hash build, aggregation) consult this to decide how
  /// they consume their children.
  ExecMode exec_mode() const { return exec_mode_; }
  void set_exec_mode(ExecMode m) { exec_mode_ = m; }

  /// Worker count the morsel layer may use for eligible pipelines; 1 means
  /// single-threaded (the default and the parity oracle). Set by
  /// Database::ExecutePlanQuery after clamping (batch mode only,
  /// memory-resident profile, no governor).
  int exec_workers() const { return exec_workers_; }
  void set_exec_workers(int n) { exec_workers_ = n < 1 ? 1 : n; }

  /// How this query's work loads the CPU. Captured from the profile at
  /// construction so two contexts with different profiles can charge the
  /// same Machine concurrently without stomping a shared global.
  LoadClass load_class() const { return load_class_; }

  // --- Charge recording (morsel workers) ---

  /// Routes subsequent charges into `log` instead of the machine: Charge*
  /// calls update stats_ and append one ChargeRecord each; Flush folds
  /// pending cycles/lines into stats_ without machine contact (the worker
  /// totals feed per-core accrual). The coordinator replays the log later
  /// for the parity account. Pass nullptr to stop recording.
  void BeginRecording(ChargeLog* log) { recording_ = log; }
  bool recording() const { return recording_ != nullptr; }
  /// The log charges are currently routed into (null when charging the
  /// machine directly). Lets a scope divert charges into a scratch log
  /// and restore the previous target afterwards — see ScopedScratchCharges
  /// in exec/morsel.cc: breaker drivers charge workers' as-if-local work
  /// (hash builds they only partially perform, canonical replays the
  /// coordinator re-issues) into worker stats for the per-core concurrency
  /// view without letting it leak into the replayed parity stream.
  ChargeLog* recording_log() const { return recording_; }

  /// Re-applies a recorded charge stream through this context's normal
  /// charge path (stats, flush quanta, machine, governor) — the
  /// deterministic fold of worker charges into the shared ledger.
  void ReplayChargeLog(const ChargeLog& log);

  // --- Logical work reporting (called by operators) ---
  //
  // Bulk variants charge `n` tuples' worth of logical work with one stats
  // update and one pending-cycle accumulation; the singular forms are the
  // n == 1 case. The per-tuple cycle formula is identical either way, so
  // simulated totals agree between row and batch execution (bit-exact for
  // the integer counters, within fp-associativity for cycles).

  void ChargeScanTuple(int bytes) {
    ChargeScanTuples(1, static_cast<uint64_t>(bytes));
  }
  void ChargeScanTuples(uint64_t n, uint64_t total_bytes);
  void ChargeHashBuild(int key_bytes) { ChargeHashBuilds(1, key_bytes); }
  void ChargeHashBuilds(uint64_t n, int key_bytes);
  void ChargeHashProbe(int key_bytes) { ChargeHashProbes(1, key_bytes); }
  void ChargeHashProbes(uint64_t n, int key_bytes);
  void ChargeAggUpdate(int n_aggregates) { ChargeAggUpdates(1, n_aggregates); }
  void ChargeAggUpdates(uint64_t n, int n_aggregates);
  void ChargeSortCompares(uint64_t n);
  void ChargeOutputTuple(int bytes) { ChargeOutputTuples(1, bytes); }
  void ChargeOutputTuples(uint64_t n, int bytes_per_tuple);
  /// Drains eval_counters into cycles.
  void ChargeEvalOps();
  /// Raw cycle charge (split costs, custom work).
  void ChargeCycles(double cycles, double mem_lines = 0.0);

  /// Spill `bytes` to temp storage and read them back (grace-hash model).
  /// No-op for memory-resident profiles.
  Status ChargeSpill(uint64_t bytes);

  /// Page fetch for a scan; charges real simulated I/O only for
  /// disk-backed profiles. `scan_page_seq` counts pages fetched by this
  /// scan so far, to drive the cold_random_page_period mixing.
  Status FetchScanPages(uint32_t file_id, uint64_t first_page, uint64_t count,
                        uint64_t scan_page_ordinal);

  /// Flushes pending cycles/lines to the machine. Called at structural
  /// points (operator Close, before simulated I/O); between those points
  /// pending work auto-drains in *exact* kFlushCycleThreshold-cycle
  /// quanta with a proportional share of pending memory lines, so the
  /// machine sees flush boundaries at fixed charged-cycle positions
  /// regardless of whether operators report work row-at-a-time or in
  /// bulk — the bus-contention model is nonlinear per flush, and
  /// granularity-dependent boundaries would let simulated time/energy
  /// drift between execution modes.
  void Flush();

  const QueryExecStats& stats() const { return stats_; }
  void ResetStats();

  /// Folds result-surface InternDedup counters into stats. Diagnostics
  /// only — no cycles are charged and the parity suite ignores these.
  void AddDictDedupCounters(uint64_t hits, uint64_t misses) {
    stats_.dict_dedup_hits += hits;
    stats_.dict_dedup_misses += misses;
  }

  // --- Query governor (optional; null = unlimited, zero-overhead) ---

  /// Attaches a per-query governor. The context does not own it; the
  /// caller (Database::ExecutePlanQuery) keeps it alive for the query.
  void set_governor(QueryGovernor* governor) { governor_ = governor; }
  QueryGovernor* governor() { return governor_; }

  /// Cooperative limit check, called by operators at pull/consume
  /// boundaries. Observes (in this order, for cross-mode determinism):
  /// an already-latched trip, the external cancel flag, the logical
  /// memory budget, and the simulated-time deadline. Returns the trip
  /// status once tripped; OK otherwise. The charged-cycle cancellation
  /// trigger and the CPU-time deadline additionally trip *inside*
  /// MaybeFlush at exact quantum boundaries (see Flush), which is what
  /// makes a governed kill land at a bit-exact charged-cycle position in
  /// both execution modes.
  Status CheckGovernor();

  /// The query's logical-byte scratch accounting (always present; cheap
  /// when nothing attaches to it). Operators hand this to their pools.
  MemoryTracker* memory_tracker() { return &tracker_; }

  /// Re-derives settings-dependent cached state (the underclock CPI
  /// inflation) from the machine's *current* operating point, flushing
  /// pending work first so cycles charged before the switch are inflated
  /// at the old point. The workload scheduler calls this on every
  /// in-flight query's context after a degradation-ladder eco/stock
  /// transition; single-query execution never changes settings mid-run.
  void RefreshSettings();

 private:
  void MaybeFlush();

  void Record(const ChargeRecord& rec) {
    if (recording_ != nullptr) recording_->push_back(rec);
  }

  /// Quantum of the auto-drain (~6 simulated ms at 3.2 GHz): large enough
  /// that the lines-vs-cycles mix of one quantum is insensitive to charge
  /// arrival order (row-vs-batch energy parity on even sub-millisecond
  /// queries), small enough that long scans still step the power
  /// integration many times.
  static constexpr double kFlushCycleThreshold = 2.0e7;

  Machine* machine_;
  const EngineProfile* profile_;
  Catalog* catalog_;
  BufferPool* buffer_pool_;

  EvalCounters eval_;
  QueryExecStats stats_;
  ExecMode exec_mode_ = ExecMode::kBatch;
  int exec_workers_ = 1;
  LoadClass load_class_ = LoadClass::kSustained;
  QueryGovernor* governor_ = nullptr;  ///< not owned; null = no limits
  ChargeLog* recording_ = nullptr;     ///< not owned; null = charge machine
  MemoryTracker tracker_;

  double pending_cycles_ = 0;
  double pending_lines_ = 0;
  double cycle_inflation_ = 1.0;  ///< 1 + k*uc^2, cached per settings
};

}  // namespace ecodb

#endif  // ECODB_EXEC_EXEC_CONTEXT_H_

// ResultSet: the columnar result surface of query execution.
//
// Until PR 4 every drained plan funneled into std::vector<Row> — one heap
// vector of boxed Values per tuple — which made full-width result
// materialization the dominant host cost of scan-shaped queries
// (`scan_lineitem` sat at ~1x batch-vs-row). A ResultSet instead stores
// the result as typed column arrays (TypedColumn: raw int64 / double /
// string pointers + null masks, boxed fallback on tag mismatch):
//
//  * batch pipelines append whole RowBatches column-at-a-time
//    (AppendBatch) — lazy scan batches and typed lanes copy raw arrays,
//    never constructing a Value;
//  * row mode boxes through the same surface (AppendRow), so both
//    execution modes produce row-for-row identical results and the
//    parity contract extends to the result representation;
//  * existing row-oriented callers read the lazily built boxed view
//    (rows()), which reproduces each Value bit-for-bit from the exact
//    type tags (the TypedColumn round-trip invariant).
//
// String payload ownership (the PR 5 dedup contract): a result string is
// stored as one pointer per row, backed by one of
//
//  1. the producing batch's refcounted StringArenas, *retained* by the
//     result column (arena handoff — zero copy; sort/join/aggregate
//     emission arenas live exactly as long as the result does);
//  2. Table storage, borrowed directly for lazily-bound scan columns and
//     table-backed lanes — valid for the Database's lifetime (tables are
//     never dropped while the catalog lives);
//  3. the column's own arena, for payloads that had to be copied
//     (transient boxed Values, pool-backed lanes) — deduplicated through
//     the arena's small dictionary for low-cardinality columns.
//
// A ResultSet is therefore safe to hold after the operator tree is gone,
// and — like every other string borrower — must not outlive the Database
// whose tables it may reference.

#ifndef ECODB_EXEC_RESULT_SET_H_
#define ECODB_EXEC_RESULT_SET_H_

#include <cstdint>
#include <vector>

#include "ecodb/exec/row_batch.h"
#include "ecodb/exec/typed_column.h"
#include "ecodb/storage/schema.h"
#include "ecodb/storage/value.h"

namespace ecodb {

class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(const Schema& schema) { Reset(schema); }

  /// Clears all rows and (re)shapes the columns to `schema`.
  void Reset(const Schema& schema);

  int num_cols() const { return static_cast<int>(cols_.size()); }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Appends every selected row of `batch` column-at-a-time. Typed lanes
  /// and lazily-bound scan columns append raw values; string payloads are
  /// taken by pointer (retaining the batch's arenas / borrowing table
  /// storage) whenever the producer owns stable bytes, and copied —
  /// dictionary-deduplicated — only when it does not. Steady state
  /// allocates only for column growth.
  void AppendBatch(const RowBatch& batch);

  /// Appends one boxed row through the same typed columns (row mode).
  void AppendRow(const Row& row);

  /// Unboxed view of one cell (no allocation).
  CellView At(size_t row, int col) const {
    return cols_[static_cast<size_t>(col)].View(static_cast<uint32_t>(row));
  }
  /// Boxes one cell.
  Value ValueAt(size_t row, int col) const {
    return BoxCellView(At(row, col));
  }
  /// Boxes one full row.
  Row RowAt(size_t row) const;

  const TypedColumn& col(int i) const {
    return cols_[static_cast<size_t>(i)];
  }

  /// Boxed row-oriented view for existing callers, built lazily on first
  /// access and cached. Bit-for-bit identical to what the pre-columnar
  /// drain produced.
  const std::vector<Row>& rows() const;

  /// Moves the boxed view out (building it first if needed), leaving the
  /// columnar storage in place.
  std::vector<Row> TakeRows();

 private:
  std::vector<TypedColumn> cols_;
  size_t num_rows_ = 0;
  mutable std::vector<Row> row_view_;
  mutable bool row_view_built_ = false;
};

}  // namespace ecodb

#endif  // ECODB_EXEC_RESULT_SET_H_

// RowBatch: the unit of vectorized execution. A batch holds up to
// kDefaultBatchRows tuples in column-major order plus a selection vector
// of the row indexes that are logically alive. Operators communicate by
// filling / narrowing batches, which amortizes the per-tuple virtual-call,
// copy and accounting overhead of the Volcano path across ~1k tuples.
//
// A column of a batch lives in exactly one of three representations:
//
//  1. *Lazy*: the batch is bound to a row range of a Table (scans); the
//     table's typed arrays are the storage and nothing is copied until a
//     consumer asks for boxed Values.
//  2. *Typed lane*: raw int64 / double / string-pointer arrays with a
//     byte-per-row null mask, produced by gather-style operators (join
//     match emission, typed projections). Kernels read and write these
//     arrays directly; boxed Values are only manufactured if a slow-path
//     consumer touches the column.
//  3. *Boxed*: a std::vector<Value> (AppendRow producers, generic
//     expression results, and the on-demand materialization of 1/2).
//
// ViewCell() exposes any representation as an unboxed CellView, which is
// how typed kernels (hashing, key equality, comparisons, aggregation)
// touch cells without allocating.
//
// Conventions:
//  * `sel()` holds ascending physical row indexes; only those positions of
//    each column are meaningful. Producers that emit dense output (scans,
//    joins) fill an identity selection; filters narrow it in place.
//  * Batches are reused across NextBatch calls; Reset() keeps column and
//    lane capacity so steady-state execution does not allocate.
//  * Lane string pointers (and lazy bindings) reference storage owned by
//    one of: the table (query lifetime); a refcounted StringArena — a
//    batch that gathers string pointers out of another batch or an
//    arena-backed column *retains* the source arenas (RetainArena /
//    RetainStringStorage), so those bytes stay alive even after the
//    source batch is Reset or the owning operator Closes; or an
//    operator-owned pool frozen until that operator's Close (the
//    nested-loop join's materialized inner rows), which is safe because
//    every batch is consumed before the tree closes. Producers that must
//    copy an unstable string (one living in a boxed Value of a transient
//    batch) intern it into this batch's own arena instead of falling
//    back to boxed output.

#ifndef ECODB_EXEC_ROW_BATCH_H_
#define ECODB_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ecodb/storage/string_arena.h"
#include "ecodb/storage/table.h"
#include "ecodb/storage/value.h"

namespace ecodb {

class RowBatch {
 public:
  /// Default number of tuples per batch (the classic vector size: large
  /// enough to amortize per-batch overhead, small enough to stay
  /// cache-resident).
  static constexpr size_t kDefaultBatchRows = 1024;

  /// Physical storage class of a typed lane. kStringCode is a
  /// dictionary-code lane: int32 codes into a table Column's sorted
  /// dictionary. It views/boxes exactly like a string lane (ViewAt
  /// decodes to the dict entry's stable, table-owned address — no arena
  /// retention needed), but code-aware consumers (predicates, hashing,
  /// group-by, sort) read the codes directly and never touch payload
  /// bytes.
  enum class LaneKind : uint8_t {
    kNone,
    kInt64,
    kDouble,
    kStringRef,
    kStringCode
  };

  /// One typed column lane. `type` is the exact Value type tag cells box
  /// back to (kInt64/kDate/kBool share the i64 array). `nulls` is a
  /// byte-per-row null mask, only consulted when has_nulls is set.
  struct TypedLane {
    LaneKind kind = LaneKind::kNone;
    ValueType type = ValueType::kNull;
    bool has_nulls = false;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<const std::string*> str;
    std::vector<int32_t> codes;          ///< kStringCode cells
    const Column* dict = nullptr;        ///< kStringCode decode source
    std::vector<uint8_t> nulls;

    void Clear() {
      kind = LaneKind::kNone;
      type = ValueType::kNull;
      has_nulls = false;
      i64.clear();
      f64.clear();
      str.clear();
      codes.clear();
      dict = nullptr;
      nulls.clear();
    }
    /// Number of cells appended so far (dense producers).
    size_t LaneSize() const {
      switch (kind) {
        case LaneKind::kInt64:
          return i64.size();
        case LaneKind::kDouble:
          return f64.size();
        case LaneKind::kStringRef:
          return str.size();
        case LaneKind::kStringCode:
          return codes.size();
        case LaneKind::kNone:
          break;
      }
      return 0;
    }
    bool IsNullAt(uint32_t r) const { return has_nulls && nulls[r] != 0; }
    CellView ViewAt(uint32_t r) const {
      if (IsNullAt(r)) return CellView::Null();
      switch (kind) {
        case LaneKind::kInt64:
          return CellView::Int64(i64[r], type);
        case LaneKind::kDouble:
          return CellView::Double(f64[r]);
        case LaneKind::kStringRef:
          return CellView::String(str[r]);
        case LaneKind::kStringCode:
          return CellView::String(&dict->DictString(codes[r]));
        case LaneKind::kNone:
          break;
      }
      return CellView::Null();
    }
  };

  /// Lane storage class for a Value type; kNone when the type has no
  /// typed representation (producers must stay boxed).
  static LaneKind LaneKindFor(ValueType t) {
    switch (t) {
      case ValueType::kInt64:
      case ValueType::kDate:
      case ValueType::kBool:
        return LaneKind::kInt64;
      case ValueType::kDouble:
        return LaneKind::kDouble;
      case ValueType::kString:
        return LaneKind::kStringRef;
      case ValueType::kNull:
        break;
    }
    return LaneKind::kNone;
  }

  RowBatch() = default;

  /// Clears rows, selection, lanes and any lazy binding, (re)shaping to
  /// `num_cols` columns. Column and lane capacity is retained so
  /// steady-state reuse is allocation-free.
  void Reset(int num_cols) {
    cols_.resize(static_cast<size_t>(num_cols));
    for (auto& c : cols_) c.clear();
    lanes_.resize(static_cast<size_t>(num_cols));
    for (auto& l : lanes_) l.Clear();
    filled_.assign(static_cast<size_t>(num_cols), 0);
    sel_.clear();
    num_rows_ = 0;
    lazy_source_ = nullptr;
    retained_.clear();
    strings_pool_backed_ = false;
    if (arena_ != nullptr) {
      if (arena_.use_count() == 1) {
        arena_->Clear();  // sole owner: reuse
      } else {
        arena_.reset();  // someone downstream retained it; start fresh
      }
    }
  }

  int num_cols() const { return static_cast<int>(cols_.size()); }
  size_t num_rows() const { return num_rows_; }
  void set_num_rows(size_t n) { num_rows_ = n; }

  /// Binds this batch to rows [start_row, start_row + num_rows()) of
  /// `table` without boxing anything yet. Columns materialize on first
  /// access. Call after set_num_rows(); the selection at materialization
  /// time decides which positions are boxed.
  void BindLazySource(const Table* table, size_t start_row) {
    lazy_source_ = table;
    lazy_start_ = start_row;
    filled_.assign(cols_.size(), 0);
  }

  /// Column accessors; lazy and lane columns are boxed on first touch.
  const std::vector<Value>& col(int i) const {
    EnsureCol(i);
    return cols_[static_cast<size_t>(i)];
  }
  std::vector<Value>& col(int i) {
    EnsureCol(i);
    return cols_[static_cast<size_t>(i)];
  }

  std::vector<uint32_t>& sel() { return sel_; }
  const std::vector<uint32_t>& sel() const { return sel_; }

  /// Lazy-binding introspection, for typed fast paths that want to read
  /// the source table's columnar arrays directly (bypassing Value boxing).
  const Table* lazy_source() const { return lazy_source_; }
  size_t lazy_start() const { return lazy_start_; }

  /// True when cols_[i] holds the authoritative boxed values (owned
  /// producer output, or an already-boxed lazy/lane column).
  bool col_materialized(int i) const {
    const size_t c = static_cast<size_t>(i);
    return filled_[c] ||
           (lazy_source_ == nullptr && lanes_[c].kind == LaneKind::kNone);
  }

  /// True when column `i` is backed by a typed lane that has not been
  /// boxed over (the lane arrays are authoritative).
  bool lane_active(int i) const {
    const size_t c = static_cast<size_t>(i);
    return lanes_[c].kind != LaneKind::kNone && !filled_[c];
  }
  const TypedLane& lane(int i) const {
    return lanes_[static_cast<size_t>(i)];
  }

  /// Producer API: claims column `i` as a typed lane for cells of exact
  /// type `type` and returns it for direct filling (dense push_back, or
  /// resize + scatter by physical row). Returns nullptr when `type` has
  /// no lane representation — the producer must fill col(i) boxed.
  TypedLane* StartLane(int i, ValueType type) {
    const LaneKind kind = LaneKindFor(type);
    if (kind == LaneKind::kNone) return nullptr;
    TypedLane& l = lanes_[static_cast<size_t>(i)];
    l.Clear();
    l.kind = kind;
    l.type = type;
    return &l;
  }

  /// Producer API for append-style (dense) producers that may emit one
  /// column across several gather flushes: returns the lane to keep
  /// appending cells of exact type `type` to. Starts the lane if the
  /// column is still empty; returns the active lane if the type matches;
  /// returns nullptr — demoting any mismatched lane to boxed first — when
  /// the producer must append boxed Values via col(i) instead.
  TypedLane* StartLaneAppend(int i, ValueType type) {
    const size_t c = static_cast<size_t>(i);
    TypedLane& l = lanes_[c];
    if (l.kind != LaneKind::kNone && !filled_[c]) {
      // Kind must match too: a code lane shares type kString with a
      // string-ref lane but stores int32 codes, not pointers.
      if (l.type == type && l.kind == LaneKindFor(type)) return &l;
      DemoteLaneDense(i);
      return nullptr;
    }
    if (filled_[c] || !cols_[c].empty()) return nullptr;  // already boxed
    return StartLane(i, type);
  }

  /// Producer API: claims column `i` as a dictionary-code lane decoding
  /// through `dict` (table-owned, stable for the query — see the Column
  /// dictionary contract in storage/table.h). The producer fills `codes`
  /// (and `nulls` if it sets has_nulls).
  TypedLane* StartCodeLane(int i, const Column* dict) {
    TypedLane& l = lanes_[static_cast<size_t>(i)];
    l.Clear();
    l.kind = LaneKind::kStringCode;
    l.type = ValueType::kString;
    l.dict = dict;
    return &l;
  }

  /// Append-style counterpart of StartCodeLane: returns the active code
  /// lane when it decodes through the same `dict` (or starts one on an
  /// untouched column). Returns nullptr — without demoting — when the
  /// column is in any other state; the caller falls back to
  /// StartLaneAppend(i, kString) with decoded pointers.
  TypedLane* StartCodeLaneAppend(int i, const Column* dict) {
    const size_t c = static_cast<size_t>(i);
    TypedLane& l = lanes_[c];
    if (l.kind == LaneKind::kStringCode && !filled_[c]) {
      return l.dict == dict ? &l : nullptr;
    }
    if (l.kind != LaneKind::kNone && !filled_[c]) return nullptr;
    if (filled_[c] || !cols_[c].empty()) return nullptr;  // already boxed
    return StartCodeLane(i, dict);
  }

  /// Producer API: boxes a densely-filled lane (rows [0, lane length))
  /// into the boxed column and retires the lane, so the producer can
  /// continue appending boxed values. Used when a gather source changes
  /// representation mid-batch.
  void DemoteLaneDense(int i);

  // --- String ownership (see the header comment's lifetime rule) ---

  /// This batch's own arena, for producers that must copy an unstable
  /// string payload but want to keep the column in lane form. Created on
  /// first use; cleared or replaced by Reset().
  StringArena* arena() {
    if (arena_ == nullptr) arena_ = std::make_shared<StringArena>();
    return arena_.get();
  }

  /// Keeps `a`'s strings alive for this batch's lifetime (and, through
  /// the consumer's own RetainStringStorage call, transitively for any
  /// batch gathered from this one).
  void RetainArena(const StringArenaPtr& a) {
    if (a == nullptr || a->empty()) return;
    for (const StringArenaPtr& r : retained_) {
      if (r == a) return;
    }
    retained_.push_back(a);
  }

  /// Retains every arena that keeps `src`'s string-ref lanes valid: its
  /// own arena plus everything it retained. Producers call this before
  /// gathering string pointers out of `src` into this batch's lanes.
  /// Also propagates `src`'s pool-backed marker: a batch gathered from a
  /// pool-backed batch may carry the same pool pointers.
  void RetainStringStorage(const RowBatch& src) {
    RetainArena(src.arena_);
    for (const StringArenaPtr& r : src.retained_) RetainArena(r);
    strings_pool_backed_ |= src.strings_pool_backed_;
  }

  /// Marks this batch's string lanes as (possibly) referencing an
  /// operator-owned pool frozen only until that operator's Close (the
  /// nested-loop join's materialized inner rows). Such pointers are safe
  /// for pipeline consumption — every batch is consumed before the tree
  /// closes — but must NOT be borrowed across an operator Close or into a
  /// query result: cross-Close borrowers (sort/build-pool materialization,
  /// ResultSet arena handoff) check this flag and fall back to copying.
  void MarkStringsPoolBacked() { strings_pool_backed_ = true; }
  bool strings_pool_backed() const { return strings_pool_backed_; }

  /// The arena handles behind this batch's string lanes, for columnar
  /// pools (TypedColumn) that borrow string pointers out of the batch and
  /// must keep the bytes alive past the batch's own lifetime.
  const StringArenaPtr& own_arena_handle() const { return arena_; }
  const std::vector<StringArenaPtr>& retained_arenas() const {
    return retained_;
  }

  /// Appends cell `v` densely to column `i`, keeping the column in lane
  /// form while every non-null cell's exact tag matches `declared`.
  /// String payloads are appended by pointer when `stable_str` is true
  /// (the caller guarantees the pointee outlives this batch, per the
  /// retention contract) and interned into this batch's arena otherwise.
  /// Falls back to boxed appends — demoting any existing lane — on tag
  /// mismatch or for types with no lane representation.
  void AppendCellDense(int i, ValueType declared, const CellView& v,
                       bool stable_str);

  /// Number of logically-alive rows.
  size_t active() const { return sel_.size(); }
  bool empty() const { return sel_.empty(); }

  /// Appends one row (copying values) and marks it selected.
  void AppendRow(const Row& row) {
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
    sel_.push_back(static_cast<uint32_t>(num_rows_));
    ++num_rows_;
  }

  /// Appends one row, moving the values out of `row`.
  void AppendRowMove(Row&& row) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(std::move(row[c]));
    }
    sel_.push_back(static_cast<uint32_t>(num_rows_));
    ++num_rows_;
  }

  /// Extends the selection with the identity [from, num_rows_).
  void ExtendIdentitySel(size_t from) {
    sel_.reserve(num_rows_);
    for (size_t r = from; r < num_rows_; ++r) {
      sel_.push_back(static_cast<uint32_t>(r));
    }
  }

  /// Unboxed view of cell (col, r), whatever its representation. The view
  /// borrows from the batch / table / lane and follows the same lifetime
  /// rule as the batch itself.
  CellView ViewCell(int col, uint32_t r) const {
    const size_t c = static_cast<size_t>(col);
    if (filled_[c]) return CellView::Of(cols_[c][r]);
    if (lanes_[c].kind != LaneKind::kNone) return lanes_[c].ViewAt(r);
    if (lazy_source_ != nullptr) return LazyView(col, r);
    return CellView::Of(cols_[c][r]);
  }

  /// Boxes a single cell without materializing the whole column. For a
  /// lazily-bound batch this is how sparse consumers avoid boxing the
  /// positions they never touch; for owned columns it is a plain copy.
  Value CellValue(int col, uint32_t r) const {
    const size_t c = static_cast<size_t>(col);
    if (col_materialized(col)) return cols_[c][r];
    return BoxCellView(ViewCell(col, r));
  }

  /// Three-way compare of `v` against cell (col, r) — exactly
  /// v.Compare(boxed cell), but unmaterialized cells (lazy or lane)
  /// compare in place with no heap-allocating Value constructed.
  int CompareCell(const Value& v, int col, uint32_t r) const {
    return CompareCellViews(CellView::Of(v), ViewCell(col, r));
  }

  /// Materializes physical row `r` into `out`.
  void MaterializeRow(uint32_t r, Row* out) const;

 private:
  CellView LazyView(int col, uint32_t r) const;
  void EnsureCol(int i) const;

  mutable std::vector<std::vector<Value>> cols_;
  std::vector<TypedLane> lanes_;
  std::vector<uint32_t> sel_;
  size_t num_rows_ = 0;

  const Table* lazy_source_ = nullptr;
  size_t lazy_start_ = 0;
  /// filled_[c] set => cols_[c] holds the authoritative boxed values.
  mutable std::vector<uint8_t> filled_;

  StringArenaPtr arena_;  ///< owned string payloads (lazily created)
  std::vector<StringArenaPtr> retained_;  ///< borrowed payloads kept alive
  /// Set when string lanes may point into an operator pool that dies at
  /// that operator's Close (not covered by arena retention).
  bool strings_pool_backed_ = false;
};

// Multi-column key hashing over whole batches (typed, unboxed for lazily
// bound scan batches and lane columns) lives in exec/hash_table.h
// (HashKeyColumnsBatch), alongside the flat hash index it feeds.

}  // namespace ecodb

#endif  // ECODB_EXEC_ROW_BATCH_H_

// RowBatch: the unit of vectorized execution. A batch holds up to
// kDefaultBatchRows tuples in column-major order (one std::vector<Value>
// per output column) plus a selection vector of the row indexes that are
// logically alive. Operators communicate by filling / narrowing batches,
// which amortizes the per-tuple virtual-call, copy and accounting overhead
// of the Volcano path across ~1k tuples.
//
// Scan batches use *late materialization*: SeqScanOp binds the batch to a
// table row range instead of boxing every cell up front, and a column is
// boxed into Values only when first touched — and, once a filter has
// narrowed the selection, only at the selected positions. A pipeline like
// scan -> filter -> aggregate therefore boxes just the columns its
// expressions reference instead of the full tuple width. This is purely a
// host-side optimization: the simulated accounting still charges the scan
// for full tuples and the same page I/O sequence.
//
// Conventions:
//  * `sel()` holds ascending physical row indexes; only those positions of
//    each column are meaningful. Producers that emit dense output (scans,
//    joins) fill an identity selection; filters narrow it in place.
//  * Batches are reused across NextBatch calls; Reset() keeps column
//    capacity so steady-state execution does not allocate.

#ifndef ECODB_EXEC_ROW_BATCH_H_
#define ECODB_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <vector>

#include "ecodb/storage/table.h"
#include "ecodb/storage/value.h"

namespace ecodb {

class RowBatch {
 public:
  /// Default number of tuples per batch (the classic vector size: large
  /// enough to amortize per-batch overhead, small enough to stay
  /// cache-resident).
  static constexpr size_t kDefaultBatchRows = 1024;

  RowBatch() = default;

  /// Clears rows, selection and any lazy binding, (re)shaping to
  /// `num_cols` columns. Column capacity is retained so steady-state reuse
  /// is allocation-free.
  void Reset(int num_cols) {
    cols_.resize(static_cast<size_t>(num_cols));
    for (auto& c : cols_) c.clear();
    sel_.clear();
    num_rows_ = 0;
    lazy_source_ = nullptr;
  }

  int num_cols() const { return static_cast<int>(cols_.size()); }
  size_t num_rows() const { return num_rows_; }
  void set_num_rows(size_t n) { num_rows_ = n; }

  /// Binds this batch to rows [start_row, start_row + num_rows()) of
  /// `table` without boxing anything yet. Columns materialize on first
  /// access. Call after set_num_rows(); the selection at materialization
  /// time decides which positions are boxed.
  void BindLazySource(const Table* table, size_t start_row) {
    lazy_source_ = table;
    lazy_start_ = start_row;
    lazy_filled_.assign(cols_.size(), 0);
  }

  /// Column accessors; lazy columns are boxed on first touch.
  const std::vector<Value>& col(int i) const {
    EnsureCol(i);
    return cols_[static_cast<size_t>(i)];
  }
  std::vector<Value>& col(int i) {
    EnsureCol(i);
    return cols_[static_cast<size_t>(i)];
  }

  std::vector<uint32_t>& sel() { return sel_; }
  const std::vector<uint32_t>& sel() const { return sel_; }

  /// Lazy-binding introspection, for typed fast paths that want to read
  /// the source table's columnar arrays directly (bypassing Value boxing).
  /// lazy_source() is null once columns are owned/materialized.
  const Table* lazy_source() const { return lazy_source_; }
  size_t lazy_start() const { return lazy_start_; }
  bool col_materialized(int i) const {
    return lazy_source_ == nullptr || lazy_filled_[static_cast<size_t>(i)];
  }

  /// Number of logically-alive rows.
  size_t active() const { return sel_.size(); }
  bool empty() const { return sel_.empty(); }

  /// Appends one row (copying values) and marks it selected.
  void AppendRow(const Row& row) {
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
    sel_.push_back(static_cast<uint32_t>(num_rows_));
    ++num_rows_;
  }

  /// Appends one row, moving the values out of `row`.
  void AppendRowMove(Row&& row) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(std::move(row[c]));
    }
    sel_.push_back(static_cast<uint32_t>(num_rows_));
    ++num_rows_;
  }

  /// Extends the selection with the identity [from, num_rows_).
  void ExtendIdentitySel(size_t from) {
    sel_.reserve(num_rows_);
    for (size_t r = from; r < num_rows_; ++r) {
      sel_.push_back(static_cast<uint32_t>(r));
    }
  }

  /// Boxes a single cell without materializing the whole column. For a
  /// lazily-bound batch this is how sparse consumers (join match emission)
  /// avoid boxing the positions they never touch; for owned columns it is
  /// a plain copy.
  Value CellValue(int col, uint32_t r) const {
    const size_t c = static_cast<size_t>(col);
    if (lazy_source_ != nullptr && !lazy_filled_[c]) {
      return lazy_source_->column(col).GetValue(lazy_start_ + r);
    }
    return cols_[c][r];
  }

  /// Three-way compare of `v` against cell (col, r) — exactly
  /// v.Compare(boxed cell), but strings in a lazily-bound column compare
  /// in place (no heap-allocating Value is constructed).
  int CompareCell(const Value& v, int col, uint32_t r) const {
    const size_t c = static_cast<size_t>(col);
    if (lazy_source_ != nullptr && !lazy_filled_[c]) {
      const Column& src = lazy_source_->column(col);
      if (src.type() == ValueType::kString && v.type() == ValueType::kString) {
        int cmp = v.AsString().compare(src.GetString(lazy_start_ + r));
        return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      }
      return v.Compare(src.GetValue(lazy_start_ + r));
    }
    return v.Compare(cols_[c][r]);
  }

  /// Materializes physical row `r` into `out`.
  void MaterializeRow(uint32_t r, Row* out) const {
    out->clear();
    out->reserve(cols_.size());
    if (lazy_source_ != nullptr) {
      // Whole-row access: box straight from the table, bypassing the
      // per-column caches (full-width consumers touch every column once).
      lazy_source_->GetRow(lazy_start_ + r, out);
      return;
    }
    for (const auto& c : cols_) out->push_back(c[r]);
  }

  /// Appends every selected row to `out` as materialized Rows. Reserves
  /// with geometric growth (an exact per-batch reserve would defeat
  /// amortized doubling and turn repeated drains quadratic).
  void MaterializeInto(std::vector<Row>* out) const {
    const size_t need = out->size() + sel_.size();
    if (out->capacity() < need) {
      out->reserve(need > out->capacity() * 2 ? need : out->capacity() * 2);
    }
    for (uint32_t r : sel_) {
      Row row;
      MaterializeRow(r, &row);
      out->push_back(std::move(row));
    }
  }

 private:
  void EnsureCol(int i) const {
    if (lazy_source_ == nullptr) return;
    const size_t c = static_cast<size_t>(i);
    if (lazy_filled_[c]) return;
    std::vector<Value>& dst = cols_[c];
    const Column& src = lazy_source_->column(i);
    dst.clear();
    if (sel_.size() == num_rows_) {
      src.GetValueRange(lazy_start_, num_rows_, &dst);
    } else {
      // Sparse selection: box only the live positions.
      dst.resize(num_rows_);
      for (uint32_t r : sel_) dst[r] = src.GetValue(lazy_start_ + r);
    }
    lazy_filled_[c] = 1;
  }

  mutable std::vector<std::vector<Value>> cols_;
  std::vector<uint32_t> sel_;
  size_t num_rows_ = 0;

  const Table* lazy_source_ = nullptr;
  size_t lazy_start_ = 0;
  mutable std::vector<uint8_t> lazy_filled_;
};

// Multi-column key hashing over whole batches (typed, unboxed for lazily
// bound scan batches) lives in exec/hash_table.h (HashKeyColumnsBatch),
// alongside the flat hash index it feeds.

}  // namespace ecodb

#endif  // ECODB_EXEC_ROW_BATCH_H_

#include "ecodb/exec/operators.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "ecodb/exec/query_governor.h"
#include "ecodb/util/strings.h"

namespace ecodb {

ValueType AggSpec::ResultType() const {
  switch (kind) {
    case Kind::kCount:
      return ValueType::kInt64;
    case Kind::kSum:
    case Kind::kAvg:
      return ValueType::kDouble;
    case Kind::kMin:
    case Kind::kMax:
      return arg ? arg->type() : ValueType::kNull;
  }
  return ValueType::kNull;
}

// --- Operator (base NextBatch adapter) ---

Status Operator::NextBatch(RowBatch* out, bool* has_rows) {
  out->Reset(schema().num_fields());
  Row row;
  bool has = false;
  size_t emitted = 0;
  while (emitted < RowBatch::kDefaultBatchRows) {
    ECODB_RETURN_NOT_OK(Next(&row, &has));
    if (!has) break;
    out->AppendRowMove(std::move(row));
    row = Row();
    ++emitted;
  }
  *has_rows = emitted > 0;
  return Status::OK();
}

Status Operator::NextBatchCapped(RowBatch* out, bool* has_rows,
                                 size_t max_rows) {
  // Operators with materialized emission MUST override the capped form:
  // their parents (LimitOp) rely on the bound being honored, and this
  // adapter ignores it. Catch a forgotten override the first time any
  // capped pull reaches it, not only when a limit truncates rows.
  assert(!MaterializedEmission() &&
         "MaterializedEmission operators must override NextBatchCapped");
  (void)max_rows;  // streaming callers truncate themselves
  return NextBatch(out, has_rows);
}

// --- SeqScanOp ---

SeqScanOp::SeqScanOp(ExecContext* ctx, const std::string& table_name)
    : ctx_(ctx), table_name_(table_name) {}

SeqScanOp::SeqScanOp(ExecContext* ctx, const std::string& table_name,
                     uint64_t begin_row, uint64_t end_row)
    : ctx_(ctx),
      table_name_(table_name),
      begin_row_(begin_row),
      end_row_(end_row) {}

Status SeqScanOp::Open() {
  const TableEntry* entry = ctx_->catalog()->FindEntry(table_name_);
  if (entry == nullptr) {
    return Status::NotFound(StrFormat("table %s", table_name_.c_str()));
  }
  table_ = entry->table.get();
  file_ = &entry->file;
  schema_ = table_->schema();
  // Both Next and NextBatch charge this same width, so dictionary
  // compression (4-byte codes instead of string payloads) lowers the
  // scan's simulated byte traffic identically in the two exec modes.
  row_width_ = table_->EncodedRowWidth();
  next_row_ = static_cast<size_t>(
      std::min<uint64_t>(begin_row_, table_->num_rows()));
  pages_fetched_ = 0;
  return Status::OK();
}

Status SeqScanOp::Next(Row* out, bool* has_row) {
  ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());
  if (next_row_ >= std::min<uint64_t>(table_->num_rows(), end_row_)) {
    *has_row = false;
    return Status::OK();
  }
  // Page boundary crossing: charge simulated I/O for the page.
  uint64_t rpp = file_->rows_per_page();
  if (next_row_ % rpp == 0) {
    ECODB_RETURN_NOT_OK(ctx_->FetchScanPages(
        file_->file_id(), next_row_ / rpp, 1, pages_fetched_));
    ++pages_fetched_;
  }
  table_->GetRow(next_row_, out);
  ++next_row_;
  ctx_->ChargeScanTuple(row_width_);
  *has_row = true;
  return Status::OK();
}

Status SeqScanOp::NextBatch(RowBatch* out, bool* has_rows) {
  ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());
  const int num_cols = schema_.num_fields();
  out->Reset(num_cols);
  const uint64_t total = std::min<uint64_t>(table_->num_rows(), end_row_);
  if (next_row_ >= total) {
    *has_rows = false;
    return Status::OK();
  }
  const size_t take = static_cast<size_t>(
      std::min<uint64_t>(RowBatch::kDefaultBatchRows, total - next_row_));
  const size_t batch_start = next_row_;
  const uint64_t rpp = file_->rows_per_page();
  // Account page-run by page-run: one FetchScanPages call per page entered
  // (same I/O sequence and flush points as the row path), one bulk tuple
  // charge per run instead of one per row. The data itself is NOT boxed
  // here: the batch lazily references the table and downstream operators
  // materialize only the columns (and, post-filter, positions) they touch.
  size_t remaining = take;
  while (remaining > 0) {
    if (next_row_ % rpp == 0) {
      ECODB_RETURN_NOT_OK(ctx_->FetchScanPages(
          file_->file_id(), next_row_ / rpp, 1, pages_fetched_));
      ++pages_fetched_;
    }
    const size_t run = static_cast<size_t>(
        std::min<uint64_t>(remaining, file_->RowsLeftInPage(next_row_)));
    ctx_->ChargeScanTuples(run, static_cast<uint64_t>(run) *
                                    static_cast<uint64_t>(row_width_));
    next_row_ += run;
    remaining -= run;
  }
  out->set_num_rows(take);
  out->ExtendIdentitySel(0);
  out->BindLazySource(table_, batch_start);
  *has_rows = true;
  return Status::OK();
}

void SeqScanOp::Close() { ctx_->Flush(); }

// --- FilterOp ---

FilterOp::FilterOp(ExecContext* ctx, OperatorPtr child, ExprPtr predicate)
    : ctx_(ctx), child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOp::Open() {
  rows_in_ = rows_out_ = 0;
  return child_->Open();
}

Status FilterOp::Next(Row* out, bool* has_row) {
  for (;;) {
    bool child_has = false;
    ECODB_RETURN_NOT_OK(child_->Next(out, &child_has));
    if (!child_has) {
      *has_row = false;
      return Status::OK();
    }
    ++rows_in_;
    bool pass = predicate_->Eval(*out, ctx_->eval_counters()).IsTruthy();
    ctx_->ChargeEvalOps();
    if (pass) {
      ++rows_out_;
      *has_row = true;
      return Status::OK();
    }
  }
}

Status FilterOp::NextBatch(RowBatch* out, bool* has_rows) {
  for (;;) {
    bool child_has = false;
    ECODB_RETURN_NOT_OK(child_->NextBatch(out, &child_has));
    if (!child_has) {
      *has_rows = false;
      return Status::OK();
    }
    rows_in_ += out->active();
    predicate_->FilterBatch(*out, &out->sel(), ctx_->eval_counters(),
                            &scratch_);
    ctx_->ChargeEvalOps();
    rows_out_ += out->active();
    if (!out->empty()) {
      *has_rows = true;
      return Status::OK();
    }
  }
}

void FilterOp::Close() {
  child_->Close();
  ctx_->Flush();
}

// --- ProjectOp ---

ProjectOp::ProjectOp(ExecContext* ctx, OperatorPtr child,
                     std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : ctx_(ctx), child_(std::move(child)), exprs_(std::move(exprs)) {
  std::vector<Field> fields;
  fields.reserve(exprs_.size());
  for (size_t i = 0; i < exprs_.size(); ++i) {
    fields.emplace_back(names[i], exprs_[i]->type());
  }
  schema_ = Schema(std::move(fields));
}

Status ProjectOp::Open() { return child_->Open(); }

Status ProjectOp::Next(Row* out, bool* has_row) {
  Row input;
  bool child_has = false;
  ECODB_RETURN_NOT_OK(child_->Next(&input, &child_has));
  if (!child_has) {
    *has_row = false;
    return Status::OK();
  }
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    out->push_back(e->Eval(input, ctx_->eval_counters()));
  }
  ctx_->ChargeEvalOps();
  *has_row = true;
  return Status::OK();
}

void ProjectOp::EvalExprInto(size_t i, RowBatch* out) {
  const Expr& e = *exprs_[i];
  const std::vector<uint32_t>& sel = input_batch_.sel();
  const size_t n = input_batch_.num_rows();
  const int oc = static_cast<int>(i);

  // Column passthrough of an unboxed input column: gather into a typed
  // lane instead of boxing. Charges nothing, like ColumnExpr::EvalBatch.
  if (e.kind() == ExprKind::kColumn) {
    const int idx = static_cast<const ColumnExpr&>(e).index();
    if (input_batch_.lane_active(idx)) {
      const RowBatch::TypedLane& src = input_batch_.lane(idx);
      if (src.kind == RowBatch::LaneKind::kStringCode) {
        // Dictionary-code lane: copy the codes, keep the dict binding.
        // The codes reference table-owned dictionary storage, so no
        // arena retention is needed.
        RowBatch::TypedLane* dst = out->StartCodeLane(oc, src.dict);
        dst->has_nulls = src.has_nulls;
        if (src.has_nulls) dst->nulls.assign(n, 0);
        dst->codes.resize(n, 0);
        for (uint32_t r : sel) dst->codes[r] = src.codes[r];
        if (src.has_nulls) {
          for (uint32_t r : sel) dst->nulls[r] = src.nulls[r];
        }
        return;
      }
      RowBatch::TypedLane* dst = out->StartLane(oc, src.type);
      dst->has_nulls = src.has_nulls;
      if (src.has_nulls) dst->nulls.assign(n, 0);
      switch (src.kind) {
        case RowBatch::LaneKind::kInt64:
          dst->i64.resize(n);
          for (uint32_t r : sel) dst->i64[r] = src.i64[r];
          break;
        case RowBatch::LaneKind::kDouble:
          dst->f64.resize(n);
          for (uint32_t r : sel) dst->f64[r] = src.f64[r];
          break;
        case RowBatch::LaneKind::kStringRef:
          // The copied pointers reference whatever storage backs the
          // input lane; keep its arenas alive for `out`'s consumers.
          out->RetainStringStorage(input_batch_);
          dst->str.resize(n, nullptr);
          for (uint32_t r : sel) dst->str[r] = src.str[r];
          break;
        case RowBatch::LaneKind::kStringCode:
        case RowBatch::LaneKind::kNone:
          break;  // code lanes handled above
      }
      if (src.has_nulls) {
        for (uint32_t r : sel) dst->nulls[r] = src.nulls[r];
      }
      return;
    }
    const Table* table = input_batch_.lazy_source();
    if (table != nullptr && !input_batch_.col_materialized(idx)) {
      const Column& src = table->column(idx);
      const size_t base = input_batch_.lazy_start();
      if (src.type() == ValueType::kString && src.dict_encoded()) {
        // Dict-encoded scan column: project as a code lane — downstream
        // hashing/comparison stays on int32 codes, and consumers that
        // need bytes decode through the lane's dict binding.
        RowBatch::TypedLane* dst = out->StartCodeLane(oc, &src);
        dst->codes.resize(n, 0);
        for (uint32_t r : sel) dst->codes[r] = src.DictCode(base + r);
        return;
      }
      RowBatch::TypedLane* dst = out->StartLane(oc, src.type());
      switch (RowBatch::LaneKindFor(src.type())) {
        case RowBatch::LaneKind::kInt64:
          dst->i64.resize(n);
          for (uint32_t r : sel) dst->i64[r] = src.GetInt(base + r);
          break;
        case RowBatch::LaneKind::kDouble:
          dst->f64.resize(n);
          for (uint32_t r : sel) dst->f64[r] = src.GetDouble(base + r);
          break;
        case RowBatch::LaneKind::kStringRef:
          dst->str.resize(n, nullptr);
          for (uint32_t r : sel) dst->str[r] = &src.GetString(base + r);
          break;
        case RowBatch::LaneKind::kStringCode:
        case RowBatch::LaneKind::kNone:
          break;  // dict columns took the code-lane branch above
      }
      return;
    }
  }

  // Double arithmetic over unboxed numeric inputs: compute straight into
  // a double lane; identical charges to the boxed evaluator.
  if (e.kind() == ExprKind::kArith && e.type() == ValueType::kDouble &&
      CanEvalDoubleSubtree(e, input_batch_)) {
    RowBatch::TypedLane* dst = out->StartLane(oc, ValueType::kDouble);
    double scalar = 0;
    bool is_scalar = false;
    EvalDoubleSubtree(e, input_batch_, sel, &dst->f64, &scalar, &is_scalar,
                      ctx_->eval_counters(), &scratch_);
    if (is_scalar) {
      dst->f64.resize(n);
      for (uint32_t r : sel) dst->f64[r] = scalar;
    }
    return;
  }

  e.EvalBatch(input_batch_, sel, &out->col(oc), ctx_->eval_counters(),
              &scratch_);
}

Status ProjectOp::NextBatch(RowBatch* out, bool* has_rows) {
  bool child_has = false;
  ECODB_RETURN_NOT_OK(child_->NextBatch(&input_batch_, &child_has));
  if (!child_has) {
    *has_rows = false;
    return Status::OK();
  }
  out->Reset(static_cast<int>(exprs_.size()));
  for (size_t i = 0; i < exprs_.size(); ++i) {
    EvalExprInto(i, out);
  }
  ctx_->ChargeEvalOps();
  out->set_num_rows(input_batch_.num_rows());
  out->sel() = input_batch_.sel();
  *has_rows = true;
  return Status::OK();
}

void ProjectOp::Close() {
  child_->Close();
  ctx_->Flush();
}

// --- HashJoinOp ---

HashJoinOp::HashJoinOp(ExecContext* ctx, OperatorPtr build, OperatorPtr probe,
                       std::vector<int> build_keys,
                       std::vector<int> probe_keys)
    : ctx_(ctx),
      build_child_(std::move(build)),
      probe_child_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)) {
  assert(build_keys_.size() == probe_keys_.size());
}

HashJoinOp::HashJoinOp(ExecContext* ctx, JoinBuildStatePtr build,
                       OperatorPtr probe, std::vector<int> build_keys,
                       std::vector<int> probe_keys)
    : ctx_(ctx),
      probe_child_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      build_(std::move(build)),
      prebuilt_(true) {
  assert(build_keys_.size() == probe_keys_.size());
}

HashJoinOp::HashJoinOp(ExecContext* ctx, BuildThunk build_thunk,
                       OperatorPtr probe, std::vector<int> build_keys,
                       std::vector<int> probe_keys)
    : ctx_(ctx),
      probe_child_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      build_thunk_(std::move(build_thunk)) {
  assert(build_keys_.size() == probe_keys_.size());
}

bool HashJoinOp::KeysEqualRow(uint32_t idx, const Row& probe_row) {
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    ++ctx_->eval_counters()->comparisons;
    if (CompareCellViews(
            build_->cols[static_cast<size_t>(build_keys_[i])].View(idx),
            CellView::Of(probe_row[static_cast<size_t>(probe_keys_[i])])) !=
        0) {
      return false;
    }
  }
  return true;
}

bool HashJoinOp::KeysEqualBatch(uint32_t idx, const RowBatch& probe_batch,
                                uint32_t probe_row) {
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    ++ctx_->eval_counters()->comparisons;
    if (CompareCellViews(
            build_->cols[static_cast<size_t>(build_keys_[i])].View(idx),
            probe_batch.ViewCell(probe_keys_[i], probe_row)) != 0) {
      return false;
    }
  }
  return true;
}

namespace {

/// Drains an (already open) build child into `state`. Shared by the
/// normal Open path and HashJoinOp::ExecuteBuild; the charge sequence is
/// identical in both.
Status ConsumeJoinBuild(ExecContext* ctx, Operator* build_child,
                        const std::vector<int>& build_keys,
                        JoinBuildState* state) {
  const int build_width = build_child->schema().RowWidth();
  const int n_cols = build_child->schema().num_fields();
  state->schema = build_child->schema();
  state->index.set_memory_tracker(ctx->memory_tracker());
  state->index.Reset();
  state->cols.resize(static_cast<size_t>(n_cols));
  for (int c = 0; c < n_cols; ++c) {
    state->cols[static_cast<size_t>(c)].Reset(
        build_child->schema().field(c).type);
    state->cols[static_cast<size_t>(c)].set_memory_tracker(
        ctx->memory_tracker());
  }
  state->num_rows = 0;
  state->bytes = 0;
  if (ctx->exec_mode() == ExecMode::kBatch) {
    RowBatch batch;
    bool has = false;
    std::vector<size_t> hash_scratch;
    for (;;) {
      ECODB_RETURN_NOT_OK(ctx->CheckGovernor());
      ECODB_RETURN_NOT_OK(build_child->NextBatch(&batch, &has));
      if (!has) break;
      ctx->ChargeHashBuilds(batch.active(), build_width);
      state->bytes += static_cast<uint64_t>(batch.active()) *
                      static_cast<uint64_t>(build_width);
      // Hash all selected keys up front (typed arrays for lazily-bound
      // scan batches and lane columns), then append cells to the typed
      // contiguous pool via views — no boxing on the way in; both equal
      // HashRowKey / AppendRow over each row in order. String cells
      // whose bytes outlive this pull (table storage, arena-backed
      // lanes) enter the pool by pointer — the pool retains the arenas —
      // instead of being re-interned; only transient boxed values and
      // pool-backed lanes are copied.
      HashKeyColumnsBatch(batch, build_keys, &hash_scratch);
      for (size_t i = 0; i < hash_scratch.size(); ++i) {
        state->index.Insert(hash_scratch[i],
                            state->num_rows + static_cast<uint32_t>(i));
      }
      const bool stable_strings = !batch.strings_pool_backed();
      for (int c = 0; c < n_cols; ++c) {
        TypedColumn& dst = state->cols[static_cast<size_t>(c)];
        if (stable_strings && !batch.col_materialized(c) &&
            RowBatch::LaneKindFor(dst.type()) ==
                RowBatch::LaneKind::kStringRef) {
          dst.RetainStorageOf(batch);
          for (uint32_t r : batch.sel()) {
            dst.AppendStable(batch.ViewCell(c, r));
          }
        } else {
          for (uint32_t r : batch.sel()) dst.Append(batch.ViewCell(c, r));
        }
      }
      state->num_rows += static_cast<uint32_t>(batch.active());
    }
    return Status::OK();
  }
  Row row;
  bool has = false;
  for (;;) {
    ECODB_RETURN_NOT_OK(ctx->CheckGovernor());
    ECODB_RETURN_NOT_OK(build_child->Next(&row, &has));
    if (!has) break;
    size_t h = HashRowKey(row, build_keys);
    ctx->ChargeHashBuild(build_width);
    state->bytes += static_cast<uint64_t>(build_width);
    state->index.Insert(h, state->num_rows);
    for (int c = 0; c < n_cols; ++c) {
      state->cols[static_cast<size_t>(c)].Append(
          CellView::Of(row[static_cast<size_t>(c)]));
    }
    ++state->num_rows;
  }
  return Status::OK();
}

}  // namespace

Result<JoinBuildStatePtr> HashJoinOp::ExecuteBuild(
    ExecContext* ctx, Operator* build_child,
    const std::vector<int>& build_keys) {
  auto state = std::make_shared<JoinBuildState>();
  ECODB_RETURN_NOT_OK(build_child->Open());
  Status consume = ConsumeJoinBuild(ctx, build_child, build_keys, state.get());
  build_child->Close();
  ECODB_RETURN_NOT_OK(consume);
  // Grace-hash spill of the build side (commercial profile).
  ECODB_RETURN_NOT_OK(ctx->ChargeSpill(state->bytes));
  return state;
}

Status HashJoinOp::Open() {
  if (build_thunk_ != nullptr) {
    // Deferred (parallel partitioned) build. The thunk drains the build
    // plan to completion — including the trailing grace-hash spill
    // charge — at exactly the position the sequential build block below
    // runs, so the charge stream is position-identical. The state is
    // owned: Close tears it down like a normal build.
    ECODB_ASSIGN_OR_RETURN(build_, build_thunk_(ctx_));
  } else if (!prebuilt_) {
    build_ = std::make_shared<JoinBuildState>();
    ECODB_RETURN_NOT_OK(build_child_->Open());
    Status consume =
        ConsumeJoinBuild(ctx_, build_child_.get(), build_keys_, build_.get());
    // The build child is open mid-stream on failure; release its
    // resources before propagating (our own Close only closes the probe
    // side).
    build_child_->Close();
    ECODB_RETURN_NOT_OK(consume);
    // Grace-hash spill of the build side (commercial profile).
    ECODB_RETURN_NOT_OK(ctx_->ChargeSpill(build_->bytes));
  }
  probe_rows_ = 0;
  ECODB_RETURN_NOT_OK(probe_child_->Open());
  // Children only know their schemas once opened (scans bind to the
  // catalog in Open), so the concatenated schema is computed here — the
  // seed's constructor-time Concat saw two empty schemas, silently
  // zeroing the join's output-tuple width.
  schema_ = Schema::Concat(build_->schema, probe_child_->schema());
  probe_valid_ = false;
  probe_batch_valid_ = false;
  probe_sel_pos_ = 0;
  probe_eos_ = false;
  match_ = FlatHashIndex::kInvalid;
  return Status::OK();
}

Status HashJoinOp::Next(Row* out, bool* has_row) {
  int probe_width = probe_child_->schema().RowWidth();
  const size_t n_build_cols = build_->cols.size();
  for (;;) {
    if (probe_valid_) {
      while (match_ != FlatHashIndex::kInvalid) {
        const uint32_t idx = match_;
        ++ctx_->eval_counters()->comparisons;  // bucket-chain traversal
        match_ = build_->index.Next(idx);
        if (KeysEqualRow(idx, probe_row_)) {
          out->clear();
          out->reserve(n_build_cols + probe_row_.size());
          for (size_t c = 0; c < n_build_cols; ++c) {
            out->push_back(build_->cols[c].GetValue(idx));
          }
          // The probe row's values can be moved out on its last chain
          // entry: nothing reads probe_row_ again before the next child
          // pull overwrites it.
          if (match_ == FlatHashIndex::kInvalid) {
            out->insert(out->end(),
                        std::make_move_iterator(probe_row_.begin()),
                        std::make_move_iterator(probe_row_.end()));
          } else {
            out->insert(out->end(), probe_row_.begin(), probe_row_.end());
          }
          ctx_->ChargeEvalOps();
          *has_row = true;
          return Status::OK();
        }
      }
      probe_valid_ = false;
      ctx_->ChargeEvalOps();
    }
    bool has = false;
    ECODB_RETURN_NOT_OK(probe_child_->Next(&probe_row_, &has));
    if (!has) {
      *has_row = false;
      return Status::OK();
    }
    ++probe_rows_;
    ctx_->ChargeHashProbe(probe_width);
    match_ = build_->index.Find(HashRowKey(probe_row_, probe_keys_));
    probe_valid_ = true;
  }
}

void HashJoinOp::FlushMatches(RowBatch* out) {
  if (match_build_.empty()) return;
  const int n_build_cols = static_cast<int>(build_->cols.size());
  const int probe_cols = probe_child_->schema().num_fields();

  // Build side: gather raw values from the typed pool into output lanes.
  // String lanes point into the pool's refcounted arena, which `out`
  // retains — the pointers survive even the pool's own teardown.
  for (int c = 0; c < n_build_cols; ++c) {
    build_->cols[static_cast<size_t>(c)].GatherInto(
        out, c, match_build_.data(), match_build_.size());
  }

  // Probe side: gather per matched probe row. Unboxed sources stay
  // unboxed — lazy table columns gather typed (strings by pointer into
  // table storage); lane values are copied into the output lane, with
  // string-ref lanes carried by pointer: `out` retains the probe batch's
  // arenas, and every lane string points into table storage, a retained
  // arena, or an operator pool frozen until its Close, so the pointers
  // stay valid after this probe batch is replaced mid-call.
  out->RetainStringStorage(probe_batch_);
  for (int c = 0; c < probe_cols; ++c) {
    const int oc = n_build_cols + c;
    const Table* table = probe_batch_.lazy_source();
    if (table != nullptr && !probe_batch_.col_materialized(c)) {
      const Column& src = table->column(c);
      const size_t base = probe_batch_.lazy_start();
      if (src.type() == ValueType::kString && src.dict_encoded()) {
        // Dict-encoded probe column: emit codes when the output column
        // is (or becomes) a code lane over the same dictionary. When a
        // prior flush already made it a string-ref lane, fall through to
        // the pointer gather below (decoded dict entries are
        // table-stable).
        RowBatch::TypedLane* cl = out->StartCodeLaneAppend(oc, &src);
        if (cl != nullptr) {
          for (uint32_t pr : match_probe_) {
            cl->codes.push_back(src.DictCode(base + pr));
          }
          if (cl->has_nulls) cl->nulls.resize(cl->LaneSize(), 0);
          continue;
        }
      }
      RowBatch::TypedLane* lane = out->StartLaneAppend(oc, src.type());
      if (lane != nullptr) {
        switch (RowBatch::LaneKindFor(src.type())) {
          case RowBatch::LaneKind::kInt64:
            for (uint32_t pr : match_probe_) {
              lane->i64.push_back(src.GetInt(base + pr));
            }
            break;
          case RowBatch::LaneKind::kDouble:
            for (uint32_t pr : match_probe_) {
              lane->f64.push_back(src.GetDouble(base + pr));
            }
            break;
          case RowBatch::LaneKind::kStringRef:
            for (uint32_t pr : match_probe_) {
              lane->str.push_back(&src.GetString(base + pr));
            }
            break;
          case RowBatch::LaneKind::kStringCode:
          case RowBatch::LaneKind::kNone:
            break;  // LaneKindFor never yields these
        }
        if (lane->has_nulls) lane->nulls.resize(lane->LaneSize(), 0);
        continue;
      }
    }
    if (probe_batch_.lane_active(c)) {
      const RowBatch::TypedLane& src = probe_batch_.lane(c);
      if (src.kind == RowBatch::LaneKind::kStringCode && !src.has_nulls) {
        // Code-lane probe column: append codes when the output column is
        // a code lane over the same dictionary; otherwise decode below.
        RowBatch::TypedLane* cl = out->StartCodeLaneAppend(oc, src.dict);
        if (cl != nullptr) {
          for (uint32_t pr : match_probe_) {
            cl->codes.push_back(src.codes[pr]);
          }
          if (cl->has_nulls) cl->nulls.resize(cl->LaneSize(), 0);
          continue;
        }
      }
      RowBatch::TypedLane* lane = out->StartLaneAppend(oc, src.type);
      if (lane != nullptr) {
        switch (src.kind) {
          case RowBatch::LaneKind::kInt64:
            for (uint32_t pr : match_probe_) {
              lane->i64.push_back(src.IsNullAt(pr) ? 0 : src.i64[pr]);
            }
            break;
          case RowBatch::LaneKind::kDouble:
            for (uint32_t pr : match_probe_) {
              lane->f64.push_back(src.IsNullAt(pr) ? 0.0 : src.f64[pr]);
            }
            break;
          case RowBatch::LaneKind::kStringRef:
            for (uint32_t pr : match_probe_) {
              lane->str.push_back(src.IsNullAt(pr) ? nullptr : src.str[pr]);
            }
            break;
          case RowBatch::LaneKind::kStringCode:
            // StartLaneAppend handed out a string-ref lane; decode the
            // codes to table-stable dictionary entries.
            for (uint32_t pr : match_probe_) {
              lane->str.push_back(src.IsNullAt(pr)
                                      ? nullptr
                                      : &src.dict->DictString(src.codes[pr]));
            }
            break;
          case RowBatch::LaneKind::kNone:
            break;
        }
        if (src.has_nulls && !lane->has_nulls) {
          lane->has_nulls = true;
          lane->nulls.assign(lane->LaneSize() - match_probe_.size(), 0);
        }
        if (lane->has_nulls) {
          if (src.has_nulls) {
            for (uint32_t pr : match_probe_) {
              lane->nulls.push_back(src.nulls[pr]);
            }
          } else {
            lane->nulls.resize(lane->LaneSize(), 0);
          }
        }
        continue;
      }
    }
    // Boxed fallback: box only the matched probe positions. If earlier
    // flushes produced a lane for this column, box it over first.
    if (out->lane_active(oc)) out->DemoteLaneDense(oc);
    std::vector<Value>& dst = out->col(oc);
    for (uint32_t pr : match_probe_) {
      dst.push_back(probe_batch_.CellValue(c, pr));
    }
  }

  match_build_.clear();
  match_probe_.clear();
}

Status HashJoinOp::NextBatch(RowBatch* out, bool* has_rows) {
  const int num_cols = schema_.num_fields();
  const int probe_width = probe_child_->schema().RowWidth();
  out->Reset(num_cols);
  match_build_.clear();
  match_probe_.clear();
  size_t emitted = 0;
  while (emitted < RowBatch::kDefaultBatchRows) {
    if (probe_valid_) {
      const uint32_t pr = probe_batch_.sel()[probe_sel_pos_];
      while (match_ != FlatHashIndex::kInvalid &&
             emitted < RowBatch::kDefaultBatchRows) {
        const uint32_t idx = match_;
        ++ctx_->eval_counters()->comparisons;  // bucket-chain traversal
        match_ = build_->index.Next(idx);
        if (KeysEqualBatch(idx, probe_batch_, pr)) {
          // Record the match; the columnar copy happens in FlushMatches.
          match_build_.push_back(idx);
          match_probe_.push_back(pr);
          ++emitted;
        }
      }
      if (match_ != FlatHashIndex::kInvalid) break;  // out full; resume
      probe_valid_ = false;
      ++probe_sel_pos_;
    }
    if (!probe_batch_valid_ || probe_sel_pos_ >= probe_batch_.active()) {
      if (probe_eos_) break;
      // The pending matches reference the current probe batch; gather
      // them into `out` before the batch is overwritten.
      FlushMatches(out);
      bool has = false;
      ECODB_RETURN_NOT_OK(probe_child_->NextBatch(&probe_batch_, &has));
      if (!has) {
        probe_eos_ = true;
        break;
      }
      probe_batch_valid_ = true;
      probe_sel_pos_ = 0;
      probe_rows_ += probe_batch_.active();
      ctx_->ChargeHashProbes(probe_batch_.active(), probe_width);
      // Batch-at-a-time probe: hash every selected key up front, reading
      // typed column arrays directly for lazily-bound scan batches.
      HashKeyColumnsBatch(probe_batch_, probe_keys_, &probe_hashes_);
    }
    match_ = build_->index.Find(probe_hashes_[probe_sel_pos_]);
    probe_valid_ = true;
  }
  FlushMatches(out);
  ctx_->ChargeEvalOps();
  out->set_num_rows(emitted);
  out->ExtendIdentitySel(0);
  *has_rows = emitted > 0;
  return Status::OK();
}

void HashJoinOp::Close() {
  probe_child_->Close();
  // Probe-side partitions of the grace hash.
  uint64_t probe_bytes =
      probe_rows_ * static_cast<uint64_t>(probe_child_->schema().RowWidth());
  ctx_->ChargeSpill(probe_bytes).ok();  // best-effort at teardown
  if (build_ != nullptr) {
    // Shared (prebuilt) state belongs to the coordinator; a worker Close
    // only drops its reference.
    if (!prebuilt_) build_->Clear();
    build_.reset();
  }
  ctx_->Flush();
}

// --- NestedLoopJoinOp ---

NestedLoopJoinOp::NestedLoopJoinOp(ExecContext* ctx, OperatorPtr outer,
                                   OperatorPtr inner, ExprPtr predicate)
    : ctx_(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      predicate_(std::move(predicate)) {}

Status NestedLoopJoinOp::ConsumeInnerSide() {
  if (ctx_->exec_mode() == ExecMode::kBatch) {
    RowBatch batch;
    bool has = false;
    for (;;) {
      ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());
      ECODB_RETURN_NOT_OK(inner_->NextBatch(&batch, &has));
      if (!has) break;
      const size_t need = inner_rows_.size() + batch.active();
      if (inner_rows_.capacity() < need) {
        inner_rows_.reserve(std::max(need, inner_rows_.capacity() * 2));
      }
      for (uint32_t r : batch.sel()) {
        Row row;
        batch.MaterializeRow(r, &row);
        const uint64_t b = LogicalRowBytes(row);
        ctx_->memory_tracker()->Charge(b);
        inner_pool_bytes_ += b;
        inner_rows_.push_back(std::move(row));
      }
    }
  } else {
    Row row;
    bool has = false;
    for (;;) {
      ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());
      ECODB_RETURN_NOT_OK(inner_->Next(&row, &has));
      if (!has) break;
      const uint64_t b = LogicalRowBytes(row);
      ctx_->memory_tracker()->Charge(b);
      inner_pool_bytes_ += b;
      inner_rows_.push_back(std::move(row));
      row = Row();
    }
  }
  return Status::OK();
}

Status NestedLoopJoinOp::Open() {
  ECODB_RETURN_NOT_OK(inner_->Open());
  inner_rows_.clear();
  ctx_->memory_tracker()->Release(inner_pool_bytes_);
  inner_pool_bytes_ = 0;
  Status consume = ConsumeInnerSide();
  if (!consume.ok()) {
    inner_->Close();
    return consume;
  }
  inner_->Close();
  ECODB_RETURN_NOT_OK(outer_->Open());
  schema_ = Schema::Concat(outer_->schema(), inner_->schema());
  inner_strings_pool_ = false;
  for (int c = 0; c < inner_->schema().num_fields(); ++c) {
    if (inner_->schema().field(c).type == ValueType::kString) {
      inner_strings_pool_ = true;
    }
  }
  outer_valid_ = false;
  inner_pos_ = 0;
  outer_batch_valid_ = false;
  outer_sel_pos_ = 0;
  outer_eos_ = false;
  return Status::OK();
}

Status NestedLoopJoinOp::Next(Row* out, bool* has_row) {
  for (;;) {
    if (!outer_valid_) {
      bool has = false;
      ECODB_RETURN_NOT_OK(outer_->Next(&outer_row_, &has));
      if (!has) {
        *has_row = false;
        return Status::OK();
      }
      outer_valid_ = true;
      inner_pos_ = 0;
    }
    while (inner_pos_ < inner_rows_.size()) {
      const Row& inner_row = inner_rows_[inner_pos_++];
      out->clear();
      out->reserve(outer_row_.size() + inner_row.size());
      out->insert(out->end(), outer_row_.begin(), outer_row_.end());
      out->insert(out->end(), inner_row.begin(), inner_row.end());
      bool pass = true;
      if (predicate_) {
        pass = predicate_->Eval(*out, ctx_->eval_counters()).IsTruthy();
        ctx_->ChargeEvalOps();
      }
      if (pass) {
        *has_row = true;
        return Status::OK();
      }
    }
    outer_valid_ = false;
  }
}

Status NestedLoopJoinOp::NextBatch(RowBatch* out, bool* has_rows) {
  const Schema& outer_schema = outer_->schema();
  const Schema& inner_schema = inner_->schema();
  const int outer_cols = outer_schema.num_fields();
  const int inner_cols = inner_schema.num_fields();
  for (;;) {
    out->Reset(schema_.num_fields());
    // Candidate rows are emitted as typed lanes, not boxed copies. Outer
    // cells gather straight out of the outer batch (strings by pointer
    // when the source is unboxed — the arenas behind it are retained —
    // and interned into `out`'s arena when they live in transient boxed
    // Values, since the outer batch may be replaced mid-call). Inner
    // cells point into inner_rows_, the operator-owned pool frozen until
    // Close — so string-bearing output is marked pool-backed.
    if (inner_strings_pool_) out->MarkStringsPoolBacked();
    if (outer_batch_valid_) out->RetainStringStorage(outer_batch_);
    size_t emitted = 0;
    // Build a batch of concatenated candidate rows.
    while (emitted < RowBatch::kDefaultBatchRows) {
      if (!outer_batch_valid_ || outer_sel_pos_ >= outer_batch_.active()) {
        if (outer_eos_) break;
        bool has = false;
        ECODB_RETURN_NOT_OK(outer_->NextBatch(&outer_batch_, &has));
        if (!has) {
          outer_eos_ = true;
          break;
        }
        outer_batch_valid_ = true;
        outer_sel_pos_ = 0;
        inner_pos_ = 0;
        out->RetainStringStorage(outer_batch_);
      }
      const uint32_t orow = outer_batch_.sel()[outer_sel_pos_];
      while (inner_pos_ < inner_rows_.size() &&
             emitted < RowBatch::kDefaultBatchRows) {
        const Row& inner_row = inner_rows_[inner_pos_++];
        for (int c = 0; c < outer_cols; ++c) {
          out->AppendCellDense(c, outer_schema.field(c).type,
                               outer_batch_.ViewCell(c, orow),
                               /*stable_str=*/
                               !outer_batch_.col_materialized(c));
        }
        for (int c = 0; c < inner_cols; ++c) {
          out->AppendCellDense(outer_cols + c, inner_schema.field(c).type,
                               CellView::Of(inner_row[static_cast<size_t>(c)]),
                               /*stable_str=*/true);
        }
        ++emitted;
      }
      if (inner_pos_ >= inner_rows_.size()) {
        ++outer_sel_pos_;
        inner_pos_ = 0;
      } else {
        break;  // out full mid-inner-loop; resume next call
      }
    }
    if (emitted == 0) {
      *has_rows = false;
      return Status::OK();
    }
    out->set_num_rows(emitted);
    out->ExtendIdentitySel(0);
    if (predicate_ != nullptr) {
      predicate_->FilterBatch(*out, &out->sel(), ctx_->eval_counters(),
                              &scratch_);
      ctx_->ChargeEvalOps();
    }
    if (!out->empty()) {
      *has_rows = true;
      return Status::OK();
    }
    // Every candidate failed the predicate; build the next batch.
  }
}

void NestedLoopJoinOp::Close() {
  outer_->Close();
  inner_rows_.clear();
  ctx_->memory_tracker()->Release(inner_pool_bytes_);
  inner_pool_bytes_ = 0;
  ctx_->Flush();
}

// --- HashAggOp ---

HashAggOp::HashAggOp(ExecContext* ctx, OperatorPtr child,
                     std::vector<ExprPtr> group_by, std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  std::vector<Field> fields;
  for (size_t i = 0; i < group_by_.size(); ++i) {
    fields.emplace_back(StrFormat("group_%zu", i), group_by_[i]->type());
  }
  for (const AggSpec& a : aggs_) {
    fields.emplace_back(a.name, a.ResultType());
  }
  schema_ = Schema(std::move(fields));
}

void HashAggOp::UpdateGroup(Group* g, const Row& row) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    Accumulator& acc = g->accs[i];
    if (spec.kind == AggSpec::Kind::kCount && !spec.arg) {
      ++acc.count;
      continue;
    }
    Value v = spec.arg->Eval(row, ctx_->eval_counters());
    if (v.is_null()) continue;
    switch (spec.kind) {
      case AggSpec::Kind::kCount:
        ++acc.count;
        break;
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg:
        acc.sum += v.AsDouble();
        ++acc.count;
        break;
      case AggSpec::Kind::kMin:
        if (acc.count == 0 || v.Compare(acc.min) < 0) acc.min = v;
        ++acc.count;
        break;
      case AggSpec::Kind::kMax:
        if (acc.count == 0 || v.Compare(acc.max) > 0) acc.max = v;
        ++acc.count;
        break;
    }
  }
  ctx_->ChargeAggUpdate(static_cast<int>(aggs_.size()));
}

void HashAggOp::UpdateGroupFromBatch(Group* g,
                                     const std::vector<BatchAggArg>& args,
                                     uint32_t r) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    Accumulator& acc = g->accs[i];
    const BatchAggArg& arg = args[i];
    if (arg.mode == BatchAggArg::Mode::kCountStar) {
      ++acc.count;
      continue;
    }
    if (arg.mode == BatchAggArg::Mode::kTypedDouble) {
      // Null-free raw doubles (CanEvalDoubleSubtree guarantees it), so
      // the scalar path's null check is vacuously passed.
      switch (spec.kind) {
        case AggSpec::Kind::kSum:
        case AggSpec::Kind::kAvg:
          acc.sum += arg.is_scalar ? arg.scalar : arg.doubles[r];
          ++acc.count;
          break;
        case AggSpec::Kind::kCount:
          ++acc.count;
          break;
        case AggSpec::Kind::kMin:
        case AggSpec::Kind::kMax:
          break;  // min/max stay on the operand path
      }
      continue;
    }
    const CellView v = arg.operand.view_at(r);
    if (v.is_null()) continue;
    switch (spec.kind) {
      case AggSpec::Kind::kCount:
        ++acc.count;
        break;
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg:
        acc.sum += v.AsDouble();
        ++acc.count;
        break;
      case AggSpec::Kind::kMin:
        if (acc.count == 0 || CompareCellViews(v, CellView::Of(acc.min)) < 0) {
          acc.min = BoxCellView(v);
        }
        ++acc.count;
        break;
      case AggSpec::Kind::kMax:
        if (acc.count == 0 || CompareCellViews(v, CellView::Of(acc.max)) > 0) {
          acc.max = BoxCellView(v);
        }
        ++acc.count;
        break;
    }
  }
}

template <typename KeyAt, typename MakeKey>
HashAggOp::Group* HashAggOp::FindOrCreateGroup(size_t hash, size_t n_keys,
                                               KeyAt&& key_at,
                                               MakeKey&& make_key,
                                               uint64_t* new_groups) {
  for (uint32_t idx = group_index_.Find(hash);
       idx != FlatHashIndex::kInvalid; idx = group_index_.Next(idx)) {
    Group& g = groups_[idx];
    ++ctx_->eval_counters()->comparisons;
    bool equal = true;
    for (size_t i = 0; i < n_keys; ++i) {
      if (CompareCellViews(CellView::Of(g.key[i]), key_at(i)) != 0) {
        equal = false;
        break;
      }
    }
    if (equal) return &g;
  }
  group_index_.Insert(hash, static_cast<uint32_t>(groups_.size()));
  groups_.push_back(
      Group{make_key(), std::vector<Accumulator>(aggs_.size())});
  ++*new_groups;
  // Logical pool accounting: key bytes plus a fixed per-accumulator
  // footprint (sum/count/min/max slots), identical across exec modes.
  constexpr uint64_t kAccumulatorBytes = 48;
  const uint64_t bytes =
      LogicalRowBytes(groups_.back().key) + aggs_.size() * kAccumulatorBytes;
  ctx_->memory_tracker()->Charge(bytes);
  group_pool_bytes_ += bytes;
  return &groups_.back();
}

Status HashAggOp::ConsumeChildRowMode() {
  Row row;
  bool has = false;
  std::vector<int> all_key_cols;
  for (size_t i = 0; i < group_by_.size(); ++i) {
    all_key_cols.push_back(static_cast<int>(i));
  }
  const int key_bytes = static_cast<int>(group_by_.size()) * 8;
  for (;;) {
    ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());
    ECODB_RETURN_NOT_OK(child_->Next(&row, &has));
    if (!has) break;
    Row key;
    key.reserve(group_by_.size());
    for (const ExprPtr& e : group_by_) {
      key.push_back(e->Eval(row, ctx_->eval_counters()));
    }
    ctx_->ChargeEvalOps();
    size_t h = HashRowKey(key, all_key_cols);
    ctx_->ChargeHashProbe(key_bytes);
    uint64_t new_groups = 0;
    Group* target = FindOrCreateGroup(
        h, key.size(), [&](size_t i) { return CellView::Of(key[i]); },
        [&] { return std::move(key); }, &new_groups);
    if (new_groups > 0) ctx_->ChargeHashBuild(key_bytes);
    UpdateGroup(target, row);
  }
  return Status::OK();
}

namespace {

/// Dictionary binding behind a resolved BatchOperand: non-null when the
/// operand is a plain column reference whose storage is dictionary codes
/// (an active code lane, or a dict-encoded lazily-bound scan column).
/// On success *codes/*base locate row r's code at codes[base + r].
const Column* DictBindingOf(const BatchOperand& op, const int32_t** codes,
                            size_t* base) {
  const int c = op.column_index();
  if (c < 0 || op.source_batch() == nullptr) return nullptr;
  const RowBatch& b = *op.source_batch();
  if (b.lane_active(c)) {
    const RowBatch::TypedLane& lane = b.lane(c);
    if (lane.kind == RowBatch::LaneKind::kStringCode && !lane.has_nulls) {
      *codes = lane.codes.data();
      *base = 0;
      return lane.dict;
    }
    return nullptr;
  }
  if (!b.col_materialized(c) && b.lazy_source() != nullptr) {
    const Column& col = b.lazy_source()->column(c);
    if (col.type() == ValueType::kString && col.dict_encoded()) {
      *codes = col.codes_data();
      *base = b.lazy_start();
      return &col;
    }
  }
  return nullptr;
}

}  // namespace

Status HashAggOp::ConsumeChildBatchMode() {
  RowBatch batch;
  bool has = false;
  const int key_bytes = static_cast<int>(group_by_.size()) * 8;
  std::vector<BatchOperand> key_vals(group_by_.size());
  std::vector<BatchAggArg> args(aggs_.size());
  // Dict fast-path scratch, hoisted so steady-state batches allocate
  // nothing (the alloc-count suite pins this).
  std::vector<const Column*> key_dicts(group_by_.size(), nullptr);
  std::vector<const int32_t*> key_codes(group_by_.size(), nullptr);
  std::vector<size_t> key_code_bases(group_by_.size(), 0);
  for (;;) {
    ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());
    ECODB_RETURN_NOT_OK(child_->NextBatch(&batch, &has));
    if (!has) break;
    // Vectorized evaluation of group keys and aggregate arguments; the
    // scalar path evaluates the same expressions over the same rows.
    // Plain column references resolve into the batch without boxing
    // (unboxed CellView access), and SUM/AVG/COUNT arguments that are
    // double arithmetic over unboxed columns are computed once per batch
    // into raw double arrays — no Values anywhere on the hot path.
    for (size_t i = 0; i < group_by_.size(); ++i) {
      key_vals[i].Resolve(*group_by_[i], batch, batch.sel(),
                          ctx_->eval_counters(), &scratch_);
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      BatchAggArg& arg = args[i];
      if (!aggs_[i].arg) {
        arg.mode = BatchAggArg::Mode::kCountStar;
        continue;
      }
      const AggSpec::Kind kind = aggs_[i].kind;
      const bool wants_double = kind == AggSpec::Kind::kSum ||
                                kind == AggSpec::Kind::kAvg ||
                                kind == AggSpec::Kind::kCount;
      if (wants_double && CanEvalDoubleSubtree(*aggs_[i].arg, batch)) {
        arg.mode = BatchAggArg::Mode::kTypedDouble;
        arg.is_scalar = false;
        EvalDoubleSubtree(*aggs_[i].arg, batch, batch.sel(), &arg.doubles,
                          &arg.scalar, &arg.is_scalar, ctx_->eval_counters(),
                          &scratch_);
        continue;
      }
      arg.mode = BatchAggArg::Mode::kOperand;
      arg.operand.Resolve(*aggs_[i].arg, batch, batch.sel(),
                          ctx_->eval_counters(), &scratch_);
    }
    uint64_t new_groups = 0;
    const size_t n_keys = group_by_.size();
    // Dictionary fast path: every group key resolved to the codes of a
    // dict-encoded column. Key hashes come from the dictionaries' cached
    // entry hashes and group lookups are memoized per composite code
    // (mixed-radix over the dictionaries' sizes).
    constexpr size_t kDictMemoMaxEntries = size_t{1} << 16;
    bool all_dict = n_keys > 0;
    size_t memo_entries = 1;
    for (size_t i = 0; i < n_keys && all_dict; ++i) {
      key_dicts[i] =
          DictBindingOf(key_vals[i], &key_codes[i], &key_code_bases[i]);
      if (key_dicts[i] == nullptr ||
          memo_entries > kDictMemoMaxEntries / key_dicts[i]->dict_size()) {
        all_dict = false;
      } else {
        memo_entries *= key_dicts[i]->dict_size();
      }
    }
    if (!all_dict) key_dicts.assign(n_keys, nullptr);
    if (key_dicts != dict_memo_dicts_) {
      dict_memo_dicts_ = key_dicts;
      dict_memo_group_.assign(all_dict ? memo_entries : 0,
                              FlatHashIndex::kInvalid);
      dict_memo_cmps_.assign(dict_memo_group_.size(), 0);
    }
    for (uint32_t r : batch.sel()) {
      // Hash and bucket-compare against unboxed key views; the key Row is
      // only boxed when a new group is created (the common found-case
      // does no per-row allocation).
      Group* target;
      const auto key_at = [&](size_t i) { return key_vals[i].view_at(r); };
      const auto make_key = [&] {
        Row key;
        key.reserve(n_keys);
        for (size_t i = 0; i < n_keys; ++i) {
          key.push_back(BoxCellView(key_vals[i].view_at(r)));
        }
        return key;
      };
      if (all_dict) {
        size_t code = 0;
        for (size_t i = 0; i < n_keys; ++i) {
          code = code * key_dicts[i]->dict_size() +
                 static_cast<size_t>(key_codes[i][key_code_bases[i] + r]);
        }
        uint32_t& memo = dict_memo_group_[code];
        if (memo != FlatHashIndex::kInvalid) {
          // Memo hit: replay the chain walk's bucket-compare charge (its
          // length is fixed — chains append at the tail and this group's
          // position in its chain never changes) and jump to the group.
          ctx_->eval_counters()->comparisons += dict_memo_cmps_[code];
          target = &groups_[memo];
        } else {
          size_t h = kRowKeyHashSeed;
          for (size_t i = 0; i < n_keys; ++i) {
            h = HashCombineKey(
                h, key_dicts[i]->DictHash(key_codes[i][key_code_bases[i] + r]));
          }
          const uint64_t cmp_before = ctx_->eval_counters()->comparisons;
          const uint64_t groups_before = new_groups;
          target = FindOrCreateGroup(h, n_keys, key_at, make_key, &new_groups);
          memo = static_cast<uint32_t>(target - groups_.data());
          // A future lookup of this key walks the same chain prefix plus
          // (when this call inserted the group) the matching entry itself.
          dict_memo_cmps_[code] = static_cast<uint32_t>(
              ctx_->eval_counters()->comparisons - cmp_before +
              (new_groups > groups_before ? 1 : 0));
        }
      } else {
        size_t h = kRowKeyHashSeed;
        for (size_t i = 0; i < n_keys; ++i) {
          h = HashCombineKey(h, HashCellView(key_vals[i].view_at(r)));
        }
        target = FindOrCreateGroup(h, n_keys, key_at, make_key, &new_groups);
      }
      UpdateGroupFromBatch(target, args, r);
    }
    ctx_->ChargeHashProbes(batch.active(), key_bytes);
    ctx_->ChargeHashBuilds(new_groups, key_bytes);
    ctx_->ChargeAggUpdates(batch.active(), static_cast<int>(aggs_.size()));
    ctx_->ChargeEvalOps();
  }
  return Status::OK();
}

void HashAggOp::MaterializeResults() {
  const int n_fields = schema_.num_fields();
  result_cols_.resize(static_cast<size_t>(n_fields));
  for (int c = 0; c < n_fields; ++c) {
    result_cols_[static_cast<size_t>(c)].Reset(schema_.field(c).type);
    result_cols_[static_cast<size_t>(c)].set_memory_tracker(
        ctx_->memory_tracker());
  }

  // Global aggregate over empty input still yields one row (SQL
  // semantics): emit from a synthetic zero-count group.
  std::vector<Group> synthetic;
  const std::vector<Group>* src = &groups_;
  if (groups_.empty() && group_by_.empty()) {
    synthetic.push_back(Group{Row{}, std::vector<Accumulator>(aggs_.size())});
    src = &synthetic;
  }
  n_results_ = src->size();

  // Column-at-a-time fill, pool in group-creation order (deterministic
  // and identical across execution modes). Group keys leave the pool as
  // unboxed CellViews of the stored key Rows (string bytes interned into
  // the column's arena — the pool is cleared right after this); SUM /
  // AVG / COUNT accumulators finalize straight into double / int64
  // lanes, never constructing a Value.
  for (size_t k = 0; k < group_by_.size(); ++k) {
    TypedColumn& col = result_cols_[k];
    for (const Group& g : *src) col.Append(CellView::Of(g.key[k]));
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    // COUNT/SUM/AVG columns are declared kInt64/kDouble (AggSpec::
    // ResultType) and nothing else is ever appended, so the typed
    // non-null appends are legal throughout.
    TypedColumn& col = result_cols_[group_by_.size() + i];
    const AggSpec::Kind kind = aggs_[i].kind;
    switch (kind) {
      case AggSpec::Kind::kCount:
        for (const Group& g : *src) {
          col.AppendNonNullInt64(static_cast<int64_t>(g.accs[i].count));
        }
        break;
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg:
        for (const Group& g : *src) {
          const Accumulator& acc = g.accs[i];
          if (acc.count == 0) {
            col.Append(CellView::Null());
          } else {
            col.AppendNonNullDouble(
                kind == AggSpec::Kind::kSum
                    ? acc.sum
                    : acc.sum / static_cast<double>(acc.count));
          }
        }
        break;
      case AggSpec::Kind::kMin:
      case AggSpec::Kind::kMax:
        for (const Group& g : *src) {
          const Accumulator& acc = g.accs[i];
          const Value& v =
              kind == AggSpec::Kind::kMin ? acc.min : acc.max;
          col.Append(acc.count ? CellView::Of(v) : CellView::Null());
        }
        break;
    }
  }
}

Status HashAggOp::Open() {
  ECODB_RETURN_NOT_OK(child_->Open());
  group_index_.set_memory_tracker(ctx_->memory_tracker());
  group_index_.Reset();
  groups_.clear();
  dict_memo_dicts_.clear();  // group indexes below are gone; drop the memo
  ctx_->memory_tracker()->Release(group_pool_bytes_);
  group_pool_bytes_ = 0;
  n_results_ = 0;
  result_pos_ = 0;

  Status consume = ctx_->exec_mode() == ExecMode::kBatch
                       ? ConsumeChildBatchMode()
                       : ConsumeChildRowMode();
  if (!consume.ok()) {
    child_->Close();
    return consume;
  }
  child_->Close();
  // Drain the trailing bucket-compare / aggregate-argument counters (the
  // per-row drain above only covers work up to the previous row).
  ctx_->ChargeEvalOps();

  MaterializeResults();
  // Governor check at the high-water point — group pool and result
  // columns both live — before the pool is released, so a memory budget
  // below this operator's peak latches here in both exec modes (the
  // consume loops above only check at pull granularity).
  ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());
  group_index_.Reset();
  groups_.clear();
  ctx_->memory_tracker()->Release(group_pool_bytes_);
  group_pool_bytes_ = 0;
  ctx_->Flush();
  return Status::OK();
}

Status HashAggOp::Next(Row* out, bool* has_row) {
  if (result_pos_ >= n_results_) {
    *has_row = false;
    return Status::OK();
  }
  const uint32_t idx = static_cast<uint32_t>(result_pos_++);
  out->clear();
  out->reserve(result_cols_.size());
  for (const TypedColumn& c : result_cols_) out->push_back(c.GetValue(idx));
  *has_row = true;
  return Status::OK();
}

Status HashAggOp::NextBatch(RowBatch* out, bool* has_rows) {
  return NextBatchCapped(out, has_rows, RowBatch::kDefaultBatchRows);
}

Status HashAggOp::NextBatchCapped(RowBatch* out, bool* has_rows,
                                  size_t max_rows) {
  out->Reset(schema_.num_fields());
  if (result_pos_ >= n_results_) {
    *has_rows = false;
    return Status::OK();
  }
  const size_t take = std::min({RowBatch::kDefaultBatchRows, max_rows,
                                n_results_ - result_pos_});
  if (take == 0) {
    *has_rows = false;
    return Status::OK();
  }
  emit_idx_.resize(take);
  for (size_t i = 0; i < take; ++i) {
    emit_idx_[i] = static_cast<uint32_t>(result_pos_ + i);
  }
  // Typed-lane gather from the immutable result columns (strings by
  // pointer into the columns' arenas, retained by `out`).
  for (int c = 0; c < static_cast<int>(result_cols_.size()); ++c) {
    result_cols_[static_cast<size_t>(c)].GatherInto(out, c, emit_idx_.data(),
                                                    take);
  }
  result_pos_ += take;
  out->set_num_rows(take);
  out->ExtendIdentitySel(0);
  *has_rows = true;
  return Status::OK();
}

void HashAggOp::Close() {
  // The group pool is normally released at the end of Open; a governed
  // kill mid-consume leaves it populated, so release here too.
  group_index_.Reset();
  groups_.clear();
  ctx_->memory_tracker()->Release(group_pool_bytes_);
  group_pool_bytes_ = 0;
  result_cols_.clear();
  n_results_ = 0;
  ctx_->Flush();
}

// --- SortOp ---

SortOp::SortOp(ExecContext* ctx, OperatorPtr child, std::vector<SortKey> keys)
    : ctx_(ctx), child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOp::Open() {
  ECODB_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  ctx_->memory_tracker()->Release(row_pool_bytes_);
  row_pool_bytes_ = 0;
  order_.clear();
  n_rows_ = 0;
  pos_ = 0;
  columnar_ = ctx_->exec_mode() == ExecMode::kBatch;
  // The consume methods close the child themselves (on success and on
  // error) because the row path interleaves the close with decoration.
  if (columnar_) {
    ECODB_RETURN_NOT_OK(ConsumeChildBatchMode());
  } else {
    ECODB_RETURN_NOT_OK(ConsumeChildRowMode());
  }
  ctx_->Flush();
  return Status::OK();
}

Status SortOp::ConsumeChildRowMode() {
  Row row;
  bool has = false;
  for (;;) {
    Status st = ctx_->CheckGovernor();
    if (st.ok()) st = child_->Next(&row, &has);
    if (!st.ok()) {
      child_->Close();
      return st;
    }
    if (!has) break;
    const uint64_t b = LogicalRowBytes(row);
    ctx_->memory_tracker()->Charge(b);
    row_pool_bytes_ += b;
    rows_.push_back(std::move(row));
    row = Row();
  }
  child_->Close();

  // Decorate: evaluate sort keys once per row.
  std::vector<std::pair<Row, size_t>> decorated;
  decorated.reserve(rows_.size());
  uint64_t key_bytes = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    Row key;
    key.reserve(keys_.size());
    for (const SortKey& k : keys_) {
      key.push_back(k.expr->Eval(rows_[i], ctx_->eval_counters()));
    }
    const uint64_t kb = LogicalRowBytes(key);
    ctx_->memory_tracker()->Charge(kb);
    key_bytes += kb;
    decorated.emplace_back(std::move(key), i);
  }
  ctx_->ChargeEvalOps();

  // High-water check — input pool plus decorated keys both live. The
  // batch path's post-consume check sees the same logical total (typed
  // columns plus key columns), so a budget below this peak latches in
  // both modes.
  Status key_check = ctx_->CheckGovernor();
  if (!key_check.ok()) {
    ctx_->memory_tracker()->Release(key_bytes);
    return key_check;
  }

  uint64_t compares = 0;
  std::sort(decorated.begin(), decorated.end(),
            [&](const auto& a, const auto& b) {
              ++compares;
              for (size_t i = 0; i < keys_.size(); ++i) {
                int c = a.first[i].Compare(b.first[i]);
                if (c != 0) return keys_[i].ascending ? c < 0 : c > 0;
              }
              return a.second < b.second;  // stable tiebreak
            });
  ctx_->ChargeSortCompares(compares);
  // Decorated keys die with this frame; mirror that in the tracker (the
  // batch path clears its key columns at the same point).
  ctx_->memory_tracker()->Release(key_bytes);

  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (auto& [key, idx] : decorated) sorted.push_back(std::move(rows_[idx]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Status SortOp::ConsumeChildBatchMode() {
  const Schema& s = child_->schema();
  const int n_cols = s.num_fields();
  cols_.resize(static_cast<size_t>(n_cols));
  for (int c = 0; c < n_cols; ++c) {
    cols_[static_cast<size_t>(c)].Reset(s.field(c).type);
    cols_[static_cast<size_t>(c)].set_memory_tracker(ctx_->memory_tracker());
  }
  key_cols_.resize(keys_.size());
  key_code_vals_.assign(keys_.size(), {});
  key_dicts_.assign(keys_.size(), nullptr);
  key_code_ok_.assign(keys_.size(), 0);
  for (size_t k = 0; k < keys_.size(); ++k) {
    key_cols_[k].Reset(keys_[k].expr->type());
    key_cols_[k].set_memory_tracker(ctx_->memory_tracker());
    // String keys start out eligible for the dictionary-code comparator;
    // the first batch that doesn't resolve to codes of one dictionary
    // knocks the key back to byte compares.
    key_code_ok_[k] = keys_[k].expr->type() == ValueType::kString ? 1 : 0;
  }

  // Materialize the input as typed columns, evaluating the sort keys
  // vectorized per batch. String payload cells whose bytes outlive this
  // operator (table storage, arena-backed lanes — everything except
  // transient boxed values and pool-backed lanes) enter the columns by
  // pointer, with the backing arenas retained; no Value is constructed
  // and no byte is copied. Key-evaluation counts equal the row-mode
  // decorate loop's by the EvalBatch/BatchOperand contract.
  RowBatch batch;
  bool has = false;
  std::vector<BatchOperand> key_vals(keys_.size());
  for (;;) {
    Status st = ctx_->CheckGovernor();
    if (st.ok()) st = child_->NextBatch(&batch, &has);
    if (!st.ok()) {
      child_->Close();
      return st;
    }
    if (!has) break;
    for (size_t k = 0; k < keys_.size(); ++k) {
      key_vals[k].Resolve(*keys_[k].expr, batch, batch.sel(),
                          ctx_->eval_counters(), &scratch_);
    }
    const bool stable_strings = !batch.strings_pool_backed();
    for (int c = 0; c < n_cols; ++c) {
      TypedColumn& dst = cols_[static_cast<size_t>(c)];
      if (stable_strings && !batch.col_materialized(c) &&
          RowBatch::LaneKindFor(dst.type()) ==
              RowBatch::LaneKind::kStringRef) {
        dst.RetainStorageOf(batch);
        for (uint32_t r : batch.sel()) dst.AppendStable(batch.ViewCell(c, r));
      } else {
        for (uint32_t r : batch.sel()) dst.Append(batch.ViewCell(c, r));
      }
    }
    for (size_t k = 0; k < keys_.size(); ++k) {
      TypedColumn& dst = key_cols_[k];
      for (uint32_t r : batch.sel()) dst.Append(key_vals[k].view_at(r));
      if (key_code_ok_[k]) {
        const int32_t* codes = nullptr;
        size_t base = 0;
        const Column* dict = DictBindingOf(key_vals[k], &codes, &base);
        if (dict != nullptr &&
            (key_dicts_[k] == nullptr || key_dicts_[k] == dict)) {
          key_dicts_[k] = dict;
          for (uint32_t r : batch.sel()) {
            key_code_vals_[k].push_back(codes[base + r]);
          }
        } else {
          key_code_ok_[k] = 0;
          key_code_vals_[k].clear();
          key_code_vals_[k].shrink_to_fit();
        }
      }
    }
    n_rows_ += batch.active();
  }
  child_->Close();
  ctx_->ChargeEvalOps();

  // High-water check — input columns plus key columns both live;
  // mirrors the row path's post-decorate check (same logical total).
  ECODB_RETURN_NOT_OK(ctx_->CheckGovernor());

  // Index sort over unboxed key views. Same elements in the same initial
  // order under the same total order as the row-mode decorate sort, so
  // std::sort performs the identical comparison sequence — one sort
  // compare charged per comparator call in both modes.
  order_.resize(n_rows_);
  for (size_t i = 0; i < n_rows_; ++i) order_[i] = static_cast<uint32_t>(i);
  uint64_t compares = 0;
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    ++compares;
    for (size_t i = 0; i < keys_.size(); ++i) {
      int c;
      if (key_code_ok_[i]) {
        // Sorted dictionary: int32 code order IS byte order, so this
        // returns the same sign CompareCellViews would.
        const int32_t ca = key_code_vals_[i][a];
        const int32_t cb = key_code_vals_[i][b];
        c = ca < cb ? -1 : (ca > cb ? 1 : 0);
      } else {
        c = CompareCellViews(key_cols_[i].View(a), key_cols_[i].View(b));
      }
      if (c != 0) return keys_[i].ascending ? c < 0 : c > 0;
    }
    return a < b;  // stable tiebreak
  });
  ctx_->ChargeSortCompares(compares);
  // The key columns are only read by the comparator; release them here
  // so the tracker matches the row path, whose decorated keys die at
  // the same point.
  key_cols_.clear();
  key_code_vals_.clear();
  return Status::OK();
}

Status SortOp::Next(Row* out, bool* has_row) {
  // Batch-consumed state still serves row pulls (a streaming parent in a
  // limited pipeline, or a row pull following a batch pull — both share
  // pos_ over the immutable columns) by boxing from the typed columns.
  if (columnar_) {
    if (pos_ >= n_rows_) {
      *has_row = false;
      return Status::OK();
    }
    const uint32_t idx = order_[pos_++];
    out->clear();
    out->reserve(cols_.size());
    for (const TypedColumn& c : cols_) out->push_back(c.GetValue(idx));
    *has_row = true;
    return Status::OK();
  }
  if (pos_ >= rows_.size()) {
    *has_row = false;
    return Status::OK();
  }
  *out = rows_[pos_++];
  *has_row = true;
  return Status::OK();
}

Status SortOp::NextBatch(RowBatch* out, bool* has_rows) {
  return NextBatchCapped(out, has_rows, RowBatch::kDefaultBatchRows);
}

Status SortOp::NextBatchCapped(RowBatch* out, bool* has_rows,
                               size_t max_rows) {
  out->Reset(schema().num_fields());
  if (columnar_) {
    if (pos_ >= n_rows_ || max_rows == 0) {
      *has_rows = false;
      return Status::OK();
    }
    const size_t take =
        std::min({RowBatch::kDefaultBatchRows, max_rows, n_rows_ - pos_});
    // Gather typed lanes in sorted order; strings go out by pointer into
    // the columns' arenas (own and borrowed), which `out` retains.
    for (int c = 0; c < static_cast<int>(cols_.size()); ++c) {
      cols_[static_cast<size_t>(c)].GatherInto(out, c, order_.data() + pos_,
                                               take);
    }
    pos_ += take;
    out->set_num_rows(take);
    out->ExtendIdentitySel(0);
    *has_rows = true;
    return Status::OK();
  }
  if (pos_ >= rows_.size() || max_rows == 0) {
    *has_rows = false;
    return Status::OK();
  }
  const size_t take =
      std::min({RowBatch::kDefaultBatchRows, max_rows, rows_.size() - pos_});
  for (size_t i = 0; i < take; ++i) {
    out->AppendRowMove(std::move(rows_[pos_++]));
  }
  *has_rows = true;
  return Status::OK();
}

void SortOp::Close() {
  rows_.clear();
  ctx_->memory_tracker()->Release(row_pool_bytes_);
  row_pool_bytes_ = 0;
  cols_.clear();      // TypedColumn destructors release their tracked bytes
  key_cols_.clear();  // (already cleared after the sort on the normal path)
  key_code_vals_.clear();
  key_dicts_.clear();
  key_code_ok_.clear();
  order_.clear();
  n_rows_ = 0;
  ctx_->Flush();
}

// --- LimitOp ---

LimitOp::LimitOp(ExecContext* ctx, OperatorPtr child, int64_t limit)
    : ctx_(ctx), child_(std::move(child)), limit_(limit) {}

Status LimitOp::Open() {
  produced_ = 0;
  return child_->Open();
}

Status LimitOp::Next(Row* out, bool* has_row) {
  if (limit_ >= 0 && produced_ >= limit_) {
    *has_row = false;
    return Status::OK();
  }
  bool has = false;
  ECODB_RETURN_NOT_OK(child_->Next(out, &has));
  if (!has) {
    *has_row = false;
    return Status::OK();
  }
  ++produced_;
  *has_row = true;
  return Status::OK();
}

Status LimitOp::NextBatch(RowBatch* out, bool* has_rows) {
  return NextBatchCapped(out, has_rows, RowBatch::kDefaultBatchRows);
}

Status LimitOp::NextBatchCapped(RowBatch* out, bool* has_rows,
                                size_t max_rows) {
  // Materialized child (sort/aggregation/limit thereover): pull capped
  // batches straight through — typed lanes, arena retention and the
  // pool-backed marker all ride `out` untouched — and truncate with the
  // selection vector. Parity-safe: all work below happened at the
  // child's Open, identically in both modes, and its emission charges
  // nothing, so stopping early perturbs no counter.
  if (child_->MaterializedEmission()) {
    if (limit_ >= 0 && produced_ >= limit_) {
      out->Reset(child_->schema().num_fields());
      *has_rows = false;
      return Status::OK();
    }
    size_t want = max_rows;
    if (limit_ >= 0) {
      want = std::min(want, static_cast<size_t>(limit_ - produced_));
    }
    bool has = false;
    ECODB_RETURN_NOT_OK(child_->NextBatchCapped(out, &has, want));
    if (!has) {
      *has_rows = false;
      return Status::OK();
    }
    // A materialized child must honor the cap (every in-tree override
    // does; the base adapter that ignores it belongs to streaming
    // operators, which never reach this branch). An over-emitting child
    // would mean rows its cursor already consumed get dropped here, so
    // treat it as a contract violation, with release-mode truncation as
    // the containment.
    assert(out->active() <= want &&
           "MaterializedEmission child ignored NextBatchCapped bound");
    if (out->active() > want) out->sel().resize(want);
    produced_ += static_cast<int64_t>(out->active());
    *has_rows = !out->empty();
    return Status::OK();
  }

  // Streaming child: row-at-a-time pulls, so the subtree never reads (or
  // charges) ahead of the limit.
  out->Reset(child_->schema().num_fields());
  Row row;
  bool has = false;
  size_t emitted = 0;
  while (emitted < max_rows && emitted < RowBatch::kDefaultBatchRows &&
         (limit_ < 0 || produced_ < limit_)) {
    ECODB_RETURN_NOT_OK(child_->Next(&row, &has));
    if (!has) break;
    ++produced_;
    out->AppendRowMove(std::move(row));
    row = Row();
    ++emitted;
  }
  *has_rows = emitted > 0;
  return Status::OK();
}

void LimitOp::Close() {
  child_->Close();
  ctx_->Flush();
}

// --- ExecuteOperatorColumnar / ExecuteOperator ---

Result<ResultSet> ExecuteOperatorColumnar(Operator* op, ExecContext* ctx,
                                          ExecMode mode) {
  ctx->set_exec_mode(mode);
  Status open = op->Open();
  if (!open.ok()) {
    // Close the partially-opened stack: Open failures (governor trips,
    // injected faults) can leave materialized pools populated, and every
    // operator's Close releases its own state idempotently.
    op->Close();
    return open;
  }
  // Schemas bind at Open (scans look up the catalog), so the result shape
  // and output width are computed here, not before.
  ResultSet set(op->schema());
  const int width = op->schema().RowWidth();
  // The accumulating result counts against the query's memory budget
  // (logical schema width per row, identical across modes); the charge
  // is dropped once the set is handed to the caller — tracker lifetime
  // ends with the query, the result outlives it.
  MemoryTracker* tracker = ctx->memory_tracker();
  uint64_t result_bytes = 0;
  if (mode == ExecMode::kBatch) {
    RowBatch batch;
    for (;;) {
      bool has = false;
      Status st = ctx->CheckGovernor();
      if (st.ok()) st = op->NextBatch(&batch, &has);
      if (!st.ok()) {
        tracker->Release(result_bytes);
        op->Close();
        return st;
      }
      if (!has) break;
      ctx->ChargeOutputTuples(batch.active(), width);
      const uint64_t rb =
          static_cast<uint64_t>(batch.active()) * static_cast<uint64_t>(width);
      tracker->Charge(rb);
      result_bytes += rb;
      set.AppendBatch(batch);
    }
  } else {
    Row row;
    bool has = false;
    for (;;) {
      Status st = ctx->CheckGovernor();
      if (st.ok()) st = op->Next(&row, &has);
      if (!st.ok()) {
        tracker->Release(result_bytes);
        op->Close();
        return st;
      }
      if (!has) break;
      ctx->ChargeOutputTuple(width);
      tracker->Charge(static_cast<uint64_t>(width));
      result_bytes += static_cast<uint64_t>(width);
      set.AppendRow(row);
    }
  }
  // Surface the result columns' string-dedup effectiveness (diagnostics;
  // how many appends take the copy path differs by exec mode, so these
  // counters are excluded from parity comparisons — see QueryExecStats).
  uint64_t dedup_hits = 0, dedup_misses = 0;
  for (int c = 0; c < set.num_cols(); ++c) {
    const StringArenaPtr& arena = set.col(c).strings();
    if (arena != nullptr) {
      dedup_hits += arena->dedup_hits();
      dedup_misses += arena->dedup_misses();
    }
  }
  ctx->AddDictDedupCounters(dedup_hits, dedup_misses);
  tracker->Release(result_bytes);
  op->Close();
  ctx->Flush();
  return set;
}

Result<std::vector<Row>> ExecuteOperator(Operator* op, ExecContext* ctx,
                                         ExecMode mode) {
  ECODB_ASSIGN_OR_RETURN(ResultSet set, ExecuteOperatorColumnar(op, ctx, mode));
  return set.TakeRows();
}

}  // namespace ecodb

// Runtime-dispatched SIMD kernels for the vectorized hot loops.
//
// Every kernel has two implementations: a scalar reference loop (the
// semantic ground truth, kept trivially auditable) and a vectorized loop
// built on portable GNU vector extensions (`vector_size` types), with
// x86-64 function multi-versioning (`target_clones("avx2","default")`)
// where the toolchain supports it. The public entry points dispatch once
// per call on `Enabled()`:
//
//   * compile-time off  — CMake option ECODB_SIMD=OFF defines
//     ECODB_SIMD_DISABLED and the dispatchers always take the scalar path;
//   * runtime off       — environment ECODB_SIMD=off (checked once,
//     cached) forces the scalar path in any build.
//
// Parity rule (enforced by tests/simd_kernel_test.cc): the vector path
// must be BIT-IDENTICAL to the scalar path for every input, including
// NaN, signed zero, unaligned bases and non-multiple-of-width tails. The
// kernels only perform operations that are elementwise-exact under IEEE
// 754 (compare, add, sub, mul, div, int<->double convert, integer ops),
// so this holds on any ISA the dispatcher selects; anything requiring
// reassociation (horizontal sums) does NOT belong here.
//
// Comparison semantics match the engine's three-way compare
// (Value::Compare / CompareCellViews): cmp = a<b ? -1 : (a>b ? 1 : 0),
// predicate = relation on cmp. For doubles this makes NaN compare "equal"
// to everything: kEq/kLe/kGe accept NaN operands, kNe/kLt/kGt reject.

#ifndef ECODB_EXEC_SIMD_H_
#define ECODB_EXEC_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ecodb {
namespace simd {

/// True when the vectorized paths are compiled in and not disabled via
/// the ECODB_SIMD=off environment override. Cached after the first call.
bool Enabled();

/// "vector" or "scalar" — which path the dispatchers currently take.
const char* ActiveTarget();

/// Comparison operator, mirroring the engine's CompareOp order.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Double arithmetic kind, mirroring ArithExpr.
enum class ArithKind : uint8_t { kAdd, kSub, kMul, kDiv };

// --- Column-vs-literal compare into a byte mask (1 = pass, 0 = fail) ---

void CompareI64LitMask(const int64_t* a, size_t n, CmpOp op, int64_t lit,
                       uint8_t* out);
void CompareI32LitMask(const int32_t* a, size_t n, CmpOp op, int32_t lit,
                       uint8_t* out);
void CompareF64LitMask(const double* a, size_t n, CmpOp op, double lit,
                       uint8_t* out);

// --- Elementwise double arithmetic ------------------------------------

void ArithF64ColCol(ArithKind k, const double* a, const double* b, size_t n,
                    double* out);
void ArithF64ColScalar(ArithKind k, const double* a, double b, size_t n,
                       double* out);
void ArithF64ScalarCol(ArithKind k, double a, const double* b, size_t n,
                       double* out);

/// out[i] = static_cast<double>(in[i]) — exact for |v| < 2^53 and
/// correctly rounded beyond, identically in scalar and vector form.
void ConvertI64ToF64(const int64_t* in, size_t n, double* out);

// --- Null-mask combine (byte-per-row masks, non-zero = null/set) -------

void OrMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out);

// --- Batch hash combine ------------------------------------------------

/// h[i] = HashCombineKey(h[i], vh[i]) for i in [0, n). Each element is
/// independent (the combine chains *across key columns*, not across
/// rows), which is what makes the multi-column batch hash vectorizable.
void HashCombineBatch(size_t* h, const size_t* vh, size_t n);

namespace detail {
// Direct handles on both implementations, exposed so the parity test can
// compare them without flipping process-global dispatch state. Production
// code calls the dispatchers above.
void CompareI64LitMaskScalar(const int64_t* a, size_t n, CmpOp op,
                             int64_t lit, uint8_t* out);
void CompareI64LitMaskVector(const int64_t* a, size_t n, CmpOp op,
                             int64_t lit, uint8_t* out);
void CompareI32LitMaskScalar(const int32_t* a, size_t n, CmpOp op,
                             int32_t lit, uint8_t* out);
void CompareI32LitMaskVector(const int32_t* a, size_t n, CmpOp op,
                             int32_t lit, uint8_t* out);
void CompareF64LitMaskScalar(const double* a, size_t n, CmpOp op, double lit,
                             uint8_t* out);
void CompareF64LitMaskVector(const double* a, size_t n, CmpOp op, double lit,
                             uint8_t* out);
void ArithF64ColColScalar(ArithKind k, const double* a, const double* b,
                          size_t n, double* out);
void ArithF64ColColVector(ArithKind k, const double* a, const double* b,
                          size_t n, double* out);
void ArithF64ColScalarScalar(ArithKind k, const double* a, double b, size_t n,
                             double* out);
void ArithF64ColScalarVector(ArithKind k, const double* a, double b, size_t n,
                             double* out);
void ArithF64ScalarColScalar(ArithKind k, double a, const double* b, size_t n,
                             double* out);
void ArithF64ScalarColVector(ArithKind k, double a, const double* b, size_t n,
                             double* out);
void ConvertI64ToF64Scalar(const int64_t* in, size_t n, double* out);
void ConvertI64ToF64Vector(const int64_t* in, size_t n, double* out);
void OrMasksScalar(const uint8_t* a, const uint8_t* b, size_t n,
                   uint8_t* out);
void OrMasksVector(const uint8_t* a, const uint8_t* b, size_t n,
                   uint8_t* out);
void HashCombineBatchScalar(size_t* h, const size_t* vh, size_t n);
void HashCombineBatchVector(size_t* h, const size_t* vh, size_t n);
}  // namespace detail

}  // namespace simd
}  // namespace ecodb

#endif  // ECODB_EXEC_SIMD_H_

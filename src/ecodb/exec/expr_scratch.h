// Operator-owned scratch buffers for vectorized expression evaluation.
//
// Expression trees are shared, immutable objects (ExprPtr is a
// shared_ptr<const Expr>), so the per-batch temporaries their batch
// kernels need — undecided-row selections for AND/OR short-circuit,
// pending sets for BETWEEN / IN-list laziness, double arrays for
// arithmetic subtrees, boxed operand storage — cannot live in the nodes.
// Before this pool existed they were stack-local std::vectors, which made
// a scan -> filter -> aggregate pipeline heap-allocate O(batches x nodes)
// times (hundreds of allocations per 300k-row scan).
//
// ExprScratch is a free-list pool owned by the *operator* driving the
// expression (FilterOp, ProjectOp, HashAggOp, NestedLoopJoinOp) and
// threaded through EvalBatch / FilterBatch. Acquire() hands out a cleared
// vector whose capacity survives release, so after the first batch the
// steady state performs zero allocations: O(operators) pools, each
// holding at most O(expression depth) vectors.
//
// ScratchVec is the RAII accessor: it borrows from the pool when one is
// supplied and falls back to a stack-local vector when `scratch` is null
// (tests and cold paths), so kernels are written once.

#ifndef ECODB_EXEC_EXPR_SCRATCH_H_
#define ECODB_EXEC_EXPR_SCRATCH_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "ecodb/storage/value.h"

namespace ecodb {

class ExprScratch {
 public:
  template <typename T>
  std::vector<T>* Acquire() {
    return pool<T>().Acquire();
  }
  template <typename T>
  void Release(std::vector<T>* v) {
    pool<T>().Release(v);
  }

 private:
  template <typename T>
  struct Pool {
    std::vector<std::unique_ptr<std::vector<T>>> owned;
    std::vector<std::vector<T>*> free_list;

    std::vector<T>* Acquire() {
      if (free_list.empty()) {
        owned.push_back(std::make_unique<std::vector<T>>());
        return owned.back().get();
      }
      std::vector<T>* v = free_list.back();
      free_list.pop_back();
      v->clear();
      return v;
    }
    void Release(std::vector<T>* v) { free_list.push_back(v); }
  };

  template <typename T>
  Pool<T>& pool() {
    static_assert(std::is_same_v<T, Value> || std::is_same_v<T, uint32_t> ||
                      std::is_same_v<T, double>,
                  "unsupported scratch vector type");
    if constexpr (std::is_same_v<T, Value>) {
      return values_;
    } else if constexpr (std::is_same_v<T, uint32_t>) {
      return sels_;
    } else {
      return doubles_;
    }
  }

  Pool<Value> values_;
  Pool<uint32_t> sels_;
  Pool<double> doubles_;
};

/// RAII scratch vector: pooled when `scratch` is non-null, stack-local
/// otherwise. Always starts empty (cleared).
template <typename T>
class ScratchVec {
 public:
  explicit ScratchVec(ExprScratch* scratch) : scratch_(scratch) {
    vec_ = scratch_ != nullptr ? scratch_->Acquire<T>() : &local_;
  }
  ~ScratchVec() {
    if (scratch_ != nullptr) scratch_->Release(vec_);
  }
  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;

  std::vector<T>& operator*() { return *vec_; }
  std::vector<T>* operator->() { return vec_; }
  std::vector<T>* get() { return vec_; }

 private:
  ExprScratch* scratch_;
  std::vector<T>* vec_;
  std::vector<T> local_;
};

}  // namespace ecodb

#endif  // ECODB_EXEC_EXPR_SCRATCH_H_

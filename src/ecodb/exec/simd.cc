#include "ecodb/exec/simd.h"

#include <cstdlib>
#include <cstring>

#include "ecodb/storage/value.h"

// Function multi-versioning: compile the vector kernels once per listed
// ISA and let the dynamic linker pick via ifunc. Only attempted on
// x86-64 Linux GCC/Clang, and not under ASan/TSan (ifunc resolvers run
// before the sanitizer runtime is ready on some glibc versions). The
// baseline build still vectorizes through the portable vector_size types
// (SSE2 on x86-64), so losing the clones costs width, not correctness.
#if defined(__x86_64__) && defined(__linux__) &&                      \
    (defined(__GNUC__) || defined(__clang__)) &&                      \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define ECODB_SIMD_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define ECODB_SIMD_CLONES
#endif

// The wide vector types are passed between inline helpers inside this one
// translation unit only, so the psABI note about AVX calling-convention
// differences (raised because the baseline target lacks AVX registers)
// cannot bite — every call either inlines or stays within one clone.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace ecodb {
namespace simd {

namespace {

typedef int64_t I64x4 __attribute__((vector_size(32)));
typedef int32_t I32x8 __attribute__((vector_size(32)));
typedef double F64x4 __attribute__((vector_size(32)));
typedef uint64_t U64x4 __attribute__((vector_size(32)));
typedef uint8_t U8x16 __attribute__((vector_size(16)));

// Unaligned vector load/store through memcpy (compiles to movdqu/vmovdqu;
// callers hand arbitrary base+offset slices of std::vector storage).
template <typename V, typename T>
inline V LoadV(const T* p) {
  V v;
  std::memcpy(&v, p, sizeof(V));
  return v;
}
template <typename V, typename T>
inline void StoreV(T* p, V v) {
  std::memcpy(p, &v, sizeof(V));
}

/// Scalar three-way-compare predicate: exactly the engine's
/// `cmp = a<b ? -1 : (a>b ? 1 : 0)` followed by the relation test. For
/// doubles this is where the NaN-accepts-kEq/kLe/kGe semantics fall out.
template <typename T>
inline uint8_t ScalarPred(T a, CmpOp op, T b) {
  const bool lt = a < b;
  const bool gt = a > b;
  switch (op) {
    case CmpOp::kEq:
      return static_cast<uint8_t>(!lt && !gt);
    case CmpOp::kNe:
      return static_cast<uint8_t>(lt || gt);
    case CmpOp::kLt:
      return static_cast<uint8_t>(lt);
    case CmpOp::kLe:
      return static_cast<uint8_t>(!gt);
    case CmpOp::kGt:
      return static_cast<uint8_t>(gt);
    case CmpOp::kGe:
      return static_cast<uint8_t>(!lt);
  }
  return 0;
}

bool ReadEnabledOnce() {
#ifdef ECODB_SIMD_DISABLED
  return false;
#else
  const char* env = std::getenv("ECODB_SIMD");
  return env == nullptr || std::strcmp(env, "off") != 0;
#endif
}

}  // namespace

bool Enabled() {
  static const bool enabled = ReadEnabledOnce();
  return enabled;
}

const char* ActiveTarget() { return Enabled() ? "vector" : "scalar"; }

namespace detail {

// --- Compare: int64 ----------------------------------------------------

void CompareI64LitMaskScalar(const int64_t* a, size_t n, CmpOp op,
                             int64_t lit, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = ScalarPred(a[i], op, lit);
}

ECODB_SIMD_CLONES
void CompareI64LitMaskVector(const int64_t* a, size_t n, CmpOp op,
                             int64_t lit, uint8_t* out) {
  const I64x4 vb = {lit, lit, lit, lit};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const I64x4 va = LoadV<I64x4>(a + i);
    const I64x4 lt = va < vb;
    const I64x4 gt = va > vb;
    I64x4 m = {};
    switch (op) {
      case CmpOp::kEq:
        m = ~(lt | gt);
        break;
      case CmpOp::kNe:
        m = lt | gt;
        break;
      case CmpOp::kLt:
        m = lt;
        break;
      case CmpOp::kLe:
        m = ~gt;
        break;
      case CmpOp::kGt:
        m = gt;
        break;
      case CmpOp::kGe:
        m = ~lt;
        break;
    }
    out[i + 0] = static_cast<uint8_t>(m[0] & 1);
    out[i + 1] = static_cast<uint8_t>(m[1] & 1);
    out[i + 2] = static_cast<uint8_t>(m[2] & 1);
    out[i + 3] = static_cast<uint8_t>(m[3] & 1);
  }
  for (; i < n; ++i) out[i] = ScalarPred(a[i], op, lit);
}

// --- Compare: int32 (dictionary codes) ---------------------------------

void CompareI32LitMaskScalar(const int32_t* a, size_t n, CmpOp op,
                             int32_t lit, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = ScalarPred(a[i], op, lit);
}

ECODB_SIMD_CLONES
void CompareI32LitMaskVector(const int32_t* a, size_t n, CmpOp op,
                             int32_t lit, uint8_t* out) {
  const I32x8 vb = {lit, lit, lit, lit, lit, lit, lit, lit};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const I32x8 va = LoadV<I32x8>(a + i);
    const I32x8 lt = va < vb;
    const I32x8 gt = va > vb;
    I32x8 m = {};
    switch (op) {
      case CmpOp::kEq:
        m = ~(lt | gt);
        break;
      case CmpOp::kNe:
        m = lt | gt;
        break;
      case CmpOp::kLt:
        m = lt;
        break;
      case CmpOp::kLe:
        m = ~gt;
        break;
      case CmpOp::kGt:
        m = gt;
        break;
      case CmpOp::kGe:
        m = ~lt;
        break;
    }
    for (int j = 0; j < 8; ++j) {
      out[i + static_cast<size_t>(j)] = static_cast<uint8_t>(m[j] & 1);
    }
  }
  for (; i < n; ++i) out[i] = ScalarPred(a[i], op, lit);
}

// --- Compare: double (NaN-correct per the three-way-compare rule) ------

void CompareF64LitMaskScalar(const double* a, size_t n, CmpOp op, double lit,
                             uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = ScalarPred(a[i], op, lit);
}

ECODB_SIMD_CLONES
void CompareF64LitMaskVector(const double* a, size_t n, CmpOp op, double lit,
                             uint8_t* out) {
  const F64x4 vb = {lit, lit, lit, lit};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 va = LoadV<F64x4>(a + i);
    // Ordered <,> are false when either side is NaN, which reproduces
    // cmp==0 (and thus the kEq/kLe/kGe-accept-NaN behavior) exactly.
    const I64x4 lt = va < vb;
    const I64x4 gt = va > vb;
    I64x4 m = {};
    switch (op) {
      case CmpOp::kEq:
        m = ~(lt | gt);
        break;
      case CmpOp::kNe:
        m = lt | gt;
        break;
      case CmpOp::kLt:
        m = lt;
        break;
      case CmpOp::kLe:
        m = ~gt;
        break;
      case CmpOp::kGt:
        m = gt;
        break;
      case CmpOp::kGe:
        m = ~lt;
        break;
    }
    out[i + 0] = static_cast<uint8_t>(m[0] & 1);
    out[i + 1] = static_cast<uint8_t>(m[1] & 1);
    out[i + 2] = static_cast<uint8_t>(m[2] & 1);
    out[i + 3] = static_cast<uint8_t>(m[3] & 1);
  }
  for (; i < n; ++i) out[i] = ScalarPred(a[i], op, lit);
}

// --- Double arithmetic -------------------------------------------------
//
// One IEEE operation per element — bit-exact on every ISA (no FMA
// contraction: each kernel performs a single op, so there is nothing to
// contract).

void ArithF64ColColScalar(ArithKind k, const double* a, const double* b,
                          size_t n, double* out) {
  switch (k) {
    case ArithKind::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
      return;
    case ArithKind::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
      return;
    case ArithKind::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
      return;
    case ArithKind::kDiv:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] / b[i];
      return;
  }
}

ECODB_SIMD_CLONES
void ArithF64ColColVector(ArithKind k, const double* a, const double* b,
                          size_t n, double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 va = LoadV<F64x4>(a + i);
    const F64x4 vb = LoadV<F64x4>(b + i);
    F64x4 r = {};
    switch (k) {
      case ArithKind::kAdd:
        r = va + vb;
        break;
      case ArithKind::kSub:
        r = va - vb;
        break;
      case ArithKind::kMul:
        r = va * vb;
        break;
      case ArithKind::kDiv:
        r = va / vb;
        break;
    }
    StoreV(out + i, r);
  }
  for (; i < n; ++i) {
    switch (k) {
      case ArithKind::kAdd:
        out[i] = a[i] + b[i];
        break;
      case ArithKind::kSub:
        out[i] = a[i] - b[i];
        break;
      case ArithKind::kMul:
        out[i] = a[i] * b[i];
        break;
      case ArithKind::kDiv:
        out[i] = a[i] / b[i];
        break;
    }
  }
}

void ArithF64ColScalarScalar(ArithKind k, const double* a, double b, size_t n,
                             double* out) {
  switch (k) {
    case ArithKind::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] + b;
      return;
    case ArithKind::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] - b;
      return;
    case ArithKind::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] * b;
      return;
    case ArithKind::kDiv:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] / b;
      return;
  }
}

ECODB_SIMD_CLONES
void ArithF64ColScalarVector(ArithKind k, const double* a, double b, size_t n,
                             double* out) {
  const F64x4 vb = {b, b, b, b};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 va = LoadV<F64x4>(a + i);
    F64x4 r = {};
    switch (k) {
      case ArithKind::kAdd:
        r = va + vb;
        break;
      case ArithKind::kSub:
        r = va - vb;
        break;
      case ArithKind::kMul:
        r = va * vb;
        break;
      case ArithKind::kDiv:
        r = va / vb;
        break;
    }
    StoreV(out + i, r);
  }
  for (; i < n; ++i) {
    switch (k) {
      case ArithKind::kAdd:
        out[i] = a[i] + b;
        break;
      case ArithKind::kSub:
        out[i] = a[i] - b;
        break;
      case ArithKind::kMul:
        out[i] = a[i] * b;
        break;
      case ArithKind::kDiv:
        out[i] = a[i] / b;
        break;
    }
  }
}

void ArithF64ScalarColScalar(ArithKind k, double a, const double* b, size_t n,
                             double* out) {
  switch (k) {
    case ArithKind::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a + b[i];
      return;
    case ArithKind::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a - b[i];
      return;
    case ArithKind::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a * b[i];
      return;
    case ArithKind::kDiv:
      for (size_t i = 0; i < n; ++i) out[i] = a / b[i];
      return;
  }
}

ECODB_SIMD_CLONES
void ArithF64ScalarColVector(ArithKind k, double a, const double* b, size_t n,
                             double* out) {
  const F64x4 va = {a, a, a, a};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 vb = LoadV<F64x4>(b + i);
    F64x4 r = {};
    switch (k) {
      case ArithKind::kAdd:
        r = va + vb;
        break;
      case ArithKind::kSub:
        r = va - vb;
        break;
      case ArithKind::kMul:
        r = va * vb;
        break;
      case ArithKind::kDiv:
        r = va / vb;
        break;
    }
    StoreV(out + i, r);
  }
  for (; i < n; ++i) {
    switch (k) {
      case ArithKind::kAdd:
        out[i] = a + b[i];
        break;
      case ArithKind::kSub:
        out[i] = a - b[i];
        break;
      case ArithKind::kMul:
        out[i] = a * b[i];
        break;
      case ArithKind::kDiv:
        out[i] = a / b[i];
        break;
    }
  }
}

// --- int64 -> double ---------------------------------------------------

void ConvertI64ToF64Scalar(const int64_t* in, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(in[i]);
}

ECODB_SIMD_CLONES
void ConvertI64ToF64Vector(const int64_t* in, size_t n, double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const I64x4 v = LoadV<I64x4>(in + i);
    StoreV(out + i, __builtin_convertvector(v, F64x4));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(in[i]);
}

// --- Byte-mask OR ------------------------------------------------------

void OrMasksScalar(const uint8_t* a, const uint8_t* b, size_t n,
                   uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(a[i] | b[i]);
  }
}

ECODB_SIMD_CLONES
void OrMasksVector(const uint8_t* a, const uint8_t* b, size_t n,
                   uint8_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const U8x16 va = LoadV<U8x16>(a + i);
    const U8x16 vb = LoadV<U8x16>(b + i);
    StoreV(out + i, static_cast<U8x16>(va | vb));
  }
  for (; i < n; ++i) out[i] = static_cast<uint8_t>(a[i] | b[i]);
}

// --- Hash combine ------------------------------------------------------

void HashCombineBatchScalar(size_t* h, const size_t* vh, size_t n) {
  for (size_t i = 0; i < n; ++i) h[i] = HashCombineKey(h[i], vh[i]);
}

ECODB_SIMD_CLONES
void HashCombineBatchVector(size_t* h, const size_t* vh, size_t n) {
  static_assert(sizeof(size_t) == sizeof(uint64_t),
                "batch hash combine assumes 64-bit size_t");
  const U64x4 c = {0x9E3779B9ULL, 0x9E3779B9ULL, 0x9E3779B9ULL,
                   0x9E3779B9ULL};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const U64x4 vhh = LoadV<U64x4>(h + i);
    const U64x4 vvh = LoadV<U64x4>(vh + i);
    // h ^ (vh + C + (h<<6) + (h>>2)), elementwise: integer ops are exact.
    const U64x4 r = vhh ^ (vvh + c + (vhh << 6) + (vhh >> 2));
    StoreV(h + i, r);
  }
  for (; i < n; ++i) h[i] = HashCombineKey(h[i], vh[i]);
}

}  // namespace detail

// --- Dispatchers -------------------------------------------------------

void CompareI64LitMask(const int64_t* a, size_t n, CmpOp op, int64_t lit,
                       uint8_t* out) {
  if (Enabled()) {
    detail::CompareI64LitMaskVector(a, n, op, lit, out);
  } else {
    detail::CompareI64LitMaskScalar(a, n, op, lit, out);
  }
}

void CompareI32LitMask(const int32_t* a, size_t n, CmpOp op, int32_t lit,
                       uint8_t* out) {
  if (Enabled()) {
    detail::CompareI32LitMaskVector(a, n, op, lit, out);
  } else {
    detail::CompareI32LitMaskScalar(a, n, op, lit, out);
  }
}

void CompareF64LitMask(const double* a, size_t n, CmpOp op, double lit,
                       uint8_t* out) {
  if (Enabled()) {
    detail::CompareF64LitMaskVector(a, n, op, lit, out);
  } else {
    detail::CompareF64LitMaskScalar(a, n, op, lit, out);
  }
}

void ArithF64ColCol(ArithKind k, const double* a, const double* b, size_t n,
                    double* out) {
  if (Enabled()) {
    detail::ArithF64ColColVector(k, a, b, n, out);
  } else {
    detail::ArithF64ColColScalar(k, a, b, n, out);
  }
}

void ArithF64ColScalar(ArithKind k, const double* a, double b, size_t n,
                       double* out) {
  if (Enabled()) {
    detail::ArithF64ColScalarVector(k, a, b, n, out);
  } else {
    detail::ArithF64ColScalarScalar(k, a, b, n, out);
  }
}

void ArithF64ScalarCol(ArithKind k, double a, const double* b, size_t n,
                       double* out) {
  if (Enabled()) {
    detail::ArithF64ScalarColVector(k, a, b, n, out);
  } else {
    detail::ArithF64ScalarColScalar(k, a, b, n, out);
  }
}

void ConvertI64ToF64(const int64_t* in, size_t n, double* out) {
  if (Enabled()) {
    detail::ConvertI64ToF64Vector(in, n, out);
  } else {
    detail::ConvertI64ToF64Scalar(in, n, out);
  }
}

void OrMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
  if (Enabled()) {
    detail::OrMasksVector(a, b, n, out);
  } else {
    detail::OrMasksScalar(a, b, n, out);
  }
}

void HashCombineBatch(size_t* h, const size_t* vh, size_t n) {
  if (Enabled()) {
    detail::HashCombineBatchVector(h, vh, n);
  } else {
    detail::HashCombineBatchScalar(h, vh, n);
  }
}

}  // namespace simd
}  // namespace ecodb

// ChargeRecord/ChargeLog: a replayable trace of logical-work charges.
//
// Morsel workers execute their per-morsel operator trees against
// *recording* ExecContexts (see ExecContext::BeginRecording): every
// Charge* call appends one record here instead of touching the shared
// Machine. The coordinator later replays each morsel's log — in global
// morsel order — through its own (normal) context, so the machine sees
// the exact charge sequence single-threaded execution would have
// produced: bit-exact integer counters, identical flush-quantum
// boundaries, identical energy integration.
//
// Pipeline breakers go one step further (canonical charge accounting,
// exec/morsel.cc): a worker's recorded log carries only the stateless
// spine charges, while the breaker's own order-sensitive charges (hash
// builds, chain walks, accumulator updates, sort compares) are
// re-issued by the coordinator as it merges worker partitions in
// global row order. Workers' as-if-local breaker work goes to scratch
// logs that feed only worker stats — never a replay.

#ifndef ECODB_EXEC_CHARGE_LOG_H_
#define ECODB_EXEC_CHARGE_LOG_H_

#include <cstdint>
#include <vector>

namespace ecodb {

struct ChargeRecord {
  enum class Kind : uint8_t {
    kScanTuples,    ///< a = n, b = total_bytes
    kHashBuilds,    ///< a = n, b = key_bytes
    kHashProbes,    ///< a = n, b = key_bytes
    kAggUpdates,    ///< a = n, b = n_aggregates
    kSortCompares,  ///< a = n
    kOutputTuples,  ///< a = n, b = bytes_per_tuple
    kEvalOps,       ///< a = comparisons, b = arith_ops (drained together)
    kCycles,        ///< x = cycles, y = mem_lines
  };

  Kind kind;
  uint64_t a = 0;
  uint64_t b = 0;
  double x = 0.0;
  double y = 0.0;
};

using ChargeLog = std::vector<ChargeRecord>;

}  // namespace ecodb

#endif  // ECODB_EXEC_CHARGE_LOG_H_

#include "ecodb/exec/query_task.h"

namespace ecodb {

QueryTask::~QueryTask() {
  // Abandoned mid-run (scheduler shutdown): tear down like a failure so
  // operator pools and tracked bytes never outlive the task.
  if (state_ == State::kRunning) {
    ctx_->memory_tracker()->Release(result_bytes_);
    op_->Close();
  }
}

void QueryTask::Govern(const QueryLimits& limits, double start_seconds) {
  if (limits.None()) return;
  governor_ = std::make_unique<QueryGovernor>(limits, start_seconds);
  ctx_->set_governor(governor_.get());
}

QueryTask::State QueryTask::Fail(const Status& status) {
  ctx_->memory_tracker()->Release(result_bytes_);
  if (op_ != nullptr) op_->Close();
  status_ = status;
  state_ = State::kFailed;
  return state_;
}

QueryTask::State QueryTask::Step() {
  switch (state_) {
    case State::kDone:
    case State::kFailed:
      return state_;

    case State::kCreated: {
      // Mirrors ExecutePlanColumnar's preamble: validate, instantiate,
      // open. Pipeline breakers (sort, hash build, aggregation) do their
      // full materialization inside Open, consulting the governor at
      // their internal consume-loop checkpoints.
      Status st = ValidatePlan(*plan_);
      if (!st.ok()) return Fail(st);
      ctx_->set_exec_mode(mode_);
      auto op = InstantiatePlan(*plan_, ctx_.get());
      if (!op.ok()) return Fail(op.status());
      op_ = std::move(op.value());
      st = op_->Open();
      if (!st.ok()) return Fail(st);
      set_.Reset(op_->schema());
      width_ = op_->schema().RowWidth();
      state_ = State::kRunning;
      return state_;
    }

    case State::kRunning: {
      // One drain iteration of ExecuteOperatorColumnar, governor check
      // included. Row mode pulls up to one batch's worth of rows so a
      // step is comparable work in both modes.
      MemoryTracker* tracker = ctx_->memory_tracker();
      Status st = ctx_->CheckGovernor();
      if (!st.ok()) return Fail(st);
      if (mode_ == ExecMode::kBatch) {
        bool has = false;
        st = op_->NextBatch(&batch_, &has);
        if (!st.ok()) return Fail(st);
        if (has) {
          ctx_->ChargeOutputTuples(batch_.active(), width_);
          const uint64_t rb = static_cast<uint64_t>(batch_.active()) *
                              static_cast<uint64_t>(width_);
          tracker->Charge(rb);
          result_bytes_ += rb;
          set_.AppendBatch(batch_);
          return state_;
        }
      } else {
        Row row;
        for (size_t i = 0; i < RowBatch::kDefaultBatchRows; ++i) {
          bool has = false;
          st = ctx_->CheckGovernor();
          if (st.ok()) st = op_->Next(&row, &has);
          if (!st.ok()) return Fail(st);
          if (!has) goto drained;
          ctx_->ChargeOutputTuple(width_);
          tracker->Charge(static_cast<uint64_t>(width_));
          result_bytes_ += static_cast<uint64_t>(width_);
          set_.AppendRow(row);
        }
        return state_;
      }
    drained:
      tracker->Release(result_bytes_);
      result_bytes_ = 0;
      op_->Close();
      ctx_->Flush();
      state_ = State::kDone;
      return state_;
    }
  }
  return state_;
}

}  // namespace ecodb

#include "ecodb/exec/morsel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ecodb/util/strings.h"

namespace ecodb {

namespace {

/// One queue entry from a worker: either a batch (with the charge-log
/// segment recorded while producing it) or a morsel-done marker (whose
/// segment carries the trailing charges of the final, empty pull). An
/// error status terminates the worker's stream at that morsel.
struct MorselItem {
  RowBatch batch;
  ChargeLog charges;
  bool has_batch = false;
  bool morsel_done = false;
  Status status;
};

/// Bounded MPSC-free queue: exactly one worker pushes, the coordinator
/// pops. Push blocks while full (backpressure keeps memory bounded) and
/// bails out when the stream is cancelled; Pop blocks while empty —
/// safe because a live worker always delivers either the next item or
/// an error marker before exiting.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  bool Push(MorselItem item, const std::atomic<bool>& cancel) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_push_.wait(lock, [&] {
      return items_.size() < capacity_ || cancel.load(std::memory_order_relaxed);
    });
    if (cancel.load(std::memory_order_relaxed)) return false;
    items_.push_back(std::move(item));
    cv_pop_.notify_one();
    return true;
  }

  MorselItem Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_pop_.wait(lock, [&] { return !items_.empty(); });
    MorselItem item = std::move(items_.front());
    items_.pop_front();
    cv_push_.notify_one();
    return item;
  }

  /// Wakes a producer blocked in Push after `cancel` was set.
  void WakeProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    cv_push_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_push_, cv_pop_;
  std::deque<MorselItem> items_;
  size_t capacity_;
};

Result<OperatorPtr> InstantiateParallel(const PlanNode& node, ExecContext* ctx,
                                        bool full_drain);

/// Builds a worker's operator tree for one morsel of a spine: the scan
/// leaf restricted to [begin_row, end_row), joins in probe-only mode
/// over the coordinator-built shared state. `next_build` walks `builds`
/// in the same top-down order ExecuteSpineBuilds produced it.
Result<OperatorPtr> BuildMorselTree(
    const PlanNode& node, ExecContext* ctx, uint64_t begin_row,
    uint64_t end_row, const std::vector<JoinBuildStatePtr>& builds,
    size_t* next_build) {
  switch (node.kind) {
    case PlanKind::kScan:
      return OperatorPtr(std::make_unique<SeqScanOp>(ctx, node.table_name,
                                                     begin_row, end_row));
    case PlanKind::kFilter: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          BuildMorselTree(*node.children[0], ctx, begin_row, end_row, builds,
                          next_build));
      return OperatorPtr(
          std::make_unique<FilterOp>(ctx, std::move(child), node.predicate));
    }
    case PlanKind::kProject: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          BuildMorselTree(*node.children[0], ctx, begin_row, end_row, builds,
                          next_build));
      return OperatorPtr(std::make_unique<ProjectOp>(
          ctx, std::move(child), node.exprs, node.names));
    }
    case PlanKind::kHashJoin: {
      if (*next_build >= builds.size()) {
        return Status::Internal("morsel spine build-state underflow");
      }
      JoinBuildStatePtr build = builds[(*next_build)++];
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr probe,
          BuildMorselTree(*node.children[1], ctx, begin_row, end_row, builds,
                          next_build));
      return OperatorPtr(std::make_unique<HashJoinOp>(
          ctx, std::move(build), std::move(probe), node.build_keys,
          node.probe_keys));
    }
    default:
      return Status::Internal(
          StrFormat("non-spine node %s in morsel tree", ToString(node.kind)));
  }
}

/// Runs every hash-join build subtree of the spine on the coordinator,
/// outermost join first — the order a single-threaded Open cascade
/// consumes them in, so the coordinator's charge stream matches. Build
/// subtrees are full-drain slots and may themselves be parallelized
/// (a nested morsel stream feeding the sequential insert loop).
Status ExecuteSpineBuilds(const PlanNode& node, ExecContext* ctx,
                          std::vector<JoinBuildStatePtr>* builds) {
  switch (node.kind) {
    case PlanKind::kScan:
      return Status::OK();
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return ExecuteSpineBuilds(*node.children[0], ctx, builds);
    case PlanKind::kHashJoin: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr build_child,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
      ECODB_ASSIGN_OR_RETURN(
          JoinBuildStatePtr state,
          HashJoinOp::ExecuteBuild(ctx, build_child.get(), node.build_keys));
      builds->push_back(std::move(state));
      return ExecuteSpineBuilds(*node.children[1], ctx, builds);
    }
    default:
      return Status::Internal(
          StrFormat("non-spine node %s in morsel spine", ToString(node.kind)));
  }
}

/// The parallel spine operator. Open builds shared join state, carves
/// the base table into morsels and spawns workers; NextBatch re-emits
/// worker batches in global morsel order, replaying each batch's
/// recorded charges into the coordinator context first; Close joins the
/// pool, folds worker totals into the per-core ledgers and tears down
/// the shared build state (the single-threaded Close position).
class MorselStreamOp : public Operator {
 public:
  MorselStreamOp(ExecContext* ctx, const PlanNode& spine, int workers)
      : ctx_(ctx),
        spine_(ClonePlan(spine)),
        schema_(spine.output_schema),
        requested_workers_(workers < 1 ? 1 : workers) {}

  ~MorselStreamOp() override { StopWorkers(); }

  Status Open() override {
    ECODB_RETURN_NOT_OK(ExecuteSpineBuilds(*spine_, ctx_, &builds_));
    const PlanNode* leaf = spine_.get();
    while (leaf->kind != PlanKind::kScan) {
      leaf = leaf->children[leaf->kind == PlanKind::kHashJoin ? 1 : 0].get();
    }
    const Table* table = ctx_->catalog()->FindTable(leaf->table_name);
    if (table == nullptr) {
      return Status::NotFound(
          StrFormat("table not found: %s", leaf->table_name.c_str()));
    }
    total_rows_ = table->num_rows();
    num_morsels_ = (total_rows_ + kMorselRows - 1) / kMorselRows;
    next_morsel_ = 0;
    if (num_morsels_ > 0) {
      num_workers_ = static_cast<size_t>(std::min<uint64_t>(
          static_cast<uint64_t>(requested_workers_), num_morsels_));
      queues_.reserve(num_workers_);
      worker_ctxs_.reserve(num_workers_);
      for (size_t w = 0; w < num_workers_; ++w) {
        queues_.push_back(std::make_unique<BoundedQueue>(kQueueCapacity));
        // No governor, no buffer pool: workers only drive ungoverned,
        // memory-resident pipelines (Database clamps exec_workers).
        worker_ctxs_.push_back(std::make_unique<ExecContext>(
            ctx_->machine(), &ctx_->profile(), ctx_->catalog(), nullptr));
        worker_ctxs_.back()->set_exec_mode(ExecMode::kBatch);
      }
      threads_.reserve(num_workers_);
      for (size_t w = 0; w < num_workers_; ++w) {
        threads_.emplace_back(&MorselStreamOp::WorkerLoop, this, w);
      }
    }
    return Status::OK();
  }

  Status Next(Row* out, bool* has_row) override {
    (void)out;
    *has_row = false;
    return Status::Internal("MorselStream has no row-at-a-time pull");
  }

  Status NextBatch(RowBatch* out, bool* has_rows) override {
    *has_rows = false;
    while (next_morsel_ < num_morsels_) {
      MorselItem item = queues_[next_morsel_ % num_workers_]->Pop();
      // Replay before inspecting: whatever the worker charged up to this
      // point (including a partial morsel before an error) lands in the
      // coordinator's ledger at the single-threaded position.
      if (!item.charges.empty()) ctx_->ReplayChargeLog(item.charges);
      if (!item.status.ok()) return item.status;
      if (item.morsel_done) {
        ++next_morsel_;
        continue;
      }
      *out = std::move(item.batch);
      *has_rows = true;
      return Status::OK();
    }
    return Status::OK();
  }

  void Close() override {
    StopWorkers();
    // Fold each worker's charged totals into its core's ledger — the
    // additive concurrency view for per-core P-state experiments. The
    // shared EnergyLedger already received this work via replay.
    Machine* machine = ctx_->machine();
    for (size_t w = 0; w < worker_ctxs_.size(); ++w) {
      const QueryExecStats& s = worker_ctxs_[w]->stats();
      machine->AccrueCoreWork(static_cast<int>(w % machine->num_cores()),
                              s.cycles_charged, s.mem_lines_charged,
                              ctx_->load_class());
    }
    worker_ctxs_.clear();
    queues_.clear();
    for (JoinBuildStatePtr& b : builds_) {
      if (b != nullptr) b->Clear();
    }
    builds_.clear();
    ctx_->Flush();
  }

  const Schema& schema() const override { return schema_; }
  std::string name() const override {
    return StrFormat("MorselStream(workers=%d)", requested_workers_);
  }

 private:
  // Per-worker queue headroom, in batch items. A morsel is 16 batches, so
  // this lets each worker run two full morsels ahead of the in-order
  // coordinator; anything much smaller (an early revision used 4) lets the
  // producers stall on a quarter-morsel of buffering and serializes the
  // pipeline behind the coordinator's drain.
  static constexpr size_t kQueueCapacity =
      2 * kMorselRows / RowBatch::kDefaultBatchRows;

  void StopWorkers() {
    cancel_.store(true, std::memory_order_relaxed);
    for (auto& q : queues_) q->WakeProducer();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  /// Worker w processes morsels w, w + W, w + 2W, ... in order, each
  /// with a fresh spine clone, recording charges instead of touching
  /// the machine. One ExecContext per worker accumulates its totals
  /// across morsels (per-core accrual reads them at Close).
  void WorkerLoop(size_t w) {
    ExecContext* ctx = worker_ctxs_[w].get();
    ChargeLog log;
    ctx->BeginRecording(&log);
    for (uint64_t m = w; m < num_morsels_; m += num_workers_) {
      if (cancel_.load(std::memory_order_relaxed)) break;
      const uint64_t begin = m * kMorselRows;
      const uint64_t end = std::min(begin + kMorselRows, total_rows_);
      OperatorPtr op;
      size_t next_build = 0;
      Status st;
      {
        Result<OperatorPtr> tree =
            BuildMorselTree(*spine_, ctx, begin, end, builds_, &next_build);
        if (tree.ok()) {
          op = std::move(tree).value();
          st = op->Open();
        } else {
          st = tree.status();
        }
      }
      while (st.ok()) {
        RowBatch batch;
        bool has = false;
        st = op->NextBatch(&batch, &has);
        if (!st.ok() || !has) break;
        MorselItem item;
        item.batch = std::move(batch);
        item.has_batch = true;
        item.charges = std::move(log);
        log.clear();
        if (!queues_[w]->Push(std::move(item), cancel_)) return;
      }
      if (op != nullptr) op->Close();  // folds pending into worker stats
      MorselItem done;
      done.morsel_done = true;
      done.status = st;
      done.charges = std::move(log);
      log.clear();
      if (!queues_[w]->Push(std::move(done), cancel_)) return;
      if (!st.ok()) return;  // coordinator stops at this morsel's marker
    }
    ctx->Flush();
  }

  ExecContext* ctx_;
  PlanNodePtr spine_;
  Schema schema_;
  int requested_workers_;

  std::vector<JoinBuildStatePtr> builds_;  ///< spine joins, outermost first
  uint64_t total_rows_ = 0;
  uint64_t num_morsels_ = 0;
  uint64_t next_morsel_ = 0;
  size_t num_workers_ = 0;

  std::vector<std::unique_ptr<BoundedQueue>> queues_;      ///< one per worker
  std::vector<std::unique_ptr<ExecContext>> worker_ctxs_;  ///< one per worker
  std::vector<std::thread> threads_;
  std::atomic<bool> cancel_{false};
};

Result<OperatorPtr> InstantiateParallel(const PlanNode& node, ExecContext* ctx,
                                        bool full_drain) {
  if (full_drain && ctx->exec_workers() > 1 && MorselEligibleSpine(node)) {
    return OperatorPtr(
        std::make_unique<MorselStreamOp>(ctx, node, ctx->exec_workers()));
  }
  switch (node.kind) {
    case PlanKind::kScan:
      return OperatorPtr(std::make_unique<SeqScanOp>(ctx, node.table_name));
    case PlanKind::kFilter: {
      // A filter drains its child exactly when it is drained itself.
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, full_drain));
      return OperatorPtr(
          std::make_unique<FilterOp>(ctx, std::move(child), node.predicate));
    }
    case PlanKind::kProject: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, full_drain));
      return OperatorPtr(std::make_unique<ProjectOp>(
          ctx, std::move(child), node.exprs, node.names));
    }
    case PlanKind::kHashJoin: {
      // The build side is consumed to completion at Open regardless of
      // how far the join itself is driven; the probe side inherits.
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr build,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr probe,
          InstantiateParallel(*node.children[1], ctx, full_drain));
      return OperatorPtr(std::make_unique<HashJoinOp>(
          ctx, std::move(build), std::move(probe), node.build_keys,
          node.probe_keys));
    }
    case PlanKind::kNestedLoopJoin: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr outer,
          InstantiateParallel(*node.children[0], ctx, full_drain));
      // Inner side is materialized at Open (always fully drained).
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr inner,
          InstantiateParallel(*node.children[1], ctx, /*full_drain=*/true));
      return OperatorPtr(std::make_unique<NestedLoopJoinOp>(
          ctx, std::move(outer), std::move(inner), node.predicate));
    }
    case PlanKind::kAggregate: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
      return OperatorPtr(std::make_unique<HashAggOp>(
          ctx, std::move(child), node.group_by, node.aggs));
    }
    case PlanKind::kSort: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
      return OperatorPtr(
          std::make_unique<SortOp>(ctx, std::move(child), node.sort_keys));
    }
    case PlanKind::kLimit: {
      // A limit may stop pulling a *streaming* child early; such a child
      // is never wrapped. Materialized children (sort/agg) do all their
      // work at Open and their own children are full-drain slots.
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/false));
      return OperatorPtr(
          std::make_unique<LimitOp>(ctx, std::move(child), node.limit));
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

bool MorselEligibleSpine(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan:
      return true;
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return MorselEligibleSpine(*node.children[0]);
    case PlanKind::kHashJoin:
      return MorselEligibleSpine(*node.children[1]);
    default:
      return false;
  }
}

Result<OperatorPtr> InstantiateParallelPlan(const PlanNode& node,
                                            ExecContext* ctx) {
  // The root of a plan is drained to end-of-stream by
  // ExecuteOperatorColumnar, so it is a full-drain slot.
  return InstantiateParallel(node, ctx, /*full_drain=*/true);
}

}  // namespace ecodb

#include "ecodb/exec/morsel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ecodb/exec/hash_table.h"
#include "ecodb/exec/operators.h"
#include "ecodb/exec/query_governor.h"
#include "ecodb/storage/value.h"
#include "ecodb/util/bounded_queue.h"
#include "ecodb/util/strings.h"

namespace ecodb {

namespace {

Result<OperatorPtr> InstantiateParallel(const PlanNode& node, ExecContext* ctx,
                                        bool full_drain);
Status ExecuteSpineBuilds(const PlanNode& node, ExecContext* ctx,
                          std::vector<JoinBuildStatePtr>* builds);
Result<JoinBuildStatePtr> ExecuteParallelSpineBuild(
    const PlanNode& build_plan, const std::vector<int>& build_keys,
    ExecContext* ctx);

/// Builds a worker's operator tree for one morsel of a spine: the scan
/// leaf restricted to [begin_row, end_row), joins in probe-only mode
/// over the coordinator-built shared state. `next_build` walks `builds`
/// in the same top-down order ExecuteSpineBuilds produced it.
Result<OperatorPtr> BuildMorselTree(
    const PlanNode& node, ExecContext* ctx, uint64_t begin_row,
    uint64_t end_row, const std::vector<JoinBuildStatePtr>& builds,
    size_t* next_build) {
  switch (node.kind) {
    case PlanKind::kScan:
      return OperatorPtr(std::make_unique<SeqScanOp>(ctx, node.table_name,
                                                     begin_row, end_row));
    case PlanKind::kFilter: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          BuildMorselTree(*node.children[0], ctx, begin_row, end_row, builds,
                          next_build));
      return OperatorPtr(
          std::make_unique<FilterOp>(ctx, std::move(child), node.predicate));
    }
    case PlanKind::kProject: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          BuildMorselTree(*node.children[0], ctx, begin_row, end_row, builds,
                          next_build));
      return OperatorPtr(std::make_unique<ProjectOp>(
          ctx, std::move(child), node.exprs, node.names));
    }
    case PlanKind::kHashJoin: {
      if (*next_build >= builds.size()) {
        return Status::Internal("morsel spine build-state underflow");
      }
      JoinBuildStatePtr build = builds[(*next_build)++];
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr probe,
          BuildMorselTree(*node.children[1], ctx, begin_row, end_row, builds,
                          next_build));
      return OperatorPtr(std::make_unique<HashJoinOp>(
          ctx, std::move(build), std::move(probe), node.build_keys,
          node.probe_keys));
    }
    default:
      return Status::Internal(
          StrFormat("non-spine node %s in morsel tree", ToString(node.kind)));
  }
}

/// Row count of the spine's scan leaf — the morsel-partitioning domain.
Result<uint64_t> SpineLeafRowCount(const PlanNode& spine, ExecContext* ctx) {
  const PlanNode* leaf = &spine;
  while (leaf->kind != PlanKind::kScan) {
    leaf = leaf->children[leaf->kind == PlanKind::kHashJoin ? 1 : 0].get();
  }
  const Table* table = ctx->catalog()->FindTable(leaf->table_name);
  if (table == nullptr) {
    return Status::NotFound(
        StrFormat("table not found: %s", leaf->table_name.c_str()));
  }
  return table->num_rows();
}

/// Diverts a recording context's charges into a discarded scratch log for
/// the scope's lifetime. The charges still update the context's stats_
/// and pending cycles (folded into worker totals at the worker's final
/// Flush — the per-core concurrency view), but never reach the shipped
/// log the coordinator replays into the parity ledger. Breaker workers
/// use this for their as-if-local work: partition hashing, local chain
/// walks, local index sorts — work the coordinator re-issues canonically
/// while merging, which must therefore not ALSO arrive via replay.
class ScopedScratchCharges {
 public:
  explicit ScopedScratchCharges(ExecContext* ctx)
      : ctx_(ctx), prev_(ctx->recording_log()) {
    ctx_->BeginRecording(&scratch_);
  }
  ~ScopedScratchCharges() { ctx_->BeginRecording(prev_); }
  ScopedScratchCharges(const ScopedScratchCharges&) = delete;
  ScopedScratchCharges& operator=(const ScopedScratchCharges&) = delete;

 private:
  ExecContext* ctx_;
  ChargeLog* prev_;
  ChargeLog scratch_;
};

/// Appends every cell of a worker-built fragment column to the
/// operator's global column, with the exact per-cell tracker charges the
/// single-threaded consume loop made for the same cells. Unboxed string
/// fragments are absorbed by pointer: the destination retains the
/// fragment's own arena plus everything the fragment borrowed (table
/// storage needs no retention), so AppendStable is legal for every
/// non-null cell regardless of which branch the worker appended it on —
/// and AppendStable's direct 8+size charge equals Append's 8 + arena-
/// tracked payload. Boxed fragments (a demoted column) re-append by
/// value: their string views point into the fragment's own Value storage,
/// which dies with the item, and the exact round-tripped type tags make
/// the destination demote at the same global ordinal the single-threaded
/// pool did.
void AbsorbFragmentColumn(TypedColumn* dst, const TypedColumn& frag) {
  const uint32_t n = frag.size();
  if (!frag.boxed() &&
      RowBatch::LaneKindFor(frag.type()) == RowBatch::LaneKind::kStringRef) {
    dst->RetainStorageOfColumn(frag);
    for (uint32_t i = 0; i < n; ++i) {
      const CellView v = frag.View(i);
      if (v.is_null()) {
        dst->Append(v);
      } else {
        dst->AppendStable(v);
      }
    }
    return;
  }
  for (uint32_t i = 0; i < n; ++i) dst->Append(frag.View(i));
}

/// Queue headroom for per-batch items (stream batches, aggregation
/// partials, build fragments): a few morsels' worth of batches so
/// producers run well ahead of the in-order coordinator without
/// unbounded buffering.
constexpr size_t kBatchQueueCapacity = 32;
/// Queue headroom for per-morsel items (sorted runs): each item is a
/// whole morsel's columns, so two in flight per worker bounds memory at
/// roughly the streaming case's.
constexpr size_t kSortQueueCapacity = 2;

/// Shared scaffolding of every morsel pool: morsel arithmetic, one
/// bounded queue + one recording ExecContext per worker, thread
/// lifecycle, and the fold of worker totals into the per-core ledgers.
/// Worker w owns morsels w, w + W, w + 2W, ...; the coordinator pops
/// morsel m's items from queue m % W, so in-order consumption of the
/// queues reproduces global morsel order.
template <typename Item>
class MorselPool {
 public:
  MorselPool(ExecContext* ctx, uint64_t total_rows, int requested_workers,
             size_t queue_capacity)
      : ctx_(ctx), total_rows_(total_rows) {
    num_morsels_ = (total_rows + kMorselRows - 1) / kMorselRows;
    if (num_morsels_ > 0) {
      const uint64_t req =
          static_cast<uint64_t>(requested_workers < 1 ? 1 : requested_workers);
      num_workers_ =
          static_cast<size_t>(std::min<uint64_t>(req, num_morsels_));
    }
    queues_.reserve(num_workers_);
    worker_ctxs_.reserve(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      queues_.push_back(
          std::make_unique<BoundedQueue<Item>>(queue_capacity));
      // No governor, no buffer pool: workers only drive ungoverned,
      // memory-resident pipelines (Database clamps exec_workers).
      worker_ctxs_.push_back(std::make_unique<ExecContext>(
          ctx->machine(), &ctx->profile(), ctx->catalog(), nullptr));
      worker_ctxs_.back()->set_exec_mode(ExecMode::kBatch);
    }
  }

  ~MorselPool() { Stop(); }
  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  /// Spawns one thread per worker running fn(w).
  template <typename Fn>
  void Start(Fn&& fn) {
    threads_.reserve(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      threads_.emplace_back(fn, w);
    }
  }

  /// Cancels and joins the pool (idempotent).
  void Stop() {
    cancel_.store(true, std::memory_order_relaxed);
    for (auto& q : queues_) q->WakeProducer();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  /// Stops the pool, folds each worker's charged totals into its core's
  /// ledger (the additive concurrency view for per-core P-state
  /// experiments — the shared EnergyLedger already received the parity
  /// account via replay / canonical re-issue), marks the named machine
  /// phase, and tears down the worker contexts and queues.
  void AccrueWorkerTotals(const char* phase_label) {
    Stop();
    Machine* machine = ctx_->machine();
    for (size_t w = 0; w < worker_ctxs_.size(); ++w) {
      const QueryExecStats& s = worker_ctxs_[w]->stats();
      machine->AccrueCoreWork(static_cast<int>(w % machine->num_cores()),
                              s.cycles_charged, s.mem_lines_charged,
                              ctx_->load_class());
    }
    if (!worker_ctxs_.empty()) machine->MarkCorePhase(phase_label);
    worker_ctxs_.clear();
    queues_.clear();
  }

  uint64_t total_rows() const { return total_rows_; }
  uint64_t num_morsels() const { return num_morsels_; }
  size_t num_workers() const { return num_workers_; }
  BoundedQueue<Item>* queue(size_t w) { return queues_[w].get(); }
  ExecContext* worker_ctx(size_t w) { return worker_ctxs_[w].get(); }
  const std::atomic<bool>& cancel() const { return cancel_; }

 private:
  ExecContext* ctx_;
  uint64_t total_rows_ = 0;
  uint64_t num_morsels_ = 0;
  size_t num_workers_ = 0;
  std::vector<std::unique_ptr<BoundedQueue<Item>>> queues_;
  std::vector<std::unique_ptr<ExecContext>> worker_ctxs_;
  std::vector<std::thread> threads_;
  std::atomic<bool> cancel_{false};
};

// --- Worker → coordinator item types ---

/// One queue entry from a streaming-spine worker: either a batch (with
/// the charge-log segment recorded while producing it) or a morsel-done
/// marker (whose segment carries the trailing charges of the final,
/// empty pull). An error status terminates the worker's stream at that
/// morsel.
struct MorselItem {
  RowBatch batch;
  ChargeLog charges;
  bool has_batch = false;
  bool morsel_done = false;
  Status status;
};

/// How one aggregate's argument travels from worker to coordinator.
/// Mirrors HashAggOp's batch argument modes: COUNT(*) ships nothing, a
/// double-subtree argument ships one dense double per selected row (or
/// one scalar), everything else ships a dense TypedColumn copy of the
/// evaluated operand (exact cell round-trip, string bytes owned by the
/// fragment).
enum class AggArgMode { kCountStar, kTypedDouble, kOperand };

struct AggArgShip {
  AggArgMode mode = AggArgMode::kCountStar;
  bool is_scalar = false;
  double scalar = 0.0;
  std::vector<double> doubles;  ///< dense: doubles[j] for selected row j
  TypedColumn operand;          ///< dense: View(j) for selected row j
};

/// First worker-local occurrence of a group key within a worker's
/// stream: the generic key hash plus the boxed key Row (owns its string
/// bytes — safe to ship across threads).
struct AggNewKey {
  size_t hash = 0;
  Row key;
};

/// One aggregation partial: the spine charges of one batch, the
/// worker-local group ordinal of every selected row, the new keys first
/// seen in this batch (in first-occurrence order — ordinal ==
/// worker-local dense FIFO position), the shipped argument columns, and
/// the breaker's expression-eval counters for the batch.
struct AggItem {
  ChargeLog charges;
  uint32_t n = 0;
  std::vector<uint32_t> ordinals;
  std::vector<AggNewKey> new_keys;
  std::vector<AggArgShip> args;
  EvalCounters evals;
  bool morsel_done = false;
  Status status;
};

/// One locally-sorted run: a whole morsel's spine charges, its input
/// and sort-key fragment columns, the locally sorted permutation of
/// [0, n), and the key-eval counters. One item per morsel.
struct SortItem {
  ChargeLog charges;
  uint32_t n = 0;
  std::vector<TypedColumn> cols;
  std::vector<TypedColumn> keys;
  std::vector<uint32_t> order;
  EvalCounters evals;
  Status status;
};

/// A run's placement in the coordinator's global columns.
struct SortedRun {
  size_t base = 0;                ///< global index of the run's row 0
  std::vector<uint32_t> order;    ///< local sorted permutation
};

/// One hash-join build fragment: the spine charges of one batch, the
/// batch's key hashes (in row order), and its payload fragment columns.
struct BuildItem {
  ChargeLog charges;
  uint32_t n = 0;
  std::vector<size_t> hashes;
  std::vector<TypedColumn> cols;
  bool morsel_done = false;
  Status status;
};

// --- Streaming spine ---

/// The parallel spine operator. Open builds shared join state, carves
/// the base table into morsels and spawns workers; NextBatch re-emits
/// worker batches in global morsel order, replaying each batch's
/// recorded charges into the coordinator context first; Close joins the
/// pool, folds worker totals into the per-core ledgers and tears down
/// the shared build state (the single-threaded Close position).
class MorselStreamOp : public Operator {
 public:
  MorselStreamOp(ExecContext* ctx, const PlanNode& spine, int workers)
      : ctx_(ctx),
        spine_(ClonePlan(spine)),
        schema_(spine.output_schema),
        requested_workers_(workers < 1 ? 1 : workers) {}

  Status Open() override {
    ECODB_RETURN_NOT_OK(ExecuteSpineBuilds(*spine_, ctx_, &builds_));
    ECODB_ASSIGN_OR_RETURN(const uint64_t total_rows,
                           SpineLeafRowCount(*spine_, ctx_));
    next_morsel_ = 0;
    pool_ = std::make_unique<MorselPool<MorselItem>>(
        ctx_, total_rows, requested_workers_, kBatchQueueCapacity);
    pool_->Start([this](size_t w) { WorkerLoop(w); });
    return Status::OK();
  }

  Status Next(Row* out, bool* has_row) override {
    (void)out;
    *has_row = false;
    return Status::Internal("MorselStream has no row-at-a-time pull");
  }

  Status NextBatch(RowBatch* out, bool* has_rows) override {
    *has_rows = false;
    while (next_morsel_ < pool_->num_morsels()) {
      MorselItem item =
          pool_->queue(next_morsel_ % pool_->num_workers())->Pop();
      // Replay before inspecting: whatever the worker charged up to this
      // point (including a partial morsel before an error) lands in the
      // coordinator's ledger at the single-threaded position.
      if (!item.charges.empty()) ctx_->ReplayChargeLog(item.charges);
      if (!item.status.ok()) return item.status;
      if (item.morsel_done) {
        ++next_morsel_;
        continue;
      }
      *out = std::move(item.batch);
      *has_rows = true;
      return Status::OK();
    }
    return Status::OK();
  }

  void Close() override {
    if (pool_ != nullptr) {
      pool_->AccrueWorkerTotals("stream");
      pool_.reset();
    }
    for (JoinBuildStatePtr& b : builds_) {
      if (b != nullptr) b->Clear();
    }
    builds_.clear();
    ctx_->Flush();
  }

  const Schema& schema() const override { return schema_; }
  std::string name() const override {
    return StrFormat("MorselStream(workers=%d)", requested_workers_);
  }

 private:
  /// Worker w processes morsels w, w + W, w + 2W, ... in order, each
  /// with a fresh spine clone, recording charges instead of touching
  /// the machine. One ExecContext per worker accumulates its totals
  /// across morsels (per-core accrual reads them at Close).
  void WorkerLoop(size_t w) {
    ExecContext* ctx = pool_->worker_ctx(w);
    ChargeLog log;
    ctx->BeginRecording(&log);
    const uint64_t num_morsels = pool_->num_morsels();
    const size_t num_workers = pool_->num_workers();
    const uint64_t total_rows = pool_->total_rows();
    for (uint64_t m = w; m < num_morsels; m += num_workers) {
      if (pool_->cancel().load(std::memory_order_relaxed)) break;
      const uint64_t begin = m * kMorselRows;
      const uint64_t end = std::min(begin + kMorselRows, total_rows);
      OperatorPtr op;
      size_t next_build = 0;
      Status st;
      {
        Result<OperatorPtr> tree =
            BuildMorselTree(*spine_, ctx, begin, end, builds_, &next_build);
        if (tree.ok()) {
          op = std::move(tree).value();
          st = op->Open();
        } else {
          st = tree.status();
        }
      }
      while (st.ok()) {
        RowBatch batch;
        bool has = false;
        st = op->NextBatch(&batch, &has);
        if (!st.ok() || !has) break;
        MorselItem item;
        item.batch = std::move(batch);
        item.has_batch = true;
        item.charges = std::move(log);
        log.clear();
        if (!pool_->queue(w)->Push(std::move(item), pool_->cancel())) return;
      }
      if (op != nullptr) op->Close();  // folds pending into worker stats
      MorselItem done;
      done.morsel_done = true;
      done.status = st;
      done.charges = std::move(log);
      log.clear();
      if (!pool_->queue(w)->Push(std::move(done), pool_->cancel())) return;
      if (!st.ok()) return;  // coordinator stops at this morsel's marker
    }
    ctx->Flush();
  }

  ExecContext* ctx_;
  PlanNodePtr spine_;
  Schema schema_;
  int requested_workers_;

  std::vector<JoinBuildStatePtr> builds_;  ///< spine joins, outermost first
  uint64_t next_morsel_ = 0;
  std::unique_ptr<MorselPool<MorselItem>> pool_;
};

}  // namespace

// --- Breaker drivers ---
//
// Friended by HashAggOp / SortOp: they rebuild the operators' private
// consume state from worker-shipped partitions while re-issuing the
// exact single-threaded charge stream (canonical charge accounting).
// Defined at namespace scope to match the friend declarations; their
// helper types live in this file's unnamed namespace.

class MorselAggDriver {
 public:
  /// Runs the full morsel-parallel aggregation: spine builds at the
  /// child-Open position, workers computing partial groupings, the
  /// coordinator's deterministic merge, and HashAggOp::Open's tail
  /// (materialize, governor high-water check, pool release, flush).
  static Status Run(HashAggOp* op, const PlanNode& spine, ExecContext* ctx,
                    int requested_workers);

 private:
  static void WorkerLoop(HashAggOp* op, MorselPool<AggItem>* pool,
                         const PlanNode* spine,
                         const std::vector<JoinBuildStatePtr>* builds,
                         size_t w);
  /// Folds one partial into the operator's global groups with the
  /// sequential per-batch charge tail (probes, builds, agg updates,
  /// eval drain including the canonical bucket-compare count).
  static void MergeItem(HashAggOp* op, ExecContext* ctx,
                        std::vector<uint32_t>* map,
                        std::vector<uint64_t>* rank1, AggItem* item);
  /// Accumulates row j of a shipped partial into group `g`, mirroring
  /// HashAggOp::UpdateGroupFromBatch over the shipped argument forms —
  /// same per-row fp-addition order as sequential execution, because the
  /// coordinator calls this in global row order.
  static void UpdateGroupFromShip(HashAggOp* op, HashAggOp::Group* g,
                                  const AggItem& item, uint32_t j);
};

class MorselSortDriver {
 public:
  /// Runs the full morsel-parallel sort: spine builds, per-worker
  /// columnar index sorts, coordinator k-way merge of the sorted runs,
  /// and the canonical (rank-replay) sort-compare charge.
  static Status Run(SortOp* op, const PlanNode& spine, ExecContext* ctx,
                    int requested_workers);

 private:
  static void WorkerLoop(SortOp* op, MorselPool<SortItem>* pool,
                         const PlanNode* spine,
                         const std::vector<JoinBuildStatePtr>* builds,
                         size_t w);
  /// Merges the locally sorted runs into op->order_ with a min-heap
  /// under the global total order — the unique sorted permutation, i.e.
  /// exactly the sequential std::sort's result.
  static void MergeRuns(SortOp* op, const std::vector<SortedRun>& runs);
  /// The comparison count the sequential std::sort would have charged,
  /// reproduced by re-sorting [0, n) against the final permutation's
  /// rank oracle (comp(a,b) == rank[a] < rank[b] for the sequential
  /// comparator's strict total order).
  static uint64_t CanonicalSortCompares(const SortOp* op);
};

namespace {

/// Parallel aggregation wrapper: a child-less HashAggOp whose Open is
/// replaced by MorselAggDriver::Run over the cloned spine. Emission
/// (Next/NextBatch/Close) is the operator's own — the driver fills the
/// same materialized result columns Open would have.
class MorselAggOp : public Operator {
 public:
  MorselAggOp(ExecContext* ctx, const PlanNode& node, int workers)
      : ctx_(ctx),
        spine_(ClonePlan(*node.children[0])),
        inner_(ctx, nullptr, node.group_by, node.aggs),
        workers_(workers < 1 ? 1 : workers) {}

  Status Open() override {
    return MorselAggDriver::Run(&inner_, *spine_, ctx_, workers_);
  }
  Status Next(Row* out, bool* has_row) override {
    return inner_.Next(out, has_row);
  }
  Status NextBatch(RowBatch* out, bool* has_rows) override {
    return inner_.NextBatch(out, has_rows);
  }
  Status NextBatchCapped(RowBatch* out, bool* has_rows,
                         size_t max_rows) override {
    return inner_.NextBatchCapped(out, has_rows, max_rows);
  }
  bool MaterializedEmission() const override { return true; }
  void Close() override { inner_.Close(); }
  const Schema& schema() const override { return inner_.schema(); }
  std::string name() const override {
    return StrFormat("MorselAgg(workers=%d)", workers_);
  }

 private:
  ExecContext* ctx_;
  PlanNodePtr spine_;
  HashAggOp inner_;
  int workers_;
};

/// Parallel sort wrapper: a child-less SortOp filled by
/// MorselSortDriver::Run over the cloned spine.
class MorselSortOp : public Operator {
 public:
  MorselSortOp(ExecContext* ctx, const PlanNode& node, int workers)
      : ctx_(ctx),
        spine_(ClonePlan(*node.children[0])),
        inner_(ctx, nullptr, node.sort_keys),
        workers_(workers < 1 ? 1 : workers) {}

  Status Open() override {
    return MorselSortDriver::Run(&inner_, *spine_, ctx_, workers_);
  }
  Status Next(Row* out, bool* has_row) override {
    return inner_.Next(out, has_row);
  }
  Status NextBatch(RowBatch* out, bool* has_rows) override {
    return inner_.NextBatch(out, has_rows);
  }
  Status NextBatchCapped(RowBatch* out, bool* has_rows,
                         size_t max_rows) override {
    return inner_.NextBatchCapped(out, has_rows, max_rows);
  }
  bool MaterializedEmission() const override { return true; }
  void Close() override { inner_.Close(); }
  const Schema& schema() const override { return inner_.schema(); }
  std::string name() const override {
    return StrFormat("MorselSort(workers=%d)", workers_);
  }

 private:
  ExecContext* ctx_;
  PlanNodePtr spine_;
  SortOp inner_;
  int workers_;
};

/// Worker side of the partitioned parallel hash-join build: stage one
/// BuildItem per spine batch — key hashes in row order plus payload
/// fragment columns — recording only the spine charges. The as-if-local
/// build work (this worker really hashed and staged the rows) goes to
/// worker stats through a scratch log; the canonical build charges are
/// re-issued by the coordinator as it stitches the fragments.
void BuildWorkerLoop(MorselPool<BuildItem>* pool, const PlanNode* spine,
                     const std::vector<int>* build_keys,
                     const std::vector<JoinBuildStatePtr>* builds, size_t w) {
  ExecContext* ctx = pool->worker_ctx(w);
  ChargeLog log;
  ctx->BeginRecording(&log);
  const Schema& s = spine->output_schema;
  const int n_cols = s.num_fields();
  const int build_width = s.RowWidth();
  std::vector<size_t> hash_scratch;
  for (uint64_t m = w; m < pool->num_morsels(); m += pool->num_workers()) {
    if (pool->cancel().load(std::memory_order_relaxed)) break;
    const uint64_t begin = m * kMorselRows;
    const uint64_t end = std::min(begin + kMorselRows, pool->total_rows());
    OperatorPtr op;
    size_t next_build = 0;
    Status st;
    {
      Result<OperatorPtr> tree =
          BuildMorselTree(*spine, ctx, begin, end, *builds, &next_build);
      if (tree.ok()) {
        op = std::move(tree).value();
        st = op->Open();
      } else {
        st = tree.status();
      }
    }
    while (st.ok()) {
      RowBatch batch;
      bool has = false;
      st = op->NextBatch(&batch, &has);
      if (!st.ok() || !has) break;
      BuildItem item;
      item.n = static_cast<uint32_t>(batch.active());
      HashKeyColumnsBatch(batch, *build_keys, &hash_scratch);
      item.hashes = hash_scratch;
      item.cols.resize(static_cast<size_t>(n_cols));
      const bool stable_strings = !batch.strings_pool_backed();
      for (int c = 0; c < n_cols; ++c) {
        TypedColumn& dst = item.cols[static_cast<size_t>(c)];
        dst.Reset(s.field(c).type);
        if (stable_strings && !batch.col_materialized(c) &&
            RowBatch::LaneKindFor(dst.type()) ==
                RowBatch::LaneKind::kStringRef) {
          dst.RetainStorageOf(batch);
          for (uint32_t r : batch.sel()) {
            dst.AppendStable(batch.ViewCell(c, r));
          }
        } else {
          for (uint32_t r : batch.sel()) dst.Append(batch.ViewCell(c, r));
        }
      }
      {
        ScopedScratchCharges scratch(ctx);
        ctx->ChargeHashBuilds(item.n, build_width);
      }
      item.charges = std::move(log);
      log.clear();
      if (!pool->queue(w)->Push(std::move(item), pool->cancel())) return;
    }
    if (op != nullptr) op->Close();
    BuildItem done;
    done.morsel_done = true;
    done.status = st;
    done.charges = std::move(log);
    log.clear();
    if (!pool->queue(w)->Push(std::move(done), pool->cancel())) return;
    if (!st.ok()) return;
  }
  ctx->Flush();
}

/// Partitioned parallel build of one hash-join build side (an eligible
/// spine). Workers scan their morsels and ship hash + payload fragments;
/// the coordinator replays each batch's spine charges, re-issues the
/// canonical build charges, inserts the hashes in global row order (so
/// duplicate chains come out insertion-order-equivalent to the
/// sequential build), and absorbs the payload fragments into the shared
/// pool. Charge stream and resulting state are bit-identical to
/// HashJoinOp::ExecuteBuild over the same spine.
Result<JoinBuildStatePtr> ExecuteParallelSpineBuild(
    const PlanNode& build_plan, const std::vector<int>& build_keys,
    ExecContext* ctx) {
  // Joins nested inside the build spine are built first, on the
  // coordinator — the order the sequential Open cascade charges them.
  std::vector<JoinBuildStatePtr> nested;
  ECODB_RETURN_NOT_OK(ExecuteSpineBuilds(build_plan, ctx, &nested));

  auto state = std::make_shared<JoinBuildState>();
  const Schema& s = build_plan.output_schema;
  const int n_cols = s.num_fields();
  const int build_width = s.RowWidth();
  state->schema = s;
  state->index.set_memory_tracker(ctx->memory_tracker());
  state->index.Reset();
  state->cols.resize(static_cast<size_t>(n_cols));
  for (int c = 0; c < n_cols; ++c) {
    state->cols[static_cast<size_t>(c)].Reset(s.field(c).type);
    state->cols[static_cast<size_t>(c)].set_memory_tracker(
        ctx->memory_tracker());
  }
  state->num_rows = 0;
  state->bytes = 0;

  ECODB_ASSIGN_OR_RETURN(const uint64_t total_rows,
                         SpineLeafRowCount(build_plan, ctx));
  MorselPool<BuildItem> pool(ctx, total_rows, ctx->exec_workers(),
                             kBatchQueueCapacity);
  pool.Start([&pool, &build_plan, &build_keys, &nested](size_t w) {
    BuildWorkerLoop(&pool, &build_plan, &build_keys, &nested, w);
  });
  Status merge = Status::OK();
  for (uint64_t m = 0; m < pool.num_morsels() && merge.ok(); ++m) {
    for (;;) {
      BuildItem item = pool.queue(m % pool.num_workers())->Pop();
      if (!item.charges.empty()) ctx->ReplayChargeLog(item.charges);
      if (!item.status.ok()) {
        merge = item.status;
        break;
      }
      if (item.morsel_done) break;
      // The sequential consume's per-batch order: build charges, then
      // ordered inserts, then pool appends.
      ctx->ChargeHashBuilds(item.n, build_width);
      state->bytes += static_cast<uint64_t>(item.n) *
                      static_cast<uint64_t>(build_width);
      for (uint32_t i = 0; i < item.n; ++i) {
        state->index.Insert(item.hashes[i], state->num_rows + i);
      }
      for (int c = 0; c < n_cols; ++c) {
        AbsorbFragmentColumn(&state->cols[static_cast<size_t>(c)],
                             item.cols[static_cast<size_t>(c)]);
      }
      state->num_rows += item.n;
    }
  }
  pool.AccrueWorkerTotals("join_build");
  for (JoinBuildStatePtr& b : nested) {
    if (b != nullptr) b->Clear();
  }
  ctx->Flush();  // the build child's Close position
  if (!merge.ok()) {
    state->Clear();
    return merge;
  }
  // Grace-hash spill of the build side — position parity with
  // ExecuteBuild (a no-op for the memory-resident profiles workers are
  // clamped to).
  ECODB_RETURN_NOT_OK(ctx->ChargeSpill(state->bytes));
  return state;
}

/// Runs every hash-join build subtree of the spine on the coordinator,
/// outermost join first — the order a single-threaded Open cascade
/// consumes them in, so the coordinator's charge stream matches. An
/// eligible build spine runs as a partitioned parallel build; everything
/// else falls back to the sequential insert loop (whose child may still
/// be a nested morsel stream).
Status ExecuteSpineBuilds(const PlanNode& node, ExecContext* ctx,
                          std::vector<JoinBuildStatePtr>* builds) {
  switch (node.kind) {
    case PlanKind::kScan:
      return Status::OK();
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return ExecuteSpineBuilds(*node.children[0], ctx, builds);
    case PlanKind::kHashJoin: {
      JoinBuildStatePtr state;
      if (ctx->exec_workers() > 1 && MorselEligibleSpine(*node.children[0])) {
        ECODB_ASSIGN_OR_RETURN(
            state, ExecuteParallelSpineBuild(*node.children[0],
                                             node.build_keys, ctx));
      } else {
        ECODB_ASSIGN_OR_RETURN(
            OperatorPtr build_child,
            InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
        ECODB_ASSIGN_OR_RETURN(
            state,
            HashJoinOp::ExecuteBuild(ctx, build_child.get(), node.build_keys));
      }
      builds->push_back(std::move(state));
      return ExecuteSpineBuilds(*node.children[1], ctx, builds);
    }
    default:
      return Status::Internal(
          StrFormat("non-spine node %s in morsel spine", ToString(node.kind)));
  }
}

Result<OperatorPtr> InstantiateParallel(const PlanNode& node, ExecContext* ctx,
                                        bool full_drain) {
  if (full_drain && ctx->exec_workers() > 1 && MorselEligibleSpine(node)) {
    return OperatorPtr(
        std::make_unique<MorselStreamOp>(ctx, node, ctx->exec_workers()));
  }
  switch (node.kind) {
    case PlanKind::kScan:
      return OperatorPtr(std::make_unique<SeqScanOp>(ctx, node.table_name));
    case PlanKind::kFilter: {
      // A filter drains its child exactly when it is drained itself.
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, full_drain));
      return OperatorPtr(
          std::make_unique<FilterOp>(ctx, std::move(child), node.predicate));
    }
    case PlanKind::kProject: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, full_drain));
      return OperatorPtr(std::make_unique<ProjectOp>(
          ctx, std::move(child), node.exprs, node.names));
    }
    case PlanKind::kHashJoin: {
      // The build side is consumed to completion at Open regardless of
      // how far the join itself is driven; the probe side inherits. An
      // eligible build spine becomes a parallel partitioned build,
      // deferred into the join's Open via a thunk so its charges land at
      // the sequential build-phase position.
      OperatorPtr build;
      HashJoinOp::BuildThunk thunk;
      if (ctx->exec_workers() > 1 && MorselEligibleSpine(*node.children[0])) {
        std::shared_ptr<const PlanNode> build_plan(
            ClonePlan(*node.children[0]));
        std::vector<int> build_keys = node.build_keys;
        thunk = [build_plan,
                 build_keys](ExecContext* c) -> Result<JoinBuildStatePtr> {
          return ExecuteParallelSpineBuild(*build_plan, build_keys, c);
        };
      } else {
        ECODB_ASSIGN_OR_RETURN(
            build,
            InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
      }
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr probe,
          InstantiateParallel(*node.children[1], ctx, full_drain));
      if (thunk != nullptr) {
        return OperatorPtr(std::make_unique<HashJoinOp>(
            ctx, std::move(thunk), std::move(probe), node.build_keys,
            node.probe_keys));
      }
      return OperatorPtr(std::make_unique<HashJoinOp>(
          ctx, std::move(build), std::move(probe), node.build_keys,
          node.probe_keys));
    }
    case PlanKind::kNestedLoopJoin: {
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr outer,
          InstantiateParallel(*node.children[0], ctx, full_drain));
      // Inner side is materialized at Open (always fully drained).
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr inner,
          InstantiateParallel(*node.children[1], ctx, /*full_drain=*/true));
      return OperatorPtr(std::make_unique<NestedLoopJoinOp>(
          ctx, std::move(outer), std::move(inner), node.predicate));
    }
    case PlanKind::kAggregate: {
      // An aggregation over an eligible spine runs its accumulate phase
      // in the worker pool with a deterministic coordinator merge.
      if (ctx->exec_workers() > 1 && MorselEligibleSpine(*node.children[0])) {
        return OperatorPtr(
            std::make_unique<MorselAggOp>(ctx, node, ctx->exec_workers()));
      }
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
      return OperatorPtr(std::make_unique<HashAggOp>(
          ctx, std::move(child), node.group_by, node.aggs));
    }
    case PlanKind::kSort: {
      // A sort over an eligible spine runs per-worker index sorts with a
      // coordinator merge.
      if (ctx->exec_workers() > 1 && MorselEligibleSpine(*node.children[0])) {
        return OperatorPtr(
            std::make_unique<MorselSortOp>(ctx, node, ctx->exec_workers()));
      }
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/true));
      return OperatorPtr(
          std::make_unique<SortOp>(ctx, std::move(child), node.sort_keys));
    }
    case PlanKind::kLimit: {
      // A limit may stop pulling a *streaming* child early; such a child
      // is never wrapped. Materialized children (sort/agg) do all their
      // work at Open and their own children are full-drain slots.
      ECODB_ASSIGN_OR_RETURN(
          OperatorPtr child,
          InstantiateParallel(*node.children[0], ctx, /*full_drain=*/false));
      return OperatorPtr(
          std::make_unique<LimitOp>(ctx, std::move(child), node.limit));
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

// --- MorselAggDriver ---

Status MorselAggDriver::Run(HashAggOp* op, const PlanNode& spine,
                            ExecContext* ctx, int requested_workers) {
  // Spine join builds at the sequential child-Open position.
  std::vector<JoinBuildStatePtr> builds;
  ECODB_RETURN_NOT_OK(ExecuteSpineBuilds(spine, ctx, &builds));

  // HashAggOp::Open's state reset.
  op->group_index_.set_memory_tracker(ctx->memory_tracker());
  op->group_index_.Reset();
  op->groups_.clear();
  op->dict_memo_dicts_.clear();
  ctx->memory_tracker()->Release(op->group_pool_bytes_);
  op->group_pool_bytes_ = 0;
  op->n_results_ = 0;
  op->result_pos_ = 0;

  ECODB_ASSIGN_OR_RETURN(const uint64_t total_rows,
                         SpineLeafRowCount(spine, ctx));
  MorselPool<AggItem> pool(ctx, total_rows, requested_workers,
                           kBatchQueueCapacity);
  pool.Start([op, &pool, &spine, &builds](size_t w) {
    WorkerLoop(op, &pool, &spine, &builds, w);
  });

  // maps[w][lo] = global group index of worker w's local ordinal `lo`;
  // rank1[g] = global group g's 1-based position in its hash chain — the
  // bucket-compare count the sequential chain walk charges to find it
  // again (chains append at the tail, so positions never change).
  std::vector<std::vector<uint32_t>> maps(pool.num_workers());
  std::vector<uint64_t> rank1;
  Status merge = Status::OK();
  for (uint64_t m = 0; m < pool.num_morsels() && merge.ok(); ++m) {
    const size_t w = m % pool.num_workers();
    for (;;) {
      AggItem item = pool.queue(w)->Pop();
      if (!item.charges.empty()) ctx->ReplayChargeLog(item.charges);
      if (!item.status.ok()) {
        merge = item.status;
        break;
      }
      if (item.morsel_done) break;
      MergeItem(op, ctx, &maps[w], &rank1, &item);
    }
  }
  pool.AccrueWorkerTotals("agg");
  for (JoinBuildStatePtr& b : builds) {
    if (b != nullptr) b->Clear();
  }
  ctx->Flush();  // the spine's Close position
  if (!merge.ok()) return merge;

  // HashAggOp::Open's tail: trailing eval drain, materialize, governor
  // high-water check, pool release, flush.
  ctx->ChargeEvalOps();
  op->MaterializeResults();
  ECODB_RETURN_NOT_OK(ctx->CheckGovernor());
  op->group_index_.Reset();
  op->groups_.clear();
  ctx->memory_tracker()->Release(op->group_pool_bytes_);
  op->group_pool_bytes_ = 0;
  ctx->Flush();
  return Status::OK();
}

void MorselAggDriver::WorkerLoop(HashAggOp* op, MorselPool<AggItem>* pool,
                                 const PlanNode* spine,
                                 const std::vector<JoinBuildStatePtr>* builds,
                                 size_t w) {
  ExecContext* ctx = pool->worker_ctx(w);
  ChargeLog log;
  ctx->BeginRecording(&log);
  const size_t n_keys = op->group_by_.size();
  const size_t n_aggs = op->aggs_.size();
  const int key_bytes = static_cast<int>(n_keys) * 8;
  // The worker's partial-grouping state persists across its morsels:
  // ordinals are dense FIFO positions in the worker's own
  // first-occurrence order, which is what the coordinator's per-worker
  // map indexes.
  FlatHashIndex local_index;
  local_index.Reset();
  std::vector<Row> local_keys;
  ExprScratch scratch;
  std::vector<BatchOperand> key_vals(n_keys);
  std::vector<BatchOperand> operand_scratch(n_aggs);
  std::vector<double> dvec;
  for (uint64_t m = w; m < pool->num_morsels(); m += pool->num_workers()) {
    if (pool->cancel().load(std::memory_order_relaxed)) break;
    const uint64_t begin = m * kMorselRows;
    const uint64_t end = std::min(begin + kMorselRows, pool->total_rows());
    OperatorPtr tree;
    size_t next_build = 0;
    Status st;
    {
      Result<OperatorPtr> r =
          BuildMorselTree(*spine, ctx, begin, end, *builds, &next_build);
      if (r.ok()) {
        tree = std::move(r).value();
        st = tree->Open();
      } else {
        st = r.status();
      }
    }
    while (st.ok()) {
      RowBatch batch;
      bool has = false;
      st = tree->NextBatch(&batch, &has);
      if (!st.ok() || !has) break;
      AggItem item;
      // Capture the spine's undrained eval residue (normally zero — the
      // streaming ops drain per batch) and run the breaker's own
      // expression evaluation against a local counter, so the recorded
      // log keeps only spine charges.
      EvalCounters brk = *ctx->eval_counters();
      *ctx->eval_counters() = EvalCounters();
      item.n = static_cast<uint32_t>(batch.active());
      for (size_t i = 0; i < n_keys; ++i) {
        key_vals[i].Resolve(*op->group_by_[i], batch, batch.sel(), &brk,
                            &scratch);
      }
      item.args.resize(n_aggs);
      for (size_t i = 0; i < n_aggs; ++i) {
        AggArgShip& arg = item.args[i];
        if (!op->aggs_[i].arg) {
          arg.mode = AggArgMode::kCountStar;
          continue;
        }
        const AggSpec::Kind kind = op->aggs_[i].kind;
        const bool wants_double = kind == AggSpec::Kind::kSum ||
                                  kind == AggSpec::Kind::kAvg ||
                                  kind == AggSpec::Kind::kCount;
        if (wants_double && CanEvalDoubleSubtree(*op->aggs_[i].arg, batch)) {
          arg.mode = AggArgMode::kTypedDouble;
          arg.is_scalar = false;
          EvalDoubleSubtree(*op->aggs_[i].arg, batch, batch.sel(), &dvec,
                            &arg.scalar, &arg.is_scalar, &brk, &scratch);
          if (!arg.is_scalar) {
            arg.doubles.reserve(item.n);
            for (uint32_t r : batch.sel()) arg.doubles.push_back(dvec[r]);
          }
          continue;
        }
        arg.mode = AggArgMode::kOperand;
        BatchOperand& operand = operand_scratch[i];
        operand.Resolve(*op->aggs_[i].arg, batch, batch.sel(), &brk, &scratch);
        arg.operand.Reset(op->aggs_[i].arg->type());
        for (uint32_t r : batch.sel()) arg.operand.Append(operand.view_at(r));
      }
      // Partial grouping: generic key hash (equal to the sequential
      // path's, dictionary fast path included) against the worker-local
      // index. The walk/insert counts here are the worker's as-if-local
      // work — scratch charges only.
      uint64_t local_cmps = 0;
      uint64_t local_new = 0;
      item.ordinals.reserve(item.n);
      for (uint32_t r : batch.sel()) {
        size_t h = kRowKeyHashSeed;
        for (size_t i = 0; i < n_keys; ++i) {
          h = HashCombineKey(h, HashCellView(key_vals[i].view_at(r)));
        }
        uint32_t lo = FlatHashIndex::kInvalid;
        for (uint32_t idx = local_index.Find(h);
             idx != FlatHashIndex::kInvalid; idx = local_index.Next(idx)) {
          ++local_cmps;
          bool equal = true;
          for (size_t i = 0; i < n_keys; ++i) {
            if (CompareCellViews(CellView::Of(local_keys[idx][i]),
                                 key_vals[i].view_at(r)) != 0) {
              equal = false;
              break;
            }
          }
          if (equal) {
            lo = idx;
            break;
          }
        }
        if (lo == FlatHashIndex::kInvalid) {
          lo = static_cast<uint32_t>(local_keys.size());
          // Box the key twice: the shipped Row crosses threads, so it
          // must not share string storage with the worker's kept copy
          // (Value owns a std::string — deep copies all the way).
          Row shipped;
          shipped.reserve(n_keys);
          Row kept;
          kept.reserve(n_keys);
          for (size_t i = 0; i < n_keys; ++i) {
            shipped.push_back(BoxCellView(key_vals[i].view_at(r)));
            kept.push_back(BoxCellView(key_vals[i].view_at(r)));
          }
          local_index.Insert(h, lo);
          item.new_keys.push_back(AggNewKey{h, std::move(shipped)});
          local_keys.push_back(std::move(kept));
          ++local_new;
        }
        item.ordinals.push_back(lo);
      }
      item.evals = brk;
      {
        // As-if-local accounting for the worker's real work, mirroring
        // the sequential per-batch charge tail; feeds worker stats (the
        // per-core concurrency view) only.
        ScopedScratchCharges sc(ctx);
        ctx->ChargeHashProbes(item.n, key_bytes);
        ctx->ChargeHashBuilds(local_new, key_bytes);
        ctx->ChargeAggUpdates(item.n, static_cast<int>(n_aggs));
        EvalCounters save = *ctx->eval_counters();
        ctx->eval_counters()->comparisons = brk.comparisons + local_cmps;
        ctx->eval_counters()->arith_ops = brk.arith_ops;
        ctx->ChargeEvalOps();
        *ctx->eval_counters() = save;
      }
      item.charges = std::move(log);
      log.clear();
      if (!pool->queue(w)->Push(std::move(item), pool->cancel())) return;
    }
    if (tree != nullptr) tree->Close();
    AggItem done;
    done.morsel_done = true;
    done.status = st;
    done.charges = std::move(log);
    log.clear();
    if (!pool->queue(w)->Push(std::move(done), pool->cancel())) return;
    if (!st.ok()) return;
  }
  ctx->Flush();
}

void MorselAggDriver::MergeItem(HashAggOp* op, ExecContext* ctx,
                                std::vector<uint32_t>* map,
                                std::vector<uint64_t>* rank1, AggItem* item) {
  const size_t n_keys = op->group_by_.size();
  const size_t n_aggs = op->aggs_.size();
  const int key_bytes = static_cast<int>(n_keys) * 8;
  constexpr uint64_t kAccumulatorBytes = 48;  // == HashAggOp's footprint
  uint64_t canonical_cmps = 0;
  uint64_t new_global = 0;
  size_t next_new = 0;
  for (uint32_t j = 0; j < item->n; ++j) {
    const uint32_t lo = item->ordinals[j];
    uint32_t gi;
    if (lo < map->size()) {
      // Repeat of a key this worker has shipped before: the sequential
      // lookup would walk to the group's (fixed) chain position.
      gi = (*map)[lo];
      canonical_cmps += (*rank1)[gi];
    } else {
      // First occurrence in this worker's stream. Walk the *global*
      // chain exactly as FindOrCreateGroup would — groups are created
      // in first-global-occurrence order, so the chains (and therefore
      // the walk lengths) are identical to single-threaded execution.
      AggNewKey& nk = item->new_keys[next_new++];
      uint64_t examined = 0;
      uint32_t found = FlatHashIndex::kInvalid;
      for (uint32_t idx = op->group_index_.Find(nk.hash);
           idx != FlatHashIndex::kInvalid; idx = op->group_index_.Next(idx)) {
        ++examined;
        bool equal = true;
        for (size_t i = 0; i < n_keys; ++i) {
          if (CompareCellViews(CellView::Of(op->groups_[idx].key[i]),
                               CellView::Of(nk.key[i])) != 0) {
            equal = false;
            break;
          }
        }
        if (equal) {
          found = idx;
          break;
        }
      }
      canonical_cmps += examined;
      if (found != FlatHashIndex::kInvalid) {
        gi = found;
      } else {
        gi = static_cast<uint32_t>(op->groups_.size());
        op->group_index_.Insert(nk.hash, gi);
        op->groups_.push_back(HashAggOp::Group{
            std::move(nk.key),
            std::vector<HashAggOp::Accumulator>(n_aggs)});
        const uint64_t bytes = LogicalRowBytes(op->groups_.back().key) +
                               n_aggs * kAccumulatorBytes;
        ctx->memory_tracker()->Charge(bytes);
        op->group_pool_bytes_ += bytes;
        rank1->push_back(examined + 1);
        ++new_global;
      }
      map->push_back(gi);
    }
    UpdateGroupFromShip(op, &op->groups_[gi], *item, j);
  }
  // The sequential per-batch charge tail.
  ctx->ChargeHashProbes(item->n, key_bytes);
  ctx->ChargeHashBuilds(new_global, key_bytes);
  ctx->ChargeAggUpdates(item->n, static_cast<int>(n_aggs));
  ctx->eval_counters()->comparisons += item->evals.comparisons +
                                       canonical_cmps;
  ctx->eval_counters()->arith_ops += item->evals.arith_ops;
  ctx->ChargeEvalOps();
}

void MorselAggDriver::UpdateGroupFromShip(HashAggOp* op, HashAggOp::Group* g,
                                          const AggItem& item, uint32_t j) {
  // Mirrors HashAggOp::UpdateGroupFromBatch over the shipped argument
  // forms. The coordinator calls this in global row order, so the
  // accumulators see the same fp-addition order as sequential execution.
  for (size_t i = 0; i < op->aggs_.size(); ++i) {
    const AggSpec& spec = op->aggs_[i];
    HashAggOp::Accumulator& acc = g->accs[i];
    const AggArgShip& arg = item.args[i];
    if (arg.mode == AggArgMode::kCountStar) {
      ++acc.count;
      continue;
    }
    if (arg.mode == AggArgMode::kTypedDouble) {
      switch (spec.kind) {
        case AggSpec::Kind::kSum:
        case AggSpec::Kind::kAvg:
          acc.sum += arg.is_scalar ? arg.scalar : arg.doubles[j];
          ++acc.count;
          break;
        case AggSpec::Kind::kCount:
          ++acc.count;
          break;
        case AggSpec::Kind::kMin:
        case AggSpec::Kind::kMax:
          break;  // min/max stay on the operand path
      }
      continue;
    }
    const CellView v = arg.operand.View(j);
    if (v.is_null()) continue;
    switch (spec.kind) {
      case AggSpec::Kind::kCount:
        ++acc.count;
        break;
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg:
        acc.sum += v.AsDouble();
        ++acc.count;
        break;
      case AggSpec::Kind::kMin:
        if (acc.count == 0 || CompareCellViews(v, CellView::Of(acc.min)) < 0) {
          acc.min = BoxCellView(v);
        }
        ++acc.count;
        break;
      case AggSpec::Kind::kMax:
        if (acc.count == 0 || CompareCellViews(v, CellView::Of(acc.max)) > 0) {
          acc.max = BoxCellView(v);
        }
        ++acc.count;
        break;
    }
  }
}

// --- MorselSortDriver ---

Status MorselSortDriver::Run(SortOp* op, const PlanNode& spine,
                             ExecContext* ctx, int requested_workers) {
  std::vector<JoinBuildStatePtr> builds;
  ECODB_RETURN_NOT_OK(ExecuteSpineBuilds(spine, ctx, &builds));

  // SortOp::Open's reset plus the batch-consume prologue. The
  // dictionary-code comparator mirror stays disabled — the merge and the
  // canonical compare replay read key_cols_ directly.
  op->rows_.clear();
  ctx->memory_tracker()->Release(op->row_pool_bytes_);
  op->row_pool_bytes_ = 0;
  op->order_.clear();
  op->n_rows_ = 0;
  op->pos_ = 0;
  op->columnar_ = true;
  op->schema_ = spine.output_schema;
  const int n_cols = op->schema_.num_fields();
  op->cols_.clear();
  op->cols_.resize(static_cast<size_t>(n_cols));
  for (int c = 0; c < n_cols; ++c) {
    op->cols_[static_cast<size_t>(c)].Reset(op->schema_.field(c).type);
    op->cols_[static_cast<size_t>(c)].set_memory_tracker(
        ctx->memory_tracker());
  }
  op->key_cols_.clear();
  op->key_cols_.resize(op->keys_.size());
  op->key_code_vals_.assign(op->keys_.size(), {});
  op->key_dicts_.assign(op->keys_.size(), nullptr);
  op->key_code_ok_.assign(op->keys_.size(), 0);
  for (size_t k = 0; k < op->keys_.size(); ++k) {
    op->key_cols_[k].Reset(op->keys_[k].expr->type());
    op->key_cols_[k].set_memory_tracker(ctx->memory_tracker());
  }

  ECODB_ASSIGN_OR_RETURN(const uint64_t total_rows,
                         SpineLeafRowCount(spine, ctx));
  MorselPool<SortItem> pool(ctx, total_rows, requested_workers,
                            kSortQueueCapacity);
  pool.Start([op, &pool, &spine, &builds](size_t w) {
    WorkerLoop(op, &pool, &spine, &builds, w);
  });

  std::vector<SortedRun> runs;
  EvalCounters evals;
  Status merge = Status::OK();
  for (uint64_t m = 0; m < pool.num_morsels() && merge.ok(); ++m) {
    SortItem item = pool.queue(m % pool.num_workers())->Pop();
    if (!item.charges.empty()) ctx->ReplayChargeLog(item.charges);
    if (!item.status.ok()) {
      merge = item.status;
      break;
    }
    const size_t base = op->n_rows_;
    for (int c = 0; c < n_cols; ++c) {
      AbsorbFragmentColumn(&op->cols_[static_cast<size_t>(c)],
                           item.cols[static_cast<size_t>(c)]);
    }
    for (size_t k = 0; k < op->keys_.size(); ++k) {
      AbsorbFragmentColumn(&op->key_cols_[k], item.keys[k]);
    }
    op->n_rows_ += item.n;
    evals.comparisons += item.evals.comparisons;
    evals.arith_ops += item.evals.arith_ops;
    if (item.n > 0) runs.push_back(SortedRun{base, std::move(item.order)});
  }
  pool.AccrueWorkerTotals("sort");
  for (JoinBuildStatePtr& b : builds) {
    if (b != nullptr) b->Clear();
  }
  ctx->Flush();  // the spine's Close position
  if (!merge.ok()) return merge;

  // The sequential consume tail: key-eval drain, governor high-water
  // check (input + key columns both live), the sort itself, key release.
  ctx->eval_counters()->comparisons += evals.comparisons;
  ctx->eval_counters()->arith_ops += evals.arith_ops;
  ctx->ChargeEvalOps();
  ECODB_RETURN_NOT_OK(ctx->CheckGovernor());
  MergeRuns(op, runs);
  ctx->ChargeSortCompares(CanonicalSortCompares(op));
  op->key_cols_.clear();
  op->key_code_vals_.clear();
  ctx->Flush();  // SortOp::Open's tail
  return Status::OK();
}

void MorselSortDriver::WorkerLoop(SortOp* op, MorselPool<SortItem>* pool,
                                  const PlanNode* spine,
                                  const std::vector<JoinBuildStatePtr>* builds,
                                  size_t w) {
  ExecContext* ctx = pool->worker_ctx(w);
  ChargeLog log;
  ctx->BeginRecording(&log);
  const Schema& s = spine->output_schema;
  const int n_cols = s.num_fields();
  const size_t n_keys = op->keys_.size();
  ExprScratch scratch;
  std::vector<BatchOperand> key_vals(n_keys);
  for (uint64_t m = w; m < pool->num_morsels(); m += pool->num_workers()) {
    if (pool->cancel().load(std::memory_order_relaxed)) break;
    const uint64_t begin = m * kMorselRows;
    const uint64_t end = std::min(begin + kMorselRows, pool->total_rows());
    SortItem item;
    item.cols.resize(static_cast<size_t>(n_cols));
    for (int c = 0; c < n_cols; ++c) {
      item.cols[static_cast<size_t>(c)].Reset(s.field(c).type);
    }
    item.keys.resize(n_keys);
    for (size_t k = 0; k < n_keys; ++k) {
      item.keys[k].Reset(op->keys_[k].expr->type());
    }
    EvalCounters brk;
    OperatorPtr tree;
    size_t next_build = 0;
    Status st;
    {
      Result<OperatorPtr> r =
          BuildMorselTree(*spine, ctx, begin, end, *builds, &next_build);
      if (r.ok()) {
        tree = std::move(r).value();
        st = tree->Open();
      } else {
        st = r.status();
      }
    }
    while (st.ok()) {
      RowBatch batch;
      bool has = false;
      st = tree->NextBatch(&batch, &has);
      if (!st.ok() || !has) break;
      // Breaker evals (key evaluation) accumulate in a local counter —
      // sequential sort drains them once at the end of its consume, not
      // per batch; the coordinator reproduces that with the shipped sums.
      brk.comparisons += ctx->eval_counters()->comparisons;
      brk.arith_ops += ctx->eval_counters()->arith_ops;
      *ctx->eval_counters() = EvalCounters();
      for (size_t k = 0; k < n_keys; ++k) {
        key_vals[k].Resolve(*op->keys_[k].expr, batch, batch.sel(), &brk,
                            &scratch);
      }
      const bool stable_strings = !batch.strings_pool_backed();
      for (int c = 0; c < n_cols; ++c) {
        TypedColumn& dst = item.cols[static_cast<size_t>(c)];
        if (stable_strings && !batch.col_materialized(c) &&
            RowBatch::LaneKindFor(dst.type()) ==
                RowBatch::LaneKind::kStringRef) {
          dst.RetainStorageOf(batch);
          for (uint32_t r : batch.sel()) {
            dst.AppendStable(batch.ViewCell(c, r));
          }
        } else {
          for (uint32_t r : batch.sel()) dst.Append(batch.ViewCell(c, r));
        }
      }
      for (size_t k = 0; k < n_keys; ++k) {
        TypedColumn& dst = item.keys[k];
        for (uint32_t r : batch.sel()) dst.Append(key_vals[k].view_at(r));
      }
      item.n += static_cast<uint32_t>(batch.active());
    }
    if (tree != nullptr) tree->Close();
    if (st.ok()) {
      // Local columnar index sort under the same total order as the
      // sequential comparator; within one run the local tiebreak a < b
      // equals the global tiebreak (the run is a contiguous global
      // range). Compare counts here are as-if-local (scratch) — the
      // canonical count is replayed by the coordinator.
      item.order.resize(item.n);
      for (uint32_t i = 0; i < item.n; ++i) item.order[i] = i;
      uint64_t local_compares = 0;
      std::sort(item.order.begin(), item.order.end(),
                [&](uint32_t a, uint32_t b) {
                  ++local_compares;
                  for (size_t i = 0; i < n_keys; ++i) {
                    const int c = CompareCellViews(item.keys[i].View(a),
                                                   item.keys[i].View(b));
                    if (c != 0) return op->keys_[i].ascending ? c < 0 : c > 0;
                  }
                  return a < b;
                });
      {
        ScopedScratchCharges sc(ctx);
        ctx->ChargeSortCompares(local_compares);
        EvalCounters save = *ctx->eval_counters();
        *ctx->eval_counters() = brk;
        ctx->ChargeEvalOps();
        *ctx->eval_counters() = save;
      }
    }
    item.evals = brk;
    item.status = st;
    item.charges = std::move(log);
    log.clear();
    if (!pool->queue(w)->Push(std::move(item), pool->cancel())) return;
    if (!st.ok()) return;
  }
  ctx->Flush();
}

void MorselSortDriver::MergeRuns(SortOp* op,
                                 const std::vector<SortedRun>& runs) {
  op->order_.clear();
  op->order_.reserve(op->n_rows_);
  struct Head {
    size_t run;
    size_t pos;
  };
  const auto global_of = [&runs](const Head& h) -> uint32_t {
    return static_cast<uint32_t>(runs[h.run].base) + runs[h.run].order[h.pos];
  };
  // The sequential comparator's total order over global indexes. The
  // final tiebreak ga < gb makes it strict and total, so the k-way merge
  // of runs each sorted under it yields the unique sorted permutation —
  // exactly the sequential std::sort's order_.
  const auto global_less = [op](uint32_t ga, uint32_t gb) {
    for (size_t i = 0; i < op->keys_.size(); ++i) {
      const int c = CompareCellViews(op->key_cols_[i].View(ga),
                                     op->key_cols_[i].View(gb));
      if (c != 0) return op->keys_[i].ascending ? c < 0 : c > 0;
    }
    return ga < gb;
  };
  const auto heap_cmp = [&](const Head& a, const Head& b) {
    return global_less(global_of(b), global_of(a));
  };
  std::priority_queue<Head, std::vector<Head>, decltype(heap_cmp)> heap(
      heap_cmp);
  for (size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].order.empty()) heap.push(Head{i, 0});
  }
  while (!heap.empty()) {
    Head h = heap.top();
    heap.pop();
    op->order_.push_back(global_of(h));
    if (++h.pos < runs[h.run].order.size()) heap.push(h);
  }
}

uint64_t MorselSortDriver::CanonicalSortCompares(const SortOp* op) {
  // The sequential sort's comparator is a strict total order whose
  // unique sorted permutation is order_, so comp(a, b) == rank[a] <
  // rank[b]. Re-running std::sort (same libstdc++ implementation) over
  // the same initial sequence with the rank oracle performs the exact
  // comparison sequence the sequential sort performed.
  std::vector<uint32_t> rank(op->n_rows_);
  for (size_t i = 0; i < op->order_.size(); ++i) {
    rank[op->order_[i]] = static_cast<uint32_t>(i);
  }
  std::vector<uint32_t> replay(op->n_rows_);
  for (size_t i = 0; i < op->n_rows_; ++i) {
    replay[i] = static_cast<uint32_t>(i);
  }
  uint64_t compares = 0;
  std::sort(replay.begin(), replay.end(), [&](uint32_t a, uint32_t b) {
    ++compares;
    return rank[a] < rank[b];
  });
  return compares;
}

// --- Public entry points ---

bool MorselEligibleSpine(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan:
      return true;
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return MorselEligibleSpine(*node.children[0]);
    case PlanKind::kHashJoin:
      // Probe side must be a spine; the build side is consumed by the
      // coordinator (parallelized separately when itself eligible).
      return MorselEligibleSpine(*node.children[1]);
    default:
      return false;
  }
}

Result<OperatorPtr> InstantiateParallelPlan(const PlanNode& node,
                                            ExecContext* ctx) {
  return InstantiateParallel(node, ctx, /*full_drain=*/true);
}

}  // namespace ecodb

#include "ecodb/exec/query_governor.h"

namespace ecodb {

QueryGovernor::QueryGovernor(const QueryLimits& limits,
                             double query_start_seconds)
    : limits_(limits) {
  if (limits_.deadline_seconds > 0.0) {
    deadline_abs_seconds_ = query_start_seconds + limits_.deadline_seconds;
  }
}

}  // namespace ecodb

#include "ecodb/exec/hash_table.h"

#include <functional>

namespace ecodb {

namespace {

constexpr size_t kMinSlots = 64;

size_t NextPow2(size_t n) {
  size_t cap = kMinSlots;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Grow when occupancy would exceed 7/10 (linear probing degrades fast
/// past ~0.7 load).
bool NeedsGrow(size_t occupied, size_t capacity) {
  return (occupied + 1) * 10 > capacity * 7;
}

}  // namespace

void FlatHashIndex::Reset(size_t expected_keys) {
  slots_.clear();
  next_.clear();
  count_ = 0;
  if (expected_keys > 0) {
    slots_.resize(NextPow2(expected_keys * 10 / 7 + 1));
  }
  UpdateTracked();
}

void FlatHashIndex::UpdateTracked() {
  if (tracker_ == nullptr) return;
  const uint64_t now = slots_.size() * sizeof(Slot) +
                       next_.size() * sizeof(uint32_t);
  if (now > tracked_bytes_) {
    tracker_->Charge(now - tracked_bytes_);
  } else {
    tracker_->Release(tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

void FlatHashIndex::Grow(size_t min_slots) {
  const size_t cap = NextPow2(min_slots);
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  const size_t mask = cap - 1;
  for (const Slot& o : old) {
    if (o.head == kInvalid) continue;
    size_t s = o.hash & mask;
    while (slots_[s].head != kInvalid) s = (s + 1) & mask;
    slots_[s] = o;
  }
}

void FlatHashIndex::Insert(size_t hash, uint32_t idx) {
  if (idx >= next_.size()) next_.resize(idx + 1, kInvalid);
  next_[idx] = kInvalid;
  if (slots_.empty() || NeedsGrow(count_, slots_.size())) {
    Grow(slots_.empty() ? kMinSlots : slots_.size() * 2);
  }
  const size_t mask = slots_.size() - 1;
  size_t s = hash & mask;
  while (slots_[s].head != kInvalid && slots_[s].hash != hash) {
    s = (s + 1) & mask;
  }
  Slot& slot = slots_[s];
  if (slot.head == kInvalid) {
    slot.hash = hash;
    slot.head = idx;
    ++count_;
  } else {
    next_[slot.tail] = idx;  // append: chains iterate in insertion order
  }
  slot.tail = idx;
  UpdateTracked();
}

uint32_t FlatHashIndex::Find(size_t hash) const {
  if (slots_.empty()) return kInvalid;
  const size_t mask = slots_.size() - 1;
  size_t s = hash & mask;
  while (slots_[s].head != kInvalid) {
    if (slots_[s].hash == hash) return slots_[s].head;
    s = (s + 1) & mask;
  }
  return kInvalid;
}

void HashKeyColumnsBatch(const RowBatch& batch,
                         const std::vector<int>& key_cols,
                         std::vector<size_t>* hashes) {
  const std::vector<uint32_t>& sel = batch.sel();
  const size_t n = sel.size();
  hashes->assign(n, kRowKeyHashSeed);
  size_t* h = hashes->data();
  for (int c : key_cols) {
    if (batch.lane_active(c)) {
      // Typed-lane column (join / typed-projection output): hash the
      // cells through HashCellView — the single maintained mirror of
      // Value::Hash — without boxing anything.
      const RowBatch::TypedLane& lane = batch.lane(c);
      for (size_t i = 0; i < n; ++i) {
        h[i] = HashCombineKey(h[i], HashCellView(lane.ViewAt(sel[i])));
      }
      continue;
    }
    if (!batch.col_materialized(c) && batch.lazy_source() != nullptr) {
      const Column& col = batch.lazy_source()->column(c);
      const size_t base = batch.lazy_start();
      switch (col.type()) {
        case ValueType::kInt64:
        case ValueType::kDate:
        case ValueType::kBool: {
          std::hash<int64_t> hasher;
          for (size_t i = 0; i < n; ++i) {
            h[i] = HashCombineKey(h[i], hasher(col.GetInt(base + sel[i])));
          }
          continue;
        }
        case ValueType::kDouble: {
          for (size_t i = 0; i < n; ++i) {
            h[i] = HashCombineKey(
                h[i], Value::HashDouble(col.GetDouble(base + sel[i])));
          }
          continue;
        }
        case ValueType::kString: {
          std::hash<std::string> hasher;
          for (size_t i = 0; i < n; ++i) {
            h[i] = HashCombineKey(h[i], hasher(col.GetString(base + sel[i])));
          }
          continue;
        }
        case ValueType::kNull:
          break;  // tables are NOT NULL; fall back to the boxed path
      }
    }
    const std::vector<Value>& vals = batch.col(c);
    for (size_t i = 0; i < n; ++i) {
      h[i] = HashCombineKey(h[i], vals[sel[i]].Hash());
    }
  }
}

}  // namespace ecodb

#include "ecodb/exec/hash_table.h"

#include <functional>

#include "ecodb/exec/simd.h"

namespace ecodb {

namespace {

constexpr size_t kMinSlots = 64;

size_t NextPow2(size_t n) {
  size_t cap = kMinSlots;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Grow when occupancy would exceed 7/10 (linear probing degrades fast
/// past ~0.7 load).
bool NeedsGrow(size_t occupied, size_t capacity) {
  return (occupied + 1) * 10 > capacity * 7;
}

}  // namespace

void FlatHashIndex::Reset(size_t expected_keys) {
  slots_.clear();
  next_.clear();
  count_ = 0;
  if (expected_keys > 0) {
    slots_.resize(NextPow2(expected_keys * 10 / 7 + 1));
  }
  UpdateTracked();
}

void FlatHashIndex::UpdateTracked() {
  if (tracker_ == nullptr) return;
  const uint64_t now = slots_.size() * sizeof(Slot) +
                       next_.size() * sizeof(uint32_t);
  if (now > tracked_bytes_) {
    tracker_->Charge(now - tracked_bytes_);
  } else {
    tracker_->Release(tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

void FlatHashIndex::Grow(size_t min_slots) {
  const size_t cap = NextPow2(min_slots);
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  const size_t mask = cap - 1;
  for (const Slot& o : old) {
    if (o.head == kInvalid) continue;
    size_t s = o.hash & mask;
    while (slots_[s].head != kInvalid) s = (s + 1) & mask;
    slots_[s] = o;
  }
}

void FlatHashIndex::Insert(size_t hash, uint32_t idx) {
  if (idx >= next_.size()) next_.resize(idx + 1, kInvalid);
  next_[idx] = kInvalid;
  if (slots_.empty() || NeedsGrow(count_, slots_.size())) {
    Grow(slots_.empty() ? kMinSlots : slots_.size() * 2);
  }
  const size_t mask = slots_.size() - 1;
  size_t s = hash & mask;
  while (slots_[s].head != kInvalid && slots_[s].hash != hash) {
    s = (s + 1) & mask;
  }
  Slot& slot = slots_[s];
  if (slot.head == kInvalid) {
    slot.hash = hash;
    slot.head = idx;
    ++count_;
  } else {
    next_[slot.tail] = idx;  // append: chains iterate in insertion order
  }
  slot.tail = idx;
  UpdateTracked();
}

uint32_t FlatHashIndex::Find(size_t hash) const {
  if (slots_.empty()) return kInvalid;
  const size_t mask = slots_.size() - 1;
  size_t s = hash & mask;
  while (slots_[s].head != kInvalid) {
    if (slots_[s].hash == hash) return slots_[s].head;
    s = (s + 1) & mask;
  }
  return kInvalid;
}

void HashKeyColumnsBatch(const RowBatch& batch,
                         const std::vector<int>& key_cols,
                         std::vector<size_t>* hashes) {
  const std::vector<uint32_t>& sel = batch.sel();
  const size_t n = sel.size();
  hashes->assign(n, kRowKeyHashSeed);
  size_t* h = hashes->data();
  // Two-pass combine: gather per-column value hashes into a reusable
  // scratch, then fold the whole column in with one SIMD combine (the
  // combine chains across *columns*, so the per-row folds are
  // independent). thread_local so steady-state execution stays
  // allocation-free after the first batch per worker.
  static thread_local std::vector<size_t> vh_scratch;
  vh_scratch.resize(n);
  size_t* vh = vh_scratch.data();
  for (int c : key_cols) {
    if (batch.lane_active(c)) {
      const RowBatch::TypedLane& lane = batch.lane(c);
      if (lane.kind == RowBatch::LaneKind::kStringCode && !lane.has_nulls) {
        // Dictionary-code lane: the dict caches std::hash of every entry,
        // so hashing a string key is an int32 gather + table lookup —
        // values identical to hashing the decoded bytes.
        const Column* dict = lane.dict;
        for (size_t i = 0; i < n; ++i) {
          vh[i] = dict->DictHash(lane.codes[sel[i]]);
        }
      } else {
        // Typed-lane column (join / typed-projection output): hash the
        // cells through HashCellView — the single maintained mirror of
        // Value::Hash — without boxing anything.
        for (size_t i = 0; i < n; ++i) {
          vh[i] = HashCellView(lane.ViewAt(sel[i]));
        }
      }
      simd::HashCombineBatch(h, vh, n);
      continue;
    }
    if (!batch.col_materialized(c) && batch.lazy_source() != nullptr) {
      const Column& col = batch.lazy_source()->column(c);
      const size_t base = batch.lazy_start();
      bool handled = true;
      switch (col.type()) {
        case ValueType::kInt64:
        case ValueType::kDate:
        case ValueType::kBool: {
          std::hash<int64_t> hasher;
          for (size_t i = 0; i < n; ++i) {
            vh[i] = hasher(col.GetInt(base + sel[i]));
          }
          break;
        }
        case ValueType::kDouble: {
          for (size_t i = 0; i < n; ++i) {
            vh[i] = Value::HashDouble(col.GetDouble(base + sel[i]));
          }
          break;
        }
        case ValueType::kString: {
          if (col.dict_encoded()) {
            // Dict-encoded storage: cached entry hash by per-row code.
            for (size_t i = 0; i < n; ++i) {
              vh[i] = col.DictHash(col.DictCode(base + sel[i]));
            }
          } else {
            std::hash<std::string> hasher;
            for (size_t i = 0; i < n; ++i) {
              vh[i] = hasher(col.GetString(base + sel[i]));
            }
          }
          break;
        }
        case ValueType::kNull:
          handled = false;  // tables are NOT NULL; use the boxed path
          break;
      }
      if (handled) {
        simd::HashCombineBatch(h, vh, n);
        continue;
      }
    }
    const std::vector<Value>& vals = batch.col(c);
    for (size_t i = 0; i < n; ++i) {
      vh[i] = vals[sel[i]].Hash();
    }
    simd::HashCombineBatch(h, vh, n);
  }
}

}  // namespace ecodb

#include "ecodb/exec/plan.h"

#include "ecodb/exec/morsel.h"
#include "ecodb/util/strings.h"

namespace ecodb {

const char* ToString(PlanKind k) {
  switch (k) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

std::string PlanNode::Explain(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string line = pad + ToString(kind);
  switch (kind) {
    case PlanKind::kScan:
      line += "(" + table_name + ")";
      break;
    case PlanKind::kFilter:
      line += "(" + predicate->ToString() + ")";
      break;
    case PlanKind::kHashJoin: {
      line += "(build keys:";
      for (int k : build_keys) line += StrFormat(" %d", k);
      line += " probe keys:";
      for (int k : probe_keys) line += StrFormat(" %d", k);
      line += ")";
      break;
    }
    case PlanKind::kLimit:
      line += StrFormat("(%lld)", static_cast<long long>(limit));
      break;
    default:
      break;
  }
  if (est_rows >= 0) line += StrFormat("  [est %.0f rows]", est_rows);
  line += "\n";
  for (const auto& c : children) line += c->Explain(indent + 1);
  return line;
}

Result<PlanNodePtr> MakeScan(const Catalog& catalog,
                             const std::string& table_name) {
  const Table* t = catalog.FindTable(table_name);
  if (t == nullptr) {
    return Status::NotFound(StrFormat("table %s", table_name.c_str()));
  }
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kScan;
  node->table_name = t->name();
  node->output_schema = t->schema();
  return node;
}

PlanNodePtr MakeFilter(PlanNodePtr child, ExprPtr predicate) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->output_schema = child->output_schema;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeProject(PlanNodePtr child, std::vector<ExprPtr> exprs,
                        std::vector<std::string> names) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kProject;
  std::vector<Field> fields;
  for (size_t i = 0; i < exprs.size(); ++i) {
    fields.emplace_back(names[i], exprs[i]->type());
  }
  node->output_schema = Schema(std::move(fields));
  node->exprs = std::move(exprs);
  node->names = std::move(names);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeHashJoin(PlanNodePtr build, PlanNodePtr probe,
                         std::vector<int> build_keys,
                         std::vector<int> probe_keys) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kHashJoin;
  node->output_schema =
      Schema::Concat(build->output_schema, probe->output_schema);
  node->build_keys = std::move(build_keys);
  node->probe_keys = std::move(probe_keys);
  node->children.push_back(std::move(build));
  node->children.push_back(std::move(probe));
  return node;
}

PlanNodePtr MakeNestedLoopJoin(PlanNodePtr outer, PlanNodePtr inner,
                               ExprPtr predicate) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kNestedLoopJoin;
  node->output_schema =
      Schema::Concat(outer->output_schema, inner->output_schema);
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(outer));
  node->children.push_back(std::move(inner));
  return node;
}

PlanNodePtr MakeAggregate(PlanNodePtr child, std::vector<ExprPtr> group_by,
                          std::vector<AggSpec> aggs) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kAggregate;
  std::vector<Field> fields;
  for (size_t i = 0; i < group_by.size(); ++i) {
    fields.emplace_back(StrFormat("group_%zu", i), group_by[i]->type());
  }
  for (const AggSpec& a : aggs) fields.emplace_back(a.name, a.ResultType());
  node->output_schema = Schema(std::move(fields));
  node->group_by = std::move(group_by);
  node->aggs = aggs;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeSort(PlanNodePtr child, std::vector<SortKey> keys) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kSort;
  node->output_schema = child->output_schema;
  node->sort_keys = std::move(keys);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeLimit(PlanNodePtr child, int64_t limit) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kLimit;
  node->output_schema = child->output_schema;
  node->limit = limit;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr ClonePlan(const PlanNode& node) {
  auto out = std::make_unique<PlanNode>();
  out->kind = node.kind;
  out->output_schema = node.output_schema;
  out->table_name = node.table_name;
  out->predicate = node.predicate;  // Expr trees are immutable/shared
  out->exprs = node.exprs;
  out->names = node.names;
  out->build_keys = node.build_keys;
  out->probe_keys = node.probe_keys;
  out->group_by = node.group_by;
  out->aggs = node.aggs;
  out->sort_keys = node.sort_keys;
  out->limit = node.limit;
  out->est_rows = node.est_rows;
  for (const auto& c : node.children) out->children.push_back(ClonePlan(*c));
  return out;
}

namespace {

/// All column references of `e` must land inside a child schema with
/// `num_fields` fields.
Status CheckExprColumns(const Expr* e, int num_fields, const char* what) {
  if (e == nullptr) {
    return Status::InvalidArgument(StrFormat("%s expression is null", what));
  }
  std::vector<int> cols;
  e->CollectColumns(&cols);
  for (int c : cols) {
    if (c < 0 || c >= num_fields) {
      return Status::InvalidArgument(
          StrFormat("%s references column %d, input has %d columns", what, c,
                    num_fields));
    }
  }
  return Status::OK();
}

Status CheckChildCount(const PlanNode& node, size_t expected) {
  if (node.children.size() != expected) {
    return Status::InvalidArgument(
        StrFormat("%s node expects %zu child(ren), got %zu",
                  ToString(node.kind), expected, node.children.size()));
  }
  for (const auto& c : node.children) {
    if (c == nullptr) {
      return Status::InvalidArgument(
          StrFormat("%s node has a null child", ToString(node.kind)));
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidatePlan(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan:
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 0));
      if (node.table_name.empty()) {
        return Status::InvalidArgument("Scan node has no table name");
      }
      break;
    case PlanKind::kFilter: {
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 1));
      const int n = node.children[0]->output_schema.num_fields();
      ECODB_RETURN_NOT_OK(
          CheckExprColumns(node.predicate.get(), n, "Filter predicate"));
      break;
    }
    case PlanKind::kProject: {
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 1));
      if (node.exprs.empty()) {
        return Status::InvalidArgument(
            "Project node has no output columns (zero-column projection)");
      }
      if (node.names.size() != node.exprs.size()) {
        return Status::InvalidArgument(StrFormat(
            "Project node has %zu expressions but %zu names",
            node.exprs.size(), node.names.size()));
      }
      const int n = node.children[0]->output_schema.num_fields();
      for (const ExprPtr& e : node.exprs) {
        ECODB_RETURN_NOT_OK(
            CheckExprColumns(e.get(), n, "Project expression"));
      }
      break;
    }
    case PlanKind::kHashJoin: {
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 2));
      if (node.build_keys.empty() ||
          node.build_keys.size() != node.probe_keys.size()) {
        return Status::InvalidArgument(StrFormat(
            "HashJoin key arity mismatch: %zu build keys vs %zu probe keys",
            node.build_keys.size(), node.probe_keys.size()));
      }
      const int nb = node.children[0]->output_schema.num_fields();
      const int np = node.children[1]->output_schema.num_fields();
      for (int k : node.build_keys) {
        if (k < 0 || k >= nb) {
          return Status::InvalidArgument(StrFormat(
              "HashJoin build key %d out of range (build has %d columns)", k,
              nb));
        }
      }
      for (int k : node.probe_keys) {
        if (k < 0 || k >= np) {
          return Status::InvalidArgument(StrFormat(
              "HashJoin probe key %d out of range (probe has %d columns)", k,
              np));
        }
      }
      break;
    }
    case PlanKind::kNestedLoopJoin: {
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 2));
      if (node.predicate != nullptr) {  // null = cross join, legal
        const int n = node.children[0]->output_schema.num_fields() +
                      node.children[1]->output_schema.num_fields();
        ECODB_RETURN_NOT_OK(CheckExprColumns(node.predicate.get(), n,
                                             "NestedLoopJoin predicate"));
      }
      break;
    }
    case PlanKind::kAggregate: {
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 1));
      if (node.group_by.empty() && node.aggs.empty()) {
        return Status::InvalidArgument(
            "Aggregate node has no group-by keys and no aggregates "
            "(zero-column output)");
      }
      const int n = node.children[0]->output_schema.num_fields();
      for (const ExprPtr& e : node.group_by) {
        ECODB_RETURN_NOT_OK(CheckExprColumns(e.get(), n, "group-by key"));
      }
      for (const AggSpec& a : node.aggs) {
        if (a.arg == nullptr) {
          if (a.kind != AggSpec::Kind::kCount) {
            return Status::InvalidArgument(StrFormat(
                "aggregate %s requires an argument (only COUNT(*) may omit "
                "it)",
                a.name.c_str()));
          }
          continue;
        }
        ECODB_RETURN_NOT_OK(
            CheckExprColumns(a.arg.get(), n, "aggregate argument"));
      }
      break;
    }
    case PlanKind::kSort: {
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 1));
      const int n = node.children[0]->output_schema.num_fields();
      for (const SortKey& k : node.sort_keys) {
        ECODB_RETURN_NOT_OK(CheckExprColumns(k.expr.get(), n, "sort key"));
      }
      break;
    }
    case PlanKind::kLimit:
      ECODB_RETURN_NOT_OK(CheckChildCount(node, 1));
      if (node.limit < 0) {
        return Status::InvalidArgument(
            StrFormat("Limit node has negative limit %lld",
                      static_cast<long long>(node.limit)));
      }
      break;
  }
  for (const auto& c : node.children) ECODB_RETURN_NOT_OK(ValidatePlan(*c));
  return Status::OK();
}

Result<OperatorPtr> InstantiatePlan(const PlanNode& node, ExecContext* ctx) {
  switch (node.kind) {
    case PlanKind::kScan:
      return OperatorPtr(std::make_unique<SeqScanOp>(ctx, node.table_name));
    case PlanKind::kFilter: {
      ECODB_ASSIGN_OR_RETURN(OperatorPtr child,
                             InstantiatePlan(*node.children[0], ctx));
      return OperatorPtr(
          std::make_unique<FilterOp>(ctx, std::move(child), node.predicate));
    }
    case PlanKind::kProject: {
      ECODB_ASSIGN_OR_RETURN(OperatorPtr child,
                             InstantiatePlan(*node.children[0], ctx));
      return OperatorPtr(std::make_unique<ProjectOp>(
          ctx, std::move(child), node.exprs, node.names));
    }
    case PlanKind::kHashJoin: {
      ECODB_ASSIGN_OR_RETURN(OperatorPtr build,
                             InstantiatePlan(*node.children[0], ctx));
      ECODB_ASSIGN_OR_RETURN(OperatorPtr probe,
                             InstantiatePlan(*node.children[1], ctx));
      return OperatorPtr(std::make_unique<HashJoinOp>(
          ctx, std::move(build), std::move(probe), node.build_keys,
          node.probe_keys));
    }
    case PlanKind::kNestedLoopJoin: {
      ECODB_ASSIGN_OR_RETURN(OperatorPtr outer,
                             InstantiatePlan(*node.children[0], ctx));
      ECODB_ASSIGN_OR_RETURN(OperatorPtr inner,
                             InstantiatePlan(*node.children[1], ctx));
      return OperatorPtr(std::make_unique<NestedLoopJoinOp>(
          ctx, std::move(outer), std::move(inner), node.predicate));
    }
    case PlanKind::kAggregate: {
      ECODB_ASSIGN_OR_RETURN(OperatorPtr child,
                             InstantiatePlan(*node.children[0], ctx));
      return OperatorPtr(std::make_unique<HashAggOp>(
          ctx, std::move(child), node.group_by, node.aggs));
    }
    case PlanKind::kSort: {
      ECODB_ASSIGN_OR_RETURN(OperatorPtr child,
                             InstantiatePlan(*node.children[0], ctx));
      return OperatorPtr(
          std::make_unique<SortOp>(ctx, std::move(child), node.sort_keys));
    }
    case PlanKind::kLimit: {
      ECODB_ASSIGN_OR_RETURN(OperatorPtr child,
                             InstantiatePlan(*node.children[0], ctx));
      return OperatorPtr(
          std::make_unique<LimitOp>(ctx, std::move(child), node.limit));
    }
  }
  return Status::Internal("unknown plan kind");
}

Result<ResultSet> ExecutePlanColumnar(const PlanNode& node, ExecContext* ctx,
                                      ExecMode mode) {
  ECODB_RETURN_NOT_OK(ValidatePlan(node));
  OperatorPtr op;
  if (mode == ExecMode::kBatch && ctx->exec_workers() > 1) {
    // Morsel-driven parallel spines (batch mode only; results and
    // logical-work counters stay bit-exact vs. the sequential tree).
    ECODB_ASSIGN_OR_RETURN(op, InstantiateParallelPlan(node, ctx));
  } else {
    ECODB_ASSIGN_OR_RETURN(op, InstantiatePlan(node, ctx));
  }
  return ExecuteOperatorColumnar(op.get(), ctx, mode);
}

Result<std::vector<Row>> ExecutePlan(const PlanNode& node, ExecContext* ctx,
                                     ExecMode mode) {
  ECODB_ASSIGN_OR_RETURN(ResultSet set, ExecutePlanColumnar(node, ctx, mode));
  return set.TakeRows();
}

}  // namespace ecodb

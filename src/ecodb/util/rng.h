// Deterministic pseudo-random number generation.
//
// All data generation (TPC-H dbgen, workload predicates, disk access
// patterns) must be reproducible run-to-run, so everything funnels through
// this explicitly seeded generator rather than std::random_device.

#ifndef ECODB_UTIL_RNG_H_
#define ECODB_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ecodb {

/// xoshiro256** — small, fast, high-quality, and fully deterministic for a
/// given seed across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x8500E8500ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Random lowercase alphabetic string of length in [min_len, max_len].
  std::string AlphaString(int min_len, int max_len);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace ecodb

#endif  // ECODB_UTIL_RNG_H_

#include "ecodb/util/status.h"

namespace ecodb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnstableSettings:
      return "UnstableSettings";
    case StatusCode::kHardwareFault:
      return "HardwareFault";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool StatusCodeFromName(std::string_view name, StatusCode* out) {
  for (StatusCode code : kAllStatusCodes) {
    if (name == StatusCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ecodb

#include "ecodb/util/status.h"

namespace ecodb {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnstableSettings:
      return "UnstableSettings";
    case StatusCode::kHardwareFault:
      return "HardwareFault";
    case StatusCode::kParseError:
      return "ParseError";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ecodb

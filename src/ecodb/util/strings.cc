#include "ecodb/util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace ecodb {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  std::string s = StrFormat("%.*f", digits, v);
  // Drop trailing zeros but keep at least one decimal digit removed cleanly.
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

namespace {

// Days from civil algorithm (Howard Hinnant), valid far beyond our range.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y64 = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(y64 + (*m <= 2));
}

}  // namespace

int32_t ParseDateToDays(std::string_view iso) {
  if (iso.size() != 10 || iso[4] != '-' || iso[7] != '-') return INT32_MIN;
  auto digit = [](char c) { return c >= '0' && c <= '9'; };
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!digit(iso[i])) return INT32_MIN;
  }
  int y = (iso[0] - '0') * 1000 + (iso[1] - '0') * 100 + (iso[2] - '0') * 10 +
          (iso[3] - '0');
  unsigned m = static_cast<unsigned>((iso[5] - '0') * 10 + (iso[6] - '0'));
  unsigned d = static_cast<unsigned>((iso[8] - '0') * 10 + (iso[9] - '0'));
  if (m < 1 || m > 12 || d < 1 || d > 31) return INT32_MIN;
  return static_cast<int32_t>(DaysFromCivil(y, m, d));
}

std::string DaysToDateString(int32_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return StrFormat("%04d-%02u-%02u", y, m, d);
}

}  // namespace ecodb

// Aligned text tables for the bench harnesses (paper table/figure output).

#ifndef ECODB_UTIL_TABLE_PRINTER_H_
#define ECODB_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace ecodb {

/// Collects rows of string cells and renders an aligned, pipe-separated
/// table. Numeric formatting is the caller's job (use FormatDouble).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Adds a horizontal rule between row groups.
  void AddSeparator();

  /// Renders the full table (header, rule, rows).
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace ecodb

#endif  // ECODB_UTIL_TABLE_PRINTER_H_

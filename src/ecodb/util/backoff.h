// Deterministic bounded exponential backoff.
//
// One Backoff instance tracks the retry state of one fallible operation:
// how many attempts have failed, and how long to wait before the next
// one. Delays grow geometrically from `initial_delay_seconds` by
// `multiplier`, saturate at `max_delay_seconds`, and can be spread by
// *deterministic* jitter — a pure function of (jitter_seed, stream,
// attempt), so the same seed always produces the same delay schedule.
// Nothing here reads a real clock or a global RNG; simulated-time users
// (the fault-injected buffer pool, the workload scheduler's retry layer)
// stay bit-reproducible.
//
// Waiting itself is the caller's business: in this codebase a backoff
// wait is energy-accounted simulated idle time (Machine::Idle), so the
// delay is handed back (or passed through StepOrExhaust's hook) rather
// than slept here.

#ifndef ECODB_UTIL_BACKOFF_H_
#define ECODB_UTIL_BACKOFF_H_

#include <cstdint>
#include <limits>
#include <utility>

namespace ecodb {

struct BackoffPolicy {
  /// Failed attempts tolerated *after* the first one; the (max_retries+1)-th
  /// failure exhausts the budget. 0 disables retrying entirely.
  int max_retries = 4;

  double initial_delay_seconds = 1e-3;
  double multiplier = 2.0;

  /// Upper bound on a single delay (applied before jitter). Infinity by
  /// default: pure geometric growth, as the PR 6 buffer-pool retry loop had.
  double max_delay_seconds = std::numeric_limits<double>::infinity();

  /// Fraction of each delay randomized away: the k-th delay becomes
  /// base_k * (1 - jitter_fraction * u) with u uniform in [0, 1) drawn
  /// deterministically from (jitter_seed, stream, k). 0 disables jitter
  /// (delays are exactly base_k); must lie in [0, 1].
  double jitter_fraction = 0.0;
  uint64_t jitter_seed = 0;
};

class Backoff {
 public:
  /// `stream` decorrelates jitter between instances sharing one policy
  /// (the scheduler uses the query tag, so two queries retrying at the
  /// same simulated instant do not wake in lockstep).
  explicit Backoff(const BackoffPolicy& policy, uint64_t stream = 0)
      : policy_(policy), stream_(stream) {}

  /// True once the retry budget is spent: attempts() == max_retries.
  bool Exhausted() const { return attempts_ >= policy_.max_retries; }

  /// Delay to wait before the next retry; advances the attempt counter.
  /// The k-th call (k = 0-based attempts() before the call) returns
  /// min(initial * multiplier^k, max_delay) shrunk by jitter.
  double NextDelaySeconds() {
    double base = policy_.initial_delay_seconds;
    for (int i = 0; i < attempts_ && base < policy_.max_delay_seconds; ++i) {
      base *= policy_.multiplier;
    }
    if (base > policy_.max_delay_seconds) base = policy_.max_delay_seconds;
    if (policy_.jitter_fraction > 0.0) {
      base *= 1.0 - policy_.jitter_fraction *
                        UnitUniform(policy_.jitter_seed, stream_,
                                    static_cast<uint64_t>(attempts_));
    }
    ++attempts_;
    return base;
  }

  /// One retry step through the caller's energy-charging hook: returns
  /// false when the budget is exhausted; otherwise computes the next
  /// delay, hands it to `idle` (e.g. `[&](double s) { machine->Idle(s); }`)
  /// and returns true.
  template <typename IdleFn>
  bool StepOrExhaust(IdleFn&& idle) {
    if (Exhausted()) return false;
    std::forward<IdleFn>(idle)(NextDelaySeconds());
    return true;
  }

  int attempts() const { return attempts_; }
  const BackoffPolicy& policy() const { return policy_; }
  void Reset() { attempts_ = 0; }

 private:
  /// SplitMix64 over the mixed key — the same generator family the fault
  /// injector uses for its counter-seeded decision stream.
  static double UnitUniform(uint64_t seed, uint64_t stream, uint64_t k) {
    uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (stream + 1) + k;
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

  BackoffPolicy policy_;
  uint64_t stream_;
  int attempts_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_UTIL_BACKOFF_H_

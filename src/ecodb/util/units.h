// Unit conventions used throughout the simulator.
//
//   time    : double seconds
//   energy  : double joules
//   power   : double watts
//   freq    : double hertz
//   voltage : double volts
//
// Helper constants keep call sites readable without a heavyweight unit
// type system.

#ifndef ECODB_UTIL_UNITS_H_
#define ECODB_UTIL_UNITS_H_

namespace ecodb {

inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Energy-delay product: joules x seconds. The paper's preferred combined
/// metric (Section 3.4); lower is better.
inline constexpr double Edp(double joules, double seconds) {
  return joules * seconds;
}

}  // namespace ecodb

#endif  // ECODB_UTIL_UNITS_H_

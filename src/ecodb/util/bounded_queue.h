// Bounded single-producer / single-consumer queue with cancellation.
//
// Extracted from exec/morsel.cc so every morsel driver (streaming spine,
// parallel aggregation, parallel sort, parallel join build) shares one
// queue instead of growing per-driver copies. Exactly one producer
// pushes and one consumer pops per instance; the morsel layer allocates
// one queue per worker, with the coordinator as the single consumer of
// each.
//
// Push blocks while the queue is full (backpressure keeps memory
// bounded) and bails out when the stream is cancelled; Pop blocks while
// empty — safe because a live producer always delivers either the next
// item or a terminal marker before exiting.

#ifndef ECODB_UTIL_BOUNDED_QUEUE_H_
#define ECODB_UTIL_BOUNDED_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ecodb {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or `cancel` is set), then enqueues.
  /// Returns false — dropping `item` — when cancelled.
  bool Push(T item, const std::atomic<bool>& cancel) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_push_.wait(lock, [&] {
      return items_.size() < capacity_ || cancel.load(std::memory_order_relaxed);
    });
    if (cancel.load(std::memory_order_relaxed)) return false;
    items_.push_back(std::move(item));
    cv_pop_.notify_one();
    return true;
  }

  /// Blocks until an item is available and dequeues it.
  T Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_pop_.wait(lock, [&] { return !items_.empty(); });
    T item = std::move(items_.front());
    items_.pop_front();
    cv_push_.notify_one();
    return item;
  }

  /// Wakes a producer blocked in Push after `cancel` was set.
  void WakeProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    cv_push_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_push_, cv_pop_;
  std::deque<T> items_;
  size_t capacity_;
};

}  // namespace ecodb

#endif  // ECODB_UTIL_BOUNDED_QUEUE_H_

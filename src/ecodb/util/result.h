// Result<T>: a value-or-Status holder (Arrow's arrow::Result idiom).

#ifndef ECODB_UTIL_RESULT_H_
#define ECODB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "ecodb/util/status.h"

namespace ecodb {

/// Holds either a successfully produced T or the Status explaining why no
/// value could be produced. Access to value() on an errored Result is a
/// programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result-producing expression to `lhs`, or returns
/// the error Status from the enclosing function.
#define ECODB_ASSIGN_OR_RETURN(lhs, expr)       \
  auto ECODB_CONCAT_(res_, __LINE__) = (expr);  \
  if (!ECODB_CONCAT_(res_, __LINE__).ok())      \
    return ECODB_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(ECODB_CONCAT_(res_, __LINE__)).value()

#define ECODB_CONCAT_(a, b) ECODB_CONCAT_IMPL_(a, b)
#define ECODB_CONCAT_IMPL_(a, b) a##b

}  // namespace ecodb

#endif  // ECODB_UTIL_RESULT_H_

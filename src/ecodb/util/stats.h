// Small statistics helpers.
//
// The paper's measurement protocol (Section 3.1): run each workload five
// times, discard the top and bottom readings, average the middle three.
// TrimmedMean implements exactly that (and the general k-trim case).

#ifndef ECODB_UTIL_STATS_H_
#define ECODB_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace ecodb {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& xs);

/// Sorts a copy and drops `trim` values from each end, then averages the
/// rest. With xs.size()==5 and trim==1 this is the paper's protocol.
/// If 2*trim >= xs.size(), falls back to the plain mean.
double TrimmedMean(const std::vector<double>& xs, size_t trim);

/// Median (average of middle two for even sizes); 0 for empty input.
double Median(const std::vector<double>& xs);

/// Nearest-rank percentile (pct in [0, 100]) over a sorted copy; 0 for
/// empty input. Percentile(xs, 50) is the lower median; Percentile(xs,
/// 100) the max. Used for the workload scheduler's latency tails.
double Percentile(const std::vector<double>& xs, double pct);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Geometric mean; 0 for empty input; requires all xs > 0.
double GeoMean(const std::vector<double>& xs);

/// Simple online accumulator for count/mean/min/max/variance.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Population variance.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ecodb

#endif  // ECODB_UTIL_STATS_H_

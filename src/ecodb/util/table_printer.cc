#include "ecodb/util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace ecodb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  Row r;
  r.cells = std::move(cells);
  r.cells.resize(header_.size());
  rows_.push_back(std::move(r));
}

void TablePrinter::AddSeparator() {
  Row r;
  r.separator = true;
  rows_.push_back(std::move(r));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (size_t i = 0; i < r.cells.size(); ++i) {
      widths[i] = std::max(widths[i], r.cells[i].size());
    }
  }

  auto render_rule = [&] {
    std::string line = "+";
    for (size_t w : widths) {
      line.append(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : header_[i];
      line += " " + c;
      line.append(widths[i] - c.size() + 1, ' ');
      line += "|";
    }
    line += "\n";
    return line;
  };

  std::string out = render_rule();
  out += render_row(header_);
  out += render_rule();
  for (const Row& r : rows_) {
    out += r.separator ? render_rule() : render_row(r.cells);
  }
  out += render_rule();
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace ecodb

#include "ecodb/util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecodb {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64, used to expand the user seed into generator state.
inline uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation; the modulo bias is
  // negligible for our n (<< 2^64) but we reject to be exact.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::string Rng::AlphaString(int min_len, int max_len) {
  int len = static_cast<int>(UniformInt(min_len, max_len));
  std::string out(static_cast<size_t>(len), 'a');
  for (char& c : out) c = static_cast<char>('a' + NextBelow(26));
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double pick = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (pick < acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace ecodb

// MemoryTracker: logical-byte accounting for one query's scratch memory.
//
// The tracker counts *logical* bytes (8 per numeric cell, payload length
// per string cell, 1 per null — see LogicalCellBytes in
// exec/query_governor.h), not host allocation sizes. Host footprints
// differ legitimately between execution modes (row mode boxes Values
// where batch mode borrows string pointers into arenas), but the logical
// content of every operator pool is identical by the parity contract —
// so a memory budget expressed in logical bytes trips, or doesn't trip,
// identically in ExecMode::kRow and ExecMode::kBatch. peak_bytes() is
// what QueryExecStats::peak_memory_bytes reports.
//
// Lives in util/ so storage-layer containers (StringArena) can carry an
// optional tracker without depending on the exec layer.

#ifndef ECODB_UTIL_MEMORY_TRACKER_H_
#define ECODB_UTIL_MEMORY_TRACKER_H_

#include <cstdint>

namespace ecodb {

class MemoryTracker {
 public:
  void Charge(uint64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) {
      peak_ = current_;
      if (peak_mirror_ != nullptr) *peak_mirror_ = peak_;
    }
  }

  /// Defensive: never underflows (a release of more than was charged
  /// clamps to zero rather than wrapping).
  void Release(uint64_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  uint64_t current_bytes() const { return current_; }
  uint64_t peak_bytes() const { return peak_; }

  /// Mirrors the peak into an external counter on every new high-water
  /// mark (QueryExecStats::peak_memory_bytes), so stats snapshots stay
  /// current without a sync step.
  void BindPeakMirror(uint64_t* mirror) {
    peak_mirror_ = mirror;
    if (peak_mirror_ != nullptr) *peak_mirror_ = peak_;
  }

  void ResetPeak() {
    peak_ = current_;
    if (peak_mirror_ != nullptr) *peak_mirror_ = peak_;
  }

 private:
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
  uint64_t* peak_mirror_ = nullptr;
};

}  // namespace ecodb

#endif  // ECODB_UTIL_MEMORY_TRACKER_H_

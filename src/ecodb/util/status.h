// Status: RocksDB-style error handling without exceptions.
//
// Library code in ecodb never throws; fallible operations return a Status
// (or a Result<T>, see result.h). Statuses carry a coarse code plus a
// human-readable message.

#ifndef ECODB_UTIL_STATUS_H_
#define ECODB_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace ecodb {

/// Coarse classification of an error. Kept deliberately small; most call
/// sites only branch on ok() vs. !ok().
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// The simulated machine rejected or aborted under the requested
  /// voltage/frequency settings (PC-Probe-style instability warning).
  kUnstableSettings,
  /// A simulated hardware fault (used by failure-injection tests).
  kHardwareFault,
  /// SQL text could not be lexed/parsed/bound.
  kParseError,
  /// The query governor's simulated-time deadline passed before the
  /// query finished.
  kDeadlineExceeded,
  /// The query was cancelled cooperatively (external cancel flag or a
  /// charged-cycle cancellation point).
  kCancelled,
  /// The query exceeded its logical memory budget.
  kResourceExhausted,
  /// The system refused to take the work on at all: admission queue
  /// full, projected wait beyond the class deadline, or circuit breaker
  /// open. Distinct from kResourceExhausted (which means an *admitted*
  /// query blew its own budget) so callers can tell "retry elsewhere /
  /// later" from "your query is too big".
  kUnavailable,
};

/// Every StatusCode, in declaration order. Lets tests and diagnostics
/// enumerate codes without hand-maintaining a parallel list (the old
/// ToString switch silently lagged behind enum growth).
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,
    StatusCode::kInvalidArgument,
    StatusCode::kNotFound,
    StatusCode::kAlreadyExists,
    StatusCode::kOutOfRange,
    StatusCode::kUnimplemented,
    StatusCode::kInternal,
    StatusCode::kUnstableSettings,
    StatusCode::kHardwareFault,
    StatusCode::kParseError,
    StatusCode::kDeadlineExceeded,
    StatusCode::kCancelled,
    StatusCode::kResourceExhausted,
    StatusCode::kUnavailable,
};

/// Canonical name of a code ("InvalidArgument", "DeadlineExceeded", ...).
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName. Returns false (and leaves `*out` untouched)
/// for an unrecognized name.
bool StatusCodeFromName(std::string_view name, StatusCode* out);

/// Value-type status. Cheap to copy for the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status UnstableSettings(std::string_view msg) {
    return Status(StatusCode::kUnstableSettings, msg);
  }
  static Status HardwareFault(std::string_view msg) {
    return Status(StatusCode::kHardwareFault, msg);
  }
  static Status ParseError(std::string_view msg) {
    return Status(StatusCode::kParseError, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(StatusCode::kCancelled, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnstableSettings() const {
    return code_ == StatusCode::kUnstableSettings;
  }
  bool IsHardwareFault() const { return code_ == StatusCode::kHardwareFault; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function. Standard early-return macro (RocksDB/Arrow idiom).
#define ECODB_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::ecodb::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace ecodb

#endif  // ECODB_UTIL_STATUS_H_

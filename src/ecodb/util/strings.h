// String formatting/parsing helpers shared across modules.

#ifndef ECODB_UTIL_STRINGS_H_
#define ECODB_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ecodb {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on a single character; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

/// ASCII case-insensitive equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Formats a double with `digits` significant decimals, no trailing junk.
std::string FormatDouble(double v, int digits = 3);

/// "1994-06-08" <-> days since 1970-01-01 (proleptic Gregorian).
/// Returns INT32_MIN on malformed input.
int32_t ParseDateToDays(std::string_view iso);
std::string DaysToDateString(int32_t days);

}  // namespace ecodb

#endif  // ECODB_UTIL_STRINGS_H_

#include "ecodb/util/stats.h"

#include <algorithm>
#include <cmath>

namespace ecodb {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double TrimmedMean(const std::vector<double>& xs, size_t trim) {
  if (xs.empty()) return 0.0;
  if (2 * trim >= xs.size()) return Mean(xs);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  size_t kept = 0;
  for (size_t i = trim; i < sorted.size() - trim; ++i) {
    sum += sorted[i];
    ++kept;
  }
  return sum / static_cast<double>(kept);
}

double Median(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

double Percentile(const std::vector<double>& xs, double pct) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  if (pct <= 0.0) return sorted.front();
  if (pct >= 100.0) return sorted.back();
  // Nearest-rank: the smallest value with at least pct% of the sample at
  // or below it.
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ecodb

#include "ecodb/core/policy.h"

#include <algorithm>

namespace ecodb {

Result<OperatingPoint> SelectOperatingPoint(const TradeoffCurve& curve,
                                            const SlaPolicy& policy) {
  std::vector<const OperatingPoint*> candidates;
  candidates.push_back(&curve.stock);
  for (const OperatingPoint& p : curve.points) candidates.push_back(&p);

  const OperatingPoint* best = nullptr;
  for (const OperatingPoint* p : candidates) {
    if (p->ratio.time_ratio > policy.max_time_ratio) continue;
    if (p->measurement.seconds > policy.max_seconds) continue;
    if (best == nullptr) {
      best = p;
      continue;
    }
    switch (policy.objective) {
      case SlaPolicy::Objective::kMinEnergy:
        if (p->measurement.cpu_j < best->measurement.cpu_j) best = p;
        break;
      case SlaPolicy::Objective::kMinEdp:
        if (p->measurement.edp < best->measurement.edp) best = p;
        break;
      case SlaPolicy::Objective::kMinTime:
        if (p->measurement.seconds < best->measurement.seconds) best = p;
        break;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no operating point satisfies the SLA bounds");
  }
  return *best;
}

QueryLimits DeriveQueryLimits(const SlaPolicy& policy,
                              double baseline_seconds,
                              uint64_t memory_budget_bytes) {
  QueryLimits limits;
  double deadline = policy.max_seconds;
  if (baseline_seconds > 0.0 &&
      policy.max_time_ratio < std::numeric_limits<double>::infinity()) {
    deadline = std::min(deadline, policy.max_time_ratio * baseline_seconds);
  }
  if (deadline < std::numeric_limits<double>::infinity()) {
    limits.deadline_seconds = deadline;
  }
  limits.memory_budget_bytes = memory_budget_bytes;
  return limits;
}

std::vector<RatioPoint> EnergyTimeFrontier(const TradeoffCurve& curve) {
  std::vector<RatioPoint> all;
  all.push_back(curve.stock.ratio);
  for (const OperatingPoint& p : curve.points) all.push_back(p.ratio);
  std::sort(all.begin(), all.end(), [](const RatioPoint& a,
                                       const RatioPoint& b) {
    if (a.time_ratio != b.time_ratio) return a.time_ratio < b.time_ratio;
    return a.energy_ratio < b.energy_ratio;
  });
  std::vector<RatioPoint> frontier;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const RatioPoint& p : all) {
    if (p.energy_ratio < best_energy) {
      frontier.push_back(p);
      best_energy = p.energy_ratio;
    }
  }
  return frontier;
}

}  // namespace ecodb

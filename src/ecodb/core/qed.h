// QED — Improved Query Energy-efficiency by Introducing Explicit Delays
// (paper Section 4).
//
// Structurally identical selection queries are delayed into a queue; when
// the queue reaches a threshold the whole batch is merged (predicate
// disjunction, via the multi-query optimizer) into one query, run once,
// and the result split back per query in application logic (whose cost is
// charged). Energy per query drops; average response time rises.
//
// Measurement rules follow the paper exactly:
//  * sequential baseline: time/energy start when the first query is sent;
//    query i's response time is its completion offset from batch start;
//  * QED: queue build-up time is NOT counted (the DBMS sleeps; a master
//    holds the queue); time/energy start when the merged batch is sent.

#ifndef ECODB_CORE_QED_H_
#define ECODB_CORE_QED_H_

#include <vector>

#include "ecodb/core/database.h"
#include "ecodb/optimizer/mqo.h"
#include "ecodb/tpch/workloads.h"

namespace ecodb {

struct QedOptions {
  /// Queue threshold: flush when this many queries are pending.
  int batch_size = 35;
  /// Evaluate the merged disjunction as a hashed IN (ablation) instead of
  /// the paper-faithful short-circuit OR chain.
  bool hashed_in_list = false;
};

/// Side-by-side measurement of one batch, sequential vs QED.
struct QedBatchReport {
  int batch_size = 0;

  // Sequential baseline.
  double seq_total_s = 0;
  double seq_avg_response_s = 0;
  double seq_cpu_j = 0;
  std::vector<double> seq_response_s;  ///< per query, from batch start

  // QED (merged).
  double qed_total_s = 0;      ///< merged query + split
  double qed_avg_response_s = 0;  ///< == qed_total_s for every query
  double qed_cpu_j = 0;

  // Ratios (QED / sequential); energy is per-query (== total ratio).
  double energy_ratio = 1.0;
  double response_ratio = 1.0;
  double edp_ratio = 1.0;  ///< (E/query * avg response) ratio

  /// Response-time degradation of the first and last queries in the batch
  /// (the paper notes degradation is most severe for the first query).
  double first_query_degradation = 1.0;
  double last_query_degradation = 1.0;

  /// Whether the split per-query results exactly matched the sequential
  /// per-query results (correctness check, always verified).
  bool results_match = false;
};

class QedScheduler {
 public:
  QedScheduler(Database* db, const QedOptions& options)
      : db_(db), options_(options) {}

  // --- Batch-comparison API (Figure 6 harness) ---

  /// Runs the first `options.batch_size` queries of the selection workload
  /// sequentially and merged, returning the full report.
  Result<QedBatchReport> RunComparison(const tpch::Workload& workload);

  // --- Queue API (admission-control style, for applications) ---

  /// Enqueues a selection query (plan must be Project(Filter(Scan))).
  Status Submit(PlanNodePtr plan);
  /// True when the queue reached the batch threshold.
  bool ShouldFlush() const {
    return static_cast<int>(queue_.size()) >= options_.batch_size;
  }
  int pending() const { return static_cast<int>(queue_.size()); }

  /// Adjusts the flush threshold mid-stream (clamped to >= 1). The
  /// workload scheduler escalates this under overload — a bigger merge
  /// batch trades per-query response time for joules/query, the paper's
  /// Figure 6 knob, before any query is shed.
  void set_batch_size(int n) { options_.batch_size = n < 1 ? 1 : n; }
  int batch_size() const { return options_.batch_size; }

  /// Merges the queued batch into one plan *without executing it*,
  /// consuming the queue either way (a failed merge discards the batch —
  /// callers keep their own handles on the member plans). Callers that
  /// schedule execution themselves (the workload scheduler runs the
  /// merged plan as one interleavable task) split the result with
  /// SplitMergedResult afterwards.
  Result<MergedSelection> MergeQueued();

  struct FlushResult {
    std::vector<std::vector<Row>> per_query_rows;
    double total_s = 0;
    double cpu_j = 0;
  };
  /// Merges and runs the queued batch, returning per-query results in
  /// submission order. Clears the queue.
  Result<FlushResult> Flush();

 private:
  Database* db_;
  QedOptions options_;
  std::vector<PlanNodePtr> queue_;
};

/// The paper's "simple analytical model" for QED response times: with a
/// single-query time t_q, a merged-query time T_m(N) = base + slope * N,
/// and zero think time,
///   sequential avg response  = t_q * (N+1)/2
///   QED response (any query) = T_m(N)
/// The model exposes the per-query degradation the paper describes (worst
/// for the first query, falling with position) and predicts where QED's
/// EDP beats sequential.
struct QedAnalyticalModel {
  double single_query_s = 0;  ///< t_q
  double merged_base_s = 0;   ///< scan cost independent of batch size
  double merged_slope_s = 0;  ///< added cost per disjunct (incl. split)

  double MergedTime(int n) const {
    return merged_base_s + merged_slope_s * n;
  }
  double SeqAvgResponse(int n) const {
    return single_query_s * (n + 1) / 2.0;
  }
  double ResponseRatio(int n) const {
    return MergedTime(n) / SeqAvgResponse(n);
  }
  /// Degradation of the i-th query (1-based) in an N-batch: QED response
  /// over that query's sequential response i*t_q.
  double QueryDegradation(int i, int n) const {
    return MergedTime(n) / (single_query_s * i);
  }

  /// Fits (merged_base_s, merged_slope_s) from two measured batch points.
  static QedAnalyticalModel Fit(double single_query_s, int n1, double t1,
                                int n2, double t2);
};

}  // namespace ecodb

#endif  // ECODB_CORE_QED_H_

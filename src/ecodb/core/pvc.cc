#include "ecodb/core/pvc.h"

namespace ecodb {

std::vector<SystemSettings> PvcController::PaperGrid() {
  std::vector<SystemSettings> grid;
  for (VoltageDowngrade d :
       {VoltageDowngrade::kSmall, VoltageDowngrade::kMedium}) {
    for (double uc : {0.05, 0.10, 0.15}) {
      grid.push_back(SystemSettings{uc, d});
    }
  }
  return grid;
}

std::vector<SystemSettings> PvcController::MediumGrid() {
  std::vector<SystemSettings> grid;
  for (double uc : {0.05, 0.10, 0.15}) {
    grid.push_back(SystemSettings{uc, VoltageDowngrade::kMedium});
  }
  return grid;
}

double PvcController::TheoreticalEdp(const SystemSettings& s) const {
  // V^2/F at the top p-state for this profile's load class (Section 3.4).
  CpuModel cpu(db_->options().machine.cpu);
  Status st = cpu.ApplySettings(s);
  if (!st.ok()) return 0.0;
  return cpu.TheoreticalEdpFactor(db_->profile().load_class);
}

Result<TradeoffCurve> PvcController::MeasureCurve(
    const tpch::Workload& workload, const std::vector<SystemSettings>& grid,
    const RunOptions& options) {
  ExperimentRunner runner(db_);
  TradeoffCurve curve;

  curve.stock.settings = SystemSettings::Stock();
  ECODB_ASSIGN_OR_RETURN(
      curve.stock.measurement,
      runner.RunWorkload(workload, curve.stock.settings, options));
  curve.stock.ratio = RatioPoint{};
  double stock_theory = TheoreticalEdp(curve.stock.settings);

  for (const SystemSettings& s : grid) {
    OperatingPoint p;
    p.settings = s;
    ECODB_ASSIGN_OR_RETURN(p.measurement,
                           runner.RunWorkload(workload, s, options));
    p.ratio = RatioVs(p.measurement, curve.stock.measurement);
    double theory = TheoreticalEdp(s);
    p.theoretical_edp_ratio =
        stock_theory > 0 ? theory / stock_theory : 1.0;
    curve.points.push_back(std::move(p));
  }
  return curve;
}

std::vector<std::vector<SystemSettings>> PvcController::PerCoreGrid(
    int num_cores) {
  std::vector<std::vector<SystemSettings>> grid;
  if (num_cores < 1) return grid;
  size_t n = static_cast<size_t>(num_cores);
  for (const SystemSettings& s : MediumGrid()) {
    grid.emplace_back(n, s);  // symmetric: slow-and-wide
    std::vector<SystemSettings> asym(n, SystemSettings::Stock());
    asym[n - 1] = s;  // asymmetric: one eco core
    grid.push_back(std::move(asym));
  }
  return grid;
}

Result<CoreTradeoffCurve> PvcController::MeasureCorePhaseCurve(
    const tpch::Workload& workload,
    const std::vector<std::vector<SystemSettings>>& grid) {
  Machine* machine = db_->machine();
  const int n_cores = machine->num_cores();

  // Capture: one parallel run at the current settings fills the core
  // ledgers with each core's raw (cycles, mem_lines) morsel work.
  const int prev_workers = db_->exec_workers();
  db_->set_exec_workers(n_cores);
  machine->ResetCoreLedgers();
  Status run_status;
  for (const PlanNodePtr& q : workload.queries) {
    auto r = db_->ExecutePlanQuery(*q);
    if (!r.ok()) {
      run_status = r.status();
      break;
    }
  }
  db_->set_exec_workers(prev_workers);
  if (!run_status.ok()) return run_status;
  const std::vector<CoreLedger> work = machine->core_ledgers();
  machine->ResetCoreLedgers();

  // Re-price the captured raw work under one per-core assignment. The
  // ledgers price at accrual time, so a what-if sweep re-accrues on a
  // scratch machine instead of re-executing the workload.
  const LoadClass cls = db_->profile().load_class;
  auto price = [&](const std::vector<SystemSettings>& assignment)
      -> Result<ParallelPhaseSummary> {
    if (static_cast<int>(assignment.size()) != n_cores) {
      return Status::InvalidArgument(
          "per-core assignment must have one entry per core");
    }
    Machine scratch(db_->options().machine);
    for (int c = 0; c < n_cores; ++c) {
      size_t i = static_cast<size_t>(c);
      ECODB_RETURN_NOT_OK(scratch.ApplyCoreSettings(c, assignment[i]));
      scratch.AccrueCoreWork(c, work[i].cycles, work[i].mem_lines, cls);
    }
    return scratch.SummarizeCorePhase();
  };

  CoreTradeoffCurve curve;
  curve.stock.core_settings.assign(static_cast<size_t>(n_cores),
                                   SystemSettings::Stock());
  ECODB_ASSIGN_OR_RETURN(curve.stock.summary,
                         price(curve.stock.core_settings));
  const double stock_mk = curve.stock.summary.makespan_s;
  const double stock_dc = curve.stock.summary.dc_j;
  const double stock_edp = stock_dc * stock_mk;

  for (const std::vector<SystemSettings>& assignment : grid) {
    CoreOperatingPoint p;
    p.core_settings = assignment;
    ECODB_ASSIGN_OR_RETURN(p.summary, price(assignment));
    p.makespan_ratio =
        stock_mk > 0 ? p.summary.makespan_s / stock_mk : 1.0;
    p.dc_energy_ratio = stock_dc > 0 ? p.summary.dc_j / stock_dc : 1.0;
    double edp = p.summary.dc_j * p.summary.makespan_s;
    p.edp_ratio = stock_edp > 0 ? edp / stock_edp : 1.0;
    curve.points.push_back(std::move(p));
  }
  return curve;
}

Result<TradeoffCurve> PvcController::PredictCurve(
    const tpch::Workload& workload, const std::vector<SystemSettings>& grid) {
  CostModel model(db_->catalog(), &db_->profile(), db_->options().machine);

  auto predict = [&](const SystemSettings& s) -> Result<RunMeasurement> {
    RunMeasurement m;
    for (const PlanNodePtr& q : workload.queries) {
      ECODB_ASSIGN_OR_RETURN(PlanCost c, model.Estimate(*q, s));
      m.seconds += c.est_seconds;
      m.cpu_j += c.est_cpu_joules;
      m.query_completion_s.push_back(m.seconds);
    }
    m.edp = m.cpu_j * m.seconds;
    return m;
  };

  TradeoffCurve curve;
  curve.stock.settings = SystemSettings::Stock();
  ECODB_ASSIGN_OR_RETURN(curve.stock.measurement,
                         predict(curve.stock.settings));
  double stock_theory = TheoreticalEdp(curve.stock.settings);

  for (const SystemSettings& s : grid) {
    OperatingPoint p;
    p.settings = s;
    ECODB_ASSIGN_OR_RETURN(p.measurement, predict(s));
    p.ratio = RatioVs(p.measurement, curve.stock.measurement);
    double theory = TheoreticalEdp(s);
    p.theoretical_edp_ratio =
        stock_theory > 0 ? theory / stock_theory : 1.0;
    curve.points.push_back(std::move(p));
  }
  return curve;
}

}  // namespace ecodb

#include "ecodb/core/pvc.h"

namespace ecodb {

std::vector<SystemSettings> PvcController::PaperGrid() {
  std::vector<SystemSettings> grid;
  for (VoltageDowngrade d :
       {VoltageDowngrade::kSmall, VoltageDowngrade::kMedium}) {
    for (double uc : {0.05, 0.10, 0.15}) {
      grid.push_back(SystemSettings{uc, d});
    }
  }
  return grid;
}

std::vector<SystemSettings> PvcController::MediumGrid() {
  std::vector<SystemSettings> grid;
  for (double uc : {0.05, 0.10, 0.15}) {
    grid.push_back(SystemSettings{uc, VoltageDowngrade::kMedium});
  }
  return grid;
}

double PvcController::TheoreticalEdp(const SystemSettings& s) const {
  // V^2/F at the top p-state for this profile's load class (Section 3.4).
  CpuModel cpu(db_->options().machine.cpu);
  Status st = cpu.ApplySettings(s);
  if (!st.ok()) return 0.0;
  return cpu.TheoreticalEdpFactor(db_->profile().load_class);
}

Result<TradeoffCurve> PvcController::MeasureCurve(
    const tpch::Workload& workload, const std::vector<SystemSettings>& grid,
    const RunOptions& options) {
  ExperimentRunner runner(db_);
  TradeoffCurve curve;

  curve.stock.settings = SystemSettings::Stock();
  ECODB_ASSIGN_OR_RETURN(
      curve.stock.measurement,
      runner.RunWorkload(workload, curve.stock.settings, options));
  curve.stock.ratio = RatioPoint{};
  double stock_theory = TheoreticalEdp(curve.stock.settings);

  for (const SystemSettings& s : grid) {
    OperatingPoint p;
    p.settings = s;
    ECODB_ASSIGN_OR_RETURN(p.measurement,
                           runner.RunWorkload(workload, s, options));
    p.ratio = RatioVs(p.measurement, curve.stock.measurement);
    double theory = TheoreticalEdp(s);
    p.theoretical_edp_ratio =
        stock_theory > 0 ? theory / stock_theory : 1.0;
    curve.points.push_back(std::move(p));
  }
  return curve;
}

Result<TradeoffCurve> PvcController::PredictCurve(
    const tpch::Workload& workload, const std::vector<SystemSettings>& grid) {
  CostModel model(db_->catalog(), &db_->profile(), db_->options().machine);

  auto predict = [&](const SystemSettings& s) -> Result<RunMeasurement> {
    RunMeasurement m;
    for (const PlanNodePtr& q : workload.queries) {
      ECODB_ASSIGN_OR_RETURN(PlanCost c, model.Estimate(*q, s));
      m.seconds += c.est_seconds;
      m.cpu_j += c.est_cpu_joules;
      m.query_completion_s.push_back(m.seconds);
    }
    m.edp = m.cpu_j * m.seconds;
    return m;
  };

  TradeoffCurve curve;
  curve.stock.settings = SystemSettings::Stock();
  ECODB_ASSIGN_OR_RETURN(curve.stock.measurement,
                         predict(curve.stock.settings));
  double stock_theory = TheoreticalEdp(curve.stock.settings);

  for (const SystemSettings& s : grid) {
    OperatingPoint p;
    p.settings = s;
    ECODB_ASSIGN_OR_RETURN(p.measurement, predict(s));
    p.ratio = RatioVs(p.measurement, curve.stock.measurement);
    double theory = TheoreticalEdp(s);
    p.theoretical_edp_ratio =
        stock_theory > 0 ? theory / stock_theory : 1.0;
    curve.points.push_back(std::move(p));
  }
  return curve;
}

}  // namespace ecodb

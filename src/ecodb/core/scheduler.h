// WorkloadScheduler: admission-controlled concurrent query scheduling on
// the simulated machine, with retry, shedding, and graceful degradation.
//
// The paper's energy knobs (PVC operating points, QED batching) are
// evaluated on one query or one batch at a time; a deployed eco-DBMS
// faces a *stream*: queries arrive on their own schedule, contend for
// worker slots, hit injected hardware faults, and carry per-class SLAs.
// This scheduler closes that gap deterministically — every run is a pure
// function of (seed, workload, options) on the simulated clock, so
// latency distributions, joules/query and shed counts are bit-exact
// run-to-run.
//
// Mechanics:
//  * Arrivals. An ArrivalProcess drives submissions: open-loop (Poisson
//    arrivals at `rate_qps`, load independent of completions) or
//    closed-loop (`num_clients` clients, each thinking an exponential
//    `think_seconds` between its completions and next submission).
//  * Admission. A bounded FIFO queue feeds `worker_slots` concurrently
//    executing QueryTasks, interleaved round-robin one governor-
//    checkpointed step at a time so their service intervals overlap on
//    the shared clock. Each admitted query gets governor limits derived
//    from its class SLA (DeriveQueryLimits), deadline anchored at
//    admission — queue wait and interference count against it.
//  * Degradation ladder (the robustness core). Overload pressure first
//    spends the paper's energy/latency knobs, and sheds only when they
//    are exhausted: levels 1..qed_levels escalate the QED merge batch
//    (queued mergeable selections are merged into one task and split on
//    completion); levels above that apply eco operating points to the
//    whole machine (in-flight queries refresh mid-stream). Only at the
//    top of the ladder are arrivals shed with kUnavailable — queue full,
//    or projected wait (ServiceEstimator) already exceeding the class
//    deadline. `sheds_below_max_level` in the report must stay 0.
//  * Retry. A query killed by a *transient* storm (kHardwareFault after
//    the buffer pool's own bounded retries) is re-queued after a
//    deterministic-jitter exponential backoff (util/backoff.h), up to
//    its class retry budget. Retries bypass the admission bound — the
//    query was already admitted. Deadline/budget/cancel kills are not
//    retried.
//  * Circuit breaker. Consecutive *persistent*-fault failures open the
//    breaker: new arrivals fail fast with kUnavailable for
//    `open_seconds`, then half-open probes decide between closing and
//    re-opening. Retry wake-ups during the open window are deferred to
//    its end.

#ifndef ECODB_CORE_SCHEDULER_H_
#define ECODB_CORE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ecodb/core/adaptive.h"
#include "ecodb/core/database.h"
#include "ecodb/core/policy.h"
#include "ecodb/core/qed.h"
#include "ecodb/exec/query_task.h"
#include "ecodb/sim/event_queue.h"
#include "ecodb/tpch/workloads.h"
#include "ecodb/util/backoff.h"

namespace ecodb {

/// One SLA class: queries of the class share governor limits and a retry
/// budget. (Paper Section 5: "Factors such as SLAs may restrict the
/// choices" — here they decide each query's deadline and how hard the
/// scheduler fights for it.)
struct SchedulerClass {
  std::string name = "default";
  SlaPolicy sla;
  /// Measured solo response time feeding the SLA's relative bound and
  /// the projected-wait shed test; <= 0 = unknown (bounds off).
  double baseline_seconds = 0.0;
  /// Per-query logical memory budget (0 = unlimited).
  uint64_t memory_budget_bytes = 0;
  /// Transient-fault retries granted per query of this class.
  int retry_budget = 2;
};

struct CircuitBreakerOptions {
  /// Consecutive persistent-fault failures that open the breaker.
  int failure_threshold = 3;
  /// Open (fail-fast) window before probing, simulated seconds.
  double open_seconds = 0.05;
  /// Successes required in half-open before closing.
  int half_open_probes = 1;
};

/// Storage-outage fail-fast state machine, time-driven on the simulated
/// clock (no wall time, no threads): closed -> open after
/// `failure_threshold` consecutive persistent-fault failures; open ->
/// half-open once `open_seconds` elapse; half-open -> closed after
/// `half_open_probes` successes, or straight back to open on any
/// persistent failure. Successes and transient outcomes never open it.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerOptions& options)
      : options_(options) {}

  State state(double now_seconds) const {
    if (!open_) return State::kClosed;
    return now_seconds < open_until_s_ ? State::kOpen : State::kHalfOpen;
  }
  /// False only while open: half-open admits (admissions are the probes).
  bool AllowAdmission(double now_seconds) const {
    return state(now_seconds) != State::kOpen;
  }

  void RecordSuccess(double now_seconds) {
    switch (state(now_seconds)) {
      case State::kHalfOpen:
        if (++half_open_successes_ >= options_.half_open_probes) {
          open_ = false;
          half_open_successes_ = 0;
          consecutive_failures_ = 0;
        }
        break;
      case State::kClosed:
        consecutive_failures_ = 0;
        break;
      case State::kOpen:
        break;  // straggler from before the trip; ignore
    }
  }

  void RecordPersistentFailure(double now_seconds) {
    switch (state(now_seconds)) {
      case State::kHalfOpen:
        Open(now_seconds);  // failed probe: immediate re-open
        break;
      case State::kOpen:
        open_until_s_ = now_seconds + options_.open_seconds;  // extend
        break;
      case State::kClosed:
        if (++consecutive_failures_ >= options_.failure_threshold) {
          Open(now_seconds);
        }
        break;
    }
  }

  /// End of the current open window (meaningful while open_/half-open).
  double open_until_seconds() const { return open_until_s_; }
  /// Times the breaker transitioned into open (including re-opens).
  uint64_t opens() const { return opens_; }

 private:
  void Open(double now_seconds) {
    open_ = true;
    open_until_s_ = now_seconds + options_.open_seconds;
    half_open_successes_ = 0;
    consecutive_failures_ = 0;
    ++opens_;
  }

  CircuitBreakerOptions options_;
  bool open_ = false;
  double open_until_s_ = 0.0;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  uint64_t opens_ = 0;
};

/// The overload ladder: what the scheduler spends before it sheds.
/// Level 0 is normal operation. Levels 1..qed_levels merge queued
/// mergeable selections in batches of qed_base_batch << (level-1).
/// Levels qed_levels+1 .. qed_levels+eco_points.size() additionally apply
/// eco_points[level - qed_levels - 1] to the machine. Shedding is legal
/// only at the top level.
struct DegradationOptions {
  /// Queue pressure (size / max_queue_depth) at or above which the
  /// ladder escalates one level...
  double high_watermark = 0.75;
  /// ...and at or below which it relaxes one level (hysteresis band).
  double low_watermark = 0.25;

  int qed_levels = 2;
  int qed_base_batch = 2;

  /// Eco operating points, mild to aggressive. Empty = no eco rungs.
  std::vector<SystemSettings> eco_points = {
      SystemSettings{0.05, VoltageDowngrade::kSmall},
      SystemSettings{0.05, VoltageDowngrade::kMedium},
  };

  int MaxLevel() const {
    return qed_levels + static_cast<int>(eco_points.size());
  }
};

struct ArrivalProcess {
  enum class Kind {
    kOpenLoop,    ///< Poisson arrivals at rate_qps, completion-independent
    kClosedLoop,  ///< num_clients clients with exponential think times
  };
  Kind kind = Kind::kOpenLoop;
  double rate_qps = 50.0;    ///< open loop: mean arrival rate
  int num_clients = 8;       ///< closed loop: concurrent clients
  double think_seconds = 0;  ///< closed loop: mean think time

  static ArrivalProcess OpenLoop(double qps) {
    ArrivalProcess p;
    p.kind = Kind::kOpenLoop;
    p.rate_qps = qps;
    return p;
  }
  static ArrivalProcess ClosedLoop(int clients, double think_s) {
    ArrivalProcess p;
    p.kind = Kind::kClosedLoop;
    p.num_clients = clients;
    p.think_seconds = think_s;
    return p;
  }
};

struct SchedulerOptions {
  uint64_t seed = 0x5ECD5ECDULL;
  /// Queries executing concurrently (interleaved round-robin).
  int worker_slots = 4;
  /// Admission queue bound; pressure is measured against it.
  size_t max_queue_depth = 16;
  /// Pathological safety net: even below the top ladder level the queue
  /// never grows past max_queue_depth * hard_cap_multiplier (such sheds
  /// count as sheds_below_max_level).
  size_t hard_cap_multiplier = 8;

  /// SLA classes; QuerySpec::class_id indexes this. Empty = one default.
  std::vector<SchedulerClass> classes;

  /// Retry-layer backoff. jitter_seed is overridden with `seed` so one
  /// knob reproduces the whole run.
  BackoffPolicy retry_backoff{/*max_retries=*/4,
                              /*initial_delay_seconds=*/2e-3,
                              /*multiplier=*/2.0,
                              /*max_delay_seconds=*/0.5,
                              /*jitter_fraction=*/0.25,
                              /*jitter_seed=*/0};

  CircuitBreakerOptions breaker;
  DegradationOptions degradation;

  /// Keep completed queries' rows in their outcomes (tests compare them
  /// against solo runs; benchmarks turn this off).
  bool keep_rows = true;
};

/// One query submission. The plan is borrowed and must outlive Run().
struct QuerySpec {
  const PlanNode* plan = nullptr;
  int class_id = 0;
  /// >= 0 marks a QED-mergeable selection carrying its predicate literal
  /// (see tpch::Workload::merge_keys); the scheduler only co-merges
  /// distinct keys. tpch::kNotMergeable = never merged.
  int64_t merge_key = tpch::kNotMergeable;
};

/// Terminal record of one submitted query, in submission order.
struct QueryOutcome {
  int class_id = 0;
  /// OK = completed; kUnavailable = shed (never started); anything else
  /// = admitted but failed (governor kill or exhausted retries).
  Status status = Status::OK();
  /// Execution attempts started (0 for shed queries, 1 for clean runs).
  int attempts = 0;
  bool merged = false;  ///< completed as part of a QED-merged task
  double arrival_seconds = 0.0;
  double finish_seconds = 0.0;
  /// finish - arrival for completed queries (includes queue wait and
  /// retry backoff); 0 otherwise.
  double latency_seconds = 0.0;
  /// Wall energy attributed to this query's execution steps (merged
  /// steps split evenly among members). Idle/shed overhead excluded.
  double attributed_wall_j = 0.0;
  std::vector<Row> rows;  ///< kept when options.keep_rows and completed
};

struct ScheduleReport {
  std::vector<QueryOutcome> outcomes;

  // Conservation: submitted == admitted + shed_queue_full +
  // shed_projected_wait + breaker_rejected, and admitted == completed +
  // failed. Checked by tests, not enforced here.
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_projected_wait = 0;
  uint64_t breaker_rejected = 0;

  uint64_t retries = 0;         ///< re-queued after transient kills
  uint64_t merged_batches = 0;  ///< QED-merged tasks run
  uint64_t merged_members = 0;  ///< queries inside those tasks
  uint64_t breaker_opens = 0;

  uint64_t escalations = 0;
  uint64_t deescalations = 0;
  int max_level_reached = 0;
  /// Sheds that happened while the degradation ladder still had rungs
  /// left. The ladder-before-shedding contract keeps this at 0 (only the
  /// hard cap can break it).
  uint64_t sheds_below_max_level = 0;

  // Completed-query latency distribution (arrival -> finish), seconds.
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_latency_s = 0.0;

  double makespan_seconds = 0.0;  ///< first arrival scheduled -> all done
  /// Machine wall energy over the makespan (idle included) / completed.
  double wall_j_per_completed = 0.0;
  double total_wall_j = 0.0;
};

class WorkloadScheduler {
 public:
  WorkloadScheduler(Database* db, const SchedulerOptions& options);

  /// Runs the whole simulated experiment: specs[i] arrives according to
  /// `arrivals` (open loop: pre-scheduled Poisson instants, in order;
  /// closed loop: the first num_clients at once, the rest as clients
  /// free up). Returns when every spec has a terminal outcome. Restores
  /// the machine's operating point before returning. Deterministic for
  /// fixed (specs, arrivals, options, database state).
  Result<ScheduleReport> Run(const std::vector<QuerySpec>& specs,
                             const ArrivalProcess& arrivals);

  /// Convenience: specs from a workload's plans + merge keys, classes
  /// assigned round-robin over `num_classes` (<= 1: all class 0).
  static std::vector<QuerySpec> SpecsFromWorkload(
      const tpch::Workload& workload, int num_classes = 1);

 private:
  struct Job;          // one spec's scheduling lifetime
  struct RunningTask;  // one occupied worker slot (1..n member jobs)
  struct Event;        // arrival / retry wake-up

  class RunState;  // per-Run mutable state (scheduler.cc)

  Database* db_;
  SchedulerOptions options_;
};

}  // namespace ecodb

#endif  // ECODB_CORE_SCHEDULER_H_

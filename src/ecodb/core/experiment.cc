#include "ecodb/core/experiment.h"

#include "ecodb/util/stats.h"

namespace ecodb {

Result<RunMeasurement> ExperimentRunner::RunOnce(
    const tpch::Workload& workload, const RunOptions& options) {
  Machine* machine = db_->machine();
  if (options.cold) {
    db_->ColdRestart();
  } else {
    ECODB_RETURN_NOT_OK(db_->WarmUp());
  }
  machine->ResetMeters();
  double t0 = machine->NowSeconds();

  RunMeasurement m;
  for (const PlanNodePtr& plan : workload.queries) {
    ECODB_ASSIGN_OR_RETURN(QueryResult r, db_->ExecutePlanQuery(*plan));
    m.query_completion_s.push_back(machine->NowSeconds() - t0);
    m.rows_returned += r.num_rows();
  }

  const EnergyLedger& ledger = machine->ledger();
  m.seconds = machine->NowSeconds() - t0;
  m.cpu_j = options.gui_sensor_method
                ? machine->epu().GuiJoules(m.seconds)
                : ledger.cpu_j;
  m.disk_j = ledger.DiskJ();
  m.mem_j = ledger.mem_j;
  m.wall_j = ledger.wall_j;
  m.dc_j = ledger.dc_j;
  m.edp = m.cpu_j * m.seconds;
  return m;
}

Result<RunMeasurement> ExperimentRunner::RunWorkload(
    const tpch::Workload& workload, const SystemSettings& settings,
    const RunOptions& options) {
  SystemSettings previous = db_->settings();
  ECODB_RETURN_NOT_OK(db_->ApplySettings(settings));

  int repeats = std::max(1, options.repeats);
  std::vector<RunMeasurement> runs;
  runs.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    auto r = RunOnce(workload, options);
    if (!r.ok()) {
      (void)db_->ApplySettings(previous);
      return r.status();
    }
    runs.push_back(std::move(r).value());
  }
  ECODB_RETURN_NOT_OK(db_->ApplySettings(previous));

  if (runs.size() == 1) return runs[0];

  // Paper protocol: sort each metric, drop `trim` from both ends, average.
  size_t trim = static_cast<size_t>(std::max(0, options.trim));
  auto collect = [&](auto getter) {
    std::vector<double> xs;
    xs.reserve(runs.size());
    for (const RunMeasurement& r : runs) xs.push_back(getter(r));
    return TrimmedMean(xs, trim);
  };
  RunMeasurement out;
  out.seconds = collect([](const RunMeasurement& r) { return r.seconds; });
  out.cpu_j = collect([](const RunMeasurement& r) { return r.cpu_j; });
  out.disk_j = collect([](const RunMeasurement& r) { return r.disk_j; });
  out.mem_j = collect([](const RunMeasurement& r) { return r.mem_j; });
  out.wall_j = collect([](const RunMeasurement& r) { return r.wall_j; });
  out.dc_j = collect([](const RunMeasurement& r) { return r.dc_j; });
  out.edp = out.cpu_j * out.seconds;
  out.query_completion_s = runs.back().query_completion_s;
  out.rows_returned = runs.back().rows_returned;
  return out;
}

RatioPoint RatioVs(const RunMeasurement& m, const RunMeasurement& stock) {
  RatioPoint p;
  if (stock.seconds > 0) p.time_ratio = m.seconds / stock.seconds;
  if (stock.cpu_j > 0) p.energy_ratio = m.cpu_j / stock.cpu_j;
  if (stock.edp > 0) p.edp_ratio = m.edp / stock.edp;
  return p;
}

}  // namespace ecodb

#include "ecodb/core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "ecodb/optimizer/mqo.h"
#include "ecodb/util/rng.h"
#include "ecodb/util/stats.h"
#include "ecodb/util/strings.h"

namespace ecodb {

namespace {

/// Delivery tolerance for event due times: an Idle() to a due instant
/// can land a rounding ulp short of it.
constexpr double kDueEpsilonS = 1e-9;

}  // namespace

// One submitted query's scheduling lifetime. Outcome fields live in the
// report (indexed by the same position); this carries only what the
// event loop needs.
struct WorkloadScheduler::Job {
  const PlanNode* plan = nullptr;
  int class_id = 0;
  int64_t merge_key = tpch::kNotMergeable;
  Backoff backoff;  ///< retry delays; max_retries = class retry budget
  int attempts = 0;
  double arrival_s = 0.0;  ///< nominal (scheduled) arrival instant
  double admit_s = 0.0;    ///< admission instant; deadlines anchor here
  bool terminal = false;

  Job() : backoff(BackoffPolicy{}) {}
};

// One occupied worker slot: a QueryTask plus the jobs riding in it (one
// for a plain query, several for a QED-merged batch).
struct WorkloadScheduler::RunningTask {
  std::unique_ptr<QueryTask> task;
  std::vector<size_t> members;  ///< job indices, merge-batch order
  std::unique_ptr<MergedSelection> merged;  ///< null for plain tasks
  double start_s = 0.0;
  /// BufferPool persistent-fault count when the task started; the delta
  /// at failure tells the circuit breaker transient storms apart from
  /// persistent outages.
  uint64_t pool_persistent_before = 0;
};

struct WorkloadScheduler::Event {
  enum class Kind { kArrival, kRetry };
  Kind kind = Kind::kArrival;
  size_t job = 0;
};

// All mutable state of one Run(), so Run itself stays re-entrant per
// scheduler instance (a fresh RunState per call).
class WorkloadScheduler::RunState {
 public:
  RunState(Database* db, const SchedulerOptions& options,
           const ArrivalProcess& arrivals)
      : db_(db),
        options_(options),
        arrivals_(arrivals),
        breaker_(options.breaker),
        qed_(db, QedOptions{/*batch_size=*/1, /*hashed_in_list=*/false}),
        rng_(options.seed) {}

  Result<ScheduleReport> Run(const std::vector<QuerySpec>& specs);

 private:
  using State = QueryTask::State;

  Status Validate(const std::vector<QuerySpec>& specs) const;
  void InitJobs(const std::vector<QuerySpec>& specs);
  void ScheduleInitialArrivals();

  Status DeliverDueEvents(double now);
  Status HandleArrival(size_t j, double now);
  void HandleRetryWakeup(size_t j, const Event& ev, double now);

  Status UpdateDegradation(double now);
  Status Escalate();
  Status Deescalate();
  Status ApplyLevel();

  Status FillWorkers(double now);
  void StartSingleTask(size_t j, double now);
  /// Returns true if a merged task was started (false: nothing mergeable
  /// or the merge failed and the jobs were demoted to plain).
  Result<bool> TryStartMergedTask(double now);
  QueryLimits MergedLimits(const std::vector<size_t>& members,
                           double now) const;

  void StepOneTask();
  void OnTaskDone(size_t slot);
  void OnTaskFailed(size_t slot);

  void FinishCompleted(size_t j, std::vector<Row> rows, double now,
                       bool merged, double split_share_j);
  void FinishFailed(size_t j, const Status& status, double now);
  void FinishShed(size_t j, const Status& status, double now);
  void OnTerminal(double now);

  int MaxLevel() const { return options_.degradation.MaxLevel(); }
  bool AtMaxLevel() const { return level_ >= MaxLevel(); }

  Database* db_;
  const SchedulerOptions& options_;
  const ArrivalProcess& arrivals_;

  std::vector<Job> jobs_;
  std::vector<size_t> queue_;  ///< admitted, waiting (FIFO front = [0])
  std::vector<RunningTask> running_;
  SimEventQueue<Event> events_;

  ScheduleReport report_;
  CircuitBreaker breaker_;
  ServiceEstimator estimator_;
  QedScheduler qed_;
  Rng rng_;
  std::vector<QueryLimits> class_limits_;

  int level_ = 0;
  size_t rr_ = 0;              ///< round-robin cursor over running_
  size_t next_spec_ = 0;       ///< closed loop: next spec to submit
  size_t terminal_count_ = 0;
  double run_start_s_ = 0.0;
  double run_start_wall_j_ = 0.0;
  SystemSettings stock_settings_;
};

Status WorkloadScheduler::RunState::Validate(
    const std::vector<QuerySpec>& specs) const {
  if (options_.worker_slots < 1) {
    return Status::InvalidArgument("worker_slots must be >= 1");
  }
  if (options_.max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (options_.hard_cap_multiplier < 1) {
    return Status::InvalidArgument("hard_cap_multiplier must be >= 1");
  }
  const DegradationOptions& deg = options_.degradation;
  if (deg.low_watermark < 0.0 || deg.high_watermark <= deg.low_watermark) {
    return Status::InvalidArgument(
        "degradation watermarks must satisfy 0 <= low < high");
  }
  if (deg.qed_levels < 0 || (deg.qed_levels > 0 && deg.qed_base_batch < 2)) {
    return Status::InvalidArgument(
        "qed_base_batch must be >= 2 when QED levels are enabled");
  }
  const BackoffPolicy& bp = options_.retry_backoff;
  if (bp.jitter_fraction < 0.0 || bp.jitter_fraction > 1.0 ||
      bp.initial_delay_seconds < 0.0 || bp.multiplier < 1.0) {
    return Status::InvalidArgument("invalid retry backoff policy");
  }
  const size_t num_classes = std::max<size_t>(options_.classes.size(), 1);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].plan == nullptr) {
      return Status::InvalidArgument(StrFormat("spec %zu has no plan", i));
    }
    if (specs[i].class_id < 0 ||
        static_cast<size_t>(specs[i].class_id) >= num_classes) {
      return Status::InvalidArgument(
          StrFormat("spec %zu: class_id %d out of range", i,
                    specs[i].class_id));
    }
  }
  switch (arrivals_.kind) {
    case ArrivalProcess::Kind::kOpenLoop:
      if (!(arrivals_.rate_qps > 0.0)) {
        return Status::InvalidArgument("open loop needs rate_qps > 0");
      }
      break;
    case ArrivalProcess::Kind::kClosedLoop:
      if (arrivals_.num_clients < 1 || arrivals_.think_seconds < 0.0) {
        return Status::InvalidArgument(
            "closed loop needs num_clients >= 1 and think_seconds >= 0");
      }
      break;
  }
  return Status::OK();
}

void WorkloadScheduler::RunState::InitJobs(
    const std::vector<QuerySpec>& specs) {
  std::vector<SchedulerClass> classes = options_.classes;
  if (classes.empty()) classes.push_back(SchedulerClass{});
  class_limits_.reserve(classes.size());
  for (const SchedulerClass& c : classes) {
    class_limits_.push_back(DeriveQueryLimits(c.sla, c.baseline_seconds,
                                              c.memory_budget_bytes));
  }

  jobs_.resize(specs.size());
  report_.outcomes.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Job& job = jobs_[i];
    job.plan = specs[i].plan;
    job.class_id = specs[i].class_id;
    job.merge_key = specs[i].merge_key;
    BackoffPolicy bp = options_.retry_backoff;
    bp.max_retries = classes[static_cast<size_t>(job.class_id)].retry_budget;
    bp.jitter_seed = options_.seed;
    job.backoff = Backoff(bp, /*stream=*/static_cast<uint64_t>(i));
    report_.outcomes[i].class_id = job.class_id;
  }
}

void WorkloadScheduler::RunState::ScheduleInitialArrivals() {
  const double t0 = run_start_s_;
  if (arrivals_.kind == ArrivalProcess::Kind::kOpenLoop) {
    double t = t0;
    for (size_t i = 0; i < jobs_.size(); ++i) {
      t += rng_.Exponential(1.0 / arrivals_.rate_qps);
      jobs_[i].arrival_s = t;
      events_.Push(t, Event{Event::Kind::kArrival, i});
    }
    next_spec_ = jobs_.size();
    return;
  }
  const size_t initial =
      std::min(jobs_.size(), static_cast<size_t>(arrivals_.num_clients));
  for (size_t i = 0; i < initial; ++i) {
    jobs_[i].arrival_s = t0;
    events_.Push(t0, Event{Event::Kind::kArrival, i});
  }
  next_spec_ = initial;
}

Status WorkloadScheduler::RunState::DeliverDueEvents(double now) {
  while (!events_.empty() &&
         events_.next_due_seconds() <= now + kDueEpsilonS) {
    Event ev = events_.Pop();
    switch (ev.kind) {
      case Event::Kind::kArrival:
        ECODB_RETURN_NOT_OK(HandleArrival(ev.job, now));
        break;
      case Event::Kind::kRetry:
        HandleRetryWakeup(ev.job, ev, now);
        break;
    }
  }
  return Status::OK();
}

Status WorkloadScheduler::RunState::HandleArrival(size_t j, double now) {
  Job& job = jobs_[j];
  ++report_.submitted;

  if (!breaker_.AllowAdmission(now)) {
    ++report_.breaker_rejected;
    FinishShed(j, Status::Unavailable("circuit breaker open"), now);
    return Status::OK();
  }

  // Pressure climbs the ladder one rung per arrival (a burst of
  // simultaneous arrivals escalates once each), so the energy knobs are
  // spent before any availability is.
  if (!AtMaxLevel() &&
      static_cast<double>(queue_.size()) >=
          options_.degradation.high_watermark *
              static_cast<double>(options_.max_queue_depth)) {
    ECODB_RETURN_NOT_OK(Escalate());
  }

  // Shedding is the ladder's last rung: below the top level, pressure is
  // absorbed by QED batching and eco operating points instead (the queue
  // may stretch past its nominal bound while the ladder climbs).
  if (AtMaxLevel()) {
    const QueryLimits& lim = class_limits_[static_cast<size_t>(job.class_id)];
    if (lim.deadline_seconds > 0.0 && estimator_.HasEstimate()) {
      const double wait = estimator_.ProjectedWaitSeconds(
          queue_.size(), options_.worker_slots);
      if (wait >= lim.deadline_seconds) {
        ++report_.shed_projected_wait;
        FinishShed(j,
                   Status::Unavailable(StrFormat(
                       "projected wait %.3fs exceeds class deadline %.3fs",
                       wait, lim.deadline_seconds)),
                   now);
        return Status::OK();
      }
    }
    if (queue_.size() >= options_.max_queue_depth) {
      ++report_.shed_queue_full;
      FinishShed(j, Status::Unavailable("admission queue full"), now);
      return Status::OK();
    }
  } else if (queue_.size() >=
             options_.max_queue_depth * options_.hard_cap_multiplier) {
    ++report_.shed_queue_full;
    ++report_.sheds_below_max_level;
    FinishShed(j, Status::Unavailable("admission queue hard cap"), now);
    return Status::OK();
  }

  ++report_.admitted;
  job.admit_s = now;
  queue_.push_back(j);
  return Status::OK();
}

void WorkloadScheduler::RunState::HandleRetryWakeup(size_t j,
                                                    const Event& ev,
                                                    double now) {
  // A retry waking into an open breaker window defers to its end (the
  // query is already admitted; it is delayed, not rejected).
  if (breaker_.state(now) == CircuitBreaker::State::kOpen) {
    events_.Push(std::max(breaker_.open_until_seconds(), now + kDueEpsilonS),
                 ev);
    return;
  }
  queue_.push_back(j);  // bypasses the admission bound: already admitted
}

Status WorkloadScheduler::RunState::UpdateDegradation(double now) {
  (void)now;
  const double pressure = static_cast<double>(queue_.size()) /
                          static_cast<double>(options_.max_queue_depth);
  if (pressure >= options_.degradation.high_watermark && !AtMaxLevel()) {
    return Escalate();
  }
  if (pressure <= options_.degradation.low_watermark && level_ > 0) {
    return Deescalate();
  }
  return Status::OK();
}

Status WorkloadScheduler::RunState::Escalate() {
  ++level_;
  ++report_.escalations;
  report_.max_level_reached = std::max(report_.max_level_reached, level_);
  return ApplyLevel();
}

Status WorkloadScheduler::RunState::Deescalate() {
  --level_;
  ++report_.deescalations;
  return ApplyLevel();
}

Status WorkloadScheduler::RunState::ApplyLevel() {
  const DegradationOptions& deg = options_.degradation;
  const int qed_level = std::min(level_, deg.qed_levels);
  qed_.set_batch_size(qed_level <= 0 ? 1
                                     : deg.qed_base_batch << (qed_level - 1));

  const int eco_idx = level_ - deg.qed_levels;  // 1-based into eco_points
  const SystemSettings& want =
      eco_idx >= 1 ? deg.eco_points[static_cast<size_t>(eco_idx - 1)]
                   : stock_settings_;
  if (!(db_->settings() == want)) {
    ECODB_RETURN_NOT_OK(db_->ApplySettings(want));
    // In-flight queries must re-derive their cached cycle inflation or
    // they keep charging at the old operating point.
    for (RunningTask& rt : running_) rt.task->ctx()->RefreshSettings();
  }
  return Status::OK();
}

QueryLimits WorkloadScheduler::RunState::MergedLimits(
    const std::vector<size_t>& members, double now) const {
  // A merged batch shares its fate QED-style: every member completes at
  // the same instant, so the batch runs under the tightest member
  // deadline (anchored at `now`) and the pooled memory budget.
  QueryLimits out;
  double min_abs = std::numeric_limits<double>::infinity();
  uint64_t budget_sum = 0;
  bool all_budgeted = true;
  for (size_t j : members) {
    const Job& job = jobs_[j];
    const QueryLimits& lim =
        class_limits_[static_cast<size_t>(job.class_id)];
    if (lim.deadline_seconds > 0.0) {
      min_abs = std::min(min_abs, job.admit_s + lim.deadline_seconds);
    }
    if (lim.memory_budget_bytes == 0) {
      all_budgeted = false;
    } else {
      budget_sum += lim.memory_budget_bytes;
    }
  }
  if (std::isfinite(min_abs)) {
    out.deadline_seconds = std::max(min_abs - now, kDueEpsilonS);
  }
  if (all_budgeted) out.memory_budget_bytes = budget_sum;
  return out;
}

Result<bool> WorkloadScheduler::RunState::TryStartMergedTask(double now) {
  const int batch_target = qed_.batch_size();
  if (level_ < 1 || batch_target < 2) return false;

  // Collect up to batch_target mergeable queued jobs, front to back,
  // skipping duplicate merge keys: the split assigns each row to the
  // first member testing its value, so duplicates would starve the
  // later twin.
  std::vector<size_t> picked_pos;
  std::vector<int64_t> picked_keys;
  for (size_t qi = 0;
       qi < queue_.size() &&
       picked_pos.size() < static_cast<size_t>(batch_target);
       ++qi) {
    const Job& job = jobs_[queue_[qi]];
    if (job.merge_key < 0) continue;
    if (std::find(picked_keys.begin(), picked_keys.end(), job.merge_key) !=
        picked_keys.end()) {
      continue;
    }
    picked_pos.push_back(qi);
    picked_keys.push_back(job.merge_key);
  }
  if (picked_pos.size() < 2) return false;

  std::vector<size_t> members;
  members.reserve(picked_pos.size());
  for (size_t pos : picked_pos) members.push_back(queue_[pos]);
  for (size_t i = picked_pos.size(); i-- > 0;) {
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(picked_pos[i]));
  }

  for (size_t j : members) {
    ECODB_RETURN_NOT_OK(qed_.Submit(ClonePlan(*jobs_[j].plan)));
  }
  Result<MergedSelection> merged = qed_.MergeQueued();
  if (!merged.ok()) {
    // Shapes turned out incompatible: these jobs run plain from now on.
    // Put them back at the front in their original relative order.
    for (size_t i = members.size(); i-- > 0;) {
      jobs_[members[i]].merge_key = tpch::kNotMergeable;
      queue_.insert(queue_.begin(), members[i]);
    }
    return false;
  }

  RunningTask rt;
  rt.merged = std::make_unique<MergedSelection>(std::move(merged.value()));
  rt.members = std::move(members);
  rt.start_s = now;
  rt.pool_persistent_before = db_->buffer_pool()->stats().persistent_faults;
  rt.task = std::make_unique<QueryTask>(
      rt.merged->plan.get(), db_->MakeExecContext(), db_->options().exec_mode);
  rt.task->Govern(MergedLimits(rt.members, now), now);
  for (size_t j : rt.members) ++jobs_[j].attempts;
  running_.push_back(std::move(rt));
  ++report_.merged_batches;
  report_.merged_members += running_.back().members.size();
  return true;
}

void WorkloadScheduler::RunState::StartSingleTask(size_t j, double now) {
  Job& job = jobs_[j];
  ++job.attempts;
  RunningTask rt;
  rt.members = {j};
  rt.start_s = now;
  rt.pool_persistent_before = db_->buffer_pool()->stats().persistent_faults;
  rt.task = std::make_unique<QueryTask>(job.plan, db_->MakeExecContext(),
                                        db_->options().exec_mode);
  // Deadline anchored at admission: queue wait, interference and retry
  // backoff all count against the SLA.
  rt.task->Govern(class_limits_[static_cast<size_t>(job.class_id)],
                  job.admit_s);
  running_.push_back(std::move(rt));
}

Status WorkloadScheduler::RunState::FillWorkers(double now) {
  while (running_.size() < static_cast<size_t>(options_.worker_slots) &&
         !queue_.empty()) {
    ECODB_ASSIGN_OR_RETURN(bool merged, TryStartMergedTask(now));
    if (merged) continue;
    const size_t j = queue_.front();
    queue_.erase(queue_.begin());
    StartSingleTask(j, now);
  }
  return Status::OK();
}

void WorkloadScheduler::RunState::StepOneTask() {
  rr_ %= running_.size();
  const size_t slot = rr_;
  RunningTask& rt = running_[slot];
  const double wall_before = db_->machine()->ledger().wall_j;
  const State st = rt.task->Step();
  const double step_j = db_->machine()->ledger().wall_j - wall_before;
  const double share = step_j / static_cast<double>(rt.members.size());
  for (size_t j : rt.members) {
    report_.outcomes[j].attributed_wall_j += share;
  }
  switch (st) {
    case State::kCreated:
    case State::kRunning:
      ++rr_;  // still going; move on to the next slot
      return;
    case State::kDone:
      OnTaskDone(slot);
      return;
    case State::kFailed:
      OnTaskFailed(slot);
      return;
  }
}

void WorkloadScheduler::RunState::OnTaskDone(size_t slot) {
  RunningTask rt = std::move(running_[slot]);
  running_.erase(running_.begin() + static_cast<ptrdiff_t>(slot));

  if (rt.merged == nullptr) {
    const size_t j = rt.members.front();
    std::vector<Row> rows;
    if (options_.keep_rows) rows = rt.task->TakeResult().TakeRows();
    const double now = db_->machine()->NowSeconds();
    estimator_.Observe(now - rt.start_s);
    breaker_.RecordSuccess(now);
    FinishCompleted(j, std::move(rows), now, /*merged=*/false, 0.0);
    return;
  }

  // Merged batch: split the union result back per member, charging the
  // split ("application logic") cost to the task's context.
  const double wall_before = db_->machine()->ledger().wall_j;
  std::vector<Row> merged_rows = rt.task->TakeResult().TakeRows();
  std::vector<std::vector<Row>> split =
      SplitMergedResult(*rt.merged, merged_rows, rt.task->ctx());
  rt.task->ctx()->Flush();
  const double now = db_->machine()->NowSeconds();
  const double split_share =
      (db_->machine()->ledger().wall_j - wall_before) /
      static_cast<double>(rt.members.size());
  estimator_.Observe((now - rt.start_s) /
                     static_cast<double>(rt.members.size()));
  breaker_.RecordSuccess(now);
  for (size_t i = 0; i < rt.members.size(); ++i) {
    std::vector<Row> rows;
    if (options_.keep_rows) rows = std::move(split[i]);
    FinishCompleted(rt.members[i], std::move(rows), now, /*merged=*/true,
                    split_share);
  }
}

void WorkloadScheduler::RunState::OnTaskFailed(size_t slot) {
  RunningTask rt = std::move(running_[slot]);
  running_.erase(running_.begin() + static_cast<ptrdiff_t>(slot));
  const double now = db_->machine()->NowSeconds();
  const Status& st = rt.task->status();

  if (!st.IsHardwareFault()) {
    // Governor kills (deadline, budget, cancel) and planning errors are
    // final: retrying cannot help a query that is over its limits.
    for (size_t j : rt.members) FinishFailed(j, st, now);
    return;
  }

  // Hardware fault: the buffer pool already burned its own bounded
  // retries. A persistent-fault escalation feeds the breaker; either
  // way each member consults its own retry budget.
  const uint64_t persistent_delta =
      db_->buffer_pool()->stats().persistent_faults -
      rt.pool_persistent_before;
  if (persistent_delta > 0) {
    breaker_.RecordPersistentFailure(now);
  }
  for (size_t j : rt.members) {
    Job& job = jobs_[j];
    if (job.backoff.Exhausted()) {
      FinishFailed(j, st, now);
      continue;
    }
    const double delay = job.backoff.NextDelaySeconds();
    ++report_.retries;
    events_.Push(now + delay, Event{Event::Kind::kRetry, j});
  }
}

void WorkloadScheduler::RunState::FinishCompleted(size_t j,
                                                 std::vector<Row> rows,
                                                 double now, bool merged,
                                                 double split_share_j) {
  Job& job = jobs_[j];
  QueryOutcome& out = report_.outcomes[j];
  out.status = Status::OK();
  out.attempts = job.attempts;
  out.merged = merged;
  out.arrival_seconds = job.arrival_s;
  out.finish_seconds = now;
  out.latency_seconds = now - job.arrival_s;
  out.attributed_wall_j += split_share_j;
  out.rows = std::move(rows);
  ++report_.completed;
  job.terminal = true;
  ++terminal_count_;
  OnTerminal(now);
}

void WorkloadScheduler::RunState::FinishFailed(size_t j, const Status& status,
                                               double now) {
  Job& job = jobs_[j];
  QueryOutcome& out = report_.outcomes[j];
  out.status = status;
  out.attempts = job.attempts;
  out.arrival_seconds = job.arrival_s;
  out.finish_seconds = now;
  ++report_.failed;
  job.terminal = true;
  ++terminal_count_;
  OnTerminal(now);
}

void WorkloadScheduler::RunState::FinishShed(size_t j, const Status& status,
                                             double now) {
  Job& job = jobs_[j];
  QueryOutcome& out = report_.outcomes[j];
  out.status = status;
  out.attempts = 0;
  out.arrival_seconds = job.arrival_s;
  out.finish_seconds = now;
  job.terminal = true;
  ++terminal_count_;
  OnTerminal(now);
}

void WorkloadScheduler::RunState::OnTerminal(double now) {
  // Closed loop: a client that just got its answer (or a rejection)
  // thinks, then submits the next pending spec.
  if (arrivals_.kind != ArrivalProcess::Kind::kClosedLoop) return;
  if (next_spec_ >= jobs_.size()) return;
  const size_t j = next_spec_++;
  const double at = now + rng_.Exponential(arrivals_.think_seconds);
  jobs_[j].arrival_s = at;
  events_.Push(at, Event{Event::Kind::kArrival, j});
}

Result<ScheduleReport> WorkloadScheduler::RunState::Run(
    const std::vector<QuerySpec>& specs) {
  ECODB_RETURN_NOT_OK(Validate(specs));
  stock_settings_ = db_->settings();
  run_start_s_ = db_->machine()->NowSeconds();
  run_start_wall_j_ = db_->machine()->ledger().wall_j;
  InitJobs(specs);
  ScheduleInitialArrivals();

  while (terminal_count_ < jobs_.size()) {
    const double now = db_->machine()->NowSeconds();
    ECODB_RETURN_NOT_OK(DeliverDueEvents(now));
    ECODB_RETURN_NOT_OK(UpdateDegradation(now));
    ECODB_RETURN_NOT_OK(FillWorkers(db_->machine()->NowSeconds()));
    if (running_.empty()) {
      if (terminal_count_ >= jobs_.size()) break;
      if (events_.empty()) {
        return Status::Internal(
            "scheduler stalled: outstanding queries but no runnable work "
            "and no pending events");
      }
      const double dt =
          events_.next_due_seconds() - db_->machine()->NowSeconds();
      if (dt > 0.0) db_->machine()->Idle(dt);
      continue;
    }
    StepOneTask();
  }

  // Finalize: latency distribution over completed queries, system-level
  // energy over the makespan (idle and shed overhead included — that is
  // what the wall meter saw).
  std::vector<double> latencies;
  latencies.reserve(report_.completed);
  double latency_sum = 0.0;
  for (const QueryOutcome& out : report_.outcomes) {
    if (!out.status.ok()) continue;
    latencies.push_back(out.latency_seconds);
    latency_sum += out.latency_seconds;
  }
  report_.p50_latency_s = Percentile(latencies, 50);
  report_.p95_latency_s = Percentile(latencies, 95);
  report_.p99_latency_s = Percentile(latencies, 99);
  if (!latencies.empty()) {
    report_.mean_latency_s = latency_sum / static_cast<double>(latencies.size());
  }
  report_.makespan_seconds = db_->machine()->NowSeconds() - run_start_s_;
  report_.total_wall_j =
      db_->machine()->ledger().wall_j - run_start_wall_j_;
  if (report_.completed > 0) {
    report_.wall_j_per_completed =
        report_.total_wall_j / static_cast<double>(report_.completed);
  }
  report_.breaker_opens = breaker_.opens();
  return std::move(report_);
}

WorkloadScheduler::WorkloadScheduler(Database* db,
                                     const SchedulerOptions& options)
    : db_(db), options_(options) {}

Result<ScheduleReport> WorkloadScheduler::Run(
    const std::vector<QuerySpec>& specs, const ArrivalProcess& arrivals) {
  // The ladder may leave an eco operating point applied (or an error path
  // may); always restore the pre-run settings.
  const SystemSettings before = db_->settings();
  RunState state(db_, options_, arrivals);
  Result<ScheduleReport> report = state.Run(specs);
  Status restore = db_->ApplySettings(before);
  if (report.ok() && !restore.ok()) return restore;
  return report;
}

std::vector<QuerySpec> WorkloadScheduler::SpecsFromWorkload(
    const tpch::Workload& workload, int num_classes) {
  std::vector<QuerySpec> specs;
  specs.reserve(workload.queries.size());
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    QuerySpec spec;
    spec.plan = workload.queries[i].get();
    spec.class_id =
        num_classes <= 1 ? 0 : static_cast<int>(i % static_cast<size_t>(
                                                        num_classes));
    spec.merge_key =
        i < workload.merge_keys.size() ? workload.merge_keys[i]
                                       : tpch::kNotMergeable;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace ecodb

// Operating-point selection policies.
//
// The paper: "The DBMS must be able to make automatic transitions given
// protocols provided by administrators ... Factors such as SLAs may
// restrict the choices." A policy turns a measured (or predicted)
// trade-off curve into a concrete operating point, and can be inverted to
// derive viable SLA parameters from a curve (the paper's "work backward"
// remark).

#ifndef ECODB_CORE_POLICY_H_
#define ECODB_CORE_POLICY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "ecodb/core/pvc.h"
#include "ecodb/exec/query_governor.h"

namespace ecodb {

struct SlaPolicy {
  enum class Objective {
    kMinEnergy,  ///< least CPU joules subject to the time bound
    kMinEdp,     ///< least energy-delay product subject to the time bound
    kMinTime,    ///< fastest (peak-load mode: "no choice but to aim for
                 ///< the fastest query response time")
  };
  Objective objective = Objective::kMinEnergy;

  /// Response-time budget as a ratio of stock (1.10 == "at most 10 %
  /// slower"). Infinity = unconstrained.
  double max_time_ratio = std::numeric_limits<double>::infinity();

  /// Absolute response-time budget in seconds. Infinity = unconstrained.
  double max_seconds = std::numeric_limits<double>::infinity();
};

/// Picks the best operating point (stock included as a candidate).
/// Returns kNotFound if no point satisfies the SLA bounds.
Result<OperatingPoint> SelectOperatingPoint(const TradeoffCurve& curve,
                                            const SlaPolicy& policy);

/// The Pareto frontier of (time_ratio, energy_ratio) points — each entry
/// is a viable SLA parameterization: "if you can afford time ratio T, you
/// can have energy ratio E". Sorted by time ratio ascending.
std::vector<RatioPoint> EnergyTimeFrontier(const TradeoffCurve& curve);

/// Turns a class-level SLA into the per-query governor limits the
/// workload scheduler grants queries of that class. The deadline is the
/// tighter of the policy's absolute bound (`max_seconds`) and its
/// relative bound applied to `baseline_seconds` (the class's measured
/// solo response time; pass <= 0 when unknown — the relative bound is
/// then ignored). An unconstrained policy yields limits with no deadline.
/// `memory_budget_bytes` passes through untouched (0 = unlimited).
QueryLimits DeriveQueryLimits(const SlaPolicy& policy,
                              double baseline_seconds,
                              uint64_t memory_budget_bytes);

}  // namespace ecodb

#endif  // ECODB_CORE_POLICY_H_

// Engine profiles: the cost/behaviour models of the paper's two systems.
//
// The paper evaluates a commercial DBMS (disk-backed; bursty CPU load;
// noticeable disk activity even warm — Section 3.5) and MySQL 5.1 with its
// MEMORY storage engine (fully memory-resident, CPU-pegged — Section 3.3).
// A profile bundles the per-operation CPU cycle costs, the memory-traffic
// model, and the storage behaviour that distinguish them.

#ifndef ECODB_CORE_ENGINE_PROFILE_H_
#define ECODB_CORE_ENGINE_PROFILE_H_

#include <cstdint>
#include <string>

#include "ecodb/sim/settings.h"

namespace ecodb {

struct EngineProfile {
  std::string name;

  /// How this engine's workloads load the CPU (affects effective voltage;
  /// see sim/settings.h).
  LoadClass load_class = LoadClass::kSustained;

  /// Whether table scans go through the buffer pool / simulated disk.
  bool disk_backed = false;

  /// Buffer pool capacity in pages (0 = unbounded). Only meaningful for
  /// disk-backed profiles.
  uint64_t buffer_pool_pages = 0;

  /// On a scan, every k-th missed page is charged as a *random* read
  /// (multi-table interleaving / fragmentation); 0 disables. This is what
  /// makes the cold run ~3x slower rather than a pure streaming read
  /// (Section 3.5).
  int cold_random_page_period = 0;

  /// Fraction of hash-join build+probe bytes written to and re-read from
  /// temp storage (grace-hash style spill). Produces the paper's
  /// "significant [disk] activity even though the database was warm".
  double spill_fraction = 0.0;

  // --- CPU cycles charged per logical operation ---
  double scan_tuple_cycles = 0;    ///< iterate + slot extraction, per tuple
  double scan_byte_cycles = 0;     ///< per byte materialized from a scan
  double compare_cycles = 0;       ///< per predicate comparison evaluated
  double arith_cycles = 0;         ///< per arithmetic expression node
  double hash_build_cycles = 0;    ///< per row inserted in a hash table
  double hash_probe_cycles = 0;    ///< per probe lookup
  double agg_update_cycles = 0;    ///< per aggregate accumulator update
  double sort_compare_cycles = 0;  ///< per comparison during sort
  double output_tuple_cycles = 0;  ///< per row returned to the client
  double output_byte_cycles = 0;   ///< per byte returned to the client

  // --- Memory traffic model ---
  /// DRAM lines touched per scanned tuple = bytes/64 * this factor
  /// (captures cache residency; the MEMORY engine at small SF has decent
  /// locality, big scans stream).
  double scan_line_factor = 1.0;
  /// Random DRAM lines touched per hash build/probe operation.
  double hash_op_lines = 2.0;
  /// DRAM lines per *result* row delivered to the client: row copy into
  /// protocol buffers, packet assembly, client-side decode. Result
  /// delivery is what makes high-selectivity queries (QED's workload)
  /// partially memory-bound and hence lower-power than scan phases.
  double output_tuple_lines = 2.0;

  /// Effective cycle inflation at deep underclock: charged cycles are
  /// multiplied by (1 + k * underclock^3). Calibrated against the paper's
  /// observation that the commercial workload degrades sharply beyond a
  /// 5 % underclock (Figure 1's points B and C; Figure 2's EDP rising from
  /// -47 % to -23 %) — chipset/DRAM-retraining effects our first-principles
  /// model does not otherwise capture. Zero for MySQL, whose Figure 3/4
  /// behaviour is pure V^2/F.
  double underclock_cpi_penalty = 0.0;

  /// QED application-side result splitting ("we do [it] in the application
  /// logic and include the time and energy cost", Section 4): per merged
  /// result row, a dispatch cost plus a comparison per candidate query
  /// until the owner is found.
  double split_row_cycles = 0;
  double split_row_lines = 0;
  double split_compare_cycles = 0;

  /// The paper's commercial DBMS running TPC-H (disk-backed, SF 1.0).
  static EngineProfile Commercial();

  /// MySQL 5.1.28 with the MEMORY storage engine (Sections 3.3, 4).
  static EngineProfile MySqlMemory();
};

}  // namespace ecodb

#endif  // ECODB_CORE_ENGINE_PROFILE_H_

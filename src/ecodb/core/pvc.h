// PVC — Processor Voltage/frequency Control (paper Section 3).
//
// The controller sweeps PVC operating points (underclock x voltage
// downgrade), measures each against the stock baseline, and produces the
// trade-off curves of Figures 1-4. It can also *predict* a curve with the
// energy-aware cost model, without running the workload — the mechanism a
// DBMS would use online.

#ifndef ECODB_CORE_PVC_H_
#define ECODB_CORE_PVC_H_

#include <vector>

#include "ecodb/core/experiment.h"
#include "ecodb/optimizer/cost_model.h"

namespace ecodb {

/// One measured operating point, with ratios relative to stock.
struct OperatingPoint {
  SystemSettings settings;
  RunMeasurement measurement;
  RatioPoint ratio;
  /// The paper's theoretical EDP factor V^2/F, as a ratio to stock
  /// (Figure 4's secondary axis).
  double theoretical_edp_ratio = 1.0;
};

/// A full PVC sweep: stock + alternative points.
struct TradeoffCurve {
  OperatingPoint stock;
  std::vector<OperatingPoint> points;
};

/// One per-core settings assignment (the per-core PVC knob) and its
/// phase-level pricing from the core ledgers.
struct CoreOperatingPoint {
  std::vector<SystemSettings> core_settings;  ///< one entry per core
  ParallelPhaseSummary summary;
  double makespan_ratio = 1.0;   ///< vs. the all-stock assignment
  double dc_energy_ratio = 1.0;
  double edp_ratio = 1.0;        ///< dc_j * makespan, vs. all-stock
};

/// Per-core sweep: the all-stock assignment + alternatives.
struct CoreTradeoffCurve {
  CoreOperatingPoint stock;
  std::vector<CoreOperatingPoint> points;
};

class PvcController {
 public:
  explicit PvcController(Database* db) : db_(db) {}

  /// The paper's grid: {small, medium} x {5 %, 10 %, 15 %} underclock.
  static std::vector<SystemSettings> PaperGrid();
  /// Medium-downgrade column only (Figure 1's settings A, B, C).
  static std::vector<SystemSettings> MediumGrid();

  /// Measures the workload at stock + each grid point.
  Result<TradeoffCurve> MeasureCurve(const tpch::Workload& workload,
                                     const std::vector<SystemSettings>& grid,
                                     const RunOptions& options);

  /// Predicts the curve with the cost model (no execution). Measurement
  /// fields carry predicted seconds/cpu_j/edp; per-query times are empty.
  Result<TradeoffCurve> PredictCurve(const tpch::Workload& workload,
                                     const std::vector<SystemSettings>& grid);

  /// Per-core assignment grid: for every MediumGrid() point, one
  /// symmetric assignment (all cores at that point — slow-and-wide) and
  /// one asymmetric assignment (all cores stock except the last — one
  /// "eco core" absorbing the overflow morsels).
  static std::vector<std::vector<SystemSettings>> PerCoreGrid(int num_cores);

  /// The per-core PVC knob. Runs `workload` once in parallel
  /// (exec_workers = num_cores) at the machine's current settings to
  /// capture each core's raw morsel work (cycles, cache lines) from the
  /// core ledgers, then re-prices that captured work under every
  /// assignment in `grid` on a scratch machine — answering "what if core
  /// i ran at settings s" without re-running the workload. Ratios are
  /// against the all-stock assignment priced from the same capture.
  Result<CoreTradeoffCurve> MeasureCorePhaseCurve(
      const tpch::Workload& workload,
      const std::vector<std::vector<SystemSettings>>& grid);

 private:
  double TheoreticalEdp(const SystemSettings& s) const;

  Database* db_;
};

}  // namespace ecodb

#endif  // ECODB_CORE_PVC_H_

#include "ecodb/core/adaptive.h"

namespace ecodb {

Result<AdaptiveReport> AdaptiveController::Run(
    const tpch::Workload& workload) {
  Machine* machine = db_->machine();
  SystemSettings previous = db_->settings();

  machine->ResetMeters();
  double t0 = machine->NowSeconds();

  AdaptiveReport report;
  SystemSettings current = options_.eco;
  ECODB_RETURN_NOT_OK(db_->ApplySettings(current));

  size_t n = workload.queries.size();
  for (size_t i = 0; i < n; ++i) {
    ECODB_ASSIGN_OR_RETURN(QueryResult r,
                           db_->ExecutePlanQuery(*workload.queries[i]));
    (void)r;
    double elapsed = machine->NowSeconds() - t0;
    report.per_query_settings.push_back(current);
    report.query_completion_s.push_back(elapsed);

    if (i + 1 < n) {
      // Project completion assuming remaining queries run like the
      // average so far (under the current settings).
      double avg = elapsed / static_cast<double>(i + 1);
      double projected = elapsed + avg * static_cast<double>(n - i - 1);
      SystemSettings want =
          (projected * options_.headroom > options_.deadline_s)
              ? options_.fast
              : options_.eco;
      if (!(want == current)) {
        ECODB_RETURN_NOT_OK(db_->ApplySettings(want));
        current = want;
        ++report.switches;
      }
    }
  }

  report.total_s = machine->NowSeconds() - t0;
  report.cpu_j = machine->ledger().cpu_j;
  report.met_deadline = report.total_s <= options_.deadline_s;
  ECODB_RETURN_NOT_OK(db_->ApplySettings(previous));
  return report;
}

}  // namespace ecodb

// Database: the public facade of ecoDB. Owns the simulated machine, the
// catalog, the buffer pool and the engine profile; executes plans and SQL
// with per-query time/energy measurement.

#ifndef ECODB_CORE_DATABASE_H_
#define ECODB_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "ecodb/core/engine_profile.h"
#include "ecodb/exec/plan.h"
#include "ecodb/exec/query_governor.h"
#include "ecodb/sim/fault_injection.h"
#include "ecodb/sim/machine.h"
#include "ecodb/storage/buffer_pool.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/tpch/dbgen.h"
#include "ecodb/util/result.h"

namespace ecodb {

struct DatabaseOptions {
  EngineProfile profile = EngineProfile::Commercial();
  MachineConfig machine = MachineConfig::PaperTestbed();
  /// How query plans are executed. Batch (vectorized) by default; row
  /// mode keeps the Volcano pull loop for comparison/parity runs.
  ExecMode exec_mode = ExecMode::kBatch;
  /// Morsel-driven worker threads for eligible batch pipelines. 1 (the
  /// default) keeps execution single-threaded. Clamped to 1 per query
  /// when the mode is kRow, the profile is disk-backed, or a governor is
  /// attached — those paths interleave machine state mid-pipeline and
  /// stay on the sequential engine. Results and logical-work counters are
  /// bit-exact vs. single-threaded at any worker count.
  int exec_workers = 1;
  /// Per-query limits applied by the governor (default: none — queries
  /// run ungoverned exactly as before). Adjustable between queries via
  /// Database::set_query_limits.
  QueryLimits query_limits;
  /// Deterministic disk-fault schedule. Rates of zero (the default)
  /// disable injection entirely; the buffer pool's read path is then
  /// unchanged.
  FaultInjectorConfig fault_injection;
};

/// Result of one query, with the energy/time the machine spent on it.
/// The result itself is columnar (ResultSet: typed column arrays + null
/// masks, identical across execution modes); `rows()` exposes the lazily
/// built boxed row view for row-oriented callers.
///
/// Lifetime: the result outlives the operator tree, but its string
/// columns may borrow Table storage (the PR 5 dedup contract — see
/// exec/result_set.h), so a QueryResult must not be read after the
/// Database that produced it is destroyed. Callers that need a
/// free-standing copy should TakeRows() (boxed Values own their bytes)
/// while the Database is alive.
///
/// Failed queries produce no QueryResult at all: ExecutePlanQuery
/// returns a bare error Status, every operator has been Close()d, the
/// partially-built result set (and everything it retained) has been
/// destroyed, and the Database is immediately reusable — a governed
/// kill or an injected hardware fault never leaves dangling state
/// behind. The machine's energy ledger keeps whatever the query charged
/// before it died (for a governor trip, frozen at the last flush-quantum
/// boundary; energy is spent even when no answer comes back).
struct QueryResult {
  ResultSet result;
  Schema schema;
  double seconds = 0;      ///< simulated response time
  double cpu_joules = 0;   ///< CPU package energy (what Figure 1 plots)
  double disk_joules = 0;
  double wall_joules = 0;
  QueryExecStats exec_stats;

  size_t num_rows() const { return result.num_rows(); }
  /// Boxed row view, built on first access and cached in the ResultSet.
  const std::vector<Row>& rows() const { return result.rows(); }
  /// Moves the boxed view out (for callers that keep per-query row sets).
  std::vector<Row> TakeRows() { return result.TakeRows(); }
};

class Database {
 public:
  explicit Database(DatabaseOptions options);

  /// Generates TPC-H data into the catalog.
  Status LoadTpch(const tpch::DbGenOptions& options);

  /// Applies a PVC operating point (validated for stability).
  Status ApplySettings(const SystemSettings& settings);
  const SystemSettings& settings() const { return machine_->settings(); }

  /// Applies a PVC operating point to one core only (per-core knob; see
  /// Machine::ApplyCoreSettings).
  Status ApplyCoreSettings(int core, const SystemSettings& settings) {
    return machine_->ApplyCoreSettings(core, settings);
  }

  /// Replaces the worker count for subsequent queries (same clamping
  /// rules as DatabaseOptions::exec_workers).
  void set_exec_workers(int n) { options_.exec_workers = n < 1 ? 1 : n; }
  int exec_workers() const { return options_.exec_workers; }

  /// Executes a physical plan, measuring the query's time and energy.
  Result<QueryResult> ExecutePlanQuery(const PlanNode& plan);

  /// Parses, binds, plans and executes a SQL statement.
  Result<QueryResult> ExecuteSql(const std::string& sql);

  /// Builds a physical plan for a SQL statement without executing it.
  Result<PlanNodePtr> PlanSql(const std::string& sql);

  /// Drops all buffered pages (the paper's "immediately following a
  /// system reboot" cold state). No-op for memory-resident profiles.
  void ColdRestart();

  /// Pre-faults all tables through the buffer pool without measurement
  /// (warm state). No-op for memory-resident profiles.
  Status WarmUp();

  Machine* machine() { return machine_.get(); }
  Catalog* catalog() { return &catalog_; }
  BufferPool* buffer_pool() { return buffer_pool_.get(); }
  const EngineProfile& profile() const { return options_.profile; }
  const DatabaseOptions& options() const { return options_; }

  /// Replaces the per-query limits for subsequent queries (pass a
  /// default-constructed QueryLimits to lift them).
  void set_query_limits(const QueryLimits& limits) {
    options_.query_limits = limits;
  }
  const QueryLimits& query_limits() const { return options_.query_limits; }

  /// The fault injector attached at construction, or null when fault
  /// injection is disabled (test/bench introspection).
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Fresh ExecContext bound to this database's machine/profile/pool.
  std::unique_ptr<ExecContext> MakeExecContext();

 private:
  DatabaseOptions options_;
  std::unique_ptr<Machine> machine_;
  Catalog catalog_;
  std::unique_ptr<BufferPool> buffer_pool_;
  std::unique_ptr<FaultInjector> fault_injector_;  ///< null when disabled
};

}  // namespace ecodb

#endif  // ECODB_CORE_DATABASE_H_

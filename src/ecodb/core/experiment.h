// ExperimentRunner: executes workloads under PVC operating points with the
// paper's measurement protocol (Section 3.1): per-workload measurement of
// CPU joules (EPU GUI method: mean 1 Hz samples x duration), five repeated
// runs with the top and bottom readings discarded.

#ifndef ECODB_CORE_EXPERIMENT_H_
#define ECODB_CORE_EXPERIMENT_H_

#include <vector>

#include "ecodb/core/database.h"
#include "ecodb/tpch/workloads.h"
#include "ecodb/util/result.h"

namespace ecodb {

struct RunOptions {
  /// Independent repetitions; the reported numbers are trimmed means.
  int repeats = 1;
  /// Readings discarded from each end (paper: 5 repeats, trim 1).
  int trim = 0;
  /// Start from a cold buffer pool (paper Section 3.5 cold runs).
  bool cold = false;
  /// Estimate CPU joules by the paper's GUI-sampling method instead of
  /// exact integration.
  bool gui_sensor_method = false;
};

/// Aggregated measurement of one workload run.
struct RunMeasurement {
  double seconds = 0;      ///< workload response time
  double cpu_j = 0;        ///< CPU package joules
  double disk_j = 0;
  double mem_j = 0;
  double wall_j = 0;
  double dc_j = 0;
  double edp = 0;          ///< cpu_j * seconds (paper Section 3.4)
  /// Completion time of each query, measured from workload start.
  std::vector<double> query_completion_s;
  /// Total rows returned (sanity checking across operating points).
  uint64_t rows_returned = 0;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(Database* db) : db_(db) {}

  /// Runs the workload under `settings`, returning trimmed-mean
  /// measurements. Restores the previous machine settings afterwards.
  Result<RunMeasurement> RunWorkload(const tpch::Workload& workload,
                                     const SystemSettings& settings,
                                     const RunOptions& options);

 private:
  Result<RunMeasurement> RunOnce(const tpch::Workload& workload,
                                 const RunOptions& options);

  Database* db_;
};

/// Ratio helpers for the paper's relative plots (value / stock value).
struct RatioPoint {
  double time_ratio = 1.0;
  double energy_ratio = 1.0;
  double edp_ratio = 1.0;
};
RatioPoint RatioVs(const RunMeasurement& m, const RunMeasurement& stock);

}  // namespace ecodb

#endif  // ECODB_CORE_EXPERIMENT_H_
